#include <gtest/gtest.h>

#include "cloud/heuristics.hpp"
#include "util/rng.hpp"

namespace edacloud::cloud {
namespace {

std::vector<MckpStage> random_instance(util::Rng& rng, int stage_count,
                                       int item_count) {
  std::vector<MckpStage> stages(static_cast<std::size_t>(stage_count));
  for (auto& stage : stages) {
    double time = rng.next_double(200.0, 5000.0);
    double cost = rng.next_double(0.05, 0.5);
    for (int j = 0; j < item_count; ++j) {
      stage.items.push_back({time, cost, ""});
      time *= rng.next_double(0.45, 0.8);
      cost *= rng.next_double(1.05, 1.6);
    }
  }
  return stages;
}

TEST(DominanceFilterTest, DropsDominatedItems) {
  std::vector<MckpStage> stages(1);
  stages[0].items = {
      {100, 1.0, "good-slow"},
      {100, 2.0, "dominated (same time, pricier)"},
      {50, 3.0, "good-fast"},
      {60, 3.5, "dominated (slower and pricier than 50s/$3)"},
  };
  const auto filtered = dominance_filter(stages);
  ASSERT_EQ(filtered.size(), 1u);
  EXPECT_EQ(filtered[0].items.size(), 2u);
}

TEST(DominanceFilterTest, KeepsEfficientFrontierOrdered) {
  std::vector<MckpStage> stages(1);
  stages[0].items = {{100, 1.0, ""}, {50, 2.0, ""}, {25, 4.0, ""}};
  const auto filtered = dominance_filter(stages);
  ASSERT_EQ(filtered[0].items.size(), 3u);
  // Slow-to-fast order retained.
  EXPECT_DOUBLE_EQ(filtered[0].items.front().time_seconds, 100.0);
  EXPECT_DOUBLE_EQ(filtered[0].items.back().time_seconds, 25.0);
}

TEST(DominanceFilterTest, FilteredOptimumUnchanged) {
  util::Rng rng(71);
  for (int trial = 0; trial < 30; ++trial) {
    const auto stages = random_instance(rng, 4, 4);
    const auto filtered = dominance_filter(stages);
    const double deadline =
        rng.next_double(fastest_completion_seconds(stages) * 1.05,
                        fixed_choice(stages, 0).total_time_seconds);
    const auto full = solve_mckp_dp(stages, deadline);
    const auto reduced = solve_mckp_dp(filtered, deadline);
    ASSERT_EQ(full.feasible, reduced.feasible);
    if (full.feasible) {
      EXPECT_NEAR(full.total_cost_usd, reduced.total_cost_usd, 1e-9);
    }
  }
}

TEST(GreedyTest, RelaxedDeadlinePicksCheapest) {
  std::vector<MckpStage> stages(2);
  stages[0].items = {{100, 1.0, ""}, {40, 3.0, ""}};
  stages[1].items = {{200, 2.0, ""}, {80, 5.0, ""}};
  const auto selection = solve_mckp_greedy(stages, 1000.0);
  ASSERT_TRUE(selection.feasible);
  EXPECT_DOUBLE_EQ(selection.total_cost_usd, 3.0);
}

TEST(GreedyTest, InfeasibleMatchesDp) {
  std::vector<MckpStage> stages(2);
  stages[0].items = {{100, 1.0, ""}, {40, 3.0, ""}};
  stages[1].items = {{200, 2.0, ""}, {80, 5.0, ""}};
  EXPECT_FALSE(solve_mckp_greedy(stages, 100.0).feasible);
  EXPECT_TRUE(solve_mckp_greedy(stages, 120.0).feasible);
}

TEST(GreedyTest, MeetsDeadlineWheneverDpDoes) {
  util::Rng rng(72);
  for (int trial = 0; trial < 60; ++trial) {
    const auto stages = random_instance(rng, 4, 4);
    const double fastest = fastest_completion_seconds(stages);
    const double slowest = fixed_choice(stages, 0).total_time_seconds;
    const double deadline = rng.next_double(fastest * 0.9, slowest * 1.1);
    const auto dp = solve_mckp_dp(stages, deadline);
    const auto greedy = solve_mckp_greedy(stages, deadline);
    ASSERT_EQ(dp.feasible, greedy.feasible) << "trial " << trial;
    if (dp.feasible) {
      EXPECT_LE(greedy.total_time_seconds, std::floor(deadline) + 1e-9);
      // Heuristic cost is never better than the optimum.
      EXPECT_GE(greedy.total_cost_usd, dp.total_cost_usd - 1e-9);
    }
  }
}

TEST(GreedyTest, GapIsModestOnTypicalInstances) {
  util::Rng rng(73);
  double gap_sum = 0.0;
  int feasible = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const auto stages = random_instance(rng, 4, 4);
    const double fastest = fastest_completion_seconds(stages);
    const double slowest = fixed_choice(stages, 0).total_time_seconds;
    const double deadline = rng.next_double(fastest * 1.02, slowest);
    const auto dp = solve_mckp_dp(stages, deadline);
    const auto greedy = solve_mckp_greedy(stages, deadline);
    if (!dp.feasible || !greedy.feasible || dp.total_cost_usd <= 0.0) {
      continue;
    }
    gap_sum += greedy.total_cost_usd / dp.total_cost_usd - 1.0;
    ++feasible;
  }
  ASSERT_GT(feasible, 20);
  EXPECT_LT(gap_sum / feasible, 0.25);  // avg gap under 25%
}

TEST(GreedyTest, EmptyInstanceFeasible) {
  EXPECT_TRUE(solve_mckp_greedy({}, 10.0).feasible);
}

}  // namespace
}  // namespace edacloud::cloud
