#include <gtest/gtest.h>

#include <cstddef>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/metrics.hpp"
#include "sched/simulator.hpp"
#include "util/thread_pool.hpp"

namespace edacloud::obs {
namespace {

// The tracer is process-global; every test starts from a clean slate.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::global().disable();
    Tracer::global().clear();
  }
  void TearDown() override {
    Tracer::global().disable();
    Tracer::global().clear();
  }
};

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  {
    TRACE_SPAN("should/not/appear");
    TRACE_SPAN("nor/this");
  }
  Tracer::global().emit_counter("also/not", 0.0, 1.0);
  EXPECT_EQ(Tracer::global().event_count(), 0u);
}

TEST_F(TracerTest, SpansNestAndRecordDepth) {
  Tracer& tracer = Tracer::global();
  tracer.enable(ClockMode::kVirtual);
  tracer.set_virtual_time_seconds(0.0);
  {
    TRACE_SPAN_VAR(outer, "flow/run", "flow");
    tracer.set_virtual_time_seconds(1.0);
    {
      TRACE_SPAN_VAR(inner, "synth/rewrite", "synth");
      tracer.set_virtual_time_seconds(3.0);
    }
    tracer.set_virtual_time_seconds(4.0);
  }
  tracer.disable();

  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 2u);
  // Children are destroyed (and thus recorded) before their parents.
  EXPECT_EQ(events[0].name, "synth/rewrite");
  EXPECT_EQ(events[0].depth, 1u);
  EXPECT_DOUBLE_EQ(events[0].ts_us, 1e6);
  EXPECT_DOUBLE_EQ(events[0].dur_us, 2e6);
  EXPECT_EQ(events[1].name, "flow/run");
  EXPECT_EQ(events[1].depth, 0u);
  EXPECT_DOUBLE_EQ(events[1].ts_us, 0.0);
  EXPECT_DOUBLE_EQ(events[1].dur_us, 4e6);
  // Nesting is containment: parent interval covers the child's.
  EXPECT_LE(events[1].ts_us, events[0].ts_us);
  EXPECT_GE(events[1].ts_us + events[1].dur_us,
            events[0].ts_us + events[0].dur_us);
}

TEST_F(TracerTest, CounterAttachmentsSerializeIntoArgs) {
  Tracer& tracer = Tracer::global();
  tracer.enable(ClockMode::kVirtual);
  {
    TRACE_SPAN_VAR(span, "route/ripup", "route");
    span.counter("iteration", 3.0);
    span.counter("overflowed_edges", 17.0);
  }
  tracer.disable();

  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].key, "iteration");
  EXPECT_DOUBLE_EQ(events[0].args[0].value, 3.0);
  EXPECT_EQ(events[0].args[1].key, "overflowed_edges");
  EXPECT_DOUBLE_EQ(events[0].args[1].value, 17.0);

  const std::string json = tracer.to_json();
  EXPECT_NE(json.find("\"iteration\":3"), std::string::npos);
  EXPECT_NE(json.find("\"overflowed_edges\":17"), std::string::npos);
}

TEST_F(TracerTest, ConcurrentSpansFromManyThreadsAreAllRecorded) {
  Tracer& tracer = Tracer::global();
  tracer.enable(ClockMode::kWall);

  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TRACE_SPAN_VAR(outer, "worker/outer");
        TRACE_SPAN("worker/inner");
      }
    });
  }
  for (auto& thread : threads) thread.join();
  tracer.disable();

  const auto events = tracer.snapshot();
  EXPECT_EQ(events.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread * 2);
  for (const auto& event : events) {
    // Inner spans were opened under an outer span on the same thread.
    EXPECT_EQ(event.depth, event.name == "worker/inner" ? 1u : 0u);
  }
}

TEST_F(TracerTest, PoolWorkerSpansLandOnDedicatedLanes) {
  Tracer& tracer = Tracer::global();
  tracer.enable(ClockMode::kWall);
  const std::uint32_t caller_lane = tracer.thread_lane();

  util::parallel_for(4, 0, 64, 1,
                     [&](std::size_t begin, std::size_t end, std::size_t,
                         unsigned slot) {
                       TRACE_SPAN_VAR(span, "pool/chunk", "util");
                       span.counter("slot", static_cast<double>(slot));
                       span.counter("items", static_cast<double>(end - begin));
                       // Give the workers time to wake and claim chunks even
                       // on a single-core host.
                       std::this_thread::sleep_for(std::chrono::microseconds(200));
                     });
  util::set_global_thread_count(1);
  tracer.disable();

  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 64u);
  bool saw_pool_lane = false;
  for (const auto& event : events) {
    ASSERT_EQ(event.args.size(), 2u);
    const auto slot = static_cast<unsigned>(event.args[0].value);
    if (slot == 0) {
      // Chunks the submitting thread ran itself stay on its external lane.
      EXPECT_EQ(event.tid, caller_lane);
      EXPECT_LT(event.tid, Tracer::kPoolLaneBase);
    } else {
      // Worker lanes are a pure function of the pool slot.
      EXPECT_EQ(event.tid, Tracer::kPoolLaneBase + slot - 1);
      saw_pool_lane = true;
    }
  }
  EXPECT_TRUE(saw_pool_lane);
}

// Minimal structural validation of the emitted JSON: balanced braces and
// brackets outside of strings, no trailing garbage. json.tool does the full
// check in scripts/check.sh; this keeps the invariant in tier-1 unit tests.
void expect_balanced_json(const std::string& json) {
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  bool escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': ++braces; break;
      case '}': --braces; break;
      case '[': ++brackets; break;
      case ']': --brackets; break;
      default: break;
    }
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST_F(TracerTest, JsonIsWellFormedAndEscapesSpecialCharacters) {
  Tracer& tracer = Tracer::global();
  tracer.enable(ClockMode::kVirtual);
  tracer.emit_complete("weird \"name\"\n\t\\", "cat", 0.0, 1.0, 0,
                       {{"k", 0.5}});
  tracer.emit_counter("fleet/queue_depth", 2.0, 4.0);
  tracer.disable();

  const std::string json = tracer.to_json();
  expect_balanced_json(json);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("weird \\\"name\\\"\\n\\t\\\\"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":0.5"), std::string::npos);
}

TEST_F(TracerTest, SameSeedFleetSimulationsProduceByteIdenticalTraces) {
  sched::SimConfig config;
  config.seed = 20260806;
  config.duration_seconds = 1800.0;
  config.load.arrival_rate_per_hour = 120.0;

  const auto traced_run = [&config] {
    Tracer& tracer = Tracer::global();
    tracer.clear();
    tracer.enable(ClockMode::kVirtual);
    sched::FleetSimulator sim(config, sched::builtin_templates(),
                              sched::make_policy("cost"));
    sim.run();
    tracer.disable();
    return tracer.to_json();
  };

  const std::string first = traced_run();
  const std::string second = traced_run();
  EXPECT_GT(first.size(), 100u);
  EXPECT_EQ(first, second);
  expect_balanced_json(first);
  EXPECT_NE(first.find("task/"), std::string::npos);
  EXPECT_NE(first.find("fleet/queue_depth"), std::string::npos);
}

// ---- Registry ---------------------------------------------------------------

TEST(RegistryTest, LabelOrderDoesNotSplitIdentity) {
  Registry registry;
  Counter& a = registry.counter("jobs", {{"mix", "bursty"}, {"policy", "edf"}});
  Counter& b = registry.counter("jobs", {{"policy", "edf"}, {"mix", "bursty"}});
  EXPECT_EQ(&a, &b);
  a.add(2);
  b.add(3);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(Registry::key("jobs", {{"policy", "edf"}, {"mix", "bursty"}}),
            "jobs{mix=bursty,policy=edf}");
}

TEST(RegistryTest, DistinctLabelsAreDistinctInstruments) {
  Registry registry;
  registry.counter("jobs", {{"policy", "fifo"}}).add(1);
  registry.counter("jobs", {{"policy", "cost"}}).add(7);
  EXPECT_EQ(registry.size(), 2u);
  const Counter* fifo = registry.find_counter("jobs", {{"policy", "fifo"}});
  ASSERT_NE(fifo, nullptr);
  EXPECT_EQ(fifo->value(), 1u);
  EXPECT_EQ(registry.find_counter("jobs", {{"policy", "spot"}}), nullptr);
}

TEST(RegistryTest, TypeMismatchOnSameIdentityThrows) {
  Registry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::logic_error);
  EXPECT_THROW(registry.histogram("x"), std::logic_error);
}

TEST(RegistryTest, HistogramTracksCountSumMinMaxAndQuantiles) {
  Registry registry;
  HistogramMetric& h = registry.histogram("latency", {}, 0.0, 100.0, 100);
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  EXPECT_EQ(h.count(), 100u);
  EXPECT_DOUBLE_EQ(h.sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 2.0);
}

TEST(RegistryTest, ExportsAreDeterministicAndOrdered) {
  const auto fill = [](Registry& registry) {
    registry.gauge("zeta", {{"s", "1"}}).set(0.25);
    registry.counter("alpha").add(3);
    registry.histogram("mid", {}, 0.0, 10.0, 10).observe(4.0);
  };
  Registry one;
  Registry two;
  fill(one);
  fill(two);
  EXPECT_EQ(one.to_json(), two.to_json());
  EXPECT_EQ(one.to_csv(), two.to_csv());

  const std::string csv = one.to_csv();
  EXPECT_EQ(csv.find("name,labels,type,value,count,sum,min,max,p50,p95,p99"),
            0u);
  // Lexicographic instrument order: alpha before mid before zeta.
  EXPECT_LT(csv.find("alpha"), csv.find("mid"));
  EXPECT_LT(csv.find("mid"), csv.find("zeta,\"s=1\""));

  const std::string json = one.to_json();
  EXPECT_NE(json.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":3"), std::string::npos);
}

TEST(RegistryTest, FleetMetricsExportLandsCountersAndGauges) {
  sched::FleetMetrics metrics;
  metrics.jobs_submitted = 10;
  metrics.jobs_completed = 9;
  metrics.preemptions = 2;
  metrics.latency_p99 = 321.5;
  metrics.utilization = 0.625;
  metrics.cost_per_job_usd = 0.75;

  Registry registry;
  const Labels labels = {{"policy", "cost"}};
  metrics.export_to(registry, labels);

  const Counter* completed =
      registry.find_counter("fleet.jobs_completed", labels);
  ASSERT_NE(completed, nullptr);
  EXPECT_EQ(completed->value(), 9u);
  const Counter* preemptions =
      registry.find_counter("fleet.preemptions", labels);
  ASSERT_NE(preemptions, nullptr);
  EXPECT_EQ(preemptions->value(), 2u);
  const Gauge* p99 = registry.find_gauge("fleet.latency_p99_seconds", labels);
  ASSERT_NE(p99, nullptr);
  EXPECT_DOUBLE_EQ(p99->value(), 321.5);
  const Gauge* util = registry.find_gauge("fleet.utilization", labels);
  ASSERT_NE(util, nullptr);
  EXPECT_DOUBLE_EQ(util->value(), 0.625);
  const Gauge* cost = registry.find_gauge("fleet.cost_per_job_usd", labels);
  ASSERT_NE(cost, nullptr);
  EXPECT_DOUBLE_EQ(cost->value(), 0.75);
}

}  // namespace
}  // namespace edacloud::obs
