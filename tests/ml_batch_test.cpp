// Batched GCN inference: the bit-identity contract (batched == serial at
// any thread count), in-batch content dedup, padded-tensor edge cases and
// PredictionCache LRU/eviction/thread-safety semantics. These suites run
// under TSan in scripts/check.sh (MlBatchTest in the tier-2 regex).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <thread>
#include <vector>

#include "core/predictor.hpp"
#include "ml/batch.hpp"
#include "ml/gcn.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace edacloud::ml {
namespace {

/// Restore the global kernel width on scope exit so a failing assertion
/// cannot leak a non-default width into later tests.
struct ThreadWidthGuard {
  explicit ThreadWidthGuard(int n) { util::set_global_thread_count(n); }
  ~ThreadWidthGuard() { util::set_global_thread_count(1); }
};

/// Small random DAG sample (gcn_test idiom): edge i <- rng.below(i).
GraphSample make_sample(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::pair<nl::VertexId, nl::VertexId>> edges;
  for (std::size_t i = 1; i < n; ++i) {
    edges.emplace_back(static_cast<nl::VertexId>(rng.next_below(i)),
                       static_cast<nl::VertexId>(i));
  }
  GraphSample sample;
  sample.in_neighbors = nl::transpose(nl::build_csr(n, edges));
  sample.features = Matrix(n, 20);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t c = 0; c < 19; ++c) {
      sample.features.at(v, c) = rng.next_double(0.0, 1.0);
    }
    sample.features.at(v, 19) = 1.0;  // bias channel
  }
  return sample;
}

GcnConfig tiny_config() {
  GcnConfig config;
  config.hidden1 = 8;
  config.hidden2 = 8;
  config.fc = 8;
  return config;
}

std::array<double, kRuntimeOutputs> make_value(double base) {
  return {base, base + 1.0, base + 2.0, base + 3.0};
}

TEST(MlBatchTest, BatchedMatchesSerialBitIdenticalAcrossThreadCounts) {
  const GcnConfig config = tiny_config();
  const GcnModel model(config);  // deterministic init; untrained is fine

  // Mixed sizes across several power-of-two buckets, plus duplicates.
  const std::size_t sizes[] = {1, 5, 16, 33, 64, 100};
  std::vector<GraphSample> storage;
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    storage.push_back(make_sample(sizes[i], 100 + i));
  }
  std::vector<const GraphSample*> batch;
  for (const auto& sample : storage) batch.push_back(&sample);
  for (const auto& sample : storage) batch.push_back(&sample);  // duplicates

  std::vector<std::array<double, kRuntimeOutputs>> serial;
  for (const auto* sample : batch) serial.push_back(model.predict(*sample));

  for (const int threads : {1, 2, 8}) {
    ThreadWidthGuard guard(threads);
    const BatchedGcn batched(model);
    const auto out = batched.predict(batch);
    ASSERT_EQ(out.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      for (int j = 0; j < kRuntimeOutputs; ++j) {
        EXPECT_EQ(out[i][j], serial[i][j])
            << "threads=" << threads << " query=" << i << " lane=" << j;
      }
    }
  }
}

TEST(MlBatchTest, EmptyBatchReturnsEmpty) {
  const GcnModel model(tiny_config());
  const BatchedGcn batched(model);
  EXPECT_TRUE(batched.predict({}).empty());
  EXPECT_EQ(batched.last_stats().queries, 0u);
  EXPECT_EQ(batched.last_stats().groups, 0u);
}

TEST(MlBatchTest, SingletonGroupMatchesSerial) {
  const GcnModel model(tiny_config());
  const GraphSample sample = make_sample(7, 42);
  const BatchedGcn batched(model);
  const auto out = batched.predict({&sample});
  const auto serial = model.predict(sample);
  ASSERT_EQ(out.size(), 1u);
  for (int j = 0; j < kRuntimeOutputs; ++j) EXPECT_EQ(out[0][j], serial[j]);
  EXPECT_EQ(batched.last_stats().groups, 1u);
  EXPECT_EQ(batched.last_stats().padded_rows, 1u);  // 7 -> stride 8
}

TEST(MlBatchTest, PowerOfTwoSizeGraphNeedsNoPadding) {
  const GcnModel model(tiny_config());
  const GraphSample a = make_sample(16, 1);
  const GraphSample b = make_sample(16, 2);
  const BatchedGcn batched(model);
  const auto out = batched.predict({&a, &b});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(batched.last_stats().padded_rows, 0u);
  EXPECT_EQ(batched.last_stats().real_rows, 32u);
  const auto sa = model.predict(a);
  const auto sb = model.predict(b);
  for (int j = 0; j < kRuntimeOutputs; ++j) {
    EXPECT_EQ(out[0][j], sa[j]);
    EXPECT_EQ(out[1][j], sb[j]);
  }
}

TEST(MlBatchTest, DedupComputesDistinctContentOnce) {
  const GcnModel model(tiny_config());
  const GraphSample a = make_sample(12, 1);
  const GraphSample a_copy = make_sample(12, 1);  // identical content
  const GraphSample b = make_sample(12, 2);
  const BatchedGcn batched(model);
  const auto out = batched.predict({&a, &a_copy, &b, &a});
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(batched.last_stats().queries, 4u);
  EXPECT_EQ(batched.last_stats().distinct, 2u);
  EXPECT_EQ(batched.last_stats().duplicates, 2u);
  for (int j = 0; j < kRuntimeOutputs; ++j) {
    EXPECT_EQ(out[0][j], out[1][j]);
    EXPECT_EQ(out[0][j], out[3][j]);
  }
}

TEST(MlBatchTest, DedupDisabledComputesEveryQuery) {
  const GcnModel model(tiny_config());
  const GraphSample a = make_sample(12, 1);
  BatchOptions options;
  options.dedup = false;
  const BatchedGcn batched(model, options);
  const auto out = batched.predict({&a, &a, &a});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(batched.last_stats().distinct, 3u);
  EXPECT_EQ(batched.last_stats().duplicates, 0u);
  for (int j = 0; j < kRuntimeOutputs; ++j) EXPECT_EQ(out[0][j], out[2][j]);
}

TEST(MlBatchTest, CallerSuppliedKeysMatchHashedPath) {
  const GcnModel model(tiny_config());
  const GraphSample a = make_sample(20, 5);
  const GraphSample b = make_sample(24, 6);
  const std::vector<const GraphSample*> batch = {&a, &b, &a};
  const std::vector<ContentKey> keys = {content_key(a), content_key(b),
                                        content_key(a)};
  const BatchedGcn batched(model);
  const auto hashed = batched.predict(batch);
  const auto keyed = batched.predict(batch, keys);
  ASSERT_EQ(hashed.size(), keyed.size());
  for (std::size_t i = 0; i < hashed.size(); ++i) {
    for (int j = 0; j < kRuntimeOutputs; ++j) {
      EXPECT_EQ(hashed[i][j], keyed[i][j]);
    }
  }
}

TEST(MlBatchTest, ContentKeyDiscriminatesContent) {
  const GraphSample a = make_sample(30, 9);
  GraphSample a_copy = make_sample(30, 9);
  EXPECT_EQ(content_key(a), content_key(a_copy));

  // A single feature bit flip must change the key.
  a_copy.features.at(17, 3) =
      std::nextafter(a_copy.features.at(17, 3), 2.0);
  EXPECT_FALSE(content_key(a) == content_key(a_copy));

  // Structure matters too: a different DAG over the same feature matrix.
  GraphSample restructured = make_sample(30, 9);
  std::vector<std::pair<nl::VertexId, nl::VertexId>> edges = {{0, 29}};
  restructured.in_neighbors = nl::transpose(nl::build_csr(30, edges));
  EXPECT_FALSE(content_key(a) == content_key(restructured));

  // Salting separates domains without losing equality within one.
  const GraphSample a_fresh = make_sample(30, 9);
  EXPECT_FALSE(content_key(a) == content_key(a).salted(1));
  EXPECT_FALSE(content_key(a).salted(1) == content_key(a).salted(2));
  EXPECT_EQ(content_key(a).salted(3), content_key(a_fresh).salted(3));
}

TEST(MlBatchTest, CacheHitReturnsByteIdenticalValue) {
  PredictionCache cache(8);
  const ContentKey key{1, 2};
  const auto value = make_value(3.25);
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, value);
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  for (int j = 0; j < kRuntimeOutputs; ++j) EXPECT_EQ((*hit)[j], value[j]);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().insertions, 1u);
}

TEST(MlBatchTest, LruEvictionIsDeterministic) {
  PredictionCache cache(2);
  const ContentKey k1{1, 0}, k2{2, 0}, k3{3, 0};
  cache.insert(k1, make_value(1.0));
  cache.insert(k2, make_value(2.0));
  ASSERT_TRUE(cache.lookup(k1).has_value());  // k1 now MRU, k2 is LRU
  cache.insert(k3, make_value(3.0));          // evicts k2
  EXPECT_TRUE(cache.lookup(k1).has_value());
  EXPECT_FALSE(cache.lookup(k2).has_value());
  EXPECT_TRUE(cache.lookup(k3).has_value());
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.stats().insertions, 3u);
}

TEST(MlBatchTest, CacheInsertUpdatesExistingKey) {
  PredictionCache cache(4);
  const ContentKey key{7, 7};
  cache.insert(key, make_value(1.0));
  cache.insert(key, make_value(9.0));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)[0], 9.0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(MlBatchTest, CapacityZeroDisablesCache) {
  PredictionCache cache(0);
  const ContentKey key{5, 5};
  cache.insert(key, make_value(1.0));
  EXPECT_FALSE(cache.lookup(key).has_value());
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(MlBatchTest, CacheIsSafeUnderConcurrentAccess) {
  PredictionCache cache(16);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 200; ++i) {
        const ContentKey key{static_cast<std::uint64_t>(i % 32),
                             static_cast<std::uint64_t>(t % 2)};
        if (const auto hit = cache.lookup(key)) {
          // Hits must carry the value some thread inserted for this key.
          EXPECT_EQ((*hit)[0], static_cast<double>(i % 32));
        } else {
          cache.insert(key, make_value(static_cast<double>(i % 32)));
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 4u * 200u);
  EXPECT_LE(cache.size(), 16u);
}

TEST(MlBatchTest, OneUlpChangeInAnyFeatureSlotChangesTheKey) {
  // Property sweep (ISSUE 9 satellite): nudging ANY single feature slot by
  // one ulp must produce a key distinct from the base AND from every other
  // single-slot nudge — the cache must never serve a stale prediction for
  // an almost-identical graph. 12 vertices x 20 channels = 240 variants.
  const GraphSample base = make_sample(12, 77);
  std::vector<ContentKey> keys;
  keys.push_back(content_key(base));
  for (std::size_t v = 0; v < base.features.rows(); ++v) {
    for (std::size_t c = 0; c < base.features.cols(); ++c) {
      GraphSample nudged = make_sample(12, 77);
      double& slot = nudged.features.at(v, c);
      slot = std::nextafter(slot, std::numeric_limits<double>::infinity());
      keys.push_back(content_key(nudged));
    }
  }
  std::sort(keys.begin(), keys.end());
  for (std::size_t i = 1; i < keys.size(); ++i) {
    ASSERT_FALSE(keys[i - 1] == keys[i])
        << "collision between single-ulp variants at sorted index " << i;
  }
}

/// Reference LRU: the obviously-correct O(n) model the real cache is
/// checked against, move-to-front on hit and insert, evict from the back.
class ModelLru {
 public:
  explicit ModelLru(std::size_t capacity) : capacity_(capacity) {}

  bool lookup(const ContentKey& key) {
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i] == key) {
        const ContentKey hit = entries_[i];
        entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
        entries_.insert(entries_.begin(), hit);
        return true;
      }
    }
    return false;
  }

  void insert(const ContentKey& key) {
    if (capacity_ == 0) return;
    if (lookup(key)) return;  // update moves to front, no growth
    entries_.insert(entries_.begin(), key);
    if (entries_.size() > capacity_) {
      ++evictions_;
      entries_.pop_back();
    }
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

 private:
  std::size_t capacity_;
  std::vector<ContentKey> entries_;  // front = most recently used
  std::uint64_t evictions_ = 0;
};

TEST(MlBatchTest, RandomizedOpsAgreeWithReferenceLruModel) {
  // Property test: 5000 random lookup/insert ops over a small key universe
  // (forcing heavy eviction traffic) must agree with the reference model
  // op for op — same hit/miss answer, same size, same eviction count at
  // every step. Replaying the same seed reproduces the exact trace.
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    for (const std::size_t capacity : {1u, 3u, 8u}) {
      PredictionCache cache(capacity);
      ModelLru model(capacity);
      util::Rng rng(seed);
      for (int op = 0; op < 5000; ++op) {
        const ContentKey key{rng.next_below(capacity * 4 + 2), 9};
        if (rng.next_bool(0.5)) {
          const bool model_hit = model.lookup(key);
          const bool cache_hit = cache.lookup(key).has_value();
          ASSERT_EQ(cache_hit, model_hit)
              << "seed=" << seed << " capacity=" << capacity << " op=" << op;
        } else {
          model.insert(key);
          cache.insert(key, make_value(static_cast<double>(key.lo)));
        }
        ASSERT_EQ(cache.size(), model.size());
        ASSERT_LE(cache.size(), capacity);
        ASSERT_EQ(cache.stats().evictions, model.evictions());
      }
    }
  }
}

TEST(MlBatchTest, ConcurrentInterleavingsKeepCapacityAndStatsConsistent) {
  // Under concurrent mutation the interleaving is not deterministic, but
  // the invariants must hold at every observation: size never exceeds
  // capacity, hits + misses equals the number of lookups issued, and
  // insertions - evictions equals the resident count when the run ends.
  for (const int workers : {2, 8}) {
    PredictionCache cache(12);
    const int kOpsPerWorker = 3000;
    std::vector<std::thread> threads;
    for (int t = 0; t < workers; ++t) {
      threads.emplace_back([&cache, t] {
        util::Rng rng(1000 + static_cast<std::uint64_t>(t));
        for (int op = 0; op < kOpsPerWorker; ++op) {
          const ContentKey key{rng.next_below(40), 3};
          if (rng.next_bool(0.5)) {
            (void)cache.lookup(key);
          } else {
            cache.insert(key, make_value(static_cast<double>(key.lo)));
          }
          EXPECT_LE(cache.size(), 12u);
        }
      });
    }
    for (auto& thread : threads) thread.join();
    const auto stats = cache.stats();
    std::uint64_t lookups = 0;
    for (int t = 0; t < workers; ++t) {
      util::Rng rng(1000 + static_cast<std::uint64_t>(t));
      for (int op = 0; op < kOpsPerWorker; ++op) {
        (void)rng.next_below(40);
        if (rng.next_bool(0.5)) ++lookups;
      }
    }
    EXPECT_EQ(stats.hits + stats.misses, lookups) << "workers=" << workers;
    EXPECT_EQ(stats.insertions - stats.evictions, cache.size());
    EXPECT_LE(cache.size(), 12u);
  }
}

TEST(MlBatchTest, PredictorBatchReturnsZerosWhenUntrained) {
  const core::RuntimePredictor predictor;
  const GraphSample sample = make_sample(10, 3);
  const auto out =
      predictor.predict_batch(core::JobKind::kSynthesis, {&sample});
  ASSERT_EQ(out.size(), 1u);
  for (int j = 0; j < kRuntimeOutputs; ++j) EXPECT_EQ(out[0][j], 0.0);
}

}  // namespace
}  // namespace edacloud::ml
