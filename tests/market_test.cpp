// Tests for the dynamic spot-price market layer (DESIGN.md §15,
// docs/MARKETS.md): price-trace semantics and canonical-format round-trips,
// the StaticMarket bit-compat adapter, price-triggered eviction against
// bids, the traffic-mix provider registry, and the hard contract that a
// moving market keeps the sharded engine byte-identical across shard and
// thread counts — with the re-bid/migrate policy live.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "cloud/market.hpp"
#include "market/market.hpp"
#include "market/price_trace.hpp"
#include "sched/load_gen.hpp"
#include "sched/market_policy.hpp"
#include "sched/sharded_simulator.hpp"
#include "sched/simulator.hpp"
#include "util/rng.hpp"

namespace edacloud {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// A hand-built step trace: 0.3 until t=1000, 0.9 until t=2000, then 0.2.
market::PriceTrace step_trace() {
  market::PriceTrace trace;
  trace.family = perf::InstanceFamily::kGeneralPurpose;
  trace.vcpus = 4;
  trace.points = {{0.0, 0.3}, {1000.0, 0.9}, {2000.0, 0.2}};
  return trace;
}

TEST(PriceTraceTest, PriceAtIsPiecewiseConstantWithFlatEnds) {
  const market::PriceTrace trace = step_trace();
  EXPECT_DOUBLE_EQ(trace.price_at(-50.0), 0.3);  // flat extension left
  EXPECT_DOUBLE_EQ(trace.price_at(0.0), 0.3);
  EXPECT_DOUBLE_EQ(trace.price_at(999.9), 0.3);
  EXPECT_DOUBLE_EQ(trace.price_at(1000.0), 0.9);
  EXPECT_DOUBLE_EQ(trace.price_at(1999.9), 0.9);
  EXPECT_DOUBLE_EQ(trace.price_at(2000.0), 0.2);
  EXPECT_DOUBLE_EQ(trace.price_at(1e9), 0.2);  // flat extension right
}

TEST(PriceTraceTest, MeanOverIntegratesTheStepFunction) {
  const market::PriceTrace trace = step_trace();
  // [500, 1500]: 500s at 0.3 + 500s at 0.9 = 0.6 mean.
  EXPECT_NEAR(trace.mean_over(500.0, 1500.0), 0.6, 1e-12);
  // Degenerate window: the instantaneous price.
  EXPECT_DOUBLE_EQ(trace.mean_over(1200.0, 1200.0), 0.9);
}

TEST(PriceTraceTest, FirstCrossingAboveMatchesBidSemantics) {
  const market::PriceTrace trace = step_trace();
  // Bid 0.5 at t=0: the price first exceeds it at the t=1000 step.
  EXPECT_DOUBLE_EQ(trace.first_crossing_above(0.0, 0.5), 1000.0);
  // Already above the bid: evict immediately.
  EXPECT_DOUBLE_EQ(trace.first_crossing_above(1500.0, 0.5), 0.0);
  // Bid at the peak: strict crossing never happens.
  EXPECT_EQ(trace.first_crossing_above(0.0, 0.9), kInf);
  // After the last step the price holds flat below the bid forever.
  EXPECT_EQ(trace.first_crossing_above(2500.0, 0.5), kInf);
}

TEST(PriceTraceTest, GenerationIsDeterministicAndBounded) {
  market::PriceTraceGenConfig config;
  config.seed = 42;
  config.duration_seconds = 6 * 3600.0;
  config.spike_probability = 0.02;
  const market::PriceTraceSet a = market::generate_price_traces(config);
  const market::PriceTraceSet b = market::generate_price_traces(config);
  ASSERT_EQ(a.traces.size(), b.traces.size());
  ASSERT_EQ(a.traces.size(), 12u);  // 3 families x 4 sizes
  for (std::size_t i = 0; i < a.traces.size(); ++i) {
    ASSERT_EQ(a.traces[i].points.size(), b.traces[i].points.size());
    for (std::size_t j = 0; j < a.traces[i].points.size(); ++j) {
      EXPECT_EQ(a.traces[i].points[j].time, b.traces[i].points[j].time);
      EXPECT_EQ(a.traces[i].points[j].price, b.traces[i].points[j].price);
    }
    EXPECT_GE(a.traces[i].min_price(), config.floor_price);
    EXPECT_LE(a.traces[i].max_price(), config.cap_price * 1.0 + 1e-12);
  }
}

TEST(PriceTraceTest, WriteParseRoundTripsExactly) {
  market::PriceTraceGenConfig config;
  config.seed = 9;
  config.duration_seconds = 2 * 3600.0;
  config.spike_probability = 0.05;
  const market::PriceTraceSet original = market::generate_price_traces(config);
  const std::string text = market::write_price_traces(original);
  const market::PriceTraceSet parsed = market::parse_price_traces(text);
  ASSERT_EQ(parsed.traces.size(), original.traces.size());
  for (std::size_t i = 0; i < original.traces.size(); ++i) {
    EXPECT_EQ(parsed.traces[i].family, original.traces[i].family);
    EXPECT_EQ(parsed.traces[i].vcpus, original.traces[i].vcpus);
    ASSERT_EQ(parsed.traces[i].points.size(), original.traces[i].points.size());
    for (std::size_t j = 0; j < original.traces[i].points.size(); ++j) {
      // Shortest-round-trip formatting: parse(write(x)) == x bit-for-bit.
      EXPECT_EQ(parsed.traces[i].points[j].time,
                original.traces[i].points[j].time);
      EXPECT_EQ(parsed.traces[i].points[j].price,
                original.traces[i].points[j].price);
    }
  }
}

TEST(PriceTraceTest, ParserRejectsMalformedInput) {
  EXPECT_THROW(market::parse_price_traces("not a trace"),
               std::invalid_argument);
  EXPECT_THROW(market::parse_price_traces("edacloud-price-trace v1\n"
                                          "trace general 4\n"
                                          "100 0.5\n"
                                          "50 0.4\n"),  // times must ascend
               std::invalid_argument);
  EXPECT_THROW(market::parse_price_traces("edacloud-price-trace v1\n"
                                          "trace general 4\n"
                                          "0 -0.5\n"),  // price must be > 0
               std::invalid_argument);
}

TEST(StaticMarketTest, ReproducesSpotModelBitForBit) {
  cloud::SpotModel spot;
  spot.price_multiplier = 0.41;
  spot.interruptions_per_hour = 0.7;
  const cloud::StaticMarket static_market(spot);

  EXPECT_EQ(static_market.price_at(perf::InstanceFamily::kComputeOptimized, 8,
                                   1234.5),
            spot.price_multiplier);
  EXPECT_EQ(static_market.mean_price(perf::InstanceFamily::kGeneralPurpose, 1,
                                     0.0, 9999.0),
            spot.price_multiplier);

  // Same seed, same draw sequence: the adapter must consume the RNG exactly
  // like the raw model, or pre-market runs would not replay bit-for-bit.
  util::Rng raw(77);
  util::Rng adapted(77);
  for (int i = 0; i < 32; ++i) {
    const double expected = spot.sample_time_to_interruption(raw);
    const double actual = static_market.reclaim_draw(
        perf::InstanceFamily::kMemoryOptimized, 2, 100.0 * i, 0.5, adapted);
    EXPECT_EQ(actual, expected);
  }
}

TEST(StaticMarketTest, EnsureMarketNormalizesNullToStatic) {
  cloud::SpotModel spot;
  spot.price_multiplier = 0.27;
  const auto market = cloud::ensure_market(nullptr, spot);
  ASSERT_NE(market, nullptr);
  EXPECT_EQ(market->name(), "static");
  EXPECT_EQ(market->planning_view().price_multiplier, spot.price_multiplier);
  // An existing market passes through untouched.
  EXPECT_EQ(cloud::ensure_market(market, spot), market);
}

TEST(TraceMarketTest, ReclaimDrawIsPriceTriggeredAndConsumesNoRng) {
  market::PriceTraceSet set;
  set.traces = {step_trace()};
  const market::TraceMarket traced(set);

  util::Rng rng(5);
  const std::uint64_t before = rng();
  util::Rng replay(5);

  // Bid 0.5 at t=0: evicted when the 0.9 step arrives, in 1000 s.
  EXPECT_DOUBLE_EQ(
      traced.reclaim_draw(perf::InstanceFamily::kGeneralPurpose, 4, 0.0, 0.5,
                          replay),
      1000.0);
  // Bid above the whole trace: never reclaimed.
  EXPECT_EQ(traced.reclaim_draw(perf::InstanceFamily::kGeneralPurpose, 4, 0.0,
                                1.0, replay),
            kInf);
  // The draw consumed no randomness — the stream is exactly where it was.
  EXPECT_EQ(replay(), before);
}

TEST(TraceMarketTest, PresetMarketsAreSeededAndNamed) {
  const auto storm = market::make_preset_market("storm", 3, 4 * 3600.0);
  const auto storm_again = market::make_preset_market("storm", 3, 4 * 3600.0);
  ASSERT_EQ(storm->traces().traces.size(),
            storm_again->traces().traces.size());
  for (std::size_t i = 0; i < storm->traces().traces.size(); ++i) {
    EXPECT_EQ(storm->traces().traces[i].points.size(),
              storm_again->traces().traces[i].points.size());
  }
  EXPECT_THROW(market::make_preset_market("hurricane", 1, 3600.0),
               std::invalid_argument);
  try {
    market::make_preset_market("hurricane", 1, 3600.0);
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    // The error enumerates the valid preset vocabulary.
    EXPECT_NE(what.find("drift"), std::string::npos);
    EXPECT_NE(what.find("storm"), std::string::npos);
  }
}

TEST(TrafficMixRegistryTest, BuiltinsAreRegisteredAndErrorsEnumerate) {
  const std::vector<std::string> names = sched::traffic_mix_names();
  for (const char* expected :
       {"uniform", "skewed", "bursty", "diurnal", "flash"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
  EXPECT_EQ(sched::mix_by_name("diurnal").sine_period_seconds, 86400.0);
  EXPECT_GT(sched::mix_by_name("flash").burst_factor, 1.0);
  try {
    sched::mix_by_name("lumpy");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("diurnal"), std::string::npos);
    EXPECT_NE(what.find("flash"), std::string::npos);
    EXPECT_NE(what.find("uniform"), std::string::npos);
  }
}

TEST(TrafficMixRegistryTest, CustomMixesRegisterAndResolve) {
  sched::register_traffic_mix("weekend-lull", [] {
    sched::TrafficMix mix;
    mix.name = "weekend-lull";
    mix.weights = {1.0, 1.0, 1.0};
    mix.sine_amplitude = 0.3;
    mix.sine_period_seconds = 7 * 86400.0;
    return mix;
  });
  const sched::TrafficMix mix = sched::mix_by_name("weekend-lull");
  EXPECT_EQ(mix.name, "weekend-lull");
  EXPECT_DOUBLE_EQ(mix.sine_amplitude, 0.3);
}

TEST(MarketPolicyTest, StageCostScalesWithRemainingCheckpointCredit) {
  // The migrate decision prices only the *remaining* stage work, so a job
  // that checkpointed half its stage pays half — checkpoint credit is
  // preserved through the cost model (and through migration itself, which
  // carries stage_progress in the Job it hands off).
  const auto& templates = sched::builtin_templates();
  sched::FleetConfig fleet;
  fleet.market = cloud::ensure_market(nullptr, fleet.spot);
  sched::Job fresh;
  fresh.template_index = 0;
  sched::Job half = fresh;
  half.stage_progress = 0.5;
  const sched::PoolKey pool{perf::InstanceFamily::kGeneralPurpose, 4};
  const double fresh_cost = sched::market_stage_cost_usd(
      *fleet.market, fleet, templates[0], fresh, pool, 0.0);
  const double half_cost = sched::market_stage_cost_usd(
      *fleet.market, fleet, templates[0], half, pool, 0.0);
  EXPECT_GT(fresh_cost, 0.0);
  EXPECT_NEAR(half_cost, 0.5 * fresh_cost, 1e-12);
}

TEST(MarketPolicyTest, DecisionsAreDeterministicPureFunctions) {
  const auto storm = market::make_preset_market("storm", 11, 8 * 3600.0);
  const auto& templates = sched::builtin_templates();
  sched::FleetConfig fleet;
  fleet.spot_fraction = 0.6;
  fleet.market = storm;
  sched::MarketPolicyConfig policy;
  policy.enabled = true;
  sched::Job job;
  job.template_index = 1;
  const sched::PoolKey pool{perf::InstanceFamily::kMemoryOptimized, 8};
  for (double t : {0.0, 1800.0, 7200.0, 20000.0}) {
    const sched::MarketDecision a =
        sched::market_decide(*storm, fleet, policy, templates[1], job, pool, t);
    const sched::MarketDecision b =
        sched::market_decide(*storm, fleet, policy, templates[1], job, pool, t);
    EXPECT_EQ(a.action, b.action);
    EXPECT_EQ(a.pool, b.pool);
  }
}

// ---------------------------------------------------------------------------
// Engine-level contracts under a moving market.

sched::ShardedSimConfig market_config(int shards, int threads) {
  sched::ShardedSimConfig config;
  config.base.seed = 21;
  config.base.duration_seconds = 2 * 3600.0;
  config.base.load.arrival_rate_per_hour = 120.0;
  config.base.load.mix = sched::diurnal_mix();
  config.base.fleet.spot_fraction = 0.6;
  config.base.fleet.spot_bid_fraction = 0.5;
  config.base.fleet.market =
      market::make_preset_market("storm", 21, 3 * 3600.0);
  config.base.market.enabled = true;
  config.base.market.interval_seconds = 300.0;
  config.base.fault.restart = sched::RestartModel::kCheckpoint;
  config.base.fault.checkpoint_interval_seconds = 120.0;
  config.base.fault.checkpoint_overhead_seconds = 5.0;
  config.shards = shards;
  config.threads = threads;
  config.handoff_latency_seconds = 2.0;
  return config;
}

void expect_identical(const sched::FleetMetrics& a,
                      const sched::FleetMetrics& b) {
  EXPECT_EQ(a.jobs_submitted, b.jobs_submitted);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_failed, b.jobs_failed);
  EXPECT_EQ(a.tasks_dispatched, b.tasks_dispatched);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.spot_fallbacks, b.spot_fallbacks);
  EXPECT_EQ(a.market_rebids, b.market_rebids);
  EXPECT_EQ(a.market_fallbacks, b.market_fallbacks);
  EXPECT_EQ(a.market_migrations, b.market_migrations);
  EXPECT_EQ(a.wasted_seconds, b.wasted_seconds);
  EXPECT_EQ(a.checkpoint_overhead_seconds, b.checkpoint_overhead_seconds);
  EXPECT_EQ(a.goodput_fraction, b.goodput_fraction);
  EXPECT_EQ(a.drained_at_seconds, b.drained_at_seconds);
  EXPECT_EQ(a.latency_p50, b.latency_p50);
  EXPECT_EQ(a.latency_p99, b.latency_p99);
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.mean_queue_wait, b.mean_queue_wait);
  EXPECT_EQ(a.slo_violation_rate, b.slo_violation_rate);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.total_cost_usd, b.total_cost_usd);
  EXPECT_EQ(a.cost_per_job_usd, b.cost_per_job_usd);
  EXPECT_EQ(a.peak_vms, b.peak_vms);
  EXPECT_EQ(a.vms_launched, b.vms_launched);
}

sched::FleetMetrics run_sharded(const sched::ShardedSimConfig& config) {
  sched::ShardedFleetSimulator sim(config, sched::builtin_templates(), "cost");
  return sim.run();
}

TEST(MarketShardTest, MovingMarketIsByteIdenticalAcrossShardCounts) {
  const sched::FleetMetrics one = run_sharded(market_config(1, 1));
  const sched::FleetMetrics eight = run_sharded(market_config(8, 1));
  expect_identical(one, eight);
  // The market layer actually did something in this configuration —
  // identity over a no-op market would prove nothing.
  EXPECT_GT(one.preemptions, 0u);
  EXPECT_GT(one.market_rebids, 0u);
}

TEST(MarketShardTest, MovingMarketIsByteIdenticalAcrossThreadCounts) {
  const sched::FleetMetrics serial = run_sharded(market_config(8, 1));
  const sched::FleetMetrics parallel = run_sharded(market_config(8, 8));
  expect_identical(serial, parallel);
}

TEST(MarketSimTest, RebidPolicyNeverStrandsAllSpotWork) {
  // All-spot fleet in a storm: the fallback path is unavailable (nothing
  // on-demand to fall back to), so every queued task must either finish or
  // exhaust its retry budget — never hang the drain.
  sched::SimConfig config;
  config.seed = 33;
  config.duration_seconds = 3600.0;
  config.load.arrival_rate_per_hour = 90.0;
  config.load.mix = sched::uniform_mix();
  config.fleet.spot_fraction = 1.0;
  config.fleet.spot_bid_fraction = 0.4;
  config.fleet.market = market::make_preset_market("storm", 33, 2 * 3600.0);
  config.market.enabled = true;
  config.fault.max_attempts_per_stage = 6;
  sched::FleetSimulator sim(config, sched::builtin_templates(),
                            sched::make_policy("cost"));
  const sched::FleetMetrics metrics = sim.run();
  EXPECT_GT(metrics.jobs_submitted, 0u);
  EXPECT_EQ(metrics.jobs_completed + metrics.jobs_failed,
            metrics.jobs_submitted);
  // The all-spot guard held: no task was priced off spot with nowhere to go.
  EXPECT_EQ(metrics.market_fallbacks, 0u);
}

TEST(MarketSimTest, SequentialEngineRunsMigrationsUnderStorm) {
  sched::SimConfig config;
  config.seed = 5;
  config.duration_seconds = 2 * 3600.0;
  config.load.arrival_rate_per_hour = 150.0;
  config.load.mix = sched::flash_mix();
  config.fleet.spot_fraction = 0.6;
  config.fleet.market = market::make_preset_market("storm", 5, 3 * 3600.0);
  config.market.enabled = true;
  config.fault.restart = sched::RestartModel::kCheckpoint;
  config.fault.checkpoint_interval_seconds = 120.0;
  config.fault.checkpoint_overhead_seconds = 5.0;
  sched::FleetSimulator sim(config, sched::builtin_templates(),
                            sched::make_policy("cost"));
  const sched::FleetMetrics metrics = sim.run();
  EXPECT_EQ(metrics.jobs_completed + metrics.jobs_failed,
            metrics.jobs_submitted);
  // Migrated/re-bid work completes: the policy reshapes routing without
  // losing jobs, and checkpoint credit carries across the move.
  EXPECT_GT(metrics.market_rebids + metrics.market_migrations, 0u);
}

}  // namespace
}  // namespace edacloud
