#include <gtest/gtest.h>

#include "core/report.hpp"
#include "nl/dot.hpp"
#include "sta/sta.hpp"
#include "synth/engine.hpp"
#include "workloads/generators.hpp"

namespace edacloud {
namespace {

const nl::CellLibrary& library() {
  static const nl::CellLibrary lib = nl::make_generic_14nm_library();
  return lib;
}

// ---- DOT export ---------------------------------------------------------------

TEST(DotTest, NetlistDotHasNodesAndEdges) {
  nl::Netlist n("demo", &library());
  const auto a = n.add_input();
  const auto g = n.add_cell(*library().find("INV_X1"), {a});
  n.add_output(g);
  const std::string dot = nl::write_dot(n);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("INV_X1"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
  EXPECT_NE(dot.find("}"), std::string::npos);
}

TEST(DotTest, AigDotMarksComplementedEdges) {
  nl::Aig aig;
  const auto a = aig.add_input();
  const auto b = aig.add_input();
  aig.add_output(aig.and_of(a, nl::literal_not(b)));
  const std::string dot = nl::write_dot(aig);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("shape=triangle"), std::string::npos);
}

// ---- STA worst paths ------------------------------------------------------------

TEST(WorstPathsTest, RankedByArrival) {
  synth::SynthesisEngine engine(library());
  const nl::Netlist netlist =
      engine.synthesize(workloads::gen_adder(8), synth::default_recipe())
          .netlist;
  sta::StaEngine sta_engine;
  const auto report = sta_engine.run(netlist, nullptr, {});
  const auto paths = sta::worst_paths(report, netlist, 5);
  ASSERT_EQ(paths.size(), 5u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i - 1].arrival_ps, paths[i].arrival_ps);
  }
  // Worst path matches the report's critical path arrival.
  EXPECT_DOUBLE_EQ(paths[0].arrival_ps, report.critical_path_ps);
  // Every path starts at a PI and ends at a PO.
  for (const auto& path : paths) {
    ASSERT_GE(path.nodes.size(), 2u);
    EXPECT_EQ(netlist.node(path.nodes.front()).kind,
              nl::NodeKind::kPrimaryInput);
    EXPECT_EQ(netlist.node(path.nodes.back()).kind,
              nl::NodeKind::kPrimaryOutput);
  }
}

TEST(WorstPathsTest, KLargerThanEndpointsClamps) {
  synth::SynthesisEngine engine(library());
  const nl::Netlist netlist =
      engine.synthesize(workloads::gen_parity(8), synth::default_recipe())
          .netlist;
  sta::StaEngine sta_engine;
  const auto report = sta_engine.run(netlist, nullptr, {});
  const auto paths = sta::worst_paths(report, netlist, 100);
  EXPECT_EQ(paths.size(), netlist.outputs().size());
}

TEST(StaPowerTest, PowerReportPopulated) {
  synth::SynthesisEngine engine(library());
  const nl::Netlist netlist =
      engine.synthesize(workloads::gen_alu(8), synth::default_recipe())
          .netlist;
  sta::StaEngine sta_engine;
  const auto report = sta_engine.run(netlist, nullptr, {});
  EXPECT_GT(report.leakage_power_nw, 0.0);
  EXPECT_GT(report.dynamic_power_uw, 0.0);
}

TEST(StaSlewTest, SlewGrowsWithFanout) {
  // A cell driving many sinks sees more load -> larger output slew.
  nl::Netlist n("slew", &library());
  const auto a = n.add_input();
  const auto light = n.add_cell(*library().find("INV_X1"), {a});
  const auto heavy = n.add_cell(*library().find("INV_X1"), {a});
  n.add_output(light);
  for (int i = 0; i < 6; ++i) {
    n.add_output(n.add_cell(*library().find("BUF_X1"), {heavy}));
  }
  sta::StaEngine sta_engine;
  const auto report = sta_engine.run(n, nullptr, {});
  EXPECT_GT(report.slew_ps[heavy], report.slew_ps[light]);
}

// ---- markdown report -------------------------------------------------------------

core::ReportInputs make_inputs(bool feasible_deadline) {
  core::Characterizer characterizer(library());
  core::ReportInputs inputs;
  inputs.characterization =
      characterizer.characterize(workloads::gen_alu(8));
  core::RuntimeLadders ladders{};
  for (core::JobKind job : core::kAllJobs) {
    const auto* row = inputs.characterization.find(
        job, core::recommended_family(job));
    if (row != nullptr) ladders[static_cast<int>(job)] = row->runtime_seconds;
  }
  core::DeploymentOptimizer optimizer;
  const auto stages = optimizer.build_stages(ladders);
  const double fastest = cloud::fastest_completion_seconds(stages);
  inputs.deadline_seconds = feasible_deadline ? fastest * 1.5 : fastest * 0.5;
  inputs.plan = optimizer.optimize(ladders, inputs.deadline_seconds);
  inputs.savings = optimizer.savings(ladders, inputs.deadline_seconds);
  return inputs;
}

TEST(MarkdownReportTest, FeasiblePlanRendersAllSections) {
  const auto inputs = make_inputs(true);
  const std::string report = core::markdown_report(inputs);
  EXPECT_NE(report.find("# Cloud deployment report"), std::string::npos);
  EXPECT_NE(report.find("## Characterization"), std::string::npos);
  EXPECT_NE(report.find("## Deployment plan"), std::string::npos);
  EXPECT_NE(report.find("| synthesis |"), std::string::npos);
  EXPECT_NE(report.find("**total**"), std::string::npos);
  EXPECT_NE(report.find("over-provisioning"), std::string::npos);
}

TEST(MarkdownReportTest, InfeasibleDeadlineSaysSo) {
  const auto inputs = make_inputs(false);
  const std::string report = core::markdown_report(inputs);
  EXPECT_NE(report.find("not achievable"), std::string::npos);
}

}  // namespace
}  // namespace edacloud
