#include <gtest/gtest.h>

#include "perf/branch_sim.hpp"
#include "util/rng.hpp"

namespace edacloud::perf {
namespace {

TEST(BranchPredictorTest, LearnsAlwaysTaken) {
  BranchPredictor predictor;
  for (int i = 0; i < 1000; ++i) predictor.observe(0x10, true);
  // After warmup the predictor should be nearly perfect.
  EXPECT_LT(predictor.stats().miss_rate(), 0.02);
}

TEST(BranchPredictorTest, LearnsAlwaysNotTaken) {
  BranchPredictor predictor;
  for (int i = 0; i < 1000; ++i) predictor.observe(0x20, false);
  EXPECT_LT(predictor.stats().miss_rate(), 0.02);
}

TEST(BranchPredictorTest, RandomOutcomesNearHalfMisses) {
  BranchPredictor predictor;
  util::Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    predictor.observe(0x30, rng.next_bool(0.5));
  }
  EXPECT_GT(predictor.stats().miss_rate(), 0.35);
  EXPECT_LT(predictor.stats().miss_rate(), 0.65);
}

TEST(BranchPredictorTest, BiasedOutcomesBetterThanRandom) {
  BranchPredictor biased, random;
  util::Rng rng(18);
  for (int i = 0; i < 20000; ++i) {
    biased.observe(0x40, rng.next_bool(0.9));
    random.observe(0x40, rng.next_bool(0.5));
  }
  EXPECT_LT(biased.stats().miss_rate(), random.stats().miss_rate());
}

TEST(BranchPredictorTest, LearnsAlternatingPatternViaHistory) {
  BranchPredictor predictor;
  bool taken = false;
  for (int i = 0; i < 4000; ++i) {
    predictor.observe(0x50, taken);
    taken = !taken;
  }
  // Gshare history should capture a period-2 pattern almost perfectly.
  EXPECT_LT(predictor.stats().miss_rate(), 0.1);
}

TEST(BranchPredictorTest, CountsEveryBranch) {
  BranchPredictor predictor;
  for (int i = 0; i < 37; ++i) predictor.observe(i, i % 3 == 0);
  EXPECT_EQ(predictor.stats().branches, 37u);
}

TEST(BranchPredictorTest, ResetClearsStats) {
  BranchPredictor predictor;
  predictor.observe(1, true);
  predictor.reset_stats();
  EXPECT_EQ(predictor.stats().branches, 0u);
  EXPECT_EQ(predictor.stats().mispredicts, 0u);
}

TEST(BranchPredictorTest, InvalidTableBitsThrows) {
  EXPECT_THROW(BranchPredictor(0), std::invalid_argument);
  EXPECT_THROW(BranchPredictor(30), std::invalid_argument);
}

}  // namespace
}  // namespace edacloud::perf
