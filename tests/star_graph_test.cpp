#include <gtest/gtest.h>

#include "nl/star_graph.hpp"

namespace edacloud::nl {
namespace {

TEST(StarGraphTest, NetlistFeatureShapes) {
  const CellLibrary lib = make_generic_14nm_library();
  Netlist n("t", &lib);
  const NodeId a = n.add_input();
  const NodeId b = n.add_input();
  const NodeId g = n.add_cell(*lib.find("NAND2_X1"), {a, b});
  n.add_output(g);

  const DesignGraph graph = graph_from_netlist(n);
  EXPECT_EQ(graph.node_count(), 4u);
  EXPECT_EQ(graph.features.size(), 4u * kNodeFeatureDim);

  // PI marker set on inputs.
  EXPECT_DOUBLE_EQ(graph.feature_row(a)[0], 1.0);
  EXPECT_DOUBLE_EQ(graph.feature_row(a)[1], 0.0);
  // PO marker.
  EXPECT_DOUBLE_EQ(graph.feature_row(3)[1], 1.0);
  // Cell one-hot: NAND slot.
  const int nand_slot = 3 + static_cast<int>(CellFunction::kNand);
  EXPECT_DOUBLE_EQ(graph.feature_row(g)[nand_slot], 1.0);
  // Bias channel everywhere.
  for (NodeId id = 0; id < 4; ++id) {
    EXPECT_DOUBLE_EQ(graph.feature_row(id)[19], 1.0);
  }
}

TEST(StarGraphTest, StarModelEdgeDirection) {
  const CellLibrary lib = make_generic_14nm_library();
  Netlist n("t", &lib);
  const NodeId a = n.add_input();
  const NodeId g1 = n.add_cell(*lib.find("INV_X1"), {a});
  const NodeId g2 = n.add_cell(*lib.find("INV_X1"), {a});
  n.add_output(g1);
  n.add_output(g2);
  const DesignGraph graph = graph_from_netlist(n);
  // Driver a has two sinks: two directed edges out.
  EXPECT_EQ(graph.forward.degree(a), 2u);
  EXPECT_EQ(graph.forward.degree(g1), 1u);  // to PO
}

TEST(StarGraphTest, AigGraphMarksAndNodes) {
  Aig aig;
  const Literal a = aig.add_input();
  const Literal b = aig.add_input();
  const Literal x = aig.and_of(a, literal_not(b));
  aig.add_output(x);
  const DesignGraph graph = graph_from_aig(aig);
  const AigNode xn = literal_node(x);
  EXPECT_DOUBLE_EQ(graph.feature_row(xn)[2], 1.0);   // AND marker
  EXPECT_DOUBLE_EQ(graph.feature_row(xn)[18], 0.5);  // one of two compl
  EXPECT_DOUBLE_EQ(graph.feature_row(literal_node(a))[0], 1.0);
}

TEST(StarGraphTest, LevelFeatureNormalized) {
  Aig aig;
  Literal acc = aig.add_input();
  for (int i = 0; i < 4; ++i) {
    const Literal next = aig.add_input();
    (void)next;
  }
  for (AigNode in : aig.inputs()) {
    acc = aig.and_of(acc, make_literal(in, false));
  }
  aig.add_output(acc);
  const DesignGraph graph = graph_from_aig(aig);
  // Deepest node's level feature is 1.0.
  double max_level = 0.0;
  for (std::size_t v = 0; v < graph.node_count(); ++v) {
    max_level = std::max(max_level, graph.feature_row(v)[17]);
  }
  EXPECT_DOUBLE_EQ(max_level, 1.0);
}

TEST(StarGraphTest, SummaryCountsMatch) {
  Aig aig;
  const Literal a = aig.add_input();
  const Literal b = aig.add_input();
  aig.add_output(aig.xor_of(a, b));
  const DesignGraph graph = graph_from_aig(aig);
  const GraphSummary summary = summarize(graph);
  EXPECT_EQ(summary.node_count, aig.node_count());
  EXPECT_EQ(summary.edge_count, graph.forward.edge_count());
  EXPECT_EQ(summary.depth, aig.depth());
  EXPECT_GT(summary.avg_fanout, 0.0);
}

TEST(StarGraphTest, EmptySummary) {
  DesignGraph graph;
  const GraphSummary summary = summarize(graph);
  EXPECT_EQ(summary.node_count, 0u);
  EXPECT_EQ(summary.depth, 0u);
}

}  // namespace
}  // namespace edacloud::nl
