// Property/fuzz layer for the svc codec (ISSUE 9 satellite): seeded random
// mutations, truncations and chunkings of the JSON parser, the request
// validator and the frame decoder must never crash, hang, or accept
// garbage silently — every outcome is either a parse error or a valid
// value, and every accepted document survives a parse -> dump -> parse
// round trip as a fixed point. The suite runs under ASan/UBSan and TSan in
// scripts/check.sh (SvcFuzzTest in the sanitizer regexes); all randomness
// flows through util::Rng with fixed seeds so a failure replays exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "svc/json.hpp"
#include "svc/protocol.hpp"
#include "svc/wire.hpp"
#include "util/rng.hpp"

namespace edacloud::svc {
namespace {

/// Representative wire-shaped documents used as mutation seeds: every
/// request type, nesting, escapes, numbers in all the formats the dumper
/// emits, and a few documents that are already invalid.
const std::vector<std::string>& seed_documents() {
  static const std::vector<std::string> kDocs = {
      R"({"type":"characterize","id":1,"family":"adder","size":64})",
      R"({"type":"predict","id":2,"family":"alu","size":32,"job":"routing"})",
      R"({"type":"optimize","id":3,"family":"max","size":16,)"
      R"("deadline_s":120.5,"spot":true})",
      R"({"type":"run-stage","id":4,"family":"voter","size":16,)"
      R"("stage":"place"})",
      R"({"type":"tune","id":5,"family":"mem_ctrl","size":32,)"
      R"("deadline_s":60,"samples":8,"seed":7,"batch":16})",
      R"({"type":"echo","id":6,"payload":"hi \"there\"\n","sleep_ms":0})",
      R"({"a":[1,2.5,-3e4,0.0001,true,false,null,"x"],"b":{"c":[[]],"d":{}}})",
      R"([{"k":"v"},[],"\\\"\t\r",1e-9,-0])",
      "  42  ",
      "\"lone string\"",
      "{\"unterminated\":",   // invalid on purpose
      "{]",                   // invalid on purpose
  };
  return kDocs;
}

/// Apply `count` random single-byte edits (replace / insert / delete).
std::string mutate(const std::string& base, util::Rng& rng, int count) {
  std::string text = base;
  for (int i = 0; i < count && !text.empty(); ++i) {
    const std::size_t at = rng.next_below(text.size());
    switch (rng.next_below(3)) {
      case 0:
        text[at] = static_cast<char>(rng.next_below(256));
        break;
      case 1:
        text.insert(text.begin() + static_cast<std::ptrdiff_t>(at),
                    static_cast<char>(rng.next_below(256)));
        break;
      default:
        text.erase(text.begin() + static_cast<std::ptrdiff_t>(at));
        break;
    }
  }
  return text;
}

TEST(SvcFuzzTest, MutatedDocumentsNeverCrashAndRoundTripWhenAccepted) {
  util::Rng rng(0x5eedf00d);
  int accepted = 0, rejected = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    const std::string& base =
        seed_documents()[rng.next_below(seed_documents().size())];
    const std::string text =
        mutate(base, rng, 1 + static_cast<int>(rng.next_below(8)));
    const JsonParseResult result = parse_json(text);
    if (result.ok) {
      ++accepted;
      // Fixed point: dump -> parse -> dump is stable after one hop.
      const std::string once = result.value.dump();
      const JsonParseResult again = parse_json(once);
      ASSERT_TRUE(again.ok) << "dump not reparseable: " << once;
      EXPECT_EQ(again.value.dump(), once) << "dump not a fixed point";
    } else {
      ++rejected;
      EXPECT_FALSE(result.error.empty()) << "rejection without a message";
    }
  }
  // The mutation rate is low enough that both outcomes must occur; if one
  // side is zero the harness is not exercising what it claims to.
  EXPECT_GT(accepted, 0);
  EXPECT_GT(rejected, 0);
}

TEST(SvcFuzzTest, EveryTruncationOfEverySeedParsesOrRejects) {
  // Exhaustive truncation sweep: a prefix of a valid document is usually
  // invalid; the parser must reject it with a message, never crash or
  // accept trailing garbage.
  for (const std::string& base : seed_documents()) {
    for (std::size_t cut = 0; cut <= base.size(); ++cut) {
      const JsonParseResult result = parse_json(base.substr(0, cut));
      if (!result.ok) {
        EXPECT_FALSE(result.error.empty())
            << "silent rejection at cut=" << cut << " of " << base;
      } else {
        // Accepted prefixes must still round-trip.
        const std::string once = result.value.dump();
        EXPECT_TRUE(parse_json(once).ok);
      }
    }
  }
}

TEST(SvcFuzzTest, MutatedRequestsParseOrRejectWithStableCode) {
  util::Rng rng(0xbadc0de5);
  int parsed_ok = 0, parse_rejected = 0, request_rejected = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    // Mutate only the request-shaped seeds (the first six).
    const std::string& base = seed_documents()[rng.next_below(6)];
    const std::string text =
        mutate(base, rng, 1 + static_cast<int>(rng.next_below(4)));
    const JsonParseResult json = parse_json(text);
    if (!json.ok) {
      ++parse_rejected;
      continue;
    }
    const ParsedRequest request = parse_request(json.value);
    if (request.ok) {
      ++parsed_ok;
    } else {
      ++request_rejected;
      // Machine code must be one of the stable constants, never junk.
      const std::string code = request.code;
      EXPECT_TRUE(code == kErrBadRequest || code == kErrUnknownType)
          << "unexpected error code: " << code;
      EXPECT_FALSE(request.error.empty());
    }
  }
  EXPECT_GT(parse_rejected, 0);
  EXPECT_GT(request_rejected, 0);
  EXPECT_GT(parsed_ok + parse_rejected + request_rejected, 0);
}

TEST(SvcFuzzTest, RandomValueTreesRoundTripExactly) {
  util::Rng rng(0x12e2f00);
  // Build random trees bottom-up; dump() -> parse_json -> dump() must be
  // byte-identical (deterministic serializer + insertion-order objects).
  for (int iter = 0; iter < 300; ++iter) {
    std::vector<JsonValue> pool;
    pool.push_back(JsonValue::null());
    pool.push_back(JsonValue::of(true));
    pool.push_back(JsonValue::of(rng.next_double(-1e6, 1e6)));
    pool.push_back(JsonValue::of(static_cast<double>(
        static_cast<std::int64_t>(rng.next_below(1u << 30)) - (1 << 29))));
    pool.push_back(JsonValue::of(std::string("s") +
                                 std::to_string(rng.next_below(1000))));
    for (int step = 0; step < 12; ++step) {
      if (rng.next_bool(0.5)) {
        JsonValue array = JsonValue::array();
        const std::size_t n = rng.next_below(4);
        for (std::size_t i = 0; i < n; ++i) {
          array.push_back(pool[rng.next_below(pool.size())]);
        }
        pool.push_back(array);
      } else {
        JsonValue object = JsonValue::object();
        const std::size_t n = rng.next_below(4);
        for (std::size_t i = 0; i < n; ++i) {
          object.set("k" + std::to_string(rng.next_below(6)),
                     pool[rng.next_below(pool.size())]);
        }
        pool.push_back(object);
      }
    }
    const std::string once = pool.back().dump();
    const JsonParseResult parsed = parse_json(once);
    ASSERT_TRUE(parsed.ok) << once;
    EXPECT_EQ(parsed.value.dump(), once);
  }
}

TEST(SvcFuzzTest, FrameDecoderSurvivesMutatedStreamsInRandomChunkings) {
  util::Rng rng(0xf4a3e5);
  for (int iter = 0; iter < 600; ++iter) {
    // A valid multi-frame stream...
    std::string stream;
    const std::size_t frames = 1 + rng.next_below(4);
    for (std::size_t f = 0; f < frames; ++f) {
      stream += encode_frame(std::string(rng.next_below(200), 'x'));
    }
    // ...mutated (possibly corrupting length words) and truncated.
    std::string bytes = mutate(stream, rng, static_cast<int>(rng.next_below(6)));
    if (rng.next_bool(0.3) && !bytes.empty()) {
      bytes.resize(rng.next_below(bytes.size()));
    }

    FrameDecoder decoder;
    std::size_t fed = 0;
    std::size_t popped = 0;
    while (fed < bytes.size()) {
      const std::size_t chunk =
          std::min(bytes.size() - fed, 1 + rng.next_below(64));
      decoder.feed(bytes.data() + fed, chunk);
      fed += chunk;
      std::string payload;
      // next() must terminate: each pop consumes >= 4 buffered bytes.
      while (decoder.next(&payload)) {
        ++popped;
        ASSERT_LE(payload.size(), kMaxFramePayload);
        ASSERT_LE(popped, bytes.size());  // hard loop bound
      }
    }
    if (decoder.error()) {
      // Error state is sticky and rejects further frames.
      decoder.feed(encode_frame("ok"));
      std::string payload;
      EXPECT_FALSE(decoder.next(&payload));
      EXPECT_GT(decoder.rejected_length(), kMaxFramePayload);
    } else {
      // Whatever remains buffered is an incomplete tail, under the cap.
      EXPECT_LE(decoder.buffered(), kMaxFramePayload + 4);
    }
  }
}

TEST(SvcFuzzTest, FrameDecoderTreatsEveryPrefixOfAValidStreamSafely) {
  // Truncation property: a prefix of a valid stream yields a prefix of the
  // frame sequence and never enters the error state.
  std::string stream;
  std::vector<std::string> payloads;
  for (int f = 0; f < 5; ++f) {
    payloads.push_back(std::string(37 * (f + 1), static_cast<char>('a' + f)));
    stream += encode_frame(payloads.back());
  }
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameDecoder decoder;
    decoder.feed(stream.substr(0, cut));
    EXPECT_FALSE(decoder.error());
    std::string payload;
    std::size_t index = 0;
    while (decoder.next(&payload)) {
      ASSERT_LT(index, payloads.size());
      EXPECT_EQ(payload, payloads[index]);
      ++index;
    }
    // Exactly the frames whose bytes are fully inside the prefix.
    std::size_t expect = 0, offset = 0;
    for (const std::string& p : payloads) {
      offset += 4 + p.size();
      if (offset <= cut) ++expect;
    }
    EXPECT_EQ(index, expect) << "cut=" << cut;
  }
}

TEST(SvcFuzzTest, OversizedLengthWordIsRejectedBeforeBuffering) {
  // A hostile length word must flip the decoder to the error state without
  // buffering gigabytes; buffered() stays at the four length bytes.
  FrameDecoder decoder;
  const std::uint32_t huge = (1u << 24);  // 16 MiB > kMaxFramePayload
  const char header[4] = {
      static_cast<char>(huge >> 24), static_cast<char>((huge >> 16) & 0xff),
      static_cast<char>((huge >> 8) & 0xff), static_cast<char>(huge & 0xff)};
  decoder.feed(header, sizeof(header));
  std::string payload;
  EXPECT_FALSE(decoder.next(&payload));
  EXPECT_TRUE(decoder.error());
  EXPECT_EQ(decoder.rejected_length(), huge);
  EXPECT_LE(decoder.buffered(), 4u);
}

}  // namespace
}  // namespace edacloud::svc
