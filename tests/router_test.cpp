#include <gtest/gtest.h>

#include "place/placer.hpp"
#include "route/router.hpp"
#include "synth/engine.hpp"
#include "workloads/generators.hpp"

namespace edacloud::route {
namespace {

const nl::CellLibrary& library() {
  static const nl::CellLibrary lib = nl::make_generic_14nm_library();
  return lib;
}

struct PlacedDesign {
  nl::Netlist netlist;
  place::Placement placement;
};

PlacedDesign prepare(const nl::Aig& aig) {
  synth::SynthesisEngine engine(library());
  PlacedDesign design;
  design.netlist = engine.synthesize(aig, synth::default_recipe()).netlist;
  place::QuadraticPlacer placer;
  design.placement = placer.place(design.netlist);
  return design;
}

TEST(RouterTest, RoutesAllConnections) {
  const PlacedDesign design = prepare(workloads::gen_alu(8));
  GridRouter router;
  const RoutingResult result =
      router.run(design.netlist, design.placement, {});
  EXPECT_GT(result.connection_count, 0u);
  EXPECT_EQ(result.routed_count, result.connection_count);
  EXPECT_GT(result.wirelength_gedges, 0u);
}

TEST(RouterTest, GridSizeWithinBounds) {
  const PlacedDesign design = prepare(workloads::gen_adder(8));
  RouterOptions options;
  options.min_grid = 8;
  options.max_grid = 32;
  GridRouter router(options);
  const RoutingResult result =
      router.run(design.netlist, design.placement, {});
  EXPECT_GE(result.grid_size, 8);
  EXPECT_LE(result.grid_size, 32);
}

TEST(RouterTest, RipUpReducesOverflowUnderPressure) {
  const PlacedDesign design = prepare(workloads::gen_alu(12));
  RouterOptions tight;
  tight.edge_capacity = 6;  // force congestion
  tight.max_rrr_iterations = 0;
  GridRouter no_rrr(tight);
  const auto before = no_rrr.run(design.netlist, design.placement, {});

  tight.max_rrr_iterations = 4;
  GridRouter with_rrr(tight);
  const auto after = with_rrr.run(design.netlist, design.placement, {});
  EXPECT_LE(after.overflowed_edges, before.overflowed_edges);
}

TEST(RouterTest, WavesDoNotExceedConnections) {
  const PlacedDesign design = prepare(workloads::gen_alu(8));
  GridRouter router;
  const RoutingResult result =
      router.run(design.netlist, design.placement, {});
  EXPECT_GT(result.wave_count, 0u);
  EXPECT_LE(result.wave_count, result.routed_count * 5);  // incl. reroutes
}

TEST(RouterTest, DeterministicAcrossRuns) {
  const PlacedDesign design = prepare(workloads::gen_adder(12));
  GridRouter router;
  const auto a = router.run(design.netlist, design.placement, {});
  const auto b = router.run(design.netlist, design.placement, {});
  EXPECT_EQ(a.wirelength_gedges, b.wirelength_gedges);
  EXPECT_EQ(a.total_expansions, b.total_expansions);
}

TEST(RouterTest, WirelengthAtLeastManhattanLowerBound) {
  // Every routed connection uses at least the Manhattan distance in grid
  // edges; the total wirelength cannot beat the sum of distances.
  const PlacedDesign design = prepare(workloads::gen_adder(8));
  GridRouter router;
  const RoutingResult result =
      router.run(design.netlist, design.placement, {});
  // Recompute the lower bound from gcell coordinates.
  const int grid = result.grid_size;
  const auto fanout = design.netlist.build_fanout_csr();
  auto gcell = [&](nl::NodeId node) {
    const int gx = std::clamp(
        static_cast<int>(design.placement.x[node] /
                         design.placement.die_width_um * grid),
        0, grid - 1);
    const int gy = std::clamp(
        static_cast<int>(design.placement.y[node] /
                         design.placement.die_height_um * grid),
        0, grid - 1);
    return std::pair<int, int>(gx, gy);
  };
  std::uint64_t lower_bound = 0;
  for (nl::NodeId driver = 0; driver < design.netlist.node_count();
       ++driver) {
    const auto [begin, end] = fanout.range(driver);
    const auto [sx, sy] = gcell(driver);
    for (std::uint32_t e = begin; e < end; ++e) {
      const auto [tx, ty] = gcell(fanout.targets[e]);
      lower_bound += static_cast<std::uint64_t>(std::abs(sx - tx) +
                                                std::abs(sy - ty));
    }
  }
  EXPECT_GE(result.wirelength_gedges, lower_bound);
}

TEST(RouterTest, InstrumentedRunHasBranchHeavySignature) {
  const PlacedDesign design = prepare(workloads::gen_alu(8));
  const auto ladder = perf::vm_ladder(perf::InstanceFamily::kMemoryOptimized);
  GridRouter router;
  const RoutingResult result = router.run(design.netlist, design.placement,
                                          {ladder.begin(), ladder.end()});
  ASSERT_EQ(result.profile.counts.size(), 4u);
  const auto& counts = result.profile.counts[0];
  EXPECT_GT(counts.branches, 0u);
  // Routing's graph search has data-dependent branches (Fig. 2a).
  EXPECT_GT(counts.branch_miss_rate(), 0.05);
  EXPECT_EQ(counts.avx_ops, 0u);
}

TEST(RouterTest, LargerDesignScalesBetter) {
  // Same structural family so only the size differs (Fig. 3's premise).
  const PlacedDesign small = prepare(workloads::gen_multiplier(6));
  const PlacedDesign large = prepare(workloads::gen_multiplier(16));
  GridRouter router;
  const auto rs = router.run(small.netlist, small.placement, {});
  const auto rl = router.run(large.netlist, large.placement, {});
  const double speedup_small = rs.profile.tasks.speedup(8);
  const double speedup_large = rl.profile.tasks.speedup(8);
  EXPECT_GE(speedup_large, speedup_small * 0.7);  // weakly ordered (Fig. 3)
}

TEST(PatternRouteTest, ServesShortConnections) {
  const PlacedDesign design = prepare(workloads::gen_adder(16));
  RouterOptions options;
  options.pattern_route = true;
  GridRouter router(options);
  const RoutingResult result =
      router.run(design.netlist, design.placement, {});
  EXPECT_GT(result.pattern_routed, result.routed_count / 2);
  EXPECT_EQ(result.routed_count, result.connection_count);
}

TEST(PatternRouteTest, WirelengthCloseToMazeRouter) {
  const PlacedDesign design = prepare(workloads::gen_alu(12));
  RouterOptions options;
  options.pattern_route = true;
  GridRouter with_patterns(options);
  options.pattern_route = false;
  GridRouter maze_only(options);
  const auto fast = with_patterns.run(design.netlist, design.placement, {});
  const auto slow = maze_only.run(design.netlist, design.placement, {});
  // Patterns are distance-optimal per connection; the total wirelength
  // must stay in the same ballpark as the congestion-aware maze.
  EXPECT_LT(fast.wirelength_gedges,
            slow.wirelength_gedges + slow.wirelength_gedges / 2);
  EXPECT_LT(fast.total_expansions, slow.total_expansions);
}

TEST(PatternRouteTest, RespectsCongestionLimit) {
  const PlacedDesign design = prepare(workloads::gen_alu(12));
  RouterOptions options;
  options.pattern_route = true;
  options.edge_capacity = 6;  // heavy congestion: patterns must back off
  GridRouter router(options);
  const RoutingResult result =
      router.run(design.netlist, design.placement, {});
  EXPECT_EQ(result.routed_count, result.connection_count);
  EXPECT_LT(result.pattern_routed, result.connection_count);
}

TEST(RouterTest, BitIdenticalAcrossThreadCounts) {
  // The determinism guarantee of the batched parallel router: QoR and the
  // per-config perf-counter totals must be exactly equal at any thread
  // count (two registry-style designs, threads=1 vs threads=4).
  const std::vector<perf::VmConfig> configs = {
      perf::make_vm(perf::InstanceFamily::kGeneralPurpose, 4)};
  for (const nl::Aig& aig :
       {workloads::gen_alu(16), workloads::gen_multiplier(12)}) {
    const PlacedDesign design = prepare(aig);
    RouterOptions options;
    options.threads = 1;
    const auto serial =
        GridRouter(options).run(design.netlist, design.placement, configs);
    options.threads = 4;
    const auto parallel =
        GridRouter(options).run(design.netlist, design.placement, configs);

    EXPECT_EQ(serial.routed_count, parallel.routed_count);
    EXPECT_EQ(serial.wirelength_gedges, parallel.wirelength_gedges);
    EXPECT_EQ(serial.overflowed_edges, parallel.overflowed_edges);
    EXPECT_EQ(serial.total_expansions, parallel.total_expansions);
    EXPECT_EQ(serial.wave_count, parallel.wave_count);
    EXPECT_EQ(serial.connection_edges, parallel.connection_edges);

    ASSERT_EQ(serial.profile.counts.size(), 1u);
    ASSERT_EQ(parallel.profile.counts.size(), 1u);
    const auto& a = serial.profile.counts[0];
    const auto& b = parallel.profile.counts[0];
    EXPECT_EQ(a.int_ops, b.int_ops);
    EXPECT_EQ(a.fp_ops, b.fp_ops);
    EXPECT_EQ(a.avx_ops, b.avx_ops);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.branch_misses, b.branch_misses);
    EXPECT_EQ(a.l1_accesses, b.l1_accesses);
    EXPECT_EQ(a.l1_misses, b.l1_misses);
    EXPECT_EQ(a.llc_accesses, b.llc_accesses);
    EXPECT_EQ(a.llc_misses, b.llc_misses);
  }
}

TEST(RouterTest, EmptyNetlistRoutesTrivially) {
  nl::Netlist netlist("empty", &library());
  place::Placement placement;
  placement.die_width_um = 10;
  placement.die_height_um = 10;
  GridRouter router;
  const RoutingResult result = router.run(netlist, placement, {});
  EXPECT_EQ(result.connection_count, 0u);
  EXPECT_EQ(result.wirelength_gedges, 0u);
}

}  // namespace
}  // namespace edacloud::route
