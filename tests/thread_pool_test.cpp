// util::ThreadPool — the determinism contract the parallel stage engines
// build on: static chunking, ordered reduction, caller participation (nested
// submits can't deadlock), and per-chunk exception propagation.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace edacloud::util {
namespace {

TEST(ThreadPoolTest, IdleConstructDestruct) {
  for (int threads : {1, 2, 8}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.thread_count(), threads);
  }
}

TEST(ThreadPoolTest, ChunkCountPartitionsRange) {
  EXPECT_EQ(ThreadPool::chunk_count(0, 0, 4), 0u);
  EXPECT_EQ(ThreadPool::chunk_count(0, 1, 4), 1u);
  EXPECT_EQ(ThreadPool::chunk_count(0, 8, 4), 2u);
  EXPECT_EQ(ThreadPool::chunk_count(0, 9, 4), 3u);
  EXPECT_EQ(ThreadPool::chunk_count(3, 9, 0), 6u);  // grain 0 behaves as 1
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(0, kN, 64,
                    [&](std::size_t b, std::size_t e, std::size_t, unsigned) {
                      for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
                    });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, ChunkBoundariesAreAFunctionOfGrainOnly) {
  // The same (begin, end, grain) must produce the same chunk set at every
  // pool width — that is the entire determinism story.
  auto chunk_set = [](int threads) {
    ThreadPool pool(threads);
    std::mutex m;
    std::set<std::tuple<std::size_t, std::size_t, std::size_t>> chunks;
    pool.parallel_for(5, 1000, 37,
                      [&](std::size_t b, std::size_t e, std::size_t c,
                          unsigned) {
                        std::lock_guard<std::mutex> lock(m);
                        chunks.insert({b, e, c});
                      });
    return chunks;
  };
  const auto serial = chunk_set(1);
  EXPECT_EQ(serial.size(), ThreadPool::chunk_count(5, 1000, 37));
  EXPECT_EQ(chunk_set(2), serial);
  EXPECT_EQ(chunk_set(8), serial);
}

TEST(ThreadPoolTest, WorkerSlotsStayWithinPoolWidth) {
  ThreadPool pool(4);
  std::mutex m;
  std::set<unsigned> slots;
  pool.parallel_for(0, 4096, 1,
                    [&](std::size_t, std::size_t, std::size_t, unsigned slot) {
                      std::lock_guard<std::mutex> lock(m);
                      slots.insert(slot);
                    });
  ASSERT_FALSE(slots.empty());
  for (unsigned slot : slots) EXPECT_LT(slot, 4u);
}

TEST(ThreadPoolTest, MaxThreadsCapLimitsParticipatingSlots) {
  ThreadPool pool(8);
  std::mutex m;
  std::set<unsigned> slots;
  pool.parallel_for(
      0, 4096, 1,
      [&](std::size_t, std::size_t, std::size_t, unsigned slot) {
        std::lock_guard<std::mutex> lock(m);
        slots.insert(slot);
      },
      /*max_threads=*/2);
  for (unsigned slot : slots) EXPECT_LT(slot, 2u);
}

TEST(ThreadPoolTest, ExceptionPropagatesOutOfWorkers) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1024, 8,
                        [&](std::size_t b, std::size_t, std::size_t,
                            unsigned) {
                          if (b >= 512) throw std::runtime_error("chunk blew up");
                        }),
      std::runtime_error);
  // The pool must stay usable after a failed job.
  std::atomic<std::size_t> total{0};
  pool.parallel_for(0, 100, 10,
                    [&](std::size_t b, std::size_t e, std::size_t, unsigned) {
                      total.fetch_add(e - b);
                    });
  EXPECT_EQ(total.load(), 100u);
}

TEST(ThreadPoolTest, LowestFailedChunkWinsWhenEveryChunkThrows) {
  // When every chunk throws, chunk 0 is always among the failures, so the
  // rethrown exception is deterministically chunk 0's.
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    try {
      pool.parallel_for(0, 64, 8,
                        [](std::size_t, std::size_t, std::size_t c, unsigned) {
                          throw std::runtime_error("chunk " + std::to_string(c));
                        });
      FAIL() << "expected parallel_for to throw";
    } catch (const std::runtime_error& err) {
      EXPECT_STREQ(err.what(), "chunk 0");
    }
  }
}

TEST(ThreadPoolTest, NestedSubmitDoesNotDeadlock) {
  // Regression: a chunk body submitting to the same pool used to be able to
  // starve (all workers blocked in the outer job). Caller participation
  // guarantees the inner job always has at least one thread driving it.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  pool.parallel_for(0, 8, 1,
                    [&](std::size_t, std::size_t, std::size_t, unsigned) {
                      pool.parallel_for(
                          0, 1000, 16,
                          [&](std::size_t b, std::size_t e, std::size_t,
                              unsigned) {
                            for (std::size_t i = b; i < e; ++i)
                              total.fetch_add(i);
                          });
                    });
  EXPECT_EQ(total.load(), 8ull * (999ull * 1000ull / 2));
}

TEST(ThreadPoolTest, OrderedReduceMatchesSerialSum) {
  ThreadPool pool(4);
  const std::size_t n = 5000;
  const std::uint64_t got = pool.parallel_reduce(
      std::size_t{0}, n, std::size_t{33}, std::uint64_t{0},
      [](std::size_t b, std::size_t e) {
        std::uint64_t sum = 0;
        for (std::size_t i = b; i < e; ++i) sum += i * i;
        return sum;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  std::uint64_t want = 0;
  for (std::size_t i = 0; i < n; ++i) want += i * i;
  EXPECT_EQ(got, want);
}

TEST(ThreadPoolTest, OrderedReduceIsBitIdenticalAcrossThreadCounts) {
  // Floating-point: partials folded in chunk order must make the result a
  // pure function of grain, not thread count. Compare exact bits.
  auto reduce_at = [](int threads) {
    ThreadPool pool(threads);
    return pool.parallel_reduce(
        std::size_t{0}, std::size_t{20'000}, std::size_t{7}, 0.0,
        [](std::size_t b, std::size_t e) {
          double sum = 0.0;
          for (std::size_t i = b; i < e; ++i) {
            sum += std::sin(static_cast<double>(i)) / (1.0 + static_cast<double>(i % 13));
          }
          return sum;
        },
        [](double a, double b) { return a + b; });
  };
  const double serial = reduce_at(1);
  for (int threads : {2, 4, 8}) {
    const double parallel = reduce_at(threads);
    EXPECT_EQ(std::memcmp(&serial, &parallel, sizeof(double)), 0)
        << "threads=" << threads << " drifted: " << serial << " vs "
        << parallel;
  }
}

TEST(ThreadPoolTest, StressParallelForOutputBitIdenticalAcrossThreadCounts) {
  // Mixed-size jobs hammered repeatedly: every output vector must be
  // byte-identical at 1/2/4/8 threads.
  auto run_at = [](int threads) {
    ThreadPool pool(threads);
    std::vector<std::vector<std::uint64_t>> outputs;
    for (std::size_t round = 0; round < 50; ++round) {
      const std::size_t n = 37 + round * 101;
      std::vector<std::uint64_t> out(n);
      pool.parallel_for(0, n, 16,
                        [&](std::size_t b, std::size_t e, std::size_t c,
                            unsigned) {
                          for (std::size_t i = b; i < e; ++i) {
                            std::uint64_t h = i * 0x9E3779B97F4A7C15ull + c;
                            h ^= h >> 31;
                            h *= 0xBF58476D1CE4E5B9ull;
                            out[i] = h ^ (h >> 29);
                          }
                        });
      outputs.push_back(std::move(out));
    }
    return outputs;
  };
  const auto baseline = run_at(1);
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(run_at(threads), baseline) << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, GlobalPoolDefaultsToSerialUntilOptIn) {
  set_global_thread_count(1);
  EXPECT_EQ(global_thread_count(), 1);
  std::vector<int> order;
  parallel_for(0, 0, 0, 4,
               [&](std::size_t, std::size_t, std::size_t, unsigned) {
                 order.push_back(1);
               });
  EXPECT_TRUE(order.empty());  // empty range never invokes the body
  parallel_for(0, 0, 6, 2,
               [&](std::size_t b, std::size_t, std::size_t, unsigned slot) {
                 EXPECT_EQ(slot, 0u);  // serial path runs on the caller
                 order.push_back(static_cast<int>(b));
               });
  EXPECT_EQ(order, (std::vector<int>{0, 2, 4}));
}

TEST(ThreadPoolTest, GlobalPoolHelpersRunWide) {
  set_global_thread_count(4);
  EXPECT_EQ(global_thread_count(), 4);
  EXPECT_GE(parallel_slot_count(0), 4);
  std::vector<std::uint64_t> out(2048, 0);
  parallel_for(0, 0, out.size(), 32,
               [&](std::size_t b, std::size_t e, std::size_t, unsigned slot) {
                 EXPECT_LT(static_cast<int>(slot), parallel_slot_count(0));
                 for (std::size_t i = b; i < e; ++i) out[i] = i + 1;
               });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i + 1);

  const double wide = parallel_reduce(
      4, std::size_t{0}, std::size_t{999}, std::size_t{13}, 0.0,
      [](std::size_t b, std::size_t e) {
        double s = 0.0;
        for (std::size_t i = b; i < e; ++i) s += 1.0 / (1.0 + static_cast<double>(i));
        return s;
      },
      [](double a, double b) { return a + b; });
  const double narrow = parallel_reduce(
      1, std::size_t{0}, std::size_t{999}, std::size_t{13}, 0.0,
      [](std::size_t b, std::size_t e) {
        double s = 0.0;
        for (std::size_t i = b; i < e; ++i) s += 1.0 / (1.0 + static_cast<double>(i));
        return s;
      },
      [](double a, double b) { return a + b; });
  EXPECT_EQ(wide, narrow);
  set_global_thread_count(1);  // leave other suites serial by default
}

}  // namespace
}  // namespace edacloud::util
