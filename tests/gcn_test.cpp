#include <gtest/gtest.h>

#include <cmath>

#include "ml/gcn.hpp"
#include "util/rng.hpp"

namespace edacloud::ml {
namespace {

/// Build a small random DAG sample whose log-runtime targets are a simple
/// function of its structure (node count), which the GCN should learn.
GraphSample make_sample(std::size_t n, std::uint64_t seed,
                        std::uint32_t family) {
  util::Rng rng(seed);
  std::vector<std::pair<nl::VertexId, nl::VertexId>> edges;
  for (std::size_t i = 1; i < n; ++i) {
    edges.emplace_back(static_cast<nl::VertexId>(rng.next_below(i)),
                       static_cast<nl::VertexId>(i));
  }
  GraphSample sample;
  sample.in_neighbors = nl::transpose(nl::build_csr(n, edges));
  sample.features = Matrix(n, 20);
  for (std::size_t v = 0; v < n; ++v) {
    sample.features.at(v, 0) = rng.next_double(0.0, 1.0);
    sample.features.at(v, 19) = 1.0;  // bias channel
  }
  const double base = std::log(static_cast<double>(n));
  sample.log_runtimes = {base, base - 0.4, base - 0.8, base - 1.0};
  sample.family_id = family;
  return sample;
}

GcnConfig tiny_config() {
  GcnConfig config;
  config.hidden1 = 8;
  config.hidden2 = 8;
  config.fc = 8;
  config.epochs = 150;
  config.learning_rate = 5e-3;
  return config;
}

TEST(ScalerTest, TransformInverseRoundTrip) {
  std::vector<GraphSample> samples;
  for (int i = 0; i < 5; ++i) {
    samples.push_back(make_sample(10 + 5 * i, i, i));
  }
  TargetScaler scaler;
  scaler.fit(samples);
  const std::array<double, 4> raw = {1.0, 2.0, 3.0, 4.0};
  const auto back = scaler.inverse(scaler.transform(raw));
  for (int j = 0; j < 4; ++j) EXPECT_NEAR(back[j], raw[j], 1e-9);
}

TEST(ScalerTest, TransformedTrainSetIsStandardized) {
  std::vector<GraphSample> samples;
  for (int i = 0; i < 20; ++i) {
    samples.push_back(make_sample(10 + 3 * i, i, i));
  }
  TargetScaler scaler;
  scaler.fit(samples);
  double sum = 0.0;
  for (const auto& sample : samples) {
    sum += scaler.transform(sample.log_runtimes)[0];
  }
  EXPECT_NEAR(sum / samples.size(), 0.0, 1e-9);
}

TEST(GcnModelTest, DeterministicInitialization) {
  const GcnConfig config = tiny_config();
  GcnModel a(config), b(config);
  const GraphSample sample = make_sample(12, 3, 0);
  const auto pa = a.predict(sample);
  const auto pb = b.predict(sample);
  for (int j = 0; j < 4; ++j) EXPECT_DOUBLE_EQ(pa[j], pb[j]);
}

TEST(GcnModelTest, ParameterCountMatchesArchitecture) {
  GcnConfig config = tiny_config();
  GcnModel model(config);
  const std::size_t f = 20, h1 = 8, h2 = 8, fc = 8;
  const std::size_t expected = 2 * f * h1 + h1 + 2 * h1 * h2 + h2 +
                               (h2 + 1) * fc + fc + fc * 4 + 4;
  EXPECT_EQ(model.parameter_count(), expected);
}

TEST(GcnModelTest, TrainStepReducesLossOnSingleSample) {
  GcnModel model(tiny_config());
  const GraphSample sample = make_sample(16, 5, 0);
  const std::array<double, 4> target = {0.5, 0.2, -0.1, -0.3};
  const double first = model.train_step(sample, target);
  double last = first;
  for (int i = 0; i < 60; ++i) last = model.train_step(sample, target);
  EXPECT_LT(last, first * 0.1);
}

TEST(GcnModelTest, GradientMatchesNumericalDerivativeAtOutputBias) {
  // Perturbing the data should move the loss consistently — a smoke-level
  // check that forward/backward are coupled correctly: after training to
  // near-zero loss, predictions match the target.
  GcnModel model(tiny_config());
  const GraphSample sample = make_sample(10, 6, 0);
  const std::array<double, 4> target = {1.0, 0.5, 0.0, -0.5};
  for (int i = 0; i < 400; ++i) model.train_step(sample, target);
  const auto out = model.predict(sample);
  for (int j = 0; j < 4; ++j) EXPECT_NEAR(out[j], target[j], 0.05);
}

TEST(TrainerTest, LearnsSizeDependentTargets) {
  std::vector<GraphSample> all;
  util::Rng rng(8);
  for (std::uint32_t d = 0; d < 30; ++d) {
    all.push_back(make_sample(8 + 4 * (d % 10), 100 + d, d));
  }
  std::vector<GraphSample> train, test;
  split_by_family(all, 5, 3, train, test);
  ASSERT_FALSE(train.empty());
  ASSERT_FALSE(test.empty());

  TargetScaler scaler;
  scaler.fit(train);
  const GcnConfig config = tiny_config();
  GcnModel model(config);
  Trainer trainer(config);
  const TrainResult result = trainer.fit(model, scaler, train);
  EXPECT_LT(result.final_train_loss, result.epoch_losses.front());

  const EvalResult eval = Trainer::evaluate(model, scaler, test);
  // Targets are log(n) with n in a narrow range — should be easy.
  EXPECT_LT(eval.mean_relative_error, 0.25);
}

TEST(SplitTest, PartitionsByFamily) {
  std::vector<GraphSample> all;
  for (std::uint32_t d = 0; d < 10; ++d) {
    all.push_back(make_sample(8, d, d));
  }
  std::vector<GraphSample> train, test;
  split_by_family(all, 5, 0, train, test);
  EXPECT_EQ(test.size(), 2u);   // family ids 0 and 5
  EXPECT_EQ(train.size(), 8u);
  for (const auto& sample : test) EXPECT_EQ(sample.family_id % 5, 0u);
}

TEST(GcnConfigTest, PresetsDiffer) {
  EXPECT_GT(GcnConfig::paper().hidden1, GcnConfig::fast().hidden1);
  EXPECT_EQ(GcnConfig::paper().epochs, 200);
  EXPECT_DOUBLE_EQ(GcnConfig::paper().learning_rate, 1e-4);
}

}  // namespace
}  // namespace edacloud::ml
