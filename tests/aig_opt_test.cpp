#include <gtest/gtest.h>

#include "synth/aig_opt.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"
#include "workloads/registry.hpp"

namespace edacloud::synth {
namespace {

using nl::Aig;
using nl::Literal;
using nl::literal_not;

bool equivalent(const Aig& a, const Aig& b, std::uint64_t seed) {
  if (a.input_count() != b.input_count() ||
      a.output_count() != b.output_count()) {
    return false;
  }
  util::Rng rng(seed);
  for (int round = 0; round < 4; ++round) {
    std::vector<std::uint64_t> words(a.input_count());
    for (auto& w : words) w = rng();
    if (a.simulate(words) != b.simulate(words)) return false;
  }
  return true;
}

TEST(CleanupTest, DropsDeadNodes) {
  Aig aig;
  const Literal a = aig.add_input();
  const Literal b = aig.add_input();
  const Literal live = aig.and_of(a, b);
  aig.and_of(literal_not(a), literal_not(b));  // dead
  aig.add_output(live);
  const Aig cleaned = cleanup(aig);
  EXPECT_EQ(cleaned.and_count(), 1u);
  EXPECT_TRUE(equivalent(aig, cleaned, 1));
}

TEST(RewriteTest, AbsorptionRule) {
  // a & (a & b) -> a & b.
  Aig aig;
  const Literal a = aig.add_input();
  const Literal b = aig.add_input();
  const Literal inner = aig.and_of(a, b);
  aig.add_output(aig.and_of(a, inner));
  const Aig rewritten = rewrite(aig);
  EXPECT_LT(rewritten.and_count(), aig.and_count());
  EXPECT_TRUE(equivalent(aig, rewritten, 2));
}

TEST(RewriteTest, ConflictRule) {
  // a & (!a & b) -> 0.
  Aig aig;
  const Literal a = aig.add_input();
  const Literal b = aig.add_input();
  const Literal inner = aig.and_of(literal_not(a), b);
  aig.add_output(aig.and_of(a, inner));
  const Aig rewritten = cleanup(rewrite(aig));
  EXPECT_EQ(rewritten.and_count(), 0u);
  EXPECT_TRUE(equivalent(aig, rewritten, 3));
}

TEST(RewriteTest, ResolutionRule) {
  // a & !(a & b) -> a & !b.
  Aig aig;
  const Literal a = aig.add_input();
  const Literal b = aig.add_input();
  const Literal inner = aig.and_of(a, b);
  aig.add_output(aig.and_of(a, literal_not(inner)));
  const Aig rewritten = rewrite(aig);
  EXPECT_TRUE(equivalent(aig, rewritten, 4));
}

TEST(BalanceTest, ReducesChainDepth) {
  // A linear AND chain of 16 inputs balances to depth 4.
  Aig aig;
  std::vector<Literal> inputs;
  for (int i = 0; i < 16; ++i) inputs.push_back(aig.add_input());
  Literal acc = inputs[0];
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    acc = aig.and_of(acc, inputs[i]);
  }
  aig.add_output(acc);
  EXPECT_EQ(aig.depth(), 15u);
  const Aig balanced = balance(aig);
  EXPECT_LE(balanced.depth(), 5u);
  EXPECT_TRUE(equivalent(aig, balanced, 5));
}

TEST(BalanceTest, PreservesSharedNodes) {
  Aig aig;
  const Literal a = aig.add_input();
  const Literal b = aig.add_input();
  const Literal c = aig.add_input();
  const Literal shared = aig.and_of(a, b);
  aig.add_output(aig.and_of(shared, c));
  aig.add_output(literal_not(shared));
  const Aig balanced = balance(aig);
  EXPECT_TRUE(equivalent(aig, balanced, 6));
}

TEST(BalanceTest, NeverIncreasesDepth) {
  const nl::Aig aig = workloads::gen_alu(8);
  const Aig balanced = balance(aig);
  EXPECT_LE(balanced.depth(), aig.depth());
}

// Property sweep: every optimization pass preserves the logic function of
// every benchmark family.
struct OptCase {
  std::string family;
  int pass;  // 0 = cleanup, 1 = rewrite, 2 = balance, 3 = rw+balance
};

class OptEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(OptEquivalenceTest, PreservesFunction) {
  const auto [family, pass] = GetParam();
  workloads::BenchmarkSpec spec;
  spec.family = family;
  for (const auto& info : workloads::families()) {
    if (info.name == family) spec.size = info.corpus_sizes.front();
  }
  spec.seed = 31;
  const Aig aig = workloads::generate(spec);
  Aig optimized = [&] {
    switch (pass) {
      case 0:
        return cleanup(aig);
      case 1:
        return rewrite(aig);
      case 2:
        return balance(aig);
      default:
        return balance(rewrite(aig));
    }
  }();
  EXPECT_TRUE(equivalent(aig, optimized, 77)) << family << " pass " << pass;
  // Balancing can trade cross-cone strash sharing for depth; bound the
  // growth rather than forbidding it.
  EXPECT_LE(optimized.and_count(), aig.and_count() * 2);
}

std::vector<std::string> sweep_families() {
  return {"adder",  "multiplier", "alu",   "voter",       "decoder",
          "arbiter", "cavlc",     "sbox",  "dynamic_node", "sparc_core"};
}

INSTANTIATE_TEST_SUITE_P(
    Families, OptEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(sweep_families()),
                       ::testing::Values(0, 1, 2, 3)));

}  // namespace
}  // namespace edacloud::synth
