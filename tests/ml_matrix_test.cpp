#include <gtest/gtest.h>

#include "ml/matrix.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace edacloud::ml {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(rows, cols);
  for (double& v : m.data()) v = rng.next_double(-1.0, 1.0);
  return m;
}

TEST(MatrixTest, MatmulIdentity) {
  Matrix identity(3, 3);
  for (int i = 0; i < 3; ++i) identity.at(i, i) = 1.0;
  const Matrix a = random_matrix(3, 3, 1);
  const Matrix result = matmul(a, identity);
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_NEAR(result.data()[i], a.data()[i], 1e-12);
  }
}

TEST(MatrixTest, MatmulKnownValues) {
  Matrix a(2, 2);
  a.at(0, 0) = 1;
  a.at(0, 1) = 2;
  a.at(1, 0) = 3;
  a.at(1, 1) = 4;
  Matrix b(2, 2);
  b.at(0, 0) = 5;
  b.at(0, 1) = 6;
  b.at(1, 0) = 7;
  b.at(1, 1) = 8;
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 50);
}

TEST(MatrixTest, MatmulShapeMismatchThrows) {
  const Matrix a(2, 3);
  const Matrix b(2, 3);
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(MatrixTest, AtBEqualsExplicitTranspose) {
  const Matrix a = random_matrix(5, 3, 2);
  const Matrix b = random_matrix(5, 4, 3);
  // Explicit transpose of a.
  Matrix at(3, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 3; ++j) at.at(j, i) = a.at(i, j);
  }
  const Matrix expected = matmul(at, b);
  const Matrix result = matmul_at_b(a, b);
  ASSERT_EQ(result.rows(), expected.rows());
  for (std::size_t i = 0; i < result.data().size(); ++i) {
    EXPECT_NEAR(result.data()[i], expected.data()[i], 1e-12);
  }
}

TEST(MatrixTest, ABtEqualsExplicitTranspose) {
  const Matrix a = random_matrix(4, 3, 4);
  const Matrix b = random_matrix(5, 3, 5);
  Matrix bt(3, 5);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 3; ++j) bt.at(j, i) = b.at(i, j);
  }
  const Matrix expected = matmul(a, bt);
  const Matrix result = matmul_a_bt(a, b);
  for (std::size_t i = 0; i < result.data().size(); ++i) {
    EXPECT_NEAR(result.data()[i], expected.data()[i], 1e-12);
  }
}

TEST(MatrixTest, AddBiasRows) {
  Matrix m(2, 3);
  add_bias_rows(m, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 3.0);
}

TEST(MatrixTest, ReluAndBackward) {
  Matrix m(1, 4);
  m.at(0, 0) = -1.0;
  m.at(0, 1) = 2.0;
  m.at(0, 2) = 0.0;
  m.at(0, 3) = -0.5;
  const Matrix pre = m;
  relu_inplace(m);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);

  Matrix grad(1, 4);
  grad.fill(1.0);
  relu_backward_inplace(grad, pre);
  EXPECT_DOUBLE_EQ(grad.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(grad.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(grad.at(0, 2), 0.0);
}

TEST(MatrixTest, SumPool) {
  Matrix m(3, 2);
  m.at(0, 0) = 1;
  m.at(1, 0) = 2;
  m.at(2, 0) = 3;
  m.at(0, 1) = 4;
  const auto pooled = sum_pool(m);
  EXPECT_DOUBLE_EQ(pooled[0], 6.0);
  EXPECT_DOUBLE_EQ(pooled[1], 4.0);
}

TEST(AggregateTest, MeanOverInNeighbors) {
  // Graph: 0 -> 2, 1 -> 2 (in-neighbors of 2 are {0, 1}).
  const nl::Csr in_csr = nl::build_csr(3, {{2, 0}, {2, 1}});
  Matrix features(3, 1);
  features.at(0, 0) = 4.0;
  features.at(1, 0) = 8.0;
  const Matrix out = aggregate_mean(in_csr, features);
  EXPECT_DOUBLE_EQ(out.at(2, 0), 6.0);
  EXPECT_DOUBLE_EQ(out.at(0, 0), 0.0);  // no in-neighbors
}

TEST(AggregateTest, BackwardDistributesGradient) {
  const nl::Csr in_csr = nl::build_csr(3, {{2, 0}, {2, 1}});
  Matrix grad_out(3, 1);
  grad_out.at(2, 0) = 1.0;
  const Matrix grad_in = aggregate_mean_backward(in_csr, grad_out);
  EXPECT_DOUBLE_EQ(grad_in.at(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(grad_in.at(1, 0), 0.5);
  EXPECT_DOUBLE_EQ(grad_in.at(2, 0), 0.0);
}

TEST(AggregateTest, BackwardIsAdjointOfForward) {
  // <Agg(x), y> == <x, Agg^T(y)> for random x, y.
  util::Rng rng(9);
  const std::size_t n = 20;
  std::vector<std::pair<nl::VertexId, nl::VertexId>> edges;
  for (int e = 0; e < 50; ++e) {
    edges.emplace_back(static_cast<nl::VertexId>(rng.next_below(n)),
                       static_cast<nl::VertexId>(rng.next_below(n)));
  }
  const nl::Csr csr = nl::build_csr(n, edges);
  const Matrix x = random_matrix(n, 3, 10);
  const Matrix y = random_matrix(n, 3, 11);
  const Matrix ax = aggregate_mean(csr, x);
  const Matrix aty = aggregate_mean_backward(csr, y);
  double lhs = 0.0, rhs = 0.0;
  for (std::size_t i = 0; i < x.data().size(); ++i) {
    lhs += ax.data()[i] * y.data()[i];
    rhs += x.data()[i] * aty.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

TEST(MatrixTest, KernelsBitIdenticalAcrossThreadCounts) {
  // The parallel kernels must match the serial ones bit-for-bit; sizes are
  // chosen to exceed the serial-flop cutoff so the pool actually engages.
  const Matrix a = random_matrix(96, 64, 21);
  const Matrix b = random_matrix(64, 48, 22);
  const Matrix bt = random_matrix(48, 64, 23);
  const Matrix g = random_matrix(96, 48, 24);
  util::Rng rng(25);
  std::vector<std::pair<nl::VertexId, nl::VertexId>> edges;
  for (int e = 0; e < 4000; ++e) {
    edges.emplace_back(static_cast<nl::VertexId>(rng.next_below(96)),
                       static_cast<nl::VertexId>(rng.next_below(96)));
  }
  const nl::Csr csr = nl::build_csr(96, edges);
  const Matrix features = random_matrix(96, 64, 26);

  util::set_global_thread_count(1);
  const Matrix mm1 = matmul(a, b);
  const Matrix atb1 = matmul_at_b(a, g);
  const Matrix abt1 = matmul_a_bt(a, bt);
  const Matrix agg1 = aggregate_mean(csr, features);

  util::set_global_thread_count(4);
  const Matrix mm4 = matmul(a, b);
  const Matrix atb4 = matmul_at_b(a, g);
  const Matrix abt4 = matmul_a_bt(a, bt);
  const Matrix agg4 = aggregate_mean(csr, features);
  util::set_global_thread_count(1);

  EXPECT_EQ(mm1.data(), mm4.data());
  EXPECT_EQ(atb1.data(), atb4.data());
  EXPECT_EQ(abt1.data(), abt4.data());
  EXPECT_EQ(agg1.data(), agg4.data());
}

}  // namespace
}  // namespace edacloud::ml
