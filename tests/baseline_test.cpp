#include <gtest/gtest.h>

#include <cmath>

#include "ml/baseline.hpp"
#include "util/rng.hpp"

namespace edacloud::ml {
namespace {

GraphSample make_sample(std::size_t n, std::uint64_t seed,
                        std::uint32_t family) {
  util::Rng rng(seed);
  std::vector<std::pair<nl::VertexId, nl::VertexId>> edges;
  for (std::size_t i = 1; i < n; ++i) {
    edges.emplace_back(static_cast<nl::VertexId>(rng.next_below(i)),
                       static_cast<nl::VertexId>(i));
    if (i > 2 && rng.next_bool(0.5)) {
      edges.emplace_back(static_cast<nl::VertexId>(rng.next_below(i)),
                         static_cast<nl::VertexId>(i));
    }
  }
  GraphSample sample;
  const auto forward = nl::build_csr(n, edges);
  sample.in_neighbors = nl::transpose(forward);
  sample.features = Matrix(n, 20);
  const auto levels = nl::longest_path_levels(forward);
  std::uint32_t depth = 0;
  for (auto l : levels) depth = std::max(depth, l);
  for (std::size_t v = 0; v < n; ++v) {
    sample.features.at(v, 17) =
        static_cast<double>(levels[v]) / std::max(1u, depth);
    sample.features.at(v, 19) = 1.0;
  }
  // Targets: linear in log(n) and log(edges) -> exactly representable.
  const double base =
      0.7 * std::log(static_cast<double>(n)) +
      0.3 * std::log(static_cast<double>(edges.size()));
  sample.log_runtimes = {base, base - 0.3, base - 0.6, base - 0.8};
  sample.family_id = family;
  return sample;
}

TEST(RidgeBaselineTest, FeaturesAreFinite) {
  const GraphSample sample = make_sample(20, 1, 0);
  const auto x = RidgeBaseline::features(sample);
  for (double v : x) EXPECT_TRUE(std::isfinite(v));
  EXPECT_DOUBLE_EQ(x.back(), 1.0);  // bias channel
}

TEST(RidgeBaselineTest, RecoversLinearTargetsExactly) {
  std::vector<GraphSample> train;
  for (std::uint32_t d = 0; d < 40; ++d) {
    train.push_back(make_sample(10 + 7 * (d % 12), 100 + d, d));
  }
  TargetScaler scaler;
  scaler.fit(train);
  RidgeBaseline baseline(1e-6);
  baseline.fit(train, scaler);
  ASSERT_TRUE(baseline.fitted());

  const EvalResult eval = baseline.evaluate(train, scaler);
  EXPECT_LT(eval.mean_relative_error, 0.05);
}

TEST(RidgeBaselineTest, GeneralizesToUnseenSizes) {
  std::vector<GraphSample> train, test;
  for (std::uint32_t d = 0; d < 40; ++d) {
    auto sample = make_sample(10 + 7 * (d % 12), 200 + d, d);
    if (d % 5 == 3) {
      test.push_back(std::move(sample));
    } else {
      train.push_back(std::move(sample));
    }
  }
  TargetScaler scaler;
  scaler.fit(train);
  RidgeBaseline baseline;
  baseline.fit(train, scaler);
  const EvalResult eval = baseline.evaluate(test, scaler);
  EXPECT_LT(eval.mean_relative_error, 0.15);
}

TEST(RidgeBaselineTest, RegularizationKeepsWeightsFinite) {
  // Degenerate data: all samples identical -> singular normal equations.
  std::vector<GraphSample> train(5, make_sample(16, 7, 0));
  TargetScaler scaler;
  scaler.fit(train);
  RidgeBaseline baseline(1e-3);
  baseline.fit(train, scaler);
  const auto prediction = baseline.predict(train.front());
  for (double v : prediction) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace edacloud::ml
