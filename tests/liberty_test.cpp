#include <gtest/gtest.h>

#include "nl/liberty.hpp"

namespace edacloud::nl {
namespace {

TEST(LibertyWriterTest, ContainsLibraryAndCells) {
  const CellLibrary lib = make_generic_14nm_library();
  const std::string text = write_liberty(lib);
  EXPECT_NE(text.find("library (generic14)"), std::string::npos);
  EXPECT_NE(text.find("cell (NAND2_X1)"), std::string::npos);
  EXPECT_NE(text.find("function : \"NAND\""), std::string::npos);
}

TEST(LibertyRoundTripTest, Generic14RoundTrips) {
  const CellLibrary original = make_generic_14nm_library();
  const auto parsed = parse_liberty(write_liberty(original));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.library.size(), original.size());
  EXPECT_EQ(parsed.library.name(), original.name());
  EXPECT_DOUBLE_EQ(parsed.library.wire_cap_per_um(),
                   original.wire_cap_per_um());
  for (CellId id = 0; id < original.size(); ++id) {
    const Cell& a = original.cell(id);
    const auto found = parsed.library.find(a.name);
    ASSERT_TRUE(found.has_value()) << a.name;
    const Cell& b = parsed.library.cell(*found);
    EXPECT_EQ(a.function, b.function) << a.name;
    EXPECT_EQ(a.input_count, b.input_count);
    EXPECT_DOUBLE_EQ(a.area_um2, b.area_um2);
    EXPECT_DOUBLE_EQ(a.input_cap_ff, b.input_cap_ff);
    EXPECT_DOUBLE_EQ(a.intrinsic_delay_ps, b.intrinsic_delay_ps);
    EXPECT_DOUBLE_EQ(a.drive_res_kohm, b.drive_res_kohm);
    EXPECT_DOUBLE_EQ(a.leakage_nw, b.leakage_nw);
  }
}

TEST(LibertyParserTest, RejectsUnknownFunction) {
  const std::string text = R"(
    library (t) {
      cell (X) { function : "FLUX"; area : 1.0; }
    })";
  const auto parsed = parse_liberty(text);
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("unknown cell function"), std::string::npos);
}

TEST(LibertyParserTest, RejectsMalformedHeader) {
  EXPECT_FALSE(parse_liberty("module (t) {}").ok);
}

TEST(LibertyParserTest, SkipsUnknownNumericAttributes) {
  const std::string text = R"(
    library (t) {
      cell (INV_Z) {
        function : "INV";
        area : 0.2;
        max_transition : 99.0;
      }
    })";
  const auto parsed = parse_liberty(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.library.size(), 1u);
}

TEST(LibertyParserTest, HandlesComments) {
  const std::string text = R"(
    /* block
       comment */
    library (t) { // trailing
      wire_cap_per_um : 0.5;
    })";
  const auto parsed = parse_liberty(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_DOUBLE_EQ(parsed.library.wire_cap_per_um(), 0.5);
}

TEST(LibertyParserTest, DuplicateCellFails) {
  const std::string text = R"(
    library (t) {
      cell (A) { function : "INV"; }
      cell (A) { function : "BUF"; }
    })";
  EXPECT_FALSE(parse_liberty(text).ok);
}

}  // namespace
}  // namespace edacloud::nl
