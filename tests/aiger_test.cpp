#include <gtest/gtest.h>

#include "nl/aiger.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"
#include "workloads/registry.hpp"

namespace edacloud::nl {
namespace {

TEST(AigerWriterTest, HeaderCountsMatch) {
  Aig aig;
  const Literal a = aig.add_input();
  const Literal b = aig.add_input();
  aig.add_output(aig.and_of(a, b));
  const std::string text = write_aiger(aig);
  EXPECT_EQ(text.rfind("aag 3 2 0 1 1", 0), 0u) << text;
}

TEST(AigerRoundTripTest, SmallAig) {
  Aig aig;
  const Literal a = aig.add_input();
  const Literal b = aig.add_input();
  const Literal c = aig.add_input();
  aig.add_output(aig.xor_of(aig.and_of(a, b), c));
  aig.add_output(literal_not(a));

  const auto parsed = parse_aiger(write_aiger(aig));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.aig.node_count(), aig.node_count());
  EXPECT_EQ(parsed.aig.output_count(), aig.output_count());
  util::Rng rng(4);
  const std::vector<std::uint64_t> words = {rng(), rng(), rng()};
  EXPECT_EQ(aig.simulate(words), parsed.aig.simulate(words));
}

TEST(AigerParserTest, RejectsBadMagic) {
  EXPECT_FALSE(parse_aiger("aig 1 1 0 0 0\n2\n").ok);
}

TEST(AigerParserTest, RejectsLatches) {
  const auto parsed = parse_aiger("aag 1 0 1 0 0\n2 3\n");
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("latches"), std::string::npos);
}

TEST(AigerParserTest, RejectsTruncatedAndSection) {
  const auto parsed = parse_aiger("aag 3 2 0 1 1\n2\n4\n6\n6 2\n");
  EXPECT_FALSE(parsed.ok);
}

TEST(AigerParserTest, RejectsForwardReference) {
  // AND 6 references literal 8 (node 4) which is not yet defined.
  const auto parsed = parse_aiger("aag 4 2 0 1 2\n2\n4\n6\n6 8 4\n8 2 4\n");
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("before use"), std::string::npos);
}

TEST(AigerParserTest, ConstantOutputsSupported) {
  const auto parsed = parse_aiger("aag 1 1 0 2 0\n2\n0\n1\n");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const auto out = parsed.aig.simulate({0x1234ULL});
  EXPECT_EQ(out[0], 0ULL);
  EXPECT_EQ(out[1], ~0ULL);
}

// Round-trip property across generated families.
class AigerRoundTripSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(AigerRoundTripSweep, FamilyRoundTrips) {
  workloads::BenchmarkSpec spec;
  spec.family = GetParam();
  for (const auto& info : workloads::families()) {
    if (info.name == spec.family) spec.size = info.corpus_sizes.front();
  }
  spec.seed = 41;
  const Aig aig = workloads::generate(spec);
  const auto parsed = parse_aiger(write_aiger(aig));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.aig.and_count(), aig.and_count());
  util::Rng rng(43);
  std::vector<std::uint64_t> words(aig.input_count());
  for (auto& w : words) w = rng();
  EXPECT_EQ(aig.simulate(words), parsed.aig.simulate(words));
}

INSTANTIATE_TEST_SUITE_P(Families, AigerRoundTripSweep,
                         ::testing::Values("adder", "multiplier", "parity",
                                           "encoder", "i2c", "mem_ctrl",
                                           "sparc_core"));

}  // namespace
}  // namespace edacloud::nl
