#include <gtest/gtest.h>

#include "core/optimizer.hpp"

namespace edacloud::core {
namespace {

RuntimeLadders sample_ladders() {
  RuntimeLadders ladders{};
  // Magnitudes echo Table I: synthesis / placement / routing / STA.
  ladders[static_cast<int>(JobKind::kSynthesis)] = {6100, 4342, 3449, 3352};
  ladders[static_cast<int>(JobKind::kPlacement)] = {1206, 905, 644, 519};
  ladders[static_cast<int>(JobKind::kRouting)] = {10461, 5514, 2894, 1692};
  ladders[static_cast<int>(JobKind::kSta)] = {183, 119, 90, 82};
  return ladders;
}

TEST(OptimizerTest, BuildsFourStagesWithFourItems) {
  DeploymentOptimizer optimizer;
  const auto stages = optimizer.build_stages(sample_ladders());
  ASSERT_EQ(stages.size(), 4u);
  for (const auto& stage : stages) {
    EXPECT_EQ(stage.items.size(), 4u);
    for (const auto& item : stage.items) {
      EXPECT_GT(item.cost_usd, 0.0);
    }
  }
  EXPECT_EQ(stages[0].name, "synthesis");
  EXPECT_EQ(stages[3].name, "sta");
}

TEST(OptimizerTest, FamiliesFollowRecommendations) {
  DeploymentOptimizer optimizer;
  const auto stages = optimizer.build_stages(sample_ladders());
  EXPECT_NE(stages[0].items[0].label.find("general-purpose"),
            std::string::npos);
  EXPECT_NE(stages[1].items[0].label.find("memory-optimized"),
            std::string::npos);
  EXPECT_NE(stages[2].items[0].label.find("memory-optimized"),
            std::string::npos);
}

TEST(OptimizerTest, LooseDeadlineStaysFeasibleAndCheap) {
  DeploymentOptimizer optimizer;
  const auto ladders = sample_ladders();
  const auto loose = optimizer.optimize(ladders, 1e6);
  ASSERT_TRUE(loose.feasible);
  const auto tight = optimizer.optimize(ladders, 6000.0);
  ASSERT_TRUE(tight.feasible);
  EXPECT_LE(loose.total_cost_usd, tight.total_cost_usd);
  EXPECT_LE(tight.total_runtime_seconds, 6000.0);
}

TEST(OptimizerTest, TighteningPromotesSomeStages) {
  DeploymentOptimizer optimizer;
  const auto ladders = sample_ladders();
  const auto loose = optimizer.optimize(ladders, 30000.0);
  const auto tight = optimizer.optimize(ladders, 8000.0);
  ASSERT_TRUE(loose.feasible);
  ASSERT_TRUE(tight.feasible);
  int promotions = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    if (tight.entries[i].vcpus > loose.entries[i].vcpus) ++promotions;
  }
  EXPECT_GT(promotions, 0);
}

TEST(OptimizerTest, BelowFastestIsNa) {
  DeploymentOptimizer optimizer;
  const auto ladders = sample_ladders();
  // Fastest total = 3352 + 519 + 1692 + 82 = 5645 (Table I's boundary!).
  const auto boundary = optimizer.optimize(ladders, 5645.0);
  EXPECT_TRUE(boundary.feasible);
  const auto below = optimizer.optimize(ladders, 5000.0);
  EXPECT_FALSE(below.feasible);
}

TEST(OptimizerTest, PlanEntriesSumToTotals) {
  DeploymentOptimizer optimizer;
  const auto plan = optimizer.optimize(sample_ladders(), 10000.0);
  ASSERT_TRUE(plan.feasible);
  double time = 0.0, cost = 0.0;
  for (const auto& entry : plan.entries) {
    time += entry.runtime_seconds;
    cost += entry.cost_usd;
  }
  EXPECT_NEAR(time, plan.total_runtime_seconds, 1e-9);
  EXPECT_NEAR(cost, plan.total_cost_usd, 1e-9);
}

TEST(OptimizerTest, SavingsAgainstBaselines) {
  DeploymentOptimizer optimizer;
  const auto report = optimizer.savings(sample_ladders(), 10000.0);
  ASSERT_TRUE(report.feasible);
  EXPECT_LE(report.optimized_cost_usd,
            report.over_provision_cost_usd + 1e-9);
  EXPECT_GT(report.saving_vs_over, 0.0);
}

TEST(OptimizerTest, PaperObjectiveVariantRunsToo) {
  DeploymentOptimizer paper_objective(cloud::PricingCatalog::aws_like(),
                                      cloud::Objective::kMaxInverseCost);
  const auto plan = paper_objective.optimize(sample_ladders(), 10000.0);
  EXPECT_TRUE(plan.feasible);
  EXPECT_LE(plan.total_runtime_seconds, 10000.0);
}

}  // namespace
}  // namespace edacloud::core
