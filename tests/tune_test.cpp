// RecipeTuner + recipe-space determinism (ISSUE 9 tentpole tests): golden
// snapshots of the recipe sets, key canonicalization (logically-equal
// recipes hash equal, distinct recipes never collide across the sampled
// space), and the tuner's hard contract — same-seed TuneResult bytes are
// identical at any thread count and any predict batch size. TuneTest and
// RecipeSpaceTest run under TSan in scripts/check.sh.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/dataset.hpp"
#include "core/predictor.hpp"
#include "nl/cell_library.hpp"
#include "tune/recipe_space.hpp"
#include "tune/tuner.hpp"
#include "workloads/generators.hpp"

namespace edacloud::tune {
namespace {

TEST(RecipeSpaceTest, StandardRecipesGoldenSnapshot) {
  // The corpus-multiplying recipe set is load-bearing for every trained
  // model and golden digest downstream; a change here must be deliberate.
  const auto recipes = synth::standard_recipes();
  ASSERT_EQ(recipes.size(), 6u);
  const char* expected_keys[] = {
      "rw0-nobal-area-nofuse", "rw1-nobal-area-fuse", "rw1-bal-area-fuse",
      "rw2-bal-area-fuse",     "rw1-bal-delay-fuse",  "rw2-bal-delay-nofuse",
  };
  const char* expected_names[] = {
      "raw-area", "rw-area", "rw-bal-area",
      "rw2-bal-area", "rw-bal-delay", "rw2-bal-delay",
  };
  for (std::size_t i = 0; i < recipes.size(); ++i) {
    EXPECT_EQ(recipes[i].name, expected_names[i]) << i;
    EXPECT_EQ(recipe_key(recipes[i]), expected_keys[i]) << i;
  }
}

TEST(RecipeSpaceTest, DefaultRecipeGolden) {
  const synth::SynthRecipe recipe = synth::default_recipe();
  EXPECT_EQ(recipe.name, "rw-bal-area");
  EXPECT_EQ(recipe.rewrite_passes, 1);
  EXPECT_TRUE(recipe.balance);
  EXPECT_EQ(recipe.mode, synth::MapMode::kArea);
  EXPECT_TRUE(recipe.fuse);
  EXPECT_EQ(recipe_key(recipe), "rw1-bal-area-fuse");
}

TEST(RecipeSpaceTest, KeyIgnoresNameAndDependsOnEveryField) {
  synth::SynthRecipe a = synth::default_recipe();
  synth::SynthRecipe b = a;
  b.name = "completely-different-display-name";
  EXPECT_EQ(recipe_key(a), recipe_key(b));
  EXPECT_EQ(recipe_key_hash(a), recipe_key_hash(b));

  // Flipping any single semantic field changes the key.
  synth::SynthRecipe variant = a;
  variant.rewrite_passes = 2;
  EXPECT_NE(recipe_key(a), recipe_key(variant));
  variant = a;
  variant.balance = !variant.balance;
  EXPECT_NE(recipe_key(a), recipe_key(variant));
  variant = a;
  variant.mode = synth::MapMode::kDelay;
  EXPECT_NE(recipe_key(a), recipe_key(variant));
  variant = a;
  variant.fuse = !variant.fuse;
  EXPECT_NE(recipe_key(a), recipe_key(variant));
}

TEST(RecipeSpaceTest, KeysAndHashesAreInjectiveAcrossTheSampledSpace) {
  // Every field tuple reachable by the generator (rewrite 0..12 x 8 flag
  // combinations): distinct tuples must give distinct keys AND distinct
  // 64-bit hashes — the dedup set and the cache tests rely on it.
  std::set<std::string> keys;
  std::set<std::uint64_t> hashes;
  std::size_t tuples = 0;
  for (int rewrite = 0; rewrite <= 12; ++rewrite) {
    for (const bool balance : {false, true}) {
      for (const auto mode : {synth::MapMode::kArea, synth::MapMode::kDelay}) {
        for (const bool fuse : {false, true}) {
          synth::SynthRecipe recipe;
          recipe.rewrite_passes = rewrite;
          recipe.balance = balance;
          recipe.mode = mode;
          recipe.fuse = fuse;
          keys.insert(recipe_key(recipe));
          hashes.insert(recipe_key_hash(recipe));
          ++tuples;
        }
      }
    }
  }
  EXPECT_EQ(keys.size(), tuples);
  EXPECT_EQ(hashes.size(), tuples);
}

TEST(RecipeSpaceTest, EnumerationIsDeterministicAndDeduped) {
  RecipeSpace space;
  space.grid_max_rewrite = 1;
  space.sample_max_rewrite = 6;
  space.random_samples = 10;
  space.seed = 42;

  const auto first = enumerate_recipes(space);
  const auto second = enumerate_recipes(space);
  ASSERT_EQ(first.size(), second.size());
  std::set<std::string> seen;
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(recipe_key(first[i]), recipe_key(second[i])) << i;
    EXPECT_EQ(first[i].name, recipe_key(first[i])) << "named by key";
    EXPECT_TRUE(seen.insert(first[i].name).second)
        << "duplicate recipe " << first[i].name;
  }
  // Grid part: (grid_max+1) * 2 * 2 * 2 combinations, then >= 1 extension
  // draw outside the grid (rewrite passes up to 6 are reachable).
  EXPECT_GE(first.size(), 16u);
  // A different seed keeps the grid prefix but may change the extension.
  RecipeSpace reseeded = space;
  reseeded.seed = 43;
  const auto third = enumerate_recipes(reseeded);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(recipe_key(third[i]), recipe_key(first[i]));
  }
}

TEST(RecipeSpaceTest, GridOnlySpaceHasExactCount) {
  RecipeSpace space;
  space.grid_max_rewrite = 2;
  space.random_samples = 0;
  EXPECT_EQ(enumerate_recipes(space).size(), 24u);  // 3 * 2 * 2 * 2
}

// ---------------------------------------------------------------------------
// RecipeTuner: train one small predictor for the whole suite (the tuner
// refuses untrained predictors), then check the determinism contract and
// the joint-optimization invariants on a small design.

const nl::CellLibrary& library() {
  static const nl::CellLibrary lib = nl::make_generic_14nm_library();
  return lib;
}

const core::RuntimePredictor& trained_predictor() {
  static const core::RuntimePredictor* predictor = [] {
    core::DatasetOptions dataset_options;
    dataset_options.max_netlists = 16;
    dataset_options.max_recipes = 2;
    core::DatasetBuilder builder(library(), dataset_options);
    std::vector<workloads::BenchmarkSpec> specs;
    for (const char* family : {"adder", "parity", "decoder", "max"}) {
      workloads::BenchmarkSpec spec;
      spec.family = family;
      for (const auto& info : workloads::families()) {
        if (info.name == family) spec.size = info.corpus_sizes[0];
      }
      spec.seed = 3;
      specs.push_back(spec);
    }
    core::PredictorOptions options;
    options.gcn = ml::GcnConfig::fast();
    options.gcn.epochs = 6;
    auto* p = new core::RuntimePredictor(options);
    p->train(builder.build(specs));
    return p;
  }();
  return *predictor;
}

TunerOptions small_options() {
  TunerOptions options;
  options.space.grid_max_rewrite = 1;   // 16 grid recipes
  options.space.random_samples = 2;
  options.space.seed = 7;
  return options;
}

TEST(TuneTest, SameSeedByteIdenticalAcrossThreadCounts) {
  const nl::Aig design = workloads::gen_adder(8);
  std::string baseline;
  for (const int threads : {1, 2, 8}) {
    TunerOptions options = small_options();
    options.threads = threads;
    RecipeTuner tuner(library(), trained_predictor(), options);
    const TuneResult result = tuner.tune(design, 300.0);
    const std::string text = result.export_text();
    if (baseline.empty()) {
      baseline = text;
    } else {
      EXPECT_EQ(text, baseline) << "threads=" << threads;
    }
  }
  ASSERT_FALSE(baseline.empty());
  EXPECT_NE(baseline.find("edacloud-tune-export v1"), std::string::npos);
}

TEST(TuneTest, SameSeedByteIdenticalAcrossBatchSizes) {
  const nl::Aig design = workloads::gen_adder(8);
  std::string baseline;
  for (const std::size_t batch : {1u, 3u, 64u, 4096u}) {
    TunerOptions options = small_options();
    options.threads = 4;
    options.batch_size = batch;
    RecipeTuner tuner(library(), trained_predictor(), options);
    const std::string text = tuner.tune(design, 300.0).export_text();
    if (baseline.empty()) {
      baseline = text;
    } else {
      EXPECT_EQ(text, baseline) << "batch=" << batch;
    }
  }
}

TEST(TuneTest, DefaultRecipeIsAlwaysEvaluated) {
  const nl::Aig design = workloads::gen_parity(8);
  // A space that cannot contain the default recipe (grid rewrite 0 only,
  // no random draws): the tuner must append the fixed baseline itself.
  TunerOptions options;
  options.space.grid_max_rewrite = 0;
  options.space.random_samples = 0;
  RecipeTuner tuner(library(), trained_predictor(), options);
  const TuneResult result = tuner.tune(design, 300.0);
  bool found = false;
  for (const auto& evaluation : result.evaluations) {
    if (evaluation.key == "rw1-bal-area-fuse") found = true;
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(result.fixed.recipe_key, "rw1-bal-area-fuse");
}

TEST(TuneTest, JointOptimaNeverWorseThanFixedBaseline) {
  const nl::Aig design = workloads::gen_max(8);
  RecipeTuner tuner(library(), trained_predictor(), small_options());
  const TuneResult result = tuner.tune(design, 300.0);

  ASSERT_TRUE(result.fixed.plan.feasible);
  ASSERT_TRUE(result.joint.plan.feasible);
  ASSERT_TRUE(result.joint_at_qor.plan.feasible);
  // The default recipe is in the space, so the unrestricted joint minimum
  // can only be cheaper or equal; the QoR-constrained one additionally
  // must not regress area.
  EXPECT_LE(result.joint.plan.total_cost_usd, result.fixed.plan.total_cost_usd);
  EXPECT_LE(result.joint_at_qor.plan.total_cost_usd,
            result.fixed.plan.total_cost_usd);
  EXPECT_LE(result.joint_at_qor.area_um2, result.fixed.area_um2);
  EXPECT_GE(result.savings_vs_fixed_usd(), 0.0);
  EXPECT_EQ(result.savings_vs_fixed_usd(),
            result.fixed.plan.total_cost_usd -
                result.joint_at_qor.plan.total_cost_usd);
}

TEST(TuneTest, FrontierIsSortedAndNonDominated) {
  const nl::Aig design = workloads::gen_adder(8);
  RecipeTuner tuner(library(), trained_predictor(), small_options());
  const TuneResult result = tuner.tune(design, 300.0);
  const auto& frontier = result.frontier;
  ASSERT_FALSE(frontier.empty());
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    const auto& prev = frontier[i - 1];
    const auto& point = frontier[i];
    // Sorted by (deadline, cost, area, key).
    EXPECT_TRUE(prev.deadline_seconds < point.deadline_seconds ||
                (prev.deadline_seconds == point.deadline_seconds &&
                 (prev.cost_usd < point.cost_usd ||
                  (prev.cost_usd == point.cost_usd &&
                   (prev.area_um2 < point.area_um2 ||
                    (prev.area_um2 == point.area_um2 &&
                     prev.recipe_key < point.recipe_key))))))
        << "unsorted at " << i;
  }
  for (std::size_t i = 0; i < frontier.size(); ++i) {
    for (std::size_t j = 0; j < frontier.size(); ++j) {
      if (i == j) continue;
      const auto& a = frontier[i];
      const auto& b = frontier[j];
      const bool dominates =
          a.deadline_seconds <= b.deadline_seconds &&
          a.cost_usd <= b.cost_usd && a.area_um2 <= b.area_um2 &&
          (a.deadline_seconds < b.deadline_seconds ||
           a.cost_usd < b.cost_usd || a.area_um2 < b.area_um2);
      EXPECT_FALSE(dominates) << "point " << i << " dominates " << j;
    }
  }
}

TEST(TuneTest, WarmCacheSecondRunHitsEverything) {
  const nl::Aig design = workloads::gen_adder(8);
  RecipeTuner tuner(library(), trained_predictor(), small_options());
  const TuneResult cold = tuner.tune(design, 300.0);
  EXPECT_GT(cold.cache_misses, 0u);
  const TuneResult warm = tuner.tune(design, 300.0);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_GT(warm.cache_hits, 0u);
  // Cached values are bit-identical to the miss path, so the plans and
  // frontier must match exactly (only the cache counters differ).
  EXPECT_EQ(warm.joint.plan.total_cost_usd, cold.joint.plan.total_cost_usd);
  EXPECT_EQ(warm.fixed.plan.total_cost_usd, cold.fixed.plan.total_cost_usd);
  ASSERT_EQ(warm.frontier.size(), cold.frontier.size());
  for (std::size_t i = 0; i < warm.frontier.size(); ++i) {
    EXPECT_EQ(warm.frontier[i].cost_usd, cold.frontier[i].cost_usd);
    EXPECT_EQ(warm.frontier[i].recipe_key, cold.frontier[i].recipe_key);
  }
}

TEST(TuneTest, ExternalCacheIsSharedAcrossTuners) {
  const nl::Aig design = workloads::gen_adder(8);
  ml::PredictionCache cache(4096);
  RecipeTuner first(library(), trained_predictor(), small_options(), &cache);
  (void)first.tune(design, 300.0);
  RecipeTuner second(library(), trained_predictor(), small_options(), &cache);
  const TuneResult warm = second.tune(design, 300.0);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(second.cache(), &cache);
}

TEST(TuneTest, BudgetModeAnswersFastestWithinBudget) {
  const nl::Aig design = workloads::gen_adder(8);
  RecipeTuner tuner(library(), trained_predictor(), small_options());
  const TuneResult unbudgeted = tuner.tune(design, 300.0);
  ASSERT_TRUE(unbudgeted.joint.plan.feasible);
  EXPECT_FALSE(unbudgeted.budget_feasible);  // budget_usd == 0 -> off

  // A budget at the joint optimum must be feasible and meet the deadline.
  const double budget = unbudgeted.joint.plan.total_cost_usd;
  const TuneResult funded = tuner.tune(design, 300.0, budget);
  EXPECT_TRUE(funded.budget_feasible);
  EXPECT_GT(funded.budget_fastest_seconds, 0.0);
  EXPECT_FALSE(funded.budget_recipe_key.empty());

  // An absurdly small budget is infeasible.
  const TuneResult broke = tuner.tune(design, 300.0, 1e-12);
  EXPECT_FALSE(broke.budget_feasible);
}

TEST(TuneTest, UntrainedPredictorThrows) {
  const core::RuntimePredictor untrained;
  RecipeTuner tuner(library(), untrained, small_options());
  const nl::Aig design = workloads::gen_adder(8);
  EXPECT_THROW((void)tuner.tune(design, 300.0), std::runtime_error);
}

}  // namespace
}  // namespace edacloud::tune
