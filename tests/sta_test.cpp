#include <gtest/gtest.h>

#include "place/placer.hpp"
#include "sta/sta.hpp"
#include "synth/engine.hpp"
#include "workloads/generators.hpp"

namespace edacloud::sta {
namespace {

const nl::CellLibrary& library() {
  static const nl::CellLibrary lib = nl::make_generic_14nm_library();
  return lib;
}

nl::Netlist synthesize(const nl::Aig& aig) {
  synth::SynthesisEngine engine(library());
  return engine.synthesize(aig, synth::default_recipe()).netlist;
}

TEST(StaTest, ArrivalsMonotoneAlongCriticalPath) {
  const nl::Netlist netlist = synthesize(workloads::gen_adder(8));
  StaEngine engine;
  const TimingReport report = engine.run(netlist, nullptr, {});
  ASSERT_GE(report.critical_path.size(), 2u);
  for (std::size_t i = 1; i < report.critical_path.size(); ++i) {
    EXPECT_GE(report.arrival_ps[report.critical_path[i]],
              report.arrival_ps[report.critical_path[i - 1]]);
  }
}

TEST(StaTest, CriticalPathEndsAtWorstOutput) {
  const nl::Netlist netlist = synthesize(workloads::gen_adder(8));
  StaEngine engine;
  const TimingReport report = engine.run(netlist, nullptr, {});
  double worst = 0.0;
  for (nl::NodeId id : netlist.outputs()) {
    worst = std::max(worst, report.arrival_ps[id]);
  }
  EXPECT_DOUBLE_EQ(report.critical_path_ps, worst);
  ASSERT_FALSE(report.critical_path.empty());
  EXPECT_DOUBLE_EQ(report.arrival_ps[report.critical_path.back()], worst);
}

TEST(StaTest, AutoPeriodLeavesPositiveSlack) {
  const nl::Netlist netlist = synthesize(workloads::gen_alu(8));
  StaEngine engine;
  const TimingReport report = engine.run(netlist, nullptr, {});
  EXPECT_GT(report.worst_slack_ps, 0.0);
  EXPECT_EQ(report.violating_endpoints, 0u);
  EXPECT_NEAR(report.clock_period_ps, report.critical_path_ps * 1.05,
              1e-6);
}

TEST(StaTest, TightClockCreatesViolations) {
  const nl::Netlist netlist = synthesize(workloads::gen_alu(8));
  StaEngine relaxed;
  const double critical = relaxed.run(netlist, nullptr, {}).critical_path_ps;

  StaOptions options;
  options.clock_period_ps = critical * 0.5;
  StaEngine tight(options);
  const TimingReport report = tight.run(netlist, nullptr, {});
  EXPECT_LT(report.worst_slack_ps, 0.0);
  EXPECT_GT(report.violating_endpoints, 0u);
}

TEST(StaTest, WorstSlackConsistentWithPeriod) {
  const nl::Netlist netlist = synthesize(workloads::gen_parity(16));
  StaOptions options;
  options.clock_period_ps = 10000.0;
  StaEngine engine(options);
  const TimingReport report = engine.run(netlist, nullptr, {});
  EXPECT_NEAR(report.worst_slack_ps,
              options.clock_period_ps - report.critical_path_ps, 1e-6);
}

TEST(StaTest, SlackNonNegativeEverywhereWhenMet) {
  const nl::Netlist netlist = synthesize(workloads::gen_comparator(8));
  StaEngine engine;
  const TimingReport report = engine.run(netlist, nullptr, {});
  for (nl::NodeId id = 0; id < netlist.node_count(); ++id) {
    EXPECT_GE(report.slack_ps[id], -1e-6) << id;
  }
}

TEST(StaTest, PlacementAwareDelaysAreLarger) {
  const nl::Netlist netlist = synthesize(workloads::gen_alu(8));
  place::QuadraticPlacer placer;
  const auto placement = placer.place(netlist);
  StaEngine engine;
  const double without =
      engine.run(netlist, nullptr, {}).critical_path_ps;
  const double with =
      engine.run(netlist, &placement, {}).critical_path_ps;
  // Real wire lengths generally exceed the fanout-based default estimate
  // for at least part of the die; both must be positive and same order.
  EXPECT_GT(without, 0.0);
  EXPECT_GT(with, 0.0);
  EXPECT_LT(with / without, 50.0);
  EXPECT_GT(with / without, 0.02);
}

TEST(StaTest, DeeperLogicHasLongerCriticalPath) {
  const nl::Netlist shallow = synthesize(workloads::gen_parity(16));
  const nl::Netlist deep = synthesize(workloads::gen_multiplier(8));
  StaEngine engine;
  EXPECT_LT(engine.run(shallow, nullptr, {}).critical_path_ps,
            engine.run(deep, nullptr, {}).critical_path_ps);
}

TEST(StaTest, InstrumentedRunHasFpSignature) {
  const nl::Netlist netlist = synthesize(workloads::gen_alu(8));
  const auto ladder = perf::vm_ladder(perf::InstanceFamily::kGeneralPurpose);
  StaEngine engine;
  const TimingReport report =
      engine.run(netlist, nullptr, {ladder.begin(), ladder.end()});
  ASSERT_EQ(report.profile.counts.size(), 4u);
  // STA is FP-heavy (library lookups) but less AVX-pure than placement.
  EXPECT_GT(report.profile.counts[0].avx_fraction(), 0.3);
  EXPECT_GT(report.profile.counts[0].fp_ops, 0u);
  EXPECT_GT(report.profile.tasks.task_count(), 0u);
}

TEST(StaTest, BitIdenticalAcrossThreadCounts) {
  // Levelized parallel sweeps must reproduce the serial engine exactly —
  // every timing number and every perf-counter total — at any thread count
  // (two registry-style designs, threads=1 vs threads=4).
  const std::vector<perf::VmConfig> configs = {
      perf::make_vm(perf::InstanceFamily::kGeneralPurpose, 4)};
  for (const nl::Aig& aig :
       {workloads::gen_alu(16), workloads::gen_multiplier(12)}) {
    const nl::Netlist netlist = synthesize(aig);
    place::QuadraticPlacer placer;
    const place::Placement placement = placer.place(netlist);

    StaOptions options;
    options.threads = 1;
    const TimingReport serial =
        StaEngine(options).run(netlist, &placement, configs);
    options.threads = 4;
    const TimingReport parallel =
        StaEngine(options).run(netlist, &placement, configs);

    // Exact equality, not tolerances: determinism means bit-identical.
    EXPECT_EQ(serial.critical_path_ps, parallel.critical_path_ps);
    EXPECT_EQ(serial.clock_period_ps, parallel.clock_period_ps);
    EXPECT_EQ(serial.worst_slack_ps, parallel.worst_slack_ps);
    EXPECT_EQ(serial.violating_endpoints, parallel.violating_endpoints);
    EXPECT_EQ(serial.arrival_ps, parallel.arrival_ps);
    EXPECT_EQ(serial.slack_ps, parallel.slack_ps);
    EXPECT_EQ(serial.slew_ps, parallel.slew_ps);
    EXPECT_EQ(serial.worst_parent, parallel.worst_parent);
    EXPECT_EQ(serial.critical_path, parallel.critical_path);
    EXPECT_EQ(serial.leakage_power_nw, parallel.leakage_power_nw);
    EXPECT_EQ(serial.dynamic_power_uw, parallel.dynamic_power_uw);

    ASSERT_EQ(serial.profile.counts.size(), 1u);
    ASSERT_EQ(parallel.profile.counts.size(), 1u);
    const auto& a = serial.profile.counts[0];
    const auto& b = parallel.profile.counts[0];
    EXPECT_EQ(a.int_ops, b.int_ops);
    EXPECT_EQ(a.fp_ops, b.fp_ops);
    EXPECT_EQ(a.avx_ops, b.avx_ops);
    EXPECT_EQ(a.loads, b.loads);
    EXPECT_EQ(a.stores, b.stores);
    EXPECT_EQ(a.branches, b.branches);
    EXPECT_EQ(a.branch_misses, b.branch_misses);
    EXPECT_EQ(a.l1_accesses, b.l1_accesses);
    EXPECT_EQ(a.l1_misses, b.l1_misses);
    EXPECT_EQ(a.llc_accesses, b.llc_accesses);
    EXPECT_EQ(a.llc_misses, b.llc_misses);
  }
}

TEST(StaTest, EndpointCountMatchesOutputs) {
  const nl::Netlist netlist = synthesize(workloads::gen_decoder(4));
  StaEngine engine;
  const TimingReport report = engine.run(netlist, nullptr, {});
  EXPECT_EQ(report.endpoint_count, netlist.outputs().size());
}

}  // namespace
}  // namespace edacloud::sta
