#include <gtest/gtest.h>

#include "place/placer.hpp"
#include "sta/sta.hpp"
#include "synth/engine.hpp"
#include "workloads/generators.hpp"

namespace edacloud::sta {
namespace {

const nl::CellLibrary& library() {
  static const nl::CellLibrary lib = nl::make_generic_14nm_library();
  return lib;
}

nl::Netlist synthesize(const nl::Aig& aig) {
  synth::SynthesisEngine engine(library());
  return engine.synthesize(aig, synth::default_recipe()).netlist;
}

TEST(StaTest, ArrivalsMonotoneAlongCriticalPath) {
  const nl::Netlist netlist = synthesize(workloads::gen_adder(8));
  StaEngine engine;
  const TimingReport report = engine.run(netlist, nullptr, {});
  ASSERT_GE(report.critical_path.size(), 2u);
  for (std::size_t i = 1; i < report.critical_path.size(); ++i) {
    EXPECT_GE(report.arrival_ps[report.critical_path[i]],
              report.arrival_ps[report.critical_path[i - 1]]);
  }
}

TEST(StaTest, CriticalPathEndsAtWorstOutput) {
  const nl::Netlist netlist = synthesize(workloads::gen_adder(8));
  StaEngine engine;
  const TimingReport report = engine.run(netlist, nullptr, {});
  double worst = 0.0;
  for (nl::NodeId id : netlist.outputs()) {
    worst = std::max(worst, report.arrival_ps[id]);
  }
  EXPECT_DOUBLE_EQ(report.critical_path_ps, worst);
  ASSERT_FALSE(report.critical_path.empty());
  EXPECT_DOUBLE_EQ(report.arrival_ps[report.critical_path.back()], worst);
}

TEST(StaTest, AutoPeriodLeavesPositiveSlack) {
  const nl::Netlist netlist = synthesize(workloads::gen_alu(8));
  StaEngine engine;
  const TimingReport report = engine.run(netlist, nullptr, {});
  EXPECT_GT(report.worst_slack_ps, 0.0);
  EXPECT_EQ(report.violating_endpoints, 0u);
  EXPECT_NEAR(report.clock_period_ps, report.critical_path_ps * 1.05,
              1e-6);
}

TEST(StaTest, TightClockCreatesViolations) {
  const nl::Netlist netlist = synthesize(workloads::gen_alu(8));
  StaEngine relaxed;
  const double critical = relaxed.run(netlist, nullptr, {}).critical_path_ps;

  StaOptions options;
  options.clock_period_ps = critical * 0.5;
  StaEngine tight(options);
  const TimingReport report = tight.run(netlist, nullptr, {});
  EXPECT_LT(report.worst_slack_ps, 0.0);
  EXPECT_GT(report.violating_endpoints, 0u);
}

TEST(StaTest, WorstSlackConsistentWithPeriod) {
  const nl::Netlist netlist = synthesize(workloads::gen_parity(16));
  StaOptions options;
  options.clock_period_ps = 10000.0;
  StaEngine engine(options);
  const TimingReport report = engine.run(netlist, nullptr, {});
  EXPECT_NEAR(report.worst_slack_ps,
              options.clock_period_ps - report.critical_path_ps, 1e-6);
}

TEST(StaTest, SlackNonNegativeEverywhereWhenMet) {
  const nl::Netlist netlist = synthesize(workloads::gen_comparator(8));
  StaEngine engine;
  const TimingReport report = engine.run(netlist, nullptr, {});
  for (nl::NodeId id = 0; id < netlist.node_count(); ++id) {
    EXPECT_GE(report.slack_ps[id], -1e-6) << id;
  }
}

TEST(StaTest, PlacementAwareDelaysAreLarger) {
  const nl::Netlist netlist = synthesize(workloads::gen_alu(8));
  place::QuadraticPlacer placer;
  const auto placement = placer.place(netlist);
  StaEngine engine;
  const double without =
      engine.run(netlist, nullptr, {}).critical_path_ps;
  const double with =
      engine.run(netlist, &placement, {}).critical_path_ps;
  // Real wire lengths generally exceed the fanout-based default estimate
  // for at least part of the die; both must be positive and same order.
  EXPECT_GT(without, 0.0);
  EXPECT_GT(with, 0.0);
  EXPECT_LT(with / without, 50.0);
  EXPECT_GT(with / without, 0.02);
}

TEST(StaTest, DeeperLogicHasLongerCriticalPath) {
  const nl::Netlist shallow = synthesize(workloads::gen_parity(16));
  const nl::Netlist deep = synthesize(workloads::gen_multiplier(8));
  StaEngine engine;
  EXPECT_LT(engine.run(shallow, nullptr, {}).critical_path_ps,
            engine.run(deep, nullptr, {}).critical_path_ps);
}

TEST(StaTest, InstrumentedRunHasFpSignature) {
  const nl::Netlist netlist = synthesize(workloads::gen_alu(8));
  const auto ladder = perf::vm_ladder(perf::InstanceFamily::kGeneralPurpose);
  StaEngine engine;
  const TimingReport report =
      engine.run(netlist, nullptr, {ladder.begin(), ladder.end()});
  ASSERT_EQ(report.profile.counts.size(), 4u);
  // STA is FP-heavy (library lookups) but less AVX-pure than placement.
  EXPECT_GT(report.profile.counts[0].avx_fraction(), 0.3);
  EXPECT_GT(report.profile.counts[0].fp_ops, 0u);
  EXPECT_GT(report.profile.tasks.task_count(), 0u);
}

TEST(StaTest, EndpointCountMatchesOutputs) {
  const nl::Netlist netlist = synthesize(workloads::gen_decoder(4));
  StaEngine engine;
  const TimingReport report = engine.run(netlist, nullptr, {});
  EXPECT_EQ(report.endpoint_count, netlist.outputs().size());
}

}  // namespace
}  // namespace edacloud::sta
