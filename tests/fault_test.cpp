#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>

#include "cloud/pricing.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/fault.hpp"
#include "sched/job.hpp"
#include "sched/load_gen.hpp"
#include "sched/policy.hpp"
#include "sched/simulator.hpp"
#include "util/rng.hpp"

namespace edacloud::sched {
namespace {

// ---- BackoffSchedule --------------------------------------------------------

TEST(BackoffTest, LadderIsCappedExponential) {
  BackoffSchedule schedule(BackoffConfig{});  // 30 * 2^(k-1), cap 600
  EXPECT_DOUBLE_EQ(schedule.base_delay_seconds(1), 30.0);
  EXPECT_DOUBLE_EQ(schedule.base_delay_seconds(2), 60.0);
  EXPECT_DOUBLE_EQ(schedule.base_delay_seconds(3), 120.0);
  EXPECT_DOUBLE_EQ(schedule.base_delay_seconds(4), 240.0);
  EXPECT_DOUBLE_EQ(schedule.base_delay_seconds(5), 480.0);
  EXPECT_DOUBLE_EQ(schedule.base_delay_seconds(6), 600.0);
  EXPECT_DOUBLE_EQ(schedule.base_delay_seconds(60), 600.0);
}

TEST(BackoffTest, JitterStaysWithinConfiguredBand) {
  BackoffConfig config;
  config.jitter_fraction = 0.25;
  BackoffSchedule schedule(config);
  util::Rng rng(99);
  for (int k = 1; k <= 8; ++k) {
    const double base = schedule.base_delay_seconds(k);
    for (int draw = 0; draw < 200; ++draw) {
      const double delay = schedule.delay_seconds(k, rng);
      EXPECT_GE(delay, base * 0.75);
      EXPECT_LE(delay, base * 1.25);
    }
  }
}

TEST(BackoffTest, DelaysAreDeterministicPerSeed) {
  BackoffSchedule schedule(BackoffConfig{});
  util::Rng a(7), b(7);
  for (int k = 1; k <= 12; ++k) {
    EXPECT_DOUBLE_EQ(schedule.delay_seconds(k, a),
                     schedule.delay_seconds(k, b));
  }
}

TEST(BackoffTest, ZeroJitterIsExactlyTheLadder) {
  BackoffConfig config;
  config.jitter_fraction = 0.0;
  BackoffSchedule schedule(config);
  util::Rng rng(5);
  for (int k = 1; k <= 8; ++k) {
    EXPECT_DOUBLE_EQ(schedule.delay_seconds(k, rng),
                     schedule.base_delay_seconds(k));
  }
}

TEST(BackoffTest, InvalidConfigThrows) {
  BackoffConfig negative;
  negative.base_seconds = -1.0;
  EXPECT_THROW(BackoffSchedule{negative}, std::invalid_argument);
  BackoffConfig shrinking;
  shrinking.multiplier = 0.5;
  EXPECT_THROW(BackoffSchedule{shrinking}, std::invalid_argument);
  BackoffConfig wild;
  wild.jitter_fraction = 1.0;  // would allow zero / negative delays
  EXPECT_THROW(BackoffSchedule{wild}, std::invalid_argument);
}

// ---- Checkpoint arithmetic --------------------------------------------------

TEST(CheckpointTest, SnapshotCountSkipsTheFinalSegment) {
  EXPECT_EQ(checkpoint::snapshots_for(1000.0, 300.0), 3);
  EXPECT_EQ(checkpoint::snapshots_for(900.0, 300.0), 2);  // exact multiple
  EXPECT_EQ(checkpoint::snapshots_for(200.0, 300.0), 0);  // single segment
  EXPECT_EQ(checkpoint::snapshots_for(1000.0, 0.0), 0);   // disabled
}

TEST(CheckpointTest, EffectiveSecondsAddsSnapshotOverhead) {
  EXPECT_DOUBLE_EQ(checkpoint::effective_seconds(1000.0, 300.0, 20.0), 1060.0);
  EXPECT_DOUBLE_EQ(checkpoint::effective_seconds(200.0, 300.0, 20.0), 200.0);
  EXPECT_DOUBLE_EQ(checkpoint::effective_seconds(1000.0, 0.0, 20.0), 1000.0);
}

TEST(CheckpointTest, CompletedCheckpointsFollowTheTimeline) {
  // Segments are [300 work, 20 snapshot] = 320 s of effective time each.
  EXPECT_EQ(checkpoint::completed_checkpoints(0.0, 300.0, 20.0), 0);
  EXPECT_EQ(checkpoint::completed_checkpoints(319.0, 300.0, 20.0), 0);
  EXPECT_EQ(checkpoint::completed_checkpoints(320.0, 300.0, 20.0), 1);
  EXPECT_EQ(checkpoint::completed_checkpoints(640.0, 300.0, 20.0), 2);
}

TEST(CheckpointTest, CreditedWorkIsCheckpointsTimesInterval) {
  EXPECT_DOUBLE_EQ(checkpoint::credited_work_seconds(640.0, 300.0, 20.0, 1e9),
                   600.0);
  EXPECT_DOUBLE_EQ(checkpoint::credited_work_seconds(100.0, 300.0, 20.0, 1e9),
                   0.0);
  // Never credits more than the attempt's total work.
  EXPECT_DOUBLE_EQ(checkpoint::credited_work_seconds(640.0, 300.0, 20.0,
                                                     450.0),
                   450.0);
}

// ---- cloud::FaultModel (the pricing hook) -----------------------------------

TEST(FaultModelTest, ZeroRateIsIdentityPlusSnapshots) {
  cloud::FaultModel model;
  EXPECT_DOUBLE_EQ(model.expected_runtime_seconds(5000.0), 5000.0);
  model.checkpoint_interval_seconds = 1000.0;
  model.checkpoint_overhead_seconds = 50.0;
  EXPECT_DOUBLE_EQ(model.expected_runtime_seconds(5000.0),
                   5000.0 + 4 * 50.0);
}

TEST(FaultModelTest, ExpectedRuntimeIsMonotonicInRate) {
  double previous = 3600.0;
  for (double rate : {0.1, 0.5, 1.0, 2.0, 4.0}) {
    cloud::FaultModel model;
    model.interruptions_per_hour = rate;
    const double stretched = model.expected_runtime_seconds(3600.0);
    EXPECT_GT(stretched, previous);
    previous = stretched;
  }
}

TEST(FaultModelTest, CheckpointingBeatsRestartFromZeroOnLongWork) {
  cloud::FaultModel naive;
  naive.interruptions_per_hour = 1.0;
  cloud::FaultModel checkpointed = naive;
  checkpointed.checkpoint_interval_seconds = 600.0;
  checkpointed.checkpoint_overhead_seconds = 30.0;
  const double work = 4.0 * 3600.0;
  EXPECT_LT(checkpointed.expected_runtime_seconds(work),
            naive.expected_runtime_seconds(work));
}

TEST(FaultModelTest, FaultyJobCostInflatesWithRate) {
  const auto catalog = cloud::PricingCatalog::aws_like();
  cloud::FaultModel model;
  model.interruptions_per_hour = 2.0;
  const double clean = catalog.job_cost_usd(
      perf::InstanceFamily::kGeneralPurpose, 4, 3600.0);
  const double faulty = catalog.faulty_job_cost_usd(
      perf::InstanceFamily::kGeneralPurpose, 4, 3600.0, model);
  EXPECT_GT(faulty, clean);
  model.interruptions_per_hour = 0.0;
  EXPECT_DOUBLE_EQ(catalog.faulty_job_cost_usd(
                       perf::InstanceFamily::kGeneralPurpose, 4, 3600.0,
                       model),
                   clean);
}

// ---- Simulator fault injection ----------------------------------------------

SimConfig faulty_sim(std::uint64_t seed) {
  SimConfig config;
  config.seed = seed;
  config.duration_seconds = 3600.0;
  config.load.arrival_rate_per_hour = 60.0;
  config.load.slo_multiplier = 4.0;
  config.load.mix = uniform_mix();
  config.fleet.boot_seconds = 45.0;
  config.autoscaler.interval_seconds = 15.0;
  config.warm_pools = {
      {{perf::InstanceFamily::kGeneralPurpose, 8}, 2},
      {{perf::InstanceFamily::kGeneralPurpose, 1}, 2},
      {{perf::InstanceFamily::kMemoryOptimized, 1}, 2},
  };
  config.fleet.spot_fraction = 0.5;
  config.fleet.spot.interruptions_per_hour = 3.0;
  config.fault.crash_rate_per_hour = 0.5;
  config.fault.boot_failure_probability = 0.1;
  config.fault.restart = RestartModel::kCheckpoint;
  config.fault.checkpoint_interval_seconds = 300.0;
  config.fault.checkpoint_overhead_seconds = 15.0;
  return config;
}

TEST(FaultInjectionTest, MetricsAndTraceAreByteIdenticalAcrossRuns) {
  const auto traced_run = [](std::string* trace_json) {
    obs::Tracer& tracer = obs::Tracer::global();
    tracer.clear();
    tracer.enable(obs::ClockMode::kVirtual);
    FleetSimulator sim(faulty_sim(21), builtin_templates(),
                       make_policy("cost"));
    const FleetMetrics metrics = sim.run();
    tracer.disable();
    *trace_json = tracer.to_json();
    obs::Registry registry;
    metrics.export_to(registry);
    return registry.to_json();
  };
  std::string trace_a;
  std::string trace_b;
  const std::string metrics_a = traced_run(&trace_a);
  const std::string metrics_b = traced_run(&trace_b);
  EXPECT_EQ(metrics_a, metrics_b);
  EXPECT_EQ(trace_a, trace_b);
  // The injected faults actually fired (otherwise this test proves nothing).
  EXPECT_NE(metrics_a.find("fleet.retries"), std::string::npos);
  EXPECT_NE(trace_a.find("/attempt-"), std::string::npos);
}

TEST(FaultInjectionTest, CrashesKillTasksButJobsStillFinish) {
  SimConfig config = faulty_sim(4);
  config.fleet.spot_fraction = 0.0;  // isolate the crash hazard
  config.fault.boot_failure_probability = 0.0;
  config.fault.crash_rate_per_hour = 2.0;
  FleetSimulator sim(config, builtin_templates(), make_policy("fifo"));
  const FleetMetrics m = sim.run();
  EXPECT_GT(m.crashes, 0u);
  EXPECT_GT(m.retries, 0u);
  EXPECT_GT(m.wasted_seconds, 0.0);
  EXPECT_LT(m.goodput_fraction, 1.0);
  EXPECT_EQ(m.jobs_completed + m.jobs_failed, m.jobs_submitted);
  EXPECT_EQ(m.jobs_failed, 0u);  // 10-attempt budget absorbs this rate
}

TEST(FaultInjectionTest, BootFailuresSelfHeal) {
  SimConfig config = faulty_sim(11);
  config.fleet.spot_fraction = 0.0;
  config.fault.crash_rate_per_hour = 0.0;
  config.fault.boot_failure_probability = 0.3;
  FleetSimulator sim(config, builtin_templates(), make_policy("cost"));
  const FleetMetrics m = sim.run();
  EXPECT_GT(m.boot_failures, 0u);
  EXPECT_EQ(m.jobs_completed, m.jobs_submitted);
}

TEST(FaultInjectionTest, SingleAttemptBudgetFailsJobsUnderHeavyFaults) {
  SimConfig config = faulty_sim(8);
  config.fleet.spot_fraction = 1.0;
  config.fleet.spot.interruptions_per_hour = 8.0;
  config.fault.max_attempts_per_stage = 1;
  FleetSimulator sim(config, builtin_templates(), make_policy("cost"));
  const FleetMetrics m = sim.run();
  EXPECT_GT(m.jobs_failed, 0u);
  EXPECT_EQ(m.jobs_completed + m.jobs_failed, m.jobs_submitted);
}

TEST(FaultInjectionTest, RepeatedEvictionsFallBackToOnDemand) {
  SimConfig config = faulty_sim(13);
  config.fault.crash_rate_per_hour = 0.0;
  config.fault.boot_failure_probability = 0.0;
  config.fleet.spot_fraction = 0.5;
  config.fleet.spot.interruptions_per_hour = 10.0;
  config.fault.spot_evictions_before_fallback = 1;
  FleetSimulator sim(config, builtin_templates(), make_policy("cost"));
  const FleetMetrics m = sim.run();
  EXPECT_GT(m.spot_fallbacks, 0u);
  EXPECT_EQ(m.jobs_completed + m.jobs_failed, m.jobs_submitted);
}

TEST(FaultInjectionTest, AllSpotFleetNeverStrandsFallbackTasks) {
  // An all-spot fleet has no on-demand tier to degrade to; the fallback
  // must not trigger (a require_on_demand task could never dispatch).
  SimConfig config = faulty_sim(17);
  config.fault.crash_rate_per_hour = 0.0;
  config.fault.boot_failure_probability = 0.0;
  config.fleet.spot_fraction = 1.0;
  config.fleet.spot.interruptions_per_hour = 6.0;
  config.fault.spot_evictions_before_fallback = 1;
  FleetSimulator sim(config, builtin_templates(), make_policy("cost"));
  const FleetMetrics m = sim.run();
  EXPECT_EQ(m.spot_fallbacks, 0u);
  EXPECT_EQ(m.jobs_completed + m.jobs_failed, m.jobs_submitted);
}

TEST(FaultInjectionTest, CheckpointingWastesLessThanRestartFromZero) {
  SimConfig config = faulty_sim(29);
  config.fault.boot_failure_probability = 0.0;
  config.fleet.spot.interruptions_per_hour = 4.0;

  config.fault.restart = RestartModel::kFromZero;
  FleetSimulator naive(config, builtin_templates(), make_policy("cost"));
  const FleetMetrics from_zero = naive.run();

  config.fault.restart = RestartModel::kCheckpoint;
  FleetSimulator smart(config, builtin_templates(), make_policy("cost"));
  const FleetMetrics checkpointed = smart.run();

  EXPECT_GT(from_zero.wasted_seconds, 0.0);
  EXPECT_LT(checkpointed.wasted_seconds, from_zero.wasted_seconds);
  EXPECT_GT(checkpointed.checkpoint_overhead_seconds, 0.0);
  EXPECT_DOUBLE_EQ(from_zero.checkpoint_overhead_seconds, 0.0);
}

TEST(FaultInjectionTest, AttemptSpansCarryTheAttemptNumber) {
  obs::Tracer& tracer = obs::Tracer::global();
  tracer.clear();
  tracer.enable(obs::ClockMode::kVirtual);
  SimConfig config = faulty_sim(21);
  config.fleet.spot.interruptions_per_hour = 6.0;
  FleetSimulator sim(config, builtin_templates(), make_policy("cost"));
  sim.run();
  tracer.disable();
  const std::string json = tracer.to_json();
  tracer.clear();
  EXPECT_NE(json.find("task/synthesis/attempt-1"), std::string::npos);
  EXPECT_NE(json.find("/attempt-2"), std::string::npos);  // some retry ran
}

TEST(FaultInjectionTest, CostAwarePolicyPricesTheFaultRate) {
  SimConfig config = faulty_sim(3);
  auto policy = make_policy("cost");
  auto* cost_aware = dynamic_cast<CostAwarePolicy*>(policy.get());
  ASSERT_NE(cost_aware, nullptr);
  FleetSimulator sim(config, builtin_templates(), std::move(policy));
  // set_fault_context ran in the constructor: effective rate combines the
  // crash hazard with the spot-share-weighted reclaim hazard.
  const cloud::FaultModel& model = cost_aware->fault_model();
  EXPECT_DOUBLE_EQ(model.interruptions_per_hour, 0.5 + 0.5 * 3.0);
  EXPECT_DOUBLE_EQ(model.checkpoint_interval_seconds, 300.0);
  EXPECT_GT(model.expected_runtime_seconds(3600.0), 3600.0);
}

}  // namespace
}  // namespace edacloud::sched
