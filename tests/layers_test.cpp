#include <gtest/gtest.h>

#include "place/placer.hpp"
#include "route/layers.hpp"
#include "synth/engine.hpp"
#include "workloads/generators.hpp"

namespace edacloud::route {
namespace {

const nl::CellLibrary& library() {
  static const nl::CellLibrary lib = nl::make_generic_14nm_library();
  return lib;
}

RoutingResult route_design(const nl::Aig& aig) {
  synth::SynthesisEngine engine(library());
  const nl::Netlist netlist =
      engine.synthesize(aig, synth::default_recipe()).netlist;
  place::QuadraticPlacer placer;
  const auto placement = placer.place(netlist);
  GridRouter router;
  return router.run(netlist, placement, {});
}

TEST(LayerAssignmentTest, EveryRoutedEdgeAssigned) {
  const RoutingResult routing = route_design(workloads::gen_alu(8));
  ASSERT_FALSE(routing.connection_edges.empty());
  const LayerReport report = assign_layers(routing);
  EXPECT_EQ(report.horizontal_layers, 2);
  EXPECT_EQ(report.vertical_layers, 2);
  EXPECT_GT(report.segment_count, 0u);
  // Each path pays at least pin-access vias.
  EXPECT_GE(report.via_count, 2 * routing.routed_count);
}

TEST(LayerAssignmentTest, UtilizationConservesWirelength) {
  const RoutingResult routing = route_design(workloads::gen_adder(12));
  LayerOptions options;
  const LayerReport report = assign_layers(routing, options);
  // Total used tracks across layers equals total routed edge usage.
  const int grid = routing.grid_size;
  const std::size_t h_edges =
      static_cast<std::size_t>(grid) * static_cast<std::size_t>(grid - 1);
  double used_tracks = 0.0;
  for (std::size_t layer = 0; layer < report.layer_utilization.size();
       ++layer) {
    used_tracks += report.layer_utilization[layer] *
                   static_cast<double>(h_edges) *
                   static_cast<double>(options.tracks_per_layer);
  }
  EXPECT_NEAR(used_tracks, static_cast<double>(routing.wirelength_gedges),
              1.0);
}

TEST(LayerAssignmentTest, MoreLayersReduceOverflow) {
  const RoutingResult routing = route_design(workloads::gen_alu(12));
  LayerOptions tight;
  tight.horizontal_layers = 1;
  tight.vertical_layers = 1;
  tight.tracks_per_layer = 4;
  LayerOptions roomy = tight;
  roomy.horizontal_layers = 4;
  roomy.vertical_layers = 4;
  const auto a = assign_layers(routing, tight);
  const auto b = assign_layers(routing, roomy);
  EXPECT_LE(b.overflowed_layer_edges, a.overflowed_layer_edges);
}

TEST(LayerAssignmentTest, SingleLayerPairHasMinimalVias) {
  const RoutingResult routing = route_design(workloads::gen_adder(8));
  LayerOptions options;
  options.horizontal_layers = 1;
  options.vertical_layers = 1;
  const LayerReport report = assign_layers(routing, options);
  // With one layer per direction, vias = bends + pin access; every
  // segment boundary is a bend.
  EXPECT_EQ(report.via_count,
            (report.segment_count - routing.routed_count) +
                2 * routing.routed_count);
}

TEST(LayerAssignmentTest, InvalidOptionsThrow) {
  const RoutingResult routing = route_design(workloads::gen_adder(8));
  LayerOptions bad;
  bad.horizontal_layers = 0;
  EXPECT_THROW(assign_layers(routing, bad), std::invalid_argument);
}

}  // namespace
}  // namespace edacloud::route
