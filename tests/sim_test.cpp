#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "synth/engine.hpp"
#include "workloads/generators.hpp"

namespace edacloud::sim {
namespace {

const nl::CellLibrary& library() {
  static const nl::CellLibrary lib = nl::make_generic_14nm_library();
  return lib;
}

nl::Netlist synthesize(const nl::Aig& aig) {
  synth::SynthesisEngine engine(library());
  return engine.synthesize(aig, synth::default_recipe()).netlist;
}

TEST(SimulationTest, CountsRequestedVectors) {
  const nl::Netlist netlist = synthesize(workloads::gen_adder(8));
  SimOptions options;
  options.vector_count = 1024;
  SimulationEngine engine(options);
  const SimulationResult result = engine.run(netlist, {});
  EXPECT_EQ(result.vector_count, 1024u);
}

TEST(SimulationTest, ToggleRatesInUnitRange) {
  const nl::Netlist netlist = synthesize(workloads::gen_alu(8));
  SimulationEngine engine;
  const SimulationResult result = engine.run(netlist, {});
  EXPECT_GT(result.toggle_count, 0u);
  for (double rate : result.toggle_rate) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  EXPECT_GT(result.average_toggle_rate, 0.05);  // random vectors toggle a lot
  EXPECT_LT(result.average_toggle_rate, 0.95);
}

TEST(SimulationTest, InputsToggleAtHalf) {
  // Random inputs flip each bit with probability 1/2 between vectors.
  const nl::Netlist netlist = synthesize(workloads::gen_parity(16));
  SimulationEngine engine;
  const SimulationResult result = engine.run(netlist, {});
  for (nl::NodeId id : netlist.inputs()) {
    EXPECT_NEAR(result.toggle_rate[id], 0.5, 0.1) << id;
  }
}

TEST(SimulationTest, DeterministicForSameSeed) {
  const nl::Netlist netlist = synthesize(workloads::gen_adder(8));
  SimulationEngine engine;
  const auto a = engine.run(netlist, {});
  const auto b = engine.run(netlist, {});
  EXPECT_EQ(a.toggle_count, b.toggle_count);
}

TEST(SimulationTest, EmbarrassinglyParallelSpeedup) {
  // The paper's premise: simulation scales nearly linearly, unlike the
  // four flow jobs. Check the task-graph speedup approaches the worker
  // count.
  const nl::Netlist netlist = synthesize(workloads::gen_alu(8));
  SimulationEngine engine;
  const SimulationResult result = engine.run(netlist, {});
  EXPECT_GT(result.profile.tasks.speedup(8), 6.5);
  EXPECT_GT(result.profile.tasks.speedup(4), 3.5);
}

TEST(SimulationTest, InstrumentedRunFillsCounters) {
  const nl::Netlist netlist = synthesize(workloads::gen_adder(8));
  const auto ladder = perf::vm_ladder(perf::InstanceFamily::kGeneralPurpose);
  SimOptions options;
  options.vector_count = 512;
  SimulationEngine engine(options);
  const SimulationResult result =
      engine.run(netlist, {ladder.begin(), ladder.end()});
  ASSERT_EQ(result.profile.counts.size(), 4u);
  EXPECT_GT(result.profile.counts[0].int_ops, 0u);
  EXPECT_GT(result.profile.counts[0].loads, 0u);
  // Simulation branches are loop control: highly predictable.
  EXPECT_LT(result.profile.counts[0].branch_miss_rate(), 0.05);
}

}  // namespace
}  // namespace edacloud::sim
