#include <gtest/gtest.h>

#include "nl/netlist_sim.hpp"
#include "synth/engine.hpp"
#include "synth/mapper.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"
#include "workloads/registry.hpp"

namespace edacloud::synth {
namespace {

using nl::Aig;

const nl::CellLibrary& library() {
  static const nl::CellLibrary lib = nl::make_generic_14nm_library();
  return lib;
}

bool map_equivalent(const Aig& aig, const nl::Netlist& netlist,
                    std::uint64_t seed) {
  if (aig.input_count() != netlist.inputs().size() ||
      aig.output_count() != netlist.outputs().size()) {
    return false;
  }
  util::Rng rng(seed);
  for (int round = 0; round < 4; ++round) {
    std::vector<std::uint64_t> words(aig.input_count());
    for (auto& w : words) w = rng();
    if (aig.simulate(words) != nl::simulate(netlist, words)) return false;
  }
  return true;
}

TEST(TechMapperTest, MatcherIsPopulated) {
  const TechMapper mapper(library());
  // At least: AND/OR/NAND/NOR/XOR/XNOR/AOI/OAI/MUX/MAJ in some polarity.
  EXPECT_GT(mapper.matcher_size(), 30u);
}

TEST(TechMapperTest, MapsXorToXorCell) {
  Aig aig;
  const auto a = aig.add_input();
  const auto b = aig.add_input();
  aig.add_output(aig.xor_of(a, b));
  const TechMapper mapper(library());
  const MapResult result = mapper.map(aig, MapMode::kArea);
  EXPECT_TRUE(map_equivalent(aig, result.netlist, 1));
  // A matched XOR2 implements 3 AIG ands with one cell.
  EXPECT_LE(result.cell_count, 2u);
  EXPECT_GE(result.matched_cut_count, 1u);
}

TEST(TechMapperTest, MapsMuxToMuxCell) {
  Aig aig;
  const auto s = aig.add_input();
  const auto t = aig.add_input();
  const auto f = aig.add_input();
  aig.add_output(aig.mux_of(s, t, f));
  const TechMapper mapper(library());
  MapResult result = mapper.map(aig, MapMode::kArea);
  // The OR root leaves the matched MUX behind a double inversion; the
  // inverter-fusion peephole recovers the single-cell form.
  result.netlist = fuse_inverters(result.netlist);
  EXPECT_TRUE(map_equivalent(aig, result.netlist, 2));
  EXPECT_LE(result.netlist.stats().instance_count, 2u);
}

TEST(TechMapperTest, ConstantOutputHandled) {
  Aig aig;
  const auto a = aig.add_input();
  (void)a;
  aig.add_output(nl::kLitFalse);
  aig.add_output(nl::kLitTrue);
  const TechMapper mapper(library());
  const MapResult result = mapper.map(aig, MapMode::kArea);
  const auto out = nl::simulate(result.netlist, {0xDEADBEEFULL});
  EXPECT_EQ(out[0], 0ULL);
  EXPECT_EQ(out[1], ~0ULL);
}

TEST(TechMapperTest, ComplementedOutputSharesInverter) {
  Aig aig;
  const auto a = aig.add_input();
  const auto b = aig.add_input();
  const auto x = aig.and_of(a, b);
  aig.add_output(nl::literal_not(x));
  aig.add_output(nl::literal_not(x));
  const TechMapper mapper(library());
  const MapResult result = mapper.map(aig, MapMode::kArea);
  EXPECT_TRUE(map_equivalent(aig, result.netlist, 3));
  // AND + one shared INV (or a single NAND after fusion) — not 3+ cells.
  EXPECT_LE(result.cell_count, 2u);
}

TEST(TechMapperTest, DelayModeNotWorseInDepth) {
  const Aig aig = workloads::gen_adder(16);
  const TechMapper mapper(library());
  const auto area = mapper.map(aig, MapMode::kArea);
  const auto delay = mapper.map(aig, MapMode::kDelay);
  EXPECT_LE(delay.netlist.stats().logic_depth,
            area.netlist.stats().logic_depth + 2);
  EXPECT_TRUE(map_equivalent(aig, area.netlist, 4));
  EXPECT_TRUE(map_equivalent(aig, delay.netlist, 5));
}

TEST(FuseInvertersTest, FusesAndInvToNand) {
  const nl::CellLibrary& lib = library();
  nl::Netlist n("t", &lib);
  const auto a = n.add_input();
  const auto b = n.add_input();
  const auto g = n.add_cell(*lib.find("AND2_X1"), {a, b});
  const auto inv = n.add_cell(*lib.find("INV_X1"), {g});
  n.add_output(inv);
  const nl::Netlist fused = fuse_inverters(n);
  EXPECT_EQ(fused.stats().instance_count, 1u);
  util::Rng rng(6);
  const std::vector<std::uint64_t> words = {rng(), rng()};
  EXPECT_EQ(nl::simulate(n, words), nl::simulate(fused, words));
}

TEST(FuseInvertersTest, SkipsMultiFanoutBase) {
  const nl::CellLibrary& lib = library();
  nl::Netlist n("t", &lib);
  const auto a = n.add_input();
  const auto b = n.add_input();
  const auto g = n.add_cell(*lib.find("AND2_X1"), {a, b});
  const auto inv = n.add_cell(*lib.find("INV_X1"), {g});
  n.add_output(inv);
  n.add_output(g);  // g has two fanouts -> cannot fuse
  const nl::Netlist fused = fuse_inverters(n);
  EXPECT_EQ(fused.stats().instance_count, 2u);
  util::Rng rng(7);
  const std::vector<std::uint64_t> words = {rng(), rng()};
  EXPECT_EQ(nl::simulate(n, words), nl::simulate(fused, words));
}

TEST(FuseInvertersTest, PreservesInterfaceOrder) {
  const nl::CellLibrary& lib = library();
  nl::Netlist n("t", &lib);
  const auto a = n.add_input();
  const auto b = n.add_input();
  const auto g1 = n.add_cell(*lib.find("INV_X1"), {b});
  const auto g2 = n.add_cell(*lib.find("INV_X1"), {a});
  n.add_output(g1);
  n.add_output(g2);
  const nl::Netlist fused = fuse_inverters(n);
  EXPECT_EQ(fused.inputs().size(), 2u);
  EXPECT_EQ(fused.outputs().size(), 2u);
  const auto orig = nl::simulate(n, {0x1234ULL, 0x5678ULL});
  const auto after = nl::simulate(fused, {0x1234ULL, 0x5678ULL});
  EXPECT_EQ(orig, after);
}

// Full-recipe equivalence sweep over families (the synthesis correctness
// property at the heart of deliverable (a)).
class RecipeEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(RecipeEquivalenceTest, SynthesisPreservesFunction) {
  const auto [family, recipe_index] = GetParam();
  workloads::BenchmarkSpec spec;
  spec.family = family;
  for (const auto& info : workloads::families()) {
    if (info.name == family) spec.size = info.corpus_sizes.front();
  }
  spec.seed = 13;
  const Aig aig = workloads::generate(spec);
  const auto recipes = standard_recipes();
  const SynthesisEngine engine(library());
  const MapResult result = engine.synthesize(
      aig, recipes[static_cast<std::size_t>(recipe_index)]);
  std::string error;
  EXPECT_TRUE(result.netlist.validate(&error)) << error;
  EXPECT_TRUE(map_equivalent(aig, result.netlist, 91))
      << family << " recipe " << recipe_index;
}

std::vector<std::string> sweep_families() {
  return {"adder", "shifter", "max", "comparator", "parity", "encoder",
          "i2c", "mem_ctrl", "crossbar", "dynamic_node"};
}

INSTANTIATE_TEST_SUITE_P(
    FamiliesXRecipes, RecipeEquivalenceTest,
    ::testing::Combine(::testing::ValuesIn(sweep_families()),
                       ::testing::Values(0, 1, 2, 3, 4, 5)));

}  // namespace
}  // namespace edacloud::synth
