#include <gtest/gtest.h>

#include "ml/gcn.hpp"
#include "util/rng.hpp"

namespace edacloud::ml {
namespace {

GraphSample make_sample(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::pair<nl::VertexId, nl::VertexId>> edges;
  for (std::size_t i = 1; i < n; ++i) {
    edges.emplace_back(static_cast<nl::VertexId>(rng.next_below(i)),
                       static_cast<nl::VertexId>(i));
  }
  GraphSample sample;
  sample.in_neighbors = nl::transpose(nl::build_csr(n, edges));
  sample.features = Matrix(n, 20);
  for (std::size_t v = 0; v < n; ++v) {
    sample.features.at(v, 0) = rng.next_double(0.0, 1.0);
    sample.features.at(v, 19) = 1.0;
  }
  return sample;
}

GcnConfig tiny() {
  GcnConfig config;
  config.hidden1 = 8;
  config.hidden2 = 8;
  config.fc = 8;
  return config;
}

TEST(GcnSerializationTest, SaveLoadRoundTripsPredictions) {
  GcnModel model(tiny());
  const GraphSample sample = make_sample(20, 3);
  // Move off the deterministic init so the dump carries trained state.
  for (int i = 0; i < 10; ++i) {
    model.train_step(sample, {0.3, 0.1, -0.1, -0.2});
  }
  const auto expected = model.predict(sample);

  const std::string dump = model.save();
  GcnModel restored(tiny());
  ASSERT_TRUE(restored.load(dump));
  const auto actual = restored.predict(sample);
  for (int j = 0; j < kRuntimeOutputs; ++j) {
    EXPECT_DOUBLE_EQ(actual[j], expected[j]);
  }
}

TEST(GcnSerializationTest, RejectsWrongArchitecture) {
  GcnModel model(tiny());
  const std::string dump = model.save();
  GcnConfig other = tiny();
  other.hidden1 = 16;
  GcnModel mismatched(other);
  EXPECT_FALSE(mismatched.load(dump));
}

TEST(GcnSerializationTest, RejectsGarbage) {
  GcnModel model(tiny());
  EXPECT_FALSE(model.load("not a model"));
  EXPECT_FALSE(model.load(""));
  // Truncated dump.
  const std::string dump = model.save();
  EXPECT_FALSE(model.load(dump.substr(0, dump.size() / 2)));
}

TEST(GcnSerializationTest, FailedLoadLeavesModelIntact) {
  GcnModel model(tiny());
  const GraphSample sample = make_sample(12, 5);
  const auto before = model.predict(sample);
  ASSERT_FALSE(model.load("edacloud-gcn 1 20 8 8 8\nbroken"));
  const auto after = model.predict(sample);
  for (int j = 0; j < kRuntimeOutputs; ++j) {
    EXPECT_DOUBLE_EQ(after[j], before[j]);
  }
}

TEST(GcnSerializationTest, HeaderCarriesArchitecture) {
  GcnModel model(tiny());
  const std::string dump = model.save();
  EXPECT_EQ(dump.rfind("edacloud-gcn 1 20 8 8 8", 0), 0u);
}

}  // namespace
}  // namespace edacloud::ml
