#include <gtest/gtest.h>

#include "core/dataset.hpp"
#include "core/optimizer.hpp"
#include "core/predictor.hpp"

namespace edacloud::core {
namespace {

const nl::CellLibrary& library() {
  static const nl::CellLibrary lib = nl::make_generic_14nm_library();
  return lib;
}

Dataset small_dataset() {
  DatasetOptions options;
  options.max_netlists = 48;
  options.max_recipes = 2;
  DatasetBuilder builder(library(), options);
  std::vector<workloads::BenchmarkSpec> specs;
  for (const char* family : {"adder", "parity", "decoder", "comparator",
                             "encoder", "arbiter", "cavlc", "crossbar",
                             "shifter", "i2c", "max", "voter"}) {
    for (int size_index : {0, 1}) {
      workloads::BenchmarkSpec spec;
      spec.family = family;
      for (const auto& info : workloads::families()) {
        if (info.name == family) {
          spec.size = info.corpus_sizes[static_cast<std::size_t>(size_index)];
        }
      }
      spec.seed = 3;
      specs.push_back(spec);
    }
  }
  return builder.build(specs);
}

TEST(DatasetTest, BuildsSamplesForEveryJob) {
  const Dataset dataset = small_dataset();
  EXPECT_GT(dataset.design_count, 0u);
  EXPECT_GT(dataset.netlist_count, 0u);
  // Synthesis: one sample per design; netlist jobs: one per netlist.
  EXPECT_EQ(dataset.samples[static_cast<int>(JobKind::kSynthesis)].size(),
            dataset.design_count);
  for (JobKind job :
       {JobKind::kPlacement, JobKind::kRouting, JobKind::kSta}) {
    EXPECT_EQ(dataset.samples[static_cast<int>(job)].size(),
              dataset.netlist_count)
        << job_name(job);
  }
}

TEST(DatasetTest, TargetsAreFiniteAndOrdered) {
  const Dataset dataset = small_dataset();
  for (JobKind job : kAllJobs) {
    for (const auto& sample : dataset.samples[static_cast<int>(job)]) {
      for (int j = 0; j < 4; ++j) {
        EXPECT_TRUE(std::isfinite(sample.log_runtimes[j]));
      }
      // More vCPUs never materially slower in the simulated labels
      // (tiny designs may see a few percent of multi-tenancy overhead).
      EXPECT_GE(sample.log_runtimes[0], sample.log_runtimes[3] - 0.05);
    }
  }
}

TEST(DatasetTest, RespectsNetlistCap) {
  DatasetOptions options;
  options.max_netlists = 5;
  options.max_recipes = 3;
  DatasetBuilder builder(library(), options);
  const Dataset dataset = builder.build(workloads::corpus_specs(4));
  EXPECT_LE(dataset.netlist_count, 5u);
}

TEST(PredictorTest, TrainsAndBeatsTrivialBaseline) {
  const Dataset dataset = small_dataset();
  PredictorOptions options;
  options.gcn = ml::GcnConfig::fast();
  options.gcn.epochs = 80;
  RuntimePredictor predictor(options);
  const auto evaluations = predictor.train(dataset);

  for (const auto& evaluation : evaluations) {
    EXPECT_GT(evaluation.train_samples, 0u) << job_name(evaluation.job);
    // Sanity bound: a usable model, not a random guess (relative errors of
    // untrained nets on these targets exceed 300%).
    EXPECT_LT(evaluation.mean_relative_error, 1.5)
        << job_name(evaluation.job);
  }
}

TEST(PredictorTest, PredictsPositiveRuntimes) {
  const Dataset dataset = small_dataset();
  PredictorOptions options;
  options.gcn = ml::GcnConfig::fast();
  options.gcn.epochs = 40;
  RuntimePredictor predictor(options);
  predictor.train(dataset);

  const auto& sample =
      dataset.samples[static_cast<int>(JobKind::kPlacement)].front();
  const auto runtimes = predictor.predict(JobKind::kPlacement, sample);
  for (double runtime : runtimes) EXPECT_GT(runtime, 0.0);
}

TEST(PredictorTest, PredictedLaddersDriveTheOptimizer) {
  // The full Fig. 1 path: GCN-predicted runtimes (not measurements) feed
  // the MCKP and yield a feasible, priced plan.
  const Dataset dataset = small_dataset();
  PredictorOptions options;
  options.gcn = ml::GcnConfig::fast();
  options.gcn.epochs = 40;
  RuntimePredictor predictor(options);
  predictor.train(dataset);

  RuntimeLadders ladders{};
  for (JobKind job : kAllJobs) {
    const auto& samples = dataset.samples[static_cast<int>(job)];
    ASSERT_FALSE(samples.empty());
    const auto predicted = predictor.predict(job, samples.front());
    for (int i = 0; i < 4; ++i) {
      ASSERT_GT(predicted[i], 0.0) << job_name(job);
      ladders[static_cast<int>(job)][i] = predicted[i];
    }
  }
  DeploymentOptimizer optimizer;
  const auto stages = optimizer.build_stages(ladders);
  const double fastest = cloud::fastest_completion_seconds(stages);
  const auto plan = optimizer.optimize(ladders, fastest * 1.5);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.entries.size(), 4u);
  EXPECT_GT(plan.total_cost_usd, 0.0);
}

TEST(PredictorTest, UntrainedPredictReturnsZeros) {
  RuntimePredictor predictor;
  EXPECT_FALSE(predictor.trained(JobKind::kRouting));
  ml::GraphSample sample;
  sample.features = ml::Matrix(1, 20);
  sample.in_neighbors = nl::build_csr(1, {});
  const auto runtimes = predictor.predict(JobKind::kRouting, sample);
  for (double runtime : runtimes) EXPECT_DOUBLE_EQ(runtime, 0.0);
}

}  // namespace
}  // namespace edacloud::core
