#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace edacloud::util {
namespace {

// ---- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(RngTest, NextBelowCoversAllValues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sum_sq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.08);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a(), child());
}

// ---- stats ------------------------------------------------------------------

TEST(StatsTest, MeanAndStddev) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
  EXPECT_NEAR(stddev(v), std::sqrt(2.5), 1e-12);
}

TEST(StatsTest, EmptyInputsAreZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> v = {0, 10};
  EXPECT_DOUBLE_EQ(percentile(v, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 10.0);
}

TEST(StatsTest, MedianOddCount) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
}

TEST(StatsTest, MapeMatchesHandComputation) {
  const std::vector<double> truth = {10, 20};
  const std::vector<double> pred = {11, 18};
  EXPECT_NEAR(mape(truth, pred), (0.1 + 0.1) / 2, 1e-12);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
}

TEST(StatsTest, PearsonAnticorrelation) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {3, 2, 1};
  EXPECT_NEAR(pearson(x, y), -1.0, 1e-12);
}

// ---- strings ----------------------------------------------------------------

TEST(StringsTest, FormatFixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 0), "-1");
}

TEST(StringsTest, FormatDuration) {
  EXPECT_EQ(format_duration(10.5), "10.5s");
  EXPECT_EQ(format_duration(75), "1m 15s");
  EXPECT_EQ(format_duration(3725), "1h 02m 05s");
}

TEST(StringsTest, FormatCount) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(-9876), "-9,876");
}

TEST(StringsTest, FormatPercent) {
  EXPECT_EQ(format_percent(0.1234, 1), "12.3%");
}

TEST(StringsTest, JoinAndPad) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(pad_left("x", 3), "  x");
  EXPECT_EQ(pad_right("x", 3), "x  ");
  EXPECT_EQ(pad_left("xyz", 2), "xyz");
}

// ---- table ------------------------------------------------------------------

TEST(TableTest, RendersHeadersAndRows) {
  Table table({"Name", "Value"});
  table.add_row({"alpha", "1"});
  table.add_row({"beta", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(TableTest, ShortRowsArePadded) {
  Table table({"A", "B", "C"});
  table.add_row({"only"});
  EXPECT_NO_THROW(table.render());
}

TEST(TableTest, SeparatorInsertsRule) {
  Table table({"A"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  const std::string out = table.render();
  // header rule + bottom rule + separator + top = 4 horizontal lines.
  std::size_t rules = 0, pos = 0;
  while ((pos = out.find("+--", pos)) != std::string::npos) {
    ++rules;
    pos += 3;
  }
  EXPECT_EQ(rules, 4u);
}

// ---- csv --------------------------------------------------------------------

TEST(CsvTest, BasicSerialization) {
  CsvWriter csv({"a", "b"});
  csv.add_row({"1", "2"});
  EXPECT_EQ(csv.str(), "a,b\n1,2\n");
}

TEST(CsvTest, QuotesSpecialCharacters) {
  CsvWriter csv({"x"});
  csv.add_row({"has,comma"});
  csv.add_row({"has\"quote"});
  const std::string out = csv.str();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(CsvTest, WritesFile) {
  CsvWriter csv({"h"});
  csv.add_row({"v"});
  const std::string path = "/tmp/edacloud_csv_test.csv";
  EXPECT_TRUE(csv.write(path));
}

// ---- histogram --------------------------------------------------------------

TEST(HistogramTest, BinsValues) {
  Histogram h(0.0, 1.0, 10);
  h.add(0.05);
  h.add(0.95);
  h.add(0.95);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(9), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, ClampsOutOfRange) {
  Histogram h(0.0, 1.0, 4);
  h.add(-5.0);
  h.add(5.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(3), 1u);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(HistogramTest, QuantileEmptyReturnsNan) {
  // Documented contract: an empty histogram has no quantiles, and the NaN
  // makes forgetting the total() guard loud instead of silently plausible.
  Histogram h(2.0, 10.0, 4);
  EXPECT_TRUE(std::isnan(h.quantile(0.5)));
  EXPECT_TRUE(std::isnan(h.quantile(0.0)));
  EXPECT_TRUE(std::isnan(h.quantile(1.0)));
}

TEST(HistogramTest, QuantileSingleSample) {
  Histogram h(0.0, 4.0, 4);
  h.add(2.5);  // bin 2: [2, 3)
  // With one sample every quantile lands inside its bin; the estimate
  // interpolates across the bin span and must stay within it.
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_GE(h.quantile(q), 2.0) << "q=" << q;
    EXPECT_LE(h.quantile(q), 3.0) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
}

TEST(HistogramTest, QuantileOutOfRangeQClamps) {
  Histogram h(0.0, 1.0, 10);
  h.add(0.25);
  h.add(0.75);
  EXPECT_DOUBLE_EQ(h.quantile(-3.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(7.0), h.quantile(1.0));
  EXPECT_TRUE(std::isnan(h.quantile(std::nan(""))));
}

TEST(HistogramTest, SummaryDigest) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  const Histogram::Summary s = h.summary();
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.0);
  EXPECT_NEAR(s.p50, 50.0, 1.0);
  EXPECT_NEAR(s.p90, 90.0, 1.0);
  EXPECT_NEAR(s.p95, 95.0, 1.0);
  EXPECT_NEAR(s.p99, 99.0, 1.0);
  EXPECT_NEAR(s.p999, 99.9, 1.0);
  // The ladder is monotone by construction.
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.p999);
}

TEST(HistogramTest, SummaryEmptyIsNanWithZeroCount) {
  const Histogram::Summary s = Histogram(0.0, 1.0, 4).summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_TRUE(std::isnan(s.mean));
  EXPECT_TRUE(std::isnan(s.p50));
  EXPECT_TRUE(std::isnan(s.p999));
}

TEST(HistogramTest, SumTracksAddedValues) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(2.5);
  h.add(std::nan(""));  // ignored by sum too
  EXPECT_DOUBLE_EQ(h.sum(), 3.5);
}

TEST(HistogramTest, IgnoresNanSamples) {
  Histogram h(0.0, 1.0, 4);
  h.add(std::nan(""));
  EXPECT_EQ(h.total(), 0u);
  h.add(0.5);
  h.add(std::nan(""));
  EXPECT_EQ(h.total(), 1u);
}

TEST(HistogramTest, InvertedBoundsAreSwapped) {
  Histogram h(10.0, 0.0, 5);  // same as Histogram(0, 10, 5)
  h.add(1.0);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(HistogramTest, ZeroWidthSpanDegeneratesToOneValue) {
  Histogram h(5.0, 5.0, 3);
  h.add(5.0);
  h.add(7.0);  // clamps into the degenerate span
  EXPECT_EQ(h.total(), 2u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinBin) {
  // All mass in [0, 1) of a [0, 2) histogram: the median sits halfway
  // through that bin, the 25th percentile a quarter through.
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 8; ++i) h.add(0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.25), 0.25);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

TEST(HistogramTest, QuantileWalksCumulativeCounts) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);          // bin 0: 1
  h.add(1.5);          // bin 1: 1
  h.add(2.5);          // bin 2: 1
  h.add(2.5);          // bin 2: 2
  // rank 0.75*4 = 3 lands at the end of bin 2's first count — halfway in.
  EXPECT_DOUBLE_EQ(h.quantile(0.75), 2.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(HistogramTest, QuantileApproximatesUniformSample) {
  Histogram h(0.0, 1.0, 100);
  Rng rng(99);
  for (int i = 0; i < 20000; ++i) h.add(rng.next_double());
  EXPECT_NEAR(h.quantile(0.50), 0.50, 0.02);
  EXPECT_NEAR(h.quantile(0.95), 0.95, 0.02);
  EXPECT_NEAR(h.quantile(0.99), 0.99, 0.02);
}

TEST(HistogramTest, QuantileClampsOutOfRangeArguments) {
  Histogram h(0.0, 1.0, 10);
  h.add(0.55);
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));
}

TEST(HistogramTest, RenderContainsCounts) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 7; ++i) h.add(0.25);
  const std::string out = h.render();
  EXPECT_NE(out.find("7"), std::string::npos);
}

}  // namespace
}  // namespace edacloud::util
