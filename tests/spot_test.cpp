#include <gtest/gtest.h>

#include <cmath>

#include "core/optimizer.hpp"
#include "util/rng.hpp"

namespace edacloud::core {
namespace {

RuntimeLadders sample_ladders() {
  RuntimeLadders ladders{};
  ladders[static_cast<int>(JobKind::kSynthesis)] = {6100, 4342, 3449, 3352};
  ladders[static_cast<int>(JobKind::kPlacement)] = {1206, 905, 644, 519};
  ladders[static_cast<int>(JobKind::kRouting)] = {10461, 5514, 2894, 1692};
  ladders[static_cast<int>(JobKind::kSta)] = {183, 119, 90, 82};
  return ladders;
}

TEST(SpotModelTest, ExpectedRuntimeStretchesWithLength) {
  cloud::SpotModel spot;
  const double short_job = spot.expected_runtime_seconds(600.0) / 600.0;
  const double long_job =
      spot.expected_runtime_seconds(36000.0) / 36000.0;
  EXPECT_GT(long_job, short_job);
  EXPECT_GE(short_job, 1.0);
}

TEST(SpotModelTest, ZeroInterruptionRateIsFree) {
  cloud::SpotModel spot;
  spot.interruptions_per_hour = 0.0;
  EXPECT_DOUBLE_EQ(spot.expected_runtime_seconds(5000.0), 5000.0);
}

TEST(SpotModelTest, SampledInterruptionsAreSortedAndInWindow) {
  cloud::SpotModel spot;
  spot.interruptions_per_hour = 20.0;  // dense enough to see several events
  util::Rng rng(7);
  const double window = 3600.0;
  const auto events = spot.sample_interruptions(window, rng);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_GE(events[i], 0.0);
    EXPECT_LT(events[i], window);
    if (i > 0) {
      EXPECT_GE(events[i], events[i - 1]);
    }
  }
}

TEST(SpotModelTest, SamplerIsDeterministicPerSeed) {
  cloud::SpotModel spot;
  spot.interruptions_per_hour = 5.0;
  util::Rng a(42), b(42);
  EXPECT_EQ(spot.sample_interruptions(7200.0, a),
            spot.sample_interruptions(7200.0, b));
}

TEST(SpotModelTest, SamplerReplaysBitIdenticallyAcrossManyDraws) {
  // The fleet simulator leans on this: replaying the same seeded stream
  // must reproduce every event time exactly, draw after draw.
  cloud::SpotModel spot;
  spot.interruptions_per_hour = 5.0;
  util::Rng a(2026), b(2026);
  for (int round = 0; round < 50; ++round) {
    const auto first = spot.sample_interruptions(3600.0, a);
    const auto second = spot.sample_interruptions(3600.0, b);
    ASSERT_EQ(first.size(), second.size()) << round;
    for (std::size_t i = 0; i < first.size(); ++i) {
      EXPECT_DOUBLE_EQ(first[i], second[i]) << round;
    }
    EXPECT_DOUBLE_EQ(spot.sample_time_to_interruption(a),
                     spot.sample_time_to_interruption(b))
        << round;
  }
}

TEST(SpotModelTest, DifferentSeedsDiverge) {
  cloud::SpotModel spot;
  spot.interruptions_per_hour = 5.0;
  util::Rng a(1), b(2);
  EXPECT_NE(spot.sample_interruptions(7200.0, a),
            spot.sample_interruptions(7200.0, b));
}

TEST(SpotModelTest, ZeroRateSamplesNoEvents) {
  cloud::SpotModel spot;
  spot.interruptions_per_hour = 0.0;
  util::Rng rng(3);
  EXPECT_TRUE(spot.sample_interruptions(1e6, rng).empty());
  EXPECT_TRUE(std::isinf(spot.sample_time_to_interruption(rng)));
}

TEST(SpotModelTest, SampleMeanConvergesToExpectedRuntime) {
  cloud::SpotModel spot;  // 0.08/h, 0.6 overhead
  util::Rng rng(2026);
  const double runtime = 5.0 * 3600.0;  // E[interruptions] = 0.4
  const double expected = spot.expected_runtime_seconds(runtime);
  double sum = 0.0;
  constexpr int kReplays = 4000;
  for (int i = 0; i < kReplays; ++i) {
    sum += spot.sampled_runtime_seconds(runtime, rng);
  }
  const double mean = sum / kReplays;
  EXPECT_NEAR(mean / expected, 1.0, 0.02);
}

TEST(SpotModelTest, TimeToInterruptionMatchesExponentialMean) {
  cloud::SpotModel spot;
  spot.interruptions_per_hour = 2.0;
  util::Rng rng(11);
  double sum = 0.0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    sum += spot.sample_time_to_interruption(rng);
  }
  EXPECT_NEAR(sum / kDraws, 1800.0, 50.0);  // mean = 1/rate = 0.5 h
}

TEST(SpotPricingTest, DiscountAppliesToExpectedRuntime) {
  const auto catalog = cloud::PricingCatalog::aws_like();
  cloud::SpotModel spot;
  const double on_demand = catalog.job_cost_usd(
      perf::InstanceFamily::kGeneralPurpose, 4, 3600.0);
  const double spot_cost = catalog.spot_job_cost_usd(
      perf::InstanceFamily::kGeneralPurpose, 4, 3600.0, spot);
  EXPECT_LT(spot_cost, on_demand);
}

TEST(SpotOptimizerTest, SpotDoublesTheItemCount) {
  DeploymentOptimizer optimizer;
  optimizer.enable_spot(cloud::SpotModel{});
  const auto stages = optimizer.build_stages(sample_ladders());
  for (const auto& stage : stages) {
    EXPECT_EQ(stage.items.size(), 8u);
    EXPECT_NE(stage.items.back().label.find("-spot"), std::string::npos);
  }
}

TEST(SpotOptimizerTest, RelaxedDeadlinePrefersSpot) {
  DeploymentOptimizer optimizer;
  optimizer.enable_spot(cloud::SpotModel{});
  const auto plan = optimizer.optimize(sample_ladders(), 1e6);
  ASSERT_TRUE(plan.feasible);
  int spot_count = 0;
  for (const auto& entry : plan.entries) spot_count += entry.spot ? 1 : 0;
  // With unlimited time, the 65%-discounted spot machines win everywhere.
  EXPECT_EQ(spot_count, 4);
}

TEST(SpotOptimizerTest, SpotNeverCostsMoreThanOnDemandPlan) {
  DeploymentOptimizer with_spot;
  with_spot.enable_spot(cloud::SpotModel{});
  DeploymentOptimizer without_spot;
  const auto ladders = sample_ladders();
  for (double deadline : {6000.0, 9000.0, 15000.0, 30000.0}) {
    const auto a = with_spot.optimize(ladders, deadline);
    const auto b = without_spot.optimize(ladders, deadline);
    ASSERT_EQ(a.feasible, b.feasible) << deadline;
    if (a.feasible) {
      // The spot-enabled instance is a superset: never worse.
      EXPECT_LE(a.total_cost_usd, b.total_cost_usd + 1e-9) << deadline;
    }
  }
}

TEST(SpotOptimizerTest, TightDeadlineFallsBackToOnDemand) {
  DeploymentOptimizer optimizer;
  cloud::SpotModel risky;
  risky.interruptions_per_hour = 2.0;   // brutal reclaim rate
  risky.restart_overhead_fraction = 1.0;
  optimizer.enable_spot(risky);
  const auto ladders = sample_ladders();
  const auto stages = DeploymentOptimizer().build_stages(ladders);
  const double fastest = cloud::fastest_completion_seconds(stages);
  const auto plan = optimizer.optimize(ladders, fastest * 1.02);
  ASSERT_TRUE(plan.feasible);
  // Near the feasibility edge, stretched spot runtimes cannot be used for
  // the long stages.
  for (const auto& entry : plan.entries) {
    if (entry.job == JobKind::kRouting) {
      EXPECT_FALSE(entry.spot);
    }
  }
}

TEST(SpotOptimizerTest, DisableRestoresFourItems) {
  DeploymentOptimizer optimizer;
  optimizer.enable_spot(cloud::SpotModel{});
  optimizer.disable_spot();
  const auto stages = optimizer.build_stages(sample_ladders());
  EXPECT_EQ(stages[0].items.size(), 4u);
}

}  // namespace
}  // namespace edacloud::core
