#include <gtest/gtest.h>

#include "nl/netlist_sim.hpp"
#include "sta/sta.hpp"
#include "synth/buffering.hpp"
#include "synth/engine.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

namespace edacloud::synth {
namespace {

const nl::CellLibrary& library() {
  static const nl::CellLibrary lib = nl::make_generic_14nm_library();
  return lib;
}

/// A netlist with one driver fanning out to `sinks` inverters.
nl::Netlist high_fanout_net(int sinks) {
  nl::Netlist n("hfn", &library());
  const auto a = n.add_input();
  const auto driver = n.add_cell(*library().find("BUF_X1"), {a});
  for (int i = 0; i < sinks; ++i) {
    n.add_output(n.add_cell(*library().find("INV_X1"), {driver}));
  }
  return n;
}

TEST(BufferingTest, CapsMaxFanout) {
  const nl::Netlist netlist = high_fanout_net(40);
  BufferingOptions options;
  options.max_fanout = 6;
  const BufferingResult result = buffer_high_fanout(netlist, options);
  EXPECT_GT(result.max_fanout_before, 6u);
  EXPECT_LE(result.max_fanout_after, 6u);
  EXPECT_GT(result.buffers_inserted, 0);
  std::string error;
  EXPECT_TRUE(result.netlist.validate(&error)) << error;
}

TEST(BufferingTest, PreservesLogicFunction) {
  const nl::Netlist netlist = high_fanout_net(25);
  const BufferingResult result = buffer_high_fanout(netlist, {4});
  util::Rng rng(9);
  const std::vector<std::uint64_t> words = {rng()};
  EXPECT_EQ(nl::simulate(netlist, words),
            nl::simulate(result.netlist, words));
}

TEST(BufferingTest, NoOpWhenWithinLimit) {
  const nl::Netlist netlist = high_fanout_net(5);
  BufferingOptions options;
  options.max_fanout = 8;
  const BufferingResult result = buffer_high_fanout(netlist, options);
  EXPECT_EQ(result.buffers_inserted, 0);
  EXPECT_EQ(result.netlist.stats().instance_count,
            netlist.stats().instance_count);
}

TEST(BufferingTest, ReducesWorstLoadDelay) {
  // The unbuffered driver sees the full sink capacitance; after buffering
  // its load shrinks, and so does the critical path through that net.
  const nl::Netlist netlist = high_fanout_net(48);
  const BufferingResult result = buffer_high_fanout(netlist, {6});
  sta::StaEngine engine;
  const double before =
      engine.run(netlist, nullptr, {}).critical_path_ps;
  const double after =
      engine.run(result.netlist, nullptr, {}).critical_path_ps;
  EXPECT_LT(after, before);
}

TEST(BufferingTest, SynthesizedDesignStaysEquivalent) {
  SynthesisEngine engine(library());
  const nl::Netlist netlist =
      engine.synthesize(workloads::gen_decoder(5), default_recipe())
          .netlist;
  const BufferingResult result = buffer_high_fanout(netlist, {4});
  util::Rng rng(11);
  std::vector<std::uint64_t> words(netlist.inputs().size());
  for (auto& w : words) w = rng();
  EXPECT_EQ(nl::simulate(netlist, words),
            nl::simulate(result.netlist, words));
  EXPECT_LE(result.max_fanout_after, 4u);
}

TEST(BufferingTest, InvalidLimitThrows) {
  const nl::Netlist netlist = high_fanout_net(4);
  EXPECT_THROW(buffer_high_fanout(netlist, {1}), std::invalid_argument);
}

}  // namespace
}  // namespace edacloud::synth
