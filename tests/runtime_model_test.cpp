#include <gtest/gtest.h>

#include "perf/runtime_model.hpp"

namespace edacloud::perf {
namespace {

OpCounts basic_counts() {
  OpCounts counts;
  counts.int_ops = 1000000;
  counts.fp_ops = 200000;
  counts.avx_ops = 300000;
  counts.l1_accesses = 500000;
  counts.l1_misses = 50000;
  counts.llc_accesses = 50000;
  counts.llc_misses = 10000;
  counts.branches = 100000;
  counts.branch_misses = 5000;
  return counts;
}

TEST(RuntimeModelTest, CyclesComposition) {
  const VmConfig vm = make_vm(InstanceFamily::kGeneralPurpose, 1);
  RuntimeModelParams params;
  const OpCounts counts = basic_counts();
  const double cycles = estimate_cycles(counts, vm, params);
  const double expected = 1000000 * params.cpi_int +
                          200000 * params.cpi_fp + 300000 * params.cpi_avx +
                          50000 * params.l1_miss_cycles +
                          10000 * params.llc_miss_cycles +
                          5000 * params.branch_miss_cycles;
  EXPECT_NEAR(cycles, expected, 1e-6);
}

TEST(RuntimeModelTest, NoAvxHardwarePaysFallback) {
  VmConfig vm = make_vm(InstanceFamily::kGeneralPurpose, 1);
  RuntimeModelParams params;
  const OpCounts counts = basic_counts();
  const double with_avx = estimate_cycles(counts, vm, params);
  vm.has_avx = false;
  const double without_avx = estimate_cycles(counts, vm, params);
  EXPECT_GT(without_avx, with_avx);
}

JobProfile make_profile() {
  JobProfile profile;
  profile.job = "test";
  for (int vcpus : kVcpuOptions) {
    profile.configs.push_back(
        make_vm(InstanceFamily::kGeneralPurpose, vcpus));
    profile.counts.push_back(basic_counts());
  }
  // Amdahl-ish task graph: serial 20 + 80 parallel units.
  const TaskId serial = profile.tasks.add_task(20.0);
  for (int i = 0; i < 80; ++i) profile.tasks.add_task(1.0, {serial});
  return profile;
}

TEST(RuntimeModelTest, RuntimeDecreasesWithVcpus) {
  const JobProfile profile = make_profile();
  RuntimeModelParams params;
  double previous = 1e300;
  for (std::size_t i = 0; i < 4; ++i) {
    const double runtime = estimate_runtime_seconds(profile, i, params);
    EXPECT_LT(runtime, previous);
    previous = runtime;
  }
}

TEST(RuntimeModelTest, TimeScaleIsLinear) {
  const JobProfile profile = make_profile();
  RuntimeModelParams params;
  const double base = estimate_runtime_seconds(profile, 0, params);
  params.time_scale = 1000.0;
  EXPECT_NEAR(estimate_runtime_seconds(profile, 0, params), base * 1000.0,
              base * 1e-6);
}

TEST(RuntimeModelTest, MeasureProducesSpeedupsRelativeToFirst) {
  const JobProfile profile = make_profile();
  const JobMeasurement m = measure(profile, RuntimeModelParams{});
  ASSERT_EQ(m.runtime_seconds.size(), 4u);
  EXPECT_DOUBLE_EQ(m.speedup[0], 1.0);
  for (std::size_t i = 1; i < 4; ++i) {
    EXPECT_GT(m.speedup[i], m.speedup[i - 1]);
    EXPECT_NEAR(m.speedup[i], m.runtime_seconds[0] / m.runtime_seconds[i],
                1e-9);
  }
}

TEST(RuntimeModelTest, SpeedupBoundedByWorkers) {
  const JobProfile profile = make_profile();
  const JobMeasurement m = measure(profile, RuntimeModelParams{});
  // Identical counters across configs: speedup comes from the task graph
  // alone and cannot exceed the worker count.
  EXPECT_LE(m.speedup[3], 8.0 + 1e-9);
}

TEST(RuntimeModelTest, IndexOutOfRangeThrows) {
  const JobProfile profile = make_profile();
  EXPECT_THROW(estimate_runtime_seconds(profile, 9, RuntimeModelParams{}),
               std::out_of_range);
}

TEST(RuntimeModelTest, EmptyTaskGraphMeansSerial) {
  JobProfile profile;
  profile.job = "serial";
  profile.configs.push_back(make_vm(InstanceFamily::kGeneralPurpose, 8));
  profile.counts.push_back(basic_counts());
  const double runtime =
      estimate_runtime_seconds(profile, 0, RuntimeModelParams{});
  EXPECT_GT(runtime, 0.0);
}

}  // namespace
}  // namespace edacloud::perf
