#include <gtest/gtest.h>

#include "perf/instrument.hpp"

namespace edacloud::perf {
namespace {

std::vector<VmConfig> gp_ladder() {
  const auto ladder = vm_ladder(InstanceFamily::kGeneralPurpose);
  return {ladder.begin(), ladder.end()};
}

TEST(InstrumentTest, DisabledInstrumentCountsNothing) {
  Instrument instrument;
  EXPECT_FALSE(instrument.enabled());
  instrument.load(0);
  instrument.int_ops(100);
  instrument.branch(1, true);
  // No configs: counts() has nothing to index; enabled() is the contract.
}

TEST(InstrumentTest, EmptyConfigListThrows) {
  EXPECT_THROW(Instrument(std::vector<VmConfig>{}), std::invalid_argument);
}

TEST(InstrumentTest, OpCountsAccumulate) {
  Instrument instrument(gp_ladder(), 1);
  instrument.int_ops(10);
  instrument.fp_ops(5);
  instrument.avx_ops(3);
  instrument.load(0);
  instrument.store(64);
  const OpCounts counts = instrument.counts(0);
  EXPECT_EQ(counts.int_ops, 10u);
  EXPECT_EQ(counts.fp_ops, 5u);
  EXPECT_EQ(counts.avx_ops, 3u);
  EXPECT_EQ(counts.loads, 1u);
  EXPECT_EQ(counts.stores, 1u);
}

TEST(InstrumentTest, BranchStatsSharedAcrossConfigs) {
  Instrument instrument(gp_ladder(), 1);
  for (int i = 0; i < 100; ++i) instrument.branch(7, true);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(instrument.counts(c).branches, 100u);
  }
}

TEST(InstrumentTest, SamplingScalesReportedAccesses) {
  Instrument instrument(gp_ladder(), 4);
  for (int i = 0; i < 400; ++i) {
    instrument.load(static_cast<std::uint64_t>(i) * 64);
  }
  const OpCounts counts = instrument.counts(0);
  // 100 sampled accesses scaled back by 4.
  EXPECT_EQ(counts.l1_accesses, 400u);
  EXPECT_EQ(counts.loads, 400u);
}

TEST(InstrumentTest, LargerLlcSliceMissesLess) {
  // Stream a working set that exceeds the 1-vCPU LLC slice but fits the
  // 8-vCPU slice: the big slice must see a lower (or equal) miss rate.
  Instrument instrument(gp_ladder(), 1);
  const auto& small = instrument.configs().front();
  const std::uint64_t working_set = small.llc_bytes * 3;
  for (int pass = 0; pass < 4; ++pass) {
    for (std::uint64_t addr = 0; addr < working_set; addr += 64) {
      instrument.load(addr);
    }
  }
  const double small_rate = instrument.counts(0).llc_miss_rate();
  const double big_rate = instrument.counts(3).llc_miss_rate();
  EXPECT_GT(small_rate, big_rate);
}

TEST(InstrumentTest, PrivateAccessesGrowFootprintWithVcpus) {
  // Thread-private arrays: repeated sweeps of a small private region by
  // many streams. On 1 vCPU all streams share one array (hits); on 8
  // vCPUs eight copies compete, raising misses.
  Instrument instrument(gp_ladder(), 1);
  for (int rep = 0; rep < 40; ++rep) {
    for (std::uint32_t stream = 0; stream < 16; ++stream) {
      for (std::uint64_t addr = 0; addr < 16 * 1024; addr += 64) {
        instrument.load_private(addr, stream);
      }
    }
  }
  const auto c0 = instrument.counts(0);
  const auto c3 = instrument.counts(3);
  // Private L1s keep L1 behaviour identical; the shared LLC sees k times
  // the footprint, so the per-byte relief of the bigger slice shrinks.
  EXPECT_EQ(c3.l1_misses, c0.l1_misses);
  EXPECT_GT(c3.llc_misses + c0.llc_misses, 0u);
}

TEST(InstrumentTest, CountsIndexOutOfRangeThrows) {
  Instrument instrument(gp_ladder(), 1);
  EXPECT_THROW((void)instrument.counts(4), std::out_of_range);
}

TEST(InstrumentTest, AvxFractionComputation) {
  Instrument instrument(gp_ladder(), 1);
  instrument.int_ops(50);
  instrument.avx_ops(50);
  EXPECT_DOUBLE_EQ(instrument.counts(0).avx_fraction(), 0.5);
}

}  // namespace
}  // namespace edacloud::perf
