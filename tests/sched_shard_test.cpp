// Tests for the sharded fleet simulator (DESIGN.md §13): the byte-identity
// contract across shard and thread counts, cross-shard handoff accounting,
// conservative-lookahead violation detection, and the Fleet incremental
// counters the sharded dispatch path leans on.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/fleet.hpp"
#include "sched/load_gen.hpp"
#include "sched/shard.hpp"
#include "sched/sharded_simulator.hpp"

namespace edacloud::sched {
namespace {

// A run with every subsystem lit up: spot capacity with reclaims, boot
// failures, mid-task crashes and checkpointed restarts — the hardest
// configuration to keep deterministic.
ShardedSimConfig faulty_config(int shards) {
  ShardedSimConfig config;
  config.base.seed = 7;
  config.base.duration_seconds = 2 * 3600.0;
  config.base.load.arrival_rate_per_hour = 120.0;
  config.base.load.mix = bursty_mix();
  config.base.fleet.spot_fraction = 0.5;
  config.base.fleet.spot.interruptions_per_hour = 0.4;
  config.base.fault.restart = RestartModel::kCheckpoint;
  config.base.fault.checkpoint_interval_seconds = 120.0;
  config.base.fault.checkpoint_overhead_seconds = 5.0;
  config.base.fault.boot_failure_probability = 0.05;
  config.base.fault.crash_rate_per_hour = 0.1;
  config.shards = shards;
  config.handoff_latency_seconds = 2.0;
  return config;
}

FleetMetrics run_sharded(const ShardedSimConfig& config,
                         const std::string& policy = "cost") {
  ShardedFleetSimulator sim(config, builtin_templates(), policy);
  return sim.run();
}

// Field-by-field exact equality — doubles compared with ==, because the
// contract is bit-identity, not tolerance.
void expect_identical(const FleetMetrics& a, const FleetMetrics& b) {
  EXPECT_EQ(a.jobs_submitted, b.jobs_submitted);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.jobs_failed, b.jobs_failed);
  EXPECT_EQ(a.tasks_dispatched, b.tasks_dispatched);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.boot_failures, b.boot_failures);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.spot_fallbacks, b.spot_fallbacks);
  EXPECT_EQ(a.slo_violations, b.slo_violations);
  EXPECT_EQ(a.wasted_seconds, b.wasted_seconds);
  EXPECT_EQ(a.checkpoint_overhead_seconds, b.checkpoint_overhead_seconds);
  EXPECT_EQ(a.goodput_fraction, b.goodput_fraction);
  EXPECT_EQ(a.drained_at_seconds, b.drained_at_seconds);
  EXPECT_EQ(a.latency_p50, b.latency_p50);
  EXPECT_EQ(a.latency_p95, b.latency_p95);
  EXPECT_EQ(a.latency_p99, b.latency_p99);
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.mean_queue_wait, b.mean_queue_wait);
  EXPECT_EQ(a.slowdown_p99, b.slowdown_p99);
  EXPECT_EQ(a.slo_violation_rate, b.slo_violation_rate);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.total_cost_usd, b.total_cost_usd);
  EXPECT_EQ(a.cost_per_job_usd, b.cost_per_job_usd);
  EXPECT_EQ(a.peak_vms, b.peak_vms);
  EXPECT_EQ(a.vms_launched, b.vms_launched);
  EXPECT_EQ(a.throughput_per_hour, b.throughput_per_hour);
}

// ---- ShardTopology ----------------------------------------------------------

TEST(ShardTopologyTest, PoolIndexRoundTrips) {
  for (int pool = 0; pool < ShardTopology::kPoolCount; ++pool) {
    EXPECT_EQ(ShardTopology::pool_index(ShardTopology::pool_at(pool)), pool);
  }
}

TEST(ShardTopologyTest, EveryPoolOwnedByExactlyOneShard) {
  for (int shards = 1; shards <= ShardTopology::kPoolCount; ++shards) {
    ShardTopology topology(shards);
    std::set<int> seen;
    for (int s = 0; s < shards; ++s) {
      for (const int pool : topology.pools_of_shard(s)) {
        EXPECT_EQ(topology.shard_of_pool(pool), s);
        EXPECT_TRUE(seen.insert(pool).second) << "pool owned twice";
      }
    }
    EXPECT_EQ(static_cast<int>(seen.size()), ShardTopology::kPoolCount);
  }
}

TEST(ShardTopologyTest, RejectsOutOfRangeShardCounts) {
  EXPECT_THROW(ShardTopology(0), std::invalid_argument);
  EXPECT_THROW(ShardTopology(ShardTopology::kPoolCount + 1),
               std::invalid_argument);
}

TEST(ShardEventQueueTest, OrdersByIntrinsicKeyNotInsertion) {
  ShardEventQueue queue;
  queue.push({5.0, ShardEventType::kPoolTick, 3, 0, -1});
  queue.push({5.0, ShardEventType::kJobDeliver, 7, 2, -1});
  queue.push({5.0, ShardEventType::kJobDeliver, 2, 9, -1});
  queue.push({1.0, ShardEventType::kTaskComplete, 0, 1, 4});
  EXPECT_EQ(queue.pop().type, ShardEventType::kTaskComplete);
  const ShardEvent first = queue.pop();   // deliver beats tick at equal time
  EXPECT_EQ(first.type, ShardEventType::kJobDeliver);
  EXPECT_EQ(first.pool, 2);               // lower pool first at equal type
  EXPECT_EQ(queue.pop().pool, 7);
  EXPECT_EQ(queue.pop().type, ShardEventType::kPoolTick);
}

// ---- Byte-identity across shard counts --------------------------------------

TEST(SchedShardTest, MetricsByteIdenticalAcrossShardCounts) {
  const FleetMetrics one = run_sharded(faulty_config(1));
  const FleetMetrics four = run_sharded(faulty_config(4));
  const FleetMetrics eight = run_sharded(faulty_config(8));
  ASSERT_GT(one.jobs_submitted, 100u);
  ASSERT_GT(one.jobs_completed, 0u);
  ASSERT_GT(one.preemptions + one.crashes, 0u);  // faults actually fired
  expect_identical(one, four);
  expect_identical(one, eight);
}

TEST(SchedShardTest, RegistryExportByteIdenticalAcrossShardCounts) {
  std::vector<std::string> exports;
  for (const int shards : {1, 4, 8}) {
    obs::Registry registry;
    run_sharded(faulty_config(shards))
        .export_to(registry, {{"policy", "cost"}});
    exports.push_back(registry.to_json());
  }
  EXPECT_EQ(exports[0], exports[1]);
  EXPECT_EQ(exports[0], exports[2]);
}

TEST(SchedShardTest, MetricsByteIdenticalAcrossThreadCounts) {
  ShardedSimConfig serial = faulty_config(8);
  serial.threads = 1;
  ShardedSimConfig wide = faulty_config(8);
  wide.threads = 4;
  expect_identical(run_sharded(serial), run_sharded(wide));
}

TEST(SchedShardTest, TraceByteIdenticalAcrossShardCounts) {
  obs::Tracer& tracer = obs::Tracer::global();
  std::vector<std::string> traces;
  for (const int shards : {1, 8}) {
    tracer.enable(obs::ClockMode::kVirtual);
    tracer.clear();
    ShardedSimConfig config = faulty_config(shards);
    config.base.duration_seconds = 3600.0;
    run_sharded(config);
    traces.push_back(tracer.to_json());
    tracer.disable();
  }
  EXPECT_GT(traces[0].size(), 1000u);  // spans were actually recorded
  EXPECT_EQ(traces[0], traces[1]);
}

TEST(SchedShardTest, PoliciesAgreeAcrossShardCounts) {
  for (const std::string policy : {"fifo", "cost"}) {
    ShardedSimConfig config = faulty_config(1);
    config.base.duration_seconds = 3600.0;
    const FleetMetrics one = run_sharded(config, policy);
    config.shards = 6;
    expect_identical(one, run_sharded(config, policy));
  }
}

// ---- Handoff accounting -----------------------------------------------------

TEST(SchedShardTest, EveryStageTransitionIsAHandoff) {
  // Fault-free: every job completes, and a 4-stage flow makes exactly 3
  // stage transitions. Admission deliveries are pushed directly by the
  // coordinator, so they never count as handoffs.
  ShardedSimConfig config;
  config.base.seed = 11;
  config.base.duration_seconds = 3600.0;
  config.base.load.arrival_rate_per_hour = 60.0;
  config.shards = 4;
  ShardedFleetSimulator sim(config, builtin_templates(), "cost");
  const FleetMetrics metrics = sim.run();
  ASSERT_GT(metrics.jobs_completed, 0u);
  EXPECT_EQ(metrics.jobs_completed, metrics.jobs_submitted);

  std::uint64_t out = 0;
  std::uint64_t in = 0;
  for (const ShardStats& stats : sim.shard_stats()) {
    out += stats.handoffs_out;
    in += stats.handoffs_in;
  }
  EXPECT_EQ(out, in);  // the barrier delivers everything that was sent
  EXPECT_EQ(out, 3 * metrics.jobs_completed);
  EXPECT_GT(sim.windows(), 0u);
  EXPECT_GT(sim.total_events(), metrics.jobs_submitted);
}

TEST(SchedShardTest, ExportsShardStats) {
  ShardedSimConfig config = faulty_config(4);
  config.base.duration_seconds = 1800.0;
  ShardedFleetSimulator sim(config, builtin_templates(), "cost");
  sim.run();
  obs::Registry registry;
  sim.export_shard_stats(registry, {{"policy", "cost"}});
  EXPECT_NE(registry.find_counter("fleet_shard.windows", {{"policy", "cost"}}),
            nullptr);
  EXPECT_NE(registry.find_counter(
                "fleet_shard.events",
                {{"policy", "cost"}, {"shard", "0"}}),
            nullptr);
}

// ---- Conservative lookahead -------------------------------------------------

TEST(SchedShardTest, OversizedLookaheadViolationThrows) {
  // Claiming more lookahead than the real handoff latency breaks the
  // conservative guarantee: a shard can advance past another shard's
  // in-flight message. The barrier must detect that, not corrupt the run.
  ShardedSimConfig config;
  config.base.seed = 3;
  config.base.duration_seconds = 3600.0;
  config.base.load.arrival_rate_per_hour = 120.0;
  config.shards = 4;
  config.handoff_latency_seconds = 0.05;
  config.lookahead_seconds = 50.0;  // >> handoff latency: unsafe window
  ShardedFleetSimulator sim(config, builtin_templates(), "cost");
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(SchedShardTest, RejectsInvalidConfig) {
  ShardedSimConfig config;
  config.handoff_latency_seconds = 0.0;
  EXPECT_THROW(ShardedFleetSimulator(config, builtin_templates(), "cost"),
               std::invalid_argument);
  ShardedSimConfig negative;
  negative.lookahead_seconds = -1.0;
  EXPECT_THROW(ShardedFleetSimulator(negative, builtin_templates(), "cost"),
               std::invalid_argument);
}

TEST(SchedShardTest, RunIsSingleShot) {
  ShardedSimConfig config;
  config.base.duration_seconds = 600.0;
  ShardedFleetSimulator sim(config, builtin_templates(), "fifo");
  sim.run();
  EXPECT_THROW(sim.run(), std::logic_error);
}

// ---- Fleet incremental counters ---------------------------------------------

TEST(FleetCountersTest, IncrementalCountsMatchInstanceScan) {
  FleetConfig config;
  config.spot_fraction = 0.5;
  Fleet fleet(config);
  util::Rng rng(42);
  const PoolKey pool{perf::InstanceFamily::kGeneralPurpose, 4};
  const PoolKey other{perf::InstanceFamily::kMemoryOptimized, 8};

  std::vector<int> ids;
  for (int i = 0; i < 6; ++i) ids.push_back(fleet.launch(pool, 0.0, rng, true));
  fleet.launch(other, 0.0, rng, true);
  const int booting = fleet.launch(pool, 10.0, rng);  // not idle yet

  fleet.assign(ids[0], 1, 20.0, 100.0);
  fleet.assign(ids[1], 2, 20.0, 100.0);
  fleet.retire(ids[2], 25.0);   // idle retire
  fleet.release(ids[0], 30.0);  // busy -> idle
  fleet.retire(ids[1], 35.0);   // busy retire
  fleet.mark_ready(booting);

  const auto scan = [&](const PoolKey& key) {
    int alive = 0;
    int busy = 0;
    int idle = 0;
    for (const auto& vm : fleet.instances()) {
      if (vm.pool != key || vm.state == VmInstance::State::kRetired) continue;
      ++alive;
      if (vm.state == VmInstance::State::kBusy) ++busy;
      if (vm.state == VmInstance::State::kIdle) ++idle;
    }
    EXPECT_EQ(fleet.alive_count(key), alive);
    EXPECT_EQ(fleet.busy_count(key), busy);
    EXPECT_EQ(fleet.idle_count(key), idle);
    return alive;
  };
  const int total = scan(pool) + scan(other);
  EXPECT_EQ(fleet.total_alive(), total);

  // idle_set view agrees with idle_in and only holds idle members.
  const std::set<int>& idle = fleet.idle_set(pool);
  const std::vector<int> listed = fleet.idle_in(pool);
  EXPECT_EQ(std::vector<int>(idle.begin(), idle.end()), listed);
  for (const int id : idle) {
    EXPECT_EQ(fleet.vm(id).state, VmInstance::State::kIdle);
  }
  // Unknown pools answer empty, not throw.
  const PoolKey unused{perf::InstanceFamily::kComputeOptimized, 1};
  EXPECT_TRUE(fleet.idle_set(unused).empty());
  EXPECT_EQ(fleet.alive_count(unused), 0);
}

}  // namespace
}  // namespace edacloud::sched
