// The acceptance gate of the multi-threaded stage engines: an instrumented
// end-to-end flow must produce bit-identical output — every QoR number and
// every perf-counter total — at threads=1 and threads=8, on every design in
// the characterization set. If a stage's parallelization leaks scheduling
// order into its results, this is the test that catches it.

#include <gtest/gtest.h>

#include "core/flow.hpp"
#include "util/thread_pool.hpp"
#include "workloads/registry.hpp"

namespace edacloud::core {
namespace {

void expect_counts_equal(const perf::OpCounts& a, const perf::OpCounts& b,
                         const std::string& where) {
  EXPECT_EQ(a.int_ops, b.int_ops) << where;
  EXPECT_EQ(a.fp_ops, b.fp_ops) << where;
  EXPECT_EQ(a.avx_ops, b.avx_ops) << where;
  EXPECT_EQ(a.loads, b.loads) << where;
  EXPECT_EQ(a.stores, b.stores) << where;
  EXPECT_EQ(a.branches, b.branches) << where;
  EXPECT_EQ(a.branch_misses, b.branch_misses) << where;
  EXPECT_EQ(a.l1_accesses, b.l1_accesses) << where;
  EXPECT_EQ(a.l1_misses, b.l1_misses) << where;
  EXPECT_EQ(a.llc_accesses, b.llc_accesses) << where;
  EXPECT_EQ(a.llc_misses, b.llc_misses) << where;
}

TEST(FlowDeterminismTest, EveryDesignBitIdenticalAtOneAndEightThreads) {
  const nl::CellLibrary library = nl::make_generic_14nm_library();
  const std::vector<perf::VmConfig> configs = {
      perf::make_vm(perf::InstanceFamily::kGeneralPurpose, 4)};

  for (const workloads::NamedDesign& named :
       workloads::characterization_designs()) {
    SCOPED_TRACE(named.name);
    const nl::Aig design = workloads::generate(named.spec);

    FlowOptions options;
    options.threads = 1;
    const FlowResult serial = EdaFlow(library, options).run(design, configs);
    options.threads = 8;
    const FlowResult wide = EdaFlow(library, options).run(design, configs);

    // QoR, stage by stage.
    EXPECT_EQ(serial.synthesis.mapped.cell_count,
              wide.synthesis.mapped.cell_count);
    EXPECT_EQ(serial.placement.hpwl_um, wide.placement.hpwl_um);
    EXPECT_EQ(serial.routing.routed_count, wide.routing.routed_count);
    EXPECT_EQ(serial.routing.wirelength_gedges,
              wide.routing.wirelength_gedges);
    EXPECT_EQ(serial.routing.overflowed_edges, wide.routing.overflowed_edges);
    EXPECT_EQ(serial.routing.total_expansions, wide.routing.total_expansions);
    EXPECT_EQ(serial.timing.critical_path_ps, wide.timing.critical_path_ps);
    EXPECT_EQ(serial.timing.worst_slack_ps, wide.timing.worst_slack_ps);
    EXPECT_EQ(serial.timing.arrival_ps, wide.timing.arrival_ps);
    EXPECT_EQ(serial.timing.leakage_power_nw, wide.timing.leakage_power_nw);
    EXPECT_EQ(serial.timing.dynamic_power_uw, wide.timing.dynamic_power_uw);

    // Perf-counter totals for every stage, not just the parallel ones —
    // the serial stages assert the instrumentation path itself is stable.
    for (int j = 0; j < kJobCount; ++j) {
      const auto job = static_cast<JobKind>(j);
      const std::array<const perf::JobProfile*, kJobCount> serial_profiles = {
          &serial.synthesis.profile, &serial.placement.profile,
          &serial.routing.profile, &serial.timing.profile};
      const std::array<const perf::JobProfile*, kJobCount> wide_profiles = {
          &wide.synthesis.profile, &wide.placement.profile,
          &wide.routing.profile, &wide.timing.profile};
      ASSERT_EQ(serial_profiles[j]->counts.size(), 1u) << job_name(job);
      ASSERT_EQ(wide_profiles[j]->counts.size(), 1u) << job_name(job);
      expect_counts_equal(serial_profiles[j]->counts[0],
                          wide_profiles[j]->counts[0], job_name(job));
    }
  }
  util::set_global_thread_count(1);
}

}  // namespace
}  // namespace edacloud::core
