#include <gtest/gtest.h>

#include "cloud/mckp.hpp"
#include "cloud/savings.hpp"
#include "util/rng.hpp"

namespace edacloud::cloud {
namespace {

std::vector<MckpStage> simple_instance() {
  // Two stages, two options each:
  //   stage A: slow-cheap (100 s, $1) / fast-pricey (40 s, $3)
  //   stage B: slow-cheap (200 s, $2) / fast-pricey (80 s, $5)
  std::vector<MckpStage> stages(2);
  stages[0].name = "A";
  stages[0].items = {{100, 1.0, "a1"}, {40, 3.0, "a2"}};
  stages[1].name = "B";
  stages[1].items = {{200, 2.0, "b1"}, {80, 5.0, "b2"}};
  return stages;
}

TEST(MckpTest, RelaxedDeadlinePicksCheapest) {
  const auto selection = solve_mckp_dp(simple_instance(), 1000.0);
  ASSERT_TRUE(selection.feasible);
  EXPECT_EQ(selection.choice, (std::vector<int>{0, 0}));
  EXPECT_DOUBLE_EQ(selection.total_cost_usd, 3.0);
}

TEST(MckpTest, TightDeadlineForcesUpgrade) {
  // 240 allows (40, 200) or (100, 80) but not (100, 200).
  const auto selection = solve_mckp_dp(simple_instance(), 240.0);
  ASSERT_TRUE(selection.feasible);
  EXPECT_DOUBLE_EQ(selection.total_cost_usd, 5.0);  // (40,$3)+(200,$2)
  EXPECT_EQ(selection.choice, (std::vector<int>{1, 0}));
}

TEST(MckpTest, InfeasibleDeadlineReturnsNa) {
  const auto selection = solve_mckp_dp(simple_instance(), 100.0);
  EXPECT_FALSE(selection.feasible);
  EXPECT_TRUE(selection.choice.empty());
}

TEST(MckpTest, ExactlyFeasibleBoundary) {
  // Fastest total = 120 s.
  const auto selection = solve_mckp_dp(simple_instance(), 120.0);
  ASSERT_TRUE(selection.feasible);
  EXPECT_DOUBLE_EQ(selection.total_time_seconds, 120.0);
}

TEST(MckpTest, EmptyStagesAreFeasible) {
  const auto selection = solve_mckp_dp({}, 10.0);
  EXPECT_TRUE(selection.feasible);
  EXPECT_DOUBLE_EQ(selection.total_cost_usd, 0.0);
}

TEST(MckpTest, StageWithoutItemsThrows) {
  std::vector<MckpStage> stages(1);
  EXPECT_THROW(solve_mckp_dp(stages, 10.0), std::invalid_argument);
}

TEST(MckpTest, NegativeDeadlineInfeasible) {
  EXPECT_FALSE(solve_mckp_dp(simple_instance(), -5.0).feasible);
}

TEST(MckpTest, MaxInverseCostObjectivePrefersCheapItems) {
  const auto selection = solve_mckp_dp(simple_instance(), 1000.0,
                                       Objective::kMaxInverseCost);
  ASSERT_TRUE(selection.feasible);
  // 1/1 + 1/2 beats any combination with pricier machines.
  EXPECT_EQ(selection.choice, (std::vector<int>{0, 0}));
}

TEST(MckpTest, FixedChoiceBaselines) {
  const auto stages = simple_instance();
  const auto under = fixed_choice(stages, 0);
  EXPECT_DOUBLE_EQ(under.total_time_seconds, 300.0);
  EXPECT_DOUBLE_EQ(under.total_cost_usd, 3.0);
  const auto over = fixed_choice(stages, 1);
  EXPECT_DOUBLE_EQ(over.total_time_seconds, 120.0);
  EXPECT_DOUBLE_EQ(over.total_cost_usd, 8.0);
}

TEST(MckpTest, FastestCompletion) {
  EXPECT_DOUBLE_EQ(fastest_completion_seconds(simple_instance()), 120.0);
}

TEST(MckpTest, CostMonotoneInDeadline) {
  const auto stages = simple_instance();
  double previous = 0.0;
  for (double deadline : {1000.0, 400.0, 280.0, 240.0, 180.0, 120.0}) {
    const auto selection = solve_mckp_dp(stages, deadline);
    ASSERT_TRUE(selection.feasible) << deadline;
    EXPECT_GE(selection.total_cost_usd, previous);
    previous = selection.total_cost_usd;
  }
}

// Property sweep: DP equals brute force on random instances for both
// objectives, across deadline regimes.
class MckpRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(MckpRandomTest, DpMatchesBruteForce) {
  util::Rng rng(GetParam());
  std::vector<MckpStage> stages(3 + rng.next_below(2));
  for (auto& stage : stages) {
    const int items = 2 + static_cast<int>(rng.next_below(3));
    for (int j = 0; j < items; ++j) {
      MckpItem item;
      item.time_seconds = rng.next_double(10.0, 500.0);
      item.cost_usd = rng.next_double(0.01, 2.0);
      stage.items.push_back(item);
    }
  }
  const double fastest = fastest_completion_seconds(stages);
  const double slowest = fixed_choice(stages, 0).total_time_seconds +
                         fixed_choice(stages, 100).total_time_seconds;
  for (double factor : {0.8, 1.0, 1.3, 2.0}) {
    const double deadline = fastest * factor + 2.0;
    (void)slowest;
    for (auto objective :
         {Objective::kMinTotalCost, Objective::kMaxInverseCost}) {
      const auto dp = solve_mckp_dp(stages, deadline, objective);
      const auto bf = solve_mckp_brute_force(stages, deadline, objective);
      ASSERT_EQ(dp.feasible, bf.feasible)
          << "deadline " << deadline;
      if (dp.feasible) {
        EXPECT_NEAR(dp.objective_value, bf.objective_value, 1e-9);
        if (objective == Objective::kMinTotalCost) {
          EXPECT_NEAR(dp.total_cost_usd, bf.total_cost_usd, 1e-9);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MckpRandomTest,
                         ::testing::Range(100, 120));

TEST(SavingsTest, OptimizerNeverWorseThanBaselines) {
  const auto stages = simple_instance();
  for (double deadline : {120.0, 240.0, 300.0, 1000.0}) {
    const SavingsReport report = analyze_savings(stages, deadline);
    ASSERT_TRUE(report.feasible);
    EXPECT_LE(report.optimized_cost_usd,
              report.over_provision_cost_usd + 1e-9);
    EXPECT_LE(report.optimized_time_seconds, deadline + 1.0);
    if (report.under_provision_time_seconds <= deadline) {
      EXPECT_LE(report.optimized_cost_usd,
                report.under_provision_cost_usd + 1e-9);
    }
  }
}

TEST(SavingsTest, InfeasibleReportNotFeasible) {
  const SavingsReport report = analyze_savings(simple_instance(), 50.0);
  EXPECT_FALSE(report.feasible);
}

TEST(SavingsTest, SavingFractionsComputed) {
  const SavingsReport report = analyze_savings(simple_instance(), 1000.0);
  ASSERT_TRUE(report.feasible);
  EXPECT_NEAR(report.saving_vs_over, 1.0 - 3.0 / 8.0, 1e-9);
  EXPECT_NEAR(report.saving_vs_under, 0.0, 1e-9);
}

}  // namespace
}  // namespace edacloud::cloud
