#include <gtest/gtest.h>

#include "core/batch.hpp"

namespace edacloud::core {
namespace {

BatchDesign make_design(const std::string& name, double scale) {
  BatchDesign design;
  design.name = name;
  design.ladders[static_cast<int>(JobKind::kSynthesis)] = {
      6000 * scale, 4300 * scale, 3400 * scale, 3300 * scale};
  design.ladders[static_cast<int>(JobKind::kPlacement)] = {
      1200 * scale, 900 * scale, 640 * scale, 520 * scale};
  design.ladders[static_cast<int>(JobKind::kRouting)] = {
      10000 * scale, 5500 * scale, 2900 * scale, 1700 * scale};
  design.ladders[static_cast<int>(JobKind::kSta)] = {
      180 * scale, 120 * scale, 90 * scale, 80 * scale};
  return design;
}

TEST(BatchPlannerTest, StagesConcatenatePerDesign) {
  BatchPlanner planner;
  const auto stages =
      planner.build_stages({make_design("a", 1.0), make_design("b", 0.5)});
  ASSERT_EQ(stages.size(), 8u);
  EXPECT_EQ(stages[0].name, "a:synthesis");
  EXPECT_EQ(stages[7].name, "b:sta");
}

TEST(BatchPlannerTest, JointPlanMeetsDeadline) {
  BatchPlanner planner;
  const std::vector<BatchDesign> designs = {make_design("a", 1.0),
                                            make_design("b", 0.4)};
  const auto stages = planner.build_stages(designs);
  const double fastest = cloud::fastest_completion_seconds(stages);
  const auto plan = planner.plan(designs, fastest * 1.3);
  ASSERT_TRUE(plan.feasible);
  EXPECT_EQ(plan.entries.size(), 8u);
  EXPECT_LE(plan.total_runtime_seconds, fastest * 1.3 + 1.0);
  // Entries carry the right design labels in flow order.
  EXPECT_EQ(plan.entries[0].design, "a");
  EXPECT_EQ(plan.entries[4].design, "b");
  EXPECT_EQ(plan.entries[4].job, JobKind::kSynthesis);
}

TEST(BatchPlannerTest, InfeasibleWhenDeadlineBelowFastest) {
  BatchPlanner planner;
  const std::vector<BatchDesign> designs = {make_design("a", 1.0)};
  const auto stages = planner.build_stages(designs);
  const double fastest = cloud::fastest_completion_seconds(stages);
  EXPECT_FALSE(planner.plan(designs, fastest * 0.9).feasible);
}

TEST(BatchPlannerTest, SlackFlowsToTheExpensiveDesign) {
  // With a shared deadline, the optimizer should spend upgrades where the
  // cost per saved second is lowest, not uniformly.
  BatchPlanner planner;
  const std::vector<BatchDesign> designs = {make_design("big", 1.0),
                                            make_design("small", 0.1)};
  const auto stages = planner.build_stages(designs);
  const double fastest = cloud::fastest_completion_seconds(stages);
  const auto plan = planner.plan(designs, fastest * 1.6);
  ASSERT_TRUE(plan.feasible);
  int big_vcpus = 0, small_vcpus = 0;
  for (const auto& entry : plan.entries) {
    if (entry.design == "big") big_vcpus += entry.vcpus;
    if (entry.design == "small") small_vcpus += entry.vcpus;
  }
  // The small design can afford to run slow; the big one absorbs upgrades.
  EXPECT_LE(small_vcpus, big_vcpus);
}

TEST(BatchPlannerTest, SavingsAgainstNaiveBatch) {
  BatchPlanner planner;
  const std::vector<BatchDesign> designs = {make_design("a", 1.0),
                                            make_design("b", 0.7)};
  const auto stages = planner.build_stages(designs);
  const double fastest = cloud::fastest_completion_seconds(stages);
  const auto report = planner.savings(designs, fastest * 1.4);
  ASSERT_TRUE(report.feasible);
  EXPECT_LE(report.optimized_cost_usd,
            report.over_provision_cost_usd + 1e-9);
  EXPECT_GT(report.saving_vs_over, 0.0);
}

}  // namespace
}  // namespace edacloud::core
