#include <gtest/gtest.h>

#include "nl/aig.hpp"
#include "util/rng.hpp"

namespace edacloud::nl {
namespace {

TEST(LiteralTest, EncodeDecode) {
  const Literal lit = make_literal(5, true);
  EXPECT_EQ(literal_node(lit), 5u);
  EXPECT_TRUE(literal_complemented(lit));
  EXPECT_EQ(literal_not(literal_not(lit)), lit);
  EXPECT_EQ(kLitTrue, literal_not(kLitFalse));
}

TEST(AigTest, ConstantFolding) {
  Aig aig;
  const Literal a = aig.add_input();
  EXPECT_EQ(aig.and_of(a, kLitFalse), kLitFalse);
  EXPECT_EQ(aig.and_of(kLitFalse, a), kLitFalse);
  EXPECT_EQ(aig.and_of(a, kLitTrue), a);
  EXPECT_EQ(aig.and_of(kLitTrue, a), a);
  EXPECT_EQ(aig.and_of(a, a), a);
  EXPECT_EQ(aig.and_of(a, literal_not(a)), kLitFalse);
  EXPECT_EQ(aig.and_count(), 0u);
}

TEST(AigTest, StructuralHashingDeduplicates) {
  Aig aig;
  const Literal a = aig.add_input();
  const Literal b = aig.add_input();
  const Literal x = aig.and_of(a, b);
  const Literal y = aig.and_of(b, a);  // commuted
  EXPECT_EQ(x, y);
  EXPECT_EQ(aig.and_count(), 1u);
}

TEST(AigTest, InputsMustPrecedeAnds) {
  Aig aig;
  const Literal a = aig.add_input();
  const Literal b = aig.add_input();
  aig.and_of(a, b);
  EXPECT_THROW(aig.add_input(), std::logic_error);
}

TEST(AigTest, XorTruthTable) {
  Aig aig;
  const Literal a = aig.add_input();
  const Literal b = aig.add_input();
  aig.add_output(aig.xor_of(a, b));
  const auto out = aig.simulate({0xAAAAAAAAAAAAAAAAULL,
                                 0xCCCCCCCCCCCCCCCCULL});
  EXPECT_EQ(out[0], 0xAAAAAAAAAAAAAAAAULL ^ 0xCCCCCCCCCCCCCCCCULL);
}

TEST(AigTest, MuxAndMajTruthTables) {
  Aig aig;
  const Literal s = aig.add_input();
  const Literal t = aig.add_input();
  const Literal f = aig.add_input();
  aig.add_output(aig.mux_of(s, t, f));
  aig.add_output(aig.maj_of(s, t, f));
  const std::uint64_t vs = 0xAAAAAAAAAAAAAAAAULL;
  const std::uint64_t vt = 0xCCCCCCCCCCCCCCCCULL;
  const std::uint64_t vf = 0xF0F0F0F0F0F0F0F0ULL;
  const auto out = aig.simulate({vs, vt, vf});
  EXPECT_EQ(out[0], (vs & vt) | (~vs & vf));
  EXPECT_EQ(out[1], (vs & vt) | (vs & vf) | (vt & vf));
}

TEST(AigTest, DepthOfChain) {
  Aig aig;
  Literal acc = aig.add_input();
  std::vector<Literal> inputs;
  for (int i = 0; i < 7; ++i) inputs.push_back(aig.add_input());
  for (Literal input : inputs) acc = aig.and_of(acc, input);
  aig.add_output(acc);
  EXPECT_EQ(aig.depth(), 7u);
}

TEST(AigTest, FanoutCountsIncludeOutputs) {
  Aig aig;
  const Literal a = aig.add_input();
  const Literal b = aig.add_input();
  const Literal x = aig.and_of(a, b);
  aig.add_output(x);
  aig.add_output(literal_not(x));
  const auto fanouts = aig.fanout_counts();
  EXPECT_EQ(fanouts[literal_node(x)], 2u);
  EXPECT_EQ(fanouts[literal_node(a)], 1u);
}

TEST(AigTest, LiveNodesExcludesDeadCone) {
  Aig aig;
  const Literal a = aig.add_input();
  const Literal b = aig.add_input();
  const Literal used = aig.and_of(a, b);
  const Literal dead = aig.and_of(literal_not(a), b);
  aig.add_output(used);
  const auto alive = aig.live_nodes();
  EXPECT_TRUE(alive[literal_node(used)]);
  EXPECT_FALSE(alive[literal_node(dead)]);
}

TEST(AigTest, ForwardCsrPreservesDirection) {
  Aig aig;
  const Literal a = aig.add_input();
  const Literal b = aig.add_input();
  const Literal x = aig.and_of(a, b);
  aig.add_output(x);
  const Csr csr = aig.build_forward_csr();
  EXPECT_EQ(csr.edge_count(), 2u);
  EXPECT_EQ(csr.degree(literal_node(a)), 1u);
  EXPECT_EQ(csr.degree(literal_node(x)), 0u);
}

TEST(AigTest, SimulateRejectsWrongArity) {
  Aig aig;
  aig.add_input();
  EXPECT_THROW(aig.simulate({}), std::invalid_argument);
}

TEST(AigTest, DeMorganEquivalence) {
  // !(a & b) == !a | !b on random patterns.
  Aig aig;
  const Literal a = aig.add_input();
  const Literal b = aig.add_input();
  aig.add_output(literal_not(aig.and_of(a, b)));
  aig.add_output(aig.or_of(literal_not(a), literal_not(b)));
  util::Rng rng(3);
  const auto out = aig.simulate({rng(), rng()});
  EXPECT_EQ(out[0], out[1]);
}

}  // namespace
}  // namespace edacloud::nl
