#include <gtest/gtest.h>

#include "nl/netlist.hpp"
#include "nl/netlist_sim.hpp"

namespace edacloud::nl {
namespace {

class NetlistTest : public ::testing::Test {
 protected:
  CellLibrary lib_ = make_generic_14nm_library();
};

TEST_F(NetlistTest, BuildSmallNetlist) {
  Netlist n("t", &lib_);
  const NodeId a = n.add_input();
  const NodeId b = n.add_input();
  const NodeId g = n.add_cell(*lib_.find("NAND2_X1"), {a, b});
  n.add_output(g);
  EXPECT_EQ(n.node_count(), 4u);
  EXPECT_EQ(n.inputs().size(), 2u);
  EXPECT_EQ(n.outputs().size(), 1u);
  EXPECT_TRUE(n.validate());
}

TEST_F(NetlistTest, ArityMismatchThrows) {
  Netlist n("t", &lib_);
  const NodeId a = n.add_input();
  EXPECT_THROW(n.add_cell(*lib_.find("NAND2_X1"), {a}),
               std::invalid_argument);
}

TEST_F(NetlistTest, DanglingFaninThrows) {
  Netlist n("t", &lib_);
  EXPECT_THROW(n.add_cell(*lib_.find("INV_X1"), {42}), std::out_of_range);
}

TEST_F(NetlistTest, OutputOfMissingNodeThrows) {
  Netlist n("t", &lib_);
  EXPECT_THROW(n.add_output(3), std::out_of_range);
}

TEST_F(NetlistTest, StatsCountInstancesAndArea) {
  Netlist n("t", &lib_);
  const NodeId a = n.add_input();
  const NodeId inv = n.add_cell(*lib_.find("INV_X1"), {a});
  const NodeId buf = n.add_cell(*lib_.find("BUF_X1"), {inv});
  n.add_output(buf);
  const auto stats = n.stats();
  EXPECT_EQ(stats.instance_count, 2u);
  EXPECT_EQ(stats.input_count, 1u);
  EXPECT_EQ(stats.output_count, 1u);
  EXPECT_EQ(stats.logic_depth, 3u);  // a -> inv -> buf -> PO
  EXPECT_NEAR(stats.total_area_um2,
              lib_.cell(*lib_.find("INV_X1")).area_um2 +
                  lib_.cell(*lib_.find("BUF_X1")).area_um2,
              1e-12);
}

TEST_F(NetlistTest, FanoutCounts) {
  Netlist n("t", &lib_);
  const NodeId a = n.add_input();
  const NodeId i1 = n.add_cell(*lib_.find("INV_X1"), {a});
  const NodeId i2 = n.add_cell(*lib_.find("INV_X1"), {a});
  n.add_output(i1);
  n.add_output(i2);
  const auto fanouts = n.fanout_counts();
  EXPECT_EQ(fanouts[a], 2u);
  EXPECT_EQ(fanouts[i1], 1u);
}

TEST_F(NetlistTest, TopologicalOrderRespectsEdges) {
  Netlist n("t", &lib_);
  const NodeId a = n.add_input();
  const NodeId g1 = n.add_cell(*lib_.find("INV_X1"), {a});
  const NodeId g2 = n.add_cell(*lib_.find("INV_X1"), {g1});
  n.add_output(g2);
  const auto order = n.topological_order();
  ASSERT_EQ(order.size(), n.node_count());
  std::vector<std::size_t> pos(n.node_count());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[a], pos[g1]);
  EXPECT_LT(pos[g1], pos[g2]);
}

TEST_F(NetlistTest, SimulateInverterChain) {
  Netlist n("t", &lib_);
  const NodeId a = n.add_input();
  const NodeId i1 = n.add_cell(*lib_.find("INV_X1"), {a});
  const NodeId i2 = n.add_cell(*lib_.find("INV_X1"), {i1});
  n.add_output(i1);
  n.add_output(i2);
  const auto out = simulate(n, {0xF0F0F0F0F0F0F0F0ULL});
  EXPECT_EQ(out[0], ~0xF0F0F0F0F0F0F0F0ULL);
  EXPECT_EQ(out[1], 0xF0F0F0F0F0F0F0F0ULL);
}

TEST_F(NetlistTest, SimulateAllCellFunctions) {
  Netlist n("t", &lib_);
  const NodeId a = n.add_input();
  const NodeId b = n.add_input();
  const NodeId c = n.add_input();
  const std::uint64_t va = 0xAAAAAAAAAAAAAAAAULL;
  const std::uint64_t vb = 0xCCCCCCCCCCCCCCCCULL;
  const std::uint64_t vc = 0xF0F0F0F0F0F0F0F0ULL;

  struct Case {
    const char* cell;
    std::vector<NodeId> pins;
    std::uint64_t expected;
  };
  const std::vector<Case> cases = {
      {"AND2_X1", {a, b}, va & vb},
      {"OR2_X1", {a, b}, va | vb},
      {"NAND2_X1", {a, b}, ~(va & vb)},
      {"NOR2_X1", {a, b}, ~(va | vb)},
      {"XOR2_X1", {a, b}, va ^ vb},
      {"XNOR2_X1", {a, b}, ~(va ^ vb)},
      {"AOI21_X1", {a, b, c}, ~((va & vb) | vc)},
      {"OAI21_X1", {a, b, c}, ~((va | vb) & vc)},
      {"MUX2_X1", {a, b, c}, (va & vb) | (~va & vc)},
      {"MAJ3_X1", {a, b, c}, (va & vb) | (va & vc) | (vb & vc)},
  };
  std::vector<std::uint64_t> expected;
  for (const Case& cs : cases) {
    n.add_output(n.add_cell(*lib_.find(cs.cell), cs.pins));
    expected.push_back(cs.expected);
  }
  const auto out = simulate(n, {va, vb, vc});
  ASSERT_EQ(out.size(), expected.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], expected[i]) << cases[i].cell;
  }
}

TEST_F(NetlistTest, SimulateRejectsWrongInputCount) {
  Netlist n("t", &lib_);
  n.add_input();
  EXPECT_THROW(simulate(n, {}), std::invalid_argument);
}

TEST_F(NetlistTest, ValidateEmptyNetlist) {
  Netlist n("t", &lib_);
  EXPECT_TRUE(n.validate());
}

TEST_F(NetlistTest, StarGraphEdgesMatchFanins) {
  Netlist n("t", &lib_);
  const NodeId a = n.add_input();
  const NodeId b = n.add_input();
  const NodeId g = n.add_cell(*lib_.find("AND2_X1"), {a, b});
  n.add_output(g);
  const Csr csr = n.build_fanout_csr();
  EXPECT_EQ(csr.edge_count(), 3u);  // a->g, b->g, g->PO
  EXPECT_EQ(csr.degree(a), 1u);
  EXPECT_EQ(csr.degree(g), 1u);
}

}  // namespace
}  // namespace edacloud::nl
