#include <gtest/gtest.h>

#include "synth/cuts.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

namespace edacloud::synth {
namespace {

using nl::Aig;
using nl::Literal;
using nl::literal_not;

TEST(CutSetTest, PushDeduplicatesLeafSets) {
  CutSet set;
  Cut cut;
  cut.size = 2;
  cut.leaves[0] = 1;
  cut.leaves[1] = 2;
  cut.table = 0x8888;
  set.push(cut);
  set.push(cut);
  EXPECT_EQ(set.count, 1);
}

TEST(CutSetTest, FullSetPrefersSmallCuts) {
  CutSet set;
  for (int i = 0; i < CutSet::kCapacity; ++i) {
    Cut cut;
    cut.size = 4;
    for (int l = 0; l < 4; ++l) {
      cut.leaves[l] = static_cast<nl::AigNode>(10 * i + l + 1);
    }
    set.push(cut);
  }
  Cut small;
  small.size = 2;
  small.leaves[0] = 500;
  small.leaves[1] = 501;
  set.push(small);
  bool found = false;
  for (int i = 0; i < set.count; ++i) {
    if (set[i].size == 2) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ExpandTableTest, IdentityWhenLeafSetsMatch) {
  std::array<nl::AigNode, 4> leaves = {1, 2, 0, 0};
  EXPECT_EQ(expand_table(0x8888, leaves, 2, leaves, 2), 0x8888);
}

TEST(ExpandTableTest, InsertsNewVariable) {
  // f(x0) = x0 over leaves {5}; expand to leaves {3, 5}: x becomes var 1.
  std::array<nl::AigNode, 4> from = {5, 0, 0, 0};
  std::array<nl::AigNode, 4> to = {3, 5, 0, 0};
  EXPECT_EQ(expand_table(kVarMask[0], from, 1, to, 2), kVarMask[1]);
}

TEST(MergeCutsTest, UnionAndTruthTable) {
  Cut a;
  a.size = 1;
  a.leaves[0] = 1;
  a.table = kVarMask[0];
  Cut b;
  b.size = 1;
  b.leaves[0] = 2;
  b.table = kVarMask[0];
  Cut out;
  ASSERT_TRUE(merge_cuts(a, false, b, false, out));
  EXPECT_EQ(out.size, 2);
  EXPECT_EQ(out.leaves[0], 1u);
  EXPECT_EQ(out.leaves[1], 2u);
  EXPECT_EQ(out.table, kVarMask[0] & kVarMask[1]);
}

TEST(MergeCutsTest, ComplementsApplied) {
  Cut a;
  a.size = 1;
  a.leaves[0] = 1;
  a.table = kVarMask[0];
  Cut b = a;
  Cut out;
  ASSERT_TRUE(merge_cuts(a, true, b, false, out));
  // !x & x == 0.
  EXPECT_EQ(out.table, 0);
}

TEST(MergeCutsTest, OverflowRejected) {
  Cut a;
  a.size = 4;
  a.leaves = {1, 2, 3, 4};
  Cut b;
  b.size = 2;
  b.leaves[0] = 9;
  b.leaves[1] = 10;
  Cut out;
  EXPECT_FALSE(merge_cuts(a, false, b, false, out));
}

/// Verify cut truth tables against simulation: for every cut of every node,
/// evaluating the cut function on the leaves must reproduce the node value.
void check_cut_tables(const Aig& aig) {
  const auto cuts = enumerate_cuts(aig);
  util::Rng rng(55);
  std::vector<std::uint64_t> words(aig.input_count());
  for (auto& w : words) w = rng();

  // Node values via direct simulation of all nodes.
  std::vector<std::uint64_t> value(aig.node_count(), 0);
  for (std::size_t i = 0; i < aig.inputs().size(); ++i) {
    value[aig.inputs()[i]] = words[i];
  }
  auto lit_value = [&value](Literal lit) {
    const std::uint64_t v = value[nl::literal_node(lit)];
    return nl::literal_complemented(lit) ? ~v : v;
  };
  for (nl::AigNode node = 0; node < aig.node_count(); ++node) {
    if (!aig.is_and(node)) continue;
    value[node] = lit_value(aig.fanin0(node)) & lit_value(aig.fanin1(node));
  }

  for (nl::AigNode node = 0; node < aig.node_count(); ++node) {
    if (!aig.is_and(node)) continue;
    const CutSet& set = cuts[node];
    ASSERT_GT(set.count, 0);
    for (int c = 0; c < set.count; ++c) {
      const Cut& cut = set[c];
      // Evaluate the 16-bit table bit-parallel over leaf values.
      std::uint64_t result = 0;
      for (int bit = 0; bit < 64; ++bit) {
        int row = 0;
        for (int l = 0; l < cut.size; ++l) {
          if ((value[cut.leaves[l]] >> bit) & 1ULL) row |= 1 << l;
        }
        if ((cut.table >> row) & 1) result |= 1ULL << bit;
      }
      EXPECT_EQ(result, value[node])
          << "node " << node << " cut " << c << " size "
          << static_cast<int>(cut.size);
    }
  }
}

TEST(EnumerateCutsTest, TablesMatchSimulationOnAdder) {
  check_cut_tables(workloads::gen_adder(6));
}

TEST(EnumerateCutsTest, TablesMatchSimulationOnAlu) {
  check_cut_tables(workloads::gen_alu(4));
}

TEST(EnumerateCutsTest, TablesMatchSimulationOnRandomLogic) {
  check_cut_tables(workloads::gen_cavlc(6, 3));
}

TEST(EnumerateCutsTest, EveryNodeHasTrivialCut) {
  const Aig aig = workloads::gen_parity(8);
  const auto cuts = enumerate_cuts(aig);
  for (nl::AigNode node = 0; node < aig.node_count(); ++node) {
    if (!aig.is_and(node)) continue;
    bool trivial_found = false;
    for (int c = 0; c < cuts[node].count; ++c) {
      if (cuts[node][c].size == 1 && cuts[node][c].leaves[0] == node) {
        trivial_found = true;
      }
    }
    EXPECT_TRUE(trivial_found) << node;
  }
}

}  // namespace
}  // namespace edacloud::synth
