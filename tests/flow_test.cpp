#include <gtest/gtest.h>

#include "core/characterize.hpp"
#include "core/flow.hpp"
#include "workloads/generators.hpp"

namespace edacloud::core {
namespace {

const nl::CellLibrary& library() {
  static const nl::CellLibrary lib = nl::make_generic_14nm_library();
  return lib;
}

std::vector<perf::VmConfig> gp_ladder() {
  const auto ladder = perf::vm_ladder(perf::InstanceFamily::kGeneralPurpose);
  return {ladder.begin(), ladder.end()};
}

TEST(FlowTest, RunsAllFourStages) {
  EdaFlow flow(library());
  const nl::Aig design = workloads::gen_alu(8);
  const FlowResult result = flow.run(design, gp_ladder());

  EXPECT_GT(result.synthesis.mapped.cell_count, 0u);
  EXPECT_TRUE(result.placement.placement.valid_for(
      result.synthesis.mapped.netlist));
  EXPECT_GT(result.routing.routed_count, 0u);
  EXPECT_GT(result.timing.critical_path_ps, 0.0);

  for (JobKind job : kAllJobs) {
    const auto& measurement = result.measurement(job);
    ASSERT_EQ(measurement.runtime_seconds.size(), 4u) << job_name(job);
    for (double runtime : measurement.runtime_seconds) {
      EXPECT_GT(runtime, 0.0);
    }
  }
}

TEST(FlowTest, UninstrumentedRunSkipsMeasurements) {
  EdaFlow flow(library());
  const FlowResult result = flow.run(workloads::gen_adder(8), {});
  EXPECT_GT(result.synthesis.mapped.cell_count, 0u);
  EXPECT_TRUE(result.measurement(JobKind::kSynthesis).runtime_seconds.empty());
}

TEST(FlowTest, CalibrationScalesRuntimesLinearly) {
  FlowOptions options;
  options.calibration.time_scale = {1.0, 1.0, 1.0, 1.0};
  EdaFlow base(library(), options);
  const auto base_result = base.run(workloads::gen_adder(12), gp_ladder());

  options.calibration.time_scale = {10.0, 10.0, 10.0, 10.0};
  EdaFlow scaled(library(), options);
  const auto scaled_result =
      scaled.run(workloads::gen_adder(12), gp_ladder());

  for (JobKind job : kAllJobs) {
    const double a =
        base_result.measurement(job).runtime_seconds[0];
    const double b =
        scaled_result.measurement(job).runtime_seconds[0];
    EXPECT_NEAR(b, 10.0 * a, 1e-6 * b) << job_name(job);
  }
}

TEST(FlowTest, JobNamesAreStable) {
  EXPECT_EQ(job_name(JobKind::kSynthesis), "synthesis");
  EXPECT_EQ(job_name(JobKind::kPlacement), "placement");
  EXPECT_EQ(job_name(JobKind::kRouting), "routing");
  EXPECT_EQ(job_name(JobKind::kSta), "sta");
}

TEST(CharacterizeTest, RecommendationsMatchPaper) {
  EXPECT_EQ(recommended_family(JobKind::kSynthesis),
            perf::InstanceFamily::kGeneralPurpose);
  EXPECT_EQ(recommended_family(JobKind::kSta),
            perf::InstanceFamily::kGeneralPurpose);
  EXPECT_EQ(recommended_family(JobKind::kPlacement),
            perf::InstanceFamily::kMemoryOptimized);
  EXPECT_EQ(recommended_family(JobKind::kRouting),
            perf::InstanceFamily::kMemoryOptimized);
}

TEST(CharacterizeTest, ReportContainsBothFamilies) {
  Characterizer characterizer(library());
  const auto report =
      characterizer.characterize(workloads::gen_sparc_core(12, 3));
  EXPECT_EQ(report.rows.size(), 8u);  // 4 jobs x 2 families
  for (JobKind job : kAllJobs) {
    EXPECT_NE(report.find(job, perf::InstanceFamily::kGeneralPurpose),
              nullptr);
    EXPECT_NE(report.find(job, perf::InstanceFamily::kMemoryOptimized),
              nullptr);
  }
}

TEST(CharacterizeTest, Fig2ShapesHoldOnMediumDesign) {
  Characterizer characterizer(library());
  const auto report =
      characterizer.characterize(workloads::gen_sparc_core(24, 26));
  const auto family = perf::InstanceFamily::kGeneralPurpose;

  const auto* synthesis = report.find(JobKind::kSynthesis, family);
  const auto* placement = report.find(JobKind::kPlacement, family);
  const auto* routing = report.find(JobKind::kRouting, family);
  const auto* sta = report.find(JobKind::kSta, family);
  ASSERT_NE(synthesis, nullptr);
  ASSERT_NE(placement, nullptr);
  ASSERT_NE(routing, nullptr);
  ASSERT_NE(sta, nullptr);

  // (a) routing has the highest branch-miss rate.
  EXPECT_GT(routing->branch_miss_rate[0], synthesis->branch_miss_rate[0]);
  EXPECT_GT(routing->branch_miss_rate[0], placement->branch_miss_rate[0]);
  EXPECT_GT(routing->branch_miss_rate[0], sta->branch_miss_rate[0]);

  // (b) placement's cache-miss rate is highest and falls with vCPUs.
  EXPECT_GT(placement->llc_miss_rate[0], synthesis->llc_miss_rate[0]);
  EXPECT_GT(placement->llc_miss_rate[0], placement->llc_miss_rate[3]);

  // (c) placement has the largest AVX share, STA second.
  EXPECT_GT(placement->avx_fraction[0], sta->avx_fraction[0]);
  EXPECT_GT(sta->avx_fraction[0], synthesis->avx_fraction[0]);
  EXPECT_GT(sta->avx_fraction[0], routing->avx_fraction[0]);

  // (d) routing scales best at 8 vCPUs.
  EXPECT_GT(routing->speedup[3], synthesis->speedup[3]);
  EXPECT_GT(routing->speedup[3], placement->speedup[3]);
  EXPECT_GT(routing->speedup[3], sta->speedup[3]);
}

TEST(CharacterizeTest, RoutingScalingOrderedBySize) {
  Characterizer characterizer(library());
  const std::vector<workloads::NamedDesign> designs = {
      {"small", {"dynamic_node", 3, 1}},
      {"large", {"sparc_core", 16, 1}},
  };
  const auto points = characterizer.routing_scaling(designs);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_LE(points[0].instance_count, points[1].instance_count);
  // Larger design speeds up at least comparably at 8 vCPUs (Fig. 3).
  EXPECT_GE(points[1].speedup[3], points[0].speedup[3] * 0.8);
}

}  // namespace
}  // namespace edacloud::core
