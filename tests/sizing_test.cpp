#include <gtest/gtest.h>

#include "nl/netlist_sim.hpp"
#include "sta/sizing.hpp"
#include "synth/engine.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"

namespace edacloud::sta {
namespace {

const nl::CellLibrary& library() {
  static const nl::CellLibrary lib = nl::make_generic_14nm_library();
  return lib;
}

nl::Netlist synthesize(const nl::Aig& aig) {
  synth::SynthesisEngine engine(library());
  return engine.synthesize(aig, synth::default_recipe()).netlist;
}

TEST(SizingTest, ImprovesSlackUnderTightClock) {
  const nl::Netlist netlist = synthesize(workloads::gen_alu(8));
  StaEngine relaxed;
  const double critical = relaxed.run(netlist, nullptr, {}).critical_path_ps;

  StaOptions options;
  options.clock_period_ps = critical * 0.9;  // violating by construction
  StaEngine engine(options);

  const SizingResult result = size_gates(netlist, nullptr, engine);
  EXPECT_LT(result.slack_before_ps, 0.0);
  EXPECT_GT(result.slack_after_ps, result.slack_before_ps);
  EXPECT_GT(result.upsized_cells, 0);
  EXPECT_GE(result.area_after_um2, result.area_before_um2);
}

TEST(SizingTest, PreservesLogicFunction) {
  const nl::Netlist netlist = synthesize(workloads::gen_adder(8));
  StaOptions options;
  StaEngine relaxed;
  options.clock_period_ps =
      relaxed.run(netlist, nullptr, {}).critical_path_ps * 0.85;
  StaEngine engine(options);
  const SizingResult result = size_gates(netlist, nullptr, engine);

  util::Rng rng(5);
  std::vector<std::uint64_t> words(netlist.inputs().size());
  for (auto& w : words) w = rng();
  EXPECT_EQ(nl::simulate(netlist, words),
            nl::simulate(result.netlist, words));
}

TEST(SizingTest, NoOpWhenTimingAlreadyMet) {
  const nl::Netlist netlist = synthesize(workloads::gen_parity(16));
  StaEngine engine;  // auto period: always met
  const SizingResult result = size_gates(netlist, nullptr, engine);
  EXPECT_EQ(result.upsized_cells, 0);
  EXPECT_EQ(result.passes, 0);
  EXPECT_TRUE(result.met);
  EXPECT_DOUBLE_EQ(result.area_after_um2, result.area_before_um2);
}

TEST(SizingTest, StopsWhenNoUpgradeRemains) {
  const nl::Netlist netlist = synthesize(workloads::gen_comparator(8));
  StaOptions options;
  StaEngine relaxed;
  // Impossible clock: sizing must terminate gracefully without meeting it.
  options.clock_period_ps =
      relaxed.run(netlist, nullptr, {}).critical_path_ps * 0.01;
  options.slack_margin = 1.0;
  StaEngine engine(options);
  SizingOptions sizing;
  sizing.max_passes = 50;
  const SizingResult result = size_gates(netlist, nullptr, engine, sizing);
  EXPECT_FALSE(result.met);
  EXPECT_LE(result.passes, 50);
}

TEST(SizingTest, CellCountUnchanged) {
  const nl::Netlist netlist = synthesize(workloads::gen_alu(8));
  StaOptions options;
  StaEngine relaxed;
  options.clock_period_ps =
      relaxed.run(netlist, nullptr, {}).critical_path_ps * 0.9;
  StaEngine engine(options);
  const SizingResult result = size_gates(netlist, nullptr, engine);
  EXPECT_EQ(result.netlist.stats().instance_count,
            netlist.stats().instance_count);
}

}  // namespace
}  // namespace edacloud::sta
