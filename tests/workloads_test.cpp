#include <gtest/gtest.h>

#include <bit>

#include "util/rng.hpp"
#include "workloads/generators.hpp"
#include "workloads/registry.hpp"

namespace edacloud::workloads {
namespace {

using nl::Literal;

/// Extract lane `lane` of each output word into an integer (bit i of the
/// result = lane bit of output i).
std::uint64_t lane_value(const std::vector<std::uint64_t>& outputs,
                         std::size_t lane, int bits) {
  std::uint64_t value = 0;
  for (int i = 0; i < bits; ++i) {
    value |= ((outputs[static_cast<std::size_t>(i)] >> lane) & 1ULL) << i;
  }
  return value;
}

/// Pack scalar operand values into per-input lane words.
void pack_operand(std::vector<std::uint64_t>& words, int offset, int width,
                  std::uint64_t value, std::size_t lane) {
  for (int i = 0; i < width; ++i) {
    if ((value >> i) & 1ULL) {
      words[static_cast<std::size_t>(offset + i)] |= 1ULL << lane;
    }
  }
}

TEST(AdderTest, AddsCorrectly) {
  const int w = 8;
  const nl::Aig aig = gen_adder(w);
  ASSERT_EQ(aig.input_count(), static_cast<std::size_t>(2 * w + 1));
  std::vector<std::uint64_t> words(aig.input_count(), 0);
  util::Rng rng(1);
  std::vector<std::uint64_t> as(64), bs(64), cins(64);
  for (std::size_t lane = 0; lane < 64; ++lane) {
    as[lane] = rng.next_below(1 << w);
    bs[lane] = rng.next_below(1 << w);
    cins[lane] = rng.next_below(2);
    pack_operand(words, 0, w, as[lane], lane);
    pack_operand(words, w, w, bs[lane], lane);
    pack_operand(words, 2 * w, 1, cins[lane], lane);
  }
  const auto out = aig.simulate(words);
  for (std::size_t lane = 0; lane < 64; ++lane) {
    const std::uint64_t expected = as[lane] + bs[lane] + cins[lane];
    EXPECT_EQ(lane_value(out, lane, w + 1), expected) << "lane " << lane;
  }
}

TEST(MultiplierTest, MultipliesCorrectly) {
  const int w = 6;
  const nl::Aig aig = gen_multiplier(w);
  std::vector<std::uint64_t> words(aig.input_count(), 0);
  util::Rng rng(2);
  std::vector<std::uint64_t> as(64), bs(64);
  for (std::size_t lane = 0; lane < 64; ++lane) {
    as[lane] = rng.next_below(1 << w);
    bs[lane] = rng.next_below(1 << w);
    pack_operand(words, 0, w, as[lane], lane);
    pack_operand(words, w, w, bs[lane], lane);
  }
  const auto out = aig.simulate(words);
  for (std::size_t lane = 0; lane < 64; ++lane) {
    EXPECT_EQ(lane_value(out, lane, 2 * w), as[lane] * bs[lane]);
  }
}

TEST(ComparatorTest, FlagsCorrect) {
  const int w = 8;
  const nl::Aig aig = gen_comparator(w);
  std::vector<std::uint64_t> words(aig.input_count(), 0);
  util::Rng rng(3);
  std::vector<std::uint64_t> as(64), bs(64);
  for (std::size_t lane = 0; lane < 64; ++lane) {
    as[lane] = rng.next_below(1 << w);
    bs[lane] = lane % 4 == 0 ? as[lane] : rng.next_below(1 << w);
    pack_operand(words, 0, w, as[lane], lane);
    pack_operand(words, w, w, bs[lane], lane);
  }
  const auto out = aig.simulate(words);
  for (std::size_t lane = 0; lane < 64; ++lane) {
    const bool eq = (out[0] >> lane) & 1;
    const bool lt = (out[1] >> lane) & 1;
    const bool gt = (out[2] >> lane) & 1;
    EXPECT_EQ(eq, as[lane] == bs[lane]);
    EXPECT_EQ(lt, as[lane] < bs[lane]);
    EXPECT_EQ(gt, as[lane] > bs[lane]);
  }
}

TEST(ParityTest, XorReduction) {
  const nl::Aig aig = gen_parity(16);
  std::vector<std::uint64_t> words(16, 0);
  util::Rng rng(4);
  for (auto& w : words) w = rng();
  const auto out = aig.simulate(words);
  for (std::size_t lane = 0; lane < 64; ++lane) {
    int ones = 0;
    for (const auto w : words) ones += (w >> lane) & 1;
    EXPECT_EQ((out[0] >> lane) & 1, static_cast<std::uint64_t>(ones & 1));
  }
}

TEST(VoterTest, MajorityThreshold) {
  const int n = 15;
  const nl::Aig aig = gen_voter(n);
  std::vector<std::uint64_t> words(static_cast<std::size_t>(n), 0);
  util::Rng rng(5);
  for (auto& w : words) w = rng();
  const auto out = aig.simulate(words);
  for (std::size_t lane = 0; lane < 64; ++lane) {
    int ones = 0;
    for (const auto w : words) ones += (w >> lane) & 1;
    EXPECT_EQ((out[0] >> lane) & 1,
              static_cast<std::uint64_t>(ones > n / 2 ? 1 : 0))
        << "ones=" << ones;
  }
}

TEST(MaxTest, FourOperandMax) {
  const int w = 6;
  const nl::Aig aig = gen_max(w);
  std::vector<std::uint64_t> words(aig.input_count(), 0);
  util::Rng rng(6);
  std::vector<std::array<std::uint64_t, 4>> ops(64);
  for (std::size_t lane = 0; lane < 64; ++lane) {
    for (int k = 0; k < 4; ++k) {
      ops[lane][static_cast<std::size_t>(k)] = rng.next_below(1 << w);
      pack_operand(words, k * w, w, ops[lane][static_cast<std::size_t>(k)],
                   lane);
    }
  }
  const auto out = aig.simulate(words);
  for (std::size_t lane = 0; lane < 64; ++lane) {
    const std::uint64_t expected =
        std::max(std::max(ops[lane][0], ops[lane][1]),
                 std::max(ops[lane][2], ops[lane][3]));
    EXPECT_EQ(lane_value(out, lane, w), expected);
  }
}

TEST(DecoderTest, OneHotOutput) {
  const int bits = 4;
  const nl::Aig aig = gen_decoder(bits);
  // inputs: address bits + enable.
  std::vector<std::uint64_t> words(static_cast<std::size_t>(bits) + 1, 0);
  util::Rng rng(7);
  std::vector<std::uint64_t> addresses(64);
  for (std::size_t lane = 0; lane < 64; ++lane) {
    addresses[lane] = rng.next_below(1 << bits);
    pack_operand(words, 0, bits, addresses[lane], lane);
  }
  words.back() = ~0ULL;  // enable all lanes
  const auto out = aig.simulate(words);
  ASSERT_EQ(out.size(), 1u << bits);
  for (std::size_t lane = 0; lane < 64; ++lane) {
    for (std::size_t o = 0; o < out.size(); ++o) {
      EXPECT_EQ((out[o] >> lane) & 1,
                static_cast<std::uint64_t>(o == addresses[lane] ? 1 : 0));
    }
  }
}

TEST(ShifterTest, RotatesLeft) {
  const int log2w = 3;  // width 8
  const int w = 1 << log2w;
  const nl::Aig aig = gen_shifter(log2w);
  std::vector<std::uint64_t> words(aig.input_count(), 0);
  util::Rng rng(8);
  std::vector<std::uint64_t> data(64), amounts(64);
  for (std::size_t lane = 0; lane < 64; ++lane) {
    data[lane] = rng.next_below(1 << w);
    amounts[lane] = rng.next_below(static_cast<std::uint64_t>(w));
    pack_operand(words, 0, w, data[lane], lane);
    pack_operand(words, w, log2w, amounts[lane], lane);
  }
  const auto out = aig.simulate(words);
  for (std::size_t lane = 0; lane < 64; ++lane) {
    const auto rot = static_cast<unsigned>(amounts[lane]);
    const std::uint64_t mask = (1ULL << w) - 1;
    const std::uint64_t expected =
        ((data[lane] << rot) | (data[lane] >> (w - rot))) & mask;
    EXPECT_EQ(lane_value(out, lane, w),
              rot == 0 ? data[lane] : expected);
  }
}

TEST(EncoderTest, PriorityIndex) {
  const int n = 8;
  const nl::Aig aig = gen_encoder(n);
  std::vector<std::uint64_t> words(static_cast<std::size_t>(n), 0);
  util::Rng rng(9);
  for (auto& w : words) w = rng();
  const auto out = aig.simulate(words);
  const int out_bits = static_cast<int>(out.size()) - 1;  // last = valid
  for (std::size_t lane = 0; lane < 64; ++lane) {
    int first = -1;
    for (int i = 0; i < n; ++i) {
      if ((words[static_cast<std::size_t>(i)] >> lane) & 1) {
        first = i;
        break;
      }
    }
    const bool valid = (out.back() >> lane) & 1;
    EXPECT_EQ(valid, first >= 0);
    if (first >= 0) {
      EXPECT_EQ(lane_value(out, lane, out_bits),
                static_cast<std::uint64_t>(first));
    }
  }
}

TEST(ArbiterTest, ExactlyOneGrantWhenRequested) {
  const int n = 8;
  const nl::Aig aig = gen_arbiter(n);
  std::vector<std::uint64_t> words(aig.input_count(), 0);
  util::Rng rng(10);
  for (auto& w : words) w = rng();
  const auto out = aig.simulate(words);
  for (std::size_t lane = 0; lane < 64; ++lane) {
    int grants = 0;
    bool requested = false;
    for (int i = 0; i < n; ++i) {
      grants += (out[static_cast<std::size_t>(i)] >> lane) & 1;
      requested |= ((words[static_cast<std::size_t>(i)] >> lane) & 1) != 0;
    }
    if (requested) {
      EXPECT_EQ(grants, 1) << "lane " << lane;
    } else {
      EXPECT_EQ(grants, 0);
    }
  }
}

// ---- registry / structural sweep -------------------------------------------

class FamilySweepTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(FamilySweepTest, GeneratesNonTrivialDag) {
  BenchmarkSpec spec;
  spec.family = GetParam();
  // Use the family's smallest corpus size.
  for (const FamilyInfo& info : families()) {
    if (info.name == spec.family) spec.size = info.corpus_sizes.front();
  }
  spec.seed = 99;
  const nl::Aig aig = generate(spec);
  EXPECT_GT(aig.and_count(), 4u) << spec.family;
  EXPECT_GT(aig.input_count(), 0u);
  EXPECT_GT(aig.output_count(), 0u);
  EXPECT_GT(aig.depth(), 1u);
  // Outputs reference live structure.
  const auto alive = aig.live_nodes();
  std::size_t live_count = 0;
  for (bool a : alive) live_count += a ? 1 : 0;
  EXPECT_GT(live_count, aig.input_count());
}

TEST_P(FamilySweepTest, DeterministicForSameSeed) {
  BenchmarkSpec spec;
  spec.family = GetParam();
  for (const FamilyInfo& info : families()) {
    if (info.name == spec.family) spec.size = info.corpus_sizes.front();
  }
  spec.seed = 5;
  const nl::Aig a = generate(spec);
  const nl::Aig b = generate(spec);
  EXPECT_EQ(a.node_count(), b.node_count());
  EXPECT_EQ(a.output_count(), b.output_count());
}

std::vector<std::string> family_names() {
  std::vector<std::string> names;
  for (const FamilyInfo& info : families()) names.push_back(info.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilySweepTest,
                         ::testing::ValuesIn(family_names()));

TEST(RegistryTest, EighteenFamilies) {
  EXPECT_EQ(families().size(), 18u);
}

TEST(RegistryTest, CorpusSpecsRespectCap) {
  EXPECT_EQ(corpus_specs(10).size(), 10u);
  EXPECT_GE(corpus_specs().size(), 60u);
}

TEST(RegistryTest, SizesGrowWithinFamily) {
  for (const FamilyInfo& info : families()) {
    for (std::size_t i = 1; i < info.corpus_sizes.size(); ++i) {
      EXPECT_LT(info.corpus_sizes[i - 1], info.corpus_sizes[i]) << info.name;
    }
  }
}

TEST(RegistryTest, CharacterizationSetOrderedBySizeLabel) {
  const auto designs = characterization_designs();
  EXPECT_GE(designs.size(), 4u);
  EXPECT_EQ(designs.front().name, "dynamic_node");
  EXPECT_EQ(designs.back().name, "sparc_core");
}

TEST(RegistryTest, UnknownFamilyThrows) {
  BenchmarkSpec spec;
  spec.family = "warp_drive";
  EXPECT_THROW(generate(spec), std::invalid_argument);
}

TEST(RegistryTest, NonPositiveSizeThrows) {
  BenchmarkSpec spec;
  spec.family = "adder";
  spec.size = 0;
  EXPECT_THROW(generate(spec), std::invalid_argument);
}

}  // namespace
}  // namespace edacloud::workloads
