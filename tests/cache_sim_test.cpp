#include <gtest/gtest.h>

#include "perf/cache_sim.hpp"
#include "perf/vm.hpp"
#include "util/rng.hpp"

namespace edacloud::perf {
namespace {

TEST(CacheSimTest, ColdMissThenHit) {
  CacheSim cache(1024, 64, 2);
  EXPECT_FALSE(cache.access(0));
  EXPECT_TRUE(cache.access(0));
  EXPECT_TRUE(cache.access(32));  // same line
  EXPECT_EQ(cache.stats().accesses, 3u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheSimTest, LruEviction) {
  // 2-way, line 64, 2 sets (256 bytes): addresses 0, 128, 256 share set 0.
  CacheSim cache(256, 64, 2);
  EXPECT_FALSE(cache.access(0));
  EXPECT_FALSE(cache.access(128));
  EXPECT_FALSE(cache.access(256));  // evicts 0 (LRU)
  EXPECT_FALSE(cache.access(0));    // 0 was evicted
  EXPECT_TRUE(cache.access(256));   // still resident
}

TEST(CacheSimTest, LruKeepsRecentlyUsed) {
  CacheSim cache(256, 64, 2);
  cache.access(0);
  cache.access(128);
  cache.access(0);     // refresh 0
  cache.access(256);   // evicts 128, not 0
  EXPECT_TRUE(cache.access(0));
  EXPECT_FALSE(cache.access(128));
}

TEST(CacheSimTest, TouchDoesNotCountStats) {
  CacheSim cache(1024, 64, 2);
  cache.touch(0);
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  // But state changed: next access hits.
  EXPECT_TRUE(cache.access(0));
}

TEST(CacheSimTest, WorkingSetLargerThanCacheMisses) {
  CacheSim cache(4 * 1024, 64, 4);
  // Stream 64 KiB cyclically twice: second pass still misses (LRU).
  std::uint64_t misses_before = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) {
      cache.access(addr);
    }
    if (pass == 0) misses_before = cache.stats().misses;
  }
  EXPECT_EQ(cache.stats().misses, 2 * misses_before);
}

TEST(CacheSimTest, WorkingSetSmallerThanCacheHitsAfterWarmup) {
  CacheSim cache(64 * 1024, 64, 8);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t addr = 0; addr < 16 * 1024; addr += 64) {
      cache.access(addr);
    }
  }
  // Second pass should be all hits: miss count == distinct lines.
  EXPECT_EQ(cache.stats().misses, 16u * 1024 / 64);
}

TEST(CacheSimTest, InvalidGeometryThrows) {
  EXPECT_THROW(CacheSim(100, 60, 2), std::invalid_argument);   // line !pow2
  EXPECT_THROW(CacheSim(64, 64, 2), std::invalid_argument);    // too small
  EXPECT_THROW(CacheSim(1024, 64, 0), std::invalid_argument);  // no ways
}

TEST(CacheSimTest, MissRateComputation) {
  CacheStats stats;
  EXPECT_DOUBLE_EQ(stats.miss_rate(), 0.0);
  stats.accesses = 10;
  stats.misses = 3;
  EXPECT_DOUBLE_EQ(stats.miss_rate(), 0.3);
}

TEST(MemoryHierarchyTest, LevelsFilterAccesses) {
  MemoryHierarchy hierarchy(8 * 1024, 64 * 1024);
  EXPECT_EQ(hierarchy.access(0), 2);  // cold: miss both levels
  EXPECT_EQ(hierarchy.access(0), 0);  // L1 hit
  EXPECT_EQ(hierarchy.l1().accesses, 2u);
  EXPECT_EQ(hierarchy.llc().accesses, 1u);  // only the L1 miss
}

TEST(MemoryHierarchyTest, LlcCatchesL1Evictions) {
  MemoryHierarchy hierarchy(1024, 1024 * 1024);
  // Touch 8 KiB (evicts most of 1 KiB L1), then re-touch the start.
  for (std::uint64_t addr = 0; addr < 8 * 1024; addr += 64) {
    hierarchy.access(addr);
  }
  const auto llc_misses = hierarchy.llc().misses;
  hierarchy.access(0);  // L1 miss, LLC hit
  EXPECT_EQ(hierarchy.llc().misses, llc_misses);
}

TEST(MemoryHierarchyTest, InterfereOccupiesLlcOnly) {
  MemoryHierarchy hierarchy(8 * 1024, 8 * 1024);
  hierarchy.interfere(0);
  EXPECT_EQ(hierarchy.l1().accesses, 0u);
  EXPECT_EQ(hierarchy.llc().accesses, 0u);  // no stats
  // The interfering line is resident: an access misses L1 but hits LLC.
  EXPECT_EQ(hierarchy.access(0), 1);
}

TEST(VmConfigTest, LadderScalesLlcWithVcpus) {
  for (auto family : {InstanceFamily::kGeneralPurpose,
                      InstanceFamily::kMemoryOptimized,
                      InstanceFamily::kComputeOptimized}) {
    const auto ladder = vm_ladder(family);
    for (std::size_t i = 1; i < ladder.size(); ++i) {
      EXPECT_EQ(ladder[i].llc_bytes, ladder[0].llc_bytes * ladder[i].vcpus);
      EXPECT_GT(ladder[i].memory_gib, ladder[i - 1].memory_gib);
    }
  }
}

TEST(VmConfigTest, MemoryOptimizedHasMoreOfEverything) {
  const auto gp = make_vm(InstanceFamily::kGeneralPurpose, 4);
  const auto mo = make_vm(InstanceFamily::kMemoryOptimized, 4);
  EXPECT_GT(mo.memory_gib, gp.memory_gib);
  EXPECT_GT(mo.llc_bytes, gp.llc_bytes);
}

TEST(VmConfigTest, NamesAreDescriptive) {
  EXPECT_EQ(make_vm(InstanceFamily::kGeneralPurpose, 2).name(),
            "general-purpose-2vcpu");
}

TEST(VmConfigTest, InvalidVcpusThrows) {
  EXPECT_THROW(make_vm(InstanceFamily::kGeneralPurpose, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace edacloud::perf
