#include <gtest/gtest.h>

#include "nl/cell_library.hpp"

namespace edacloud::nl {
namespace {

TEST(CellLibraryTest, Generic14HasExpectedCells) {
  const CellLibrary lib = make_generic_14nm_library();
  EXPECT_GT(lib.size(), 10u);
  for (const char* name :
       {"INV_X1", "NAND2_X1", "NOR2_X1", "AND2_X1", "OR2_X1", "XOR2_X1",
        "XNOR2_X1", "AOI21_X1", "OAI21_X1", "MUX2_X1", "MAJ3_X1", "BUF_X1"}) {
    EXPECT_TRUE(lib.find(name).has_value()) << name;
  }
}

TEST(CellLibraryTest, FindMissingReturnsNullopt) {
  const CellLibrary lib = make_generic_14nm_library();
  EXPECT_FALSE(lib.find("DFF_X1").has_value());
}

TEST(CellLibraryTest, DuplicateNameThrows) {
  CellLibrary lib("test");
  Cell cell;
  cell.name = "X";
  lib.add_cell(cell);
  EXPECT_THROW(lib.add_cell(cell), std::invalid_argument);
}

TEST(CellLibraryTest, CellsWithFunctionSortedByArea) {
  const CellLibrary lib = make_generic_14nm_library();
  const auto inverters = lib.cells_with_function(CellFunction::kInv);
  ASSERT_GE(inverters.size(), 2u);
  for (std::size_t i = 1; i < inverters.size(); ++i) {
    EXPECT_LE(lib.cell(inverters[i - 1]).area_um2,
              lib.cell(inverters[i]).area_um2);
  }
}

TEST(CellLibraryTest, DelayGrowsWithLoad) {
  const CellLibrary lib = make_generic_14nm_library();
  const Cell& inv = lib.cell(*lib.find("INV_X1"));
  EXPECT_LT(inv.delay_ps(1.0), inv.delay_ps(10.0));
}

TEST(CellLibraryTest, StrongerDriveHasLowerSlope) {
  const CellLibrary lib = make_generic_14nm_library();
  const Cell& x1 = lib.cell(*lib.find("INV_X1"));
  const Cell& x4 = lib.cell(*lib.find("INV_X4"));
  EXPECT_GT(x1.drive_res_kohm, x4.drive_res_kohm);
  EXPECT_LT(x1.area_um2, x4.area_um2);
}

TEST(CellLibraryTest, ArityMatchesFunctionClass) {
  const CellLibrary lib = make_generic_14nm_library();
  for (CellId id = 0; id < lib.size(); ++id) {
    const Cell& cell = lib.cell(id);
    switch (cell.function) {
      case CellFunction::kBuf:
      case CellFunction::kInv:
        EXPECT_EQ(cell.input_count, 1) << cell.name;
        break;
      case CellFunction::kAnd:
      case CellFunction::kOr:
      case CellFunction::kNand:
      case CellFunction::kNor:
      case CellFunction::kXor:
      case CellFunction::kXnor:
        EXPECT_EQ(cell.input_count, 2) << cell.name;
        break;
      case CellFunction::kAoi:
      case CellFunction::kOai:
      case CellFunction::kMux:
      case CellFunction::kMaj:
        EXPECT_EQ(cell.input_count, 3) << cell.name;
        break;
    }
  }
}

TEST(CellLibraryTest, WireParasiticsPositive) {
  const CellLibrary lib = make_generic_14nm_library();
  EXPECT_GT(lib.wire_cap_per_um(), 0.0);
  EXPECT_GT(lib.wire_res_per_um(), 0.0);
}

TEST(CellLibraryTest, ToStringCoversAllFunctions) {
  EXPECT_EQ(to_string(CellFunction::kNand), "NAND");
  EXPECT_EQ(to_string(CellFunction::kMaj), "MAJ");
  EXPECT_EQ(to_string(CellFunction::kMux), "MUX");
}

}  // namespace
}  // namespace edacloud::nl
