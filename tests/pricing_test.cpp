#include <gtest/gtest.h>

#include "cloud/pricing.hpp"

namespace edacloud::cloud {
namespace {

TEST(PricingTest, HourlyLinearInVcpus) {
  const PricingCatalog catalog = PricingCatalog::aws_like();
  const double one =
      catalog.hourly_usd(perf::InstanceFamily::kGeneralPurpose, 1);
  const double eight =
      catalog.hourly_usd(perf::InstanceFamily::kGeneralPurpose, 8);
  EXPECT_NEAR(eight, 8 * one, 1e-12);
}

TEST(PricingTest, MemoryOptimizedCostsMore) {
  const PricingCatalog catalog = PricingCatalog::aws_like();
  EXPECT_GT(catalog.rate(perf::InstanceFamily::kMemoryOptimized),
            catalog.rate(perf::InstanceFamily::kGeneralPurpose));
}

TEST(PricingTest, PerSecondBillingRoundsUp) {
  const PricingCatalog catalog = PricingCatalog::aws_like();
  const double hourly =
      catalog.hourly_usd(perf::InstanceFamily::kGeneralPurpose, 1);
  EXPECT_NEAR(
      catalog.job_cost_usd(perf::InstanceFamily::kGeneralPurpose, 1, 3600.0),
      hourly, 1e-12);
  // 0.4 s bills as 1 s.
  EXPECT_NEAR(
      catalog.job_cost_usd(perf::InstanceFamily::kGeneralPurpose, 1, 0.4),
      hourly / 3600.0, 1e-12);
}

TEST(PricingTest, ZeroRuntimeIsFree) {
  const PricingCatalog catalog = PricingCatalog::aws_like();
  EXPECT_DOUBLE_EQ(
      catalog.job_cost_usd(perf::InstanceFamily::kGeneralPurpose, 4, 0.0),
      0.0);
}

TEST(PricingTest, SetRateOverrides) {
  PricingCatalog catalog;
  catalog.set_rate(perf::InstanceFamily::kComputeOptimized, 0.1);
  EXPECT_DOUBLE_EQ(catalog.rate(perf::InstanceFamily::kComputeOptimized),
                   0.1);
}

TEST(PricingTest, InvalidInputsThrow) {
  PricingCatalog catalog;
  EXPECT_THROW(catalog.set_rate(perf::InstanceFamily::kGeneralPurpose, 0.0),
               std::invalid_argument);
  EXPECT_THROW(
      (void)catalog.hourly_usd(perf::InstanceFamily::kGeneralPurpose, 0),
      std::invalid_argument);
  EXPECT_THROW(
      (void)catalog.job_cost_usd(perf::InstanceFamily::kGeneralPurpose, 1,
                                 -1.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace edacloud::cloud
