#include <gtest/gtest.h>

#include "nl/netlist_sim.hpp"
#include "nl/verilog.hpp"
#include "synth/engine.hpp"
#include "util/rng.hpp"
#include "workloads/generators.hpp"
#include "workloads/registry.hpp"

namespace edacloud::nl {
namespace {

const CellLibrary& library() {
  static const CellLibrary lib = make_generic_14nm_library();
  return lib;
}

Netlist small_netlist() {
  Netlist n("demo", &library());
  const NodeId a = n.add_input();
  const NodeId b = n.add_input();
  const NodeId g1 = n.add_cell(*library().find("NAND2_X1"), {a, b});
  const NodeId g2 = n.add_cell(*library().find("INV_X1"), {g1});
  n.add_output(g2);
  n.add_output(g1);
  return n;
}

TEST(VerilogWriterTest, EmitsModuleStructure) {
  const std::string text = write_verilog(small_netlist());
  EXPECT_NE(text.find("module demo"), std::string::npos);
  EXPECT_NE(text.find("input pi0;"), std::string::npos);
  EXPECT_NE(text.find("output po0;"), std::string::npos);
  EXPECT_NE(text.find("NAND2_X1"), std::string::npos);
  EXPECT_NE(text.find("endmodule"), std::string::npos);
}

TEST(VerilogRoundTripTest, SmallNetlistIsEquivalent) {
  const Netlist original = small_netlist();
  const auto parsed = parse_verilog(write_verilog(original), library());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.netlist.inputs().size(), original.inputs().size());
  EXPECT_EQ(parsed.netlist.outputs().size(), original.outputs().size());
  util::Rng rng(1);
  const std::vector<std::uint64_t> words = {rng(), rng()};
  EXPECT_EQ(simulate(original, words), simulate(parsed.netlist, words));
}

TEST(VerilogParserTest, RejectsUnknownCell) {
  const std::string text = R"(
    module t (a, y);
    input a; output y; wire n1;
    FOO_X1 g1 (.A(a), .Y(n1));
    assign y = n1;
    endmodule)";
  const auto parsed = parse_verilog(text, library());
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("unknown cell"), std::string::npos);
}

TEST(VerilogParserTest, RejectsMissingPin) {
  const std::string text = R"(
    module t (a, y);
    input a; output y; wire n1;
    NAND2_X1 g1 (.A(a), .Y(n1));
    assign y = n1;
    endmodule)";
  const auto parsed = parse_verilog(text, library());
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("missing pin"), std::string::npos);
}

TEST(VerilogParserTest, RejectsUndrivenOutput) {
  const std::string text = R"(
    module t (a, y);
    input a; output y;
    endmodule)";
  const auto parsed = parse_verilog(text, library());
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("undriven"), std::string::npos);
}

TEST(VerilogParserTest, RejectsCombinationalCycle) {
  const std::string text = R"(
    module t (a, y);
    input a; output y; wire n1; wire n2;
    INV_X1 g1 (.A(n2), .Y(n1));
    INV_X1 g2 (.A(n1), .Y(n2));
    assign y = n1;
    endmodule)";
  const auto parsed = parse_verilog(text, library());
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("cycle"), std::string::npos);
}

TEST(VerilogParserTest, HandlesOutOfOrderInstances) {
  // g2 references n1 before g1 defines it: parser must converge anyway.
  const std::string text = R"(
    module t (a, y);
    input a; output y; wire n1; wire n2;
    INV_X1 g2 (.A(n1), .Y(n2));
    INV_X1 g1 (.A(a), .Y(n1));
    assign y = n2;
    endmodule)";
  const auto parsed = parse_verilog(text, library());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const auto out = simulate(parsed.netlist, {0xFFULL});
  EXPECT_EQ(out[0], 0xFFULL);  // double inversion
}

TEST(VerilogParserTest, IgnoresComments) {
  const std::string text = R"(
    // header comment
    module t (a, y);
    input a; // trailing
    output y; wire n1;
    INV_X1 g1 (.A(a), .Y(n1));
    assign y = n1;
    endmodule)";
  EXPECT_TRUE(parse_verilog(text, library()).ok);
}

// Round-trip property over synthesized benchmark families.
class VerilogRoundTripSweep
    : public ::testing::TestWithParam<std::string> {};

TEST_P(VerilogRoundTripSweep, SynthesizedNetlistRoundTrips) {
  workloads::BenchmarkSpec spec;
  spec.family = GetParam();
  for (const auto& info : workloads::families()) {
    if (info.name == spec.family) spec.size = info.corpus_sizes.front();
  }
  spec.seed = 23;
  const Aig aig = workloads::generate(spec);
  synth::SynthesisEngine engine(library());
  const Netlist netlist =
      engine.synthesize(aig, synth::default_recipe()).netlist;

  const auto parsed = parse_verilog(write_verilog(netlist), library());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  ASSERT_EQ(parsed.netlist.inputs().size(), netlist.inputs().size());
  util::Rng rng(29);
  std::vector<std::uint64_t> words(netlist.inputs().size());
  for (auto& w : words) w = rng();
  EXPECT_EQ(simulate(netlist, words), simulate(parsed.netlist, words));
  EXPECT_EQ(parsed.netlist.stats().instance_count,
            netlist.stats().instance_count);
}

INSTANTIATE_TEST_SUITE_P(Families, VerilogRoundTripSweep,
                         ::testing::Values("adder", "alu", "decoder",
                                           "voter", "cavlc", "sbox",
                                           "dynamic_node", "crossbar"));

}  // namespace
}  // namespace edacloud::nl
