#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "util/rng.hpp"

#include "place/placer.hpp"
#include "synth/engine.hpp"
#include "workloads/generators.hpp"

namespace edacloud::place {
namespace {

const nl::CellLibrary& library() {
  static const nl::CellLibrary lib = nl::make_generic_14nm_library();
  return lib;
}

nl::Netlist synthesize(const nl::Aig& aig) {
  synth::SynthesisEngine engine(library());
  return engine.synthesize(aig, synth::default_recipe()).netlist;
}

class PlacerTest : public ::testing::Test {
 protected:
  nl::Netlist netlist_ = synthesize(workloads::gen_alu(8));
};

TEST_F(PlacerTest, PlacementCoversAllNodes) {
  QuadraticPlacer placer;
  const Placement placement = placer.place(netlist_);
  EXPECT_TRUE(placement.valid_for(netlist_));
  EXPECT_GT(placement.die_width_um, 0.0);
}

TEST_F(PlacerTest, CellsInsideDie) {
  QuadraticPlacer placer;
  const Placement placement = placer.place(netlist_);
  for (nl::NodeId id = 0; id < netlist_.node_count(); ++id) {
    EXPECT_GE(placement.x[id], -1e-9);
    EXPECT_LE(placement.x[id], placement.die_width_um + 1e-9);
    EXPECT_GE(placement.y[id], -1e-9);
    EXPECT_LE(placement.y[id], placement.die_height_um + 1e-9);
  }
}

TEST_F(PlacerTest, CellsSnappedToRows) {
  QuadraticPlacer placer;
  const Placement placement = placer.place(netlist_);
  for (nl::NodeId id = 0; id < netlist_.node_count(); ++id) {
    if (!netlist_.is_cell(id)) continue;
    const double row_pos = placement.y[id] / placement.row_height_um - 0.5;
    EXPECT_NEAR(row_pos, std::round(row_pos), 1e-6) << id;
  }
}

TEST_F(PlacerTest, NoCellOverlapWithinRows) {
  QuadraticPlacer placer;
  const Placement placement = placer.place(netlist_);
  // Group cells by row; check x-intervals don't overlap.
  std::map<int, std::vector<std::pair<double, double>>> rows;
  for (nl::NodeId id = 0; id < netlist_.node_count(); ++id) {
    if (!netlist_.is_cell(id)) continue;
    const int row = static_cast<int>(placement.y[id] /
                                     placement.row_height_um);
    const double width = library()
                             .cell(netlist_.node(id).cell)
                             .area_um2 /
                         placement.row_height_um;
    rows[row].emplace_back(placement.x[id], placement.x[id] + width);
  }
  for (auto& [row, intervals] : rows) {
    std::sort(intervals.begin(), intervals.end());
    for (std::size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first, intervals[i - 1].second - 1e-6)
          << "row " << row;
    }
  }
}

TEST_F(PlacerTest, PadsOnPeriphery) {
  QuadraticPlacer placer;
  const Placement placement = placer.place(netlist_);
  for (nl::NodeId id : netlist_.inputs()) {
    const bool on_edge =
        placement.x[id] < 1e-9 ||
        placement.x[id] > placement.die_width_um - 1e-9 ||
        placement.y[id] < 1e-9 ||
        placement.y[id] > placement.die_height_um - 1e-9;
    EXPECT_TRUE(on_edge) << id;
  }
}

TEST_F(PlacerTest, HpwlBetterThanRandomPlacement) {
  QuadraticPlacer placer;
  const PlacementResult result = placer.run(netlist_, {});
  // Random baseline: scatter cells uniformly.
  Placement random = result.placement;
  util::Rng rng(3);
  for (nl::NodeId id = 0; id < netlist_.node_count(); ++id) {
    if (!netlist_.is_cell(id)) continue;
    random.x[id] = rng.next_double(0.0, random.die_width_um);
    random.y[id] = rng.next_double(0.0, random.die_height_um);
  }
  EXPECT_LT(result.hpwl_um, hpwl_um(netlist_, random));
}

TEST_F(PlacerTest, DeterministicAcrossRuns) {
  QuadraticPlacer placer;
  const Placement a = placer.place(netlist_);
  const Placement b = placer.place(netlist_);
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
}

TEST_F(PlacerTest, InstrumentedRunProducesProfile) {
  const auto ladder = perf::vm_ladder(perf::InstanceFamily::kMemoryOptimized);
  QuadraticPlacer placer;
  const PlacementResult result =
      placer.run(netlist_, {ladder.begin(), ladder.end()});
  ASSERT_EQ(result.profile.counts.size(), 4u);
  EXPECT_GT(result.profile.counts[0].avx_ops, 0u);
  EXPECT_GT(result.profile.tasks.task_count(), 0u);
  EXPECT_GT(result.solver_iterations, 0);
  // Placement is the AVX-heavy job (Fig. 2c).
  EXPECT_GT(result.profile.counts[0].avx_fraction(), 0.5);
}

TEST_F(PlacerTest, SpeedupCurveIsSane) {
  const auto ladder = perf::vm_ladder(perf::InstanceFamily::kMemoryOptimized);
  QuadraticPlacer placer;
  const PlacementResult result =
      placer.run(netlist_, {ladder.begin(), ladder.end()});
  const auto measurement = perf::measure(result.profile, {});
  EXPECT_DOUBLE_EQ(measurement.speedup[0], 1.0);
  EXPECT_GT(measurement.speedup[3], 1.0);
  EXPECT_LT(measurement.speedup[3], 16.0);
}

TEST(PlacerOptionsTest, MoreGlobalIterationsStillLegal) {
  PlacerOptions options;
  options.global_iterations = 3;
  QuadraticPlacer placer(options);
  const nl::Netlist netlist = synthesize(workloads::gen_adder(16));
  const Placement placement = placer.place(netlist);
  EXPECT_TRUE(placement.valid_for(netlist));
}

TEST(PlacerEdgeTest, TinyNetlistPlaces) {
  const nl::CellLibrary& lib = library();
  nl::Netlist n("tiny", &lib);
  const auto a = n.add_input();
  const auto g = n.add_cell(*lib.find("INV_X1"), {a});
  n.add_output(g);
  QuadraticPlacer placer;
  const Placement placement = placer.place(n);
  EXPECT_TRUE(placement.valid_for(n));
}

}  // namespace
}  // namespace edacloud::place
