// Tests for the serving subsystem: JSON codec, wire framing, request
// parsing, Service dispatch, and loopback JobServer integration — including
// the determinism contract (same-seed responses byte-identical across
// server thread counts) that scripts/check.sh re-checks end-to-end.

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <memory>
#include <string>
#include <vector>

#include "svc/client.hpp"
#include "svc/json.hpp"
#include "svc/loadgen.hpp"
#include "svc/protocol.hpp"
#include "svc/server.hpp"
#include "svc/service.hpp"
#include "svc/wire.hpp"

namespace edacloud::svc {
namespace {

// ---------------------------------------------------------------- JSON --

TEST(SvcJsonTest, RoundTripPreservesValueAndBytes) {
  JsonValue request = JsonValue::object();
  request.set("id", JsonValue::of(std::uint64_t{42}));
  request.set("type", JsonValue::of("predict"));
  request.set("spot", JsonValue::of(true));
  request.set("deadline_s", JsonValue::of(1.5));
  JsonValue sizes = JsonValue::array();
  sizes.push_back(JsonValue::of(1));
  sizes.push_back(JsonValue::of(2));
  request.set("sizes", std::move(sizes));

  const std::string text = request.dump();
  const JsonParseResult parsed = parse_json(text);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.number_or("id", 0.0), 42.0);
  EXPECT_EQ(parsed.value.string_or("type", ""), "predict");
  EXPECT_TRUE(parsed.value.bool_or("spot", false));
  ASSERT_NE(parsed.value.find("sizes"), nullptr);
  EXPECT_EQ(parsed.value.find("sizes")->size(), 2u);
  // Parse → dump is a fixed point: deterministic serialization.
  EXPECT_EQ(parsed.value.dump(), text);
}

TEST(SvcJsonTest, DumpIsInsertionOrdered) {
  JsonValue a = JsonValue::object();
  a.set("z", JsonValue::of(1));
  a.set("a", JsonValue::of(2));
  EXPECT_EQ(a.dump(), "{\"z\":1,\"a\":2}");
}

TEST(SvcJsonTest, StringEscapesRoundTrip) {
  JsonValue v = JsonValue::object();
  v.set("s", JsonValue::of("line\n\"quote\"\ttab\\slash"));
  const JsonParseResult parsed = parse_json(v.dump());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.string_or("s", ""), "line\n\"quote\"\ttab\\slash");
}

TEST(SvcJsonTest, MalformedInputsReportErrors) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "tru", "\"unterminated",
                          "{\"a\":1} trailing", "{\"a\" 1}"}) {
    const JsonParseResult parsed = parse_json(bad);
    EXPECT_FALSE(parsed.ok) << "accepted: " << bad;
    EXPECT_FALSE(parsed.error.empty());
  }
}

TEST(SvcJsonTest, UnicodeEscapeDecodesToUtf8) {
  const JsonParseResult parsed = parse_json("{\"s\":\"\\u00e9\"}");
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.string_or("s", ""), "\xc3\xa9");
}

// ---------------------------------------------------------------- wire --

TEST(SvcWireTest, EncodeDecodeRoundTrip) {
  FrameDecoder decoder;
  decoder.feed(encode_frame("hello") + encode_frame("") +
               encode_frame("world"));
  std::string out;
  ASSERT_TRUE(decoder.next(&out));
  EXPECT_EQ(out, "hello");
  ASSERT_TRUE(decoder.next(&out));
  EXPECT_EQ(out, "");
  ASSERT_TRUE(decoder.next(&out));
  EXPECT_EQ(out, "world");
  EXPECT_FALSE(decoder.next(&out));
  EXPECT_FALSE(decoder.error());
}

TEST(SvcWireTest, TruncatedFrameWaitsForMoreBytes) {
  const std::string frame = encode_frame("payload");
  FrameDecoder decoder;
  std::string out;
  // Byte-at-a-time delivery: no frame until the last byte lands.
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    decoder.feed(frame.data() + i, 1);
    EXPECT_FALSE(decoder.next(&out));
  }
  decoder.feed(frame.data() + frame.size() - 1, 1);
  ASSERT_TRUE(decoder.next(&out));
  EXPECT_EQ(out, "payload");
}

TEST(SvcWireTest, OversizedLengthIsRejectedBeforeBuffering) {
  // 0xFFFFFFFF declared length — far beyond kMaxFramePayload.
  const char header[4] = {'\xFF', '\xFF', '\xFF', '\xFF'};
  FrameDecoder decoder;
  decoder.feed(header, sizeof(header));
  std::string out;
  EXPECT_FALSE(decoder.next(&out));
  EXPECT_TRUE(decoder.error());
  EXPECT_EQ(decoder.rejected_length(), 0xFFFFFFFFu);
  // Error state is sticky; further bytes are not buffered.
  decoder.feed("more bytes");
  EXPECT_EQ(decoder.buffered(), 0u);
  EXPECT_FALSE(decoder.next(&out));
}

TEST(SvcWireTest, MaxPayloadExactlyAtLimitIsAccepted) {
  const std::string payload(kMaxFramePayload, 'x');
  FrameDecoder decoder;
  decoder.feed(encode_frame(payload));
  std::string out;
  ASSERT_TRUE(decoder.next(&out));
  EXPECT_EQ(out.size(), kMaxFramePayload);
  EXPECT_FALSE(decoder.error());
}

// ------------------------------------------------------------ protocol --

TEST(SvcProtocolTest, ParsesValidPredict) {
  const JsonParseResult json = parse_json(
      "{\"id\":7,\"type\":\"predict\",\"family\":\"adder\","
      "\"size\":32,\"job\":\"routing\"}");
  ASSERT_TRUE(json.ok) << json.error;
  const ParsedRequest parsed = parse_request(json.value);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.request.id, 7u);
  EXPECT_EQ(parsed.request.type, RequestType::kPredict);
  EXPECT_EQ(parsed.request.family, "adder");
  EXPECT_EQ(parsed.request.size, 32);
  EXPECT_EQ(parsed.request.job, core::JobKind::kRouting);
}

TEST(SvcProtocolTest, RejectsBadRequestsWithSalvagedId) {
  struct Case {
    const char* text;
    const char* code;
  };
  const Case cases[] = {
      {"{\"id\":3}", kErrBadRequest},  // no type
      {"{\"id\":3,\"type\":\"frobnicate\"}", kErrUnknownType},
      {"{\"id\":3,\"type\":\"predict\",\"family\":\"nope\",\"size\":8,"
       "\"job\":\"sta\"}",
       kErrBadRequest},  // unknown family
      {"{\"id\":3,\"type\":\"predict\",\"family\":\"adder\","
       "\"size\":-1,\"job\":\"sta\"}",
       kErrBadRequest},  // bad size
      {"{\"id\":3,\"type\":\"optimize\",\"family\":\"adder\","
       "\"size\":8}",
       kErrBadRequest},  // missing deadline_s
      {"{\"id\":3,\"type\":\"echo\",\"sleep_ms\":999999}", kErrBadRequest},
  };
  for (const Case& c : cases) {
    const JsonParseResult json = parse_json(c.text);
    ASSERT_TRUE(json.ok) << c.text;
    const ParsedRequest parsed = parse_request(json.value);
    EXPECT_FALSE(parsed.ok) << c.text;
    EXPECT_EQ(parsed.request.id, 3u) << c.text;  // id salvaged for the reply
    EXPECT_STREQ(parsed.code, c.code) << c.text;
  }
}

TEST(SvcProtocolTest, RejectsUnknownMemberFields) {
  // A typo'd field must never be silently ignored (ISSUE 9 satellite):
  // each request type rejects members outside its schema with a stable
  // bad_request code naming the offending key.
  struct Case {
    const char* text;
    const char* field;
  };
  const Case cases[] = {
      {"{\"id\":3,\"type\":\"predict\",\"family\":\"adder\",\"size\":8,"
       "\"job\":\"sta\",\"frobnicate\":1}",
       "frobnicate"},
      {"{\"id\":3,\"type\":\"echo\",\"payload\":\"x\",\"famly\":\"adder\"}",
       "famly"},  // typo of a real field elsewhere in the schema
      {"{\"id\":3,\"type\":\"characterize\",\"family\":\"adder\",\"size\":8,"
       "\"job\":\"sta\"}",
       "job"},  // valid field, wrong request type
      {"{\"id\":3,\"type\":\"tune\",\"family\":\"adder\",\"size\":8,"
       "\"deadline_s\":60,\"smaples\":4}",
       "smaples"},
  };
  for (const Case& c : cases) {
    const JsonParseResult json = parse_json(c.text);
    ASSERT_TRUE(json.ok) << c.text;
    const ParsedRequest parsed = parse_request(json.value);
    EXPECT_FALSE(parsed.ok) << c.text;
    EXPECT_STREQ(parsed.code, kErrBadRequest) << c.text;
    EXPECT_NE(parsed.error.find(std::string("unknown field '") + c.field),
              std::string::npos)
        << c.text << " -> " << parsed.error;
    EXPECT_EQ(parsed.request.id, 3u) << c.text;
  }
}

TEST(SvcProtocolTest, ParsesValidTuneWithDefaults) {
  const JsonParseResult json = parse_json(
      "{\"id\":4,\"type\":\"tune\",\"family\":\"mem_ctrl\",\"size\":32,"
      "\"deadline_s\":90.5,\"samples\":8,\"seed\":11,\"batch\":16,"
      "\"spot\":true}");
  ASSERT_TRUE(json.ok) << json.error;
  const ParsedRequest parsed = parse_request(json.value);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.request.type, RequestType::kTune);
  EXPECT_EQ(parsed.request.family, "mem_ctrl");
  EXPECT_EQ(parsed.request.size, 32);
  EXPECT_EQ(parsed.request.deadline_seconds, 90.5);
  EXPECT_EQ(parsed.request.samples, 8);
  EXPECT_EQ(parsed.request.tune_seed, 11u);
  EXPECT_EQ(parsed.request.batch, 16);
  EXPECT_TRUE(parsed.request.spot);

  // Knobs are optional; defaults survive when omitted.
  const JsonParseResult minimal = parse_json(
      "{\"id\":5,\"type\":\"tune\",\"family\":\"adder\",\"size\":16,"
      "\"deadline_s\":60}");
  ASSERT_TRUE(minimal.ok);
  const ParsedRequest defaults = parse_request(minimal.value);
  ASSERT_TRUE(defaults.ok) << defaults.error;
  EXPECT_EQ(defaults.request.samples, 16);
  EXPECT_EQ(defaults.request.tune_seed, 1u);
  EXPECT_EQ(defaults.request.batch, 64);
}

TEST(SvcProtocolTest, RejectsTuneKnobsOutOfRange) {
  // samples in [0, 512], batch in [1, 4096], seed a non-negative integer —
  // each violation is a stable bad_request, never a clamp or a crash.
  const char* cases[] = {
      "{\"id\":3,\"type\":\"tune\",\"family\":\"adder\",\"size\":8,"
      "\"deadline_s\":60,\"samples\":-1}",
      "{\"id\":3,\"type\":\"tune\",\"family\":\"adder\",\"size\":8,"
      "\"deadline_s\":60,\"samples\":513}",
      "{\"id\":3,\"type\":\"tune\",\"family\":\"adder\",\"size\":8,"
      "\"deadline_s\":60,\"samples\":2.5}",
      "{\"id\":3,\"type\":\"tune\",\"family\":\"adder\",\"size\":8,"
      "\"deadline_s\":60,\"batch\":0}",
      "{\"id\":3,\"type\":\"tune\",\"family\":\"adder\",\"size\":8,"
      "\"deadline_s\":60,\"batch\":4097}",
      "{\"id\":3,\"type\":\"tune\",\"family\":\"adder\",\"size\":8,"
      "\"deadline_s\":60,\"seed\":-4}",
      "{\"id\":3,\"type\":\"tune\",\"family\":\"adder\",\"size\":8,"
      "\"deadline_s\":0}",
      "{\"id\":3,\"type\":\"tune\",\"family\":\"adder\",\"size\":8}",
  };
  for (const char* text : cases) {
    const JsonParseResult json = parse_json(text);
    ASSERT_TRUE(json.ok) << text;
    const ParsedRequest parsed = parse_request(json.value);
    EXPECT_FALSE(parsed.ok) << text;
    EXPECT_STREQ(parsed.code, kErrBadRequest) << text;
    EXPECT_FALSE(parsed.error.empty()) << text;
  }
}

TEST(SvcProtocolTest, ErrorResponseShape) {
  const std::string reply = error_response(9, kErrOverloaded, "queue full");
  const JsonParseResult parsed = parse_json(reply);
  ASSERT_TRUE(parsed.ok);
  EXPECT_EQ(parsed.value.number_or("id", 0.0), 9.0);
  EXPECT_FALSE(parsed.value.bool_or("ok", true));
  EXPECT_EQ(parsed.value.string_or("error", ""), "overloaded");
  EXPECT_EQ(parsed.value.string_or("message", ""), "queue full");
}

// ------------------------------------------------------------- service --

Request echo_request(std::uint64_t id, int sleep_ms = 0) {
  Request request;
  request.type = RequestType::kEcho;
  request.id = id;
  request.sleep_ms = sleep_ms;
  return request;
}

std::string echo_payload(std::uint64_t id, int sleep_ms = 0,
                         double deadline_ms = 0.0) {
  JsonValue v = JsonValue::object();
  v.set("id", JsonValue::of(id));
  v.set("type", JsonValue::of("echo"));
  v.set("payload", JsonValue::of("p" + std::to_string(id)));
  if (sleep_ms > 0) v.set("sleep_ms", JsonValue::of(sleep_ms));
  if (deadline_ms > 0.0) v.set("deadline_ms", JsonValue::of(deadline_ms));
  return v.dump();
}

TEST(SvcServiceTest, EchoAndErrorPathsWorkUntrained) {
  Service service;  // no initialize(): echo must still work
  const std::string ok = service.handle_payload(
      "{\"id\":1,\"type\":\"echo\",\"payload\":\"ping\"}");
  EXPECT_NE(ok.find("\"ok\":true"), std::string::npos) << ok;
  EXPECT_NE(ok.find("ping"), std::string::npos);

  const std::string bad_json = service.handle_payload("{nope");
  EXPECT_NE(bad_json.find("\"error\":\"bad_request\""), std::string::npos)
      << bad_json;

  const std::string untrained = service.handle_payload(
      "{\"id\":2,\"type\":\"predict\",\"family\":\"adder\","
      "\"size\":16,\"job\":\"sta\"}");
  EXPECT_NE(untrained.find("\"error\":\"internal\""), std::string::npos)
      << untrained;
  EXPECT_EQ(service.stats().errors.load(), 1u);
}

TEST(SvcServiceTest, PredictIsDeterministicPerRequest) {
  ServiceConfig config;
  config.train_designs = 2;
  config.train_epochs = 2;
  Service service(config);
  service.initialize();
  const std::string request =
      "{\"id\":5,\"type\":\"predict\",\"family\":\"adder\","
      "\"size\":16,\"job\":\"synthesis\"}";
  const std::string first = service.handle_payload(request);
  const std::string second = service.handle_payload(request);
  EXPECT_NE(first.find("\"ok\":true"), std::string::npos) << first;
  EXPECT_EQ(first, second);
}

TEST(SvcServiceTest, TuneHappyPathIsDeterministicPerRequest) {
  ServiceConfig config;
  config.train_designs = 2;
  config.train_epochs = 2;
  Service service(config);
  service.initialize();
  const std::string request =
      "{\"id\":8,\"type\":\"tune\",\"family\":\"adder\",\"size\":16,"
      "\"deadline_s\":60,\"samples\":2,\"seed\":3,\"batch\":8}";
  const std::string first = service.handle_payload(request);
  EXPECT_NE(first.find("\"ok\":true"), std::string::npos) << first;
  EXPECT_NE(first.find("\"savings_vs_fixed_usd\""), std::string::npos);
  EXPECT_NE(first.find("\"joint_at_qor\""), std::string::npos);
  EXPECT_NE(first.find("\"frontier\""), std::string::npos);
  // Cached predictions are bit-identical to the miss path, so a repeat of
  // the same request (now warm) serializes to the same bytes.
  const std::string second = service.handle_payload(request);
  EXPECT_EQ(first, second);
  EXPECT_EQ(
      service.stats().by_type[static_cast<int>(RequestType::kTune)].load(),
      2u);
}

TEST(SvcServiceTest, StatsCountByType) {
  Service service;
  (void)service.handle(echo_request(1));
  (void)service.handle(echo_request(2));
  EXPECT_EQ(service.stats().requests.load(), 2u);
  EXPECT_EQ(
      service.stats().by_type[static_cast<int>(RequestType::kEcho)].load(),
      2u);
}

// -------------------------------------------------------------- server --

class SvcServerTest : public ::testing::Test {
 protected:
  /// Start a server over `service` and connect one client to it.
  void start(Service& service, ServerConfig config) {
    server_ = std::make_unique<JobServer>(service, config);
    std::string error;
    ASSERT_TRUE(server_->listen(&error)) << error;
    server_->start();
    std::string connect_error;
    ASSERT_TRUE(client_.connect("127.0.0.1", server_->port(), &connect_error))
        << connect_error;
  }

  void TearDown() override {
    client_.close();
    if (server_) server_->stop_and_join();
  }

  Service service_;
  std::unique_ptr<JobServer> server_;
  Client client_;
};

TEST_F(SvcServerTest, EchoRoundTrip) {
  start(service_, ServerConfig{});
  std::string response;
  ASSERT_TRUE(client_.roundtrip(echo_payload(1), &response));
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
  EXPECT_NE(response.find("p1"), std::string::npos);
}

TEST_F(SvcServerTest, MalformedJsonGetsErrorReply) {
  start(service_, ServerConfig{});
  std::string response;
  ASSERT_TRUE(client_.roundtrip("this is not json", &response));
  EXPECT_NE(response.find("\"error\":\"bad_request\""), std::string::npos)
      << response;
  EXPECT_EQ(server_->stats().protocol_errors.load(), 1u);
  // The connection survives a malformed payload (frame boundary intact).
  ASSERT_TRUE(client_.roundtrip(echo_payload(2), &response));
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos);
}

TEST_F(SvcServerTest, OversizedFrameAnsweredThenClosed) {
  start(service_, ServerConfig{});
  std::string response;
  ASSERT_TRUE(client_.roundtrip(echo_payload(1), &response));
  // Declared length 2 MiB > kMaxFramePayload: no frame boundary remains, so
  // the server replies once and hangs up.
  const std::uint32_t huge = 2u << 20;
  std::string header;
  for (int shift = 24; shift >= 0; shift -= 8) {
    header.push_back(static_cast<char>((huge >> shift) & 0xFF));
  }
  ASSERT_GT(::send(client_.fd(), header.data(), header.size(), 0), 0);
  ASSERT_TRUE(client_.recv(&response));
  EXPECT_NE(response.find("exceeds limit"), std::string::npos) << response;
  // Server closes after flushing the error: next recv sees EOF.
  EXPECT_FALSE(client_.recv(&response));
  EXPECT_EQ(server_->stats().protocol_errors.load(), 1u);
}

TEST_F(SvcServerTest, OverloadShedsWithExplicitReply) {
  ServerConfig config;
  config.threads = 1;
  config.max_queue = 1;
  start(service_, config);
  // Pipeline 5 slow echoes: one dispatches, the rest exceed the queue
  // bound and must be answered `overloaded` instead of waiting.
  for (std::uint64_t id = 1; id <= 5; ++id) {
    ASSERT_TRUE(client_.send(echo_payload(id, /*sleep_ms=*/100)));
  }
  int ok = 0, overloaded = 0;
  for (int i = 0; i < 5; ++i) {
    std::string response;
    ASSERT_TRUE(client_.recv(&response));
    if (response.find("\"ok\":true") != std::string::npos) ++ok;
    if (response.find("\"error\":\"overloaded\"") != std::string::npos) {
      ++overloaded;
    }
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(overloaded, 1);
  EXPECT_EQ(ok + overloaded, 5);
  EXPECT_EQ(server_->stats().overload_rejections.load(),
            static_cast<std::uint64_t>(overloaded));
}

TEST_F(SvcServerTest, QueuedPastDeadlineAnsweredDeadlineExceeded) {
  ServerConfig config;
  config.threads = 1;
  start(service_, config);
  // First request occupies the single worker for 300 ms; the second
  // carries a 20 ms deadline and must expire in the queue.
  ASSERT_TRUE(client_.send(echo_payload(1, /*sleep_ms=*/300)));
  ASSERT_TRUE(client_.send(echo_payload(2, 0, /*deadline_ms=*/20.0)));
  int deadline_exceeded = 0, ok = 0;
  for (int i = 0; i < 2; ++i) {
    std::string response;
    ASSERT_TRUE(client_.recv(&response));
    if (response.find("\"error\":\"deadline_exceeded\"") !=
        std::string::npos) {
      ++deadline_exceeded;
    }
    if (response.find("\"ok\":true") != std::string::npos) ++ok;
  }
  EXPECT_EQ(deadline_exceeded, 1);
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(server_->stats().deadline_rejections.load(), 1u);
}

TEST_F(SvcServerTest, ConnectionLimitShedsExcessConnections) {
  ServerConfig config;
  config.max_connections = 1;  // the fixture's client takes the only slot
  start(service_, config);
  // Poke the server once so the fixture connection is registered before
  // the over-limit connect below.
  std::string response;
  ASSERT_TRUE(client_.roundtrip(echo_payload(1), &response));
  Client second;
  std::string error;
  ASSERT_TRUE(second.connect("127.0.0.1", server_->port(), &error)) << error;
  // The server answers `overloaded` and closes instead of serving.
  std::string reply;
  ASSERT_TRUE(second.recv(&reply));
  EXPECT_NE(reply.find("\"error\":\"overloaded\""), std::string::npos)
      << reply;
  EXPECT_FALSE(second.recv(&reply));  // closed
  EXPECT_EQ(server_->stats().connections_rejected.load(), 1u);
}

// The tentpole determinism contract: the same request stream answered by a
// 1-thread and an 8-thread server produces byte-identical responses.
TEST(SvcServerDeterminismTest, ResponsesByteIdenticalAcrossThreadCounts) {
  ServiceConfig service_config;
  service_config.train_designs = 2;
  service_config.train_epochs = 2;
  Service service(service_config);
  service.initialize();

  LoadgenConfig gen;
  gen.mix = "predict";
  gen.seed = 11;
  std::vector<std::string> requests;
  for (std::uint64_t id = 1; id <= 12; ++id) {
    requests.push_back(make_request(gen, id));
  }

  auto collect = [&](int threads) {
    ServerConfig config;
    config.threads = threads;
    JobServer server(service, config);
    std::string error;
    EXPECT_TRUE(server.listen(&error)) << error;
    server.start();
    Client client;
    EXPECT_TRUE(client.connect("127.0.0.1", server.port(), &error)) << error;
    std::vector<std::string> responses;
    for (const std::string& request : requests) {
      std::string response;
      EXPECT_TRUE(client.roundtrip(request, &response));
      responses.push_back(response);
    }
    client.close();
    server.stop_and_join();
    return responses;
  };

  const std::vector<std::string> single = collect(1);
  const std::vector<std::string> eight = collect(8);
  ASSERT_EQ(single.size(), eight.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i], eight[i]) << "request " << i;
    EXPECT_NE(single[i].find("\"ok\":true"), std::string::npos) << single[i];
  }
}

TEST(SvcServerDeterminismTest, HandlePredictBatchMatchesSerial) {
  ServiceConfig service_config;
  service_config.train_designs = 2;
  service_config.train_epochs = 2;
  Service service(service_config);
  service.initialize();

  // Predicts across families/sizes/jobs, with duplicates (the dedup path)
  // and one echo (the non-predict fallback inside the batch handler).
  std::vector<Request> requests;
  const struct {
    const char* family;
    int size;
    core::JobKind job;
  } predicts[] = {
      {"adder", 16, core::JobKind::kSynthesis},
      {"adder", 24, core::JobKind::kSta},
      {"multiplier", 16, core::JobKind::kPlacement},
      {"adder", 16, core::JobKind::kSynthesis},  // duplicate of #0
      {"adder", 16, core::JobKind::kRouting},
  };
  std::uint64_t id = 1;
  for (const auto& p : predicts) {
    Request request;
    request.type = RequestType::kPredict;
    request.id = id++;
    request.family = p.family;
    request.size = p.size;
    request.job = p.job;
    requests.push_back(request);
  }
  requests.push_back(echo_request(id++));

  // Batch first (cold cache: exercises the merged forward pass), then the
  // serial path (cache hits) — both must produce the same bytes.
  const std::vector<std::string> batched =
      service.handle_predict_batch(requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::string serial = service.handle(requests[i]);
    EXPECT_EQ(batched[i], serial) << "request " << i;
    EXPECT_NE(batched[i].find("\"ok\":true"), std::string::npos)
        << batched[i];
  }

  // A fresh uncached service must also agree — proves the equality above
  // is not an artifact of both paths reading the same cache entry.
  Service fresh(service_config);
  fresh.initialize();
  const std::vector<std::string> cold = fresh.handle_predict_batch(requests);
  ASSERT_EQ(cold.size(), batched.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(cold[i], batched[i]) << "request " << i;
  }
}

TEST(SvcServerDeterminismTest, MicroBatchingByteIdentical) {
  ServiceConfig service_config;
  service_config.train_designs = 2;
  service_config.train_epochs = 2;
  Service service(service_config);
  service.initialize();

  auto run = [&](int batch_max, double linger_ms) {
    ServerConfig config;
    config.threads = 2;
    config.batch_max = batch_max;
    config.batch_linger_ms = linger_ms;
    JobServer server(service, config);
    std::string error;
    EXPECT_TRUE(server.listen(&error)) << error;
    server.start();

    LoadgenConfig gen;
    gen.port = server.port();
    gen.mix = "predict-heavy";
    gen.seed = 17;
    gen.requests = 32;
    gen.connections = 4;
    const LoadgenReport report = run_loadgen(gen);
    server.stop_and_join();
    EXPECT_EQ(report.transport_errors, 0u);
    EXPECT_EQ(report.sent, 32u);
    return report.export_json();
  };

  // Micro-batching is pure scheduling: the deterministic export (counts +
  // response digest) must not change with batching on, off, or lingering.
  const std::string unbatched = run(1, 0.0);
  const std::string batched = run(8, 0.0);
  const std::string lingering = run(8, 2.0);
  EXPECT_EQ(unbatched, batched);
  EXPECT_EQ(unbatched, lingering);
}

// ------------------------------------------------------------- loadgen --

TEST(SvcLoadgenTest, MakeRequestIsPureFunctionOfSeedAndId) {
  LoadgenConfig a;
  a.seed = 3;
  a.mix = "mixed";
  LoadgenConfig b = a;
  for (std::uint64_t id = 1; id <= 50; ++id) {
    EXPECT_EQ(make_request(a, id), make_request(b, id));
  }
  LoadgenConfig other = a;
  other.seed = 4;
  int differing = 0;
  for (std::uint64_t id = 1; id <= 50; ++id) {
    if (make_request(a, id) != make_request(other, id)) ++differing;
  }
  EXPECT_GT(differing, 0);  // different seeds give a different stream
}

TEST(SvcLoadgenTest, GeneratedRequestsParseValid) {
  LoadgenConfig config;
  config.mix = "mixed";
  config.seed = 9;
  config.deadline_ms = 250.0;
  for (std::uint64_t id = 1; id <= 40; ++id) {
    const std::string text = make_request(config, id);
    const JsonParseResult json = parse_json(text);
    ASSERT_TRUE(json.ok) << text;
    const ParsedRequest parsed = parse_request(json.value);
    EXPECT_TRUE(parsed.ok) << text << " -> " << parsed.error;
    EXPECT_EQ(parsed.request.id, id);
    EXPECT_EQ(parsed.request.deadline_ms, 250.0);
  }
}

TEST(SvcLoadgenTest, SameSeedRunsExportIdenticalBytes) {
  Service service;  // echo mix: no training needed
  ServerConfig config;
  config.threads = 4;
  JobServer server(service, config);
  std::string error;
  ASSERT_TRUE(server.listen(&error)) << error;
  server.start();

  LoadgenConfig gen;
  gen.port = server.port();
  gen.mix = "echo";
  gen.seed = 21;
  gen.requests = 30;
  gen.connections = 3;
  const LoadgenReport first = run_loadgen(gen);
  const LoadgenReport second = run_loadgen(gen);
  server.stop_and_join();

  EXPECT_EQ(first.sent, 30u);
  EXPECT_EQ(first.ok, 30u);
  EXPECT_EQ(first.transport_errors, 0u);
  EXPECT_EQ(first.export_json(), second.export_json());
  EXPECT_NE(first.export_json().find("\"digest\""), std::string::npos);
}

TEST(SvcLoadgenTest, OpenLoopMatchesClosedLoopDigest) {
  Service service;
  JobServer server(service, ServerConfig{});
  std::string error;
  ASSERT_TRUE(server.listen(&error)) << error;
  server.start();

  LoadgenConfig gen;
  gen.port = server.port();
  gen.mix = "echo";
  gen.seed = 33;
  gen.requests = 20;
  gen.connections = 2;
  gen.mode = LoadMode::kClosed;
  const LoadgenReport closed = run_loadgen(gen);
  gen.mode = LoadMode::kOpen;
  gen.qps = 500.0;
  const LoadgenReport open = run_loadgen(gen);
  server.stop_and_join();

  // Same ids, same responses — the digest is schedule-independent.
  EXPECT_EQ(closed.export_json(), open.export_json());
}

}  // namespace
}  // namespace edacloud::svc
