// End-to-end integration: the complete Fig. 1 workflow and the extension
// paths, exercised together on real designs with cross-module invariants.

#include <gtest/gtest.h>

#include "core/batch.hpp"
#include "core/characterize.hpp"
#include "core/optimizer.hpp"
#include "core/report.hpp"
#include "nl/aiger.hpp"
#include "nl/netlist_sim.hpp"
#include "nl/verilog.hpp"
#include "route/layers.hpp"
#include "sim/simulator.hpp"
#include "sta/sizing.hpp"
#include "synth/buffering.hpp"
#include "util/rng.hpp"
#include "workloads/registry.hpp"

namespace edacloud {
namespace {

const nl::CellLibrary& library() {
  static const nl::CellLibrary lib = nl::make_generic_14nm_library();
  return lib;
}

TEST(IntegrationTest, CharacterizeOptimizeReportPipeline) {
  const nl::Aig design = workloads::gen_mem_ctrl(4, 7);
  core::Characterizer characterizer(library());
  const auto characterization = characterizer.characterize(design);

  core::RuntimeLadders ladders{};
  for (core::JobKind job : core::kAllJobs) {
    const auto* row = characterization.find(
        job, core::recommended_family(job));
    ASSERT_NE(row, nullptr);
    ladders[static_cast<int>(job)] = row->runtime_seconds;
    // Runtimes are positive and weakly improving with vCPUs (within 10%).
    for (int i = 0; i < 4; ++i) {
      EXPECT_GT(row->runtime_seconds[i], 0.0);
    }
    EXPECT_LE(row->runtime_seconds[3], row->runtime_seconds[0] * 1.1);
  }

  core::DeploymentOptimizer optimizer;
  const auto stages = optimizer.build_stages(ladders);
  const double fastest = cloud::fastest_completion_seconds(stages);
  core::ReportInputs inputs;
  inputs.characterization = characterization;
  inputs.deadline_seconds = fastest * 1.4;
  inputs.plan = optimizer.optimize(ladders, inputs.deadline_seconds);
  inputs.savings = optimizer.savings(ladders, inputs.deadline_seconds);
  ASSERT_TRUE(inputs.plan.feasible);
  EXPECT_LE(inputs.plan.total_runtime_seconds,
            inputs.deadline_seconds + 1.0);
  EXPECT_LE(inputs.plan.total_cost_usd,
            inputs.savings.over_provision_cost_usd + 1e-9);

  const std::string markdown = core::markdown_report(inputs);
  EXPECT_NE(markdown.find("Deployment plan"), std::string::npos);
}

TEST(IntegrationTest, PhysicalPipelineInvariantsHold) {
  // synthesis -> buffering -> sizing -> placement -> routing -> layers,
  // with functional equivalence maintained throughout.
  const nl::Aig design = workloads::gen_alu(12);
  synth::SynthesisEngine synthesis(library());
  const nl::Netlist mapped =
      synthesis.synthesize(design, synth::default_recipe()).netlist;

  const auto buffered = synth::buffer_high_fanout(mapped, {6});
  sta::StaOptions timing_options;
  sta::StaEngine probe;
  timing_options.clock_period_ps =
      probe.run(buffered.netlist, nullptr, {}).critical_path_ps * 0.95;
  sta::StaEngine engine(timing_options);
  const auto sized = sta::size_gates(buffered.netlist, nullptr, engine);

  // Function preserved through the whole chain.
  util::Rng rng(17);
  std::vector<std::uint64_t> words(design.input_count());
  for (auto& w : words) w = rng();
  EXPECT_EQ(design.simulate(words), nl::simulate(sized.netlist, words));

  place::QuadraticPlacer placer;
  const auto placement = placer.place(sized.netlist);
  route::GridRouter router;
  const auto routing = router.run(sized.netlist, placement, {});
  EXPECT_EQ(routing.routed_count, routing.connection_count);

  const auto layers = route::assign_layers(routing);
  EXPECT_GT(layers.via_count, 0u);
}

TEST(IntegrationTest, InterchangeFormatsComposeAcrossTheFlow) {
  // AIGER in -> synthesis -> Verilog out -> parse -> simulate == original.
  const nl::Aig original = workloads::gen_comparator(6);
  const auto aig_round = nl::parse_aiger(nl::write_aiger(original));
  ASSERT_TRUE(aig_round.ok);

  synth::SynthesisEngine synthesis(library());
  const nl::Netlist netlist =
      synthesis.synthesize(aig_round.aig, synth::default_recipe()).netlist;
  const auto verilog_round =
      nl::parse_verilog(nl::write_verilog(netlist), library());
  ASSERT_TRUE(verilog_round.ok) << verilog_round.error;

  util::Rng rng(21);
  std::vector<std::uint64_t> words(original.input_count());
  for (auto& w : words) w = rng();
  EXPECT_EQ(original.simulate(words),
            nl::simulate(verilog_round.netlist, words));
}

TEST(IntegrationTest, BatchPlanNeverWorseThanIndependentPlans) {
  // Joint optimization with a shared deadline must cost no more than
  // splitting the deadline proportionally across designs.
  core::Characterizer characterizer(library());
  std::vector<core::BatchDesign> designs;
  std::vector<core::RuntimeLadders> ladders_list;
  for (const char* family : {"adder", "decoder"}) {
    workloads::BenchmarkSpec spec;
    spec.family = family;
    spec.size = family == std::string("adder") ? 32 : 6;
    spec.seed = 5;
    const nl::Aig aig = workloads::generate(spec);
    const auto report = characterizer.characterize(aig);
    core::BatchDesign design;
    design.name = family;
    for (core::JobKind job : core::kAllJobs) {
      const auto* row = report.find(job, core::recommended_family(job));
      ASSERT_NE(row, nullptr);
      design.ladders[static_cast<int>(job)] = row->runtime_seconds;
    }
    ladders_list.push_back(design.ladders);
    designs.push_back(std::move(design));
  }

  core::BatchPlanner planner;
  core::DeploymentOptimizer optimizer;
  const auto stages = planner.build_stages(designs);
  const double fastest = cloud::fastest_completion_seconds(stages);
  const double deadline = fastest * 1.5;

  const auto joint = planner.plan(designs, deadline);
  ASSERT_TRUE(joint.feasible);

  // Proportional split baseline.
  double split_cost = 0.0;
  bool split_feasible = true;
  for (const auto& ladders : ladders_list) {
    const auto design_stages = optimizer.build_stages(ladders);
    const double share =
        deadline * cloud::fastest_completion_seconds(design_stages) /
        fastest;
    const auto plan = optimizer.optimize(ladders, share);
    if (!plan.feasible) {
      split_feasible = false;
      break;
    }
    split_cost += plan.total_cost_usd;
  }
  if (split_feasible) {
    EXPECT_LE(joint.total_cost_usd, split_cost + 1e-9);
  }
}

TEST(IntegrationTest, MeasuredActivityTightensPowerEstimate) {
  const nl::Aig design = workloads::gen_parity(32);
  synth::SynthesisEngine synthesis(library());
  const nl::Netlist netlist =
      synthesis.synthesize(design, synth::default_recipe()).netlist;

  sim::SimulationEngine simulator;
  const auto activity = simulator.run(netlist, {});

  sta::StaOptions assumed;  // default activity_factor = 0.1
  sta::StaOptions measured = assumed;
  measured.activity_factor = activity.average_toggle_rate;
  const double assumed_power =
      sta::StaEngine(assumed).run(netlist, nullptr, {}).dynamic_power_uw;
  const double measured_power =
      sta::StaEngine(measured).run(netlist, nullptr, {}).dynamic_power_uw;
  // XOR trees toggle roughly half the time under random vectors — far
  // above the 10% textbook default.
  EXPECT_GT(measured_power, assumed_power * 2.0);
}

}  // namespace
}  // namespace edacloud
