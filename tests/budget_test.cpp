#include <gtest/gtest.h>

#include "cloud/mckp.hpp"
#include "core/predictor.hpp"
#include "util/rng.hpp"

namespace edacloud::cloud {
namespace {

std::vector<MckpStage> simple_instance() {
  std::vector<MckpStage> stages(2);
  stages[0].items = {{100, 1.0, "a1"}, {40, 3.0, "a2"}};
  stages[1].items = {{200, 2.0, "b1"}, {80, 5.0, "b2"}};
  return stages;
}

TEST(BudgetTest, GenerousBudgetBuysTheFastestPlan) {
  const auto selection = fastest_within_budget(simple_instance(), 100.0);
  ASSERT_TRUE(selection.feasible);
  EXPECT_DOUBLE_EQ(selection.total_time_seconds, 120.0);  // all-fastest
}

TEST(BudgetTest, TightBudgetBuysTheCheapestPlan) {
  const auto selection = fastest_within_budget(simple_instance(), 3.0);
  ASSERT_TRUE(selection.feasible);
  EXPECT_DOUBLE_EQ(selection.total_cost_usd, 3.0);
  EXPECT_DOUBLE_EQ(selection.total_time_seconds, 300.0);
}

TEST(BudgetTest, IntermediateBudgetLandsBetween) {
  // $5 affords (40,$3)+(200,$2) = 240 s but not the $8 all-fastest.
  const auto selection = fastest_within_budget(simple_instance(), 5.0);
  ASSERT_TRUE(selection.feasible);
  EXPECT_LE(selection.total_cost_usd, 5.0 + 1e-9);
  EXPECT_DOUBLE_EQ(selection.total_time_seconds, 240.0);
}

TEST(BudgetTest, ImpossibleBudgetIsInfeasible) {
  EXPECT_FALSE(fastest_within_budget(simple_instance(), 1.0).feasible);
}

TEST(BudgetTest, TimeMonotoneInBudget) {
  util::Rng rng(123);
  std::vector<MckpStage> stages(3);
  for (auto& stage : stages) {
    double time = rng.next_double(100.0, 900.0);
    double cost = rng.next_double(0.2, 1.0);
    for (int j = 0; j < 4; ++j) {
      stage.items.push_back({time, cost, ""});
      time *= 0.6;
      cost *= 1.4;
    }
  }
  double previous_time = 1e300;
  for (double budget : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    const auto selection = fastest_within_budget(stages, budget);
    if (!selection.feasible) continue;
    EXPECT_LE(selection.total_time_seconds, previous_time + 1e-9);
    previous_time = selection.total_time_seconds;
  }
}

}  // namespace
}  // namespace edacloud::cloud

namespace edacloud::core {
namespace {

TEST(PredictorPersistenceTest, SaveLoadRoundTrip) {
  // A tiny synthetic-dataset train, then dump + restore + compare.
  PredictorOptions options;
  options.gcn = ml::GcnConfig::fast();
  options.gcn.hidden1 = 8;
  options.gcn.hidden2 = 8;
  options.gcn.fc = 8;
  options.gcn.epochs = 5;

  Dataset dataset;
  util::Rng rng(7);
  for (std::uint32_t d = 0; d < 12; ++d) {
    for (JobKind job : kAllJobs) {
      ml::GraphSample sample;
      const std::size_t n = 8 + 2 * d;
      std::vector<std::pair<nl::VertexId, nl::VertexId>> edges;
      for (std::size_t i = 1; i < n; ++i) {
        edges.emplace_back(static_cast<nl::VertexId>(rng.next_below(i)),
                           static_cast<nl::VertexId>(i));
      }
      sample.in_neighbors = nl::transpose(nl::build_csr(n, edges));
      sample.features = ml::Matrix(n, 20);
      for (std::size_t v = 0; v < n; ++v) {
        sample.features.at(v, 19) = 1.0;
      }
      const double base = std::log(static_cast<double>(n));
      sample.log_runtimes = {base, base - 0.3, base - 0.5, base - 0.6};
      sample.family_id = d;
      dataset.samples[static_cast<int>(job)].push_back(std::move(sample));
    }
  }
  dataset.design_count = 12;
  dataset.netlist_count = 12;

  RuntimePredictor predictor(options);
  predictor.train(dataset);
  const std::string blob = predictor.save();

  RuntimePredictor restored(options);
  ASSERT_TRUE(restored.load(blob));
  for (JobKind job : kAllJobs) {
    ASSERT_EQ(restored.trained(job), predictor.trained(job));
    if (!predictor.trained(job)) continue;
    const auto& sample = dataset.samples[static_cast<int>(job)].front();
    const auto a = predictor.predict(job, sample);
    const auto b = restored.predict(job, sample);
    for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  }
}

TEST(PredictorPersistenceTest, RejectsGarbage) {
  RuntimePredictor predictor;
  EXPECT_FALSE(predictor.load("nonsense"));
  EXPECT_FALSE(predictor.load(""));
}

}  // namespace
}  // namespace edacloud::core
