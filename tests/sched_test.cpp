#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "nl/cell_library.hpp"
#include "sched/autoscaler.hpp"
#include "sched/event_queue.hpp"
#include "sched/fleet.hpp"
#include "sched/job.hpp"
#include "sched/load_gen.hpp"
#include "sched/policy.hpp"
#include "sched/simulator.hpp"

namespace edacloud::sched {
namespace {

// ---- EventQueue -------------------------------------------------------------

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  queue.push(3.0, EventType::kTaskComplete);
  queue.push(1.0, EventType::kJobArrival);
  queue.push(2.0, EventType::kVmBootComplete);
  EXPECT_EQ(queue.pop().type, EventType::kJobArrival);
  EXPECT_EQ(queue.pop().type, EventType::kVmBootComplete);
  EXPECT_EQ(queue.pop().type, EventType::kTaskComplete);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, SimultaneousEventsFireInInsertionOrder) {
  EventQueue queue;
  for (std::uint64_t i = 0; i < 10; ++i) {
    queue.push(5.0, EventType::kJobArrival, i);
  }
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(queue.pop().job_id, i);
  }
}

// ---- JobTemplate ------------------------------------------------------------

TEST(JobTemplateTest, BuiltinTemplatesAreOrderedBySize) {
  const auto& templates = builtin_templates();
  ASSERT_EQ(templates.size(), 3u);
  EXPECT_LT(templates[0].best_total_runtime_seconds(),
            templates[1].best_total_runtime_seconds());
  EXPECT_LT(templates[1].best_total_runtime_seconds(),
            templates[2].best_total_runtime_seconds());
}

TEST(JobTemplateTest, RuntimeLaddersDecreaseWithVcpus) {
  for (const auto& tmpl : builtin_templates()) {
    for (core::JobKind job : core::kAllJobs) {
      double previous = 1e18;
      for (const int vcpus : perf::kVcpuOptions) {
        const double runtime =
            tmpl.runtime(job, perf::InstanceFamily::kGeneralPurpose, vcpus);
        EXPECT_GT(runtime, 0.0);
        EXPECT_LE(runtime, previous);
        previous = runtime;
      }
    }
  }
}

TEST(JobTemplateTest, UnmeasuredFamilyFallsBackToGeneralPurpose) {
  const auto& tmpl = builtin_templates()[0];
  EXPECT_DOUBLE_EQ(
      tmpl.runtime(core::JobKind::kSynthesis,
                   perf::InstanceFamily::kComputeOptimized, 4),
      tmpl.runtime(core::JobKind::kSynthesis,
                   perf::InstanceFamily::kGeneralPurpose, 4));
}

TEST(JobTemplateTest, RecommendedLaddersMatchRecommendedFamilies) {
  const auto& tmpl = builtin_templates()[2];
  const auto ladders = tmpl.recommended_ladders();
  for (core::JobKind job : core::kAllJobs) {
    const auto family = core::recommended_family(job);
    const auto idx = static_cast<std::size_t>(job);
    for (std::size_t i = 0; i < perf::kVcpuOptions.size(); ++i) {
      EXPECT_DOUBLE_EQ(ladders[idx][i],
                       tmpl.runtime(job, family, perf::kVcpuOptions[i]));
    }
  }
}

TEST(JobTemplateTest, FromDesignsCarriesCharacterizedRuntimes) {
  const auto library = nl::make_generic_14nm_library();
  const std::vector<workloads::NamedDesign> designs = {
      {"tiny", workloads::BenchmarkSpec{"dynamic_node", 4, 5}}};
  const auto templates = templates_from_designs(designs, library);
  ASSERT_EQ(templates.size(), 1u);
  EXPECT_EQ(templates[0].name, "tiny");
  EXPECT_GT(templates[0].best_total_runtime_seconds(), 0.0);
  EXPECT_GT(templates[0].runtime(core::JobKind::kRouting,
                                 perf::InstanceFamily::kMemoryOptimized, 8),
            0.0);
}

// ---- LoadGenerator ----------------------------------------------------------

TEST(LoadGeneratorTest, DeterministicPerSeed) {
  LoadConfig config;
  config.mix = uniform_mix();
  LoadGenerator a(config, &builtin_templates(), 7);
  LoadGenerator b(config, &builtin_templates(), 7);
  double ta = 0.0, tb = 0.0;
  for (std::uint64_t i = 0; i < 50; ++i) {
    ta = a.next_arrival_after(ta);
    tb = b.next_arrival_after(tb);
    EXPECT_DOUBLE_EQ(ta, tb);
    const Job ja = a.make_job(i, ta);
    const Job jb = b.make_job(i, tb);
    EXPECT_EQ(ja.template_index, jb.template_index);
    EXPECT_DOUBLE_EQ(ja.scale, jb.scale);
    EXPECT_DOUBLE_EQ(ja.slo_deadline, jb.slo_deadline);
  }
}

TEST(LoadGeneratorTest, MeanInterArrivalMatchesRate) {
  LoadConfig config;
  config.arrival_rate_per_hour = 3600.0;  // one per second
  config.mix = uniform_mix();
  LoadGenerator gen(config, &builtin_templates(), 3);
  double t = 0.0;
  constexpr int kArrivals = 20000;
  for (int i = 0; i < kArrivals; ++i) t = gen.next_arrival_after(t);
  EXPECT_NEAR(t / kArrivals, 1.0, 0.03);
}

TEST(LoadGeneratorTest, BurstyMixConcentratesArrivalsInsideBursts) {
  LoadConfig config;
  config.arrival_rate_per_hour = 720.0;
  config.mix = bursty_mix();
  LoadGenerator gen(config, &builtin_templates(), 5);
  int in_burst = 0, outside = 0;
  double t = 0.0;
  while (t < 100 * config.mix.burst_period_seconds) {
    t = gen.next_arrival_after(t);
    const double phase = std::fmod(t, config.mix.burst_period_seconds);
    if (phase < config.mix.burst_duty * config.mix.burst_period_seconds) {
      ++in_burst;
    } else {
      ++outside;
    }
  }
  // 25% of the timeline at 4x rate carries more traffic than the baseline
  // 75%; uniform arrivals would put only ~25% of jobs inside the window.
  const double fraction =
      static_cast<double>(in_burst) / static_cast<double>(in_burst + outside);
  EXPECT_GT(fraction, 0.45);
}

TEST(LoadGeneratorTest, SkewedMixDrawsMostlySmallJobs) {
  LoadConfig config;
  config.mix = skewed_mix();
  LoadGenerator gen(config, &builtin_templates(), 11);
  int small = 0;
  constexpr int kJobs = 2000;
  for (std::uint64_t i = 0; i < kJobs; ++i) {
    if (gen.make_job(i, 0.0).template_index == 0) ++small;
  }
  EXPECT_NEAR(static_cast<double>(small) / kJobs, 0.80, 0.03);
}

TEST(LoadGeneratorTest, SloDeadlineScalesWithBestCaseRuntime) {
  LoadConfig config;
  config.slo_multiplier = 4.0;
  config.scale_sigma = 0.0;  // scale == 1 exactly
  config.mix = uniform_mix();
  LoadGenerator gen(config, &builtin_templates(), 13);
  for (std::uint64_t i = 0; i < 100; ++i) {
    const Job job = gen.make_job(i, 10.0);
    const double best =
        builtin_templates()[static_cast<std::size_t>(job.template_index)]
            .best_total_runtime_seconds();
    EXPECT_DOUBLE_EQ(job.slo_deadline, 10.0 + 4.0 * best);
  }
}

TEST(LoadGeneratorTest, MixByNameRoundTripsAndRejectsUnknown) {
  EXPECT_EQ(mix_by_name("uniform").name, "uniform");
  EXPECT_EQ(mix_by_name("skewed").name, "skewed");
  EXPECT_EQ(mix_by_name("bursty").name, "bursty");
  EXPECT_THROW(mix_by_name("lumpy"), std::invalid_argument);
}

// ---- Fleet ------------------------------------------------------------------

TEST(FleetTest, BootAndBillingLifecycle) {
  FleetConfig config;
  config.boot_seconds = 60.0;
  Fleet fleet(config);
  util::Rng rng(1);
  const PoolKey pool{perf::InstanceFamily::kGeneralPurpose, 4};
  const int id = fleet.launch(pool, 0.0, rng);
  EXPECT_EQ(fleet.vm(id).state, VmInstance::State::kBooting);
  EXPECT_EQ(fleet.idle_count(pool), 0);
  fleet.mark_ready(id);
  EXPECT_EQ(fleet.idle_count(pool), 1);

  fleet.assign(id, 42, 100.0, 50.0);
  EXPECT_EQ(fleet.busy_count(pool), 1);
  fleet.release(id, 150.0);
  EXPECT_DOUBLE_EQ(fleet.vm(id).busy_seconds, 50.0);

  fleet.retire(id, 200.0);
  EXPECT_EQ(fleet.alive_count(pool), 0);
  // 200 billed seconds of a 4-vCPU general-purpose machine.
  const double rate = fleet.hourly_rate_usd(fleet.vm(id));
  EXPECT_NEAR(fleet.total_cost_usd(500.0), rate * 200.0 / 3600.0, 1e-9);
  EXPECT_DOUBLE_EQ(fleet.alive_seconds_total(500.0), 200.0);
}

TEST(FleetTest, SpotInstancesGetDiscountedRate) {
  FleetConfig config;
  config.spot_fraction = 1.0;
  Fleet fleet(config);
  util::Rng rng(1);
  const PoolKey pool{perf::InstanceFamily::kGeneralPurpose, 8};
  const int id = fleet.launch(pool, 0.0, rng);
  ASSERT_TRUE(fleet.vm(id).spot);

  Fleet on_demand(FleetConfig{});
  util::Rng rng2(1);
  const int od_id = on_demand.launch(pool, 0.0, rng2);
  ASSERT_FALSE(on_demand.vm(od_id).spot);
  EXPECT_NEAR(fleet.hourly_rate_usd(fleet.vm(id)),
              on_demand.hourly_rate_usd(on_demand.vm(od_id)) *
                  config.spot.price_multiplier,
              1e-12);
}

TEST(FleetTest, IdleListIsSortedAscending) {
  Fleet fleet(FleetConfig{});
  util::Rng rng(1);
  const PoolKey pool{perf::InstanceFamily::kMemoryOptimized, 2};
  for (int i = 0; i < 4; ++i) fleet.launch(pool, 0.0, rng, /*warm=*/true);
  const auto idle = fleet.idle_in(pool);
  ASSERT_EQ(idle.size(), 4u);
  for (std::size_t i = 1; i < idle.size(); ++i) {
    EXPECT_LT(idle[i - 1], idle[i]);
  }
}

// ---- Autoscaler -------------------------------------------------------------

TEST(AutoscalerTest, ScalesUpUnderQueuedDemand) {
  AutoscalerConfig config;
  config.target_utilization = 0.5;
  Autoscaler scaler(config);
  const PoolKey pool{perf::InstanceFamily::kGeneralPurpose, 4};
  const PoolDemand demand{.queued = 4, .busy = 2, .alive = 2};
  EXPECT_GT(scaler.decide(pool, demand, 1000.0), 0);
}

TEST(AutoscalerTest, UpCooldownBlocksImmediateRepeat) {
  AutoscalerConfig config;
  config.scale_up_cooldown = 30.0;
  config.max_step_up = 1;
  Autoscaler scaler(config);
  const PoolKey pool{perf::InstanceFamily::kGeneralPurpose, 1};
  const PoolDemand demand{.queued = 10, .busy = 0, .alive = 0};
  EXPECT_EQ(scaler.decide(pool, demand, 100.0), 1);
  EXPECT_EQ(scaler.decide(pool, demand, 110.0), 0);  // still cooling
  EXPECT_EQ(scaler.decide(pool, demand, 131.0), 1);
}

TEST(AutoscalerTest, ScalesDownIdleCapacityAfterCooldown) {
  AutoscalerConfig config;
  config.scale_down_cooldown = 60.0;
  Autoscaler scaler(config);
  const PoolKey pool{perf::InstanceFamily::kGeneralPurpose, 1};
  const PoolDemand demand{.queued = 0, .busy = 0, .alive = 5};
  EXPECT_LT(scaler.decide(pool, demand, 1000.0), 0);
  EXPECT_EQ(scaler.decide(pool, demand, 1010.0), 0);  // cooling down
}

TEST(AutoscalerTest, RespectsMaxVms) {
  AutoscalerConfig config;
  config.max_vms = 4;
  Autoscaler scaler(config);
  const PoolKey pool{perf::InstanceFamily::kGeneralPurpose, 1};
  const PoolDemand demand{.queued = 100, .busy = 4, .alive = 4};
  EXPECT_EQ(scaler.decide(pool, demand, 100.0), 0);
}

// ---- Policies ---------------------------------------------------------------

TEST(PolicyTest, FactoryKnowsAllNamesAndRejectsUnknown) {
  EXPECT_EQ(make_policy("fifo")->name(), "fifo");
  EXPECT_EQ(make_policy("cost")->name(), "cost");
  EXPECT_EQ(make_policy("edf")->name(), "edf");
  EXPECT_THROW(make_policy("lifo"), std::invalid_argument);
}

TEST(PolicyTest, FifoRoutesEverythingToTheDefaultPoolHead) {
  FifoAnyPolicy policy;
  Job job;
  const auto plan = policy.plan(job, builtin_templates()[0]);
  const PoolKey big{perf::InstanceFamily::kGeneralPurpose, 8};
  for (const auto& pool : plan) {
    EXPECT_EQ(pool, big);
  }
  std::vector<TaskRef> queue(3);
  EXPECT_EQ(policy.pick(queue, {perf::InstanceFamily::kMemoryOptimized, 1}),
            0u);
  EXPECT_EQ(policy.pick({}, big), kNoTask);
}

TEST(PolicyTest, CostAwareLooseSloPicksFewerVcpusThanTightSlo) {
  CostAwarePolicy policy;
  const auto& tmpl = builtin_templates()[2];
  Job loose;
  loose.arrival_time = 0.0;
  loose.slo_deadline = 8.0 * tmpl.best_total_runtime_seconds();
  Job tight;
  tight.arrival_time = 0.0;
  tight.slo_deadline = 1.05 * tmpl.best_total_runtime_seconds();
  int loose_vcpus = 0, tight_vcpus = 0;
  for (const auto& pool : policy.plan(loose, tmpl)) loose_vcpus += pool.vcpus;
  for (const auto& pool : policy.plan(tight, tmpl)) tight_vcpus += pool.vcpus;
  EXPECT_LT(loose_vcpus, tight_vcpus);
}

TEST(PolicyTest, CostAwareWaitsForItsOwnPool) {
  CostAwarePolicy policy;
  std::vector<TaskRef> queue(2);
  queue[0].preferred = {perf::InstanceFamily::kGeneralPurpose, 1};
  queue[0].seq = 0;
  queue[1].preferred = {perf::InstanceFamily::kMemoryOptimized, 4};
  queue[1].seq = 1;
  EXPECT_EQ(policy.pick(queue, {perf::InstanceFamily::kMemoryOptimized, 4}),
            1u);
  EXPECT_EQ(policy.pick(queue, {perf::InstanceFamily::kMemoryOptimized, 8}),
            kNoTask);
}

TEST(PolicyTest, EdfPrefersEarliestDeadlineAndBackfills) {
  EdfBackfillPolicy policy;
  const PoolKey mine{perf::InstanceFamily::kGeneralPurpose, 2};
  const PoolKey other{perf::InstanceFamily::kMemoryOptimized, 8};
  std::vector<TaskRef> queue(3);
  queue[0] = TaskRef{0, 0, 0.0, 500.0, mine, 0};
  queue[1] = TaskRef{1, 0, 0.0, 100.0, mine, 1};
  queue[2] = TaskRef{2, 0, 0.0, 50.0, other, 2};
  // A matching VM drains its own pool EDF-first even when another pool's
  // task is more urgent...
  EXPECT_EQ(policy.pick(queue, mine), 1u);
  // ...but a VM with no matching work backfills the most urgent task.
  const PoolKey idle_pool{perf::InstanceFamily::kGeneralPurpose, 4};
  EXPECT_EQ(policy.pick(queue, idle_pool), 2u);
}

// ---- Simulator end-to-end ---------------------------------------------------

SimConfig small_sim(std::uint64_t seed, const TrafficMix& mix,
                    double rate_per_hour) {
  SimConfig config;
  config.seed = seed;
  config.duration_seconds = 3600.0;
  config.load.arrival_rate_per_hour = rate_per_hour;
  config.load.slo_multiplier = 4.0;
  config.load.mix = mix;
  config.fleet.boot_seconds = 45.0;
  config.autoscaler.interval_seconds = 15.0;
  config.warm_pools = {
      {{perf::InstanceFamily::kGeneralPurpose, 8}, 2},
      {{perf::InstanceFamily::kGeneralPurpose, 1}, 2},
      {{perf::InstanceFamily::kMemoryOptimized, 1}, 2},
  };
  return config;
}

TEST(SimulatorTest, CompletesEveryAdmittedJob) {
  FleetSimulator sim(small_sim(3, uniform_mix(), 60.0), builtin_templates(),
                     make_policy("fifo"));
  const FleetMetrics m = sim.run();
  EXPECT_GT(m.jobs_submitted, 0u);
  EXPECT_EQ(m.jobs_completed, m.jobs_submitted);
  EXPECT_GE(m.tasks_dispatched,
            m.jobs_completed * static_cast<std::uint64_t>(core::kJobCount));
  EXPECT_GT(m.utilization, 0.0);
  EXPECT_GT(m.cost_per_job_usd, 0.0);
}

TEST(SimulatorTest, SameSeedGivesBitIdenticalMetrics) {
  const auto run_once = [] {
    FleetSimulator sim(small_sim(99, skewed_mix(), 120.0),
                       builtin_templates(), make_policy("cost"));
    return sim.run();
  };
  const FleetMetrics a = run_once();
  const FleetMetrics b = run_once();
  EXPECT_EQ(a.jobs_submitted, b.jobs_submitted);
  EXPECT_EQ(a.jobs_completed, b.jobs_completed);
  EXPECT_EQ(a.tasks_dispatched, b.tasks_dispatched);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.slo_violations, b.slo_violations);
  EXPECT_EQ(a.peak_vms, b.peak_vms);
  EXPECT_EQ(a.vms_launched, b.vms_launched);
  // Bit-identical doubles, not just approximately equal.
  EXPECT_EQ(a.latency_p50, b.latency_p50);
  EXPECT_EQ(a.latency_p95, b.latency_p95);
  EXPECT_EQ(a.latency_p99, b.latency_p99);
  EXPECT_EQ(a.mean_latency, b.mean_latency);
  EXPECT_EQ(a.mean_queue_wait, b.mean_queue_wait);
  EXPECT_EQ(a.slowdown_p99, b.slowdown_p99);
  EXPECT_EQ(a.utilization, b.utilization);
  EXPECT_EQ(a.total_cost_usd, b.total_cost_usd);
  EXPECT_EQ(a.cost_per_job_usd, b.cost_per_job_usd);
  EXPECT_EQ(a.drained_at_seconds, b.drained_at_seconds);
}

TEST(SimulatorTest, DifferentSeedsDiverge) {
  const auto run_seed = [](std::uint64_t seed) {
    FleetSimulator sim(small_sim(seed, uniform_mix(), 90.0),
                       builtin_templates(), make_policy("fifo"));
    return sim.run();
  };
  const FleetMetrics a = run_seed(1);
  const FleetMetrics b = run_seed(2);
  EXPECT_NE(a.total_cost_usd, b.total_cost_usd);
}

TEST(SimulatorTest, CostAwareIsStrictlyCheaperThanFifoOnSkewedMix) {
  const auto run_policy = [](const std::string& name) {
    FleetSimulator sim(small_sim(7, skewed_mix(), 180.0),
                       builtin_templates(), make_policy(name));
    return sim.run();
  };
  const FleetMetrics fifo = run_policy("fifo");
  const FleetMetrics cost = run_policy("cost");
  ASSERT_GT(fifo.jobs_completed, 0u);
  ASSERT_GT(cost.jobs_completed, 0u);
  EXPECT_LT(cost.cost_per_job_usd, fifo.cost_per_job_usd);
}

TEST(SimulatorTest, ColdFleetPaysBootLatency) {
  SimConfig config = small_sim(5, uniform_mix(), 30.0);
  config.warm_pools.clear();  // nothing provisioned at t = 0
  config.fleet.boot_seconds = 120.0;
  FleetSimulator sim(config, builtin_templates(), make_policy("fifo"));
  const FleetMetrics m = sim.run();
  EXPECT_EQ(m.jobs_completed, m.jobs_submitted);
  // The first stage cannot start before the autoscaler notices the queue
  // and a machine boots, so queue wait reflects the boot penalty.
  EXPECT_GT(m.mean_queue_wait, 0.0);
  EXPECT_GT(m.vms_launched, 0);
}

TEST(SimulatorTest, SpotFleetSuffersPreemptionsButFinishes) {
  SimConfig config = small_sim(17, uniform_mix(), 60.0);
  config.fleet.spot_fraction = 1.0;
  config.fleet.spot.interruptions_per_hour = 6.0;  // brutal reclaim rate
  FleetSimulator sim(config, builtin_templates(), make_policy("cost"));
  const FleetMetrics m = sim.run();
  EXPECT_GT(m.preemptions, 0u);
  EXPECT_EQ(m.jobs_completed, m.jobs_submitted);
}

TEST(SimulatorTest, ZeroInterruptionRateMeansNoPreemptions) {
  SimConfig config = small_sim(17, uniform_mix(), 60.0);
  config.fleet.spot_fraction = 1.0;
  config.fleet.spot.interruptions_per_hour = 0.0;
  FleetSimulator sim(config, builtin_templates(), make_policy("cost"));
  const FleetMetrics m = sim.run();
  EXPECT_EQ(m.preemptions, 0u);
  EXPECT_EQ(m.jobs_completed, m.jobs_submitted);
}

TEST(SimulatorTest, RunIsSingleShot) {
  FleetSimulator sim(small_sim(1, uniform_mix(), 30.0), builtin_templates(),
                     make_policy("fifo"));
  sim.run();
  EXPECT_THROW(sim.run(), std::logic_error);
}

TEST(SimulatorTest, MetricsRenderMentionsKeyRows) {
  FleetSimulator sim(small_sim(2, uniform_mix(), 30.0), builtin_templates(),
                     make_policy("edf"));
  const std::string out = sim.run().render();
  EXPECT_NE(out.find("latency p99"), std::string::npos);
  EXPECT_NE(out.find("cost per job"), std::string::npos);
  EXPECT_NE(out.find("fleet utilization"), std::string::npos);
}

}  // namespace
}  // namespace edacloud::sched
