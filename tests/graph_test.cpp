#include <gtest/gtest.h>

#include <algorithm>

#include "nl/graph.hpp"
#include "util/rng.hpp"

namespace edacloud::nl {
namespace {

Csr diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  return build_csr(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
}

TEST(CsrTest, BuildCountsEdges) {
  const Csr g = diamond();
  EXPECT_EQ(g.vertex_count(), 4u);
  EXPECT_EQ(g.edge_count(), 4u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(3), 0u);
}

TEST(CsrTest, RangeContainsTargets) {
  const Csr g = diamond();
  const auto [begin, end] = g.range(0);
  std::vector<VertexId> targets(g.targets.begin() + begin,
                                g.targets.begin() + end);
  std::sort(targets.begin(), targets.end());
  EXPECT_EQ(targets, (std::vector<VertexId>{1, 2}));
}

TEST(CsrTest, EmptyGraph) {
  const Csr g = build_csr(0, {});
  EXPECT_EQ(g.vertex_count(), 0u);
  EXPECT_TRUE(is_dag(g));
  EXPECT_TRUE(topological_order(g).empty());
}

TEST(TransposeTest, ReversesEdges) {
  const Csr g = diamond();
  const Csr t = transpose(g);
  EXPECT_EQ(t.edge_count(), g.edge_count());
  EXPECT_EQ(t.degree(3), 2u);
  EXPECT_EQ(t.degree(0), 0u);
}

TEST(TransposeTest, DoubleTransposeIsIdentityUpToOrder) {
  const Csr g = diamond();
  const Csr tt = transpose(transpose(g));
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    EXPECT_EQ(g.degree(v), tt.degree(v));
  }
}

TEST(TopoTest, ValidOrderOnDag) {
  const Csr g = diamond();
  const auto order = topological_order(g);
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> position(4);
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (VertexId v = 0; v < 4; ++v) {
    const auto [begin, end] = g.range(v);
    for (std::uint32_t e = begin; e < end; ++e) {
      EXPECT_LT(position[v], position[g.targets[e]]);
    }
  }
}

TEST(TopoTest, CycleReturnsEmpty) {
  const Csr g = build_csr(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_TRUE(topological_order(g).empty());
  EXPECT_FALSE(is_dag(g));
}

TEST(TopoTest, SelfLoopIsCycle) {
  const Csr g = build_csr(2, {{0, 0}, {0, 1}});
  EXPECT_FALSE(is_dag(g));
}

TEST(LevelsTest, DiamondLevels) {
  const auto levels = longest_path_levels(diamond());
  ASSERT_EQ(levels.size(), 4u);
  EXPECT_EQ(levels[0], 0u);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[2], 1u);
  EXPECT_EQ(levels[3], 2u);
}

TEST(LevelsTest, LongestPathWins) {
  // 0 -> 1 -> 2 -> 3 and 0 -> 3.
  const Csr g = build_csr(4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}});
  const auto levels = longest_path_levels(g);
  EXPECT_EQ(levels[3], 3u);
}

// Property sweep: random DAGs (edges only forward) always topo-sort, and
// every level is consistent with the edge relation.
class RandomDagTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomDagTest, TopoAndLevelsConsistent) {
  util::Rng rng(GetParam());
  const std::size_t n = 50 + rng.next_below(200);
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (std::size_t i = 0; i < 3 * n; ++i) {
    const auto a = rng.next_below(n);
    const auto b = rng.next_below(n);
    if (a < b) edges.emplace_back(static_cast<VertexId>(a),
                                  static_cast<VertexId>(b));
  }
  const Csr g = build_csr(n, edges);
  EXPECT_TRUE(is_dag(g));
  const auto order = topological_order(g);
  ASSERT_EQ(order.size(), n);
  const auto levels = longest_path_levels(g);
  for (VertexId v = 0; v < n; ++v) {
    const auto [begin, end] = g.range(v);
    for (std::uint32_t e = begin; e < end; ++e) {
      EXPECT_GT(levels[g.targets[e]], levels[v]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDagTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace edacloud::nl
