#include <gtest/gtest.h>

#include "cloud/mckp.hpp"
#include "util/rng.hpp"

namespace edacloud::cloud {
namespace {

std::vector<MckpStage> simple_instance() {
  std::vector<MckpStage> stages(2);
  stages[0].items = {{100, 1.0, "a1"}, {40, 3.0, "a2"}};
  stages[1].items = {{200, 2.0, "b1"}, {80, 5.0, "b2"}};
  return stages;
}

TEST(ParetoTest, FrontierEndpointsCorrect) {
  const auto frontier = cost_deadline_frontier(simple_instance());
  ASSERT_FALSE(frontier.empty());
  // First point: the fastest completion (120 s) at its cost (8.0).
  EXPECT_DOUBLE_EQ(frontier.front().deadline_seconds, 120.0);
  EXPECT_DOUBLE_EQ(frontier.front().cost_usd, 8.0);
  // Last point: the global cost minimum (3.0) at its earliest budget (300).
  EXPECT_DOUBLE_EQ(frontier.back().deadline_seconds, 300.0);
  EXPECT_DOUBLE_EQ(frontier.back().cost_usd, 3.0);
}

TEST(ParetoTest, StrictlyMonotone) {
  const auto frontier = cost_deadline_frontier(simple_instance());
  for (std::size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_GT(frontier[i].deadline_seconds,
              frontier[i - 1].deadline_seconds);
    EXPECT_LT(frontier[i].cost_usd, frontier[i - 1].cost_usd);
  }
}

TEST(ParetoTest, PointsMatchDpSolutions) {
  const auto stages = simple_instance();
  for (const auto& point : cost_deadline_frontier(stages)) {
    const auto selection = solve_mckp_dp(stages, point.deadline_seconds);
    ASSERT_TRUE(selection.feasible);
    EXPECT_NEAR(selection.total_cost_usd, point.cost_usd, 1e-9);
    // One second earlier must be strictly worse (or infeasible).
    const auto earlier =
        solve_mckp_dp(stages, point.deadline_seconds - 1.0);
    if (earlier.feasible) {
      EXPECT_GT(earlier.total_cost_usd, point.cost_usd - 1e-9);
    }
  }
}

TEST(ParetoTest, EmptyInstance) {
  EXPECT_TRUE(cost_deadline_frontier({}).empty());
}

TEST(ParetoTest, RandomInstancesConsistentWithDp) {
  util::Rng rng(91);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<MckpStage> stages(3);
    for (auto& stage : stages) {
      double time = rng.next_double(50.0, 800.0);
      double cost = rng.next_double(0.1, 1.0);
      for (int j = 0; j < 3; ++j) {
        stage.items.push_back({time, cost, ""});
        time *= rng.next_double(0.4, 0.8);
        cost *= rng.next_double(0.9, 1.8);
      }
    }
    const auto frontier = cost_deadline_frontier(stages);
    ASSERT_FALSE(frontier.empty());
    EXPECT_NEAR(frontier.front().deadline_seconds,
                std::round(fastest_completion_seconds(stages)), 2.0);
    for (const auto& point : frontier) {
      const auto selection = solve_mckp_dp(stages, point.deadline_seconds);
      ASSERT_TRUE(selection.feasible);
      EXPECT_NEAR(selection.total_cost_usd, point.cost_usd, 1e-9);
    }
  }
}

}  // namespace
}  // namespace edacloud::cloud
