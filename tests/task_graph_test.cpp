#include <gtest/gtest.h>

#include "perf/task_graph.hpp"
#include "util/rng.hpp"

namespace edacloud::perf {
namespace {

TEST(TaskGraphTest, EmptyGraphZeroMakespan) {
  TaskGraph graph;
  EXPECT_DOUBLE_EQ(graph.makespan(1), 0.0);
  EXPECT_DOUBLE_EQ(graph.makespan(8), 0.0);
  EXPECT_DOUBLE_EQ(graph.total_work(), 0.0);
}

TEST(TaskGraphTest, SingleWorkerEqualsTotalWork) {
  TaskGraph graph;
  graph.add_task(3.0);
  graph.add_task(5.0);
  EXPECT_DOUBLE_EQ(graph.makespan(1), 8.0);
}

TEST(TaskGraphTest, IndependentTasksParallelizePerfectly) {
  TaskGraph graph;
  for (int i = 0; i < 8; ++i) graph.add_task(1.0);
  EXPECT_DOUBLE_EQ(graph.makespan(8), 1.0);
  EXPECT_DOUBLE_EQ(graph.makespan(4), 2.0);
  EXPECT_DOUBLE_EQ(graph.speedup(8), 8.0);
}

TEST(TaskGraphTest, ChainNeverSpeedsUp) {
  TaskGraph graph;
  TaskId prev = graph.add_task(1.0);
  for (int i = 0; i < 9; ++i) prev = graph.add_task(1.0, {prev});
  EXPECT_DOUBLE_EQ(graph.makespan(8), 10.0);
  EXPECT_DOUBLE_EQ(graph.critical_path(), 10.0);
}

TEST(TaskGraphTest, CriticalPathOfDiamond) {
  TaskGraph graph;
  const TaskId a = graph.add_task(1.0);
  const TaskId b = graph.add_task(5.0, {a});
  const TaskId c = graph.add_task(1.0, {a});
  graph.add_task(1.0, {b, c});
  EXPECT_DOUBLE_EQ(graph.critical_path(), 7.0);
  EXPECT_DOUBLE_EQ(graph.makespan(2), 7.0);
}

TEST(TaskGraphTest, DependencyOnFutureTaskThrows) {
  TaskGraph graph;
  EXPECT_THROW(graph.add_task(1.0, {0}), std::invalid_argument);
}

TEST(TaskGraphTest, NegativeCostThrows) {
  TaskGraph graph;
  EXPECT_THROW(graph.add_task(-1.0), std::invalid_argument);
}

TEST(TaskGraphTest, ZeroWorkersThrows) {
  TaskGraph graph;
  graph.add_task(1.0);
  EXPECT_THROW((void)graph.makespan(0), std::invalid_argument);
}

TEST(TaskGraphTest, AmdahlStructure) {
  // Serial 40 + 60 perfectly parallel: speedup(k) = 100/(40 + 60/k).
  TaskGraph graph;
  const TaskId serial = graph.add_task(40.0);
  for (int i = 0; i < 60; ++i) graph.add_task(1.0, {serial});
  EXPECT_NEAR(graph.makespan(1), 100.0, 1e-9);
  EXPECT_NEAR(graph.makespan(2), 70.0, 1e-9);
  EXPECT_NEAR(graph.makespan(4), 55.0, 1e-9);
  EXPECT_NEAR(graph.makespan(60), 41.0, 1e-9);
}

// Property sweep over random DAGs: fundamental scheduling bounds hold and
// makespan is monotone non-increasing in worker count.
class RandomTaskGraphTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomTaskGraphTest, BoundsAndMonotonicity) {
  util::Rng rng(GetParam());
  TaskGraph graph;
  const int n = 40 + static_cast<int>(rng.next_below(100));
  for (int i = 0; i < n; ++i) {
    std::vector<TaskId> deps;
    const int dep_count = static_cast<int>(rng.next_below(3));
    for (int d = 0; d < dep_count && i > 0; ++d) {
      deps.push_back(static_cast<TaskId>(rng.next_below(i)));
    }
    graph.add_task(rng.next_double(0.5, 4.0), deps);
  }
  const double work = graph.total_work();
  const double critical = graph.critical_path();
  double previous = 1e300;
  for (int workers : {1, 2, 3, 4, 8, 16}) {
    const double span = graph.makespan(workers);
    EXPECT_GE(span, critical - 1e-9);
    EXPECT_GE(span, work / workers - 1e-9);
    EXPECT_LE(span, work + 1e-9);
    // Graham anomalies allow small regressions when adding workers; we
    // only demand near-monotonicity.
    EXPECT_LE(span, previous * 1.15 + 1e-9);
    previous = span;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTaskGraphTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace edacloud::perf
