#pragma once
// Umbrella header: the library's public surface in one include.
//
//   #include "edacloud.hpp"
//
// pulls in the end-to-end flow (core/flow, core/stage), the
// characterization + prediction + deployment-optimization pipeline
// (core/characterize, core/predictor, core/optimizer), the discrete-event
// cloud fleet simulator with its fault-tolerance layer (sched/simulator),
// the spot-price market engine (market/market, market/price_trace),
// the network job service and its load harness (svc/server, svc/loadgen),
// the workload generators, and the observability handles (obs). Drivers
// and examples should include this instead of cherry-picking internals;
// anything not reachable from here is an implementation detail.

#include "core/characterize.hpp"
#include "core/flow.hpp"
#include "core/optimizer.hpp"
#include "core/predictor.hpp"
#include "core/stage.hpp"
#include "market/market.hpp"
#include "market/price_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/sharded_simulator.hpp"
#include "sched/simulator.hpp"
#include "svc/loadgen.hpp"
#include "svc/server.hpp"
#include "tune/tuner.hpp"
#include "workloads/generators.hpp"
#include "workloads/registry.hpp"
