#pragma once
// Adapters that absorb perf's bespoke structures into the unified
// obs::Registry, so hardware-counter snapshots and runtime-model
// measurements share one export path (CSV/JSON) with the rest of the
// system instead of ad-hoc printf tables.

#include "obs/metrics.hpp"
#include "perf/counters.hpp"
#include "perf/runtime_model.hpp"

namespace edacloud::perf {

/// One OpCounts snapshot -> perf.* counters and rate gauges under `labels`.
/// Counters accumulate, so absorb each snapshot once per label set.
void absorb_counts(obs::Registry& registry, const OpCounts& counts,
                   const obs::Labels& labels);

/// One per-ladder JobMeasurement -> runtime/speedup/counter-rate gauges,
/// labelled by `labels` + {family, vcpus} per configuration.
void absorb_measurement(obs::Registry& registry, const JobMeasurement& m,
                        const obs::Labels& labels);

}  // namespace edacloud::perf
