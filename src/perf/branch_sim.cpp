#include "perf/branch_sim.hpp"

#include <stdexcept>

namespace edacloud::perf {

BranchPredictor::BranchPredictor(std::uint32_t table_bits) {
  if (table_bits == 0 || table_bits > 24) {
    throw std::invalid_argument("table_bits out of range");
  }
  mask_ = (1U << table_bits) - 1;
  table_.assign(std::size_t{1} << table_bits, 1);  // weakly not-taken
}

bool BranchPredictor::observe(std::uint64_t site, bool taken) {
  ++stats_.branches;
  const std::uint32_t index =
      static_cast<std::uint32_t>(site ^ history_) & mask_;
  std::uint8_t& counter = table_[index];
  const bool predicted_taken = counter >= 2;
  const bool correct = predicted_taken == taken;
  if (!correct) ++stats_.mispredicts;
  if (taken && counter < 3) ++counter;
  if (!taken && counter > 0) --counter;
  history_ = ((history_ << 1) | static_cast<std::uint64_t>(taken)) & mask_;
  return correct;
}

}  // namespace edacloud::perf
