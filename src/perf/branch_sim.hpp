#pragma once
// Gshare branch predictor simulator — produces the branch-misses counter
// of Fig. 2a. Engines report each conditional branch with its (site, taken)
// pair; prediction quality then reflects how data-dependent the branch
// outcomes of each EDA algorithm really are.

#include <cstdint>
#include <vector>

namespace edacloud::perf {

struct BranchStats {
  std::uint64_t branches = 0;
  std::uint64_t mispredicts = 0;
  [[nodiscard]] double miss_rate() const {
    return branches == 0 ? 0.0
                         : static_cast<double>(mispredicts) /
                               static_cast<double>(branches);
  }
};

class BranchPredictor {
 public:
  /// table_bits: log2 of the pattern-history-table size.
  explicit BranchPredictor(std::uint32_t table_bits = 12);

  /// Predict, compare to the actual outcome, update; returns true if the
  /// prediction was correct.
  bool observe(std::uint64_t site, bool taken);

  [[nodiscard]] const BranchStats& stats() const { return stats_; }
  void reset_stats() { stats_ = BranchStats{}; }

 private:
  std::uint32_t mask_;
  std::uint64_t history_ = 0;
  std::vector<std::uint8_t> table_;  // 2-bit saturating counters
  BranchStats stats_;
};

}  // namespace edacloud::perf
