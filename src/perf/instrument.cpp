#include "perf/instrument.hpp"

#include <stdexcept>

namespace edacloud::perf {

Instrument::Instrument() = default;

Instrument::Instrument(std::vector<VmConfig> configs,
                       std::uint32_t mem_sample_period)
    : configs_(std::move(configs)),
      sample_period_(mem_sample_period == 0 ? 1 : mem_sample_period) {
  if (configs_.empty()) {
    throw std::invalid_argument("Instrument requires at least one config");
  }
  predictor_ = std::make_unique<BranchPredictor>();
  hierarchies_.reserve(configs_.size());
  for (const VmConfig& config : configs_) {
    hierarchies_.push_back(std::make_unique<MemoryHierarchy>(
        config.l1_bytes, config.llc_bytes));
  }
  ring_.assign(kRingSize, 0);
  interference_credit_.assign(configs_.size(), 0);
}

void Instrument::on_memory(std::uint64_t address) {
  if (event_counter_++ % sample_period_ != 0) return;
  ring_[ring_head_] = address;
  ring_head_ = (ring_head_ + 1) % kRingSize;
  for (std::size_t c = 0; c < configs_.size(); ++c) {
    MemoryHierarchy& hierarchy = *hierarchies_[c];
    hierarchy.access(address);
    // Gentle cross-thread pollution: with k vCPUs, sibling worker threads
    // keep private state (per-thread search arrays, partial results) that
    // competes for the shared LLC slice. We inject a lagged self-similar
    // phantom access at a per-thread offset once every
    // kInterferenceInterval/(k-1) measured accesses — enough to nudge
    // already-fitting working sets (routing), while the k-times-larger
    // slice still dominates for capacity-bound jobs (placement).
    const int extra_threads = configs_[c].vcpus - 1;
    if (extra_threads > 0) {
      interference_credit_[c] += extra_threads;
      if (interference_credit_[c] >= kInterferenceInterval) {
        interference_credit_[c] -= kInterferenceInterval;
        const std::size_t lag = 31;
        const std::uint64_t thread_base =
            (1ULL + (event_counter_ % extra_threads)) << 26;
        const std::uint64_t lagged =
            ring_[(ring_head_ + kRingSize - lag) % kRingSize];
        hierarchy.interfere(lagged + thread_base);
      }
    }
  }
}

void Instrument::on_memory_private(std::uint64_t address,
                                   std::uint32_t stream) {
  if (event_counter_++ % sample_period_ != 0) return;
  ring_[ring_head_] = address;
  ring_head_ = (ring_head_ + 1) % kRingSize;
  for (std::size_t c = 0; c < configs_.size(); ++c) {
    const std::uint32_t worker =
        stream % static_cast<std::uint32_t>(configs_[c].vcpus);
    hierarchies_[c]->access_private(
        address, address + (static_cast<std::uint64_t>(worker) << 27));
  }
}

void Instrument::replay(const EventLog& log) {
  if (!enabled()) return;
  for (const PerfEvent& event : log.events()) {
    switch (event.kind) {
      case PerfEvent::Kind::kLoad:
        load(event.a);
        break;
      case PerfEvent::Kind::kStore:
        store(event.a);
        break;
      case PerfEvent::Kind::kLoadPrivate:
        load_private(event.a, event.b);
        break;
      case PerfEvent::Kind::kBranch:
        branch(event.a, event.b != 0);
        break;
      case PerfEvent::Kind::kIntOps:
        int_ops(event.a);
        break;
      case PerfEvent::Kind::kFpOps:
        fp_ops(event.a);
        break;
      case PerfEvent::Kind::kAvxOps:
        avx_ops(event.a);
        break;
    }
  }
}

OpCounts Instrument::counts(std::size_t index) const {
  if (index >= configs_.size()) {
    throw std::out_of_range("config index out of range");
  }
  OpCounts out;
  out.int_ops = int_ops_;
  out.fp_ops = fp_ops_;
  out.avx_ops = avx_ops_;
  out.loads = loads_;
  out.stores = stores_;
  if (predictor_) {
    out.branches = predictor_->stats().branches;
    out.branch_misses = predictor_->stats().mispredicts;
  }
  const MemoryHierarchy& hierarchy = *hierarchies_[index];
  const std::uint64_t scale = sample_period_;
  out.l1_accesses = hierarchy.l1().accesses * scale;
  out.l1_misses = hierarchy.l1().misses * scale;
  out.llc_accesses = hierarchy.llc().accesses * scale;
  out.llc_misses = hierarchy.llc().misses * scale;
  return out;
}

}  // namespace edacloud::perf
