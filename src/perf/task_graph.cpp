#include "perf/task_graph.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace edacloud::perf {

TaskId TaskGraph::add_task(double cost, const std::vector<TaskId>& deps) {
  if (cost < 0.0) throw std::invalid_argument("negative task cost");
  const auto id = static_cast<TaskId>(costs_.size());
  for (TaskId dep : deps) {
    if (dep >= id) throw std::invalid_argument("dependency on future task");
  }
  costs_.push_back(cost);
  deps_.push_back(deps);
  children_.emplace_back();
  for (TaskId dep : deps) children_[dep].push_back(id);
  total_work_ += cost;
  return id;
}

std::vector<double> TaskGraph::downstream_priority() const {
  // Longest path from each task to a sink, including own cost. Task ids are
  // topologically ordered by construction, so a reverse sweep suffices.
  std::vector<double> priority(costs_.size(), 0.0);
  for (std::size_t i = costs_.size(); i-- > 0;) {
    double best_child = 0.0;
    for (TaskId child : children_[i]) {
      best_child = std::max(best_child, priority[child]);
    }
    priority[i] = costs_[i] + best_child;
  }
  return priority;
}

double TaskGraph::critical_path() const {
  const auto priority = downstream_priority();
  double longest = 0.0;
  for (std::size_t i = 0; i < priority.size(); ++i) {
    if (deps_[i].empty()) longest = std::max(longest, priority[i]);
  }
  return longest;
}

double TaskGraph::makespan(int workers) const {
  if (workers <= 0) throw std::invalid_argument("workers must be positive");
  if (costs_.empty()) return 0.0;
  if (workers == 1) return total_work_;

  const auto priority = downstream_priority();

  // Ready queue ordered by critical-path priority (largest first).
  auto ready_less = [&priority](TaskId a, TaskId b) {
    return priority[a] < priority[b];
  };
  std::priority_queue<TaskId, std::vector<TaskId>, decltype(ready_less)>
      ready(ready_less);

  std::vector<std::uint32_t> open_deps(costs_.size());
  for (std::size_t i = 0; i < costs_.size(); ++i) {
    open_deps[i] = static_cast<std::uint32_t>(deps_[i].size());
    if (open_deps[i] == 0) ready.push(static_cast<TaskId>(i));
  }

  // Event-driven simulation: (finish_time, task) min-heap of running tasks.
  using Running = std::pair<double, TaskId>;
  std::priority_queue<Running, std::vector<Running>, std::greater<>> running;
  double now = 0.0;
  double makespan = 0.0;
  int busy = 0;

  auto drain_one = [&]() {
    const auto [finish, task] = running.top();
    running.pop();
    now = finish;
    makespan = std::max(makespan, finish);
    --busy;
    for (TaskId child : children_[task]) {
      if (--open_deps[child] == 0) ready.push(child);
    }
  };

  std::size_t completed = 0;
  while (completed < costs_.size()) {
    // Launch as many ready tasks as workers allow.
    while (busy < workers && !ready.empty()) {
      const TaskId task = ready.top();
      ready.pop();
      running.emplace(now + costs_[task], task);
      ++busy;
    }
    if (running.empty()) {
      // No runnable work left: every remaining task is unreachable, which
      // the constructor's forward-dependency check rules out.
      break;
    }
    drain_one();
    ++completed;
  }
  return makespan;
}

double TaskGraph::speedup(int workers) const {
  const double span = makespan(workers);
  return span == 0.0 ? 1.0 : total_work_ / span;
}

}  // namespace edacloud::perf
