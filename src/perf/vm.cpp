#include "perf/vm.hpp"

#include <stdexcept>

namespace edacloud::perf {

std::string VmConfig::name() const {
  std::string out(to_string(family));
  out += "-" + std::to_string(vcpus) + "vcpu";
  return out;
}

VmConfig make_vm(InstanceFamily family, int vcpus) {
  if (vcpus <= 0) throw std::invalid_argument("vcpus must be positive");
  VmConfig vm;
  vm.family = family;
  vm.vcpus = vcpus;
  // Cache geometry is scaled down with the benchmark designs (hundreds to
  // tens of thousands of instances instead of the paper's 200k+), keeping
  // the working-set-to-capacity ratios — and therefore the Fig. 2b trends —
  // in the regime the paper measured. See DESIGN.md.
  vm.l1_bytes = 8 * 1024;
  switch (family) {
    case InstanceFamily::kGeneralPurpose:
      vm.memory_gib = 4.0 * vcpus;
      vm.clock_ghz = 3.3;
      vm.llc_bytes = static_cast<std::uint64_t>(vcpus) * 96 * 1024;
      vm.has_avx = true;
      break;
    case InstanceFamily::kMemoryOptimized:
      vm.memory_gib = 8.0 * vcpus;
      vm.clock_ghz = 3.3;
      vm.llc_bytes = static_cast<std::uint64_t>(vcpus) * 192 * 1024;
      vm.has_avx = true;
      break;
    case InstanceFamily::kComputeOptimized:
      vm.memory_gib = 2.0 * vcpus;
      vm.clock_ghz = 3.6;
      vm.llc_bytes = static_cast<std::uint64_t>(vcpus) * 64 * 1024;
      vm.has_avx = true;
      break;
  }
  return vm;
}

std::array<VmConfig, 4> vm_ladder(InstanceFamily family) {
  return {make_vm(family, kVcpuOptions[0]), make_vm(family, kVcpuOptions[1]),
          make_vm(family, kVcpuOptions[2]), make_vm(family, kVcpuOptions[3])};
}

std::string_view to_string(InstanceFamily family) {
  switch (family) {
    case InstanceFamily::kGeneralPurpose:
      return "general-purpose";
    case InstanceFamily::kMemoryOptimized:
      return "memory-optimized";
    case InstanceFamily::kComputeOptimized:
      return "compute-optimized";
  }
  return "?";
}

}  // namespace edacloud::perf
