#pragma once
// Aggregate hardware-counter snapshot for one job on one VM configuration —
// the simulated analog of a `perf stat` readout.

#include <cstdint>

namespace edacloud::perf {

struct OpCounts {
  std::uint64_t int_ops = 0;
  std::uint64_t fp_ops = 0;    // scalar floating point
  std::uint64_t avx_ops = 0;   // vectorizable floating point (AVX lanes)
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t branches = 0;
  std::uint64_t branch_misses = 0;
  std::uint64_t l1_accesses = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t llc_accesses = 0;
  std::uint64_t llc_misses = 0;

  [[nodiscard]] std::uint64_t total_ops() const {
    return int_ops + fp_ops + avx_ops;
  }
  [[nodiscard]] double branch_miss_rate() const {
    return branches == 0 ? 0.0
                         : static_cast<double>(branch_misses) /
                               static_cast<double>(branches);
  }
  [[nodiscard]] double l1_miss_rate() const {
    return l1_accesses == 0 ? 0.0
                            : static_cast<double>(l1_misses) /
                                  static_cast<double>(l1_accesses);
  }
  /// The "cache misses" percentage the paper reports (LLC behaviour).
  [[nodiscard]] double llc_miss_rate() const {
    return llc_accesses == 0 ? 0.0
                             : static_cast<double>(llc_misses) /
                                   static_cast<double>(llc_accesses);
  }
  /// Fraction of all arithmetic that ran on AVX hardware (Fig. 2c).
  [[nodiscard]] double avx_fraction() const {
    const std::uint64_t total = total_ops();
    return total == 0 ? 0.0
                      : static_cast<double>(avx_ops) /
                            static_cast<double>(total);
  }

  /// LLC misses per thousand operations (MPKI analog over ops).
  [[nodiscard]] double llc_mpko() const {
    const std::uint64_t total = total_ops();
    return total == 0 ? 0.0
                      : 1000.0 * static_cast<double>(llc_misses) /
                            static_cast<double>(total);
  }

  /// Branch density: branches per operation.
  [[nodiscard]] double branch_density() const {
    const std::uint64_t total = total_ops();
    return total == 0 ? 0.0
                      : static_cast<double>(branches) /
                            static_cast<double>(total);
  }
};

}  // namespace edacloud::perf
