#include "perf/cache_sim.hpp"

#include <bit>
#include <stdexcept>

namespace edacloud::perf {

namespace {

bool is_pow2(std::uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

}  // namespace

CacheSim::CacheSim(std::uint64_t size_bytes, std::uint32_t line_bytes,
                   std::uint32_t ways)
    : size_bytes_(size_bytes), line_bytes_(line_bytes), ways_(ways) {
  if (!is_pow2(line_bytes_) || ways_ == 0 || size_bytes_ < line_bytes_ * ways_) {
    throw std::invalid_argument("invalid cache geometry");
  }
  const std::uint64_t lines = size_bytes_ / line_bytes_;
  std::uint64_t sets = lines / ways_;
  if (sets == 0) sets = 1;
  // Round sets down to a power of two so indexing is a mask.
  sets = std::uint64_t{1} << (63 - std::countl_zero(sets));
  set_count_ = static_cast<std::uint32_t>(sets);
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(
      static_cast<std::uint64_t>(line_bytes_)));
  sets_.assign(static_cast<std::size_t>(set_count_) * ways_, Way{});
}

bool CacheSim::access_impl(std::uint64_t address, bool count_stats) {
  if (count_stats) ++stats_.accesses;
  const std::uint64_t line = address >> line_shift_;
  const std::uint32_t set = static_cast<std::uint32_t>(line) & (set_count_ - 1);
  const std::uint64_t tag = line / set_count_;
  Way* base = &sets_[static_cast<std::size_t>(set) * ways_];
  ++lru_clock_;
  std::uint32_t victim = 0;
  std::uint32_t victim_lru = ~0U;
  for (std::uint32_t w = 0; w < ways_; ++w) {
    if (base[w].tag == tag) {
      base[w].lru = lru_clock_;
      return true;
    }
    if (base[w].lru < victim_lru) {
      victim_lru = base[w].lru;
      victim = w;
    }
  }
  if (count_stats) ++stats_.misses;
  base[victim].tag = tag;
  base[victim].lru = lru_clock_;
  return false;
}

MemoryHierarchy::MemoryHierarchy(std::uint64_t l1_bytes,
                                 std::uint64_t llc_bytes)
    : l1_(l1_bytes, 64, 8), llc_(llc_bytes, 64, 16) {}

int MemoryHierarchy::access(std::uint64_t address) {
  if (l1_.access(address)) return 0;
  if (llc_.access(address)) return 1;
  return 2;
}

int MemoryHierarchy::access_private(std::uint64_t l1_address,
                                    std::uint64_t llc_address) {
  if (l1_.access(l1_address)) return 0;
  if (llc_.access(llc_address)) return 1;
  return 2;
}

void MemoryHierarchy::interfere(std::uint64_t address) {
  llc_.touch(address);
}

}  // namespace edacloud::perf
