#pragma once
// Set-associative LRU cache simulator and a two-level (L1 + LLC) hierarchy.
// Stands in for the hardware performance counters the paper read with
// `perf` (cache-references / cache-misses).

#include <cstdint>
#include <vector>

namespace edacloud::perf {

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  [[nodiscard]] double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

/// Set-associative cache with true-LRU replacement. Address space is a
/// flat 64-bit byte space; tags are derived from line addresses.
class CacheSim {
 public:
  /// size/line must be powers of two; ways >= 1. size >= line * ways.
  CacheSim(std::uint64_t size_bytes, std::uint32_t line_bytes,
           std::uint32_t ways);

  /// Simulate one access; returns true on hit. Fills on miss.
  bool access(std::uint64_t address) { return access_impl(address, true); }

  /// State-only access (no stats) — used for phantom co-runner traffic that
  /// occupies capacity but is not part of the measured stream.
  void touch(std::uint64_t address) { access_impl(address, false); }

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t size_bytes() const { return size_bytes_; }
  [[nodiscard]] std::uint32_t line_bytes() const { return line_bytes_; }
  void reset_stats() { stats_ = CacheStats{}; }

 private:
  bool access_impl(std::uint64_t address, bool count_stats);

  struct Way {
    std::uint64_t tag = ~0ULL;
    std::uint32_t lru = 0;  // higher = more recently used
  };

  std::uint64_t size_bytes_;
  std::uint32_t line_bytes_;
  std::uint32_t ways_;
  std::uint32_t set_count_;
  std::uint32_t line_shift_;
  std::vector<Way> sets_;  // set-major layout, ways_ entries per set
  std::uint32_t lru_clock_ = 0;
  CacheStats stats_;
};

/// L1 -> LLC hierarchy: LLC sees only L1 misses.
class MemoryHierarchy {
 public:
  MemoryHierarchy(std::uint64_t l1_bytes, std::uint64_t llc_bytes);

  /// Returns 0 on L1 hit, 1 on LLC hit, 2 on memory access.
  int access(std::uint64_t address);

  /// Thread-private access: the L1 probe uses the un-offset address (each
  /// worker core owns a private L1, so per-worker locality is unchanged),
  /// while the shared LLC sees the worker-offset address (aggregate private
  /// footprint grows with worker count).
  int access_private(std::uint64_t l1_address, std::uint64_t llc_address);

  /// Phantom co-runner traffic: contends for LLC capacity only (L1 caches
  /// are private per vCPU) and leaves the measured stats untouched.
  void interfere(std::uint64_t address);

  [[nodiscard]] const CacheStats& l1() const { return l1_.stats(); }
  [[nodiscard]] const CacheStats& llc() const { return llc_.stats(); }

 private:
  CacheSim l1_;
  CacheSim llc_;
};

}  // namespace edacloud::perf
