#include "perf/obs_export.hpp"

#include <string>

#include "perf/vm.hpp"

namespace edacloud::perf {

void absorb_counts(obs::Registry& registry, const OpCounts& counts,
                   const obs::Labels& labels) {
  const auto qualified = [](const char* name) {
    std::string full = "perf.";
    full += name;
    return full;
  };
  const auto add = [&](const char* name, std::uint64_t value) {
    registry.counter(qualified(name), labels).add(value);
  };
  add("int_ops", counts.int_ops);
  add("fp_ops", counts.fp_ops);
  add("avx_ops", counts.avx_ops);
  add("loads", counts.loads);
  add("stores", counts.stores);
  add("branches", counts.branches);
  add("branch_misses", counts.branch_misses);
  add("l1_accesses", counts.l1_accesses);
  add("l1_misses", counts.l1_misses);
  add("llc_accesses", counts.llc_accesses);
  add("llc_misses", counts.llc_misses);

  const auto set = [&](const char* name, double value) {
    registry.gauge(qualified(name), labels).set(value);
  };
  set("branch_miss_rate", counts.branch_miss_rate());
  set("l1_miss_rate", counts.l1_miss_rate());
  set("llc_miss_rate", counts.llc_miss_rate());
  set("avx_fraction", counts.avx_fraction());
}

void absorb_measurement(obs::Registry& registry, const JobMeasurement& m,
                        const obs::Labels& labels) {
  for (std::size_t i = 0; i < m.configs.size(); ++i) {
    obs::Labels config_labels = labels;
    config_labels.emplace_back("family",
                               std::string(to_string(m.configs[i].family)));
    config_labels.emplace_back("vcpus",
                               std::to_string(m.configs[i].vcpus));
    const auto set = [&](const char* name, const std::vector<double>& v) {
      std::string full = "perf.";
      full += name;
      if (i < v.size()) registry.gauge(full, config_labels).set(v[i]);
    };
    set("runtime_seconds", m.runtime_seconds);
    set("speedup", m.speedup);
    set("branch_miss_rate", m.branch_miss_rate);
    set("llc_miss_rate", m.llc_miss_rate);
    set("avx_fraction", m.avx_fraction);
  }
}

}  // namespace edacloud::perf
