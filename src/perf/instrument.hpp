#pragma once
// Instrumentation facade the EDA engines report events into. One engine run
// is measured against *all* candidate VM configurations simultaneously:
// each configuration owns a private simulated memory hierarchy, and
// multi-tenancy is emulated by phantom co-runner accesses that contend for
// the LLC slice (see DESIGN.md). Branch and arithmetic-mix counters are
// configuration-independent and shared.
//
// Memory simulation is sampled (1-in-N events drive the cache models) to
// bound host cost; reported access/miss counts are scaled back up, and the
// miss *rates* the paper plots are sampling-invariant.

#include <cstdint>
#include <memory>
#include <vector>

#include "perf/branch_sim.hpp"
#include "perf/cache_sim.hpp"
#include "perf/counters.hpp"
#include "perf/event_log.hpp"
#include "perf/vm.hpp"

namespace edacloud::perf {

class Instrument {
 public:
  /// Measures against `configs`; `mem_sample_period` >= 1.
  explicit Instrument(std::vector<VmConfig> configs,
                      std::uint32_t mem_sample_period = 4);

  /// Null-object instrument: counts nothing, near-zero overhead.
  Instrument();

  [[nodiscard]] bool enabled() const { return !configs_.empty(); }
  [[nodiscard]] const std::vector<VmConfig>& configs() const {
    return configs_;
  }

  // ---- events reported by engines -----------------------------------------
  void load(std::uint64_t address) {
    if (!enabled()) return;
    ++loads_;
    on_memory(address);
  }
  void store(std::uint64_t address) {
    if (!enabled()) return;
    ++stores_;
    on_memory(address);
  }
  /// Access to thread-PRIVATE state (per-worker scratch arrays). With k
  /// vCPUs the work is spread over k private copies, so the address is
  /// offset by the owning worker (stream % k) — reproducing the growing
  /// aggregate footprint that makes e.g. routing's miss rate rise with
  /// provisioned vCPUs.
  void load_private(std::uint64_t address, std::uint32_t stream) {
    if (!enabled()) return;
    ++loads_;
    on_memory_private(address, stream);
  }

  /// Feed a recorded event stream back in, in its recorded order. Parallel
  /// engine sections log into per-task perf::EventLogs and replay them here
  /// serially in a thread-count-independent order (see event_log.hpp), so
  /// the stateful simulators produce identical totals at any thread count.
  void replay(const EventLog& log);

  void int_ops(std::uint64_t n) { int_ops_ += enabled() ? n : 0; }
  void fp_ops(std::uint64_t n) { fp_ops_ += enabled() ? n : 0; }
  void avx_ops(std::uint64_t n) { avx_ops_ += enabled() ? n : 0; }
  void branch(std::uint64_t site, bool taken) {
    if (!enabled()) return;
    predictor_->observe(site, taken);
  }

  /// Counter snapshot for configs()[index], with sampling scaled out.
  [[nodiscard]] OpCounts counts(std::size_t index) const;

 private:
  void on_memory(std::uint64_t address);
  void on_memory_private(std::uint64_t address, std::uint32_t stream);

  std::vector<VmConfig> configs_;
  std::uint32_t sample_period_ = 1;
  std::uint64_t event_counter_ = 0;

  std::uint64_t int_ops_ = 0;
  std::uint64_t fp_ops_ = 0;
  std::uint64_t avx_ops_ = 0;
  std::uint64_t loads_ = 0;
  std::uint64_t stores_ = 0;

  std::unique_ptr<BranchPredictor> predictor_;
  std::vector<std::unique_ptr<MemoryHierarchy>> hierarchies_;

  // Recent real addresses replayed as phantom co-runner traffic.
  static constexpr std::size_t kRingSize = 1024;
  static constexpr std::uint64_t kInterferenceInterval = 36;
  std::vector<std::uint64_t> ring_;
  std::size_t ring_head_ = 0;
  std::vector<std::uint64_t> interference_credit_;
};

}  // namespace edacloud::perf
