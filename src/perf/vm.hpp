#pragma once
// Cloud VM configuration model (§II). A VM is sold in units of vCPUs with a
// family-dependent memory-to-core ratio; multi-tenancy is modeled by slicing
// the host LLC per vCPU, so provisioning more vCPUs also buys more
// last-level cache — the effect the paper observes in Fig. 2b.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace edacloud::perf {

enum class InstanceFamily : std::uint8_t {
  kGeneralPurpose,   // m5-like: 4 GiB/vCPU, balanced
  kMemoryOptimized,  // r5-like: 8 GiB/vCPU, larger LLC slice
  kComputeOptimized, // c5-like: 2 GiB/vCPU, higher clock, smaller LLC slice
};

constexpr std::array<int, 4> kVcpuOptions = {1, 2, 4, 8};

struct VmConfig {
  InstanceFamily family = InstanceFamily::kGeneralPurpose;
  int vcpus = 1;
  double memory_gib = 4.0;
  double clock_ghz = 3.3;
  std::uint64_t l1_bytes = 32 * 1024;   // private, per vCPU
  std::uint64_t llc_bytes = 2 * 1024 * 1024;  // tenant slice (scales w/ vCPUs)
  bool has_avx = true;

  [[nodiscard]] std::string name() const;
};

/// Build the configuration a vendor would sell for (family, vcpus).
VmConfig make_vm(InstanceFamily family, int vcpus);

/// All four sizes of one family, in kVcpuOptions order.
std::array<VmConfig, 4> vm_ladder(InstanceFamily family);

std::string_view to_string(InstanceFamily family);

}  // namespace edacloud::perf
