#include "perf/runtime_model.hpp"

#include <stdexcept>

namespace edacloud::perf {

double estimate_cycles(const OpCounts& counts, const VmConfig& config,
                       const RuntimeModelParams& params) {
  const double avx_cpi = config.has_avx
                             ? params.cpi_avx
                             : params.cpi_avx * params.avx_fallback_factor;
  double cycles = 0.0;
  cycles += static_cast<double>(counts.int_ops) * params.cpi_int;
  cycles += static_cast<double>(counts.fp_ops) * params.cpi_fp;
  cycles += static_cast<double>(counts.avx_ops) * avx_cpi;
  cycles += static_cast<double>(counts.l1_misses) * params.l1_miss_cycles;
  cycles += static_cast<double>(counts.llc_misses) * params.llc_miss_cycles;
  cycles +=
      static_cast<double>(counts.branch_misses) * params.branch_miss_cycles;
  return cycles;
}

double estimate_runtime_seconds(const JobProfile& profile, std::size_t index,
                                const RuntimeModelParams& params) {
  if (index >= profile.configs.size() || index >= profile.counts.size()) {
    throw std::out_of_range("config index out of range");
  }
  const VmConfig& config = profile.configs[index];
  const double cycles =
      estimate_cycles(profile.counts[index], config, params);
  const double serial_seconds = cycles / (config.clock_ghz * 1e9);

  double parallel_factor = 1.0;
  if (profile.tasks.task_count() > 0 && profile.tasks.total_work() > 0.0) {
    parallel_factor =
        profile.tasks.makespan(config.vcpus) / profile.tasks.total_work();
  }
  return serial_seconds * parallel_factor * params.time_scale;
}

JobMeasurement measure(const JobProfile& profile,
                       const RuntimeModelParams& params) {
  JobMeasurement out;
  out.job = profile.job;
  out.configs = profile.configs;
  const std::size_t n = profile.configs.size();
  out.runtime_seconds.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.runtime_seconds.push_back(
        estimate_runtime_seconds(profile, i, params));
    const OpCounts& counts = profile.counts[i];
    out.branch_miss_rate.push_back(counts.branch_miss_rate());
    out.llc_miss_rate.push_back(counts.llc_miss_rate());
    out.avx_fraction.push_back(counts.avx_fraction());
  }
  out.speedup.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double base = out.runtime_seconds.empty() ? 0.0
                                                    : out.runtime_seconds[0];
    out.speedup.push_back(
        out.runtime_seconds[i] == 0.0 ? 1.0 : base / out.runtime_seconds[i]);
  }
  return out;
}

}  // namespace edacloud::perf
