#pragma once
// Converts counter snapshots + the engine's task graph into a predicted
// wall-clock runtime per VM configuration. This is the simulated analog of
// the paper's measured runtimes (Table I's "Runtime (sec.)" row).
//
// cycles = Σ op_class * CPI_class
//        + l1_misses * LLC_latency + llc_misses * DRAM_latency
//        + branch_misses * pipeline_flush
// runtime(k vCPUs) = cycles / clock * makespan(k) / total_work
//
// The task-graph ratio carries the parallel-efficiency curve; the counter
// term carries the configuration-dependent memory behaviour.

#include <array>
#include <string>
#include <vector>

#include "perf/counters.hpp"
#include "perf/task_graph.hpp"
#include "perf/vm.hpp"

namespace edacloud::perf {

struct RuntimeModelParams {
  double cpi_int = 0.5;
  double cpi_fp = 1.0;
  /// Per-element cost of vectorizable FP when AVX hardware is present.
  double cpi_avx = 0.25;
  /// Slowdown multiplier for AVX-class work on non-AVX hardware.
  double avx_fallback_factor = 4.0;
  double l1_miss_cycles = 10.0;    // LLC hit latency
  double llc_miss_cycles = 25.0;   // DRAM latency (scaled caches)
  double branch_miss_cycles = 16.0;
  /// Linear scale applied to all runtimes; calibrates the simulated designs
  /// to commercial-tool wall-clock magnitudes (documented in EXPERIMENTS.md).
  double time_scale = 1.0;
};

/// Result of one instrumented engine run, measured against a VM ladder.
struct JobProfile {
  std::string job;                 // "synthesis" | "placement" | ...
  std::vector<VmConfig> configs;   // candidate configurations
  std::vector<OpCounts> counts;    // one per config
  TaskGraph tasks;                 // engine's parallel decomposition
};

/// Total core cycles for one configuration's counter snapshot.
double estimate_cycles(const OpCounts& counts, const VmConfig& config,
                       const RuntimeModelParams& params);

/// Runtime (seconds) of the profiled job on configs[index].
double estimate_runtime_seconds(const JobProfile& profile, std::size_t index,
                                const RuntimeModelParams& params);

/// Fully-evaluated characterization record for one job (Fig. 2 row).
struct JobMeasurement {
  std::string job;
  std::vector<VmConfig> configs;
  std::vector<double> runtime_seconds;
  std::vector<double> speedup;           // vs configs[0]
  std::vector<double> branch_miss_rate;
  std::vector<double> llc_miss_rate;
  std::vector<double> avx_fraction;
};

JobMeasurement measure(const JobProfile& profile,
                       const RuntimeModelParams& params);

}  // namespace edacloud::perf
