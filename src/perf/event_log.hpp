#pragma once
// Deterministic instrumentation capture for parallel engine sections.
//
// The Instrument's simulators are *stateful* (gshare branch predictor,
// set-associative LRU caches, the co-runner interference ring), so its
// counter totals depend on the order events arrive. Sharding one Instrument
// per worker would make totals a function of the thread count — exactly what
// the determinism guarantee forbids. Instead, a parallel section records its
// events into thread-private EventLogs (one per routed net / per level
// chunk), and the engine replays the logs into the single shared Instrument
// serially, in an order fixed by the algorithm (commit order, chunk order).
// The simulators then see a bit-identical event stream at any thread count.
//
// Uninstrumented runs pass a null log pointer and skip recording entirely,
// so measured-speedup flows pay nothing for this machinery.

#include <cstdint>
#include <vector>

namespace edacloud::perf {

class Instrument;

/// One recorded Instrument event. Packed to 16 bytes; `a` holds the
/// address / branch site / op count, `b` the private-stream id or the
/// branch taken flag.
struct PerfEvent {
  enum class Kind : std::uint8_t {
    kLoad,
    kStore,
    kLoadPrivate,
    kBranch,
    kIntOps,
    kFpOps,
    kAvxOps,
  };

  std::uint64_t a = 0;
  std::uint32_t b = 0;
  Kind kind = Kind::kLoad;
};

/// Append-only event buffer mirroring the Instrument reporting surface.
/// Consecutive arithmetic-op events of the same kind are coalesced, which
/// keeps hot loops (one int_ops per maze expansion) compact.
class EventLog {
 public:
  void load(std::uint64_t address) { append(PerfEvent::Kind::kLoad, address, 0); }
  void store(std::uint64_t address) {
    append(PerfEvent::Kind::kStore, address, 0);
  }
  void load_private(std::uint64_t address, std::uint32_t stream) {
    append(PerfEvent::Kind::kLoadPrivate, address, stream);
  }
  void branch(std::uint64_t site, bool taken) {
    append(PerfEvent::Kind::kBranch, site, taken ? 1U : 0U);
  }
  void int_ops(std::uint64_t n) { append_ops(PerfEvent::Kind::kIntOps, n); }
  void fp_ops(std::uint64_t n) { append_ops(PerfEvent::Kind::kFpOps, n); }
  void avx_ops(std::uint64_t n) { append_ops(PerfEvent::Kind::kAvxOps, n); }

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }
  void clear() { events_.clear(); }

  [[nodiscard]] const std::vector<PerfEvent>& events() const {
    return events_;
  }

 private:
  void append(PerfEvent::Kind kind, std::uint64_t a, std::uint32_t b) {
    events_.push_back(PerfEvent{a, b, kind});
  }
  void append_ops(PerfEvent::Kind kind, std::uint64_t n) {
    if (!events_.empty() && events_.back().kind == kind) {
      events_.back().a += n;
      return;
    }
    events_.push_back(PerfEvent{n, 0, kind});
  }

  std::vector<PerfEvent> events_;
};

}  // namespace edacloud::perf
