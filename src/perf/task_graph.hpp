#pragma once
// Task-level parallelism model. Each EDA engine decomposes its work into a
// DAG of tasks with abstract costs; a greedy critical-path list scheduler
// computes the makespan on k vCPUs. The ratio makespan(k)/makespan(1) is the
// engine's parallel-efficiency curve — this is what separates routing
// (independent grid regions, near-linear) from synthesis/placement/STA
// (inherent dependencies) in Fig. 2d.

#include <cstdint>
#include <vector>

namespace edacloud::perf {

using TaskId = std::uint32_t;

class TaskGraph {
 public:
  /// Add a task with `cost` work units depending on `deps` (must be
  /// previously-added ids). Returns the task id.
  TaskId add_task(double cost, const std::vector<TaskId>& deps = {});

  [[nodiscard]] std::size_t task_count() const { return costs_.size(); }
  [[nodiscard]] double total_work() const { return total_work_; }
  [[nodiscard]] double cost(TaskId id) const { return costs_[id]; }

  /// Makespan under greedy list scheduling with `workers` identical workers,
  /// prioritizing tasks on the critical path. Equals total_work() for
  /// workers == 1; lower-bounded by max(total/workers, critical path).
  [[nodiscard]] double makespan(int workers) const;

  /// Length of the critical (longest cost-weighted) path.
  [[nodiscard]] double critical_path() const;

  /// Speedup total_work / makespan(workers).
  [[nodiscard]] double speedup(int workers) const;

 private:
  std::vector<double> costs_;
  std::vector<std::vector<TaskId>> deps_;
  std::vector<std::vector<TaskId>> children_;
  double total_work_ = 0.0;

  [[nodiscard]] std::vector<double> downstream_priority() const;
};

}  // namespace edacloud::perf
