#include "market/market.hpp"

#include <cmath>
#include <cstdio>
#include <limits>
#include <stdexcept>

namespace edacloud::market {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

TraceMarket::TraceMarket(PriceTraceSet traces, cloud::SpotModel base,
                         double planning_bid)
    : traces_(std::move(traces)), base_(base), planning_bid_(planning_bid) {
  if (traces_.traces.empty()) {
    throw std::invalid_argument("TraceMarket needs at least one price trace");
  }
}

std::string TraceMarket::describe() const {
  double lo = kInf;
  double hi = 0.0;
  double span = 0.0;
  for (const PriceTrace& trace : traces_.traces) {
    lo = std::min(lo, trace.min_price());
    hi = std::max(hi, trace.max_price());
    if (!trace.points.empty()) {
      span = std::max(span, trace.points.back().time);
    }
  }
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "trace market: %zu shape(s), %.1fh span, price %.2f-%.2fx "
                "on-demand",
                traces_.traces.size(), span / 3600.0, lo, hi);
  return buffer;
}

double TraceMarket::price_at(perf::InstanceFamily family, int vcpus,
                             double t) const {
  const PriceTrace* trace = traces_.find(family, vcpus);
  return trace != nullptr ? trace->price_at(t) : base_.price_multiplier;
}

double TraceMarket::mean_price(perf::InstanceFamily family, int vcpus,
                               double t0, double t1) const {
  const PriceTrace* trace = traces_.find(family, vcpus);
  return trace != nullptr ? trace->mean_over(t0, t1) : base_.price_multiplier;
}

double TraceMarket::reclaim_draw(perf::InstanceFamily family, int vcpus,
                                 double t, double bid_fraction,
                                 util::Rng& rng) const {
  (void)rng;  // price-triggered: the eviction time is trace-determined
  const PriceTrace* trace = traces_.find(family, vcpus);
  if (trace == nullptr) return kInf;
  return trace->first_crossing_above(t, bid_fraction);
}

cloud::SpotModel TraceMarket::planning_view(perf::InstanceFamily family,
                                            int vcpus) const {
  const PriceTrace* trace = traces_.find(family, vcpus);
  cloud::SpotModel view = base_;
  if (trace != nullptr) {
    view.price_multiplier = trace->mean_price();
    view.interruptions_per_hour =
        trace->upward_crossings_per_hour(planning_bid_);
  }
  return view;
}

cloud::SpotModel TraceMarket::planning_view() const {
  cloud::SpotModel view = base_;
  double price_sum = 0.0;
  double rate_sum = 0.0;
  for (const PriceTrace& trace : traces_.traces) {
    price_sum += trace.mean_price();
    rate_sum += trace.upward_crossings_per_hour(planning_bid_);
  }
  const double n = static_cast<double>(traces_.traces.size());
  view.price_multiplier = price_sum / n;
  view.interruptions_per_hour = rate_sum / n;
  return view;
}

std::shared_ptr<TraceMarket> make_preset_market(const std::string& name,
                                                std::uint64_t seed,
                                                double duration_seconds) {
  PriceTraceGenConfig config;
  config.seed = seed;
  config.duration_seconds = duration_seconds;
  if (name == "drift") {
    config.drift_sigma = 0.04;
    config.spike_probability = 0.0;
  } else if (name == "storm") {
    config.drift_sigma = 0.06;
    config.spike_probability = 0.02;
    config.spike_factor = 4.0;
    config.spike_duration_seconds = 1200.0;
  } else {
    std::string names;
    for (const std::string& known : preset_market_names()) {
      if (!names.empty()) names += " | ";
      names += known;
    }
    throw std::invalid_argument("unknown market preset '" + name +
                                "' (expected " + names + ")");
  }
  return std::make_shared<TraceMarket>(generate_price_traces(config));
}

std::vector<std::string> preset_market_names() { return {"drift", "storm"}; }

void export_market_gauges(const cloud::Market& market, obs::Registry& registry,
                          const obs::Labels& labels) {
  for (const perf::InstanceFamily family :
       {perf::InstanceFamily::kGeneralPurpose,
        perf::InstanceFamily::kMemoryOptimized,
        perf::InstanceFamily::kComputeOptimized}) {
    for (const int vcpus : perf::kVcpuOptions) {
      const cloud::SpotModel view = market.planning_view(family, vcpus);
      obs::Labels shape_labels = labels;
      shape_labels.emplace_back(
          "pool", std::string(perf::to_string(family)) + "-" +
                      std::to_string(vcpus) + "vcpu");
      registry.gauge("market.price_mean", shape_labels)
          .set(view.price_multiplier);
      registry.gauge("market.reclaims_per_hour", shape_labels)
          .set(view.interruptions_per_hour);
    }
  }
}

}  // namespace edacloud::market
