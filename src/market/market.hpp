#pragma once
// TraceMarket: the cloud::Market implementation backed by replayable
// price traces (price_trace.hpp). Reclaims are *price-triggered* — a spot
// VM bidding b is evicted at the first instant its shape's price crosses
// strictly above b — so evictions cluster around price spikes instead of
// arriving as a flat exponential. reclaim_draw consumes NO RNG draws:
// the eviction time is a pure function of (trace, t, bid), which trivially
// satisfies the simulators' cross-shard/thread determinism contract.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cloud/market.hpp"
#include "market/price_trace.hpp"
#include "obs/metrics.hpp"

namespace edacloud::market {

class TraceMarket final : public cloud::Market {
 public:
  /// `base` supplies the non-price spot parameters (restart overhead) and
  /// the fallback price for shapes the trace set does not cover;
  /// `planning_bid` is the bid fraction the planning views assume when
  /// estimating reclaim rates (typically the fleet's default bid).
  explicit TraceMarket(PriceTraceSet traces, cloud::SpotModel base = {},
                       double planning_bid = 0.5);

  [[nodiscard]] std::string name() const override { return "trace"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double price_at(perf::InstanceFamily family, int vcpus,
                                double t) const override;
  [[nodiscard]] double mean_price(perf::InstanceFamily family, int vcpus,
                                  double t0, double t1) const override;
  [[nodiscard]] double reclaim_draw(perf::InstanceFamily family, int vcpus,
                                    double t, double bid_fraction,
                                    util::Rng& rng) const override;
  [[nodiscard]] cloud::SpotModel planning_view(perf::InstanceFamily family,
                                               int vcpus) const override;
  [[nodiscard]] cloud::SpotModel planning_view() const override;

  void set_planning_bid(double bid) { planning_bid_ = bid; }
  [[nodiscard]] const PriceTraceSet& traces() const { return traces_; }

 private:
  PriceTraceSet traces_;
  cloud::SpotModel base_;
  double planning_bid_ = 0.5;
};

/// Seeded preset markets for the CLI and benches:
///   "drift" — gentle per-shape random-walk drift, no spikes;
///   "storm" — drift plus frequent 4x spike regimes (the "price storm").
/// Throws std::invalid_argument on an unknown name; the message enumerates
/// the valid names. `duration_seconds` is how much weather to generate —
/// prices hold flat past the end of the trace.
std::shared_ptr<TraceMarket> make_preset_market(const std::string& name,
                                                std::uint64_t seed,
                                                double duration_seconds);
[[nodiscard]] std::vector<std::string> preset_market_names();

/// Export market.* gauges (per-shape mean/min/max price and expected
/// reclaim rate at `planning bid`) into `registry` — deterministic, so
/// exports stay byte-comparable across shard and thread counts.
void export_market_gauges(const cloud::Market& market,
                          obs::Registry& registry,
                          const obs::Labels& labels = {});

}  // namespace edacloud::market
