#include "market/price_trace.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace edacloud::market {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Index of the segment covering `t`: the last point at or before t,
/// clamped to the first point for t before the trace starts.
std::size_t segment_index(const std::vector<PricePoint>& points, double t) {
  const auto it = std::upper_bound(
      points.begin(), points.end(), t,
      [](double value, const PricePoint& p) { return value < p.time; });
  if (it == points.begin()) return 0;
  return static_cast<std::size_t>(it - points.begin()) - 1;
}

perf::InstanceFamily family_from_name(const std::string& name) {
  for (const perf::InstanceFamily family :
       {perf::InstanceFamily::kGeneralPurpose,
        perf::InstanceFamily::kMemoryOptimized,
        perf::InstanceFamily::kComputeOptimized}) {
    if (name == perf::to_string(family)) return family;
  }
  throw std::invalid_argument("price trace: unknown instance family '" +
                              name + "'");
}

/// Shortest decimal that round-trips the double exactly.
std::string format_double(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  double parsed = 0.0;
  std::sscanf(buffer, "%lf", &parsed);
  if (parsed == value) {
    for (int precision = 1; precision < 17; ++precision) {
      char shorter[64];
      std::snprintf(shorter, sizeof(shorter), "%.*g", precision, value);
      std::sscanf(shorter, "%lf", &parsed);
      if (parsed == value) return shorter;
    }
  }
  return buffer;
}

}  // namespace

double PriceTrace::price_at(double t) const {
  if (points.empty()) return 0.0;
  return points[segment_index(points, t)].price;
}

double PriceTrace::mean_over(double t0, double t1) const {
  if (points.empty()) return 0.0;
  if (t1 <= t0) return price_at(t0);
  double integral = 0.0;
  double t = t0;
  std::size_t i = segment_index(points, t0);
  while (true) {
    double seg_end = i + 1 < points.size() ? points[i + 1].time : t1;
    seg_end = std::min(seg_end, t1);
    if (seg_end > t) {
      integral += points[i].price * (seg_end - t);
      t = seg_end;
    }
    if (t >= t1 || i + 1 >= points.size()) break;
    ++i;
  }
  return integral / (t1 - t0);
}

double PriceTrace::mean_price() const {
  if (points.empty()) return 0.0;
  if (points.size() == 1) return points.front().price;
  return mean_over(points.front().time, points.back().time);
}

double PriceTrace::first_crossing_above(double t, double bid) const {
  if (points.empty()) return kInf;
  if (price_at(t) > bid) return 0.0;
  for (std::size_t i = segment_index(points, t) + 1; i < points.size(); ++i) {
    if (points[i].price > bid) return points[i].time - t;
  }
  return kInf;
}

double PriceTrace::upward_crossings_per_hour(double bid) const {
  if (points.size() < 2) return 0.0;
  const double span_hours =
      (points.back().time - points.front().time) / 3600.0;
  if (span_hours <= 0.0) return 0.0;
  std::uint64_t crossings = 0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i - 1].price <= bid && points[i].price > bid) ++crossings;
  }
  return static_cast<double>(crossings) / span_hours;
}

double PriceTrace::min_price() const {
  double lo = kInf;
  for (const PricePoint& p : points) lo = std::min(lo, p.price);
  return points.empty() ? 0.0 : lo;
}

double PriceTrace::max_price() const {
  double hi = 0.0;
  for (const PricePoint& p : points) hi = std::max(hi, p.price);
  return hi;
}

const PriceTrace* PriceTraceSet::find(perf::InstanceFamily family,
                                      int vcpus) const {
  for (const PriceTrace& trace : traces) {
    if (trace.family == family && trace.vcpus == vcpus) return &trace;
  }
  return nullptr;
}

std::string write_price_traces(const PriceTraceSet& set) {
  std::string out = "edacloud-price-trace v1\n";
  for (const PriceTrace& trace : set.traces) {
    out += "trace ";
    out += perf::to_string(trace.family);
    out += " " + std::to_string(trace.vcpus) + "\n";
    for (const PricePoint& point : trace.points) {
      out += format_double(point.time);
      out += " ";
      out += format_double(point.price);
      out += "\n";
    }
  }
  return out;
}

PriceTraceSet parse_price_traces(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != "edacloud-price-trace v1") {
    throw std::invalid_argument(
        "price trace: missing 'edacloud-price-trace v1' header");
  }
  PriceTraceSet set;
  PriceTrace* current = nullptr;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string head;
    fields >> head;
    if (head == "trace") {
      std::string family_name;
      int vcpus = 0;
      if (!(fields >> family_name >> vcpus) || vcpus <= 0) {
        throw std::invalid_argument(
            "price trace: bad 'trace <family> <vcpus>' at line " +
            std::to_string(line_no));
      }
      PriceTrace trace;
      trace.family = family_from_name(family_name);
      trace.vcpus = vcpus;
      if (set.find(trace.family, trace.vcpus) != nullptr) {
        throw std::invalid_argument(
            "price trace: duplicate trace for " + family_name + "-" +
            std::to_string(vcpus) + "vcpu at line " + std::to_string(line_no));
      }
      set.traces.push_back(trace);
      current = &set.traces.back();
      continue;
    }
    if (current == nullptr) {
      throw std::invalid_argument(
          "price trace: point before any 'trace' section at line " +
          std::to_string(line_no));
    }
    PricePoint point;
    std::istringstream row(line);
    if (!(row >> point.time >> point.price)) {
      throw std::invalid_argument("price trace: bad point at line " +
                                  std::to_string(line_no));
    }
    if (point.price <= 0.0) {
      throw std::invalid_argument("price trace: price must be > 0 at line " +
                                  std::to_string(line_no));
    }
    if (!current->points.empty() &&
        point.time <= current->points.back().time) {
      throw std::invalid_argument(
          "price trace: times must be strictly ascending at line " +
          std::to_string(line_no));
    }
    current->points.push_back(point);
  }
  for (const PriceTrace& trace : set.traces) {
    if (trace.points.empty()) {
      throw std::invalid_argument(
          "price trace: empty trace for " +
          std::string(perf::to_string(trace.family)) + "-" +
          std::to_string(trace.vcpus) + "vcpu");
    }
  }
  if (set.traces.empty()) {
    throw std::invalid_argument("price trace: no trace sections");
  }
  return set;
}

PriceTraceSet load_price_traces(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read price trace: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return parse_price_traces(buffer.str());
  } catch (const std::invalid_argument& error) {
    throw std::invalid_argument(std::string(error.what()) + " (" + path + ")");
  }
}

PriceTraceSet generate_price_traces(const PriceTraceGenConfig& config) {
  if (config.step_seconds <= 0.0 || config.duration_seconds <= 0.0) {
    throw std::invalid_argument(
        "price trace generation: step and duration must be > 0");
  }
  if (config.floor_price <= 0.0 || config.cap_price < config.floor_price) {
    throw std::invalid_argument(
        "price trace generation: need 0 < floor <= cap");
  }
  PriceTraceSet set;
  int shape_index = 0;
  for (const perf::InstanceFamily family :
       {perf::InstanceFamily::kGeneralPurpose,
        perf::InstanceFamily::kMemoryOptimized,
        perf::InstanceFamily::kComputeOptimized}) {
    for (const int vcpus : perf::kVcpuOptions) {
      // Each shape owns a salted splitmix stream, so the set is a pure
      // function of (config) and shapes never alias each other's draws.
      std::uint64_t state =
          config.seed ^ ((101 + static_cast<std::uint64_t>(shape_index)) *
                         0x9E3779B97F4A7C15ULL);
      util::Rng rng(util::splitmix64(state));
      ++shape_index;

      PriceTrace trace;
      trace.family = family;
      trace.vcpus = vcpus;
      double price = std::clamp(config.start_price, config.floor_price,
                                config.cap_price);
      double spike_until = -1.0;
      for (double t = 0.0; t <= config.duration_seconds;
           t += config.step_seconds) {
        if (t > 0.0) {
          // Log-space random walk keeps the price positive and makes the
          // drift multiplicative, clamped into [floor, cap].
          price = std::clamp(
              price * std::exp(config.drift_sigma * rng.next_gaussian()),
              config.floor_price, config.cap_price);
        }
        const bool spike_roll = config.spike_probability > 0.0 &&
                                rng.next_bool(config.spike_probability);
        if (spike_roll && t >= spike_until) {
          spike_until = t + config.spike_duration_seconds;
        }
        const double quoted =
            t < spike_until
                ? std::min(config.cap_price, price * config.spike_factor)
                : price;
        if (trace.points.empty() || quoted != trace.points.back().price) {
          trace.points.push_back({t, quoted});
        }
      }
      set.traces.push_back(std::move(trace));
    }
  }
  return set;
}

}  // namespace edacloud::market
