#pragma once
// Deterministic time-varying spot-price traces (ROADMAP item 5, DESIGN.md
// §15). A trace is a piecewise-constant price series per (family, vCPU)
// shape — price quoted as a fraction of the shape's on-demand hourly rate,
// matching cloud::SpotModel::price_multiplier — replayable from a canonical
// text format and generatable from a seed (log-space random-walk drift plus
// spike regimes). Everything here is a pure function of its inputs: the
// same seed and config always produce byte-identical traces, which is what
// lets the fleet simulators keep their cross-shard/thread byte-identity
// contract under a moving market.

#include <cstdint>
#include <string>
#include <vector>

#include "perf/vm.hpp"

namespace edacloud::market {

struct PricePoint {
  double time = 0.0;   // absolute sim seconds; ascending within a trace
  double price = 0.0;  // fraction of the on-demand rate, > 0
};

/// One shape's price series. Piecewise-constant semantics: the price at
/// time t is the price of the last point at or before t; before the first
/// point the first price applies, after the last point the last price
/// holds forever.
struct PriceTrace {
  perf::InstanceFamily family = perf::InstanceFamily::kGeneralPurpose;
  int vcpus = 1;
  std::vector<PricePoint> points;

  [[nodiscard]] double price_at(double t) const;
  /// Time-weighted mean price over [t0, t1]; price_at(t0) when t1 <= t0.
  [[nodiscard]] double mean_over(double t0, double t1) const;
  /// Mean price over the trace's own span [first.time, last.time].
  [[nodiscard]] double mean_price() const;
  /// Seconds from `t` until the price is strictly above `bid` (0 when it
  /// already is; +infinity when it never crosses).
  [[nodiscard]] double first_crossing_above(double t, double bid) const;
  /// Upward crossings of `bid` per hour over the trace span — the expected
  /// reclaim rate a VM bidding `bid` experiences.
  [[nodiscard]] double upward_crossings_per_hour(double bid) const;
  [[nodiscard]] double min_price() const;
  [[nodiscard]] double max_price() const;
};

struct PriceTraceSet {
  std::vector<PriceTrace> traces;  // canonical (family, vcpus) order

  /// The trace for (family, vcpus), or nullptr when the set has none.
  [[nodiscard]] const PriceTrace* find(perf::InstanceFamily family,
                                       int vcpus) const;
};

/// Canonical text format (round-trips through parse_price_traces):
///
///   edacloud-price-trace v1
///   trace <family-name> <vcpus>
///   <time-seconds> <price-fraction>
///   ...
///
/// family-name is perf::to_string's name ("general" | "memory" |
/// "compute"); blank lines and '#' comment lines are ignored.
std::string write_price_traces(const PriceTraceSet& set);

/// Parse the canonical text format. Throws std::invalid_argument on a bad
/// header, unknown family, non-ascending times or non-positive prices.
PriceTraceSet parse_price_traces(const std::string& text);

/// Read and parse a trace file. Throws std::invalid_argument (parse error
/// message includes the path) or std::runtime_error (unreadable file).
PriceTraceSet load_price_traces(const std::string& path);

/// Seeded synthetic market weather. Each (family, vCPU) shape gets its own
/// splitmix-derived RNG stream, so the set is a pure function of this
/// config and adding shapes never perturbs existing ones.
struct PriceTraceGenConfig {
  std::uint64_t seed = 1;
  double duration_seconds = 24.0 * 3600.0;
  double step_seconds = 300.0;     // one point per step
  double start_price = 0.35;       // t = 0 price for every shape
  double drift_sigma = 0.05;       // per-step lognormal drift
  double floor_price = 0.08;       // drift clamp, keeps prices positive
  double cap_price = 1.60;         // spot can exceed on-demand in a squeeze
  double spike_probability = 0.0;  // per-step chance a spike regime starts
  double spike_factor = 3.0;       // price multiplier while spiking
  double spike_duration_seconds = 1800.0;
};

PriceTraceSet generate_price_traces(const PriceTraceGenConfig& config);

}  // namespace edacloud::market
