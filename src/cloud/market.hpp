#pragma once
// The spot-market seam. Everything that used to read the flat SpotModel
// struct directly — fleet billing, reclaim hazards, MCKP planning — now
// talks to this interface, so a time-varying price trace (market::
// TraceMarket) and the classic flat model (StaticMarket below) are
// interchangeable. Prices are quoted as a *fraction of the on-demand rate*
// for the same (family, vCPU) shape, matching SpotModel::price_multiplier.
//
// Determinism contract: every method is a pure function of its arguments
// (plus immutable construction-time state). reclaim_draw may consume RNG
// draws, but must consume the same number of draws for every call with the
// same implementation — the simulators arm the reclaim hazard whenever a
// spot VM starts a task, and the draw discipline ("draws happen whenever
// their hazard is armed, never conditionally on another draw") is what
// keeps same-seed runs byte-identical across shard and thread counts.

#include <memory>
#include <string>

#include "cloud/pricing.hpp"
#include "perf/vm.hpp"
#include "util/rng.hpp"

namespace edacloud::cloud {

class Market {
 public:
  virtual ~Market() = default;

  /// Short machine name ("static", "trace", ...).
  [[nodiscard]] virtual std::string name() const = 0;
  /// One-line human summary for banners and logs.
  [[nodiscard]] virtual std::string describe() const = 0;

  /// Spot price of a (family, vcpus) shape at sim time `t`, as a fraction
  /// of its on-demand hourly rate.
  [[nodiscard]] virtual double price_at(perf::InstanceFamily family,
                                        int vcpus, double t) const = 0;

  /// Time-weighted mean price over [t0, t1] — the per-second billing rate
  /// a spot VM alive across that window actually pays. Implementations
  /// must return price_at(t0) when t1 <= t0.
  [[nodiscard]] virtual double mean_price(perf::InstanceFamily family,
                                          int vcpus, double t0,
                                          double t1) const = 0;

  /// Seconds from `t` until a spot VM of this shape bidding `bid_fraction`
  /// (of on-demand) is reclaimed; +infinity = never. Price-triggered
  /// markets return the first instant the price crosses above the bid;
  /// the static market draws the classic exponential from `rng`.
  [[nodiscard]] virtual double reclaim_draw(perf::InstanceFamily family,
                                            int vcpus, double t,
                                            double bid_fraction,
                                            util::Rng& rng) const = 0;

  /// Planning summary of one shape: a SpotModel whose price_multiplier is
  /// the long-run mean price and whose interruptions_per_hour is the
  /// expected reclaim rate — what the MCKP optimizer and the cost-aware
  /// policy price expected runtimes with.
  [[nodiscard]] virtual SpotModel planning_view(perf::InstanceFamily family,
                                                int vcpus) const = 0;

  /// Market-wide planning summary (averaged over shapes).
  [[nodiscard]] virtual SpotModel planning_view() const = 0;
};

/// The pre-market behavior as a Market: a flat price multiplier and a flat
/// exponential reclaim rate, independent of time and bid. Wrapping a
/// SpotModel in this adapter reproduces the old fleet numbers bit-for-bit
/// (same RNG draws, same float operations).
class StaticMarket final : public Market {
 public:
  StaticMarket() = default;
  explicit StaticMarket(SpotModel spot) : spot_(spot) {}

  [[nodiscard]] std::string name() const override { return "static"; }
  [[nodiscard]] std::string describe() const override;

  [[nodiscard]] double price_at(perf::InstanceFamily family, int vcpus,
                                double t) const override {
    (void)family;
    (void)vcpus;
    (void)t;
    return spot_.price_multiplier;
  }

  [[nodiscard]] double mean_price(perf::InstanceFamily family, int vcpus,
                                  double t0, double t1) const override {
    (void)family;
    (void)vcpus;
    (void)t0;
    (void)t1;
    return spot_.price_multiplier;
  }

  [[nodiscard]] double reclaim_draw(perf::InstanceFamily family, int vcpus,
                                    double t, double bid_fraction,
                                    util::Rng& rng) const override {
    (void)family;
    (void)vcpus;
    (void)t;
    (void)bid_fraction;  // the flat model reclaims regardless of the bid
    return spot_.sample_time_to_interruption(rng);
  }

  [[nodiscard]] SpotModel planning_view(perf::InstanceFamily family,
                                        int vcpus) const override {
    (void)family;
    (void)vcpus;
    return spot_;
  }

  [[nodiscard]] SpotModel planning_view() const override { return spot_; }

  [[nodiscard]] const SpotModel& spot() const { return spot_; }

 private:
  SpotModel spot_;
};

/// `market` if set, else a StaticMarket wrapping `spot` — the normalization
/// every consumer of FleetConfig::market applies so a null market means
/// "the classic flat model" everywhere.
std::shared_ptr<const Market> ensure_market(
    std::shared_ptr<const Market> market, const SpotModel& spot);

}  // namespace edacloud::cloud
