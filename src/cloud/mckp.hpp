#pragma once
// Multi-choice knapsack deployment optimization (§III-C). Each flow stage
// offers one item per candidate VM configuration (runtime, cost); exactly
// one item per stage must be picked, total runtime must respect the
// deadline, and the objective is optimized over the remaining freedom.
//
// Two objectives are provided (see DESIGN.md "Objective-function note"):
//  - kMinTotalCost    : minimize Σ cost — the prose semantics the paper's
//                       results (Table I, Fig. 6) describe.
//  - kMaxInverseCost  : maximize Σ 1/cost — the literal Eq. (2) objective.
//
// Both are solved exactly with the Dudzinski–Walukiewicz pseudo-polynomial
// dynamic program over integer seconds; a brute-force reference solver
// backs the tests.

#include <cstdint>
#include <string>
#include <vector>

namespace edacloud::cloud {

struct MckpItem {
  double time_seconds = 0.0;
  double cost_usd = 0.0;
  std::string label;  // e.g. "general-purpose-4vcpu"
};

struct MckpStage {
  std::string name;  // "synthesis", "placement", ...
  std::vector<MckpItem> items;
};

enum class Objective : std::uint8_t {
  kMinTotalCost,
  kMaxInverseCost,
};

struct MckpSelection {
  bool feasible = false;
  std::vector<int> choice;  // item index per stage (empty if infeasible)
  double total_time_seconds = 0.0;
  double total_cost_usd = 0.0;
  double objective_value = 0.0;
};

/// Exact DP. Runtimes are rounded to whole seconds (per-second billing);
/// deadline_seconds is truncated to an integer budget.
MckpSelection solve_mckp_dp(const std::vector<MckpStage>& stages,
                            double deadline_seconds,
                            Objective objective = Objective::kMinTotalCost);

/// Exhaustive reference (exponential; tests and small instances only).
MckpSelection solve_mckp_brute_force(
    const std::vector<MckpStage>& stages, double deadline_seconds,
    Objective objective = Objective::kMinTotalCost);

/// Fixed-choice baselines: pick items[index] in every stage (clamped to the
/// stage's item count). index 0 = under-provisioning (1 vCPU everywhere);
/// last = over-provisioning (8 vCPUs everywhere).
MckpSelection fixed_choice(const std::vector<MckpStage>& stages, int index);

/// The fastest possible completion time (every stage at its quickest item);
/// deadlines below this are infeasible ("NA" in Table I).
double fastest_completion_seconds(const std::vector<MckpStage>& stages);

/// One point of the cost-vs-deadline trade-off curve.
struct ParetoPoint {
  double deadline_seconds = 0.0;  // smallest budget achieving this cost
  double cost_usd = 0.0;          // minimum cost within that budget
};

/// The full non-dominated (deadline, min-cost) frontier, from the fastest
/// feasible completion to the budget where the global cost minimum is
/// reached. One exact DP sweep; breakpoints only (cost strictly decreases
/// between consecutive points).
std::vector<ParetoPoint> cost_deadline_frontier(
    const std::vector<MckpStage>& stages);

/// The dual planning problem: the fastest completion achievable WITHIN a
/// cost budget (teams often have a budget rather than a deadline).
/// Implemented as a scan of the exact cost-deadline frontier. Returns an
/// infeasible selection if even the globally cheapest plan exceeds the
/// budget.
MckpSelection fastest_within_budget(const std::vector<MckpStage>& stages,
                                    double budget_usd);

}  // namespace edacloud::cloud
