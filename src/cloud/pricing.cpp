#include "cloud/pricing.hpp"

#include <cmath>
#include <stdexcept>

namespace edacloud::cloud {

void PricingCatalog::set_rate(perf::InstanceFamily family,
                              double usd_per_vcpu_hour) {
  if (usd_per_vcpu_hour <= 0.0) {
    throw std::invalid_argument("rate must be positive");
  }
  switch (family) {
    case perf::InstanceFamily::kGeneralPurpose:
      general_ = usd_per_vcpu_hour;
      break;
    case perf::InstanceFamily::kMemoryOptimized:
      memory_ = usd_per_vcpu_hour;
      break;
    case perf::InstanceFamily::kComputeOptimized:
      compute_ = usd_per_vcpu_hour;
      break;
  }
}

double PricingCatalog::rate(perf::InstanceFamily family) const {
  switch (family) {
    case perf::InstanceFamily::kGeneralPurpose:
      return general_;
    case perf::InstanceFamily::kMemoryOptimized:
      return memory_;
    case perf::InstanceFamily::kComputeOptimized:
      return compute_;
  }
  return general_;
}

double PricingCatalog::hourly_usd(perf::InstanceFamily family,
                                  int vcpus) const {
  if (vcpus <= 0) throw std::invalid_argument("vcpus must be positive");
  return rate(family) * static_cast<double>(vcpus);
}

double PricingCatalog::job_cost_usd(perf::InstanceFamily family, int vcpus,
                                    double runtime_seconds) const {
  if (runtime_seconds < 0.0) {
    throw std::invalid_argument("runtime must be non-negative");
  }
  const double billed_seconds = std::ceil(runtime_seconds);
  return hourly_usd(family, vcpus) * billed_seconds / 3600.0;
}

double PricingCatalog::spot_job_cost_usd(perf::InstanceFamily family,
                                          int vcpus, double runtime_seconds,
                                          const SpotModel& spot) const {
  const double expected = spot.expected_runtime_seconds(runtime_seconds);
  return job_cost_usd(family, vcpus, expected) * spot.price_multiplier;
}

PricingCatalog PricingCatalog::aws_like() { return PricingCatalog(); }

}  // namespace edacloud::cloud
