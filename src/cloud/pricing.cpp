#include "cloud/pricing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace edacloud::cloud {

namespace {

/// Poisson(lambda) via Knuth's product-of-uniforms for small rates and a
/// rounded normal approximation beyond (exp(-lambda) underflows there).
int sample_poisson(double lambda, util::Rng& rng) {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    int count = 0;
    double product = rng.next_double();
    while (product > limit) {
      ++count;
      product *= rng.next_double();
    }
    return count;
  }
  const double draw = lambda + std::sqrt(lambda) * rng.next_gaussian();
  return static_cast<int>(std::max(0.0, std::round(draw)));
}

}  // namespace

void PricingCatalog::set_rate(perf::InstanceFamily family,
                              double usd_per_vcpu_hour) {
  if (usd_per_vcpu_hour <= 0.0) {
    throw std::invalid_argument("rate must be positive");
  }
  switch (family) {
    case perf::InstanceFamily::kGeneralPurpose:
      general_ = usd_per_vcpu_hour;
      break;
    case perf::InstanceFamily::kMemoryOptimized:
      memory_ = usd_per_vcpu_hour;
      break;
    case perf::InstanceFamily::kComputeOptimized:
      compute_ = usd_per_vcpu_hour;
      break;
  }
}

double PricingCatalog::rate(perf::InstanceFamily family) const {
  switch (family) {
    case perf::InstanceFamily::kGeneralPurpose:
      return general_;
    case perf::InstanceFamily::kMemoryOptimized:
      return memory_;
    case perf::InstanceFamily::kComputeOptimized:
      return compute_;
  }
  return general_;
}

std::vector<double> SpotModel::sample_interruptions(double runtime_seconds,
                                                    util::Rng& rng) const {
  if (runtime_seconds <= 0.0) return {};
  const double lambda = interruptions_per_hour * runtime_seconds / 3600.0;
  const int count = sample_poisson(lambda, rng);
  std::vector<double> offsets(static_cast<std::size_t>(count));
  for (auto& offset : offsets) offset = rng.next_double(0.0, runtime_seconds);
  std::sort(offsets.begin(), offsets.end());
  return offsets;
}

double SpotModel::sampled_runtime_seconds(double runtime_seconds,
                                          util::Rng& rng) const {
  const auto events = sample_interruptions(runtime_seconds, rng);
  return runtime_seconds *
         (1.0 + static_cast<double>(events.size()) * restart_overhead_fraction);
}

double SpotModel::sample_time_to_interruption(util::Rng& rng) const {
  if (interruptions_per_hour <= 0.0) {
    return std::numeric_limits<double>::infinity();
  }
  const double rate_per_second = interruptions_per_hour / 3600.0;
  return -std::log(1.0 - rng.next_double()) / rate_per_second;
}

double FaultModel::expected_runtime_seconds(double work_seconds) const {
  if (work_seconds <= 0.0) return 0.0;
  const double lambda = interruptions_per_hour / 3600.0;  // per second
  const double delta = std::max(0.0, checkpoint_overhead_seconds);
  const bool checkpointed =
      checkpoint_interval_seconds > 0.0 &&
      checkpoint_interval_seconds < work_seconds;
  if (lambda <= 0.0) {
    if (!checkpointed) return work_seconds;
    const double segments =
        std::ceil(work_seconds / checkpoint_interval_seconds);
    return work_seconds + (segments - 1.0) * delta;
  }
  // Daly: a segment of length a (work + snapshot) completes failure-free
  // with probability e^{-lambda a}; each failed try costs an expected
  // 1/lambda of burned time plus the restart delay, so
  //   E[segment] = (e^{lambda a} - 1) * (1/lambda + R).
  const double per_failure = 1.0 / lambda + std::max(0.0, restart_delay_seconds);
  const auto segment_expected = [&](double a) {
    return std::expm1(lambda * a) * per_failure;
  };
  if (!checkpointed) return segment_expected(work_seconds);
  const double tau = checkpoint_interval_seconds;
  const double full_segments = std::floor(work_seconds / tau + 1e-12);
  const double tail = work_seconds - full_segments * tau;
  double total = full_segments * segment_expected(tau + delta);
  if (tail > 1e-12) {
    total += segment_expected(tail);
  } else if (full_segments >= 1.0) {
    // No tail: the final segment needs no snapshot; refund its overhead.
    total -= segment_expected(tau + delta) - segment_expected(tau);
  }
  return total;
}

double PricingCatalog::hourly_usd(perf::InstanceFamily family,
                                  int vcpus) const {
  if (vcpus <= 0) throw std::invalid_argument("vcpus must be positive");
  return rate(family) * static_cast<double>(vcpus);
}

double PricingCatalog::job_cost_usd(perf::InstanceFamily family, int vcpus,
                                    double runtime_seconds) const {
  if (runtime_seconds < 0.0) {
    throw std::invalid_argument("runtime must be non-negative");
  }
  const double billed_seconds = std::ceil(runtime_seconds);
  return hourly_usd(family, vcpus) * billed_seconds / 3600.0;
}

double PricingCatalog::spot_job_cost_usd(perf::InstanceFamily family,
                                          int vcpus, double runtime_seconds,
                                          const SpotModel& spot) const {
  const double expected = spot.expected_runtime_seconds(runtime_seconds);
  return job_cost_usd(family, vcpus, expected) * spot.price_multiplier;
}

double PricingCatalog::faulty_job_cost_usd(perf::InstanceFamily family,
                                           int vcpus, double runtime_seconds,
                                           const FaultModel& faults) const {
  return job_cost_usd(family, vcpus,
                      faults.expected_runtime_seconds(runtime_seconds));
}

PricingCatalog PricingCatalog::aws_like() { return PricingCatalog(); }

}  // namespace edacloud::cloud
