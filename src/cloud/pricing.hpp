#pragma once
// Cloud pricing model. Mirrors AWS-style on-demand pricing where an
// instance's hourly price is linear in vCPUs with a family-dependent rate
// (m5-like general purpose, r5-like memory optimized, c5-like compute
// optimized), billed per second as the paper assumes ("cloud machines are
// billed per second (no fractions)").

#include <vector>

#include "perf/vm.hpp"
#include "util/rng.hpp"

namespace edacloud::cloud {

struct PriceEntry {
  perf::InstanceFamily family = perf::InstanceFamily::kGeneralPurpose;
  double usd_per_vcpu_hour = 0.048;
};

/// Spot-market model: deep discount, but instances can be reclaimed.
/// An interruption loses `restart_overhead_fraction` of the work done in
/// the current attempt, so the *expected* runtime stretches with the
/// interruption rate — long jobs on spot get progressively worse, which is
/// exactly the trade-off the optimizer must weigh.
struct SpotModel {
  double price_multiplier = 0.35;          // spot price / on-demand price
  double interruptions_per_hour = 0.08;    // reclaim rate
  double restart_overhead_fraction = 0.6;  // work lost per interruption

  /// Expected wall-clock once expected interruptions are paid for.
  [[nodiscard]] double expected_runtime_seconds(double runtime_seconds) const {
    const double expected_interruptions =
        interruptions_per_hour * runtime_seconds / 3600.0;
    return runtime_seconds *
           (1.0 + expected_interruptions * restart_overhead_fraction);
  }

  /// Sorted reclaim-event offsets within a `runtime_seconds` window: a
  /// Poisson count at `interruptions_per_hour`, placed uniformly. The
  /// discrete-event simulator replays these instead of the expected-value
  /// formula above.
  [[nodiscard]] std::vector<double> sample_interruptions(
      double runtime_seconds, util::Rng& rng) const;

  /// One sampled execution: each reclaim in the window costs
  /// `restart_overhead_fraction` of the nominal runtime, so the sample mean
  /// over many replays converges to expected_runtime_seconds().
  [[nodiscard]] double sampled_runtime_seconds(double runtime_seconds,
                                               util::Rng& rng) const;

  /// Exponential time (seconds) until the next reclaim — the memoryless
  /// per-attempt draw the simulator uses when a spot VM starts a task.
  /// Returns +infinity when the interruption rate is zero.
  [[nodiscard]] double sample_time_to_interruption(util::Rng& rng) const;
};

/// Retry-aware expected-runtime model (Daly's checkpoint/restart analysis):
/// failures arrive as a Poisson process at `interruptions_per_hour`; a
/// segment of work must complete failure-free or it is repeated, each
/// failure also paying `restart_delay_seconds` (the mean retry backoff).
/// With checkpoints every `checkpoint_interval_seconds` only the current
/// segment is at risk; without them the whole job is one segment. The
/// resulting stretch factor is what the cost-aware scheduling policy feeds
/// into the MCKP so spot capacity is priced at its *effective* cost — the
/// cheap rate times the retry-inflated expected runtime. See DESIGN.md §10.
struct FaultModel {
  double interruptions_per_hour = 0.0;
  double checkpoint_interval_seconds = 0.0;  // <= 0: restart from zero
  double checkpoint_overhead_seconds = 0.0;  // per snapshot
  double restart_delay_seconds = 0.0;        // mean backoff paid per failure

  /// Expected wall-clock to push `work_seconds` of work through, retries,
  /// snapshots and backoff included. Returns `work_seconds` unchanged at a
  /// zero interruption rate (plus snapshot overhead when checkpointing).
  [[nodiscard]] double expected_runtime_seconds(double work_seconds) const;
};

class PricingCatalog {
 public:
  PricingCatalog() = default;

  void set_rate(perf::InstanceFamily family, double usd_per_vcpu_hour);
  [[nodiscard]] double rate(perf::InstanceFamily family) const;

  /// Hourly price of a (family, vcpus) instance.
  [[nodiscard]] double hourly_usd(perf::InstanceFamily family,
                                  int vcpus) const;

  /// Cost of running a job for `runtime_seconds` (per-second billing,
  /// whole seconds — fractions round up to the next second).
  [[nodiscard]] double job_cost_usd(perf::InstanceFamily family, int vcpus,
                                    double runtime_seconds) const;

  /// Expected cost of a job on a spot instance: the discounted rate paid
  /// for the (stretched) expected runtime.
  [[nodiscard]] double spot_job_cost_usd(perf::InstanceFamily family,
                                         int vcpus, double runtime_seconds,
                                         const SpotModel& spot) const;

  /// Effective cost of a job under a failure/retry model: the on-demand
  /// rate paid for the FaultModel's expected (retry-inflated) runtime.
  /// Multiply by a spot discount externally when the capacity is spot.
  [[nodiscard]] double faulty_job_cost_usd(perf::InstanceFamily family,
                                           int vcpus, double runtime_seconds,
                                           const FaultModel& faults) const;

  /// AWS-like on-demand rates (us-east-1 ballpark at the paper's writing):
  /// m5 $0.048/vCPU-h, r5 $0.063/vCPU-h, c5 $0.0425/vCPU-h.
  static PricingCatalog aws_like();

 private:
  double general_ = 0.048;
  double memory_ = 0.063;
  double compute_ = 0.0425;
};

}  // namespace edacloud::cloud
