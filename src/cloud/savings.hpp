#pragma once
// Cost-savings analysis vs. naive provisioning (Fig. 6): the optimizer's
// cost against over-provisioning (fastest configuration everywhere) and
// under-provisioning (1 vCPU everywhere).

#include "cloud/mckp.hpp"

namespace edacloud::cloud {

struct SavingsReport {
  bool feasible = false;
  double deadline_seconds = 0.0;
  double optimized_cost_usd = 0.0;
  double optimized_time_seconds = 0.0;
  double over_provision_cost_usd = 0.0;   // all-fastest
  double over_provision_time_seconds = 0.0;
  double under_provision_cost_usd = 0.0;  // all-1-vCPU
  double under_provision_time_seconds = 0.0;
  double saving_vs_over = 0.0;   // fraction of over-provisioning cost saved
  double saving_vs_under = 0.0;  // fraction (negative if optimizer costs more)
};

/// Items within each stage must be ordered smallest (1 vCPU) to largest
/// (8 vCPUs) machine, as DeploymentOptimizer produces them.
SavingsReport analyze_savings(const std::vector<MckpStage>& stages,
                              double deadline_seconds,
                              Objective objective = Objective::kMinTotalCost);

}  // namespace edacloud::cloud
