#include "cloud/savings.hpp"

#include <algorithm>

namespace edacloud::cloud {

SavingsReport analyze_savings(const std::vector<MckpStage>& stages,
                              double deadline_seconds, Objective objective) {
  SavingsReport report;
  report.deadline_seconds = deadline_seconds;

  const MckpSelection optimized =
      solve_mckp_dp(stages, deadline_seconds, objective);
  report.feasible = optimized.feasible && !optimized.choice.empty();

  int max_items = 0;
  for (const MckpStage& stage : stages) {
    max_items = std::max(max_items, static_cast<int>(stage.items.size()));
  }
  const MckpSelection over = fixed_choice(stages, max_items - 1);
  const MckpSelection under = fixed_choice(stages, 0);
  report.over_provision_cost_usd = over.total_cost_usd;
  report.over_provision_time_seconds = over.total_time_seconds;
  report.under_provision_cost_usd = under.total_cost_usd;
  report.under_provision_time_seconds = under.total_time_seconds;

  if (report.feasible) {
    report.optimized_cost_usd = optimized.total_cost_usd;
    report.optimized_time_seconds = optimized.total_time_seconds;
    if (over.total_cost_usd > 0.0) {
      report.saving_vs_over =
          1.0 - optimized.total_cost_usd / over.total_cost_usd;
    }
    if (under.total_cost_usd > 0.0) {
      report.saving_vs_under =
          1.0 - optimized.total_cost_usd / under.total_cost_usd;
    }
  }
  return report;
}

}  // namespace edacloud::cloud
