#include "cloud/mckp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace edacloud::cloud {

namespace {

constexpr double kInfinity = std::numeric_limits<double>::infinity();

long long rounded_seconds(double seconds) {
  return std::max<long long>(0, std::llround(seconds));
}

/// Stage item value under the chosen objective (DP maximizes value with
/// min-cost mapped to maximizing -cost).
double item_value(const MckpItem& item, Objective objective) {
  switch (objective) {
    case Objective::kMinTotalCost:
      return -item.cost_usd;
    case Objective::kMaxInverseCost:
      // Zero-cost items would be infinitely attractive; clamp to a large
      // finite value so sums stay well-defined.
      return item.cost_usd > 0.0 ? 1.0 / item.cost_usd : 1e18;
  }
  return 0.0;
}

MckpSelection finalize(const std::vector<MckpStage>& stages,
                       std::vector<int> choice, Objective objective) {
  MckpSelection selection;
  selection.feasible = true;
  selection.choice = std::move(choice);
  for (std::size_t l = 0; l < stages.size(); ++l) {
    const MckpItem& item =
        stages[l].items[static_cast<std::size_t>(selection.choice[l])];
    selection.total_time_seconds += item.time_seconds;
    selection.total_cost_usd += item.cost_usd;
    selection.objective_value += item_value(item, objective);
  }
  return selection;
}

}  // namespace

MckpSelection solve_mckp_dp(const std::vector<MckpStage>& stages,
                            double deadline_seconds, Objective objective) {
  MckpSelection infeasible;
  if (stages.empty()) {
    infeasible.feasible = true;
    return infeasible;
  }
  for (const MckpStage& stage : stages) {
    if (stage.items.empty()) {
      throw std::invalid_argument("stage without items: " + stage.name);
    }
  }
  const long long budget =
      static_cast<long long>(std::floor(deadline_seconds));
  if (budget < 0) return infeasible;
  const std::size_t columns = static_cast<std::size_t>(budget) + 1;

  // dp[c] = best achievable value with total time <= c; -inf (the paper's
  // z_l(C) := -inf convention) marks "no assignment fits in c". Zero
  // stages consume zero time, so the base case is 0 everywhere.
  std::vector<double> dp(columns, 0.0);

  // choice_table[l][c] = item picked for stage l at budget c.
  std::vector<std::vector<int>> choice_table(
      stages.size(), std::vector<int>(columns, -1));

  std::vector<double> next(columns);
  for (std::size_t l = 0; l < stages.size(); ++l) {
    std::fill(next.begin(), next.end(), -kInfinity);
    for (std::size_t c = 0; c < columns; ++c) {
      for (std::size_t j = 0; j < stages[l].items.size(); ++j) {
        const MckpItem& item = stages[l].items[j];
        const long long t = rounded_seconds(item.time_seconds);
        if (static_cast<long long>(c) < t) continue;
        const double prev = dp[c - static_cast<std::size_t>(t)];
        if (prev == -kInfinity) continue;
        const double candidate = prev + item_value(item, objective);
        if (candidate > next[c]) {
          next[c] = candidate;
          choice_table[l][c] = static_cast<int>(j);
        }
      }
    }
    dp = next;
  }

  // Find the best terminal budget.
  std::size_t best_c = 0;
  double best_value = -kInfinity;
  for (std::size_t c = 0; c < columns; ++c) {
    if (dp[c] > best_value) {
      best_value = dp[c];
      best_c = c;
    }
  }
  if (best_value == -kInfinity) return infeasible;

  // Reconstruct choices backwards.
  std::vector<int> choice(stages.size(), -1);
  std::size_t c = best_c;
  for (std::size_t l = stages.size(); l-- > 0;) {
    const int j = choice_table[l][c];
    if (j < 0) return infeasible;  // defensive; should not happen
    choice[l] = j;
    c -= static_cast<std::size_t>(rounded_seconds(
        stages[l].items[static_cast<std::size_t>(j)].time_seconds));
  }
  return finalize(stages, std::move(choice), objective);
}

MckpSelection solve_mckp_brute_force(const std::vector<MckpStage>& stages,
                                     double deadline_seconds,
                                     Objective objective) {
  MckpSelection best;
  if (stages.empty()) {
    best.feasible = true;
    return best;
  }
  std::vector<int> choice(stages.size(), 0);
  double best_value = -kInfinity;
  const long long budget =
      static_cast<long long>(std::floor(deadline_seconds));

  auto recurse = [&](auto&& self, std::size_t l, long long used,
                     double value) -> void {
    if (l == stages.size()) {
      if (value > best_value) {
        best_value = value;
        best = finalize(stages, choice, objective);
      }
      return;
    }
    for (std::size_t j = 0; j < stages[l].items.size(); ++j) {
      const MckpItem& item = stages[l].items[j];
      const long long t = used + rounded_seconds(item.time_seconds);
      if (t > budget) continue;
      choice[l] = static_cast<int>(j);
      self(self, l + 1, t, value + item_value(item, objective));
    }
  };
  recurse(recurse, 0, 0, 0.0);
  return best;
}

MckpSelection fixed_choice(const std::vector<MckpStage>& stages, int index) {
  MckpSelection selection;
  selection.feasible = true;
  for (const MckpStage& stage : stages) {
    const int j = std::clamp<int>(
        index, 0, static_cast<int>(stage.items.size()) - 1);
    selection.choice.push_back(j);
    const MckpItem& item = stage.items[static_cast<std::size_t>(j)];
    selection.total_time_seconds += item.time_seconds;
    selection.total_cost_usd += item.cost_usd;
  }
  return selection;
}

double fastest_completion_seconds(const std::vector<MckpStage>& stages) {
  double total = 0.0;
  for (const MckpStage& stage : stages) {
    double fastest = kInfinity;
    for (const MckpItem& item : stage.items) {
      fastest = std::min(fastest, item.time_seconds);
    }
    if (fastest == kInfinity) fastest = 0.0;
    total += fastest;
  }
  return total;
}

std::vector<ParetoPoint> cost_deadline_frontier(
    const std::vector<MckpStage>& stages) {
  std::vector<ParetoPoint> frontier;
  if (stages.empty()) return frontier;
  for (const MckpStage& stage : stages) {
    if (stage.items.empty()) {
      throw std::invalid_argument("stage without items: " + stage.name);
    }
  }
  // Budget range: fastest completion .. total time of the globally
  // cheapest per-stage items (beyond that the cost cannot improve).
  long long budget_hi = 0;
  for (const MckpStage& stage : stages) {
    const MckpItem* cheapest = &stage.items.front();
    for (const MckpItem& item : stage.items) {
      if (item.cost_usd < cheapest->cost_usd - 1e-15 ||
          (std::abs(item.cost_usd - cheapest->cost_usd) <= 1e-15 &&
           item.time_seconds < cheapest->time_seconds)) {
        cheapest = &item;
      }
    }
    budget_hi += rounded_seconds(cheapest->time_seconds);
  }
  const std::size_t columns = static_cast<std::size_t>(budget_hi) + 1;

  std::vector<double> dp(columns, 0.0);  // max of (-cost); 0 = zero stages
  std::vector<double> next(columns);
  for (const MckpStage& stage : stages) {
    std::fill(next.begin(), next.end(), -kInfinity);
    for (std::size_t c = 0; c < columns; ++c) {
      for (const MckpItem& item : stage.items) {
        const long long t = rounded_seconds(item.time_seconds);
        if (static_cast<long long>(c) < t) continue;
        const double prev = dp[c - static_cast<std::size_t>(t)];
        if (prev == -kInfinity) continue;
        next[c] = std::max(next[c], prev - item.cost_usd);
      }
    }
    dp = next;
  }

  double best = -kInfinity;
  for (std::size_t c = 0; c < columns; ++c) {
    if (dp[c] > best + 1e-12) {
      best = dp[c];
      frontier.push_back(
          {static_cast<double>(c), -best});
    }
  }
  return frontier;
}

MckpSelection fastest_within_budget(const std::vector<MckpStage>& stages,
                                    double budget_usd) {
  const auto frontier = cost_deadline_frontier(stages);
  for (const ParetoPoint& point : frontier) {
    if (point.cost_usd <= budget_usd + 1e-12) {
      // The earliest frontier point within budget; rebuild the selection.
      return solve_mckp_dp(stages, point.deadline_seconds);
    }
  }
  return MckpSelection{};  // infeasible: cheapest plan exceeds the budget
}

}  // namespace edacloud::cloud
