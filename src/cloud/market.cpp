#include "cloud/market.hpp"

#include <cstdio>

namespace edacloud::cloud {

std::string StaticMarket::describe() const {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer),
                "static market: price %.2fx on-demand, %.3g reclaims/h",
                spot_.price_multiplier, spot_.interruptions_per_hour);
  return buffer;
}

std::shared_ptr<const Market> ensure_market(
    std::shared_ptr<const Market> market, const SpotModel& spot) {
  if (market != nullptr) return market;
  return std::make_shared<StaticMarket>(spot);
}

}  // namespace edacloud::cloud
