#include "cloud/heuristics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace edacloud::cloud {

std::vector<MckpStage> dominance_filter(
    const std::vector<MckpStage>& stages) {
  std::vector<MckpStage> filtered;
  filtered.reserve(stages.size());
  for (const MckpStage& stage : stages) {
    MckpStage out;
    out.name = stage.name;
    // Sort by time ascending, cost as tie-break.
    std::vector<MckpItem> items = stage.items;
    std::sort(items.begin(), items.end(),
              [](const MckpItem& a, const MckpItem& b) {
                if (a.time_seconds != b.time_seconds) {
                  return a.time_seconds < b.time_seconds;
                }
                return a.cost_usd < b.cost_usd;
              });
    // Walking from fastest to slowest, keep an item only if it is cheaper
    // than everything faster than it (efficient frontier).
    double cheapest_so_far = std::numeric_limits<double>::infinity();
    std::vector<MckpItem> frontier;
    for (const MckpItem& item : items) {
      if (item.cost_usd < cheapest_so_far - 1e-15) {
        frontier.push_back(item);
        cheapest_so_far = item.cost_usd;
      }
    }
    // frontier is time-ascending with strictly decreasing cost; restore
    // slow-to-fast (cheap-to-pricey) order to mirror solver conventions.
    std::reverse(frontier.begin(), frontier.end());
    out.items = std::move(frontier);
    filtered.push_back(std::move(out));
  }
  return filtered;
}

MckpSelection solve_mckp_greedy(const std::vector<MckpStage>& stages,
                                double deadline_seconds) {
  MckpSelection selection;
  if (stages.empty()) {
    selection.feasible = true;
    return selection;
  }
  // Per-stage items sorted slow-to-fast (upgrades walk toward faster).
  struct StageView {
    std::vector<int> order;  // item indices, time descending
    int cursor = 0;          // current position in `order`
  };
  std::vector<StageView> views(stages.size());
  for (std::size_t l = 0; l < stages.size(); ++l) {
    const auto& items = stages[l].items;
    if (items.empty()) return selection;  // infeasible: no items
    views[l].order.resize(items.size());
    for (std::size_t j = 0; j < items.size(); ++j) {
      views[l].order[j] = static_cast<int>(j);
    }
    std::sort(views[l].order.begin(), views[l].order.end(),
              [&items](int a, int b) {
                if (items[a].time_seconds != items[b].time_seconds) {
                  return items[a].time_seconds > items[b].time_seconds;
                }
                return items[a].cost_usd < items[b].cost_usd;
              });
    // Start from the cheapest item overall (not necessarily the slowest).
    int cheapest = 0;
    for (std::size_t p = 0; p < views[l].order.size(); ++p) {
      if (items[views[l].order[p]].cost_usd <
          items[views[l].order[cheapest]].cost_usd) {
        cheapest = static_cast<int>(p);
      }
    }
    views[l].cursor = cheapest;
  }

  auto item_at = [&](std::size_t l, int pos) -> const MckpItem& {
    return stages[l].items[static_cast<std::size_t>(views[l].order[pos])];
  };

  double total_time = 0.0;
  for (std::size_t l = 0; l < stages.size(); ++l) {
    total_time += std::llround(item_at(l, views[l].cursor).time_seconds);
  }

  const double budget = std::floor(deadline_seconds);
  while (total_time > budget) {
    // Best upgrade: smallest added cost per saved second.
    double best_ratio = std::numeric_limits<double>::infinity();
    std::size_t best_stage = stages.size();
    for (std::size_t l = 0; l < stages.size(); ++l) {
      const int pos = views[l].cursor;
      if (pos + 1 >= static_cast<int>(views[l].order.size())) continue;
      const MckpItem& current = item_at(l, pos);
      const MckpItem& next = item_at(l, pos + 1);
      const double saved = current.time_seconds - next.time_seconds;
      if (saved <= 0.0) continue;
      const double ratio =
          std::max(0.0, next.cost_usd - current.cost_usd) / saved;
      if (ratio < best_ratio) {
        best_ratio = ratio;
        best_stage = l;
      }
    }
    if (best_stage == stages.size()) {
      return selection;  // no upgrade available: infeasible
    }
    const double before =
        item_at(best_stage, views[best_stage].cursor).time_seconds;
    ++views[best_stage].cursor;
    const double after =
        item_at(best_stage, views[best_stage].cursor).time_seconds;
    total_time += std::llround(after) - std::llround(before);
  }

  // Post-pass: undo upgrades that turned out unnecessary (cheapest first).
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t l = 0; l < stages.size(); ++l) {
      const int pos = views[l].cursor;
      if (pos == 0) continue;
      const MckpItem& current = item_at(l, pos);
      const MckpItem& previous = item_at(l, pos - 1);
      if (previous.cost_usd >= current.cost_usd) continue;  // not a saving
      const double slack =
          budget - total_time +
          std::llround(current.time_seconds) -
          std::llround(previous.time_seconds);
      if (slack >= 0.0) {
        --views[l].cursor;
        total_time += std::llround(previous.time_seconds) -
                      std::llround(current.time_seconds);
        improved = true;
      }
    }
  }

  selection.feasible = true;
  for (std::size_t l = 0; l < stages.size(); ++l) {
    const int item_index = views[l].order[views[l].cursor];
    selection.choice.push_back(item_index);
    const MckpItem& item =
        stages[l].items[static_cast<std::size_t>(item_index)];
    selection.total_time_seconds += item.time_seconds;
    selection.total_cost_usd += item.cost_usd;
    selection.objective_value -= item.cost_usd;
  }
  return selection;
}

}  // namespace edacloud::cloud
