#pragma once
// Fast MCKP heuristics, complementing the exact DP:
//  - dominance_filter: classical MCKP preprocessing — drop items that are
//    slower AND costlier than another item of the same stage (they can
//    never appear in an optimal min-cost selection).
//  - solve_mckp_greedy: start from the cheapest item per stage and buy the
//    cheapest seconds (best delta-cost / delta-time upgrade) until the
//    deadline is met. O(n log n), no pseudo-polynomial time budget; the
//    exact DP becomes expensive when deadlines stretch into weeks, which is
//    exactly when teams want an instant answer.
// The ablation bench quantifies the heuristic's optimality gap.

#include "cloud/mckp.hpp"

namespace edacloud::cloud {

/// Remove dominated items (and keep only the efficient (time, cost)
/// frontier) from every stage. Selection indices returned by solvers on
/// the filtered instance refer to the filtered item lists.
std::vector<MckpStage> dominance_filter(const std::vector<MckpStage>& stages);

/// Greedy incremental-efficiency heuristic (min-cost objective).
/// Feasibility matches the DP exactly (it can always reach the all-fastest
/// configuration); the cost may exceed the optimum.
MckpSelection solve_mckp_greedy(const std::vector<MckpStage>& stages,
                                double deadline_seconds);

}  // namespace edacloud::cloud
