#include "sim/simulator.hpp"

#include <bit>

#include "nl/netlist_sim.hpp"
#include "perf/instrument.hpp"
#include "util/rng.hpp"

namespace edacloud::sim {

namespace {

constexpr std::uint64_t kValueBase = 0x70ULL << 23;

}  // namespace

SimulationResult SimulationEngine::run(
    const nl::Netlist& netlist,
    const std::vector<perf::VmConfig>& configs) const {
  perf::Instrument instrument_storage;
  perf::Instrument* ins = nullptr;
  if (!configs.empty()) {
    instrument_storage = perf::Instrument(configs);
    ins = &instrument_storage;
  }

  SimulationResult result;
  result.toggle_rate.assign(netlist.node_count(), 0.0);
  std::vector<std::uint64_t> toggles(netlist.node_count(), 0);

  util::Rng rng(options_.seed);
  const std::size_t words =
      (options_.vector_count + 63) / 64;  // 64 vectors per word
  result.vector_count = words * 64;

  const auto order = netlist.topological_order();
  std::vector<std::uint64_t> previous(netlist.node_count(), 0);

  for (std::size_t w = 0; w < words; ++w) {
    std::vector<std::uint64_t> inputs(netlist.inputs().size());
    for (auto& word : inputs) word = rng();

    const auto value = nl::simulate_nodes(netlist, inputs);
    const auto chunk_id = static_cast<std::uint32_t>(
        w * 64 / std::max<std::size_t>(1, options_.chunk_vectors));

    // Instrument the evaluation sweep: per gate, fanin value loads
    // (thread-private value array per simulation worker) + the bitwise op.
    if (ins != nullptr) {
      for (nl::NodeId id : order) {
        const auto& node = netlist.node(id);
        if (node.kind == nl::NodeKind::kPrimaryInput) continue;
        for (nl::NodeId fanin : node.fanins) {
          ins->load_private(kValueBase + fanin * 8ULL, chunk_id);
        }
        ins->int_ops(2 + node.fanins.size());
        ins->branch(kValueBase ^ 0x1, true);  // gate loop, well-predicted
      }
    }

    // Toggle accounting vs the previous vector word.
    if (w > 0) {
      for (nl::NodeId id = 0; id < netlist.node_count(); ++id) {
        toggles[id] += static_cast<std::uint64_t>(
            std::popcount(previous[id] ^ value[id]));
      }
    }
    previous = value;
  }

  for (nl::NodeId id = 0; id < netlist.node_count(); ++id) {
    result.toggle_count += toggles[id];
    result.toggle_rate[id] = static_cast<double>(toggles[id]) /
                             static_cast<double>(result.vector_count);
  }
  result.average_toggle_rate =
      netlist.node_count() == 0
          ? 0.0
          : static_cast<double>(result.toggle_count) /
                (static_cast<double>(result.vector_count) *
                 static_cast<double>(netlist.node_count()));

  // ---- task graph: fully independent vector chunks --------------------------
  perf::TaskGraph tasks;
  const std::size_t chunks = std::max<std::size_t>(
      1, options_.vector_count /
             std::max<std::size_t>(1, options_.chunk_vectors));
  const double work_per_chunk =
      static_cast<double>(netlist.node_count()) *
      static_cast<double>(options_.chunk_vectors) / 64.0;
  std::vector<perf::TaskId> chunk_tasks;
  chunk_tasks.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    chunk_tasks.push_back(tasks.add_task(work_per_chunk));
  }
  // One tiny serial reduction at the end (toggle/coverage merge).
  tasks.add_task(work_per_chunk * 0.02, chunk_tasks);

  result.profile.job = "simulation";
  result.profile.configs = configs;
  if (ins != nullptr) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      result.profile.counts.push_back(ins->counts(i));
    }
  }
  result.profile.tasks = std::move(tasks);
  return result;
}

}  // namespace edacloud::sim
