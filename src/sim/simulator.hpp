#pragma once
// Logic-simulation job — the application class the paper's introduction
// calls out as "embarrassingly parallel ... directly benefiting from the
// scale of the cloud". Random-vector functional simulation of the mapped
// netlist, 64 patterns per word, decomposed into fully independent vector
// chunks: the task graph has no cross-chunk dependencies, so its speedup
// curve approaches the vCPU count — the contrast to the four flow jobs.
//
// The simulator also reports per-node toggle rates, which feed the STA
// power model with measured (rather than assumed) switching activity.

#include <cstdint>
#include <vector>

#include "nl/netlist.hpp"
#include "perf/runtime_model.hpp"

namespace edacloud::sim {

struct SimOptions {
  std::size_t vector_count = 8192;   // random input vectors
  std::size_t chunk_vectors = 256;   // vectors per parallel task
  std::uint64_t seed = 99;
};

struct SimulationResult {
  std::size_t vector_count = 0;
  std::uint64_t toggle_count = 0;        // total bit flips across nodes
  double average_toggle_rate = 0.0;      // per node per vector
  std::vector<double> toggle_rate;       // per netlist node
  perf::JobProfile profile;
};

class SimulationEngine {
 public:
  explicit SimulationEngine(SimOptions options = {}) : options_(options) {}

  /// Simulate `netlist` under random vectors; instrumented when configs is
  /// non-empty (profile.job == "simulation").
  [[nodiscard]] SimulationResult run(
      const nl::Netlist& netlist,
      const std::vector<perf::VmConfig>& configs) const;

  [[nodiscard]] const SimOptions& options() const { return options_; }

 private:
  SimOptions options_;
};

}  // namespace edacloud::sim
