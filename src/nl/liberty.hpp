#pragma once
// Liberty-lite (.lib) interchange for cell libraries. Real flows receive
// their timing libraries as Liberty files; this implements the subset the
// engines consume — per-cell area, leakage, input capacitance and the
// linear delay model — using genuine Liberty syntax so the files are
// readable by (and roughly compatible with) standard tooling:
//
//   library (generic14) {
//     wire_cap_per_um : 0.20;
//     wire_res_per_um : 0.003;
//     cell (NAND2_X1) {
//       function : "NAND";
//       area : 0.39;
//       cell_leakage_power : 0.7;
//       pin_count : 2;
//       input_capacitance : 1.1;
//       intrinsic_delay : 9.0;
//       drive_resistance : 5.6;
//     }
//   }

#include <string>

#include "nl/cell_library.hpp"

namespace edacloud::nl {

/// Serialize a library in the Liberty-lite dialect above.
std::string write_liberty(const CellLibrary& library);

struct LibertyParseResult {
  bool ok = false;
  std::string error;
  CellLibrary library{""};
};

/// Parse the Liberty-lite dialect back into a CellLibrary.
LibertyParseResult parse_liberty(const std::string& text);

}  // namespace edacloud::nl
