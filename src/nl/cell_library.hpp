#pragma once
// Standard-cell library abstraction. Models the subset of a Liberty (.lib)
// file that the flow needs: per-cell area, input capacitance, and a linear
// NLDM-style delay model (intrinsic delay + drive-resistance * load).
//
// A built-in "generic 14nm" library stands in for the GF 14nm node the paper
// used (see DESIGN.md substitution table).

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace edacloud::nl {

using CellId = std::uint32_t;
constexpr CellId kInvalidCell = static_cast<CellId>(-1);

/// Functional class of a cell — used for mapping, feature extraction and
/// the instruction-mix model in perf instrumentation.
enum class CellFunction : std::uint8_t {
  kBuf,
  kInv,
  kAnd,
  kOr,
  kNand,
  kNor,
  kXor,
  kXnor,
  kAoi,   // AND-OR-invert complex gate
  kOai,   // OR-AND-invert complex gate
  kMux,
  kMaj,   // majority / full-adder carry
};

/// Number of distinct CellFunction values (for one-hot feature encoding).
constexpr int kCellFunctionCount = 12;

struct Cell {
  std::string name;
  CellFunction function = CellFunction::kBuf;
  int input_count = 1;
  double area_um2 = 1.0;           // footprint in square microns
  double input_cap_ff = 1.0;       // per-input capacitance, femtofarads
  double intrinsic_delay_ps = 10;  // unloaded delay
  double drive_res_kohm = 1.0;     // delay slope vs. load (ps per fF)
  double leakage_nw = 1.0;         // leakage power, nanowatts

  /// NLDM-lite: delay through the cell for a given output load (fF).
  [[nodiscard]] double delay_ps(double load_ff) const {
    return intrinsic_delay_ps + drive_res_kohm * load_ff;
  }
};

/// A technology library: an immutable set of cells with name lookup.
class CellLibrary {
 public:
  explicit CellLibrary(std::string name) : name_(std::move(name)) {}

  /// Register a cell; returns its id. Names must be unique.
  CellId add_cell(Cell cell);

  [[nodiscard]] const Cell& cell(CellId id) const { return cells_[id]; }
  [[nodiscard]] std::size_t size() const { return cells_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

  [[nodiscard]] std::optional<CellId> find(std::string_view cell_name) const;

  /// All cells implementing a given function, cheapest-area first.
  [[nodiscard]] std::vector<CellId> cells_with_function(
      CellFunction function) const;

  /// Wire capacitance per micron of routed wirelength (fF/um).
  [[nodiscard]] double wire_cap_per_um() const { return wire_cap_per_um_; }
  void set_wire_cap_per_um(double cap) { wire_cap_per_um_ = cap; }

  /// Wire resistance per micron (kohm/um) for Elmore-style delays.
  [[nodiscard]] double wire_res_per_um() const { return wire_res_per_um_; }
  void set_wire_res_per_um(double res) { wire_res_per_um_ = res; }

 private:
  std::string name_;
  std::vector<Cell> cells_;
  double wire_cap_per_um_ = 0.2;
  double wire_res_per_um_ = 0.003;
};

/// Built-in generic 14nm-class library (substitute for the paper's GF14).
/// Contains buffers/inverters at several drive strengths plus 2-input
/// NAND/NOR/AND/OR/XOR/XNOR, 3-input AOI/OAI, MUX2 and MAJ3.
CellLibrary make_generic_14nm_library();

/// Short mnemonic for a function (e.g. "NAND").
std::string_view to_string(CellFunction function);

}  // namespace edacloud::nl
