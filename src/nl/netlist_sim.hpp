#pragma once
// 64-way bit-parallel functional simulation of a gate-level netlist.
// Used by tests to prove the technology mapper preserved the AIG's logic
// function (synthesis correctness) — pin-order conventions:
//   AOI21(a,b,c) = !((a&b)|c)
//   OAI21(a,b,c) = !((a|b)&c)
//   MUX2(s,t,f)  = s ? t : f
//   MAJ3(a,b,c)  = majority

#include <cstdint>
#include <vector>

#include "nl/netlist.hpp"

namespace edacloud::nl {

/// input_words[i] supplies 64 patterns for inputs()[i]; returns one word per
/// primary output, in outputs() order.
std::vector<std::uint64_t> simulate(const Netlist& netlist,
                                    const std::vector<std::uint64_t>& input_words);

/// Same evaluation, but returns the value word of EVERY node (indexed by
/// NodeId) — used by the simulation job for toggle/activity accounting.
std::vector<std::uint64_t> simulate_nodes(
    const Netlist& netlist, const std::vector<std::uint64_t>& input_words);

}  // namespace edacloud::nl
