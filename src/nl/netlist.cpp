#include "nl/netlist.hpp"

#include <algorithm>
#include <stdexcept>

namespace edacloud::nl {

NodeId Netlist::add_input() {
  NetlistNode node;
  node.kind = NodeKind::kPrimaryInput;
  nodes_.push_back(std::move(node));
  const auto id = static_cast<NodeId>(nodes_.size() - 1);
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_output(NodeId source) {
  if (source >= nodes_.size()) {
    throw std::out_of_range("output source does not exist");
  }
  NetlistNode node;
  node.kind = NodeKind::kPrimaryOutput;
  node.fanins = {source};
  nodes_.push_back(std::move(node));
  const auto id = static_cast<NodeId>(nodes_.size() - 1);
  outputs_.push_back(id);
  return id;
}

NodeId Netlist::add_cell(CellId cell, std::vector<NodeId> fanins) {
  if (cell >= library_->size()) {
    throw std::out_of_range("cell id not in library");
  }
  const Cell& proto = library_->cell(cell);
  if (static_cast<int>(fanins.size()) != proto.input_count) {
    throw std::invalid_argument("fanin arity mismatch for cell " + proto.name);
  }
  for (NodeId fanin : fanins) {
    if (fanin >= nodes_.size()) {
      throw std::out_of_range("fanin node does not exist");
    }
  }
  NetlistNode node;
  node.kind = NodeKind::kCell;
  node.cell = cell;
  node.fanins = std::move(fanins);
  nodes_.push_back(std::move(node));
  return static_cast<NodeId>(nodes_.size() - 1);
}

Csr Netlist::build_fanout_csr() const {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(nodes_.size() * 2);
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    for (NodeId fanin : nodes_[id].fanins) {
      edges.emplace_back(fanin, id);
    }
  }
  return build_csr(nodes_.size(), edges);
}

std::vector<NodeId> Netlist::topological_order() const {
  return nl::topological_order(build_fanout_csr());
}

std::vector<std::uint32_t> Netlist::levels() const {
  return longest_path_levels(build_fanout_csr());
}

std::vector<std::uint32_t> Netlist::fanout_counts() const {
  std::vector<std::uint32_t> counts(nodes_.size(), 0);
  for (const NetlistNode& node : nodes_) {
    for (NodeId fanin : node.fanins) ++counts[fanin];
  }
  return counts;
}

NetlistStats Netlist::stats() const {
  NetlistStats stats;
  stats.input_count = inputs_.size();
  stats.output_count = outputs_.size();
  const auto fanouts = fanout_counts();
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const NetlistNode& node = nodes_[id];
    stats.pin_count += node.fanins.size();
    if (fanouts[id] > 0) ++stats.net_count;
    if (node.kind == NodeKind::kCell) {
      ++stats.instance_count;
      stats.total_area_um2 += library_->cell(node.cell).area_um2;
    }
  }
  const auto node_levels = levels();
  for (std::uint32_t level : node_levels) {
    stats.logic_depth = std::max(stats.logic_depth, level);
  }
  return stats;
}

bool Netlist::validate(std::string* error) const {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const NetlistNode& node = nodes_[id];
    switch (node.kind) {
      case NodeKind::kPrimaryInput:
        if (!node.fanins.empty()) return fail("PI with fanins");
        break;
      case NodeKind::kPrimaryOutput:
        if (node.fanins.size() != 1) return fail("PO without single fanin");
        break;
      case NodeKind::kCell: {
        if (node.cell >= library_->size()) return fail("bad cell id");
        const Cell& proto = library_->cell(node.cell);
        if (static_cast<int>(node.fanins.size()) != proto.input_count) {
          return fail("fanin arity mismatch on instance");
        }
        break;
      }
    }
    for (NodeId fanin : node.fanins) {
      if (fanin >= nodes_.size()) return fail("dangling fanin");
      if (nodes_[fanin].kind == NodeKind::kPrimaryOutput) {
        return fail("primary output used as driver");
      }
    }
  }
  if (!nodes_.empty() && topological_order().empty()) {
    return fail("combinational cycle");
  }
  return true;
}

}  // namespace edacloud::nl
