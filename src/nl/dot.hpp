#pragma once
// Graphviz DOT export for netlists and AIGs — debugging and documentation
// aid (render with `dot -Tsvg`). Inputs are drawn as triangles, outputs as
// inverted houses, cells labeled with their library name, and AIG
// complemented edges dashed.

#include <string>

#include "nl/aig.hpp"
#include "nl/netlist.hpp"

namespace edacloud::nl {

/// DOT digraph of a gate-level netlist (star-model edges).
std::string write_dot(const Netlist& netlist);

/// DOT digraph of an AIG; complemented fanin edges are dashed.
std::string write_dot(const Aig& aig);

}  // namespace edacloud::nl
