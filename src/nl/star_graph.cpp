#include "nl/star_graph.hpp"

#include <algorithm>
#include <cmath>

namespace edacloud::nl {

namespace {

double* row(DesignGraph& graph, std::size_t node) {
  return graph.features.data() + node * kNodeFeatureDim;
}

void fill_common(double* features, double fanin_count, double fanout_count,
                 double level, double max_depth) {
  features[15] = fanin_count / 4.0;
  features[16] = std::log1p(fanout_count);
  features[17] = level / std::max(max_depth, 1.0);
  features[19] = 1.0;
}

}  // namespace

DesignGraph graph_from_netlist(const Netlist& netlist) {
  DesignGraph graph;
  graph.forward = netlist.build_fanout_csr();
  graph.features.assign(netlist.node_count() * kNodeFeatureDim, 0.0);

  const auto levels = netlist.levels();
  const auto fanouts = netlist.fanout_counts();
  double max_depth = 0.0;
  for (std::uint32_t level : levels) {
    max_depth = std::max(max_depth, static_cast<double>(level));
  }

  for (NodeId id = 0; id < netlist.node_count(); ++id) {
    const NetlistNode& node = netlist.node(id);
    double* features = row(graph, id);
    switch (node.kind) {
      case NodeKind::kPrimaryInput:
        features[0] = 1.0;
        break;
      case NodeKind::kPrimaryOutput:
        features[1] = 1.0;
        break;
      case NodeKind::kCell: {
        const auto function =
            netlist.library().cell(node.cell).function;
        features[3 + static_cast<int>(function)] = 1.0;
        break;
      }
    }
    fill_common(features, static_cast<double>(node.fanins.size()),
                static_cast<double>(fanouts[id]),
                static_cast<double>(levels.empty() ? 0 : levels[id]),
                max_depth);
  }
  return graph;
}

DesignGraph graph_from_aig(const Aig& aig) {
  DesignGraph graph;
  graph.forward = aig.build_forward_csr();
  graph.features.assign(aig.node_count() * kNodeFeatureDim, 0.0);

  const auto levels = aig.levels();
  const auto fanouts = aig.fanout_counts();
  double max_depth = 0.0;
  for (std::uint32_t level : levels) {
    max_depth = std::max(max_depth, static_cast<double>(level));
  }

  for (AigNode node = 0; node < aig.node_count(); ++node) {
    double* features = row(graph, node);
    double fanin_count = 0.0;
    if (aig.is_input(node)) {
      features[0] = 1.0;
    } else if (aig.is_and(node)) {
      features[2] = 1.0;
      fanin_count = 2.0;
      int complemented = 0;
      if (literal_complemented(aig.fanin0(node))) ++complemented;
      if (literal_complemented(aig.fanin1(node))) ++complemented;
      features[18] = complemented / 2.0;
    }
    fill_common(features, fanin_count, static_cast<double>(fanouts[node]),
                static_cast<double>(levels[node]), max_depth);
  }
  return graph;
}

GraphSummary summarize(const DesignGraph& graph) {
  GraphSummary summary;
  summary.node_count = graph.node_count();
  summary.edge_count = graph.forward.edge_count();
  if (summary.node_count == 0) return summary;

  const auto levels = longest_path_levels(graph.forward);
  for (std::uint32_t level : levels) {
    summary.depth = std::max(summary.depth, level);
  }
  double total_fanout = 0.0;
  for (VertexId v = 0; v < graph.node_count(); ++v) {
    const double degree = graph.forward.degree(v);
    total_fanout += degree;
    summary.max_fanout = std::max(summary.max_fanout, degree);
  }
  summary.avg_fanout = total_fanout / static_cast<double>(summary.node_count);
  return summary;
}

}  // namespace edacloud::nl
