#pragma once
// Structural Verilog interchange for gate-level netlists. The writer emits
// one flat module instantiating library cells (pin order A, B, C / Y for
// the output); the parser accepts the same subset back, so netlists can
// round-trip through standard EDA tooling.
//
// Supported subset (deliberately small and strict):
//   module NAME (port, ...);
//   input a; output y; wire n1;           // one declaration per statement
//   CELL  inst (.A(a), .B(n1), .Y(y));    // named pin connections only
//   assign y = n1;                        // PO aliasing
//   endmodule

#include <optional>
#include <string>

#include "nl/netlist.hpp"

namespace edacloud::nl {

/// Serialize `netlist` as structural Verilog.
std::string write_verilog(const Netlist& netlist);

struct VerilogParseResult {
  bool ok = false;
  std::string error;      // populated when !ok
  Netlist netlist;        // valid when ok
};

/// Parse the structural subset back into a netlist over `library`.
/// Cells are resolved by name; unknown cells or malformed syntax fail
/// with a line-numbered diagnostic.
VerilogParseResult parse_verilog(const std::string& text,
                                 const CellLibrary& library);

}  // namespace edacloud::nl
