#include "nl/netlist_sim.hpp"

#include <stdexcept>

namespace edacloud::nl {

namespace {

std::uint64_t eval_cell(CellFunction function,
                        const std::vector<std::uint64_t>& in) {
  switch (function) {
    case CellFunction::kBuf:
      return in[0];
    case CellFunction::kInv:
      return ~in[0];
    case CellFunction::kAnd:
      return in[0] & in[1];
    case CellFunction::kOr:
      return in[0] | in[1];
    case CellFunction::kNand:
      return ~(in[0] & in[1]);
    case CellFunction::kNor:
      return ~(in[0] | in[1]);
    case CellFunction::kXor:
      return in[0] ^ in[1];
    case CellFunction::kXnor:
      return ~(in[0] ^ in[1]);
    case CellFunction::kAoi:
      return ~((in[0] & in[1]) | in[2]);
    case CellFunction::kOai:
      return ~((in[0] | in[1]) & in[2]);
    case CellFunction::kMux:
      return (in[0] & in[1]) | (~in[0] & in[2]);
    case CellFunction::kMaj:
      return (in[0] & in[1]) | (in[0] & in[2]) | (in[1] & in[2]);
  }
  return 0;
}

}  // namespace

std::vector<std::uint64_t> simulate_nodes(
    const Netlist& netlist, const std::vector<std::uint64_t>& input_words) {
  if (input_words.size() != netlist.inputs().size()) {
    throw std::invalid_argument("simulate: one word per primary input");
  }
  std::vector<std::uint64_t> value(netlist.node_count(), 0);
  for (std::size_t i = 0; i < netlist.inputs().size(); ++i) {
    value[netlist.inputs()[i]] = input_words[i];
  }
  const auto order = netlist.topological_order();
  if (order.empty() && netlist.node_count() != 0) {
    throw std::invalid_argument("simulate: netlist has a cycle");
  }
  std::vector<std::uint64_t> fanin_values;
  for (NodeId id : order) {
    const NetlistNode& node = netlist.node(id);
    if (node.kind == NodeKind::kPrimaryInput) continue;
    fanin_values.clear();
    for (NodeId fanin : node.fanins) fanin_values.push_back(value[fanin]);
    if (node.kind == NodeKind::kPrimaryOutput) {
      value[id] = fanin_values[0];
    } else {
      value[id] = eval_cell(netlist.library().cell(node.cell).function,
                            fanin_values);
    }
  }
  return value;
}

std::vector<std::uint64_t> simulate(
    const Netlist& netlist, const std::vector<std::uint64_t>& input_words) {
  const auto value = simulate_nodes(netlist, input_words);
  std::vector<std::uint64_t> out;
  out.reserve(netlist.outputs().size());
  for (NodeId id : netlist.outputs()) out.push_back(value[id]);
  return out;
}

}  // namespace edacloud::nl
