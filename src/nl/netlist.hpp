#pragma once
// Gate-level netlist. Nodes are primary inputs, primary outputs, or cell
// instances from a CellLibrary. Nets are implicit single-driver hyperedges:
// the net driven by node u consists of u plus every node that lists u as a
// fanin. This is exactly the structure the paper's star model expands into
// directed edges (driver -> each sink).

#include <cstdint>
#include <string>
#include <vector>

#include "nl/cell_library.hpp"
#include "nl/graph.hpp"

namespace edacloud::nl {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

enum class NodeKind : std::uint8_t {
  kPrimaryInput,
  kPrimaryOutput,
  kCell,
};

struct NetlistNode {
  NodeKind kind = NodeKind::kCell;
  CellId cell = kInvalidCell;      // valid iff kind == kCell
  std::vector<NodeId> fanins;      // driver node per input pin
};

struct NetlistStats {
  std::size_t input_count = 0;
  std::size_t output_count = 0;
  std::size_t instance_count = 0;  // cell instances only
  std::size_t net_count = 0;       // driven nets (nodes with >=1 sink)
  std::size_t pin_count = 0;       // total fanin connections
  std::uint32_t logic_depth = 0;   // longest PI->PO path in cell stages
  double total_area_um2 = 0.0;
};

class Netlist {
 public:
  /// Empty placeholder (no library); only assignment and destruction are
  /// valid until a real netlist is move-assigned in.
  Netlist() : library_(nullptr) {}

  Netlist(std::string name, const CellLibrary* library)
      : name_(std::move(name)), library_(library) {}

  // ---- construction -------------------------------------------------------
  NodeId add_input();
  /// A primary output observing `source`.
  NodeId add_output(NodeId source);
  /// A cell instance; fanins.size() must equal the cell's input_count.
  NodeId add_cell(CellId cell, std::vector<NodeId> fanins);

  // ---- access --------------------------------------------------------------
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const CellLibrary& library() const { return *library_; }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] const NetlistNode& node(NodeId id) const { return nodes_[id]; }
  [[nodiscard]] const std::vector<NodeId>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<NodeId>& outputs() const { return outputs_; }

  [[nodiscard]] bool is_cell(NodeId id) const {
    return nodes_[id].kind == NodeKind::kCell;
  }

  /// Fanout adjacency (driver -> sinks), i.e. the star-model edges.
  [[nodiscard]] Csr build_fanout_csr() const;
  /// Fanin adjacency as CSR (sink -> drivers reversed: driver -> sink edges).
  [[nodiscard]] Csr build_forward_csr() const { return build_fanout_csr(); }

  /// Topological order over all nodes (PIs first). Empty if cyclic.
  [[nodiscard]] std::vector<NodeId> topological_order() const;

  /// Longest-path level per node (PIs at level 0). Empty if cyclic.
  [[nodiscard]] std::vector<std::uint32_t> levels() const;

  /// Per-node fanout count.
  [[nodiscard]] std::vector<std::uint32_t> fanout_counts() const;

  [[nodiscard]] NetlistStats stats() const;

  /// Structural sanity: fanin arity matches the library, fanins reference
  /// existing non-PO nodes, POs have exactly one fanin, DAG holds.
  [[nodiscard]] bool validate(std::string* error = nullptr) const;

 private:
  std::string name_;
  const CellLibrary* library_;
  std::vector<NetlistNode> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
};

}  // namespace edacloud::nl
