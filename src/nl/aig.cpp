#include "nl/aig.hpp"

#include <algorithm>
#include <stdexcept>

namespace edacloud::nl {

Aig::Aig(std::string name) : name_(std::move(name)) {
  // Node 0: constant false.
  fanin0_.push_back(0);
  fanin1_.push_back(0);
}

Literal Aig::add_input() {
  if (node_count() != inputs_.size() + 1) {
    throw std::logic_error("all inputs must be added before AND nodes");
  }
  fanin0_.push_back(0);
  fanin1_.push_back(0);
  const auto node = static_cast<AigNode>(node_count() - 1);
  inputs_.push_back(node);
  return make_literal(node, false);
}

void Aig::add_output(Literal lit) {
  if (literal_node(lit) >= node_count()) {
    throw std::out_of_range("output literal references missing node");
  }
  outputs_.push_back(lit);
}

Literal Aig::and_of(Literal a, Literal b) {
  if (literal_node(a) >= node_count() || literal_node(b) >= node_count()) {
    throw std::out_of_range("AND fanin references missing node");
  }
  // Constant folding and trivial cases.
  if (a == kLitFalse || b == kLitFalse) return kLitFalse;
  if (a == kLitTrue) return b;
  if (b == kLitTrue) return a;
  if (a == b) return a;
  if (a == literal_not(b)) return kLitFalse;
  // Canonical operand order for structural hashing.
  if (a > b) std::swap(a, b);
  const FaninKey key{a, b};
  if (auto it = strash_.find(key); it != strash_.end()) {
    return make_literal(it->second, false);
  }
  fanin0_.push_back(a);
  fanin1_.push_back(b);
  const auto node = static_cast<AigNode>(node_count() - 1);
  strash_.emplace(key, node);
  return make_literal(node, false);
}

Literal Aig::or_of(Literal a, Literal b) {
  return literal_not(and_of(literal_not(a), literal_not(b)));
}

Literal Aig::xor_of(Literal a, Literal b) {
  // a^b = (a & !b) | (!a & b)
  return or_of(and_of(a, literal_not(b)), and_of(literal_not(a), b));
}

Literal Aig::mux_of(Literal sel, Literal when_true, Literal when_false) {
  return or_of(and_of(sel, when_true), and_of(literal_not(sel), when_false));
}

Literal Aig::maj_of(Literal a, Literal b, Literal c) {
  return or_of(or_of(and_of(a, b), and_of(a, c)), and_of(b, c));
}

std::vector<std::uint32_t> Aig::levels() const {
  std::vector<std::uint32_t> level(node_count(), 0);
  // Node ids are already topologically ordered by construction.
  for (AigNode node = 0; node < node_count(); ++node) {
    if (!is_and(node)) continue;
    const std::uint32_t l0 = level[literal_node(fanin0_[node])];
    const std::uint32_t l1 = level[literal_node(fanin1_[node])];
    level[node] = std::max(l0, l1) + 1;
  }
  return level;
}

std::uint32_t Aig::depth() const {
  const auto level = levels();
  std::uint32_t deepest = 0;
  for (Literal out : outputs_) {
    deepest = std::max(deepest, level[literal_node(out)]);
  }
  return deepest;
}

std::vector<std::uint32_t> Aig::fanout_counts() const {
  std::vector<std::uint32_t> counts(node_count(), 0);
  for (AigNode node = 0; node < node_count(); ++node) {
    if (!is_and(node)) continue;
    ++counts[literal_node(fanin0_[node])];
    ++counts[literal_node(fanin1_[node])];
  }
  for (Literal out : outputs_) ++counts[literal_node(out)];
  return counts;
}

Csr Aig::build_forward_csr() const {
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(and_count() * 2);
  for (AigNode node = 0; node < node_count(); ++node) {
    if (!is_and(node)) continue;
    edges.emplace_back(literal_node(fanin0_[node]), node);
    edges.emplace_back(literal_node(fanin1_[node]), node);
  }
  return build_csr(node_count(), edges);
}

std::vector<std::uint64_t> Aig::simulate(
    const std::vector<std::uint64_t>& input_words) const {
  if (input_words.size() != inputs_.size()) {
    throw std::invalid_argument("simulate: one word per input required");
  }
  std::vector<std::uint64_t> value(node_count(), 0);
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    value[inputs_[i]] = input_words[i];
  }
  auto literal_value = [&value](Literal lit) {
    const std::uint64_t word = value[literal_node(lit)];
    return literal_complemented(lit) ? ~word : word;
  };
  for (AigNode node = 0; node < node_count(); ++node) {
    if (!is_and(node)) continue;
    value[node] = literal_value(fanin0_[node]) & literal_value(fanin1_[node]);
  }
  std::vector<std::uint64_t> out;
  out.reserve(outputs_.size());
  for (Literal lit : outputs_) out.push_back(literal_value(lit));
  return out;
}

std::vector<bool> Aig::live_nodes() const {
  std::vector<bool> alive(node_count(), false);
  std::vector<AigNode> stack;
  for (Literal out : outputs_) {
    const AigNode node = literal_node(out);
    if (!alive[node]) {
      alive[node] = true;
      stack.push_back(node);
    }
  }
  while (!stack.empty()) {
    const AigNode node = stack.back();
    stack.pop_back();
    if (!is_and(node)) continue;
    for (Literal fanin : {fanin0_[node], fanin1_[node]}) {
      const AigNode parent = literal_node(fanin);
      if (!alive[parent]) {
        alive[parent] = true;
        stack.push_back(parent);
      }
    }
  }
  return alive;
}

}  // namespace edacloud::nl
