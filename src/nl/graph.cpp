#include "nl/graph.hpp"

#include <algorithm>

namespace edacloud::nl {

Csr build_csr(std::size_t vertex_count,
              const std::vector<std::pair<VertexId, VertexId>>& edges) {
  Csr csr;
  csr.offsets.assign(vertex_count + 1, 0);
  for (const auto& [from, to] : edges) {
    (void)to;
    ++csr.offsets[from + 1];
  }
  for (std::size_t v = 0; v < vertex_count; ++v) {
    csr.offsets[v + 1] += csr.offsets[v];
  }
  csr.targets.resize(edges.size());
  std::vector<std::uint32_t> cursor(csr.offsets.begin(),
                                    csr.offsets.end() - 1);
  for (const auto& [from, to] : edges) {
    csr.targets[cursor[from]++] = to;
  }
  return csr;
}

Csr transpose(const Csr& graph) {
  std::vector<std::pair<VertexId, VertexId>> reversed;
  reversed.reserve(graph.edge_count());
  for (VertexId v = 0; v < graph.vertex_count(); ++v) {
    const auto [begin, end] = graph.range(v);
    for (std::uint32_t e = begin; e < end; ++e) {
      reversed.emplace_back(graph.targets[e], v);
    }
  }
  return build_csr(graph.vertex_count(), reversed);
}

std::vector<VertexId> topological_order(const Csr& graph) {
  const std::size_t n = graph.vertex_count();
  std::vector<std::uint32_t> indegree(n, 0);
  for (VertexId target : graph.targets) ++indegree[target];

  std::vector<VertexId> frontier;
  frontier.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    if (indegree[v] == 0) frontier.push_back(v);
  }

  std::vector<VertexId> order;
  order.reserve(n);
  // Frontier used as a stack; order validity doesn't depend on pop order.
  while (!frontier.empty()) {
    const VertexId v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    const auto [begin, end] = graph.range(v);
    for (std::uint32_t e = begin; e < end; ++e) {
      const VertexId next = graph.targets[e];
      if (--indegree[next] == 0) frontier.push_back(next);
    }
  }
  if (order.size() != n) order.clear();  // cycle detected
  return order;
}

std::vector<std::uint32_t> longest_path_levels(const Csr& graph) {
  const auto order = topological_order(graph);
  if (order.empty() && graph.vertex_count() != 0) return {};
  std::vector<std::uint32_t> level(graph.vertex_count(), 0);
  for (VertexId v : order) {
    const auto [begin, end] = graph.range(v);
    for (std::uint32_t e = begin; e < end; ++e) {
      const VertexId next = graph.targets[e];
      level[next] = std::max(level[next], level[v] + 1);
    }
  }
  return level;
}

bool is_dag(const Csr& graph) {
  return graph.vertex_count() == 0 || !topological_order(graph).empty();
}

}  // namespace edacloud::nl
