#pragma once
// ML-facing graph extraction — §III-B "Processing Input Design".
//
// For synthesis-runtime prediction the GCN operates on the AIG (already a
// DAG). For placement/routing/STA prediction it operates on the netlist,
// where cells and I/O pins become graph nodes and each net is expanded with
// the star model: one directed edge from the driving cell (or input pin)
// towards each sink (or output pin).

#include <cstdint>
#include <vector>

#include "nl/aig.hpp"
#include "nl/graph.hpp"
#include "nl/netlist.hpp"

namespace edacloud::nl {

/// Per-node feature layout (kept identical for AIG- and netlist-derived
/// graphs so one GCN architecture serves all four applications):
///   [0]  is primary input
///   [1]  is primary output
///   [2]  is AIG AND node
///   [3..14] one-hot cell function (12 classes, netlist cells only)
///   [15] fanin count / 4
///   [16] log1p(fanout count)
///   [17] level / max(depth, 1)
///   [18] fraction of complemented fanins (AIG only)
///   [19] constant 1 (bias channel)
constexpr int kNodeFeatureDim = 20;

struct DesignGraph {
  Csr forward;                  // direction-preserving edges
  std::vector<double> features; // row-major node_count x kNodeFeatureDim
  [[nodiscard]] std::size_t node_count() const {
    return forward.vertex_count();
  }
  [[nodiscard]] const double* feature_row(std::size_t node) const {
    return features.data() + node * kNodeFeatureDim;
  }
};

/// Star-model expansion of a netlist into a DesignGraph.
DesignGraph graph_from_netlist(const Netlist& netlist);

/// Direct DAG view of an AIG as a DesignGraph.
DesignGraph graph_from_aig(const Aig& aig);

/// Scalar structural summary used by analytic baselines and tests.
struct GraphSummary {
  std::size_t node_count = 0;
  std::size_t edge_count = 0;
  std::uint32_t depth = 0;
  double avg_fanout = 0.0;
  double max_fanout = 0.0;
};

GraphSummary summarize(const DesignGraph& graph);

}  // namespace edacloud::nl
