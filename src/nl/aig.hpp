#pragma once
// And-Inverter Graph — the intermediate representation synthesis operates
// on (the paper's GCN consumes this DAG directly for synthesis-runtime
// prediction). Classic encoding: node 0 is constant-false, a literal is
// 2*node + complement-bit, AND nodes have exactly two fanin literals, and
// structural hashing deduplicates isomorphic nodes.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "nl/graph.hpp"

namespace edacloud::nl {

using AigNode = std::uint32_t;
using Literal = std::uint32_t;

constexpr Literal kLitFalse = 0;
constexpr Literal kLitTrue = 1;

constexpr Literal make_literal(AigNode node, bool complemented) {
  return (node << 1) | static_cast<Literal>(complemented);
}
constexpr AigNode literal_node(Literal lit) { return lit >> 1; }
constexpr bool literal_complemented(Literal lit) { return (lit & 1U) != 0; }
constexpr Literal literal_not(Literal lit) { return lit ^ 1U; }

class Aig {
 public:
  explicit Aig(std::string name = "aig");

  // ---- construction -------------------------------------------------------
  Literal add_input();
  void add_output(Literal lit);

  /// AND with constant folding, idempotence/complement rules and structural
  /// hashing. Never creates a duplicate (a,b) node.
  Literal and_of(Literal a, Literal b);

  // Derived operators (expand into AND/INV structure).
  Literal or_of(Literal a, Literal b);
  Literal xor_of(Literal a, Literal b);
  Literal mux_of(Literal sel, Literal when_true, Literal when_false);
  Literal maj_of(Literal a, Literal b, Literal c);

  // ---- access --------------------------------------------------------------
  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] std::size_t node_count() const { return fanin0_.size(); }
  [[nodiscard]] std::size_t input_count() const { return inputs_.size(); }
  [[nodiscard]] std::size_t output_count() const { return outputs_.size(); }
  [[nodiscard]] std::size_t and_count() const {
    return node_count() - 1 - input_count();
  }

  [[nodiscard]] bool is_constant(AigNode node) const { return node == 0; }
  [[nodiscard]] bool is_input(AigNode node) const {
    return node >= 1 && node <= inputs_.size();
  }
  [[nodiscard]] bool is_and(AigNode node) const {
    return node > inputs_.size() && node < node_count();
  }

  [[nodiscard]] Literal fanin0(AigNode node) const { return fanin0_[node]; }
  [[nodiscard]] Literal fanin1(AigNode node) const { return fanin1_[node]; }

  [[nodiscard]] const std::vector<AigNode>& inputs() const { return inputs_; }
  [[nodiscard]] const std::vector<Literal>& outputs() const {
    return outputs_;
  }

  /// Longest-path level per node (inputs/constant at 0).
  [[nodiscard]] std::vector<std::uint32_t> levels() const;
  /// Depth = max level over output nodes.
  [[nodiscard]] std::uint32_t depth() const;

  /// Per-node fanout counts (output references count as fanout).
  [[nodiscard]] std::vector<std::uint32_t> fanout_counts() const;

  /// Direction-preserving DAG (edges fanin-node -> node) for the GCN.
  [[nodiscard]] Csr build_forward_csr() const;

  /// Simulate with 64 random input patterns packed per word.
  /// words.size() == input_count(); returns one word per output.
  [[nodiscard]] std::vector<std::uint64_t> simulate(
      const std::vector<std::uint64_t>& input_words) const;

  /// Nodes reachable from outputs (dead nodes excluded); useful after
  /// rewriting. Index by node id; entry true if alive.
  [[nodiscard]] std::vector<bool> live_nodes() const;

 private:
  struct FaninKey {
    Literal a;
    Literal b;
    bool operator==(const FaninKey&) const = default;
  };
  struct FaninKeyHash {
    std::size_t operator()(const FaninKey& key) const {
      std::uint64_t packed =
          (static_cast<std::uint64_t>(key.a) << 32) | key.b;
      packed ^= packed >> 33;
      packed *= 0xFF51AFD7ED558CCDULL;
      packed ^= packed >> 33;
      return static_cast<std::size_t>(packed);
    }
  };

  std::string name_;
  // Parallel arrays; index = node id. Inputs/constant store 0 fanins.
  std::vector<Literal> fanin0_;
  std::vector<Literal> fanin1_;
  std::vector<AigNode> inputs_;
  std::vector<Literal> outputs_;
  std::unordered_map<FaninKey, AigNode, FaninKeyHash> strash_;
};

}  // namespace edacloud::nl
