#pragma once
// Generic directed-graph utilities shared by the netlist, the star-model
// extraction, and the GCN front end: CSR adjacency, transpose, topological
// ordering and longest-path levelization.

#include <cstdint>
#include <utility>
#include <vector>

namespace edacloud::nl {

using VertexId = std::uint32_t;

/// Compressed sparse row adjacency for a directed graph.
struct Csr {
  std::vector<std::uint32_t> offsets;  // size = vertex_count + 1
  std::vector<VertexId> targets;       // size = edge_count

  [[nodiscard]] std::size_t vertex_count() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  [[nodiscard]] std::size_t edge_count() const { return targets.size(); }

  /// Out-neighbors of v as a [begin, end) pair of indices into targets.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> range(
      VertexId v) const {
    return {offsets[v], offsets[v + 1]};
  }
  [[nodiscard]] std::uint32_t degree(VertexId v) const {
    return offsets[v + 1] - offsets[v];
  }
};

/// Build CSR from an edge list over `vertex_count` vertices.
Csr build_csr(std::size_t vertex_count,
              const std::vector<std::pair<VertexId, VertexId>>& edges);

/// Reverse every edge.
Csr transpose(const Csr& graph);

/// Kahn topological order. Returns empty vector if the graph has a cycle
/// (callers treat that as a validation failure).
std::vector<VertexId> topological_order(const Csr& graph);

/// Longest-path level per vertex (sources at level 0); requires a DAG.
/// Returns empty vector on cycle.
std::vector<std::uint32_t> longest_path_levels(const Csr& graph);

/// True iff the graph is acyclic.
bool is_dag(const Csr& graph);

}  // namespace edacloud::nl
