#include "nl/dot.hpp"

#include <sstream>

namespace edacloud::nl {

std::string write_dot(const Netlist& netlist) {
  std::ostringstream out;
  out << "digraph \"" << (netlist.name().empty() ? "netlist" : netlist.name())
      << "\" {\n  rankdir=LR;\n  node [fontsize=10];\n";
  for (NodeId id = 0; id < netlist.node_count(); ++id) {
    const NetlistNode& node = netlist.node(id);
    switch (node.kind) {
      case NodeKind::kPrimaryInput:
        out << "  n" << id << " [shape=triangle, label=\"pi" << id
            << "\"];\n";
        break;
      case NodeKind::kPrimaryOutput:
        out << "  n" << id << " [shape=invhouse, label=\"po" << id
            << "\"];\n";
        break;
      case NodeKind::kCell:
        out << "  n" << id << " [shape=box, label=\""
            << netlist.library().cell(node.cell).name << "\\ng" << id
            << "\"];\n";
        break;
    }
  }
  for (NodeId id = 0; id < netlist.node_count(); ++id) {
    for (NodeId fanin : netlist.node(id).fanins) {
      out << "  n" << fanin << " -> n" << id << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

std::string write_dot(const Aig& aig) {
  std::ostringstream out;
  out << "digraph \"" << (aig.name().empty() ? "aig" : aig.name())
      << "\" {\n  rankdir=LR;\n  node [fontsize=10];\n";
  out << "  n0 [shape=plaintext, label=\"0\"];\n";
  for (AigNode input : aig.inputs()) {
    out << "  n" << input << " [shape=triangle, label=\"i" << input
        << "\"];\n";
  }
  auto edge = [&out](Literal lit, AigNode to) {
    out << "  n" << literal_node(lit) << " -> n" << to;
    if (literal_complemented(lit)) out << " [style=dashed]";
    out << ";\n";
  };
  for (AigNode node = 0; node < aig.node_count(); ++node) {
    if (!aig.is_and(node)) continue;
    out << "  n" << node << " [shape=ellipse, label=\"&" << node << "\"];\n";
    edge(aig.fanin0(node), node);
    edge(aig.fanin1(node), node);
  }
  for (std::size_t i = 0; i < aig.outputs().size(); ++i) {
    const Literal lit = aig.outputs()[i];
    out << "  o" << i << " [shape=invhouse, label=\"o" << i << "\"];\n";
    out << "  n" << literal_node(lit) << " -> o" << i;
    if (literal_complemented(lit)) out << " [style=dashed]";
    out << ";\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace edacloud::nl
