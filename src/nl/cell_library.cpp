#include "nl/cell_library.hpp"

#include <algorithm>
#include <stdexcept>

namespace edacloud::nl {

CellId CellLibrary::add_cell(Cell cell) {
  if (find(cell.name).has_value()) {
    throw std::invalid_argument("duplicate cell name: " + cell.name);
  }
  cells_.push_back(std::move(cell));
  return static_cast<CellId>(cells_.size() - 1);
}

std::optional<CellId> CellLibrary::find(std::string_view cell_name) const {
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].name == cell_name) return static_cast<CellId>(i);
  }
  return std::nullopt;
}

std::vector<CellId> CellLibrary::cells_with_function(
    CellFunction function) const {
  std::vector<CellId> matches;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].function == function) {
      matches.push_back(static_cast<CellId>(i));
    }
  }
  std::sort(matches.begin(), matches.end(), [this](CellId a, CellId b) {
    return cells_[a].area_um2 < cells_[b].area_um2;
  });
  return matches;
}

namespace {

Cell make(std::string name, CellFunction fn, int inputs, double area,
          double cap, double intrinsic, double slope, double leakage) {
  Cell cell;
  cell.name = std::move(name);
  cell.function = fn;
  cell.input_count = inputs;
  cell.area_um2 = area;
  cell.input_cap_ff = cap;
  cell.intrinsic_delay_ps = intrinsic;
  cell.drive_res_kohm = slope;
  cell.leakage_nw = leakage;
  return cell;
}

}  // namespace

CellLibrary make_generic_14nm_library() {
  CellLibrary lib("generic14");
  lib.set_wire_cap_per_um(0.20);
  lib.set_wire_res_per_um(0.003);

  // Drive strengths: _X1 small/slow, _X2 medium, _X4 large/fast.
  lib.add_cell(make("BUF_X1", CellFunction::kBuf, 1, 0.39, 0.9, 16.0, 5.2, 0.8));
  lib.add_cell(make("BUF_X2", CellFunction::kBuf, 1, 0.59, 1.7, 17.0, 2.7, 1.5));
  lib.add_cell(make("BUF_X4", CellFunction::kBuf, 1, 0.98, 3.3, 18.0, 1.4, 2.9));
  lib.add_cell(make("INV_X1", CellFunction::kInv, 1, 0.20, 1.0, 6.0, 4.8, 0.4));
  lib.add_cell(make("INV_X2", CellFunction::kInv, 1, 0.29, 1.9, 6.5, 2.5, 0.8));
  lib.add_cell(make("INV_X4", CellFunction::kInv, 1, 0.49, 3.7, 7.0, 1.3, 1.6));
  lib.add_cell(make("NAND2_X1", CellFunction::kNand, 2, 0.39, 1.1, 9.0, 5.6, 0.7));
  lib.add_cell(make("NAND2_X2", CellFunction::kNand, 2, 0.59, 2.1, 9.8, 2.9, 1.4));
  lib.add_cell(make("NOR2_X1", CellFunction::kNor, 2, 0.39, 1.2, 10.5, 6.1, 0.7));
  lib.add_cell(make("NOR2_X2", CellFunction::kNor, 2, 0.59, 2.3, 11.4, 3.2, 1.4));
  lib.add_cell(make("AND2_X1", CellFunction::kAnd, 2, 0.59, 1.0, 18.0, 5.3, 0.9));
  lib.add_cell(make("OR2_X1", CellFunction::kOr, 2, 0.59, 1.0, 19.0, 5.5, 0.9));
  lib.add_cell(make("XOR2_X1", CellFunction::kXor, 2, 0.98, 1.8, 25.0, 6.4, 1.8));
  lib.add_cell(make("XNOR2_X1", CellFunction::kXnor, 2, 0.98, 1.8, 25.5, 6.4, 1.8));
  lib.add_cell(make("AOI21_X1", CellFunction::kAoi, 3, 0.59, 1.2, 14.0, 6.8, 1.0));
  lib.add_cell(make("OAI21_X1", CellFunction::kOai, 3, 0.59, 1.2, 14.5, 6.9, 1.0));
  lib.add_cell(make("MUX2_X1", CellFunction::kMux, 3, 1.17, 1.5, 28.0, 6.0, 2.0));
  lib.add_cell(make("MAJ3_X1", CellFunction::kMaj, 3, 1.37, 1.6, 30.0, 6.6, 2.4));
  return lib;
}

std::string_view to_string(CellFunction function) {
  switch (function) {
    case CellFunction::kBuf: return "BUF";
    case CellFunction::kInv: return "INV";
    case CellFunction::kAnd: return "AND";
    case CellFunction::kOr: return "OR";
    case CellFunction::kNand: return "NAND";
    case CellFunction::kNor: return "NOR";
    case CellFunction::kXor: return "XOR";
    case CellFunction::kXnor: return "XNOR";
    case CellFunction::kAoi: return "AOI";
    case CellFunction::kOai: return "OAI";
    case CellFunction::kMux: return "MUX";
    case CellFunction::kMaj: return "MAJ";
  }
  return "?";
}

}  // namespace edacloud::nl
