#pragma once
// ASCII AIGER ("aag") interchange for combinational AIGs — the de-facto
// exchange format of the logic-synthesis world (ABC, mockturtle, model
// checkers). Our literal encoding (2*variable + complement, literal 0 =
// constant false) matches AIGER's exactly, so the mapping is direct.
// Latches are not supported (the flow is combinational); L must be 0.

#include <string>

#include "nl/aig.hpp"

namespace edacloud::nl {

/// Serialize as "aag M I L O A" ASCII AIGER.
std::string write_aiger(const Aig& aig);

struct AigerParseResult {
  bool ok = false;
  std::string error;
  Aig aig;
};

/// Parse an ASCII AIGER file. Requires a strictly topological AND section
/// (each AND's operands defined before use), as produced by write_aiger
/// and by standard tools.
AigerParseResult parse_aiger(const std::string& text);

}  // namespace edacloud::nl
