#include "synth/recipe.hpp"

namespace edacloud::synth {

std::vector<SynthRecipe> standard_recipes() {
  return {
      {"raw-area", 0, false, MapMode::kArea, false},
      {"rw-area", 1, false, MapMode::kArea, true},
      {"rw-bal-area", 1, true, MapMode::kArea, true},
      {"rw2-bal-area", 2, true, MapMode::kArea, true},
      {"rw-bal-delay", 1, true, MapMode::kDelay, true},
      {"rw2-bal-delay", 2, true, MapMode::kDelay, false},
  };
}

SynthRecipe default_recipe() { return {"rw-bal-area", 1, true, MapMode::kArea, true}; }

}  // namespace edacloud::synth
