#include "synth/mapper.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace edacloud::synth {

using nl::Aig;
using nl::AigNode;
using nl::CellFunction;
using nl::CellId;
using nl::Literal;
using nl::literal_complemented;
using nl::literal_node;
using nl::Netlist;
using nl::NodeId;

namespace {

constexpr std::uint64_t kCostBase = 0x30ULL << 23;
constexpr std::uint64_t kMatcherBase = 0x31ULL << 23;

/// Truth table of a cell function with pins assigned to variables `v`.
std::uint16_t function_table(CellFunction function,
                             const std::array<int, 3>& v) {
  const auto m = [&v](int pin) { return kVarMask[v[pin]]; };
  const auto inv = [](std::uint16_t t) {
    return static_cast<std::uint16_t>(~t);
  };
  switch (function) {
    case CellFunction::kBuf:
      return m(0);
    case CellFunction::kInv:
      return inv(m(0));
    case CellFunction::kAnd:
      return m(0) & m(1);
    case CellFunction::kOr:
      return m(0) | m(1);
    case CellFunction::kNand:
      return inv(m(0) & m(1));
    case CellFunction::kNor:
      return inv(m(0) | m(1));
    case CellFunction::kXor:
      return m(0) ^ m(1);
    case CellFunction::kXnor:
      return inv(m(0) ^ m(1));
    case CellFunction::kAoi:
      return inv((m(0) & m(1)) | m(2));
    case CellFunction::kOai:
      return inv(static_cast<std::uint16_t>((m(0) | m(1)) & m(2)));
    case CellFunction::kMux:
      return static_cast<std::uint16_t>((m(0) & m(1)) | (inv(m(0)) & m(2)));
    case CellFunction::kMaj:
      return static_cast<std::uint16_t>((m(0) & m(1)) | (m(0) & m(2)) |
                                        (m(1) & m(2)));
  }
  return 0;
}

}  // namespace

TechMapper::TechMapper(const nl::CellLibrary& library) : library_(&library) {
  auto cheapest = [this](CellFunction function) {
    const auto ids = library_->cells_with_function(function);
    if (ids.empty()) {
      throw std::invalid_argument("library lacks required cell function");
    }
    return ids.front();
  };
  inv_cell_ = cheapest(CellFunction::kInv);
  buf_cell_ = cheapest(CellFunction::kBuf);
  and2_cell_ = cheapest(CellFunction::kAnd);
  nor2_cell_ = cheapest(CellFunction::kNor);
  build_matcher();
}

void TechMapper::consider(std::uint16_t table, const Match& match,
                          double area) {
  auto it = matcher_.find(table);
  if (it == matcher_.end()) {
    matcher_.emplace(table, match);
    return;
  }
  const nl::Cell& incumbent = library_->cell(it->second.cell);
  double incumbent_area = incumbent.area_um2;
  if (it->second.inv_output) {
    incumbent_area += library_->cell(inv_cell_).area_um2;
  }
  if (area < incumbent_area) it->second = match;
}

void TechMapper::build_matcher() {
  const double inv_area = library_->cell(inv_cell_).area_um2;
  for (CellId id = 0; id < library_->size(); ++id) {
    const nl::Cell& cell = library_->cell(id);
    const int arity = cell.input_count;
    if (arity < 2 || arity > 3) continue;  // 1-input handled structurally

    // All injective pin->variable assignments over the 4 leaf slots.
    std::array<int, 4> vars = {0, 1, 2, 3};
    std::sort(vars.begin(), vars.end());
    // Enumerate ordered selections of `arity` variables.
    std::array<int, 3> assign{};
    auto recurse = [&](auto&& self, int pin, std::uint32_t used) -> void {
      if (pin == arity) {
        const std::uint16_t table = function_table(cell.function, assign);
        Match match;
        match.cell = id;
        match.arity = static_cast<std::uint8_t>(arity);
        for (int p = 0; p < arity; ++p) {
          match.pin_to_leaf[p] = static_cast<std::uint8_t>(assign[p]);
        }
        match.inv_output = false;
        consider(table, match, cell.area_um2);
        match.inv_output = true;
        consider(static_cast<std::uint16_t>(~table), match,
                 cell.area_um2 + inv_area);
        return;
      }
      for (int v = 0; v < 4; ++v) {
        if (used & (1U << v)) continue;
        assign[pin] = v;
        self(self, pin + 1, used | (1U << v));
      }
    };
    recurse(recurse, 0, 0);
  }
}

MapResult TechMapper::map(const Aig& aig, MapMode mode,
                          perf::Instrument* instrument) const {
  const auto cuts = enumerate_cuts(aig, instrument);
  const auto fanouts = aig.fanout_counts();
  const auto alive = aig.live_nodes();

  // ---- DP over nodes: best implementation choice per AND node -------------
  struct Choice {
    bool use_match = false;
    Match match;
    Cut cut;
    double cost = std::numeric_limits<double>::infinity();
    double arrival = 0.0;
  };
  std::vector<Choice> choice(aig.node_count());
  std::vector<double> area_flow(aig.node_count(), 0.0);
  std::vector<double> arrival(aig.node_count(), 0.0);

  const double inv_area = library_->cell(inv_cell_).area_um2;
  const double inv_delay = library_->cell(inv_cell_).delay_ps(4.0);

  for (AigNode node = 0; node < aig.node_count(); ++node) {
    if (!aig.is_and(node) || !alive[node]) continue;
    Choice best;

    auto leaf_metrics = [&](const nl::AigNode* leaves, int count,
                            double& flow_sum, double& worst_arrival) {
      flow_sum = 0.0;
      worst_arrival = 0.0;
      for (int i = 0; i < count; ++i) {
        const AigNode leaf = leaves[i];
        flow_sum += area_flow[leaf] /
                    std::max<std::uint32_t>(1, fanouts[leaf]);
        worst_arrival = std::max(worst_arrival, arrival[leaf]);
      }
    };

    // Candidate 1..n: matched cuts.
    const CutSet& set = cuts[node];
    for (int c = 0; c < set.count; ++c) {
      const Cut& cut = set[c];
      if (cut.size < 2) continue;  // trivial/constant cuts
      if (instrument != nullptr) {
        // Matcher probes concentrate on a few dozen frequent functions.
        const std::uint64_t offset = (cut.table & 7) != 0
                                         ? (cut.table % 512) * 4ULL
                                         : cut.table * 4ULL;
        instrument->load(kMatcherBase + offset);
      }
      const auto it = matcher_.find(cut.table);
      const bool hit = it != matcher_.end();
      if (instrument != nullptr) {
        instrument->branch(kMatcherBase ^ 0x5, hit);
      }
      if (!hit) continue;
      const Match& match = it->second;
      const nl::Cell& cell = library_->cell(match.cell);
      double flow_sum, worst_arrival;
      leaf_metrics(cut.leaves.data(), cut.size, flow_sum, worst_arrival);
      const double gate_area =
          cell.area_um2 + (match.inv_output ? inv_area : 0.0);
      const double gate_delay =
          cell.delay_ps(4.0) + (match.inv_output ? inv_delay : 0.0);
      const double cost = mode == MapMode::kArea
                              ? gate_area + flow_sum
                              : worst_arrival + gate_delay +
                                    1e-3 * (gate_area + flow_sum);
      if (instrument != nullptr) {
        instrument->fp_ops(4);
        instrument->avx_ops(2);  // vectorized area-flow evaluation
      }
      if (cost < best.cost) {
        best.use_match = true;
        best.match = match;
        best.cut = cut;
        best.cost = cost;
        best.arrival = worst_arrival + gate_delay;
      }
    }

    // Fallback candidate: structural AND/NOR (+INV for mixed phases).
    {
      const Literal f0 = aig.fanin0(node);
      const Literal f1 = aig.fanin1(node);
      const AigNode leaves[2] = {literal_node(f0), literal_node(f1)};
      double flow_sum, worst_arrival;
      leaf_metrics(leaves, 2, flow_sum, worst_arrival);
      const bool c0 = literal_complemented(f0);
      const bool c1 = literal_complemented(f1);
      const nl::Cell& base_cell = library_->cell(
          (c0 && c1) ? nor2_cell_ : and2_cell_);
      const bool needs_inv = c0 != c1;
      const double gate_area = base_cell.area_um2 + (needs_inv ? inv_area : 0);
      const double gate_delay =
          base_cell.delay_ps(4.0) + (needs_inv ? inv_delay : 0.0);
      const double cost = mode == MapMode::kArea
                              ? gate_area + flow_sum
                              : worst_arrival + gate_delay +
                                    1e-3 * (gate_area + flow_sum);
      if (cost < best.cost) {
        best.use_match = false;
        best.cost = cost;
        best.arrival = worst_arrival + gate_delay;
      }
    }

    choice[node] = best;
    area_flow[node] = best.cost;
    arrival[node] = best.arrival;
    if (instrument != nullptr) {
      instrument->store(kCostBase + node * 8);
      instrument->int_ops(8);
    }
  }

  // ---- cover extraction from the outputs -----------------------------------
  std::vector<bool> needed(aig.node_count(), false);
  std::vector<AigNode> stack;
  for (Literal out : aig.outputs()) {
    const AigNode node = literal_node(out);
    if (aig.is_and(node) && !needed[node]) {
      needed[node] = true;
      stack.push_back(node);
    }
  }
  while (!stack.empty()) {
    const AigNode node = stack.back();
    stack.pop_back();
    const Choice& ch = choice[node];
    auto require = [&](AigNode leaf) {
      if (aig.is_and(leaf) && !needed[leaf]) {
        needed[leaf] = true;
        stack.push_back(leaf);
      }
    };
    if (ch.use_match) {
      for (int i = 0; i < ch.cut.size; ++i) require(ch.cut.leaves[i]);
    } else {
      require(literal_node(aig.fanin0(node)));
      require(literal_node(aig.fanin1(node)));
    }
  }

  // ---- netlist emission ------------------------------------------------------
  MapResult result{Netlist(aig.name(), library_), 0.0, 0, 0, 0};
  Netlist& netlist = result.netlist;

  std::vector<NodeId> signal(aig.node_count(), nl::kInvalidNode);
  std::vector<NodeId> inverted(aig.node_count(), nl::kInvalidNode);

  for (AigNode input : aig.inputs()) {
    signal[input] = netlist.add_input();
  }

  auto emit_cell = [&](CellId cell, std::vector<NodeId> fanins) {
    result.mapped_area_um2 += library_->cell(cell).area_um2;
    ++result.cell_count;
    return netlist.add_cell(cell, std::move(fanins));
  };

  auto inverted_signal = [&](AigNode node) {
    if (inverted[node] == nl::kInvalidNode) {
      inverted[node] = emit_cell(inv_cell_, {signal[node]});
    }
    return inverted[node];
  };

  // Lazily-built constant-false net (needs at least one primary input).
  NodeId const0 = nl::kInvalidNode;
  auto constant0 = [&]() {
    if (const0 == nl::kInvalidNode) {
      if (aig.inputs().empty()) {
        throw std::invalid_argument("cannot emit constant without inputs");
      }
      const AigNode pi = aig.inputs().front();
      const0 = emit_cell(and2_cell_, {signal[pi], inverted_signal(pi)});
    }
    return const0;
  };

  for (AigNode node = 0; node < aig.node_count(); ++node) {
    if (!aig.is_and(node) || !needed[node]) continue;
    const Choice& ch = choice[node];
    if (ch.use_match) {
      ++result.matched_cut_count;
      std::vector<NodeId> pins(ch.match.arity);
      for (int p = 0; p < ch.match.arity; ++p) {
        pins[static_cast<std::size_t>(p)] =
            signal[ch.cut.leaves[ch.match.pin_to_leaf[
                static_cast<std::size_t>(p)]]];
      }
      NodeId out = emit_cell(ch.match.cell, std::move(pins));
      if (ch.match.inv_output) out = emit_cell(inv_cell_, {out});
      signal[node] = out;
    } else {
      ++result.fallback_count;
      const Literal f0 = aig.fanin0(node);
      const Literal f1 = aig.fanin1(node);
      const AigNode n0 = literal_node(f0);
      const AigNode n1 = literal_node(f1);
      const bool c0 = literal_complemented(f0);
      const bool c1 = literal_complemented(f1);
      if (c0 && c1) {
        signal[node] = emit_cell(nor2_cell_, {signal[n0], signal[n1]});
      } else {
        const NodeId s0 = c0 ? inverted_signal(n0) : signal[n0];
        const NodeId s1 = c1 ? inverted_signal(n1) : signal[n1];
        signal[node] = emit_cell(and2_cell_, {s0, s1});
      }
    }
  }

  // Primary outputs (shared inverters for complemented literals).
  for (Literal out : aig.outputs()) {
    const AigNode node = literal_node(out);
    NodeId source;
    if (aig.is_constant(node)) {
      source = constant0();
      if (!literal_complemented(out)) {
        netlist.add_output(source);
        continue;
      }
      netlist.add_output(emit_cell(inv_cell_, {source}));
      continue;
    }
    source =
        literal_complemented(out) ? inverted_signal(node) : signal[node];
    netlist.add_output(source);
  }
  return result;
}

Netlist fuse_inverters(const Netlist& input) {
  const nl::CellLibrary& library = input.library();
  auto find_cell = [&library](CellFunction fn) {
    const auto ids = library.cells_with_function(fn);
    return ids.empty() ? nl::kInvalidCell : ids.front();
  };
  // Fusion partners: INV(f(x)) -> g(x).
  auto fused_function = [](CellFunction fn, bool& ok) {
    ok = true;
    switch (fn) {
      case CellFunction::kAnd:
        return CellFunction::kNand;
      case CellFunction::kNand:
        return CellFunction::kAnd;
      case CellFunction::kOr:
        return CellFunction::kNor;
      case CellFunction::kNor:
        return CellFunction::kOr;
      case CellFunction::kXor:
        return CellFunction::kXnor;
      case CellFunction::kXnor:
        return CellFunction::kXor;
      default:
        ok = false;
        return fn;
    }
  };

  const auto fanouts = input.fanout_counts();

  auto is_inv = [&](NodeId id) {
    const nl::NetlistNode& node = input.node(id);
    return node.kind == nl::NodeKind::kCell &&
           library.cell(node.cell).function == CellFunction::kInv;
  };

  // Pass 1: collapse INV(INV(x)) chains — the outer INV aliases x and the
  // single-fanout inner INV disappears.
  std::vector<NodeId> alias(input.node_count(), nl::kInvalidNode);
  std::vector<bool> absorbed(input.node_count(), false);
  for (NodeId id = 0; id < input.node_count(); ++id) {
    if (!is_inv(id)) continue;
    const NodeId inner = input.node(id).fanins[0];
    if (is_inv(inner) && fanouts[inner] == 1 && !absorbed[inner]) {
      alias[id] = input.node(inner).fanins[0];
      absorbed[inner] = true;
    }
  }

  // Pass 2: INV nodes whose single fanin is a fusable single-fanout cell.
  std::vector<NodeId> fuse_base(input.node_count(), nl::kInvalidNode);
  for (NodeId id = 0; id < input.node_count(); ++id) {
    if (!is_inv(id) || alias[id] != nl::kInvalidNode) continue;
    const NodeId base = input.node(id).fanins[0];
    const nl::NetlistNode& base_node = input.node(base);
    if (base_node.kind != nl::NodeKind::kCell) continue;
    if (fanouts[base] != 1) continue;
    bool ok = false;
    const CellFunction target =
        fused_function(library.cell(base_node.cell).function, ok);
    if (!ok || find_cell(target) == nl::kInvalidCell) continue;
    if (absorbed[base]) continue;  // base already fused elsewhere
    fuse_base[id] = base;
    absorbed[base] = true;
  }

  Netlist output(input.name(), &library);
  std::vector<NodeId> remap(input.node_count(), nl::kInvalidNode);
  // Interface order must be preserved exactly (a topological traversal may
  // permute it): inputs first, cells in topo order, outputs last.
  for (NodeId id : input.inputs()) remap[id] = output.add_input();
  const auto order = input.topological_order();
  for (NodeId id : order) {
    const nl::NetlistNode& node = input.node(id);
    switch (node.kind) {
      case nl::NodeKind::kPrimaryInput:
      case nl::NodeKind::kPrimaryOutput:
        break;  // handled outside the traversal
      case nl::NodeKind::kCell: {
        if (absorbed[id]) break;  // emitted by its fusing INV / collapsed
        if (alias[id] != nl::kInvalidNode) {
          remap[id] = remap[alias[id]];
          break;
        }
        if (fuse_base[id] != nl::kInvalidNode) {
          const nl::NetlistNode& base = input.node(fuse_base[id]);
          bool ok = false;
          const CellFunction target =
              fused_function(library.cell(base.cell).function, ok);
          std::vector<NodeId> fanins;
          for (NodeId fanin : base.fanins) fanins.push_back(remap[fanin]);
          remap[id] = output.add_cell(find_cell(target), std::move(fanins));
        } else {
          std::vector<NodeId> fanins;
          for (NodeId fanin : node.fanins) fanins.push_back(remap[fanin]);
          remap[id] = output.add_cell(node.cell, std::move(fanins));
        }
        break;
      }
    }
  }
  for (NodeId id : input.outputs()) {
    output.add_output(remap[input.node(id).fanins[0]]);
  }
  return output;
}

}  // namespace edacloud::synth
