#include "synth/buffering.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace edacloud::synth {

namespace {

/// Serve `sink_count` sinks from `root` through a tree of buffers so no
/// node (root or buffer) drives more than max_fanout. Returns, for each
/// sink slot, the node the sink should connect to.
std::vector<nl::NodeId> build_buffer_tree(nl::Netlist& netlist,
                                          nl::NodeId root,
                                          std::size_t sink_count,
                                          std::uint32_t max_fanout,
                                          nl::CellId buffer_cell,
                                          int& buffers_inserted) {
  std::vector<nl::NodeId> drivers(sink_count, root);
  if (sink_count <= max_fanout) return drivers;

  // Bottom-up: group sinks into chunks of max_fanout behind one buffer,
  // then recursively serve the buffers themselves.
  const std::size_t group_count =
      (sink_count + max_fanout - 1) / max_fanout;
  std::vector<nl::NodeId> group_drivers = build_buffer_tree(
      netlist, root, group_count, max_fanout, buffer_cell,
      buffers_inserted);
  for (std::size_t g = 0; g < group_count; ++g) {
    const nl::NodeId buffer =
        netlist.add_cell(buffer_cell, {group_drivers[g]});
    ++buffers_inserted;
    const std::size_t begin = g * max_fanout;
    const std::size_t end = std::min(sink_count, begin + max_fanout);
    for (std::size_t s = begin; s < end; ++s) drivers[s] = buffer;
  }
  return drivers;
}

}  // namespace

BufferingResult buffer_high_fanout(const nl::Netlist& netlist,
                                   BufferingOptions options) {
  if (options.max_fanout < 2) {
    throw std::invalid_argument("max_fanout must be at least 2");
  }
  const auto& library = netlist.library();
  nl::CellId buffer_cell = options.buffer_cell;
  if (buffer_cell == nl::kInvalidCell) {
    const auto buffers =
        library.cells_with_function(nl::CellFunction::kBuf);
    if (buffers.empty()) {
      throw std::invalid_argument("library has no buffer cell");
    }
    buffer_cell = buffers.front();
  }

  BufferingResult result{nl::Netlist(netlist.name(), &library), 0, 0, 0};
  nl::Netlist& output = result.netlist;

  const auto fanouts = netlist.fanout_counts();
  for (std::uint32_t fanout : fanouts) {
    result.max_fanout_before = std::max(result.max_fanout_before, fanout);
  }

  // For each source node, the queue of drivers its sinks should use
  // (assigned in sink-visit order).
  std::vector<std::vector<nl::NodeId>> sink_drivers(netlist.node_count());
  std::vector<std::size_t> cursor(netlist.node_count(), 0);
  std::vector<nl::NodeId> remap(netlist.node_count(), nl::kInvalidNode);

  auto driver_for = [&](nl::NodeId source) {
    auto& queue = sink_drivers[source];
    if (queue.empty()) {
      queue = build_buffer_tree(output, remap[source], fanouts[source],
                                options.max_fanout, buffer_cell,
                                result.buffers_inserted);
    }
    return queue[cursor[source]++ % queue.size()];
  };

  for (nl::NodeId id : netlist.inputs()) remap[id] = output.add_input();
  for (nl::NodeId id : netlist.topological_order()) {
    const auto& node = netlist.node(id);
    if (node.kind != nl::NodeKind::kCell) continue;
    std::vector<nl::NodeId> fanins;
    for (nl::NodeId fanin : node.fanins) {
      fanins.push_back(driver_for(fanin));
    }
    remap[id] = output.add_cell(node.cell, std::move(fanins));
  }
  for (nl::NodeId id : netlist.outputs()) {
    output.add_output(driver_for(netlist.node(id).fanins[0]));
  }

  const auto after = output.fanout_counts();
  for (std::uint32_t fanout : after) {
    result.max_fanout_after = std::max(result.max_fanout_after, fanout);
  }
  return result;
}

}  // namespace edacloud::synth
