#include "synth/cuts.hpp"

#include <algorithm>

namespace edacloud::synth {

namespace {

constexpr std::uint64_t kCutArrayBase = 0x10ULL << 23;  // abstract addresses

}  // namespace

void CutSet::push(const Cut& cut) {
  for (int i = 0; i < count; ++i) {
    if (cuts[i] == cut) return;  // duplicate leaf set
  }
  if (count < kCapacity) {
    cuts[count++] = cut;
    return;
  }
  // Full: replace the largest cut if the new one is smaller.
  int widest = 0;
  for (int i = 1; i < count; ++i) {
    if (cuts[i].size > cuts[widest].size) widest = i;
  }
  if (cut.size < cuts[widest].size) cuts[widest] = cut;
}

std::uint16_t expand_table(std::uint16_t table,
                           const std::array<nl::AigNode, kMaxCutLeaves>& from,
                           int from_size,
                           const std::array<nl::AigNode, kMaxCutLeaves>& to,
                           int to_size) {
  // Map each source variable to its position in the target leaf list.
  std::array<int, kMaxCutLeaves> position{};
  for (int i = 0; i < from_size; ++i) {
    position[i] = -1;
    for (int j = 0; j < to_size; ++j) {
      if (to[j] == from[i]) {
        position[i] = j;
        break;
      }
    }
  }
  std::uint16_t out = 0;
  for (int row = 0; row < 16; ++row) {
    int src_row = 0;
    for (int i = 0; i < from_size; ++i) {
      if (position[i] >= 0 && ((row >> position[i]) & 1)) src_row |= 1 << i;
    }
    if ((table >> src_row) & 1) out |= static_cast<std::uint16_t>(1 << row);
  }
  return out;
}

bool merge_cuts(const Cut& a, bool a_complemented, const Cut& b,
                bool b_complemented, Cut& out) {
  // Sorted union of leaves.
  std::array<nl::AigNode, 2 * kMaxCutLeaves> merged{};
  int ia = 0, ib = 0, n = 0;
  while (ia < a.size || ib < b.size) {
    nl::AigNode next;
    if (ia < a.size && (ib >= b.size || a.leaves[ia] <= b.leaves[ib])) {
      next = a.leaves[ia];
      if (ib < b.size && b.leaves[ib] == next) ++ib;
      ++ia;
    } else {
      next = b.leaves[ib];
      ++ib;
    }
    if (n == kMaxCutLeaves) return false;
    merged[n++] = next;
  }
  out.size = static_cast<std::uint8_t>(n);
  for (int i = 0; i < n; ++i) out.leaves[i] = merged[i];

  std::uint16_t ta = expand_table(a.table, a.leaves, a.size, out.leaves, n);
  std::uint16_t tb = expand_table(b.table, b.leaves, b.size, out.leaves, n);
  if (a_complemented) ta = static_cast<std::uint16_t>(~ta);
  if (b_complemented) tb = static_cast<std::uint16_t>(~tb);
  out.table = static_cast<std::uint16_t>(ta & tb);
  return true;
}

std::vector<CutSet> enumerate_cuts(const nl::Aig& aig,
                                   perf::Instrument* instrument) {
  std::vector<CutSet> sets(aig.node_count());

  auto trivial = [](nl::AigNode node) {
    Cut cut;
    cut.size = 1;
    cut.leaves[0] = node;
    cut.table = kVarMask[0];
    return cut;
  };

  // Constant node: empty-leaf cut, constant-false table.
  {
    Cut const_cut;
    const_cut.size = 0;
    const_cut.table = 0;
    sets[0].push(const_cut);
  }
  for (nl::AigNode input : aig.inputs()) {
    sets[input].push(trivial(input));
  }

  for (nl::AigNode node = 0; node < aig.node_count(); ++node) {
    if (!aig.is_and(node)) continue;
    const nl::Literal f0 = aig.fanin0(node);
    const nl::Literal f1 = aig.fanin1(node);
    const nl::AigNode n0 = nl::literal_node(f0);
    const nl::AigNode n1 = nl::literal_node(f1);
    const CutSet& set0 = sets[n0];
    const CutSet& set1 = sets[n1];
    if (instrument != nullptr) {
      // Cut sets are consumed level-by-level: fanin sets were produced
      // recently, so most probes land in a hot working window.
      auto cut_addr = [node](nl::AigNode fanin) {
        const std::uint64_t hot = (node ^ fanin) & 7;
        return hot != 0 ? kCutArrayBase + (fanin % 512) * sizeof(CutSet)
                        : kCutArrayBase + fanin * sizeof(CutSet);
      };
      instrument->load(cut_addr(n0));
      instrument->load(cut_addr(n1));
      // Merge-loop control: strongly-taken, well-predicted branches.
      for (int lb = 0; lb < 8; ++lb) {
        instrument->branch(kCutArrayBase ^ 0x9, lb != 7);
      }
    }
    CutSet& mine = sets[node];
    for (int i = 0; i < set0.count; ++i) {
      for (int j = 0; j < set1.count; ++j) {
        Cut merged;
        const bool ok =
            merge_cuts(set0[i], nl::literal_complemented(f0), set1[j],
                       nl::literal_complemented(f1), merged);
        if (instrument != nullptr) {
          instrument->int_ops(24);  // union + table expansion work
          instrument->branch(kCutArrayBase ^ 0xA, ok);
        }
        if (ok) mine.push(merged);
      }
    }
    mine.push(trivial(node));
    if (instrument != nullptr) {
      instrument->store(kCutArrayBase + (node % 512) * sizeof(CutSet));
    }
  }
  return sets;
}

}  // namespace edacloud::synth
