#pragma once
// K-feasible cut enumeration (k = 4) with truth-table computation — the
// front half of the technology mapper. Truth tables are 16-bit functions
// over up to four cut leaves; the leaf order is ascending AIG node id, and
// tables of smaller cuts are replicated across unused variables so a single
// 16-bit key identifies the function regardless of cut size.

#include <array>
#include <cstdint>
#include <vector>

#include "nl/aig.hpp"
#include "perf/instrument.hpp"

namespace edacloud::synth {

constexpr int kMaxCutLeaves = 4;

struct Cut {
  std::array<nl::AigNode, kMaxCutLeaves> leaves{};  // ascending node ids
  std::uint8_t size = 0;
  std::uint16_t table = 0;  // function over leaves (x0 = leaves[0], ...)

  [[nodiscard]] bool operator==(const Cut& other) const {
    if (size != other.size) return false;
    for (int i = 0; i < size; ++i) {
      if (leaves[i] != other.leaves[i]) return false;
    }
    return true;
  }
};

/// Bounded cut set per node.
struct CutSet {
  static constexpr int kCapacity = 8;
  std::array<Cut, kCapacity> cuts{};
  std::uint8_t count = 0;

  void push(const Cut& cut);
  [[nodiscard]] const Cut& operator[](int i) const { return cuts[i]; }
};

/// Variable masks: truth table of x_i over the 4-var space.
constexpr std::array<std::uint16_t, 4> kVarMask = {0xAAAA, 0xCCCC, 0xF0F0,
                                                   0xFF00};

/// Enumerate cuts for every node. instrument may be null.
std::vector<CutSet> enumerate_cuts(const nl::Aig& aig,
                                   perf::Instrument* instrument = nullptr);

/// Merge two fanin cuts into a cut of `node`; returns false if the leaf
/// union exceeds kMaxCutLeaves.
bool merge_cuts(const Cut& a, bool a_complemented, const Cut& b,
                bool b_complemented, Cut& out);

/// Truth table of `cut_table` re-expressed over a superset leaf list.
std::uint16_t expand_table(std::uint16_t table,
                           const std::array<nl::AigNode, kMaxCutLeaves>& from,
                           int from_size,
                           const std::array<nl::AigNode, kMaxCutLeaves>& to,
                           int to_size);

}  // namespace edacloud::synth
