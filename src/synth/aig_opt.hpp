#pragma once
// AIG optimization passes — the logic-optimization half of the synthesis
// job. All passes rebuild a fresh AIG (structural hashing deduplicates on
// the way), preserving the logic function of every output:
//   cleanup — drop nodes unreachable from the outputs
//   rewrite — one-level Boolean simplification (containment/resolution
//             rules on AND trees)
//   balance — depth-oriented rebalancing of single-fanout conjunctions
//
// Passes accept an optional Instrument: strash probes show up as hashed
// (cache-unfriendly) loads, rule applicability tests as data-dependent
// branches — the signature the paper attributes to synthesis in Fig. 2.

#include "nl/aig.hpp"
#include "perf/instrument.hpp"

namespace edacloud::synth {

nl::Aig cleanup(const nl::Aig& aig);

nl::Aig rewrite(const nl::Aig& aig, perf::Instrument* instrument = nullptr);

nl::Aig balance(const nl::Aig& aig, perf::Instrument* instrument = nullptr);

}  // namespace edacloud::synth
