#pragma once
// Synthesis recipes: named optimization scripts (pass sequences + mapper
// mode). Applying different recipes to one design yields netlists that are
// logically equivalent but structurally different — exactly how the paper
// built its 330-netlist corpus ("we synthesize each benchmark applying
// different logic optimizations").

#include <string>
#include <vector>

#include "synth/mapper.hpp"

namespace edacloud::synth {

struct SynthRecipe {
  std::string name;
  int rewrite_passes = 1;
  bool balance = true;
  MapMode mode = MapMode::kArea;
  bool fuse = true;  // inverter-fusion peephole after mapping
};

/// The recipe set used to multiply designs into corpus netlists.
std::vector<SynthRecipe> standard_recipes();

/// The default flow recipe (used by characterization and examples).
SynthRecipe default_recipe();

}  // namespace edacloud::synth
