#pragma once
// High-fanout buffering — the standard fix for nets whose load wrecks
// timing: split any net driving more than `max_fanout` sinks with a
// balanced tree of buffers. Pairs with gate sizing in the timing-closure
// loop (buffering reduces the load each driver sees; sizing strengthens
// the drivers that remain critical).

#include "nl/netlist.hpp"

namespace edacloud::synth {

struct BufferingOptions {
  std::uint32_t max_fanout = 8;  // sinks allowed per driver
  /// Cell used for the inserted buffers (defaults to the cheapest BUF).
  nl::CellId buffer_cell = nl::kInvalidCell;
};

struct BufferingResult {
  nl::Netlist netlist;
  int buffers_inserted = 0;
  std::uint32_t max_fanout_before = 0;
  std::uint32_t max_fanout_after = 0;
};

/// Rebuild the netlist with buffer trees on every over-loaded net.
/// Logic function is preserved (buffers are transparent).
BufferingResult buffer_high_fanout(const nl::Netlist& netlist,
                                   BufferingOptions options = {});

}  // namespace edacloud::synth
