#include "synth/engine.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"

namespace edacloud::synth {

using nl::Aig;
using perf::TaskGraph;
using perf::TaskId;

namespace {

/// Level-population histogram of an AIG (AND nodes only).
std::vector<double> level_histogram(const Aig& aig) {
  const auto levels = aig.levels();
  std::uint32_t depth = 0;
  for (nl::AigNode node = 0; node < aig.node_count(); ++node) {
    if (aig.is_and(node)) depth = std::max(depth, levels[node]);
  }
  std::vector<double> histogram(depth + 1, 0.0);
  for (nl::AigNode node = 0; node < aig.node_count(); ++node) {
    if (aig.is_and(node)) histogram[levels[node]] += 1.0;
  }
  return histogram;
}

/// Append one optimization/mapping pass to the task graph: a serial prefix
/// (shared hash table) followed by level-ordered parallel chunks with a
/// barrier between levels. Returns the pass's final barrier task.
TaskId add_levelized_pass(TaskGraph& graph, const std::vector<double>& levels,
                          double serial_fraction, double chunk_size,
                          TaskId prev_barrier, bool has_prev) {
  double total = 0.0;
  for (double count : levels) total += count;
  std::vector<TaskId> deps;
  if (has_prev) deps.push_back(prev_barrier);
  const TaskId serial =
      graph.add_task(total * serial_fraction, deps);
  TaskId barrier = serial;
  for (double count : levels) {
    if (count <= 0.0) continue;
    const double parallel_work = count * (1.0 - serial_fraction);
    const int chunks = std::max(
        1, static_cast<int>(std::ceil(count / chunk_size)));
    std::vector<TaskId> chunk_ids;
    chunk_ids.reserve(static_cast<std::size_t>(chunks));
    for (int c = 0; c < chunks; ++c) {
      chunk_ids.push_back(
          graph.add_task(parallel_work / chunks, {barrier}));
    }
    barrier = graph.add_task(0.0, chunk_ids);
  }
  return barrier;
}

}  // namespace

MapResult SynthesisEngine::synthesize(const Aig& input,
                                      const SynthRecipe& recipe) const {
  Aig current = cleanup(input);
  for (int pass = 0; pass < recipe.rewrite_passes; ++pass) {
    current = rewrite(current, nullptr);
  }
  if (recipe.balance) current = balance(current, nullptr);
  MapResult mapped = mapper_.map(current, recipe.mode, nullptr);
  if (recipe.fuse) {
    mapped.netlist = fuse_inverters(mapped.netlist);
    const auto stats = mapped.netlist.stats();
    mapped.cell_count = stats.instance_count;
    mapped.mapped_area_um2 = stats.total_area_um2;
  }
  return mapped;
}

SynthesisResult SynthesisEngine::run(
    const Aig& input, const SynthRecipe& recipe,
    const std::vector<perf::VmConfig>& configs) const {
  perf::Instrument instrument =
      configs.empty() ? perf::Instrument() : perf::Instrument(configs);
  TRACE_SPAN_VAR(run_span, "synth/run", "synth");

  Aig current = [&] {
    TRACE_SPAN("synth/cleanup", "synth");
    return cleanup(input);
  }();
  int pass_count = 1;  // cleanup
  {
    TRACE_SPAN_VAR(span, "synth/rewrite", "synth");
    span.counter("passes", recipe.rewrite_passes);
    for (int pass = 0; pass < recipe.rewrite_passes; ++pass) {
      current = rewrite(current, &instrument);
      ++pass_count;
    }
  }
  if (recipe.balance) {
    TRACE_SPAN("synth/balance", "synth");
    current = balance(current, &instrument);
    ++pass_count;
  }

  SynthesisResult result = [&] {
    TRACE_SPAN("synth/map", "synth");
    return SynthesisResult{mapper_.map(current, recipe.mode, &instrument),
                           current.and_count(), current.depth(),
                           perf::JobProfile{}};
  }();
  if (recipe.fuse) {
    TRACE_SPAN("synth/fuse", "synth");
    result.mapped.netlist = fuse_inverters(result.mapped.netlist);
    const auto stats = result.mapped.netlist.stats();
    result.mapped.cell_count = stats.instance_count;
    result.mapped.mapped_area_um2 = stats.total_area_um2;
  }
  run_span.counter("and_nodes", static_cast<double>(current.and_count()));
  run_span.counter("cells", static_cast<double>(result.mapped.cell_count));

  // ---- task graph: optimization passes + mapping DP -------------------------
  const auto histogram = level_histogram(current);
  TaskGraph tasks;
  TaskId barrier = 0;
  bool has_prev = false;
  for (int pass = 0; pass < pass_count; ++pass) {
    barrier = add_levelized_pass(tasks, histogram, serial_fraction_, 16.0,
                                 barrier, has_prev);
    has_prev = true;
  }
  // Mapping DP pass: level-dependent but hash-free (lower serial share).
  barrier = add_levelized_pass(tasks, histogram, 0.10, 16.0, barrier, true);

  result.profile.job = "synthesis";
  result.profile.configs = configs;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    result.profile.counts.push_back(instrument.counts(i));
  }
  result.profile.tasks = std::move(tasks);
  return result;
}

}  // namespace edacloud::synth
