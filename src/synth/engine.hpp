#pragma once
// The synthesis application: logic optimization + technology mapping of an
// AIG, instrumented against a ladder of VM configurations and decomposed
// into a task graph for the parallel-efficiency model. This is the
// "synthesis" job characterized in Fig. 2 and scheduled in Table I.

#include <vector>

#include "nl/aig.hpp"
#include "nl/cell_library.hpp"
#include "perf/runtime_model.hpp"
#include "synth/aig_opt.hpp"
#include "synth/mapper.hpp"
#include "synth/recipe.hpp"

namespace edacloud::synth {

struct SynthesisResult {
  MapResult mapped;          // final gate-level netlist + mapping stats
  std::size_t optimized_and_count = 0;
  std::uint32_t optimized_depth = 0;
  perf::JobProfile profile;  // counters + task graph
};

class SynthesisEngine {
 public:
  explicit SynthesisEngine(const nl::CellLibrary& library)
      : library_(&library), mapper_(library) {}

  /// Fraction of each optimization pass serialized on shared structures
  /// (structural-hash table); throttles the job's parallel speedup.
  void set_serial_fraction(double fraction) { serial_fraction_ = fraction; }

  [[nodiscard]] SynthesisResult run(
      const nl::Aig& input, const SynthRecipe& recipe,
      const std::vector<perf::VmConfig>& configs) const;

  /// Convenience: run without instrumentation (tests, corpus generation).
  [[nodiscard]] MapResult synthesize(const nl::Aig& input,
                                     const SynthRecipe& recipe) const;

 private:
  const nl::CellLibrary* library_;
  TechMapper mapper_;
  double serial_fraction_ = 0.42;
};

}  // namespace edacloud::synth
