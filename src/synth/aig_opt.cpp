#include "synth/aig_opt.hpp"

#include <algorithm>
#include <queue>
#include <vector>

namespace edacloud::synth {

using nl::Aig;
using nl::AigNode;
using nl::kLitFalse;
using nl::Literal;
using nl::literal_complemented;
using nl::literal_node;
using nl::literal_not;
using nl::make_literal;

namespace {

constexpr std::uint64_t kStrashBase = 0x20ULL << 23;
constexpr std::uint64_t kMapBase = 0x21ULL << 23;

std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xFF51AFD7ED558CCDULL;
  x ^= x >> 29;
  return x;
}

/// Literal-translation helper shared by the rebuild passes.
struct Rebuild {
  const Aig& source;
  Aig result;
  std::vector<Literal> map;  // old node -> new literal (positive phase)

  explicit Rebuild(const Aig& aig, const std::string& suffix)
      : source(aig), result(aig.name() + suffix) {
    map.assign(aig.node_count(), kLitFalse);
    map[0] = kLitFalse;
    for (AigNode input : aig.inputs()) {
      map[input] = result.add_input();
    }
  }

  [[nodiscard]] Literal translate(Literal old) const {
    const Literal base = map[literal_node(old)];
    return literal_complemented(old) ? literal_not(base) : base;
  }

  void finish_outputs() {
    for (Literal out : source.outputs()) {
      result.add_output(translate(out));
    }
  }
};

/// AND with one-level Boolean simplification. `aig` is the graph being
/// built, so fanin queries see already-simplified structure.
Literal smart_and(Aig& aig, Literal a, Literal b,
                  perf::Instrument* instrument, std::uint64_t strash_mask) {
  auto decompose = [&aig](Literal lit, Literal& x, Literal& y) {
    const AigNode node = literal_node(lit);
    if (!aig.is_and(node)) return false;
    x = aig.fanin0(node);
    y = aig.fanin1(node);
    return true;
  };
  auto note = [instrument](std::uint64_t site, bool outcome) {
    if (instrument != nullptr) instrument->branch(kStrashBase + site, outcome);
  };

  for (int side = 0; side < 2; ++side) {
    // Examine b's structure relative to a (then swap).
    Literal x, y;
    const bool decomposable = decompose(b, x, y);
    note(1, decomposable);
    if (decomposable) {
      if (!literal_complemented(b)) {
        // a & (x & y): containment / conflict.
        const bool absorbed = a == x || a == y;
        const bool conflict = a == literal_not(x) || a == literal_not(y);
        note(2, absorbed || conflict);
        if (absorbed) return b;
        if (conflict) return kLitFalse;
      } else {
        // a & !(x & y): resolution.
        const bool resolves = a == x || a == y;
        const bool dominated =
            a == literal_not(x) || a == literal_not(y);
        note(3, resolves || dominated);
        if (a == x) return aig.and_of(a, literal_not(y));
        if (a == y) return aig.and_of(a, literal_not(x));
        if (dominated) return a;
      }
    }
    std::swap(a, b);
  }
  if (instrument != nullptr) {
    // Strash probe: hashed table lookup. Probes exhibit strong temporal
    // locality (recently created nodes are re-probed most), modeled as a
    // hot 16 KiB region absorbing 3 of 4 probes.
    const std::uint64_t key = mix((static_cast<std::uint64_t>(a) << 32) | b);
    const std::uint64_t offset =
        (key & 7) != 0 ? (key & 0x3FFF) : (key & strash_mask);
    instrument->load(kStrashBase + offset);
    instrument->int_ops(10);
  }
  return aig.and_of(a, b);
}

}  // namespace

Aig cleanup(const Aig& aig) {
  Rebuild rebuild(aig, "");
  rebuild.result.set_name(aig.name());
  const auto alive = aig.live_nodes();
  for (AigNode node = 0; node < aig.node_count(); ++node) {
    if (!aig.is_and(node) || !alive[node]) continue;
    rebuild.map[node] = rebuild.result.and_of(
        rebuild.translate(aig.fanin0(node)),
        rebuild.translate(aig.fanin1(node)));
  }
  rebuild.finish_outputs();
  return std::move(rebuild.result);
}

Aig rewrite(const Aig& aig, perf::Instrument* instrument) {
  Rebuild rebuild(aig, "");
  rebuild.result.set_name(aig.name());
  const auto alive = aig.live_nodes();
  // Strash-table footprint scales with the design (~16 B per node entry).
  std::uint64_t strash_mask = 1;
  while (strash_mask < aig.node_count() * 16) strash_mask <<= 1;
  --strash_mask;
  for (AigNode node = 0; node < aig.node_count(); ++node) {
    if (!aig.is_and(node) || !alive[node]) continue;
    if (instrument != nullptr) {
      instrument->load(kMapBase + node * 8);
    }
    rebuild.map[node] =
        smart_and(rebuild.result, rebuild.translate(aig.fanin0(node)),
                  rebuild.translate(aig.fanin1(node)), instrument,
                  strash_mask);
  }
  rebuild.finish_outputs();
  return std::move(rebuild.result);
}

Aig balance(const Aig& aig, perf::Instrument* instrument) {
  Rebuild rebuild(aig, "");
  rebuild.result.set_name(aig.name());
  const auto alive = aig.live_nodes();
  const auto fanouts = aig.fanout_counts();

  // Level tracking for the graph under construction.
  std::vector<std::uint32_t> new_level(rebuild.result.node_count(), 0);
  auto level_of = [&new_level](Literal lit) {
    return new_level[literal_node(lit)];
  };
  auto make_and = [&](Literal a, Literal b) {
    const Literal lit = rebuild.result.and_of(a, b);
    while (new_level.size() < rebuild.result.node_count()) {
      new_level.push_back(std::max(level_of(a), level_of(b)) + 1);
    }
    return lit;
  };

  constexpr int kMaxLeaves = 16;

  for (AigNode node = 0; node < aig.node_count(); ++node) {
    if (!aig.is_and(node) || !alive[node]) continue;

    // Collect the conjunction leaves of the maximal single-fanout subtree.
    std::vector<Literal> leaves;
    std::vector<Literal> stack = {aig.fanin0(node), aig.fanin1(node)};
    while (!stack.empty()) {
      const Literal lit = stack.back();
      stack.pop_back();
      const AigNode child = literal_node(lit);
      const bool expandable = !literal_complemented(lit) &&
                              aig.is_and(child) && fanouts[child] == 1 &&
                              static_cast<int>(leaves.size() + stack.size()) <
                                  kMaxLeaves;
      if (instrument != nullptr) {
        instrument->branch(kMapBase ^ 0x2, expandable);
        instrument->load(kMapBase + child * 8);
      }
      if (expandable) {
        stack.push_back(aig.fanin0(child));
        stack.push_back(aig.fanin1(child));
      } else {
        leaves.push_back(rebuild.translate(lit));
      }
    }

    // Combine the two shallowest leaves first (depth-optimal for equal
    // weights — Huffman on levels).
    auto cmp = [&level_of](Literal a, Literal b) {
      return level_of(a) > level_of(b);
    };
    std::priority_queue<Literal, std::vector<Literal>, decltype(cmp)> heap(
        cmp, leaves);
    Literal combined = kLitFalse;
    if (heap.size() == 1) {
      combined = heap.top();
    } else {
      while (heap.size() > 1) {
        const Literal a = heap.top();
        heap.pop();
        const Literal b = heap.top();
        heap.pop();
        heap.push(make_and(a, b));
        if (instrument != nullptr) instrument->int_ops(6);
      }
      combined = heap.top();
    }
    rebuild.map[node] = combined;
  }
  rebuild.finish_outputs();
  return std::move(rebuild.result);
}

}  // namespace edacloud::synth
