#pragma once
// Cut-based technology mapper: matches 4-feasible cut functions against the
// cell library (exact 16-bit truth-table matching under pin permutation,
// optionally with a complemented output), selects a cover by area flow
// (area mode) or arrival time (delay mode), and emits a gate-level netlist.
// A structural AND/NOR/INV fallback guarantees every AIG maps regardless of
// matcher coverage; an inverter-fusion peephole recovers NAND/NOR/XNOR
// forms afterwards.

#include <array>
#include <cstdint>
#include <unordered_map>

#include "nl/aig.hpp"
#include "nl/cell_library.hpp"
#include "nl/netlist.hpp"
#include "perf/instrument.hpp"
#include "synth/cuts.hpp"

namespace edacloud::synth {

enum class MapMode : std::uint8_t { kArea, kDelay };

struct MapResult {
  nl::Netlist netlist;
  double mapped_area_um2 = 0.0;
  std::size_t cell_count = 0;
  std::size_t matched_cut_count = 0;   // nodes covered by pattern matches
  std::size_t fallback_count = 0;      // nodes covered structurally
};

class TechMapper {
 public:
  explicit TechMapper(const nl::CellLibrary& library);

  [[nodiscard]] MapResult map(const nl::Aig& aig, MapMode mode,
                              perf::Instrument* instrument = nullptr) const;

  /// Number of distinct truth tables the matcher can realize directly.
  [[nodiscard]] std::size_t matcher_size() const { return matcher_.size(); }

 private:
  struct Match {
    nl::CellId cell = nl::kInvalidCell;
    std::array<std::uint8_t, 3> pin_to_leaf{};  // cell pin -> cut leaf index
    std::uint8_t arity = 0;
    bool inv_output = false;
  };

  void build_matcher();
  void consider(std::uint16_t table, const Match& match, double area);

  const nl::CellLibrary* library_;
  std::unordered_map<std::uint16_t, Match> matcher_;
  nl::CellId inv_cell_ = nl::kInvalidCell;
  nl::CellId buf_cell_ = nl::kInvalidCell;
  nl::CellId and2_cell_ = nl::kInvalidCell;
  nl::CellId nor2_cell_ = nl::kInvalidCell;
};

/// Peephole: fuse single-fanout {AND2,OR2,XOR2}+INV pairs into
/// {NAND2,NOR2,XNOR2} (and the reverse direction), preserving function.
nl::Netlist fuse_inverters(const nl::Netlist& netlist);

}  // namespace edacloud::synth
