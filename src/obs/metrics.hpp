#pragma once
// Process-wide metrics registry: counters, gauges and histograms with
// labels, exported deterministically to JSON or CSV. This is the single
// machine-readable reporting path for the repo — perf::OpCounts snapshots,
// flow QoR numbers and sched::FleetMetrics all land here (see the
// absorb/export adapters in perf/ and sched/) instead of each subsystem
// inventing its own dump format.
//
// Identity: a metric is (name, sorted label set). Lookups intern the
// instrument on first use; repeated lookups return the same instrument, so
// hot paths can cache the reference. All exports iterate the instruments
// in lexicographic key order — same values always serialize to the same
// bytes, which the determinism tests rely on.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/histogram.hpp"

namespace edacloud::obs {

/// Label set, e.g. {{"stage","routing"},{"family","M"}}. Order-insensitive:
/// the registry sorts by key before interning.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double value) { value_ = value; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bin histogram instrument (bounded memory) plus exact count / sum /
/// min / max. Quantiles use util::Histogram's interpolated binned estimate
/// (NaN while empty — the exports serialize that as 0).
class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins)
      : bins_(lo, hi, bins) {}

  void observe(double value);
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double quantile(double q) const { return bins_.quantile(q); }

 private:
  util::Histogram bins_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class Registry {
 public:
  /// The process-wide registry the CLI/bench --metrics flags export.
  static Registry& global();

  /// Instruments are created on first lookup and live until clear().
  /// References stay valid across later lookups (stable addresses).
  Counter& counter(std::string_view name, const Labels& labels = {});
  Gauge& gauge(std::string_view name, const Labels& labels = {});
  /// Histogram range/bins are fixed by the FIRST lookup; later lookups with
  /// the same identity ignore them.
  HistogramMetric& histogram(std::string_view name, const Labels& labels = {},
                             double lo = 0.0, double hi = 1.0,
                             std::size_t bins = 64);

  /// Deterministic exports (instruments in lexicographic key order).
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_csv() const;
  bool write(const std::string& path) const;  // .csv => CSV, else JSON

  /// Convenience for tests / adapters.
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Counter* find_counter(std::string_view name,
                                            const Labels& labels = {}) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name,
                                        const Labels& labels = {}) const;

  void clear();

  /// Canonical identity string: name{k1=v1,k2=v2} with keys sorted.
  static std::string key(std::string_view name, const Labels& labels);

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    Labels labels;  // sorted
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  Entry& intern(Kind kind, std::string_view name, const Labels& labels,
                double lo, double hi, std::size_t bins);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
};

}  // namespace edacloud::obs
