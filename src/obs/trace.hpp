#pragma once
// Scoped span tracer emitting Chrome trace_event JSON (loadable in Perfetto
// or chrome://tracing). Engines mark phases with TRACE_SPAN("synth/rewrite");
// spans nest per thread via RAII and may carry numeric counter attachments
// that appear as `args` in the trace viewer.
//
// Two clock domains:
//   * kWall    — steady_clock microseconds since enable(); the default for
//                host-side engine runs.
//   * kVirtual — a manually-advanced simulated clock, driven by the sched
//                fleet simulator, so same-seed runs serialize to
//                byte-identical trace files (see docs/OBSERVABILITY.md).
//
// The tracer is process-global and disabled by default; a disabled tracer
// costs one relaxed atomic load per span.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace edacloud::obs {

enum class ClockMode : int { kWall = 0, kVirtual = 1 };

/// One numeric counter attachment; serialized into the event's `args`.
struct TraceArg {
  std::string key;
  double value = 0.0;
};

/// One completed span ("ph":"X") or counter sample ("ph":"C").
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';
  double ts_us = 0.0;   // start, microseconds in the active clock domain
  double dur_us = 0.0;  // span duration ("X" only)
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;  // nesting depth at emission (tests/debugging)
  std::vector<TraceArg> args;
};

class Tracer {
 public:
  /// The process-wide tracer the TRACE_SPAN macros write to.
  static Tracer& global();

  void enable(ClockMode mode = ClockMode::kWall);
  void disable();
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] ClockMode clock_mode() const { return mode_; }

  /// Current time in microseconds in the active clock domain.
  [[nodiscard]] double now_us() const;
  /// Advance the virtual clock (kVirtual mode; seconds of simulated time).
  void set_virtual_time_seconds(double seconds);

  /// Record a completed span with explicit timing — used by the fleet
  /// simulator, whose spans (task executions on VMs) start in the past.
  /// `tid` is a logical lane (e.g. the VM id), not a host thread.
  void emit_complete(std::string_view name, std::string_view category,
                     double ts_us, double dur_us, std::uint32_t tid,
                     std::vector<TraceArg> args = {});
  /// Record a counter sample (rendered as a stacked area track).
  void emit_counter(std::string_view name, double ts_us, double value);
  /// Bulk-append pre-built events under one lock. The sharded fleet
  /// simulator buffers per-pool events during the run and flushes the
  /// buffers in canonical pool order afterwards, so the recorded insertion
  /// order — to_json()'s final sort tie-break — never depends on shard or
  /// thread scheduling.
  void emit_batch(std::vector<TraceEvent> events);

  /// Lanes at or above this value belong to util::ThreadPool workers:
  /// lane = kPoolLaneBase + (pool slot - 1). Pool lanes are a pure function
  /// of the worker's slot, so traces stay stable across pool recreations
  /// and thread counts; external threads keep registration-order lanes
  /// below the base.
  static constexpr std::uint32_t kPoolLaneBase = 1000;

  /// Stable small integer id for the calling host thread. External threads
  /// get lanes in registration order (lane 0 is the first thread that
  /// traced anything); pool workers map to kPoolLaneBase + slot - 1.
  [[nodiscard]] std::uint32_t thread_lane();

  /// Events recorded so far (copy; for tests and programmatic inspection).
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;
  [[nodiscard]] std::size_t event_count() const;

  /// Serialize to Chrome trace_event JSON ({"traceEvents":[...]}). Events
  /// are sorted by (ts, tid, -dur, name) so same-clock runs are
  /// byte-identical regardless of destruction order.
  [[nodiscard]] std::string to_json() const;
  /// to_json() to a file; false (and a WARN log) on I/O failure.
  bool write_json(const std::string& path) const;

  /// Drop all recorded events (keeps enabled state and clock mode).
  void clear();

  // ---- ScopedSpan support --------------------------------------------------
  std::uint32_t push_depth();  // returns depth before increment
  void pop_depth();

 private:
  std::atomic<bool> enabled_{false};
  ClockMode mode_ = ClockMode::kWall;
  double wall_epoch_us_ = 0.0;     // steady_clock at enable()
  std::atomic<double> virtual_us_{0.0};

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::uint32_t next_lane_ = 0;
};

/// RAII span: records a "ph":"X" complete event over its lifetime on the
/// calling thread's lane. Construction/destruction are no-ops while the
/// global tracer is disabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name, std::string_view category = "");
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach a numeric counter to this span (shows up under `args`).
  void counter(std::string_view key, double value);

 private:
  bool active_ = false;
  double start_us_ = 0.0;
  std::uint32_t depth_ = 0;
  std::string name_;
  std::string category_;
  std::vector<TraceArg> args_;
};

}  // namespace edacloud::obs

// Span covering the enclosing scope. Usage: TRACE_SPAN("route/ripup");
#define EDACLOUD_TRACE_CONCAT_INNER(a, b) a##b
#define EDACLOUD_TRACE_CONCAT(a, b) EDACLOUD_TRACE_CONCAT_INNER(a, b)
#define TRACE_SPAN(...)                                    \
  ::edacloud::obs::ScopedSpan EDACLOUD_TRACE_CONCAT(      \
      edacloud_trace_span_, __LINE__)(__VA_ARGS__)
// Named variant when counters will be attached:
//   TRACE_SPAN_VAR(span, "synth/map"); ... span.counter("cells", n);
#define TRACE_SPAN_VAR(var, ...) ::edacloud::obs::ScopedSpan var(__VA_ARGS__)
