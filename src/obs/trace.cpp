#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace edacloud::obs {

namespace {

double steady_now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Per-thread tracer state. Lane ids are handed out by the tracer under its
// mutex on first use; depth is pure thread-local nesting.
thread_local std::uint32_t t_lane = 0;
thread_local bool t_lane_assigned = false;
thread_local std::uint32_t t_depth = 0;

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// Deterministic number formatting: integers print without a fraction,
/// everything else as %.9g. No locale dependence, so same-value events
/// always serialize to the same bytes.
void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "0";
    return;
  }
  char buf[40];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", value);
  }
  out += buf;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable(ClockMode mode) {
  std::lock_guard<std::mutex> lock(mutex_);
  mode_ = mode;
  wall_epoch_us_ = steady_now_us();
  virtual_us_.store(0.0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

double Tracer::now_us() const {
  if (mode_ == ClockMode::kVirtual) {
    return virtual_us_.load(std::memory_order_relaxed);
  }
  return steady_now_us() - wall_epoch_us_;
}

void Tracer::set_virtual_time_seconds(double seconds) {
  virtual_us_.store(seconds * 1e6, std::memory_order_relaxed);
}

void Tracer::emit_complete(std::string_view name, std::string_view category,
                           double ts_us, double dur_us, std::uint32_t tid,
                           std::vector<TraceArg> args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::string(name);
  event.category = std::string(category);
  event.phase = 'X';
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  event.tid = tid;
  event.depth = t_depth;
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::emit_counter(std::string_view name, double ts_us, double value) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::string(name);
  event.phase = 'C';
  event.ts_us = ts_us;
  event.tid = 0;
  event.args.push_back({"value", value});
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void Tracer::emit_batch(std::vector<TraceEvent> events) {
  if (!enabled() || events.empty()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  events_.reserve(events_.size() + events.size());
  for (TraceEvent& event : events) events_.push_back(std::move(event));
}

std::uint32_t Tracer::thread_lane() {
  // Pool workers get a deterministic lane derived from their slot instead
  // of a registration-order one: pools can be torn down and recreated at a
  // different width mid-process, and counter-based lanes would then pile
  // replacement workers onto fresh ids (or collide with external threads).
  const int slot = util::this_thread_pool_slot();
  if (slot > 0) return kPoolLaneBase + static_cast<std::uint32_t>(slot) - 1;
  if (!t_lane_assigned) {
    std::lock_guard<std::mutex> lock(mutex_);
    t_lane = next_lane_++;
    t_lane_assigned = true;
  }
  return t_lane;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

std::string Tracer::to_json() const {
  std::vector<TraceEvent> events = snapshot();
  // Parents end after their children under RAII, so destruction order is
  // child-first; sort so output order is a pure function of the recorded
  // timestamps (byte-identical for deterministic clocks).
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     if (a.dur_us != b.dur_us) return a.dur_us > b.dur_us;
                     return a.name < b.name;
                   });

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    append_escaped(out, event.name);
    out += "\",\"cat\":\"";
    append_escaped(out, event.category.empty() ? "edacloud"
                                               : event.category);
    out += "\",\"ph\":\"";
    out += event.phase;
    out += "\",\"pid\":1,\"tid\":";
    append_number(out, event.tid);
    out += ",\"ts\":";
    append_number(out, event.ts_us);
    if (event.phase == 'X') {
      out += ",\"dur\":";
      append_number(out, event.dur_us);
    }
    out += ",\"args\":{";
    for (std::size_t i = 0; i < event.args.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"";
      append_escaped(out, event.args[i].key);
      out += "\":";
      append_number(out, event.args[i].value);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

bool Tracer::write_json(const std::string& path) const {
  std::ofstream file(path);
  file << to_json();
  if (!file) {
    EDACLOUD_WARN << "tracer: cannot write " << path;
    return false;
  }
  return true;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

std::uint32_t Tracer::push_depth() { return t_depth++; }

void Tracer::pop_depth() {
  if (t_depth > 0) --t_depth;
}

ScopedSpan::ScopedSpan(std::string_view name, std::string_view category) {
  Tracer& tracer = Tracer::global();
  if (!tracer.enabled()) return;
  active_ = true;
  name_ = std::string(name);
  category_ = std::string(category);
  start_us_ = tracer.now_us();
  depth_ = tracer.push_depth();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  Tracer& tracer = Tracer::global();
  tracer.pop_depth();  // t_depth is back at this span's own depth
  if (!tracer.enabled()) return;  // disabled mid-span: drop, nesting repaired
  const double end_us = tracer.now_us();
  tracer.emit_complete(name_, category_, start_us_, end_us - start_us_,
                       tracer.thread_lane(), std::move(args_));
}

void ScopedSpan::counter(std::string_view key, double value) {
  if (!active_) return;
  args_.push_back({std::string(key), value});
}

}  // namespace edacloud::obs
