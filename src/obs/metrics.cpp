#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "util/log.hpp"

namespace edacloud::obs {

namespace {

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

/// Deterministic number formatting shared with the tracer: integral values
/// print without a fraction, everything else as %.9g.
void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "0";
    return;
  }
  char buf[40];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", value);
  }
  out += buf;
}

std::string labels_csv(const Labels& labels) {
  std::string out;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ";";
    out += labels[i].first + "=" + labels[i].second;
  }
  return out;
}

}  // namespace

void HistogramMetric::observe(double value) {
  if (std::isnan(value)) return;  // mirrors util::Histogram::add
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  bins_.add(value);
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

std::string Registry::key(std::string_view name, const Labels& labels) {
  std::string out(name);
  const Labels ordered = sorted(labels);
  out += "{";
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    if (i > 0) out += ",";
    out += ordered[i].first + "=" + ordered[i].second;
  }
  out += "}";
  return out;
}

Registry::Entry& Registry::intern(Kind kind, std::string_view name,
                                  const Labels& labels, double lo, double hi,
                                  std::size_t bins) {
  const std::string id = key(name, labels);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(id);
  if (it == entries_.end()) {
    Entry entry;
    entry.kind = kind;
    entry.name = std::string(name);
    entry.labels = sorted(labels);
    switch (kind) {
      case Kind::kCounter:
        entry.counter = std::make_unique<Counter>();
        break;
      case Kind::kGauge:
        entry.gauge = std::make_unique<Gauge>();
        break;
      case Kind::kHistogram:
        entry.histogram = std::make_unique<HistogramMetric>(lo, hi, bins);
        break;
    }
    it = entries_.emplace(id, std::move(entry)).first;
  } else if (it->second.kind != kind) {
    throw std::logic_error("metric '" + id +
                           "' already registered with a different type");
  }
  return it->second;
}

Counter& Registry::counter(std::string_view name, const Labels& labels) {
  return *intern(Kind::kCounter, name, labels, 0, 0, 0).counter;
}

Gauge& Registry::gauge(std::string_view name, const Labels& labels) {
  return *intern(Kind::kGauge, name, labels, 0, 0, 0).gauge;
}

HistogramMetric& Registry::histogram(std::string_view name,
                                     const Labels& labels, double lo,
                                     double hi, std::size_t bins) {
  return *intern(Kind::kHistogram, name, labels, lo, hi, bins).histogram;
}

std::size_t Registry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

const Counter* Registry::find_counter(std::string_view name,
                                      const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key(name, labels));
  return it == entries_.end() ? nullptr : it->second.counter.get();
}

const Gauge* Registry::find_gauge(std::string_view name,
                                  const Labels& labels) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key(name, labels));
  return it == entries_.end() ? nullptr : it->second.gauge.get();
}

std::string Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"metrics\":[";
  bool first = true;
  for (const auto& [id, entry] : entries_) {
    if (!first) out += ",";
    first = false;
    out += "\n{\"name\":\"";
    append_escaped(out, entry.name);
    out += "\",\"labels\":{";
    for (std::size_t i = 0; i < entry.labels.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"";
      append_escaped(out, entry.labels[i].first);
      out += "\":\"";
      append_escaped(out, entry.labels[i].second);
      out += "\"";
    }
    out += "},";
    switch (entry.kind) {
      case Kind::kCounter:
        out += "\"type\":\"counter\",\"value\":";
        append_number(out, static_cast<double>(entry.counter->value()));
        break;
      case Kind::kGauge:
        out += "\"type\":\"gauge\",\"value\":";
        append_number(out, entry.gauge->value());
        break;
      case Kind::kHistogram: {
        const HistogramMetric& h = *entry.histogram;
        out += "\"type\":\"histogram\",\"count\":";
        append_number(out, static_cast<double>(h.count()));
        out += ",\"sum\":";
        append_number(out, h.sum());
        out += ",\"min\":";
        append_number(out, h.min());
        out += ",\"max\":";
        append_number(out, h.max());
        out += ",\"p50\":";
        append_number(out, h.quantile(0.50));
        out += ",\"p95\":";
        append_number(out, h.quantile(0.95));
        out += ",\"p99\":";
        append_number(out, h.quantile(0.99));
        break;
      }
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

std::string Registry::to_csv() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out =
      "name,labels,type,value,count,sum,min,max,p50,p95,p99\n";
  for (const auto& [id, entry] : entries_) {
    std::string row;
    append_escaped(row, entry.name);
    row += ",\"" + labels_csv(entry.labels) + "\",";
    switch (entry.kind) {
      case Kind::kCounter:
        row += "counter,";
        append_number(row, static_cast<double>(entry.counter->value()));
        row += ",,,,,,,";
        break;
      case Kind::kGauge:
        row += "gauge,";
        append_number(row, entry.gauge->value());
        row += ",,,,,,,";
        break;
      case Kind::kHistogram: {
        const HistogramMetric& h = *entry.histogram;
        row += "histogram,,";
        append_number(row, static_cast<double>(h.count()));
        row += ",";
        append_number(row, h.sum());
        row += ",";
        append_number(row, h.min());
        row += ",";
        append_number(row, h.max());
        row += ",";
        append_number(row, h.quantile(0.50));
        row += ",";
        append_number(row, h.quantile(0.95));
        row += ",";
        append_number(row, h.quantile(0.99));
        break;
      }
    }
    out += row + "\n";
  }
  return out;
}

bool Registry::write(const std::string& path) const {
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  std::ofstream file(path);
  file << (csv ? to_csv() : to_json());
  if (!file) {
    EDACLOUD_WARN << "metrics: cannot write " << path;
    return false;
  }
  return true;
}

void Registry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

}  // namespace edacloud::obs
