#include "sta/sizing.hpp"

#include <algorithm>
#include <vector>

namespace edacloud::sta {

namespace {

/// The next drive strength up for `cell`, or kInvalidCell if already max.
nl::CellId next_drive(const nl::CellLibrary& library, nl::CellId cell) {
  const auto& current = library.cell(cell);
  const auto candidates = library.cells_with_function(current.function);
  // candidates are area-ascending: pick the first strictly larger drive
  // (lower drive resistance) than the current cell.
  for (nl::CellId candidate : candidates) {
    if (library.cell(candidate).drive_res_kohm <
        current.drive_res_kohm - 1e-12) {
      // Among stronger cells, choose the weakest upgrade (area discipline):
      // candidates are sorted by area, so scan for the smallest stronger.
      nl::CellId best = candidate;
      for (nl::CellId other : candidates) {
        const auto& cell_other = library.cell(other);
        if (cell_other.drive_res_kohm < current.drive_res_kohm - 1e-12 &&
            cell_other.area_um2 < library.cell(best).area_um2) {
          best = other;
        }
      }
      return best;
    }
  }
  return nl::kInvalidCell;
}

/// Rebuild the netlist with per-node cell substitutions.
nl::Netlist rebuild(const nl::Netlist& input,
                    const std::vector<nl::CellId>& cell_of) {
  nl::Netlist output(input.name(), &input.library());
  std::vector<nl::NodeId> remap(input.node_count(), nl::kInvalidNode);
  for (nl::NodeId id : input.inputs()) remap[id] = output.add_input();
  for (nl::NodeId id : input.topological_order()) {
    const auto& node = input.node(id);
    if (node.kind != nl::NodeKind::kCell) continue;
    std::vector<nl::NodeId> fanins;
    for (nl::NodeId fanin : node.fanins) fanins.push_back(remap[fanin]);
    remap[id] = output.add_cell(cell_of[id], std::move(fanins));
  }
  for (nl::NodeId id : input.outputs()) {
    output.add_output(remap[input.node(id).fanins[0]]);
  }
  return output;
}

}  // namespace

SizingResult size_gates(const nl::Netlist& netlist,
                        const place::Placement* placement,
                        const StaEngine& engine, SizingOptions options) {
  SizingResult result;
  const auto& library = netlist.library();

  // Work on a canonical copy; every pass re-derives the substitution map
  // from the *current* netlist, so rebuild renumbering is harmless.
  std::vector<nl::CellId> identity(netlist.node_count(), nl::kInvalidCell);
  for (nl::NodeId id = 0; id < netlist.node_count(); ++id) {
    if (netlist.is_cell(id)) identity[id] = netlist.node(id).cell;
  }
  nl::Netlist current = rebuild(netlist, identity);
  TimingReport report = engine.run(current, placement, {});
  result.slack_before_ps = report.worst_slack_ps;
  result.area_before_um2 = netlist.stats().total_area_um2;

  for (int pass = 0; pass < options.max_passes; ++pass) {
    if (report.worst_slack_ps >= options.target_slack_ps) break;
    ++result.passes;

    // Substitution map over the current numbering.
    std::vector<nl::CellId> cell_of(current.node_count(), nl::kInvalidCell);
    for (nl::NodeId id = 0; id < current.node_count(); ++id) {
      if (current.is_cell(id)) cell_of[id] = current.node(id).cell;
    }

    // Rank violating cells, most negative slack first.
    std::vector<nl::NodeId> violators;
    for (nl::NodeId id = 0; id < current.node_count(); ++id) {
      if (!current.is_cell(id)) continue;
      if (report.slack_ps[id] < options.target_slack_ps) {
        violators.push_back(id);
      }
    }
    std::sort(violators.begin(), violators.end(),
              [&report](nl::NodeId a, nl::NodeId b) {
                return report.slack_ps[a] < report.slack_ps[b];
              });
    const std::size_t budget = std::max<std::size_t>(
        1, static_cast<std::size_t>(options.per_pass_fraction *
                                    static_cast<double>(violators.size())));

    int upsized_this_pass = 0;
    for (std::size_t i = 0; i < violators.size() &&
                            static_cast<std::size_t>(upsized_this_pass) <
                                budget;
         ++i) {
      const nl::NodeId id = violators[i];
      const nl::CellId upgrade = next_drive(library, cell_of[id]);
      if (upgrade == nl::kInvalidCell) continue;
      cell_of[id] = upgrade;
      ++upsized_this_pass;
    }
    if (upsized_this_pass == 0) break;  // nothing left to upsize

    result.upsized_cells += upsized_this_pass;
    current = rebuild(current, cell_of);
    report = engine.run(current, placement, {});
  }

  result.slack_after_ps = report.worst_slack_ps;
  result.area_after_um2 = current.stats().total_area_um2;
  result.met = report.worst_slack_ps >= options.target_slack_ps;
  result.netlist = std::move(current);
  return result;
}

}  // namespace edacloud::sta
