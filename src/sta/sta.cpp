#include "sta/sta.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/trace.hpp"
#include "perf/event_log.hpp"
#include "perf/instrument.hpp"
#include "util/thread_pool.hpp"

namespace edacloud::sta {

using nl::Netlist;
using nl::NodeId;
using perf::Instrument;
using perf::TaskGraph;
using perf::TaskId;

namespace {

constexpr std::uint64_t kArrivalBase = 0x60ULL << 23;
constexpr std::uint64_t kLibraryBase = 0x61ULL << 23;
constexpr std::uint64_t kTopoBase = 0x62ULL << 23;

double manhattan(const place::Placement& placement, NodeId a, NodeId b) {
  return std::abs(placement.x[a] - placement.x[b]) +
         std::abs(placement.y[a] - placement.y[b]);
}

}  // namespace

TimingReport StaEngine::run(const Netlist& netlist,
                            const place::Placement* placement,
                            const std::vector<perf::VmConfig>& configs) const {
  Instrument instrument_storage;
  Instrument* ins = nullptr;
  if (!configs.empty()) {
    instrument_storage = Instrument(configs);
    ins = &instrument_storage;
  }

  TRACE_SPAN_VAR(run_span, "sta/run", "sta");
  const auto& library = netlist.library();
  const std::size_t n = netlist.node_count();
  run_span.counter("nodes", static_cast<double>(n));
  const auto fanout = netlist.build_fanout_csr();

  // Levelization drives both the parallel sweeps and the task graph: all of
  // a node's fanins sit on strictly lower levels (and all fanouts strictly
  // higher), so one level is a safe parallel front.
  const auto levels = netlist.levels();
  std::uint32_t depth = 0;
  for (std::uint32_t level : levels) depth = std::max(depth, level);
  std::vector<std::vector<NodeId>> level_nodes(depth + 1);
  for (NodeId id = 0; id < n; ++id) level_nodes[levels[id]].push_back(id);

  const int threads =
      options_.threads > 0 ? options_.threads : util::global_thread_count();
  run_span.counter("threads", static_cast<double>(threads));
  // Fixed grain: chunk boundaries (and so event replay order) must be a
  // function of the level population only, never the thread count.
  constexpr std::size_t kLevelGrain = 64;

  TimingReport report;
  report.arrival_ps.assign(n, 0.0);
  report.slack_ps.assign(n, 0.0);
  report.slew_ps.assign(n, 0.0);

  // Wire length estimate driver->sink.
  auto wire_um = [&](NodeId driver, NodeId sink) {
    if (placement != nullptr && placement->valid_for(netlist)) {
      return manhattan(*placement, driver, sink);
    }
    return options_.default_wire_um_per_fanout *
           static_cast<double>(fanout.degree(driver));
  };

  // Output load of a driver: sink pin caps + wire capacitance.
  auto load_ff = [&](NodeId driver, perf::EventLog* log) {
    double load = 0.0;
    const auto [begin, end] = fanout.range(driver);
    for (std::uint32_t e = begin; e < end; ++e) {
      const NodeId sink = fanout.targets[e];
      const auto& node = netlist.node(sink);
      if (node.kind == nl::NodeKind::kCell) {
        load += library.cell(node.cell).input_cap_ff;
      }
      load += wire_um(driver, sink) * library.wire_cap_per_um();
      if (log != nullptr) {
        log->load(kArrivalBase + static_cast<std::uint64_t>(sink) * 8);
        log->fp_ops(3);
      }
    }
    return load;
  };

  // Elmore-lite wire delay along one driver->sink connection.
  auto wire_delay_ps = [&](NodeId driver, NodeId sink, perf::EventLog* log) {
    const double length = wire_um(driver, sink);
    const double r = library.wire_res_per_um() * length;
    const double c = library.wire_cap_per_um() * length;
    double sink_cap = 0.0;
    const auto& node = netlist.node(sink);
    if (node.kind == nl::NodeKind::kCell) {
      sink_cap = library.cell(node.cell).input_cap_ff;
    }
    if (log != nullptr) log->avx_ops(4);
    return r * (c * 0.5 + sink_cap);
  };

  // ---- forward sweep: arrival times -----------------------------------------
  // Levels ascend; within a level every node writes only its own arrival /
  // slew / worst-parent / gate-delay entries and reads only lower levels,
  // so the level fans out across the pool race-free. Chunk event logs are
  // replayed in chunk order after each level.
  report.worst_parent.assign(n, nl::kInvalidNode);
  std::vector<nl::NodeId>& critical_parent = report.worst_parent;
  std::vector<double> gate_delay(n, 0.0);
  {
  TRACE_SPAN("sta/arrival", "sta");
  for (const auto& bucket : level_nodes) {
    if (bucket.empty()) continue;
    std::vector<perf::EventLog> logs(
        ins != nullptr
            ? util::ThreadPool::chunk_count(0, bucket.size(), kLevelGrain)
            : 0);
    util::parallel_for(
        threads, 0, bucket.size(), kLevelGrain,
        [&](std::size_t chunk_begin, std::size_t chunk_end, std::size_t chunk,
            unsigned) {
          perf::EventLog* log = ins != nullptr ? &logs[chunk] : nullptr;
          for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
            const NodeId id = bucket[i];
            const auto& node = netlist.node(id);
            if (log != nullptr) {
              log->load(kTopoBase + static_cast<std::uint64_t>(id) * 4);
            }
            if (node.kind == nl::NodeKind::kPrimaryInput) continue;
            double worst_input = 0.0;
            for (NodeId fanin : node.fanins) {
              const double at =
                  report.arrival_ps[fanin] + wire_delay_ps(fanin, id, log);
              const bool is_worst = at > worst_input;
              if (log != nullptr) {
                // Fanin arrivals were produced a few levels earlier:
                // mostly hot.
                const std::uint64_t addr =
                    ((id ^ fanin) & 7) != 0
                        ? kArrivalBase + (fanin % 2048) * 8ULL
                        : kArrivalBase + static_cast<std::uint64_t>(fanin) * 8;
                log->load(addr);
                // The max() compare compiles branchless (maxsd); only the
                // fanin loop contributes (well-predicted) control flow.
                log->branch(kArrivalBase ^ 0x1, true);
                log->fp_ops(2);
              }
              if (is_worst) {
                worst_input = at;
                critical_parent[id] = fanin;
              }
            }
            double own_delay = 0.0;
            if (node.kind == nl::NodeKind::kCell) {
              const auto& cell = library.cell(node.cell);
              const double load = load_ff(id, log);
              // Two-parameter NLDM-lite: base delay degraded by the worst
              // input transition, output slew proportional to drive
              // strength x load.
              double worst_slew = 0.0;
              for (nl::NodeId fanin : node.fanins) {
                worst_slew = std::max(worst_slew, report.slew_ps[fanin]);
              }
              own_delay =
                  cell.delay_ps(load) + options_.slew_delay_factor * worst_slew;
              report.slew_ps[id] =
                  options_.slew_gain * cell.drive_res_kohm * load + 2.0;
              if (log != nullptr) {
                // Library row fetch + interpolation (vectorized table math).
                log->load(kLibraryBase +
                          static_cast<std::uint64_t>(node.cell) * 64);
                log->avx_ops(6);
                log->fp_ops(2);
              }
            } else if (node.kind == nl::NodeKind::kPrimaryOutput) {
              report.slew_ps[id] = report.slew_ps[node.fanins[0]];
            }
            gate_delay[id] = own_delay;
            report.arrival_ps[id] = worst_input + own_delay;
            if (log != nullptr) {
              log->store(kArrivalBase + static_cast<std::uint64_t>(id) * 8);
            }
          }
        });
    if (ins != nullptr) {
      for (const perf::EventLog& log : logs) ins->replay(log);
    }
  }
  }  // sta/arrival

  // Critical path + clock period.
  for (NodeId id : netlist.outputs()) {
    report.critical_path_ps =
        std::max(report.critical_path_ps, report.arrival_ps[id]);
  }
  report.clock_period_ps =
      options_.clock_period_ps > 0.0
          ? options_.clock_period_ps
          : report.critical_path_ps * options_.slack_margin;

  // ---- backward sweep: required times / slacks --------------------------------
  // Phrased as a gather so it parallelizes: every fanout of `id` sits on a
  // strictly higher level, finalized by an earlier (descending) pass, so
  // required[id] = min over fanouts is exact and order-independent — the
  // parallel sweep matches the classic reverse-topological scatter.
  std::vector<double> required(n, std::numeric_limits<double>::infinity());
  {
  TRACE_SPAN("sta/required", "sta");
  for (NodeId id : netlist.outputs()) required[id] = report.clock_period_ps;
  for (std::size_t l = level_nodes.size(); l-- > 0;) {
    const auto& bucket = level_nodes[l];
    if (bucket.empty()) continue;
    std::vector<perf::EventLog> logs(
        ins != nullptr
            ? util::ThreadPool::chunk_count(0, bucket.size(), kLevelGrain)
            : 0);
    util::parallel_for(
        threads, 0, bucket.size(), kLevelGrain,
        [&](std::size_t chunk_begin, std::size_t chunk_end, std::size_t chunk,
            unsigned) {
          perf::EventLog* log = ins != nullptr ? &logs[chunk] : nullptr;
          for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
            const NodeId id = bucket[i];
            const auto [fo_begin, fo_end] = fanout.range(id);
            double req = required[id];  // clock at POs, +inf elsewhere
            for (std::uint32_t e = fo_begin; e < fo_end; ++e) {
              const NodeId consumer = fanout.targets[e];
              // Propagate the consumer's required time back through its
              // gate delay and the connecting wire.
              const double candidate = required[consumer] -
                                       gate_delay[consumer] -
                                       wire_delay_ps(id, consumer, log);
              if (log != nullptr) {
                const std::uint64_t addr =
                    ((consumer ^ id) & 7) != 0
                        ? kArrivalBase + (id % 2048) * 8ULL
                        : kArrivalBase + static_cast<std::uint64_t>(id) * 8;
                log->load(addr);
                log->branch(kArrivalBase ^ 0x2,
                            true);  // loop control (min is cmov)
                log->avx_ops(3);
              }
              req = std::min(req, candidate);
            }
            required[id] = req;
          }
        });
    if (ins != nullptr) {
      for (const perf::EventLog& log : logs) ins->replay(log);
    }
  }
  for (NodeId id = 0; id < n; ++id) {
    report.slack_ps[id] =
        std::isinf(required[id]) ? report.clock_period_ps
                                 : required[id] - report.arrival_ps[id];
  }
  }  // sta/required

  // ---- power report ------------------------------------------------------
  // Leakage: straight library sum. Dynamic: alpha * C * V^2 * f with the
  // clock derived above (fF * V^2 * GHz = uW).
  {
  TRACE_SPAN("sta/power", "sta");
  const double frequency_ghz =
      report.clock_period_ps > 0.0 ? 1000.0 / report.clock_period_ps : 0.0;
  // Chunk partials folded in chunk order: the power sums are bit-identical
  // at any thread count (for the fixed grain).
  constexpr std::size_t kPowerGrain = 256;
  const std::size_t power_chunks =
      util::ThreadPool::chunk_count(0, n, kPowerGrain);
  std::vector<perf::EventLog> logs(ins != nullptr ? power_chunks : 0);
  std::vector<double> leakage_partial(power_chunks, 0.0);
  std::vector<double> dynamic_partial(power_chunks, 0.0);
  util::parallel_for(
      threads, 0, n, kPowerGrain,
      [&](std::size_t chunk_begin, std::size_t chunk_end, std::size_t chunk,
          unsigned) {
        perf::EventLog* log = ins != nullptr ? &logs[chunk] : nullptr;
        double leakage = 0.0;
        double dynamic = 0.0;
        for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
          const NodeId id = static_cast<NodeId>(i);
          const auto& node = netlist.node(id);
          if (node.kind != nl::NodeKind::kCell) continue;
          leakage += library.cell(node.cell).leakage_nw;
          dynamic += options_.activity_factor * load_ff(id, log) *
                     options_.supply_voltage * options_.supply_voltage *
                     frequency_ghz * 1e-3;
        }
        leakage_partial[chunk] = leakage;
        dynamic_partial[chunk] = dynamic;
      });
  for (std::size_t c = 0; c < power_chunks; ++c) {
    if (ins != nullptr) ins->replay(logs[c]);
    report.leakage_power_nw += leakage_partial[c];
    report.dynamic_power_uw += dynamic_partial[c];
  }
  }  // sta/power

  report.endpoint_count = netlist.outputs().size();
  report.worst_slack_ps = std::numeric_limits<double>::infinity();
  for (NodeId id : netlist.outputs()) {
    report.worst_slack_ps = std::min(report.worst_slack_ps, report.slack_ps[id]);
    if (report.slack_ps[id] < 0.0) ++report.violating_endpoints;
  }
  if (netlist.outputs().empty()) report.worst_slack_ps = 0.0;

  // Trace the critical path from the worst endpoint back to a PI.
  NodeId worst_endpoint = nl::kInvalidNode;
  double worst_at = -1.0;
  for (NodeId id : netlist.outputs()) {
    if (report.arrival_ps[id] > worst_at) {
      worst_at = report.arrival_ps[id];
      worst_endpoint = id;
    }
  }
  for (NodeId cursor = worst_endpoint; cursor != nl::kInvalidNode;
       cursor = critical_parent[cursor]) {
    report.critical_path.push_back(cursor);
    if (netlist.node(cursor).kind == nl::NodeKind::kPrimaryInput) break;
    if (critical_parent[cursor] == nl::kInvalidNode &&
        !netlist.node(cursor).fanins.empty()) {
      report.critical_path.push_back(netlist.node(cursor).fanins[0]);
      break;
    }
  }
  std::reverse(report.critical_path.begin(), report.critical_path.end());

  // ---- task graph: two levelized sweeps ---------------------------------------
  std::vector<double> histogram(depth + 1, 0.0);
  for (std::size_t l = 0; l < level_nodes.size(); ++l) {
    histogram[l] = static_cast<double>(level_nodes[l].size());
  }

  TaskGraph tasks;
  bool has_prev = false;
  TaskId prev = 0;
  constexpr double kChunk = 32.0;
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (std::size_t l = 0; l < histogram.size(); ++l) {
      const double count =
          sweep == 0 ? histogram[l] : histogram[histogram.size() - 1 - l];
      if (count <= 0.0) continue;
      const int chunks =
          std::max(1, static_cast<int>(std::ceil(count / kChunk)));
      std::vector<TaskId> chunk_ids;
      for (int c = 0; c < chunks; ++c) {
        std::vector<TaskId> deps;
        if (has_prev) deps.push_back(prev);
        chunk_ids.push_back(tasks.add_task(count / chunks, deps));
      }
      prev = tasks.add_task(0.0, chunk_ids);
      has_prev = true;
    }
  }

  report.profile.job = "sta";
  report.profile.configs = configs;
  if (ins != nullptr) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      report.profile.counts.push_back(ins->counts(i));
    }
  }
  report.profile.tasks = std::move(tasks);
  return report;
}

std::vector<TimingPath> worst_paths(const TimingReport& report,
                                    const nl::Netlist& netlist, int k) {
  // Rank endpoints by arrival, trace each back through worst_parent.
  std::vector<nl::NodeId> endpoints = netlist.outputs();
  std::sort(endpoints.begin(), endpoints.end(),
            [&report](nl::NodeId a, nl::NodeId b) {
              return report.arrival_ps[a] > report.arrival_ps[b];
            });
  if (k >= 0 && endpoints.size() > static_cast<std::size_t>(k)) {
    endpoints.resize(static_cast<std::size_t>(k));
  }
  std::vector<TimingPath> paths;
  for (nl::NodeId endpoint : endpoints) {
    TimingPath path;
    path.arrival_ps = report.arrival_ps[endpoint];
    path.slack_ps = report.slack_ps[endpoint];
    nl::NodeId cursor = endpoint;
    while (cursor != nl::kInvalidNode) {
      path.nodes.push_back(cursor);
      const auto& node = netlist.node(cursor);
      if (node.kind == nl::NodeKind::kPrimaryInput) break;
      nl::NodeId next = report.worst_parent[cursor];
      if (next == nl::kInvalidNode && !node.fanins.empty()) {
        next = node.fanins[0];
      }
      if (next == cursor) break;  // defensive
      cursor = next;
    }
    std::reverse(path.nodes.begin(), path.nodes.end());
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace edacloud::sta
