#pragma once
// Static timing analysis — the fourth characterized application. Performs
// a levelized forward arrival-time sweep and backward required-time sweep
// over the gate-level netlist, with NLDM-style cell delays (intrinsic +
// drive resistance x load) and Elmore-lite wire delays derived from placed
// positions. The per-pin delay arithmetic walks floating-point data out of
// the technology library — the FP/AVX signature the paper attributes to
// STA — while parallelism is bounded by the level structure (Fig. 2d).
//
// With StaOptions::threads > 1 both sweeps actually run in parallel on the
// shared util::ThreadPool, one level fanned out at a time: the forward
// sweep writes only arrival/slew/worst-parent of the level's own nodes, and
// the backward sweep is phrased as a gather (required[u] = min over fanouts,
// all of strictly higher level) so no two nodes race. Per-chunk
// perf::EventLogs replayed in chunk order keep instrumentation totals — and
// all timing numbers — bit-identical at any thread count.

#include <cstdint>
#include <vector>

#include "nl/netlist.hpp"
#include "perf/runtime_model.hpp"
#include "place/placer.hpp"

namespace edacloud::sta {

struct StaOptions {
  /// Clock period; <= 0 derives period = slack_margin x critical path.
  double clock_period_ps = 0.0;
  double slack_margin = 1.05;
  /// Wirelength model when no placement is supplied (fanout-based).
  double default_wire_um_per_fanout = 8.0;
  /// Slew model: output slew = slew_gain x drive_res x load; the input
  /// slew degrades delay by slew_delay_factor x slew.
  double slew_gain = 2.0;
  double slew_delay_factor = 0.08;
  /// Toggle probability per node per cycle, for the dynamic-power report.
  double activity_factor = 0.1;
  double supply_voltage = 0.8;  // volts
  /// Worker threads for the levelized sweeps (0 = the global default from
  /// util::global_thread_count(); 1 = serial). Bit-identical at any value.
  int threads = 0;
};

struct TimingReport {
  double critical_path_ps = 0.0;
  double clock_period_ps = 0.0;
  double worst_slack_ps = 0.0;
  std::size_t endpoint_count = 0;
  std::size_t violating_endpoints = 0;
  std::vector<double> arrival_ps;   // per netlist node
  std::vector<double> slack_ps;     // per netlist node
  std::vector<double> slew_ps;      // output transition per node
  std::vector<nl::NodeId> critical_path;  // PI -> PO chain
  std::vector<nl::NodeId> worst_parent;    // per node: worst-arrival fanin
  // Power report (see StaOptions::activity_factor).
  double leakage_power_nw = 0.0;
  double dynamic_power_uw = 0.0;
  perf::JobProfile profile;
};

/// One ranked timing path (endpoint backwards to a primary input).
struct TimingPath {
  double arrival_ps = 0.0;
  double slack_ps = 0.0;
  std::vector<nl::NodeId> nodes;  // PI ... PO
};

/// The k worst endpoint paths (one path per endpoint, ranked by arrival).
std::vector<TimingPath> worst_paths(const TimingReport& report,
                                    const nl::Netlist& netlist, int k);

class StaEngine {
 public:
  explicit StaEngine(StaOptions options = {}) : options_(options) {}

  /// Timing with placement-derived wire delays (placement may be null).
  [[nodiscard]] TimingReport run(
      const nl::Netlist& netlist, const place::Placement* placement,
      const std::vector<perf::VmConfig>& configs) const;

  [[nodiscard]] const StaOptions& options() const { return options_; }

 private:
  StaOptions options_;
};

}  // namespace edacloud::sta
