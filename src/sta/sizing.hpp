#pragma once
// Gate sizing — the classic post-placement timing fix and the reason the
// library carries X1/X2/X4 drive strengths. Upsizes cells on violating
// paths (bigger drive = lower delay slope into the same load) until the
// slack target holds or no upgrade helps, trading area for speed.

#include "nl/netlist.hpp"
#include "place/placer.hpp"
#include "sta/sta.hpp"

namespace edacloud::sta {

struct SizingOptions {
  double target_slack_ps = 0.0;  // stop once worst slack >= target
  int max_passes = 4;            // full STA iterations
  /// Upsize at most this fraction of cells per pass (most-critical first).
  double per_pass_fraction = 0.10;
};

struct SizingResult {
  nl::Netlist netlist;        // resized design
  int upsized_cells = 0;
  int passes = 0;
  double slack_before_ps = 0.0;
  double slack_after_ps = 0.0;
  double area_before_um2 = 0.0;
  double area_after_um2 = 0.0;
  bool met = false;           // slack target reached
};

/// Iteratively upsize cells on violating paths. `placement` may be null
/// (fanout-based wire delays are used, as in StaEngine::run).
SizingResult size_gates(const nl::Netlist& netlist,
                        const place::Placement* placement,
                        const StaEngine& engine,
                        SizingOptions options = {});

}  // namespace edacloud::sta
