#include "tune/recipe_space.hpp"

#include <algorithm>
#include <set>

#include "util/rng.hpp"

namespace edacloud::tune {

std::string recipe_key(const synth::SynthRecipe& recipe) {
  std::string key = "rw" + std::to_string(recipe.rewrite_passes);
  key += recipe.balance ? "-bal" : "-nobal";
  key += recipe.mode == synth::MapMode::kArea ? "-area" : "-delay";
  key += recipe.fuse ? "-fuse" : "-nofuse";
  return key;
}

std::uint64_t recipe_key_hash(const synth::SynthRecipe& recipe) {
  const std::string key = recipe_key(recipe);
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  for (const char c : key) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::vector<synth::SynthRecipe> enumerate_recipes(const RecipeSpace& space) {
  std::vector<synth::SynthRecipe> recipes;
  std::set<std::string> seen;
  const auto emit = [&](int rewrite, bool balance, synth::MapMode mode,
                        bool fuse) {
    synth::SynthRecipe recipe;
    recipe.rewrite_passes = rewrite;
    recipe.balance = balance;
    recipe.mode = mode;
    recipe.fuse = fuse;
    recipe.name = recipe_key(recipe);
    if (!seen.insert(recipe.name).second) return false;
    recipes.push_back(std::move(recipe));
    return true;
  };

  const int grid_max = std::max(0, space.grid_max_rewrite);
  for (int rewrite = 0; rewrite <= grid_max; ++rewrite) {
    for (const bool balance : {false, true}) {
      for (const synth::MapMode mode :
           {synth::MapMode::kArea, synth::MapMode::kDelay}) {
        for (const bool fuse : {false, true}) {
          emit(rewrite, balance, mode, fuse);
        }
      }
    }
  }

  // Seeded extension draws. The attempt budget bounds generation when the
  // requested sample count exceeds what the (finite) space still holds;
  // the draw sequence is a pure function of the seed either way.
  const int sample_max = std::max(grid_max, space.sample_max_rewrite);
  util::Rng rng(space.seed);
  std::size_t accepted = 0;
  std::size_t attempts = 0;
  const std::size_t max_attempts = space.random_samples * 32 + 64;
  while (accepted < space.random_samples && attempts < max_attempts) {
    ++attempts;
    const int rewrite =
        static_cast<int>(rng.next_int(0, sample_max));
    const bool balance = rng.next_bool(0.5);
    const synth::MapMode mode =
        rng.next_bool(0.5) ? synth::MapMode::kDelay : synth::MapMode::kArea;
    const bool fuse = rng.next_bool(0.5);
    if (emit(rewrite, balance, mode, fuse)) ++accepted;
  }
  return recipes;
}

}  // namespace edacloud::tune
