#include "tune/tuner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>

#include "nl/star_graph.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "synth/engine.hpp"
#include "util/thread_pool.hpp"

namespace edacloud::tune {

namespace {

/// Canonical double formatting for export_text (round-trips exactly).
std::string fmt(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

/// Deterministic "is `a` a strictly better joint plan than `b`" order:
/// feasibility, then cost, then QoR, then canonical key.
bool better_plan(const JointPlan& a, const JointPlan& b) {
  if (a.plan.feasible != b.plan.feasible) return a.plan.feasible;
  if (!a.plan.feasible) return false;
  if (a.plan.total_cost_usd != b.plan.total_cost_usd) {
    return a.plan.total_cost_usd < b.plan.total_cost_usd;
  }
  if (a.area_um2 != b.area_um2) return a.area_um2 < b.area_um2;
  return a.recipe_key < b.recipe_key;
}

void append_plan(std::string& out, const char* tag, const JointPlan& plan) {
  out += "plan ";
  out += tag;
  out += ' ';
  out += plan.recipe_key.empty() ? "-" : plan.recipe_key;
  out += plan.plan.feasible ? " feasible 1" : " feasible 0";
  out += " runtime_s " + fmt(plan.plan.total_runtime_seconds);
  out += " cost_usd " + fmt(plan.plan.total_cost_usd);
  out += " area " + fmt(plan.area_um2) + "\n";
  for (const auto& entry : plan.plan.entries) {
    out += "entry ";
    out += tag;
    out += ' ';
    out += core::job_name(entry.job);
    out += " vcpus " + std::to_string(entry.vcpus);
    out += entry.spot ? " spot" : " on-demand";
    out += " runtime_s " + fmt(entry.runtime_seconds);
    out += " cost_usd " + fmt(entry.cost_usd) + "\n";
  }
}

}  // namespace

double TuneResult::savings_vs_fixed_usd() const {
  if (!fixed.plan.feasible || !joint_at_qor.plan.feasible) return 0.0;
  return fixed.plan.total_cost_usd - joint_at_qor.plan.total_cost_usd;
}

std::string TuneResult::export_text() const {
  std::string out = "edacloud-tune-export v1\n";
  out += "design " + design_name + "\n";
  out += "deadline_s " + fmt(deadline_seconds) + "\n";
  out += "budget_usd " + fmt(budget_usd) + "\n";
  out += "recipes " + std::to_string(evaluations.size()) + "\n";
  for (const auto& eval : evaluations) {
    out += "recipe " + eval.key;
    out += " area " + fmt(eval.area_um2);
    out += " cells " + std::to_string(eval.cell_count);
    for (const core::JobKind job : core::kAllJobs) {
      out += ' ';
      out += core::job_name(job);
      for (const double seconds : eval.ladders[static_cast<int>(job)]) {
        out += ' ' + fmt(seconds);
      }
    }
    out += "\n";
  }
  append_plan(out, "fixed", fixed);
  append_plan(out, "joint", joint);
  append_plan(out, "joint_at_qor", joint_at_qor);
  out += "savings_vs_fixed_usd " + fmt(savings_vs_fixed_usd()) + "\n";
  out += std::string("budget feasible ") + (budget_feasible ? "1" : "0");
  out += " seconds " + fmt(budget_fastest_seconds);
  out += " recipe " +
         (budget_recipe_key.empty() ? std::string("-") : budget_recipe_key) +
         "\n";
  out += "frontier " + std::to_string(frontier.size()) + "\n";
  for (const auto& point : frontier) {
    out += "point " + fmt(point.deadline_seconds) + ' ' +
           fmt(point.cost_usd) + ' ' + fmt(point.area_um2) + ' ' +
           point.recipe_key + "\n";
  }
  out += "cache hits " + std::to_string(cache_hits) + " misses " +
         std::to_string(cache_misses) + "\n";
  return out;
}

RecipeTuner::RecipeTuner(const nl::CellLibrary& library,
                         const core::RuntimePredictor& predictor,
                         TunerOptions options, ml::PredictionCache* cache)
    : library_(&library), predictor_(&predictor), options_(options) {
  if (cache != nullptr) {
    cache_ = cache;
  } else if (options_.cache_capacity > 0) {
    owned_cache_ =
        std::make_unique<ml::PredictionCache>(options_.cache_capacity);
    cache_ = owned_cache_.get();
  }
}

TuneResult RecipeTuner::tune(const nl::Aig& design, double deadline_seconds,
                             double budget_usd) {
  TRACE_SPAN("tune/run", "tune");
  for (const core::JobKind job : core::kAllJobs) {
    if (!predictor_->trained(job)) {
      throw std::runtime_error("RecipeTuner: predictor not trained for " +
                               std::string(core::job_name(job)));
    }
  }

  TuneResult result;
  result.design_name = design.name();
  result.deadline_seconds = deadline_seconds;
  result.budget_usd = budget_usd;

  std::vector<synth::SynthRecipe> recipes = enumerate_recipes(options_.space);
  const std::string fixed_key = recipe_key(synth::default_recipe());
  if (std::none_of(recipes.begin(), recipes.end(),
                   [&](const synth::SynthRecipe& r) {
                     return recipe_key(r) == fixed_key;
                   })) {
    synth::SynthRecipe fallback = synth::default_recipe();
    fallback.name = fixed_key;
    recipes.push_back(std::move(fallback));
  }
  const std::size_t count = recipes.size();

  // Phase 1 — synthesize every recipe for real QoR and its netlist feature
  // graph, slot-per-recipe on the deterministic pool (disjoint writes; the
  // engines are bit-identical at any width by the PR-3 contract).
  struct SynthSlot {
    double area_um2 = 0.0;
    std::size_t cell_count = 0;
    ml::GraphSample sample;
    ml::ContentKey key;
    double eval_ms = 0.0;
  };
  std::vector<SynthSlot> slots(count);
  {
    TRACE_SPAN("tune/synthesize", "tune");
    util::parallel_for(
        options_.threads, 0, count, 1,
        [&](std::size_t begin, std::size_t end, std::size_t, unsigned) {
          synth::SynthesisEngine engine(*library_);
          for (std::size_t i = begin; i < end; ++i) {
            const auto start = std::chrono::steady_clock::now();
            const synth::MapResult mapped =
                engine.synthesize(design, recipes[i]);
            SynthSlot& slot = slots[i];
            slot.area_um2 = mapped.mapped_area_um2;
            slot.cell_count = mapped.cell_count;
            slot.sample = ml::sample_from_graph(
                nl::graph_from_netlist(mapped.netlist));
            slot.key = ml::content_key(slot.sample);
            slot.eval_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
          }
        });
  }
  const ml::GraphSample aig_sample =
      ml::sample_from_graph(nl::graph_from_aig(design));
  const ml::ContentKey aig_key = ml::content_key(aig_sample);

  // Phase 2 — cache-fronted batched runtime prediction. Lookups run in
  // canonical recipe order; misses flow through predict_batch in
  // batch_size chunks (bit-identical to serial at any chunk size, so the
  // knob only affects throughput, never bytes).
  std::size_t predict_batches = 0;
  const auto predict_job =
      [&](core::JobKind job, const std::vector<const ml::GraphSample*>& samples,
          const std::vector<ml::ContentKey>& keys) {
        const std::uint64_t salt = static_cast<std::uint64_t>(job) + 1;
        std::vector<std::array<double, 4>> out(samples.size());
        std::vector<std::size_t> misses;
        for (std::size_t i = 0; i < samples.size(); ++i) {
          if (cache_ != nullptr) {
            if (const auto hit = cache_->lookup(keys[i].salted(salt))) {
              out[i] = *hit;
              ++result.cache_hits;
              continue;
            }
          }
          ++result.cache_misses;
          misses.push_back(i);
        }
        const std::size_t chunk =
            options_.batch_size > 0 ? options_.batch_size : misses.size();
        for (std::size_t start = 0; start < misses.size(); start += chunk) {
          const std::size_t stop = std::min(misses.size(), start + chunk);
          std::vector<const ml::GraphSample*> chunk_samples;
          std::vector<ml::ContentKey> chunk_keys;
          for (std::size_t k = start; k < stop; ++k) {
            chunk_samples.push_back(samples[misses[k]]);
            chunk_keys.push_back(keys[misses[k]]);
          }
          const auto batch_out =
              predictor_->predict_batch(job, chunk_samples, &chunk_keys);
          ++predict_batches;
          for (std::size_t k = start; k < stop; ++k) {
            out[misses[k]] = batch_out[k - start];
            if (cache_ != nullptr) {
              cache_->insert(chunk_keys[k - start].salted(salt),
                             batch_out[k - start]);
            }
          }
        }
        return out;
      };

  result.evaluations.resize(count);
  {
    TRACE_SPAN("tune/predict", "tune");
    // Synthesis runtime is predicted from the (recipe-independent) AIG
    // graph — one query fans out to every recipe (docs/TUNING.md records
    // the limitation).
    const auto synth_ladder = predict_job(
        core::JobKind::kSynthesis, {&aig_sample}, {aig_key})[0];
    std::vector<const ml::GraphSample*> netlist_samples(count);
    std::vector<ml::ContentKey> netlist_keys(count);
    for (std::size_t i = 0; i < count; ++i) {
      netlist_samples[i] = &slots[i].sample;
      netlist_keys[i] = slots[i].key;
    }
    for (std::size_t i = 0; i < count; ++i) {
      RecipeEvaluation& eval = result.evaluations[i];
      eval.recipe = recipes[i];
      eval.key = recipe_key(recipes[i]);
      eval.area_um2 = slots[i].area_um2;
      eval.cell_count = slots[i].cell_count;
      eval.ladders[static_cast<int>(core::JobKind::kSynthesis)] = synth_ladder;
    }
    for (const core::JobKind job :
         {core::JobKind::kPlacement, core::JobKind::kRouting,
          core::JobKind::kSta}) {
      const auto ladders = predict_job(job, netlist_samples, netlist_keys);
      for (std::size_t i = 0; i < count; ++i) {
        result.evaluations[i].ladders[static_cast<int>(job)] = ladders[i];
      }
    }
  }

  // Phase 3 — the (recipe x VM-config) cross-product: an exact MCKP plan
  // per recipe, joint minima with provenance, the merged 3-D frontier and
  // the dual budget answer.
  {
    TRACE_SPAN("tune/optimize", "tune");
    core::DeploymentOptimizer optimizer;
    if (options_.market != nullptr) {
      optimizer.enable_spot(options_.market);
    } else if (options_.spot) {
      optimizer.enable_spot(cloud::SpotModel{});
    }
    double fixed_area = 0.0;
    for (const auto& eval : result.evaluations) {
      if (eval.key == fixed_key) fixed_area = eval.area_um2;
    }
    std::vector<ParetoEntry> points;
    for (const auto& eval : result.evaluations) {
      JointPlan candidate;
      candidate.recipe_key = eval.key;
      candidate.area_um2 = eval.area_um2;
      candidate.plan = optimizer.optimize(eval.ladders, deadline_seconds);
      if (eval.key == fixed_key) result.fixed = candidate;
      if (result.joint.recipe_key.empty() ||
          better_plan(candidate, result.joint)) {
        result.joint = candidate;
      }
      if (eval.area_um2 <= fixed_area &&
          (result.joint_at_qor.recipe_key.empty() ||
           better_plan(candidate, result.joint_at_qor))) {
        result.joint_at_qor = candidate;
      }

      const auto stages = optimizer.build_stages(eval.ladders);
      for (const cloud::ParetoPoint& point :
           cloud::cost_deadline_frontier(stages)) {
        points.push_back({point.deadline_seconds, point.cost_usd,
                          eval.area_um2, eval.key});
      }
      if (budget_usd > 0.0) {
        const cloud::MckpSelection within =
            cloud::fastest_within_budget(stages, budget_usd);
        if (within.feasible &&
            (!result.budget_feasible ||
             within.total_time_seconds < result.budget_fastest_seconds ||
             (within.total_time_seconds == result.budget_fastest_seconds &&
              eval.key < result.budget_recipe_key))) {
          result.budget_feasible = true;
          result.budget_fastest_seconds = within.total_time_seconds;
          result.budget_recipe_key = eval.key;
        }
      }
    }
    // 3-D dominance filter (deadline, cost, QoR), O(n^2) on a small set.
    for (const ParetoEntry& a : points) {
      bool dominated = false;
      for (const ParetoEntry& b : points) {
        if (b.deadline_seconds <= a.deadline_seconds &&
            b.cost_usd <= a.cost_usd && b.area_um2 <= a.area_um2 &&
            (b.deadline_seconds < a.deadline_seconds ||
             b.cost_usd < a.cost_usd || b.area_um2 < a.area_um2)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) result.frontier.push_back(a);
    }
    std::sort(result.frontier.begin(), result.frontier.end(),
              [](const ParetoEntry& a, const ParetoEntry& b) {
                if (a.deadline_seconds != b.deadline_seconds) {
                  return a.deadline_seconds < b.deadline_seconds;
                }
                if (a.cost_usd != b.cost_usd) return a.cost_usd < b.cost_usd;
                if (a.area_um2 != b.area_um2) return a.area_um2 < b.area_um2;
                return a.recipe_key < b.recipe_key;
              });
  }

  // Observability: counters + the per-recipe evaluation-time histogram
  // (observed serially — HistogramMetric is not internally locked).
  obs::Registry& registry = obs::Registry::global();
  registry.counter("tune.runs").add(1);
  registry.counter("tune.recipes_evaluated").add(count);
  registry.counter("tune.predict_batches").add(predict_batches);
  registry.counter("tune.cache.hits").add(result.cache_hits);
  registry.counter("tune.cache.misses").add(result.cache_misses);
  auto& eval_histogram =
      registry.histogram("tune.recipe_eval_ms", {}, 0.0, 2000.0, 64);
  for (const SynthSlot& slot : slots) eval_histogram.observe(slot.eval_ms);
  registry.gauge("tune.last_savings_usd").set(result.savings_vs_fixed_usd());

  return result;
}

}  // namespace edacloud::tune
