#pragma once
// RecipeTuner — joint flow + deployment optimization (ROADMAP item 4).
// The paper fixes one synthesis flow per stage and only explores the
// deployment space; the tuner treats the recipe space itself as the search
// object: enumerate/sample recipes (recipe_space.hpp), synthesize each one
// for real QoR (mapped area), GCN-predict the downstream runtime ladders
// from the per-recipe netlist graphs via RuntimePredictor::predict_batch
// (fronted by the content-addressed ml::PredictionCache — recipe variants
// of one design are exactly the high-duplicate predict stream the batching
// layer was built for), and solve the (recipe x VM-config) cross-product:
// for every recipe an exact MCKP deployment plan, the joint minimum over
// all of them, the joint minimum at no-worse QoR than the default recipe,
// and the merged 3-D Pareto frontier of $-vs-QoR-vs-deadline with
// per-recipe provenance.
//
// Hard contract (same as every subsystem before it): for a fixed seed the
// TuneResult — including its canonical export_text() bytes — is identical
// at any thread count and any predict batch size. Synthesis runs
// slot-per-recipe on the deterministic pool, cache lookups happen in
// canonical recipe order, and predict_batch is bit-identical to serial by
// the PR-6 contract.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/optimizer.hpp"
#include "core/predictor.hpp"
#include "ml/batch.hpp"
#include "nl/aig.hpp"
#include "nl/cell_library.hpp"
#include "tune/recipe_space.hpp"

namespace edacloud::tune {

struct TunerOptions {
  RecipeSpace space;
  /// predict_batch chunk size (results are bit-identical at any value —
  /// enforced by TuneTest and the check.sh tune smoke).
  std::size_t batch_size = 64;
  /// Synthesis fan-out width (0 = global pool default).
  int threads = 0;
  /// Capacity of the tuner-owned PredictionCache, used only when no
  /// external cache is supplied (0 disables caching).
  std::size_t cache_capacity = 4096;
  /// Offer spot tiers in every deployment stage.
  bool spot = false;
  /// Price those spot tiers against this market's planning view instead of
  /// the flat default SpotModel (null = flat model; implies spot when set).
  std::shared_ptr<const cloud::Market> market;
};

/// One evaluated recipe: real synthesis QoR + predicted runtime ladders.
struct RecipeEvaluation {
  synth::SynthRecipe recipe;
  std::string key;             // canonical recipe key (provenance handle)
  double area_um2 = 0.0;       // QoR: mapped area, lower is better
  std::size_t cell_count = 0;
  core::RuntimeLadders ladders{};  // seconds at 1/2/4/8 vCPUs per job
};

/// A deployment plan with recipe provenance.
struct JointPlan {
  std::string recipe_key;      // empty when no feasible recipe exists
  double area_um2 = 0.0;
  core::DeploymentPlan plan;
};

/// One point of the merged $-vs-QoR-vs-deadline frontier.
struct ParetoEntry {
  double deadline_seconds = 0.0;
  double cost_usd = 0.0;
  double area_um2 = 0.0;
  std::string recipe_key;
};

struct TuneResult {
  std::string design_name;
  double deadline_seconds = 0.0;
  double budget_usd = 0.0;

  /// Canonical enumeration order (recipe_space.hpp). The default recipe is
  /// always present (appended when the space does not already contain it).
  std::vector<RecipeEvaluation> evaluations;

  JointPlan fixed;         // default_recipe() baseline deployment
  JointPlan joint;         // cheapest feasible plan over all recipes
  JointPlan joint_at_qor;  // cheapest feasible with area <= fixed QoR

  /// Non-dominated (deadline, cost, QoR) points across every recipe,
  /// sorted by (deadline, cost, area, recipe key).
  std::vector<ParetoEntry> frontier;

  /// Budget mode (budget_usd > 0): fastest completion within the budget.
  bool budget_feasible = false;
  double budget_fastest_seconds = 0.0;
  std::string budget_recipe_key;

  /// Prediction-cache accounting for this tune() call only.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  /// $ saved by the joint optimum at no-worse QoR vs the fixed default
  /// recipe (0 when either side is infeasible).
  [[nodiscard]] double savings_vs_fixed_usd() const;

  /// Canonical plain-text serialization ("%.17g" doubles, one record per
  /// line). Byte-identical across thread counts and batch sizes for a
  /// fixed seed — the artifact the determinism cmp legs diff. Thread and
  /// batch settings are deliberately excluded from the dump.
  [[nodiscard]] std::string export_text() const;
};

class RecipeTuner {
 public:
  /// `cache` (optional) fronts every runtime prediction; when null the
  /// tuner owns one sized by options.cache_capacity. The predictor must
  /// outlive the tuner and be trained for all four jobs.
  RecipeTuner(const nl::CellLibrary& library,
              const core::RuntimePredictor& predictor,
              TunerOptions options = {},
              ml::PredictionCache* cache = nullptr);

  /// Evaluate the recipe space on `design` and jointly optimize recipe and
  /// deployment under `deadline_seconds` (and, when budget_usd > 0, answer
  /// the dual fastest-within-budget question).
  [[nodiscard]] TuneResult tune(const nl::Aig& design,
                                double deadline_seconds,
                                double budget_usd = 0.0);

  /// The cache predictions go through (owned or external); nullptr when
  /// caching is disabled.
  [[nodiscard]] ml::PredictionCache* cache() const { return cache_; }

 private:
  const nl::CellLibrary* library_;
  const core::RuntimePredictor* predictor_;
  TunerOptions options_;
  std::unique_ptr<ml::PredictionCache> owned_cache_;
  ml::PredictionCache* cache_ = nullptr;
};

}  // namespace edacloud::tune
