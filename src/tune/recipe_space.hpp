#pragma once
// Deterministic recipe-space generation for the autotuner (ROADMAP item 4).
// A recipe's identity is its semantic fields (rewrite passes, balance, map
// mode, inverter fusion) — never its display name — captured by a canonical
// key string that is injective over the field tuple. The generator sweeps a
// dense grid over the small field ranges and optionally extends it with
// seeded random draws from a wider pass-count range, deduplicating by
// canonical key so the returned list never contains two logically equal
// recipes. Same RecipeSpace -> same list, element for element, on every
// platform (util::Rng streams, no unordered containers).

#include <cstdint>
#include <string>
#include <vector>

#include "synth/recipe.hpp"

namespace edacloud::tune {

/// Canonical identity of a recipe's semantic fields, e.g.
/// "rw2-bal-area-fuse" / "rw0-nobal-delay-nofuse". Injective: two recipes
/// share a key iff every field matches; the name is ignored.
[[nodiscard]] std::string recipe_key(const synth::SynthRecipe& recipe);

/// 64-bit FNV-1a of recipe_key() — the hash the dedup set and the
/// canonicalization tests use. Logically-equal recipes hash equal.
[[nodiscard]] std::uint64_t recipe_key_hash(const synth::SynthRecipe& recipe);

struct RecipeSpace {
  /// Grid part: every combination of rewrite_passes in [0, grid_max_rewrite]
  /// x balance x map mode x fuse, in canonical order.
  int grid_max_rewrite = 2;
  /// Random part: seeded draws with rewrite_passes in [0, sample_max_rewrite]
  /// appended after the grid (duplicates of anything already emitted are
  /// skipped; draw attempts are bounded so generation always terminates).
  int sample_max_rewrite = 6;
  std::size_t random_samples = 0;
  std::uint64_t seed = 1;
};

/// The deduplicated recipe list for `space`, named by canonical key.
/// Deterministic: same space -> byte-identical list.
[[nodiscard]] std::vector<synth::SynthRecipe> enumerate_recipes(
    const RecipeSpace& space);

}  // namespace edacloud::tune
