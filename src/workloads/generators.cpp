#include "workloads/generators.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace edacloud::workloads {

using nl::Aig;
using nl::kLitFalse;
using nl::Literal;
using nl::literal_not;
using util::Rng;

namespace {

std::vector<Literal> add_input_vector(Aig& aig, int n) {
  std::vector<Literal> bits;
  bits.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) bits.push_back(aig.add_input());
  return bits;
}

void add_output_vector(Aig& aig, const std::vector<Literal>& bits) {
  for (Literal bit : bits) aig.add_output(bit);
}

/// Balanced reduction over a vector with a binary op.
template <typename Op>
Literal reduce_tree(Aig& aig, std::vector<Literal> bits, Op op) {
  if (bits.empty()) return kLitFalse;
  while (bits.size() > 1) {
    std::vector<Literal> next;
    next.reserve((bits.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < bits.size(); i += 2) {
      next.push_back(op(aig, bits[i], bits[i + 1]));
    }
    if (bits.size() % 2 == 1) next.push_back(bits.back());
    bits = std::move(next);
  }
  return bits[0];
}

Literal or_tree(Aig& aig, std::vector<Literal> bits) {
  return reduce_tree(aig, std::move(bits),
                     [](Aig& g, Literal a, Literal b) { return g.or_of(a, b); });
}

Literal and_tree(Aig& aig, std::vector<Literal> bits) {
  return reduce_tree(aig, std::move(bits), [](Aig& g, Literal a, Literal b) {
    return g.and_of(a, b);
  });
}

Literal xor_tree(Aig& aig, std::vector<Literal> bits) {
  return reduce_tree(aig, std::move(bits), [](Aig& g, Literal a, Literal b) {
    return g.xor_of(a, b);
  });
}

struct AddResult {
  std::vector<Literal> sum;
  Literal carry = kLitFalse;
};

/// Ripple-carry addition; operands may differ in width (zero-extended).
AddResult ripple_add(Aig& aig, const std::vector<Literal>& a,
                     const std::vector<Literal>& b, Literal carry_in) {
  AddResult result;
  const std::size_t width = std::max(a.size(), b.size());
  result.sum.reserve(width);
  Literal carry = carry_in;
  for (std::size_t i = 0; i < width; ++i) {
    const Literal ai = i < a.size() ? a[i] : kLitFalse;
    const Literal bi = i < b.size() ? b[i] : kLitFalse;
    const Literal axb = aig.xor_of(ai, bi);
    result.sum.push_back(aig.xor_of(axb, carry));
    carry = aig.maj_of(ai, bi, carry);
  }
  result.carry = carry;
  return result;
}

std::vector<Literal> complement_vector(const std::vector<Literal>& bits) {
  std::vector<Literal> out;
  out.reserve(bits.size());
  for (Literal bit : bits) out.push_back(literal_not(bit));
  return out;
}

/// Unsigned a < b via borrow of a - b.
Literal unsigned_less_than(Aig& aig, const std::vector<Literal>& a,
                           const std::vector<Literal>& b) {
  // a - b = a + ~b + 1; carry-out == 1 means a >= b.
  const AddResult diff = ripple_add(aig, a, complement_vector(b), nl::kLitTrue);
  return literal_not(diff.carry);
}

std::vector<Literal> mux_vector(Aig& aig, Literal select,
                                const std::vector<Literal>& when_true,
                                const std::vector<Literal>& when_false) {
  std::vector<Literal> out;
  const std::size_t width = std::max(when_true.size(), when_false.size());
  out.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    const Literal t = i < when_true.size() ? when_true[i] : kLitFalse;
    const Literal f = i < when_false.size() ? when_false[i] : kLitFalse;
    out.push_back(aig.mux_of(select, t, f));
  }
  return out;
}

/// One-hot decode of `address` (shared-subterm recursive construction).
std::vector<Literal> decode(Aig& aig, const std::vector<Literal>& address) {
  std::vector<Literal> terms{nl::kLitTrue};
  for (Literal bit : address) {
    std::vector<Literal> next;
    next.reserve(terms.size() * 2);
    for (Literal term : terms) next.push_back(aig.and_of(term, literal_not(bit)));
    for (Literal term : terms) next.push_back(aig.and_of(term, bit));
    terms = std::move(next);
  }
  return terms;
}

/// Random sum-of-products over `support`, with `term_count` AND terms of
/// `term_size` random (possibly complemented) literals each.
Literal random_sop(Aig& aig, const std::vector<Literal>& support,
                   int term_count, int term_size, Rng& rng) {
  std::vector<Literal> terms;
  terms.reserve(static_cast<std::size_t>(term_count));
  for (int t = 0; t < term_count; ++t) {
    std::vector<Literal> lits;
    lits.reserve(static_cast<std::size_t>(term_size));
    for (int k = 0; k < term_size; ++k) {
      Literal lit = support[rng.next_below(support.size())];
      if (rng.next_bool(0.5)) lit = literal_not(lit);
      lits.push_back(lit);
    }
    terms.push_back(and_tree(aig, std::move(lits)));
  }
  return or_tree(aig, std::move(terms));
}

/// Layered random logic: `layers` layers of `width` random 2-input gates.
std::vector<Literal> layered_random(Aig& aig, std::vector<Literal> frontier,
                                    int layers, int width, Rng& rng) {
  for (int layer = 0; layer < layers; ++layer) {
    std::vector<Literal> next;
    next.reserve(static_cast<std::size_t>(width));
    for (int i = 0; i < width; ++i) {
      Literal a = frontier[rng.next_below(frontier.size())];
      Literal b = frontier[rng.next_below(frontier.size())];
      if (rng.next_bool(0.5)) a = literal_not(a);
      if (rng.next_bool(0.5)) b = literal_not(b);
      switch (rng.next_below(4)) {
        case 0:
          next.push_back(aig.and_of(a, b));
          break;
        case 1:
          next.push_back(aig.or_of(a, b));
          break;
        case 2:
          next.push_back(aig.xor_of(a, b));
          break;
        default: {
          Literal c = frontier[rng.next_below(frontier.size())];
          next.push_back(aig.mux_of(a, b, c));
          break;
        }
      }
    }
    frontier = std::move(next);
  }
  return frontier;
}

int require_positive(int value, const char* what) {
  if (value <= 0) {
    throw std::invalid_argument(std::string(what) + " must be positive");
  }
  return value;
}

}  // namespace

// ---- arithmetic-dense families ----------------------------------------------

Aig gen_adder(int width) {
  require_positive(width, "adder width");
  Aig aig("adder_w" + std::to_string(width));
  const auto a = add_input_vector(aig, width);
  const auto b = add_input_vector(aig, width);
  const Literal carry_in = aig.add_input();
  const AddResult result = ripple_add(aig, a, b, carry_in);
  add_output_vector(aig, result.sum);
  aig.add_output(result.carry);
  return aig;
}

Aig gen_multiplier(int width) {
  require_positive(width, "multiplier width");
  Aig aig("mult_w" + std::to_string(width));
  const auto a = add_input_vector(aig, width);
  const auto b = add_input_vector(aig, width);
  // Row-by-row accumulation of partial products.
  std::vector<Literal> acc(static_cast<std::size_t>(2 * width), kLitFalse);
  for (int row = 0; row < width; ++row) {
    std::vector<Literal> partial(static_cast<std::size_t>(2 * width),
                                 kLitFalse);
    for (int col = 0; col < width; ++col) {
      partial[static_cast<std::size_t>(row + col)] =
          aig.and_of(a[static_cast<std::size_t>(col)],
                     b[static_cast<std::size_t>(row)]);
    }
    acc = ripple_add(aig, acc, partial, kLitFalse).sum;
    acc.resize(static_cast<std::size_t>(2 * width), kLitFalse);
  }
  add_output_vector(aig, acc);
  return aig;
}

Aig gen_shifter(int width_log2) {
  require_positive(width_log2, "shifter log-width");
  const int width = 1 << width_log2;
  Aig aig("shifter_w" + std::to_string(width));
  auto data = add_input_vector(aig, width);
  const auto amount = add_input_vector(aig, width_log2);
  // Barrel rotate-left in log stages.
  for (int stage = 0; stage < width_log2; ++stage) {
    const int shift = 1 << stage;
    std::vector<Literal> rotated(data.size());
    for (int i = 0; i < width; ++i) {
      rotated[static_cast<std::size_t>((i + shift) % width)] =
          data[static_cast<std::size_t>(i)];
    }
    data = mux_vector(aig, amount[static_cast<std::size_t>(stage)], rotated,
                      data);
  }
  add_output_vector(aig, data);
  return aig;
}

Aig gen_alu(int width) {
  require_positive(width, "alu width");
  Aig aig("alu_w" + std::to_string(width));
  const auto a = add_input_vector(aig, width);
  const auto b = add_input_vector(aig, width);
  const auto op = add_input_vector(aig, 3);

  const AddResult sum = ripple_add(aig, a, b, kLitFalse);
  const AddResult diff = ripple_add(aig, a, complement_vector(b), nl::kLitTrue);
  std::vector<Literal> bit_and(a.size()), bit_or(a.size()), bit_xor(a.size()),
      bit_nor(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    bit_and[i] = aig.and_of(a[i], b[i]);
    bit_or[i] = aig.or_of(a[i], b[i]);
    bit_xor[i] = aig.xor_of(a[i], b[i]);
    bit_nor[i] = literal_not(bit_or[i]);
  }
  std::vector<Literal> slt(a.size(), kLitFalse);
  slt[0] = unsigned_less_than(aig, a, b);
  const std::vector<Literal> pass_b = b;

  // 8:1 select via mux tree on 3 op bits.
  const auto sel0 = mux_vector(aig, op[0], diff.sum, sum.sum);
  const auto sel1 = mux_vector(aig, op[0], bit_or, bit_and);
  const auto sel2 = mux_vector(aig, op[0], bit_nor, bit_xor);
  const auto sel3 = mux_vector(aig, op[0], pass_b, slt);
  const auto sel01 = mux_vector(aig, op[1], sel1, sel0);
  const auto sel23 = mux_vector(aig, op[1], sel3, sel2);
  const auto result = mux_vector(aig, op[2], sel23, sel01);

  add_output_vector(aig, result);
  aig.add_output(sum.carry);
  aig.add_output(or_tree(aig, result));  // zero flag (complemented outside)
  return aig;
}

Aig gen_max(int width) {
  require_positive(width, "max width");
  Aig aig("max_w" + std::to_string(width));
  const auto a = add_input_vector(aig, width);
  const auto b = add_input_vector(aig, width);
  const auto c = add_input_vector(aig, width);
  const auto d = add_input_vector(aig, width);
  auto max2 = [&aig](const std::vector<Literal>& x,
                     const std::vector<Literal>& y) {
    const Literal x_less = unsigned_less_than(aig, x, y);
    return mux_vector(aig, x_less, y, x);
  };
  const auto top = max2(max2(a, b), max2(c, d));
  add_output_vector(aig, top);
  return aig;
}

Aig gen_comparator(int width) {
  require_positive(width, "comparator width");
  Aig aig("cmp_w" + std::to_string(width));
  const auto a = add_input_vector(aig, width);
  const auto b = add_input_vector(aig, width);
  std::vector<Literal> eq_bits(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    eq_bits[i] = literal_not(aig.xor_of(a[i], b[i]));
  }
  const Literal equal = and_tree(aig, eq_bits);
  const Literal less = unsigned_less_than(aig, a, b);
  const Literal greater = aig.and_of(literal_not(less), literal_not(equal));
  aig.add_output(equal);
  aig.add_output(less);
  aig.add_output(greater);
  return aig;
}

Aig gen_parity(int width) {
  require_positive(width, "parity width");
  Aig aig("parity_w" + std::to_string(width));
  auto bits = add_input_vector(aig, width);
  aig.add_output(xor_tree(aig, std::move(bits)));
  return aig;
}

Aig gen_voter(int inputs) {
  require_positive(inputs, "voter inputs");
  Aig aig("voter_n" + std::to_string(inputs));
  const auto bits = add_input_vector(aig, inputs);
  // Population count via accumulating ripple adds.
  std::vector<Literal> count{bits[0]};
  for (std::size_t i = 1; i < bits.size(); ++i) {
    AddResult step = ripple_add(aig, count, {bits[i]}, kLitFalse);
    count = std::move(step.sum);
    count.push_back(step.carry);  // widen: keep the overflow bit
  }
  // majority: count > inputs/2  <=>  threshold < count.
  const int threshold = inputs / 2;
  std::vector<Literal> threshold_bits;
  for (std::size_t i = 0; i < count.size(); ++i) {
    threshold_bits.push_back((threshold >> i) & 1 ? nl::kLitTrue : kLitFalse);
  }
  aig.add_output(unsigned_less_than(aig, threshold_bits, count));
  return aig;
}

// ---- control-dense families --------------------------------------------------

Aig gen_decoder(int address_bits) {
  require_positive(address_bits, "decoder address bits");
  Aig aig("decoder_a" + std::to_string(address_bits));
  const auto address = add_input_vector(aig, address_bits);
  const Literal enable = aig.add_input();
  for (Literal term : decode(aig, address)) {
    aig.add_output(aig.and_of(term, enable));
  }
  return aig;
}

Aig gen_encoder(int inputs) {
  require_positive(inputs, "encoder inputs");
  Aig aig("encoder_n" + std::to_string(inputs));
  const auto requests = add_input_vector(aig, inputs);
  // grant_i = request_i & none of the higher-priority (lower index) requests.
  std::vector<Literal> grants(requests.size());
  Literal any_before = kLitFalse;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    grants[i] = aig.and_of(requests[i], literal_not(any_before));
    any_before = aig.or_of(any_before, requests[i]);
  }
  const int out_bits = std::max(
      1, static_cast<int>(std::ceil(std::log2(std::max(2, inputs)))));
  for (int bit = 0; bit < out_bits; ++bit) {
    std::vector<Literal> contributors;
    for (std::size_t i = 0; i < grants.size(); ++i) {
      if ((i >> bit) & 1U) contributors.push_back(grants[i]);
    }
    aig.add_output(or_tree(aig, std::move(contributors)));
  }
  aig.add_output(any_before);  // valid
  return aig;
}

Aig gen_arbiter(int requesters) {
  require_positive(requesters, "arbiter requesters");
  Aig aig("arbiter_n" + std::to_string(requesters));
  const auto requests = add_input_vector(aig, requesters);
  const auto mask = add_input_vector(aig, requesters);  // round-robin mask
  // Masked pass first, unmasked fallback (classic two-pass RR arbiter).
  std::vector<Literal> masked(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    masked[i] = aig.and_of(requests[i], mask[i]);
  }
  auto priority_chain = [&aig](const std::vector<Literal>& reqs) {
    std::vector<Literal> grants(reqs.size());
    Literal any = kLitFalse;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      grants[i] = aig.and_of(reqs[i], literal_not(any));
      any = aig.or_of(any, reqs[i]);
    }
    grants.push_back(any);  // last element = any-granted flag
    return grants;
  };
  auto masked_grants = priority_chain(masked);
  auto unmasked_grants = priority_chain(requests);
  const Literal use_masked = masked_grants.back();
  for (std::size_t i = 0; i < requests.size(); ++i) {
    aig.add_output(
        aig.mux_of(use_masked, masked_grants[i], unmasked_grants[i]));
  }
  aig.add_output(unmasked_grants.back());
  return aig;
}

Aig gen_cavlc(int scale, std::uint64_t seed) {
  require_positive(scale, "cavlc scale");
  Aig aig("cavlc_s" + std::to_string(scale));
  Rng rng(seed ^ 0xCAFEBABEULL);
  const auto inputs = add_input_vector(aig, 10 + scale / 2);
  for (int out = 0; out < scale; ++out) {
    const int terms = 4 + static_cast<int>(rng.next_below(8));
    const int term_size = 3 + static_cast<int>(rng.next_below(3));
    aig.add_output(random_sop(aig, inputs, terms, term_size, rng));
  }
  return aig;
}

Aig gen_i2c(int scale, std::uint64_t seed) {
  require_positive(scale, "i2c scale");
  Aig aig("i2c_s" + std::to_string(scale));
  Rng rng(seed ^ 0x12C12C12CULL);
  const auto state = add_input_vector(aig, 8 + scale / 4);
  const auto io = add_input_vector(aig, 6 + scale / 4);
  std::vector<Literal> support = state;
  support.insert(support.end(), io.begin(), io.end());
  const auto next = layered_random(aig, support, 5, 8 + scale, rng);
  for (std::size_t i = 0; i < state.size() && i < next.size(); ++i) {
    aig.add_output(next[i]);
  }
  // A handful of Mealy outputs.
  for (int i = 0; i < 4; ++i) {
    aig.add_output(random_sop(aig, support, 3, 3, rng));
  }
  return aig;
}

Aig gen_mem_ctrl(int ports, std::uint64_t seed) {
  require_positive(ports, "mem_ctrl ports");
  Aig aig("mem_ctrl_p" + std::to_string(ports));
  Rng rng(seed ^ 0x3E3E3E3EULL);
  const int data_width = 8;
  const int addr_bits = 4;
  std::vector<std::vector<Literal>> port_data;
  std::vector<std::vector<Literal>> port_addr;
  std::vector<Literal> port_valid;
  for (int p = 0; p < ports; ++p) {
    port_data.push_back(add_input_vector(aig, data_width));
    port_addr.push_back(add_input_vector(aig, addr_bits));
    port_valid.push_back(aig.add_input());
  }
  // Bank-select decoders gate each port's data onto a shared bus per bank.
  const int banks = 1 << addr_bits;
  std::vector<Literal> bus_or_terms;
  for (int bank = 0; bank < banks; ++bank) {
    for (int bit = 0; bit < data_width; ++bit) {
      std::vector<Literal> drivers;
      for (int p = 0; p < ports; ++p) {
        const auto onehot = decode(aig, port_addr[static_cast<std::size_t>(p)]);
        const Literal selected =
            aig.and_of(onehot[static_cast<std::size_t>(bank)],
                       port_valid[static_cast<std::size_t>(p)]);
        drivers.push_back(aig.and_of(
            selected, port_data[static_cast<std::size_t>(p)]
                               [static_cast<std::size_t>(bit)]));
      }
      bus_or_terms.push_back(or_tree(aig, std::move(drivers)));
    }
  }
  // Emit a subset of bus bits plus random control.
  for (std::size_t i = 0; i < bus_or_terms.size(); i += 2) {
    aig.add_output(bus_or_terms[i]);
  }
  std::vector<Literal> support = port_valid;
  for (const auto& addr : port_addr) {
    support.insert(support.end(), addr.begin(), addr.end());
  }
  for (int i = 0; i < ports; ++i) {
    aig.add_output(random_sop(aig, support, 5, 4, rng));
  }
  return aig;
}

// ---- datapath/mux-heavy families ----------------------------------------------

Aig gen_crossbar(int ports, int width) {
  require_positive(ports, "crossbar ports");
  require_positive(width, "crossbar width");
  Aig aig("xbar_p" + std::to_string(ports) + "_w" + std::to_string(width));
  const int select_bits = std::max(
      1, static_cast<int>(std::ceil(std::log2(std::max(2, ports)))));
  std::vector<std::vector<Literal>> in_data;
  for (int p = 0; p < ports; ++p) {
    in_data.push_back(add_input_vector(aig, width));
  }
  std::vector<std::vector<Literal>> selects;
  for (int out = 0; out < ports; ++out) {
    selects.push_back(add_input_vector(aig, select_bits));
  }
  for (int out = 0; out < ports; ++out) {
    const auto onehot = decode(aig, selects[static_cast<std::size_t>(out)]);
    for (int bit = 0; bit < width; ++bit) {
      std::vector<Literal> terms;
      for (int p = 0; p < ports; ++p) {
        terms.push_back(
            aig.and_of(onehot[static_cast<std::size_t>(p)],
                       in_data[static_cast<std::size_t>(p)]
                              [static_cast<std::size_t>(bit)]));
      }
      aig.add_output(or_tree(aig, std::move(terms)));
    }
  }
  return aig;
}

Aig gen_sbox(int copies, std::uint64_t seed) {
  require_positive(copies, "sbox copies");
  Aig aig("sbox_c" + std::to_string(copies));
  Rng rng(seed ^ 0x5B0C5B0CULL);
  std::vector<std::vector<Literal>> bytes;
  for (int c = 0; c < copies; ++c) {
    bytes.push_back(add_input_vector(aig, 8));
  }
  std::vector<std::vector<Literal>> substituted;
  for (int c = 0; c < copies; ++c) {
    std::vector<Literal> out_byte;
    for (int bit = 0; bit < 8; ++bit) {
      // Dense random SOP approximating an S-box output bit.
      out_byte.push_back(
          random_sop(aig, bytes[static_cast<std::size_t>(c)], 10, 4, rng));
    }
    substituted.push_back(std::move(out_byte));
  }
  // MixColumns-like XOR diffusion across adjacent bytes.
  for (int c = 0; c < copies; ++c) {
    const auto& current = substituted[static_cast<std::size_t>(c)];
    const auto& next =
        substituted[static_cast<std::size_t>((c + 1) % copies)];
    for (int bit = 0; bit < 8; ++bit) {
      aig.add_output(aig.xor_of(current[static_cast<std::size_t>(bit)],
                                next[static_cast<std::size_t>(bit)]));
    }
  }
  return aig;
}

// ---- OpenPiton analogs ---------------------------------------------------------

Aig gen_dynamic_node(int ports, int width, std::uint64_t seed) {
  require_positive(ports, "dynamic_node ports");
  require_positive(width, "dynamic_node width");
  Aig aig("dynamic_node_p" + std::to_string(ports) + "_w" +
          std::to_string(width));
  Rng rng(seed ^ 0xD1DAD1DAULL);
  const int select_bits = std::max(
      1, static_cast<int>(std::ceil(std::log2(std::max(2, ports)))));
  // Input ports: flit = [dest | payload], plus a valid bit each.
  std::vector<std::vector<Literal>> dest;
  std::vector<std::vector<Literal>> payload;
  std::vector<Literal> valid;
  for (int p = 0; p < ports; ++p) {
    dest.push_back(add_input_vector(aig, select_bits));
    payload.push_back(add_input_vector(aig, width));
    valid.push_back(aig.add_input());
  }
  const auto round_robin_mask = add_input_vector(aig, ports);

  // Route computation: request matrix request[out][in].
  std::vector<std::vector<Literal>> request(
      static_cast<std::size_t>(ports),
      std::vector<Literal>(static_cast<std::size_t>(ports)));
  for (int in = 0; in < ports; ++in) {
    const auto onehot = decode(aig, dest[static_cast<std::size_t>(in)]);
    for (int out = 0; out < ports; ++out) {
      request[static_cast<std::size_t>(out)][static_cast<std::size_t>(in)] =
          aig.and_of(onehot[static_cast<std::size_t>(out)],
                     valid[static_cast<std::size_t>(in)]);
    }
  }

  // Per-output arbitration (masked priority) + crossbar mux.
  for (int out = 0; out < ports; ++out) {
    auto& reqs = request[static_cast<std::size_t>(out)];
    std::vector<Literal> grants(reqs.size());
    Literal any = kLitFalse;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      const Literal masked = aig.and_of(reqs[i], round_robin_mask[i]);
      grants[i] = aig.and_of(aig.or_of(masked, reqs[i]), literal_not(any));
      any = aig.or_of(any, grants[i]);
    }
    for (int bit = 0; bit < width; ++bit) {
      std::vector<Literal> terms;
      for (int in = 0; in < ports; ++in) {
        terms.push_back(
            aig.and_of(grants[static_cast<std::size_t>(in)],
                       payload[static_cast<std::size_t>(in)]
                              [static_cast<std::size_t>(bit)]));
      }
      aig.add_output(or_tree(aig, std::move(terms)));
    }
    aig.add_output(any);
  }
  // Credit/flow-control random logic.
  const auto flow = layered_random(aig, valid, 3, ports * 2, rng);
  for (std::size_t i = 0; i < flow.size() && i < 8; ++i) {
    aig.add_output(flow[i]);
  }
  return aig;
}

Aig gen_sparc_core(int scale, std::uint64_t seed) {
  require_positive(scale, "sparc_core scale");
  Aig aig("sparc_core_s" + std::to_string(scale));
  Rng rng(seed ^ 0x59A8C000ULL);
  const int width = std::max(8, scale);
  const int reg_count = 16;
  const int reg_bits = 4;

  // A seed bus stands in for the register-file read data; the sixteen
  // register values are derived internally (rotate + mask + mix), keeping
  // the pad count realistic for a core slice of this size.
  const auto seed_bus = add_input_vector(aig, width);
  const auto seed_alt = add_input_vector(aig, width);
  const auto rs1_sel = add_input_vector(aig, reg_bits);
  const auto rs2_sel = add_input_vector(aig, reg_bits);
  const auto opcode = add_input_vector(aig, 5);
  const auto immediate = add_input_vector(aig, width);

  std::vector<std::vector<Literal>> regs;
  for (int r = 0; r < reg_count; ++r) {
    std::vector<Literal> value(static_cast<std::size_t>(width));
    for (int bit = 0; bit < width; ++bit) {
      const std::size_t rot =
          static_cast<std::size_t>((bit + r * 3) % width);
      const std::size_t rot2 =
          static_cast<std::size_t>((bit + r * 7 + 1) % width);
      Literal mixed = aig.xor_of(seed_bus[rot], seed_alt[rot2]);
      if ((r >> (bit % reg_bits)) & 1) mixed = literal_not(mixed);
      value[static_cast<std::size_t>(bit)] = mixed;
    }
    regs.push_back(std::move(value));
  }

  // Register read: one-hot decode + AND-OR mux network per bit.
  auto read_port = [&](const std::vector<Literal>& select) {
    const auto onehot = decode(aig, select);
    std::vector<Literal> value;
    value.reserve(static_cast<std::size_t>(width));
    for (int bit = 0; bit < width; ++bit) {
      std::vector<Literal> terms;
      for (int r = 0; r < reg_count; ++r) {
        terms.push_back(aig.and_of(onehot[static_cast<std::size_t>(r)],
                                   regs[static_cast<std::size_t>(r)]
                                       [static_cast<std::size_t>(bit)]));
      }
      value.push_back(or_tree(aig, std::move(terms)));
    }
    return value;
  };
  const auto rs1 = read_port(rs1_sel);
  auto rs2 = read_port(rs2_sel);
  // Immediate select.
  rs2 = mux_vector(aig, opcode[4], immediate, rs2);

  // Execution units.
  const AddResult sum = ripple_add(aig, rs1, rs2, kLitFalse);
  const AddResult diff =
      ripple_add(aig, rs1, complement_vector(rs2), nl::kLitTrue);
  std::vector<Literal> logic_and(rs1.size()), logic_xor(rs1.size());
  for (std::size_t i = 0; i < rs1.size(); ++i) {
    logic_and[i] = aig.and_of(rs1[i], rs2[i]);
    logic_xor[i] = aig.xor_of(rs1[i], rs2[i]);
  }
  // Barrel rotate on the low power-of-two slice of rs1.
  const int rot_log2 =
      std::max(2, static_cast<int>(std::floor(std::log2(width))));
  const int rot_width = 1 << std::min(rot_log2, 6);
  std::vector<Literal> rotated(rs1.begin(),
                               rs1.begin() + std::min<std::size_t>(
                                                 rs1.size(),
                                                 static_cast<std::size_t>(
                                                     rot_width)));
  for (int stage = 0; stage < std::min(rot_log2, 6); ++stage) {
    const int shift = 1 << stage;
    std::vector<Literal> shifted(rotated.size());
    for (std::size_t i = 0; i < rotated.size(); ++i) {
      shifted[(i + static_cast<std::size_t>(shift)) % rotated.size()] =
          rotated[i];
    }
    rotated = mux_vector(aig, rs2[static_cast<std::size_t>(stage)], shifted,
                         rotated);
  }
  rotated.resize(rs1.size(), kLitFalse);

  // Half-width multiplier.
  const std::size_t half = std::max<std::size_t>(4, rs1.size() / 2);
  std::vector<Literal> mul_acc(2 * half, kLitFalse);
  for (std::size_t row = 0; row < half; ++row) {
    std::vector<Literal> partial(2 * half, kLitFalse);
    for (std::size_t col = 0; col < half; ++col) {
      partial[row + col] = aig.and_of(rs1[col], rs2[row]);
    }
    mul_acc = ripple_add(aig, mul_acc, partial, kLitFalse).sum;
    mul_acc.resize(2 * half, kLitFalse);
  }
  mul_acc.resize(rs1.size(), kLitFalse);

  // Decode/control random logic conditions the writeback.
  std::vector<Literal> control_support = opcode;
  control_support.push_back(sum.carry);
  control_support.push_back(diff.carry);
  const auto control = layered_random(aig, control_support, 4, 16, rng);

  // Writeback select tree.
  const auto sel_arith = mux_vector(aig, opcode[0], diff.sum, sum.sum);
  const auto sel_logic = mux_vector(aig, opcode[0], logic_xor, logic_and);
  const auto sel_shift_mul = mux_vector(aig, opcode[0], mul_acc, rotated);
  const auto sel_01 = mux_vector(aig, opcode[1], sel_logic, sel_arith);
  const auto sel_23 = mux_vector(aig, opcode[1], sel_shift_mul, sel_arith);
  auto writeback = mux_vector(aig, opcode[2], sel_23, sel_01);
  // Control gating.
  for (std::size_t i = 0; i < writeback.size(); ++i) {
    writeback[i] =
        aig.and_of(writeback[i], aig.or_of(control[i % control.size()],
                                           opcode[3]));
  }
  add_output_vector(aig, writeback);
  aig.add_output(sum.carry);
  aig.add_output(diff.carry);
  for (std::size_t i = 0; i < 4 && i < control.size(); ++i) {
    aig.add_output(control[i]);
  }
  return aig;
}

// ---- dispatch -----------------------------------------------------------------

Aig generate(const BenchmarkSpec& spec) {
  const int n = spec.size;
  if (spec.family == "adder") return gen_adder(n);
  if (spec.family == "multiplier") return gen_multiplier(n);
  if (spec.family == "shifter") return gen_shifter(n);
  if (spec.family == "alu") return gen_alu(n);
  if (spec.family == "max") return gen_max(n);
  if (spec.family == "comparator") return gen_comparator(n);
  if (spec.family == "parity") return gen_parity(n);
  if (spec.family == "voter") return gen_voter(n);
  if (spec.family == "decoder") return gen_decoder(n);
  if (spec.family == "encoder") return gen_encoder(n);
  if (spec.family == "arbiter") return gen_arbiter(n);
  if (spec.family == "cavlc") return gen_cavlc(n, spec.seed);
  if (spec.family == "i2c") return gen_i2c(n, spec.seed);
  if (spec.family == "mem_ctrl") return gen_mem_ctrl(n, spec.seed);
  if (spec.family == "crossbar") return gen_crossbar(n, 8);
  if (spec.family == "sbox") return gen_sbox(n, spec.seed);
  if (spec.family == "dynamic_node") return gen_dynamic_node(n, 16, spec.seed);
  if (spec.family == "sparc_core") return gen_sparc_core(n, spec.seed);
  throw std::invalid_argument("unknown benchmark family: " + spec.family);
}

}  // namespace edacloud::workloads
