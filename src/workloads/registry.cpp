#include "workloads/registry.hpp"

namespace edacloud::workloads {

const std::vector<FamilyInfo>& families() {
  static const std::vector<FamilyInfo> kFamilies = {
      {"adder", false, {16, 32, 64, 128}, 64},
      {"multiplier", false, {8, 12, 16, 24}, 24},
      {"shifter", false, {4, 5, 6, 7}, 6},
      {"alu", false, {8, 16, 32, 48}, 32},
      {"max", false, {8, 16, 32, 64}, 32},
      {"comparator", false, {16, 32, 64, 128}, 64},
      {"parity", false, {32, 64, 128, 256}, 128},
      {"voter", false, {15, 25, 41, 63}, 41},
      {"decoder", false, {5, 6, 7, 8}, 7},
      {"encoder", false, {16, 32, 64, 128}, 64},
      {"arbiter", false, {16, 32, 64, 128}, 64},
      {"cavlc", true, {8, 16, 28, 40}, 28},
      {"i2c", true, {8, 16, 28, 40}, 28},
      {"mem_ctrl", true, {2, 4, 6, 8}, 6},
      {"crossbar", false, {4, 6, 8, 12}, 8},
      {"sbox", true, {2, 4, 8, 12}, 8},
      {"dynamic_node", true, {3, 4, 5, 6}, 5},
      {"sparc_core", true, {8, 12, 16, 24}, 32},
  };
  return kFamilies;
}

std::vector<BenchmarkSpec> corpus_specs(std::size_t max_designs) {
  std::vector<BenchmarkSpec> specs;
  for (const FamilyInfo& family : families()) {
    for (std::size_t i = 0; i < family.corpus_sizes.size(); ++i) {
      BenchmarkSpec spec;
      spec.family = family.name;
      spec.size = family.corpus_sizes[i];
      // Distinct seeds give randomized families structural diversity even
      // at the same size parameter.
      spec.seed = 0x1000 + i * 7 + 1;
      specs.push_back(spec);
    }
  }
  if (max_designs != 0 && specs.size() > max_designs) {
    specs.resize(max_designs);
  }
  return specs;
}

std::vector<NamedDesign> characterization_designs() {
  // Ordered smallest to largest (#instances), mirroring Fig. 3's x-axis.
  return {
      {"dynamic_node", {"dynamic_node", 4, 21}},
      {"decoder", {"decoder", 6, 22}},
      {"aes", {"sbox", 3, 23}},
      {"alu", {"alu", 32, 24}},
      {"mem_ctrl", {"mem_ctrl", 8, 25}},
      {"sparc_core", {"sparc_core", 48, 26}},
  };
}

NamedDesign flagship_design() {
  return {"sparc_core", {"sparc_core", 48, 26}};
}

}  // namespace edacloud::workloads
