#pragma once
// Benchmark registry: the 18 families standing in for the paper's EPFL +
// OpenCores suite, the size ladders used to build the 330-netlist corpus,
// and the named characterization designs of Fig. 3 (dynamic_node smallest,
// sparc_core largest).

#include <string>
#include <vector>

#include "workloads/generators.hpp"

namespace edacloud::workloads {

struct FamilyInfo {
  std::string name;
  bool randomized = false;       // generator consumes the seed
  std::vector<int> corpus_sizes; // sizes contributing to the ML corpus
  int characterization_size = 0; // size used in characterization runs
};

/// The 18 benchmark families (fixed order, deterministic).
const std::vector<FamilyInfo>& families();

/// Corpus base specs: family x size (x seed for randomized families).
/// These are the unique *designs*; the synthesis recipes multiply them
/// into unique *netlists* (DatasetBuilder caps the total at `max_designs`).
std::vector<BenchmarkSpec> corpus_specs(std::size_t max_designs = 0);

/// Named designs for the Fig. 3 routing-scalability experiment, ordered
/// smallest to largest.
struct NamedDesign {
  std::string name;
  BenchmarkSpec spec;
};
std::vector<NamedDesign> characterization_designs();

/// The flagship design used in Fig. 2 / Table I (sparc_core analog).
NamedDesign flagship_design();

}  // namespace edacloud::workloads
