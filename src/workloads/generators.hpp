#pragma once
// Parametric benchmark-circuit generators. These stand in for the paper's
// EPFL suite, OpenCores designs and OpenPiton blocks (see DESIGN.md):
// each family produces the same structural *class* of logic (arithmetic-
// dense, control-dense, memory/mux-like) that the originals exhibit, with
// deterministic seeding so every experiment is reproducible.
//
// Every generator returns an AIG; the synthesis module maps AIGs to
// gate-level netlists with different optimization recipes to create the
// 330-netlist corpus of §IV.

#include <cstdint>
#include <string>
#include <vector>

#include "nl/aig.hpp"

namespace edacloud::workloads {

/// Identifies one concrete benchmark instance.
struct BenchmarkSpec {
  std::string family;      // one of families() below
  int size = 8;            // family-specific scale (bit width / port count)
  std::uint64_t seed = 1;  // random-structure families only
};

/// Generate the AIG for a spec. Throws std::invalid_argument on an unknown
/// family or non-positive size.
nl::Aig generate(const BenchmarkSpec& spec);

// ---- arithmetic-dense families (EPFL-arithmetic analogs) -------------------
nl::Aig gen_adder(int width);             // ripple-carry adder
nl::Aig gen_multiplier(int width);        // array multiplier
nl::Aig gen_shifter(int width_log2);      // barrel shifter
nl::Aig gen_alu(int width);               // add/sub/and/or/xor/mux ALU
nl::Aig gen_max(int width);               // 4-operand unsigned max
nl::Aig gen_comparator(int width);        // equality + magnitude flags
nl::Aig gen_parity(int width);            // xor tree
nl::Aig gen_voter(int inputs);            // majority of N inputs

// ---- control-dense families (EPFL-control / OpenCores analogs) -------------
nl::Aig gen_decoder(int address_bits);    // n -> 2^n one-hot
nl::Aig gen_encoder(int inputs);          // priority encoder
nl::Aig gen_arbiter(int requesters);      // fixed-priority arbiter chain
nl::Aig gen_cavlc(int scale, std::uint64_t seed);   // random SOP control
nl::Aig gen_i2c(int scale, std::uint64_t seed);     // sparse FSM next-state
nl::Aig gen_mem_ctrl(int ports, std::uint64_t seed);// wide mux + control

// ---- datapath/mux-heavy families -------------------------------------------
nl::Aig gen_crossbar(int ports, int width);
nl::Aig gen_sbox(int copies, std::uint64_t seed);   // AES-round-like S-boxes

// ---- OpenPiton analogs ------------------------------------------------------
nl::Aig gen_dynamic_node(int ports, int width, std::uint64_t seed);
nl::Aig gen_sparc_core(int scale, std::uint64_t seed);

}  // namespace edacloud::workloads
