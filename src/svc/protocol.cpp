#include "svc/protocol.hpp"

#include <cmath>
#include <initializer_list>

#include "workloads/registry.hpp"

namespace edacloud::svc {

namespace {

bool known_family(const std::string& name) {
  for (const auto& info : workloads::families()) {
    if (info.name == name) return true;
  }
  return false;
}

/// Pull a positive integer member; false (with message) on bad shape.
bool require_size(const JsonValue& value, ParsedRequest& out) {
  const double size = value.number_or("size", -1.0);
  if (size < 1.0 || size != std::floor(size) || size > 1e9) {
    out.error = "field 'size' must be a positive integer";
    return false;
  }
  out.request.size = static_cast<int>(size);
  return true;
}

/// Strict member-set validation: any field outside `allowed` (plus the
/// common type/id/deadline_ms trio) fails the parse with a stable
/// bad_request message naming the offender. Catches client typos that
/// would otherwise be silently ignored (the svc_test satellite gap).
bool reject_unknown_fields(const JsonValue& value,
                           std::initializer_list<const char*> allowed,
                           ParsedRequest& out) {
  for (const auto& [key, member] : value.members()) {
    if (key == "type" || key == "id" || key == "deadline_ms") continue;
    bool known = false;
    for (const char* name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      out.error = "unknown field '" + key + "'";
      return false;
    }
  }
  return true;
}

/// Pull an integer member in [lo, hi] into *slot (keeping its default when
/// absent); false (with message) on bad shape or range.
bool optional_int_in(const JsonValue& value, const char* name, double lo,
                     double hi, int* slot, ParsedRequest& out) {
  if (value.find(name) == nullptr) return true;
  const double raw = value.number_or(name, lo - 1.0);
  if (raw < lo || raw > hi || raw != std::floor(raw)) {
    out.error = "field '" + std::string(name) + "' must be an integer in [" +
                std::to_string(static_cast<long long>(lo)) + ", " +
                std::to_string(static_cast<long long>(hi)) + "]";
    return false;
  }
  *slot = static_cast<int>(raw);
  return true;
}

bool require_design(const JsonValue& value, ParsedRequest& out) {
  out.request.family = value.string_or("family", "");
  if (out.request.family.empty()) {
    out.error = "field 'family' is required";
    return false;
  }
  if (!known_family(out.request.family)) {
    out.error = "unknown family '" + out.request.family + "'";
    return false;
  }
  return require_size(value, out);
}

}  // namespace

const char* to_string(RequestType type) {
  switch (type) {
    case RequestType::kCharacterize:
      return "characterize";
    case RequestType::kPredict:
      return "predict";
    case RequestType::kOptimize:
      return "optimize";
    case RequestType::kRunStage:
      return "run-stage";
    case RequestType::kEcho:
      return "echo";
    case RequestType::kTune:
      return "tune";
  }
  return "?";
}

bool job_from_name(const std::string& name, core::JobKind* out) {
  if (name == "synthesis" || name == "synth") {
    *out = core::JobKind::kSynthesis;
  } else if (name == "placement" || name == "place") {
    *out = core::JobKind::kPlacement;
  } else if (name == "routing" || name == "route") {
    *out = core::JobKind::kRouting;
  } else if (name == "sta") {
    *out = core::JobKind::kSta;
  } else {
    return false;
  }
  return true;
}

ParsedRequest parse_request(const JsonValue& value) {
  ParsedRequest out;
  if (!value.is_object()) {
    out.error = "request must be a JSON object";
    return out;
  }
  // Salvage the id first so even malformed requests get correlated replies.
  const double id = value.number_or("id", 0.0);
  if (id >= 0.0 && id == std::floor(id)) {
    out.request.id = static_cast<std::uint64_t>(id);
  }
  out.request.deadline_ms = value.number_or("deadline_ms", 0.0);
  if (out.request.deadline_ms < 0.0) {
    out.error = "field 'deadline_ms' must be >= 0";
    return out;
  }

  const std::string type = value.string_or("type", "");
  if (type == "characterize") {
    out.request.type = RequestType::kCharacterize;
    if (!reject_unknown_fields(value, {"family", "size"}, out)) return out;
    if (!require_design(value, out)) return out;
  } else if (type == "predict") {
    out.request.type = RequestType::kPredict;
    if (!reject_unknown_fields(value, {"family", "size", "job"}, out)) {
      return out;
    }
    if (!require_design(value, out)) return out;
    const std::string job = value.string_or("job", "");
    if (!job_from_name(job, &out.request.job)) {
      out.error = "field 'job' must be synthesis|placement|routing|sta";
      return out;
    }
  } else if (type == "optimize") {
    out.request.type = RequestType::kOptimize;
    if (!reject_unknown_fields(value, {"family", "size", "deadline_s", "spot"},
                               out)) {
      return out;
    }
    if (!require_design(value, out)) return out;
    out.request.deadline_seconds = value.number_or("deadline_s", 0.0);
    if (out.request.deadline_seconds <= 0.0) {
      out.error = "field 'deadline_s' must be > 0";
      return out;
    }
    out.request.spot = value.bool_or("spot", false);
  } else if (type == "run-stage") {
    out.request.type = RequestType::kRunStage;
    if (!reject_unknown_fields(value, {"family", "size", "stage"}, out)) {
      return out;
    }
    if (!require_design(value, out)) return out;
    const std::string stage = value.string_or("stage", "");
    if (!job_from_name(stage, &out.request.stage)) {
      out.error = "field 'stage' must be synth|place|route|sta";
      return out;
    }
  } else if (type == "tune") {
    out.request.type = RequestType::kTune;
    if (!reject_unknown_fields(
            value,
            {"family", "size", "deadline_s", "spot", "samples", "seed",
             "batch"},
            out)) {
      return out;
    }
    if (!require_design(value, out)) return out;
    out.request.deadline_seconds = value.number_or("deadline_s", 0.0);
    if (out.request.deadline_seconds <= 0.0) {
      out.error = "field 'deadline_s' must be > 0";
      return out;
    }
    out.request.spot = value.bool_or("spot", false);
    if (!optional_int_in(value, "samples", 0.0, 512.0, &out.request.samples,
                         out)) {
      return out;
    }
    if (!optional_int_in(value, "batch", 1.0, 4096.0, &out.request.batch,
                         out)) {
      return out;
    }
    if (value.find("seed") != nullptr) {
      const double seed = value.number_or("seed", -1.0);
      if (seed < 0.0 || seed != std::floor(seed) || seed > 1e15) {
        out.error = "field 'seed' must be a non-negative integer";
        return out;
      }
      out.request.tune_seed = static_cast<std::uint64_t>(seed);
    }
  } else if (type == "echo") {
    out.request.type = RequestType::kEcho;
    if (!reject_unknown_fields(value, {"payload", "sleep_ms"}, out)) {
      return out;
    }
    out.request.payload = value.string_or("payload", "");
    const double sleep_ms = value.number_or("sleep_ms", 0.0);
    if (sleep_ms < 0.0 || sleep_ms > 60000.0) {
      out.error = "field 'sleep_ms' must be in [0, 60000]";
      return out;
    }
    out.request.sleep_ms = static_cast<int>(sleep_ms);
  } else if (type.empty()) {
    out.error = "field 'type' is required";
    return out;
  } else {
    out.error = "unknown request type '" + type + "'";
    out.code = kErrUnknownType;
    return out;
  }
  out.ok = true;
  return out;
}

std::string error_response(std::uint64_t id, const char* code,
                           const std::string& message) {
  JsonValue response = JsonValue::object();
  response.set("id", JsonValue::of(id));
  response.set("ok", JsonValue::of(false));
  response.set("error", JsonValue::of(code));
  response.set("message", JsonValue::of(message));
  return response.dump();
}

JsonValue response_header(const Request& request) {
  JsonValue response = JsonValue::object();
  response.set("id", JsonValue::of(request.id));
  response.set("ok", JsonValue::of(true));
  response.set("type", JsonValue::of(to_string(request.type)));
  return response;
}

}  // namespace edacloud::svc
