#include "svc/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace edacloud::svc {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
    decoder_ = FrameDecoder();
  }
  return *this;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Client::connect(const std::string& host, int port, std::string* error) {
  const auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + std::strerror(errno);
    }
    close();
    return false;
  };
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return fail("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("connect");
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

bool Client::send(const std::string& payload) {
  if (fd_ < 0) return false;
  const std::string frame = encode_frame(payload);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t n =
        ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::recv(std::string* payload) {
  if (fd_ < 0) return false;
  char buf[64 * 1024];
  while (true) {
    if (decoder_.next(payload)) return true;
    if (decoder_.error()) return false;
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return false;  // server closed the connection
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
}

bool Client::roundtrip(const std::string& request, std::string* response) {
  return send(request) && recv(response);
}

bool Client::drain(std::vector<std::string>* frames) {
  if (fd_ < 0) return false;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    if (n == 0) return false;  // server closed the connection
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    decoder_.feed(buf, static_cast<std::size_t>(n));
  }
  std::string frame;
  while (decoder_.next(&frame)) {
    frames->push_back(std::move(frame));
    frame.clear();
  }
  return !decoder_.error();
}

}  // namespace edacloud::svc
