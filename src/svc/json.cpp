#include "svc/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace edacloud::svc {

namespace {

/// Integral values print without a fraction; everything else as %.17g so a
/// parse -> dump round trip preserves the double exactly.
void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "0";  // JSON has no NaN/Inf; serialize as 0 rather than fail
    return;
  }
  char buf[40];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", value);
  }
  out += buf;
}

void append_escaped(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult parse() {
    JsonParseResult result;
    skip_ws();
    if (!parse_value(result.value, &result.error)) return result;
    skip_ws();
    if (pos_ != text_.size()) {
      result.error = "trailing characters after JSON document";
      return result;
    }
    result.ok = true;
    return result;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool fail(std::string* error, const std::string& message) {
    char where[32];
    std::snprintf(where, sizeof(where), " at offset %zu", pos_);
    *error = message + where;
    return false;
  }

  bool parse_value(JsonValue& out, std::string* error) {
    if (++depth_ > kMaxDepth) return fail(error, "nesting too deep");
    const bool ok = parse_value_inner(out, error);
    --depth_;
    return ok;
  }

  bool parse_value_inner(JsonValue& out, std::string* error) {
    if (pos_ >= text_.size()) return fail(error, "unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return parse_object(out, error);
      case '[':
        return parse_array(out, error);
      case '"': {
        std::string s;
        if (!parse_string(s, error)) return false;
        out = JsonValue::of(std::move(s));
        return true;
      }
      case 't':
        return parse_literal("true", JsonValue::of(true), out, error);
      case 'f':
        return parse_literal("false", JsonValue::of(false), out, error);
      case 'n':
        return parse_literal("null", JsonValue::null(), out, error);
      default:
        return parse_number(out, error);
    }
  }

  bool parse_literal(std::string_view word, JsonValue value, JsonValue& out,
                     std::string* error) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail(error, "invalid literal");
    }
    pos_ += word.size();
    out = std::move(value);
    return true;
  }

  bool parse_number(JsonValue& out, std::string* error) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail(error, "invalid value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      pos_ = start;
      return fail(error, "invalid number");
    }
    out = JsonValue::of(value);
    return true;
  }

  bool parse_string(std::string& out, std::string* error) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) break;
        const char esc = text_[pos_ + 1];
        switch (esc) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 5 >= text_.size()) {
              return fail(error, "truncated \\u escape");
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_ + 2 + static_cast<std::size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return fail(error, "invalid \\u escape");
              }
            }
            // Basic-multilingual-plane only; encode as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            pos_ += 4;
            break;
          }
          default:
            return fail(error, "invalid escape");
        }
        pos_ += 2;
        continue;
      }
      out += c;
      ++pos_;
    }
    return fail(error, "unterminated string");
  }

  bool parse_array(JsonValue& out, std::string* error) {
    out = JsonValue::array();
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      skip_ws();
      if (!parse_value(item, error)) return false;
      out.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return fail(error, "unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail(error, "expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out, std::string* error) {
    out = JsonValue::object();
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return fail(error, "expected object key");
      }
      std::string key;
      if (!parse_string(key, error)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return fail(error, "expected ':'");
      }
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(value, error)) return false;
      out.set(key, std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail(error, "unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail(error, "expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue& JsonValue::set(std::string_view key, JsonValue value) {
  type_ = Type::kObject;
  for (auto& [name, existing] : members_) {
    if (name == key) {
      existing = std::move(value);
      return existing;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
  return members_.back().second;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr && member->is_number() ? member->number_ : fallback;
}

std::string JsonValue::string_or(std::string_view key,
                                 std::string_view fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr && member->is_string() ? member->string_
                                                  : std::string(fallback);
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* member = find(key);
  return member != nullptr && member->is_bool() ? member->bool_ : fallback;
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

void JsonValue::dump_to(std::string& out) const {
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      append_number(out, number_);
      break;
    case Type::kString:
      append_escaped(out, string_);
      break;
    case Type::kArray:
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        items_[i].dump_to(out);
      }
      out += ']';
      break;
    case Type::kObject:
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        append_escaped(out, members_[i].first);
        out += ':';
        members_[i].second.dump_to(out);
      }
      out += '}';
      break;
  }
}

JsonParseResult parse_json(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace edacloud::svc
