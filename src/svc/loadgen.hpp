#pragma once
// Load-generation harness for the job server, in the mutated idiom: a
// closed-loop mode (each connection keeps exactly one request in flight —
// measures service latency under self-limiting load) and an open-loop mode
// (requests depart on a Poisson schedule at a target aggregate QPS,
// independent of response arrival — measures latency the way real clients
// experience it, coordinated-omission-free).
//
// Determinism contract: the request stream is a pure function of
// (seed, request id) — which connection or wall-clock instant carries a
// request never changes its content. The export_json() report therefore
// contains only schedule-independent fields (counts and an order-canonical
// digest over (id, response) pairs), so two same-seed runs against
// deterministic servers produce byte-identical exports — the property
// scripts/check.sh cmp-checks across server thread counts.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/histogram.hpp"

namespace edacloud::svc {

enum class LoadMode { kClosed, kOpen };

struct LoadgenConfig {
  std::string host = "127.0.0.1";
  int port = 0;
  LoadMode mode = LoadMode::kClosed;
  /// Open-loop aggregate target, split evenly across connections.
  double qps = 50.0;
  int connections = 4;
  /// Fixed request budget (the deterministic CI mode). 0 = run by time.
  std::uint64_t requests = 0;
  /// Measured window when requests == 0.
  double duration_s = 5.0;
  /// Time-mode only: latencies recorded before this cutoff are discarded
  /// (connections ramp, caches warm). Counts/digest still include them.
  double warmup_s = 1.0;
  std::uint64_t seed = 1;
  /// Request mix: "predict" | "predict-heavy" | "echo" | "mixed" (see
  /// make_request(); predict-heavy is ~90% predicts over a wider design
  /// pool, built to stress server-side micro-batching).
  std::string mix = "predict";
  /// Attached to every request when > 0.
  double deadline_ms = 0.0;
};

struct LoadgenReport {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;           // ok:false replies
  std::uint64_t transport_errors = 0; // lost connections / missing replies
  std::array<std::uint64_t, 5> by_type{};  // indexed by RequestType
  double elapsed_s = 0.0;
  double throughput_rps = 0.0;
  util::Histogram::Summary latency_ms{};
  /// FNV-1a over (id, response payload) folded in ascending id order.
  std::uint64_t digest = 0;

  /// Deterministic subset (counts + digest, no timings) — what check.sh
  /// byte-compares between same-seed runs.
  [[nodiscard]] std::string export_json() const;
  /// Human-facing table with throughput and the latency ladder.
  [[nodiscard]] std::string render() const;
};

/// The request mixes make_request understands, in presentation order — the
/// vocabulary CLI errors enumerate (mirrors sched::traffic_mix_names for
/// the fleet-simulation seam).
[[nodiscard]] const std::vector<std::string>& loadgen_mix_names();

/// The request payload for a given id under `mix` — pure function of
/// (seed, id), exposed for tests.
[[nodiscard]] std::string make_request(const LoadgenConfig& config,
                                       std::uint64_t id);

/// Run the configured load against host:port. Throws std::runtime_error if
/// no connection can be established.
[[nodiscard]] LoadgenReport run_loadgen(const LoadgenConfig& config);

}  // namespace edacloud::svc
