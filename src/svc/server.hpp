#pragma once
// The job server: a poll()-readiness I/O loop (accept, frame reassembly,
// buffered writes) in front of a bounded worker pool that executes
// svc::Service handlers. Design points, per docs/SERVING.md:
//
//   * Bounded everywhere. At most `max_connections` sockets (excess
//     accepts get one `overloaded` frame and an immediate close) and at
//     most `max_queue` dispatched-but-unfinished requests — a request that
//     would exceed the queue is answered `overloaded` from the I/O thread
//     without ever touching a worker. The server never blocks on a slow
//     client either: responses buffer per connection and drain on
//     POLLOUT.
//   * Deadlines at dispatch. A request whose `deadline_ms` elapsed while
//     it sat in the queue is answered `deadline_exceeded` instead of
//     being executed (execution itself is not preempted).
//   * Graceful drain. request_stop() is async-signal-safe (atomic flag +
//     self-pipe write); the loop then stops accepting, lets queued work
//     finish, flushes every write buffer and returns — the SIGINT/SIGTERM
//     path the CLI wires up, asserted by the scripts/check.sh drain leg.
//   * Observability. svc/queue_depth is sampled into the global registry
//     from the I/O thread; per-request svc/<type> spans come from
//     Service::handle; ServerStats counters export after the run.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "svc/service.hpp"
#include "svc/wire.hpp"

namespace edacloud::svc {

struct ServerConfig {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = ephemeral; port() reports the bound port
  int threads = 2;
  int max_connections = 64;
  std::size_t max_queue = 128;
  /// Default per-request deadline applied when a request carries none
  /// (0 = unlimited).
  double default_deadline_ms = 0.0;
  /// Micro-batching: a worker that pops a predict request greedily takes
  /// up to batch_max-1 more predict items already queued (skipping over
  /// other types) and executes them as ONE merged GCN forward pass via
  /// Service::handle_predict_batch. <= 1 disables. Responses are
  /// byte-identical to unbatched execution — batching trades nothing but
  /// scheduling.
  int batch_max = 8;
  /// With batch_max > 1: how long a worker holding a partial predict batch
  /// waits for stragglers before executing. 0 (default) never waits —
  /// batching then only amortizes queues that are already deep, adding
  /// zero latency. Raising it trades p50 latency for throughput.
  double batch_linger_ms = 0.0;
};

struct ServerStats {
  std::atomic<std::uint64_t> connections_accepted{0};
  std::atomic<std::uint64_t> connections_rejected{0};
  std::atomic<std::uint64_t> requests_dispatched{0};
  std::atomic<std::uint64_t> requests_completed{0};
  std::atomic<std::uint64_t> overload_rejections{0};
  std::atomic<std::uint64_t> deadline_rejections{0};
  std::atomic<std::uint64_t> protocol_errors{0};
  std::atomic<std::uint64_t> batches_executed{0};  // merged batches (>= 2)
  std::atomic<std::uint64_t> batched_requests{0};  // requests inside them

  void export_to(obs::Registry& registry) const;
};

class JobServer {
 public:
  JobServer(Service& service, ServerConfig config);
  ~JobServer();
  JobServer(const JobServer&) = delete;
  JobServer& operator=(const JobServer&) = delete;

  /// Bind + listen. False (with *error filled) on failure; the bound port
  /// is available from port() afterwards.
  [[nodiscard]] bool listen(std::string* error);
  [[nodiscard]] int port() const { return port_; }

  /// Serve until request_stop(); drains and tears down before returning.
  void run();

  /// Async-signal-safe stop: atomic store plus a self-pipe write. Safe to
  /// call from any thread or from a signal handler, repeatedly.
  void request_stop();

  // ---- test/bench conveniences -------------------------------------------
  /// run() on a background thread (listen() must have succeeded).
  void start();
  /// request_stop() + join the background thread.
  void stop_and_join();

  [[nodiscard]] const ServerStats& stats() const { return stats_; }

 private:
  struct Connection {
    int fd = -1;
    FrameDecoder decoder;
    std::string outbox;        // encoded frames awaiting write
    std::size_t out_offset = 0;
    bool close_after_flush = false;
    std::uint64_t inflight = 0;  // requests dispatched, not yet answered
  };

  struct WorkItem {
    std::uint64_t conn_id = 0;
    Request request;  // parsed on the I/O thread; malformed frames never
                      // reach a worker
    std::chrono::steady_clock::time_point deadline{};  // epoch = none
    bool has_deadline = false;
  };

  void worker_loop();
  /// Grow `batch` (holding one predict item) from queued predict items, up
  /// to batch_max, lingering up to batch_linger_ms. Called with
  /// queue_mutex_ held via `lock`; re-notifies when it observes work it
  /// cannot take so lingering never starves other workers.
  void collect_predict_batch(std::unique_lock<std::mutex>& lock,
                             std::vector<WorkItem>& batch);
  /// Deadline-check, execute (merged when >= 2 live predicts) and answer
  /// every item; per-item accounting matches the single-item path.
  void execute_batch(std::vector<WorkItem>& batch);
  void io_loop();
  void accept_ready();
  void read_ready(std::uint64_t conn_id);
  void write_ready(std::uint64_t conn_id);
  void dispatch_frame(std::uint64_t conn_id, std::string payload);
  /// Append an encoded response to conn's outbox (I/O thread or worker;
  /// takes conns_mutex_).
  void enqueue_response(std::uint64_t conn_id, const std::string& payload);
  void close_connection(std::uint64_t conn_id);
  void wake();

  Service& service_;
  ServerConfig config_;
  ServerStats stats_;

  int listen_fd_ = -1;
  int port_ = 0;
  int wake_pipe_[2] = {-1, -1};
  std::atomic<bool> stop_requested_{false};

  std::mutex conns_mutex_;
  std::map<std::uint64_t, Connection> conns_;
  std::uint64_t next_conn_id_ = 1;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;
  bool workers_stop_ = false;
  std::atomic<std::uint64_t> inflight_total_{0};  // queued + executing
  std::vector<std::thread> workers_;

  std::thread run_thread_;  // start()/stop_and_join()
};

}  // namespace edacloud::svc
