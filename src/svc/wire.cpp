#include "svc/wire.hpp"

#include <cstring>

namespace edacloud::svc {

std::string encode_frame(std::string_view payload) {
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::string frame;
  frame.reserve(payload.size() + 4);
  frame += static_cast<char>((length >> 24) & 0xFF);
  frame += static_cast<char>((length >> 16) & 0xFF);
  frame += static_cast<char>((length >> 8) & 0xFF);
  frame += static_cast<char>(length & 0xFF);
  frame.append(payload.data(), payload.size());
  return frame;
}

void FrameDecoder::feed(const char* data, std::size_t length) {
  if (oversized_) return;
  buffer_.append(data, length);
}

bool FrameDecoder::next(std::string* out) {
  if (oversized_ || buffer_.size() < 4) return false;
  const auto byte = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[i]));
  };
  const std::uint32_t length =
      (byte(0) << 24) | (byte(1) << 16) | (byte(2) << 8) | byte(3);
  if (length > kMaxFramePayload) {
    oversized_ = true;
    rejected_length_ = length;
    buffer_.clear();
    return false;
  }
  if (buffer_.size() < 4u + length) return false;  // truncated: wait for more
  out->assign(buffer_, 4, length);
  buffer_.erase(0, 4u + length);
  return true;
}

}  // namespace edacloud::svc
