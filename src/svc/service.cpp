#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "cloud/savings.hpp"
#include "core/dataset.hpp"
#include "core/stage.hpp"
#include "nl/star_graph.hpp"
#include "obs/trace.hpp"
#include "synth/engine.hpp"
#include "tune/tuner.hpp"
#include "util/log.hpp"
#include "workloads/registry.hpp"

namespace edacloud::svc {

namespace {

JsonValue runtime_array(const std::array<double, 4>& runtimes) {
  JsonValue out = JsonValue::array();
  for (const double r : runtimes) out.push_back(JsonValue::of(r));
  return out;
}

}  // namespace

void ServiceStats::export_to(obs::Registry& registry) const {
  registry.counter("svc.requests").add(requests.load());
  registry.counter("svc.errors").add(errors.load());
  for (int t = 0; t < kRequestTypeCount; ++t) {
    registry
        .counter("svc.requests_by_type",
                 {{"type", to_string(static_cast<RequestType>(t))}})
        .add(by_type[t].load());
  }
}

Service::Service(ServiceConfig config)
    : config_(config), library_(nl::make_generic_14nm_library()) {
  if (config_.predict_cache_capacity > 0) {
    predict_cache_ = std::make_unique<ml::PredictionCache>(
        config_.predict_cache_capacity);
  }
}

Service::~Service() = default;

void Service::initialize() {
  if (trained_) return;
  // First N families at their smallest corpus size — tiny designs, so the
  // instrumented corpus flows and the GCN epochs finish in seconds.
  std::vector<workloads::BenchmarkSpec> specs;
  for (const auto& info : workloads::families()) {
    if (specs.size() >= config_.train_designs) break;
    workloads::BenchmarkSpec spec;
    spec.family = info.name;
    spec.size = info.corpus_sizes.empty() ? 32 : info.corpus_sizes.front();
    spec.seed = config_.design_seed;
    specs.push_back(spec);
  }

  core::DatasetOptions dataset_options;
  dataset_options.max_recipes = std::max<std::size_t>(1, config_.train_recipes);
  dataset_options.max_netlists = specs.size() * dataset_options.max_recipes;
  const core::Dataset dataset =
      core::DatasetBuilder(library_, dataset_options).build(specs);

  core::PredictorOptions predictor_options;
  predictor_options.gcn = ml::GcnConfig::fast();
  predictor_options.gcn.epochs = config_.train_epochs;
  predictor_ = core::RuntimePredictor(predictor_options);
  predictor_.train(dataset);
  trained_ = true;
  EDACLOUD_INFO << "svc: predictor trained on " << dataset.netlist_count
                << " netlists from " << dataset.design_count << " designs";
}

std::string Service::handle_payload(const std::string& payload) {
  const JsonParseResult parsed = parse_json(payload);
  if (!parsed.ok) {
    return error_response(0, kErrBadRequest, "invalid JSON: " + parsed.error);
  }
  const ParsedRequest request = parse_request(parsed.value);
  if (!request.ok) {
    return error_response(request.request.id, request.code, request.error);
  }
  return handle(request.request);
}

std::string Service::handle(const Request& request) {
  stats_.requests.fetch_add(1, std::memory_order_relaxed);
  stats_.by_type[static_cast<int>(request.type)].fetch_add(
      1, std::memory_order_relaxed);
  const std::string span_name = std::string("svc/") + to_string(request.type);
  TRACE_SPAN(span_name, "svc");
  try {
    JsonValue response = response_header(request);
    JsonValue payload;
    switch (request.type) {
      case RequestType::kCharacterize:
        payload = do_characterize(request);
        break;
      case RequestType::kPredict:
        payload = do_predict(request);
        break;
      case RequestType::kOptimize:
        payload = do_optimize(request);
        break;
      case RequestType::kRunStage:
        payload = do_run_stage(request);
        break;
      case RequestType::kEcho:
        payload = do_echo(request);
        break;
      case RequestType::kTune:
        payload = do_tune(request);
        break;
    }
    response.set("payload", std::move(payload));
    return response.dump();
  } catch (const std::exception& e) {
    stats_.errors.fetch_add(1, std::memory_order_relaxed);
    return error_response(request.id, kErrInternal, e.what());
  }
}

nl::Aig Service::make_design(const Request& request) const {
  workloads::BenchmarkSpec spec;
  spec.family = request.family;
  spec.size = request.size;
  spec.seed = config_.design_seed;
  return workloads::generate(spec);
}

Service::CachedSample Service::sample_for(const Request& request,
                                          core::JobKind job) {
  const bool aig_side = job == core::JobKind::kSynthesis;
  const std::string key =
      request.family + "/" + std::to_string(request.size);
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto& cache = aig_side ? aig_samples_ : netlist_samples_;
    const auto it = cache.find(key);
    if (it != cache.end()) return it->second;
  }
  // Compute outside the lock (concurrent misses may duplicate work once;
  // first insertion wins so every caller sees one canonical sample). The
  // content key is memoized alongside so the prediction-cache hot path
  // never re-hashes the feature matrix.
  const nl::Aig design = make_design(request);
  CachedSample entry;
  if (aig_side) {
    entry.sample = std::make_shared<const ml::GraphSample>(
        ml::sample_from_graph(nl::graph_from_aig(design)));
  } else {
    synth::SynthesisEngine engine(library_);
    const auto mapped = engine.synthesize(design, synth::default_recipe());
    entry.sample = std::make_shared<const ml::GraphSample>(
        ml::sample_from_graph(nl::graph_from_netlist(mapped.netlist)));
  }
  entry.key = ml::content_key(*entry.sample);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto& cache = aig_side ? aig_samples_ : netlist_samples_;
  const auto [it, inserted] = cache.emplace(key, std::move(entry));
  return it->second;
}

std::array<double, 4> Service::predict_runtimes(core::JobKind job,
                                                const CachedSample& cached) {
  const ml::ContentKey key =
      cached.key.salted(static_cast<std::uint64_t>(job) + 1);
  if (predict_cache_ != nullptr) {
    if (const auto hit = predict_cache_->lookup(key)) return *hit;
  }
  const std::array<double, 4> runtimes =
      predictor_.predict(job, *cached.sample);
  if (predict_cache_ != nullptr) predict_cache_->insert(key, runtimes);
  return runtimes;
}

JsonValue Service::predict_payload(const Request& request,
                                   const std::array<double, 4>& runtimes) {
  JsonValue payload = JsonValue::object();
  payload.set("family", JsonValue::of(request.family));
  payload.set("size", JsonValue::of(request.size));
  payload.set("job", JsonValue::of(core::job_name(request.job)));
  JsonValue vcpus = JsonValue::array();
  for (const int v : {1, 2, 4, 8}) vcpus.push_back(JsonValue::of(v));
  payload.set("vcpus", std::move(vcpus));
  payload.set("runtime_seconds", runtime_array(runtimes));
  return payload;
}

JsonValue Service::do_characterize(const Request& request) {
  const nl::Aig design = make_design(request);
  // Instrumented flows publish into the process-global registry; one at a
  // time (see the class comment).
  std::lock_guard<std::mutex> lock(instrumented_mutex_);
  const core::Characterizer characterizer(library_);
  const core::CharacterizationReport report =
      characterizer.characterize(design);

  JsonValue payload = JsonValue::object();
  payload.set("design", JsonValue::of(report.design_name));
  payload.set("instances", JsonValue::of(
                               static_cast<double>(report.instance_count)));
  JsonValue rows = JsonValue::array();
  for (const auto& row : report.rows) {
    JsonValue entry = JsonValue::object();
    entry.set("job", JsonValue::of(core::job_name(row.job)));
    entry.set("family", JsonValue::of(std::string(perf::to_string(
                            row.family))));
    entry.set("runtime_seconds", runtime_array(row.runtime_seconds));
    entry.set("speedup", runtime_array(row.speedup));
    rows.push_back(std::move(entry));
  }
  payload.set("rows", std::move(rows));
  return payload;
}

JsonValue Service::do_predict(const Request& request) {
  if (!trained_) {
    throw std::runtime_error("predictor not trained (initialize() skipped)");
  }
  const CachedSample cached = sample_for(request, request.job);
  return predict_payload(request, predict_runtimes(request.job, cached));
}

std::vector<std::string> Service::handle_predict_batch(
    const std::vector<Request>& requests) {
  std::vector<std::string> responses(requests.size());
  if (requests.empty()) return responses;
  TRACE_SPAN("svc/predict-batch", "svc");

  // Phase 1: per-request bookkeeping, sample resolution and cache lookup.
  // Failures resolve immediately with the same error bytes handle() emits.
  struct Pending {
    std::size_t index;
    core::JobKind job;
    CachedSample cached;
  };
  std::vector<Pending> misses;
  std::vector<std::array<double, 4>> runtimes(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& request = requests[i];
    if (request.type != RequestType::kPredict) {
      responses[i] = handle(request);  // stats bumped inside
      continue;
    }
    stats_.requests.fetch_add(1, std::memory_order_relaxed);
    stats_.by_type[static_cast<int>(request.type)].fetch_add(
        1, std::memory_order_relaxed);
    if (!trained_) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      responses[i] = error_response(
          request.id, kErrInternal,
          "predictor not trained (initialize() skipped)");
      continue;
    }
    try {
      Pending pending{i, request.job, sample_for(request, request.job)};
      const ml::ContentKey key = pending.cached.key.salted(
          static_cast<std::uint64_t>(request.job) + 1);
      if (predict_cache_ != nullptr) {
        if (const auto hit = predict_cache_->lookup(key)) {
          runtimes[i] = *hit;
          continue;
        }
      }
      misses.push_back(std::move(pending));
    } catch (const std::exception& e) {
      stats_.errors.fetch_add(1, std::memory_order_relaxed);
      responses[i] = error_response(request.id, kErrInternal, e.what());
    }
  }

  // Phase 2: one merged forward pass per job over the misses.
  for (const core::JobKind job : core::kAllJobs) {
    std::vector<const ml::GraphSample*> samples;
    std::vector<ml::ContentKey> keys;
    std::vector<std::size_t> indices;
    for (const Pending& pending : misses) {
      if (pending.job != job) continue;
      samples.push_back(pending.cached.sample.get());
      keys.push_back(pending.cached.key);
      indices.push_back(pending.index);
    }
    if (samples.empty()) continue;
    try {
      const auto batch_out = predictor_.predict_batch(job, samples, &keys);
      for (std::size_t k = 0; k < indices.size(); ++k) {
        runtimes[indices[k]] = batch_out[k];
        if (predict_cache_ != nullptr) {
          predict_cache_->insert(
              keys[k].salted(static_cast<std::uint64_t>(job) + 1),
              batch_out[k]);
        }
      }
    } catch (const std::exception& e) {
      for (const std::size_t index : indices) {
        stats_.errors.fetch_add(1, std::memory_order_relaxed);
        responses[index] =
            error_response(requests[index].id, kErrInternal, e.what());
      }
    }
  }

  // Phase 3: dump responses for everything that resolved to runtimes.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!responses[i].empty()) continue;
    JsonValue response = response_header(requests[i]);
    response.set("payload", predict_payload(requests[i], runtimes[i]));
    responses[i] = response.dump();
  }
  return responses;
}

void Service::export_metrics(obs::Registry& registry) const {
  stats_.export_to(registry);
  if (predict_cache_ != nullptr) {
    predict_cache_->export_to(registry, "svc.predict_cache");
  }
}

JsonValue Service::do_optimize(const Request& request) {
  if (!trained_) {
    throw std::runtime_error("predictor not trained (initialize() skipped)");
  }
  core::RuntimeLadders ladders{};
  for (const core::JobKind job : core::kAllJobs) {
    const CachedSample cached = sample_for(request, job);
    ladders[static_cast<int>(job)] = predict_runtimes(job, cached);
  }
  core::DeploymentOptimizer optimizer;
  if (request.spot) optimizer.enable_spot(cloud::SpotModel{});
  const core::DeploymentPlan plan =
      optimizer.optimize(ladders, request.deadline_seconds);

  JsonValue payload = JsonValue::object();
  payload.set("family", JsonValue::of(request.family));
  payload.set("size", JsonValue::of(request.size));
  payload.set("deadline_s", JsonValue::of(request.deadline_seconds));
  payload.set("feasible", JsonValue::of(plan.feasible));
  if (!plan.feasible) {
    const auto stages = optimizer.build_stages(ladders);
    payload.set("fastest_possible_s",
                JsonValue::of(cloud::fastest_completion_seconds(stages)));
    return payload;
  }
  JsonValue entries = JsonValue::array();
  for (const auto& entry : plan.entries) {
    JsonValue e = JsonValue::object();
    e.set("job", JsonValue::of(core::job_name(entry.job)));
    e.set("family",
          JsonValue::of(std::string(perf::to_string(entry.family))));
    e.set("vcpus", JsonValue::of(entry.vcpus));
    e.set("tier", JsonValue::of(entry.spot ? "spot" : "on-demand"));
    e.set("runtime_s", JsonValue::of(entry.runtime_seconds));
    e.set("cost_usd", JsonValue::of(entry.cost_usd));
    entries.push_back(std::move(e));
  }
  payload.set("entries", std::move(entries));
  payload.set("total_runtime_s", JsonValue::of(plan.total_runtime_seconds));
  payload.set("total_cost_usd", JsonValue::of(plan.total_cost_usd));
  return payload;
}

JsonValue Service::do_run_stage(const Request& request) {
  const nl::Aig design = make_design(request);
  // Engines run serially within a request (threads stay at the global
  // default); parallelism comes from concurrent requests. Results are
  // bit-identical either way (the PR-3 determinism contract).
  core::FlowOptions options;
  core::FlowResult flow;
  flow.design_name = design.name();
  core::StageContext ctx;
  ctx.library = &library_;
  ctx.flow = &flow;
  ctx.tracer = &obs::Tracer::global();
  ctx.metrics = &obs::Registry::global();

  core::StageResult last;
  for (const auto& engine : core::make_flow_engines(options)) {
    last = engine->run(design, ctx);
    if (engine->kind() == request.stage) break;
  }

  JsonValue payload = JsonValue::object();
  payload.set("design", JsonValue::of(flow.design_name));
  payload.set("stage", JsonValue::of(core::job_name(request.stage)));
  JsonValue qor = JsonValue::object();
  for (const auto& item : last.qor) {
    qor.set(item.name, JsonValue::of(item.value));
  }
  payload.set("qor", std::move(qor));
  return payload;
}

JsonValue Service::do_tune(const Request& request) {
  if (!trained_) {
    throw std::runtime_error("predictor not trained (initialize() skipped)");
  }
  const nl::Aig design = make_design(request);
  tune::TunerOptions options;
  options.space.random_samples = static_cast<std::size_t>(request.samples);
  options.space.seed = request.tune_seed;
  options.batch_size = static_cast<std::size_t>(request.batch);
  options.spot = request.spot;
  // The shared prediction cache fronts the tuner's recipe-variant predict
  // stream; tune answers depend only on the request (cache entries hold
  // exactly what the miss path computes), so responses stay byte-identical
  // at any worker count / request interleaving. Cache hit counters are
  // interleaving-dependent and therefore deliberately NOT in the payload.
  tune::RecipeTuner tuner(library_, predictor_, options,
                          predict_cache_.get());
  const tune::TuneResult result =
      tuner.tune(design, request.deadline_seconds);

  const auto plan_json = [](const tune::JointPlan& plan) {
    JsonValue p = JsonValue::object();
    p.set("recipe", JsonValue::of(plan.recipe_key));
    p.set("feasible", JsonValue::of(plan.plan.feasible));
    p.set("runtime_s", JsonValue::of(plan.plan.total_runtime_seconds));
    p.set("cost_usd", JsonValue::of(plan.plan.total_cost_usd));
    p.set("area_um2", JsonValue::of(plan.area_um2));
    JsonValue entries = JsonValue::array();
    for (const auto& entry : plan.plan.entries) {
      JsonValue e = JsonValue::object();
      e.set("job", JsonValue::of(core::job_name(entry.job)));
      e.set("vcpus", JsonValue::of(entry.vcpus));
      e.set("tier", JsonValue::of(entry.spot ? "spot" : "on-demand"));
      e.set("runtime_s", JsonValue::of(entry.runtime_seconds));
      e.set("cost_usd", JsonValue::of(entry.cost_usd));
      entries.push_back(std::move(e));
    }
    p.set("entries", std::move(entries));
    return p;
  };

  JsonValue payload = JsonValue::object();
  payload.set("family", JsonValue::of(request.family));
  payload.set("size", JsonValue::of(request.size));
  payload.set("deadline_s", JsonValue::of(request.deadline_seconds));
  payload.set("recipes_evaluated",
              JsonValue::of(static_cast<double>(result.evaluations.size())));
  payload.set("fixed", plan_json(result.fixed));
  payload.set("joint", plan_json(result.joint));
  payload.set("joint_at_qor", plan_json(result.joint_at_qor));
  payload.set("savings_vs_fixed_usd",
              JsonValue::of(result.savings_vs_fixed_usd()));
  JsonValue frontier = JsonValue::array();
  const std::size_t cap = std::min<std::size_t>(result.frontier.size(), 32);
  for (std::size_t i = 0; i < cap; ++i) {
    const tune::ParetoEntry& point = result.frontier[i];
    JsonValue entry = JsonValue::object();
    entry.set("deadline_s", JsonValue::of(point.deadline_seconds));
    entry.set("cost_usd", JsonValue::of(point.cost_usd));
    entry.set("area_um2", JsonValue::of(point.area_um2));
    entry.set("recipe", JsonValue::of(point.recipe_key));
    frontier.push_back(std::move(entry));
  }
  payload.set("frontier_size",
              JsonValue::of(static_cast<double>(result.frontier.size())));
  payload.set("frontier", std::move(frontier));
  return payload;
}

JsonValue Service::do_echo(const Request& request) {
  if (request.sleep_ms > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(request.sleep_ms));
  }
  JsonValue payload = JsonValue::object();
  payload.set("payload", JsonValue::of(request.payload));
  return payload;
}

}  // namespace edacloud::svc
