#pragma once
// The svc request/response schema over svc::JsonValue (docs/SERVING.md has
// the full spec). A request is one JSON object per frame:
//
//   {"type":"predict","id":7,"family":"adder","size":64,"job":"routing"}
//
// with five real request types (characterize / predict / optimize /
// run-stage / tune) dispatched onto the core APIs, plus "echo" as a
// diagnostic (optional server-side sleep — the overload and deadline
// tests use it). Unknown member fields are rejected with `bad_request`
// (typo'd fields must never be silently ignored).
// Responses echo the id: {"id":7,"ok":true,"type":...,"payload":{...}} or
// {"id":7,"ok":false,"error":"<code>","message":"..."} with the stable
// error codes below.

#include <cstdint>
#include <string>

#include "core/flow.hpp"
#include "svc/json.hpp"

namespace edacloud::svc {

enum class RequestType : int {
  kCharacterize = 0,
  kPredict,
  kOptimize,
  kRunStage,
  kEcho,
  kTune,
};

/// Number of request types (sizes the per-type stats arrays).
inline constexpr int kRequestTypeCount = 6;

[[nodiscard]] const char* to_string(RequestType type);

/// Stable machine-readable error codes (the `error` field).
inline constexpr const char* kErrBadRequest = "bad_request";
inline constexpr const char* kErrUnknownType = "unknown_type";
inline constexpr const char* kErrOverloaded = "overloaded";
inline constexpr const char* kErrDeadlineExceeded = "deadline_exceeded";
inline constexpr const char* kErrInternal = "internal";

struct Request {
  RequestType type = RequestType::kEcho;
  std::uint64_t id = 0;
  // Design selection (characterize / predict / optimize / run-stage).
  std::string family;
  int size = 0;
  // predict: which application's model to query.
  core::JobKind job = core::JobKind::kSynthesis;
  // optimize: deadline for the MCKP plan, and whether to offer spot tiers.
  double deadline_seconds = 0.0;
  bool spot = false;
  // run-stage: how deep into the flow to go ("synth".."sta").
  core::JobKind stage = core::JobKind::kSynthesis;
  // echo diagnostics.
  std::string payload;
  int sleep_ms = 0;
  // tune: seeded random recipe draws beyond the grid, the tuner's RNG
  // seed, and the predict chunk size (results are byte-identical at any
  // batch value; the field only shapes throughput).
  int samples = 16;
  std::uint64_t tune_seed = 1;
  int batch = 64;
  // Per-request deadline budget in milliseconds (0 = none). Enforced at
  // dispatch: a request still queued past its deadline is answered with
  // `deadline_exceeded` instead of being executed.
  double deadline_ms = 0.0;
};

struct ParsedRequest {
  bool ok = false;
  Request request;
  std::string error;                    // human-readable parse failure
  const char* code = kErrBadRequest;    // machine code for the error reply
};

/// Validate and convert one parsed JSON request object. The id (when
/// present and numeric) survives even on failure so error replies can
/// still be correlated.
[[nodiscard]] ParsedRequest parse_request(const JsonValue& value);

/// {"id":N,"ok":false,"error":code,"message":message} — already dumped.
[[nodiscard]] std::string error_response(std::uint64_t id, const char* code,
                                         const std::string& message);

/// Start of a success reply; the caller attaches "payload" and dumps.
[[nodiscard]] JsonValue response_header(const Request& request);

/// "synthesis" / "placement" / "routing" / "sta" <-> JobKind (the wire
/// names; also accepts the short stage aliases synth/place/route).
[[nodiscard]] bool job_from_name(const std::string& name,
                                 core::JobKind* out);

}  // namespace edacloud::svc
