#pragma once
// Length-prefixed framing for the svc wire protocol (docs/SERVING.md):
// every message is a 4-byte big-endian payload length followed by that
// many bytes of UTF-8 JSON. The decoder is incremental — feed it whatever
// the socket produced and pop complete frames — and rejects frames whose
// declared length exceeds kMaxFramePayload before buffering them, so a
// hostile or corrupt length word cannot make the server allocate
// gigabytes. A decoder in the error state stays there; the owning
// connection must be closed.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace edacloud::svc {

/// Upper bound on one frame's JSON payload. Requests are tiny; responses
/// (characterization tables) stay well under this.
constexpr std::size_t kMaxFramePayload = 1u << 20;  // 1 MiB

/// 4-byte big-endian length + payload bytes.
[[nodiscard]] std::string encode_frame(std::string_view payload);

class FrameDecoder {
 public:
  /// Append raw socket bytes to the reassembly buffer. No-op in the error
  /// state.
  void feed(const char* data, std::size_t length);
  void feed(std::string_view data) { feed(data.data(), data.size()); }

  /// Pop the next complete payload into `out`; false when no full frame is
  /// buffered yet (or the decoder is in the error state).
  bool next(std::string* out);

  /// True once a frame declared a length above kMaxFramePayload. The
  /// connection is unrecoverable: subsequent bytes have no frame boundary.
  [[nodiscard]] bool error() const { return oversized_; }
  /// Declared length of the rejected frame (error() == true only).
  [[nodiscard]] std::uint32_t rejected_length() const {
    return rejected_length_;
  }

  /// Bytes currently buffered (tests / backpressure accounting).
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
  bool oversized_ = false;
  std::uint32_t rejected_length_ = 0;
};

}  // namespace edacloud::svc
