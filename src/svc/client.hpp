#pragma once
// Minimal blocking client for the job-server wire protocol. One TCP
// connection, synchronous roundtrip(): send a frame, block until the
// matching response frame arrives. The loadgen harness owns one Client per
// simulated connection; tests use it for loopback assertions.

#include <cstdint>
#include <string>
#include <vector>

#include "svc/wire.hpp"

namespace edacloud::svc {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connect to host:port. False (with *error filled) on failure.
  [[nodiscard]] bool connect(const std::string& host, int port,
                             std::string* error);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  /// Raw socket (for poll-based callers like the open-loop loadgen).
  [[nodiscard]] int fd() const { return fd_; }
  void close();

  /// Send one framed payload. False on socket error.
  [[nodiscard]] bool send(const std::string& payload);
  /// Block until the next complete frame; false on EOF, protocol error, or
  /// socket error.
  [[nodiscard]] bool recv(std::string* payload);
  /// send() + recv() — the closed-loop primitive.
  [[nodiscard]] bool roundtrip(const std::string& request,
                               std::string* response);
  /// Drain readable bytes without blocking (call after poll() reports
  /// POLLIN) and append any complete frames to *frames. False on EOF or
  /// socket/protocol error — already-appended frames remain valid.
  [[nodiscard]] bool drain(std::vector<std::string>* frames);

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

}  // namespace edacloud::svc
