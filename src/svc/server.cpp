#include "svc/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "obs/trace.hpp"
#include "util/log.hpp"

namespace edacloud::svc {

namespace {

bool set_nonblocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

void ServerStats::export_to(obs::Registry& registry) const {
  const auto count = [&](const char* name,
                         const std::atomic<std::uint64_t>& value) {
    registry.counter(std::string("svc.server.") + name).add(value.load());
  };
  count("connections_accepted", connections_accepted);
  count("connections_rejected", connections_rejected);
  count("requests_dispatched", requests_dispatched);
  count("requests_completed", requests_completed);
  count("overload_rejections", overload_rejections);
  count("deadline_rejections", deadline_rejections);
  count("protocol_errors", protocol_errors);
  count("batches_executed", batches_executed);
  count("batched_requests", batched_requests);
}

JobServer::JobServer(Service& service, ServerConfig config)
    : service_(service), config_(config) {
  if (config_.threads < 1) config_.threads = 1;
  if (config_.max_connections < 1) config_.max_connections = 1;
  if (config_.max_queue < 1) config_.max_queue = 1;
}

JobServer::~JobServer() {
  stop_and_join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (const int fd : wake_pipe_) {
    if (fd >= 0) ::close(fd);
  }
}

bool JobServer::listen(std::string* error) {
  const auto fail = [&](const char* what) {
    if (error != nullptr) {
      *error = std::string(what) + ": " + std::strerror(errno);
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  if (pipe(wake_pipe_) != 0) return fail("pipe");
  set_nonblocking(wake_pipe_[0]);
  set_nonblocking(wake_pipe_[1]);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, std::min(config_.max_connections, 128)) != 0) {
    return fail("listen");
  }
  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);
  if (!set_nonblocking(listen_fd_)) return fail("fcntl");
  return true;
}

void JobServer::request_stop() {
  stop_requested_.store(true, std::memory_order_release);
  // Async-signal-safe wake: write(2) on the nonblocking self-pipe.
  const char byte = 's';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void JobServer::wake() {
  const char byte = 'w';
  [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

void JobServer::start() { run_thread_ = std::thread([this] { run(); }); }

void JobServer::stop_and_join() {
  if (!run_thread_.joinable()) return;
  request_stop();
  run_thread_.join();
}

void JobServer::run() {
  for (int i = 0; i < config_.threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  io_loop();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    workers_stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
  workers_.clear();

  std::lock_guard<std::mutex> lock(conns_mutex_);
  for (auto& [id, conn] : conns_) ::close(conn.fd);
  conns_.clear();
}

void JobServer::io_loop() {
  obs::Registry& registry = obs::Registry::global();
  bool accepting = true;
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn_ids;

  while (true) {
    const bool stopping = stop_requested_.load(std::memory_order_acquire);
    if (stopping && accepting) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      accepting = false;
    }

    fds.clear();
    fd_conn_ids.clear();
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fd_conn_ids.push_back(0);
    bool writes_pending = false;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      // Listen stays in the poll set even at the connection cap: excess
      // connections must be accepted so accept_ready can answer
      // `overloaded` and close, instead of leaving them in the backlog.
      if (accepting) {
        fds.push_back({listen_fd_, POLLIN, 0});
        fd_conn_ids.push_back(0);
      }
      for (const auto& [id, conn] : conns_) {
        short events = 0;
        // During drain no new requests are read; pending responses still
        // flush.
        if (!stopping) events |= POLLIN;
        if (conn.out_offset < conn.outbox.size()) {
          events |= POLLOUT;
          writes_pending = true;
        }
        // events may stay 0 during drain: poll still reports
        // POLLERR/POLLHUP so dead peers are reaped.
        fds.push_back({conn.fd, events, 0});
        fd_conn_ids.push_back(id);
      }
    }

    const std::uint64_t inflight =
        inflight_total_.load(std::memory_order_acquire);
    registry.gauge("svc.queue_depth").set(static_cast<double>(inflight));
    obs::Tracer& tracer = obs::Tracer::global();
    if (tracer.enabled()) {
      tracer.emit_counter("svc/queue_depth", tracer.now_us(),
                          static_cast<double>(inflight));
    }

    if (stopping && inflight == 0 && !writes_pending) return;

    const int ready = ::poll(fds.data(), fds.size(), 100);
    if (ready < 0 && errno != EINTR) {
      EDACLOUD_WARN << "svc: poll failed: " << std::strerror(errno);
      return;
    }
    if (ready <= 0) continue;

    for (std::size_t i = 0; i < fds.size(); ++i) {
      const pollfd& pfd = fds[i];
      if (pfd.revents == 0) continue;
      if (pfd.fd == wake_pipe_[0]) {
        char buf[64];
        while (::read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      if (accepting && pfd.fd == listen_fd_ && fd_conn_ids[i] == 0) {
        accept_ready();
        continue;
      }
      const std::uint64_t conn_id = fd_conn_ids[i];
      if (conn_id == 0) continue;
      if ((pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0) {
        close_connection(conn_id);
        continue;
      }
      if ((pfd.revents & POLLIN) != 0) read_ready(conn_id);
      if ((pfd.revents & POLLOUT) != 0) write_ready(conn_id);
    }
  }
}

void JobServer::accept_ready() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: try next poll round
    std::size_t open_conns = 0;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      open_conns = conns_.size();
    }
    if (open_conns >= static_cast<std::size_t>(config_.max_connections)) {
      // Bounded accept queue: shed the connection with an explicit reply
      // instead of letting it hang in the backlog.
      stats_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      const std::string reply = encode_frame(
          error_response(0, kErrOverloaded, "connection limit reached"));
      (void)::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conns_mutex_);
    Connection conn;
    conn.fd = fd;
    conns_.emplace(next_conn_id_++, std::move(conn));
  }
}

void JobServer::read_ready(std::uint64_t conn_id) {
  Connection* conn = nullptr;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    const auto it = conns_.find(conn_id);
    if (it == conns_.end()) return;
    conn = &it->second;  // map nodes are stable; only this thread erases
  }
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) {
      close_connection(conn_id);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_connection(conn_id);
      return;
    }
    conn->decoder.feed(buf, static_cast<std::size_t>(n));
  }
  std::string payload;
  while (conn->decoder.next(&payload)) {
    dispatch_frame(conn_id, std::move(payload));
    payload.clear();
  }
  if (conn->decoder.error()) {
    // No frame boundary to resynchronize on: reply and hang up.
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    enqueue_response(
        conn_id,
        error_response(0, kErrBadRequest,
                       "frame length " +
                           std::to_string(conn->decoder.rejected_length()) +
                           " exceeds limit"));
    std::lock_guard<std::mutex> lock(conns_mutex_);
    const auto it = conns_.find(conn_id);
    if (it != conns_.end()) it->second.close_after_flush = true;
  }
}

void JobServer::dispatch_frame(std::uint64_t conn_id, std::string payload) {
  const JsonParseResult parsed_json = parse_json(payload);
  if (!parsed_json.ok) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    enqueue_response(conn_id,
                     error_response(0, kErrBadRequest,
                                    "invalid JSON: " + parsed_json.error));
    return;
  }
  ParsedRequest parsed = parse_request(parsed_json.value);
  if (!parsed.ok) {
    stats_.protocol_errors.fetch_add(1, std::memory_order_relaxed);
    enqueue_response(
        conn_id,
        error_response(parsed.request.id, parsed.code, parsed.error));
    return;
  }

  // Bounded request queue: shed load with an explicit reply instead of
  // queueing without limit.
  if (inflight_total_.load(std::memory_order_acquire) >= config_.max_queue) {
    stats_.overload_rejections.fetch_add(1, std::memory_order_relaxed);
    enqueue_response(conn_id,
                     error_response(parsed.request.id, kErrOverloaded,
                                    "request queue full"));
    return;
  }

  WorkItem item;
  item.conn_id = conn_id;
  double deadline_ms = parsed.request.deadline_ms;
  if (deadline_ms <= 0.0) deadline_ms = config_.default_deadline_ms;
  if (deadline_ms > 0.0) {
    item.deadline = std::chrono::steady_clock::now() +
                    std::chrono::microseconds(
                        static_cast<std::int64_t>(deadline_ms * 1000.0));
    item.has_deadline = true;
  }
  item.request = std::move(parsed.request);

  inflight_total_.fetch_add(1, std::memory_order_acq_rel);
  stats_.requests_dispatched.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    conns_mutex_.lock();
    const auto it = conns_.find(conn_id);
    if (it != conns_.end()) ++it->second.inflight;
    conns_mutex_.unlock();
    queue_.push_back(std::move(item));
  }
  queue_cv_.notify_one();
}

void JobServer::worker_loop() {
  std::vector<WorkItem> batch;
  while (true) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return workers_stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // workers_stop_ and drained
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      if (config_.batch_max > 1 &&
          batch.front().request.type == RequestType::kPredict) {
        collect_predict_batch(lock, batch);
      }
    }
    execute_batch(batch);
  }
}

void JobServer::collect_predict_batch(std::unique_lock<std::mutex>& lock,
                                      std::vector<WorkItem>& batch) {
  const std::size_t max = static_cast<std::size_t>(config_.batch_max);
  const auto take_queued_predicts = [&] {
    for (auto it = queue_.begin();
         it != queue_.end() && batch.size() < max;) {
      if (it->request.type == RequestType::kPredict) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
  };
  take_queued_predicts();
  if (config_.batch_linger_ms <= 0.0 || batch.size() >= max) return;

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(
          static_cast<std::int64_t>(config_.batch_linger_ms * 1000.0));
  while (batch.size() < max && !workers_stop_) {
    const std::cv_status status = queue_cv_.wait_until(lock, deadline);
    take_queued_predicts();
    // Notifies consumed while lingering may belong to items this batch
    // cannot take (non-predict types, or overflow past batch_max): pass
    // the baton so an idle worker picks them up instead of them waiting
    // out the linger window.
    if (!queue_.empty()) queue_cv_.notify_one();
    if (status == std::cv_status::timeout) break;
  }
}

void JobServer::execute_batch(std::vector<WorkItem>& batch) {
  std::vector<std::string> responses(batch.size());
  std::vector<Request> live;
  std::vector<std::size_t> live_index;
  // Deadlines are checked once at execution start, matching the
  // single-item contract (execution itself is never preempted).
  const auto now = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const WorkItem& item = batch[i];
    if (item.has_deadline && now > item.deadline) {
      stats_.deadline_rejections.fetch_add(1, std::memory_order_relaxed);
      responses[i] = error_response(item.request.id, kErrDeadlineExceeded,
                                    "deadline elapsed before dispatch");
    } else {
      live.push_back(item.request);
      live_index.push_back(i);
    }
  }
  if (live.size() == 1) {
    responses[live_index[0]] = service_.handle(live[0]);
  } else if (live.size() > 1) {
    std::vector<std::string> merged = service_.handle_predict_batch(live);
    for (std::size_t k = 0; k < merged.size(); ++k) {
      responses[live_index[k]] = std::move(merged[k]);
    }
    stats_.batches_executed.fetch_add(1, std::memory_order_relaxed);
    stats_.batched_requests.fetch_add(live.size(),
                                      std::memory_order_relaxed);
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    enqueue_response(batch[i].conn_id, responses[i]);
    stats_.requests_completed.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conns_mutex_);
    const auto it = conns_.find(batch[i].conn_id);
    if (it != conns_.end() && it->second.inflight > 0) {
      --it->second.inflight;
    }
  }
  inflight_total_.fetch_sub(batch.size(), std::memory_order_acq_rel);
  wake();
}

void JobServer::enqueue_response(std::uint64_t conn_id,
                                 const std::string& payload) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;  // client went away; drop the reply
  it->second.outbox += encode_frame(payload);
}

void JobServer::write_ready(std::uint64_t conn_id) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = it->second;
  while (conn.out_offset < conn.outbox.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.outbox.data() + conn.out_offset,
               conn.outbox.size() - conn.out_offset, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      ::close(conn.fd);
      conns_.erase(it);
      return;
    }
    conn.out_offset += static_cast<std::size_t>(n);
  }
  conn.outbox.clear();
  conn.out_offset = 0;
  if (conn.close_after_flush) {
    ::close(conn.fd);
    conns_.erase(it);
  }
}

void JobServer::close_connection(std::uint64_t conn_id) {
  std::lock_guard<std::mutex> lock(conns_mutex_);
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  ::close(it->second.fd);
  conns_.erase(it);
}

}  // namespace edacloud::svc
