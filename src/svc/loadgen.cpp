#include "svc/loadgen.hpp"

#include <poll.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "svc/client.hpp"
#include "svc/json.hpp"
#include "svc/protocol.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workloads/registry.hpp"

namespace edacloud::svc {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
  return hash;
}

/// The per-request stream: everything about request `id` — its type and
/// parameters — comes from this generator, so content is independent of
/// which connection or instant carries it.
util::Rng request_rng(const LoadgenConfig& config, std::uint64_t id) {
  std::uint64_t state = config.seed;
  const std::uint64_t a = util::splitmix64(state);
  state ^= id;
  const std::uint64_t b = util::splitmix64(state);
  return util::Rng(a ^ b);
}

RequestType draw_type(const std::string& mix, util::Rng& rng) {
  if (mix == "echo") return RequestType::kEcho;
  if (mix == "mixed") {
    const double roll = rng.next_double();
    if (roll < 0.70) return RequestType::kPredict;
    if (roll < 0.85) return RequestType::kOptimize;
    if (roll < 0.95) return RequestType::kRunStage;
    return RequestType::kCharacterize;
  }
  if (mix == "predict-heavy") {
    // The micro-batching stress mix: ~90% predicts over a wider design
    // pool (see make_request), with enough echo traffic interleaved that
    // the batch collector must skip over non-predict items correctly.
    return rng.next_double() < 0.90 ? RequestType::kPredict
                                    : RequestType::kEcho;
  }
  return RequestType::kPredict;
}

const char* kJobNames[] = {"synthesis", "placement", "routing", "sta"};

struct PerThread {
  std::vector<std::pair<std::uint64_t, std::string>> responses;
  std::vector<double> latencies_ms;  // measured window only
  std::uint64_t sent = 0;
  std::uint64_t transport_errors = 0;
  std::array<std::uint64_t, 5> by_type{};
};

struct SharedState {
  std::atomic<std::uint64_t> next_id{1};
  Clock::time_point start;
  Clock::time_point warmup_end;
  Clock::time_point send_end;  // time mode: no departures after this
};

/// Claim the next request id, or 0 when the budget/window is exhausted.
std::uint64_t claim_id(const LoadgenConfig& config, SharedState& shared) {
  if (config.requests > 0) {
    const std::uint64_t id = shared.next_id.fetch_add(1);
    return id <= config.requests ? id : 0;
  }
  if (Clock::now() >= shared.send_end) return 0;
  return shared.next_id.fetch_add(1);
}

void record_response(const LoadgenConfig& config, const SharedState& shared,
                     PerThread& out, std::uint64_t id, std::string response,
                     Clock::time_point sent_at, Clock::time_point got_at) {
  const bool measured =
      config.requests > 0 || sent_at >= shared.warmup_end;
  if (measured) {
    out.latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(got_at - sent_at).count());
  }
  out.responses.emplace_back(id, std::move(response));
}

void closed_loop(const LoadgenConfig& config, SharedState& shared,
                 PerThread& out) {
  Client client;
  std::string error;
  if (!client.connect(config.host, config.port, &error)) {
    ++out.transport_errors;
    return;
  }
  while (true) {
    const std::uint64_t id = claim_id(config, shared);
    if (id == 0) return;
    util::Rng rng = request_rng(config, id);
    const RequestType type = draw_type(config.mix, rng);
    const std::string payload = make_request(config, id);
    ++out.sent;
    ++out.by_type[static_cast<int>(type)];
    const Clock::time_point t0 = Clock::now();
    std::string response;
    if (!client.roundtrip(payload, &response)) {
      ++out.transport_errors;
      return;  // connection is unusable past a framing/socket error
    }
    record_response(config, shared, out, id, std::move(response), t0,
                    Clock::now());
  }
}

void open_loop(const LoadgenConfig& config, SharedState& shared,
               PerThread& out, int conn_index) {
  Client client;
  std::string error;
  if (!client.connect(config.host, config.port, &error)) {
    ++out.transport_errors;
    return;
  }
  const double rate =
      std::max(0.001, config.qps / std::max(1, config.connections));
  // Schedule randomness is separate from request content: reseeding here
  // never changes what any request id asks for.
  util::Rng schedule_rng(config.seed * 0x9E3779B97F4A7C15ULL +
                         static_cast<std::uint64_t>(conn_index) + 1);
  const auto exp_gap = [&] {
    const double u = std::max(1e-12, 1.0 - schedule_rng.next_double());
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(-std::log(u) / rate));
  };

  Clock::time_point next_send = Clock::now() + exp_gap();
  std::map<std::uint64_t, Clock::time_point> inflight;
  bool sending = true;
  std::vector<std::string> frames;
  const auto drain_deadline_after_send_end = std::chrono::seconds(10);
  Clock::time_point drain_deadline{};

  while (true) {
    const Clock::time_point now = Clock::now();
    if (sending && now >= next_send) {
      const std::uint64_t id = claim_id(config, shared);
      if (id == 0) {
        sending = false;
        drain_deadline = now + drain_deadline_after_send_end;
      } else {
        util::Rng rng = request_rng(config, id);
        const RequestType type = draw_type(config.mix, rng);
        ++out.sent;
        ++out.by_type[static_cast<int>(type)];
        const Clock::time_point t0 = Clock::now();
        if (!client.send(make_request(config, id))) {
          out.transport_errors += 1 + inflight.size();
          return;
        }
        inflight.emplace(id, t0);
        next_send += exp_gap();
        continue;  // catch up on a backlogged schedule before polling
      }
    }
    if (!sending && inflight.empty()) return;
    if (!sending && Clock::now() >= drain_deadline) {
      out.transport_errors += inflight.size();  // replies never arrived
      return;
    }

    int timeout_ms = 50;
    if (sending) {
      const auto until = next_send - Clock::now();
      timeout_ms = static_cast<int>(std::clamp<std::int64_t>(
          std::chrono::duration_cast<std::chrono::milliseconds>(until)
              .count(),
          0, 50));
    }
    pollfd pfd{client.fd(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0) continue;
    frames.clear();
    const bool alive = client.drain(&frames);
    const Clock::time_point got_at = Clock::now();
    for (std::string& frame : frames) {
      const JsonParseResult parsed = parse_json(frame);
      const std::uint64_t id = parsed.ok
                                   ? static_cast<std::uint64_t>(
                                         parsed.value.number_or("id", 0.0))
                                   : 0;
      const auto it = inflight.find(id);
      if (it == inflight.end()) {
        ++out.transport_errors;  // unmatched reply (e.g. id 0 error frame)
        continue;
      }
      record_response(config, shared, out, id, std::move(frame), it->second,
                      got_at);
      inflight.erase(it);
    }
    if (!alive) {
      out.transport_errors += inflight.size();
      return;
    }
  }
}

}  // namespace

const std::vector<std::string>& loadgen_mix_names() {
  static const std::vector<std::string> names = {"predict", "predict-heavy",
                                                 "echo", "mixed"};
  return names;
}

std::string make_request(const LoadgenConfig& config, std::uint64_t id) {
  util::Rng rng = request_rng(config, id);
  const RequestType type = draw_type(config.mix, rng);

  JsonValue request = JsonValue::object();
  request.set("id", JsonValue::of(id));
  request.set("type", JsonValue::of(to_string(type)));
  if (type == RequestType::kEcho) {
    request.set("payload", JsonValue::of("ping-" + std::to_string(id)));
  } else {
    const auto& families = workloads::families();
    // predict-heavy draws from fewer families but two corpus sizes each:
    // a 2x-wider design pool than "predict", with repeats frequent enough
    // that in-batch dedup and the prediction cache both get exercised.
    const bool heavy = config.mix == "predict-heavy";
    const std::size_t pick = static_cast<std::size_t>(rng.next_below(
        std::min<std::uint64_t>(families.size(), heavy ? 6 : 8)));
    const auto& info = families[pick];
    int size = info.corpus_sizes.empty() ? 32 : info.corpus_sizes.front();
    if (heavy && info.corpus_sizes.size() > 1 && rng.next_bool(0.5)) {
      size = info.corpus_sizes[1];
    }
    request.set("family", JsonValue::of(info.name));
    request.set("size", JsonValue::of(size));
    switch (type) {
      case RequestType::kPredict:
        request.set("job",
                    JsonValue::of(kJobNames[rng.next_below(4)]));
        break;
      case RequestType::kOptimize:
        request.set("deadline_s",
                    JsonValue::of(rng.next_double(100.0, 100000.0)));
        request.set("spot", JsonValue::of(rng.next_bool(0.5)));
        break;
      case RequestType::kRunStage:
        request.set("stage",
                    JsonValue::of(kJobNames[rng.next_below(4)]));
        break;
      default:
        break;
    }
  }
  if (config.deadline_ms > 0.0) {
    request.set("deadline_ms", JsonValue::of(config.deadline_ms));
  }
  return request.dump();
}

LoadgenReport run_loadgen(const LoadgenConfig& config) {
  const int conns = std::max(1, config.connections);
  SharedState shared;
  shared.start = Clock::now();
  shared.warmup_end =
      shared.start + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(config.warmup_s));
  shared.send_end =
      shared.warmup_end + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double>(
                                  config.duration_s));

  std::vector<PerThread> per_thread(conns);
  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (int i = 0; i < conns; ++i) {
    threads.emplace_back([&, i] {
      if (config.mode == LoadMode::kClosed) {
        closed_loop(config, shared, per_thread[i]);
      } else {
        open_loop(config, shared, per_thread[i], i);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const double elapsed =
      std::chrono::duration<double>(Clock::now() - shared.start).count();

  LoadgenReport report;
  report.elapsed_s = elapsed;
  std::vector<std::pair<std::uint64_t, std::string>> responses;
  util::Histogram latency(0.0, 2000.0, 8000);
  for (PerThread& pt : per_thread) {
    report.sent += pt.sent;
    report.transport_errors += pt.transport_errors;
    for (int t = 0; t < 5; ++t) report.by_type[t] += pt.by_type[t];
    for (const double ms : pt.latencies_ms) latency.add(ms);
    std::move(pt.responses.begin(), pt.responses.end(),
              std::back_inserter(responses));
    pt.responses.clear();
  }
  if (responses.empty() && report.sent == 0) {
    throw std::runtime_error("loadgen: no connection could be established");
  }

  // Canonical order: ascending request id. Two runs that received the same
  // response bytes per id fold to the same digest no matter how the
  // schedule interleaved them.
  std::sort(responses.begin(), responses.end());
  std::uint64_t digest = kFnvOffset;
  for (const auto& [id, response] : responses) {
    unsigned char id_bytes[8];
    for (int b = 0; b < 8; ++b) {
      id_bytes[b] = static_cast<unsigned char>((id >> (8 * b)) & 0xFF);
    }
    digest = fnv1a(digest, id_bytes, sizeof(id_bytes));
    digest = fnv1a(digest, response.data(), response.size());
    const unsigned char sep = 0xFF;
    digest = fnv1a(digest, &sep, 1);
    if (response.find("\"ok\":true") != std::string::npos) {
      ++report.ok;
    } else {
      ++report.errors;
    }
  }
  report.digest = digest;
  report.latency_ms = latency.summary();
  const double measured_window =
      config.requests > 0 ? elapsed
                          : std::max(1e-9, elapsed - config.warmup_s);
  report.throughput_rps =
      static_cast<double>(report.latency_ms.count) / measured_window;
  return report;
}

std::string LoadgenReport::export_json() const {
  JsonValue out = JsonValue::object();
  out.set("requests", JsonValue::of(sent));
  out.set("ok", JsonValue::of(ok));
  out.set("errors", JsonValue::of(errors));
  out.set("transport_errors", JsonValue::of(transport_errors));
  JsonValue types = JsonValue::object();
  for (int t = 0; t < 5; ++t) {
    types.set(to_string(static_cast<RequestType>(t)),
              JsonValue::of(by_type[static_cast<std::size_t>(t)]));
  }
  out.set("by_type", std::move(types));
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(digest));
  out.set("digest", JsonValue::of(hex));
  return out.dump();
}

std::string LoadgenReport::render() const {
  const auto fmt = [](double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", value);
    return std::string(buf);
  };
  util::Table table({"metric", "value"});
  table.add_row({"requests sent", std::to_string(sent)});
  table.add_row({"ok", std::to_string(ok)});
  table.add_row({"error replies", std::to_string(errors)});
  table.add_row({"transport errors", std::to_string(transport_errors)});
  table.add_row({"elapsed (s)", fmt(elapsed_s)});
  table.add_row({"throughput (req/s)", fmt(throughput_rps)});
  table.add_separator();
  table.add_row({"measured samples", std::to_string(latency_ms.count)});
  if (latency_ms.count > 0) {
    table.add_row({"latency mean (ms)", fmt(latency_ms.mean)});
    table.add_row({"latency p50 (ms)", fmt(latency_ms.p50)});
    table.add_row({"latency p90 (ms)", fmt(latency_ms.p90)});
    table.add_row({"latency p99 (ms)", fmt(latency_ms.p99)});
    table.add_row({"latency p99.9 (ms)", fmt(latency_ms.p999)});
  }
  return table.render();
}

}  // namespace edacloud::svc
