#pragma once
// The serving façade: one Service owns the cell library, a GCN runtime
// predictor trained at startup from a small seeded corpus, and per-design
// caches, and turns parsed svc::Requests into JSON response payloads by
// dispatching onto the existing core APIs —
//
//   characterize -> core::Characterizer        (Fig. 2 rows)
//   predict      -> core::RuntimePredictor     (GCN runtime ladder)
//   optimize     -> core::DeploymentOptimizer  (MCKP deployment plan)
//   run-stage    -> core::make_flow_engines    (StageEngine contract)
//   tune         -> tune::RecipeTuner          (joint recipe x VM plan)
//
// handle() is thread-safe: predict/optimize/run-stage execute fully in
// parallel (engines run serially per request, requests spread across the
// server's worker threads), while characterize serializes internally
// because instrumented flows publish into the process-global obs
// registry. Every response is deterministic for a fixed ServiceConfig —
// same request, same bytes, at any worker-thread count — which the
// loadgen digest checks and the threads-1-vs-8 loopback test enforce.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/characterize.hpp"
#include "core/optimizer.hpp"
#include "core/predictor.hpp"
#include "ml/batch.hpp"
#include "ml/gcn.hpp"
#include "nl/cell_library.hpp"
#include "obs/metrics.hpp"
#include "svc/protocol.hpp"

namespace edacloud::svc {

struct ServiceConfig {
  /// Startup training corpus: first `train_designs` families at their
  /// smallest corpus size, `train_recipes` recipe variants each. Small by
  /// design — the service must come up in seconds; accuracy-critical
  /// deployments raise these (and train_epochs) via the CLI flags.
  std::size_t train_designs = 8;
  std::size_t train_recipes = 1;
  int train_epochs = 30;
  /// Seed for generated request designs (the CLI convention is 7 — the
  /// same designs `edacloud_cli gen/flow` produce).
  std::uint64_t design_seed = 7;
  /// Content-addressed prediction cache entries (ml::PredictionCache LRU;
  /// 0 disables). Keys are the memoized graph content hash salted per
  /// job, so repeated-design predict/optimize queries skip the forward
  /// pass entirely — and return the exact bytes the miss path computed.
  std::size_t predict_cache_capacity = 4096;
};

/// Lifetime request counters (relaxed atomics — workers bump them
/// concurrently; export_to reads after the server drained).
struct ServiceStats {
  std::atomic<std::uint64_t> requests{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> by_type[kRequestTypeCount] = {};

  void export_to(obs::Registry& registry) const;
};

class Service {
 public:
  explicit Service(ServiceConfig config = {});
  ~Service();

  /// Train the runtime predictor from the seeded corpus. Idempotent;
  /// deterministic for a fixed config. Call before serving — predict and
  /// optimize answer `internal` errors until trained.
  void initialize();
  [[nodiscard]] bool ready() const { return trained_; }

  /// Parse one frame payload and dispatch; never throws — malformed JSON,
  /// invalid requests and handler failures all come back as error
  /// responses (kErrBadRequest / kErrUnknownType / kErrInternal).
  [[nodiscard]] std::string handle_payload(const std::string& payload);

  /// Dispatch one parsed request; returns the dumped response.
  [[nodiscard]] std::string handle(const Request& request);

  /// Micro-batched predict path (the server's batch collector lands here):
  /// cache lookups first, then ONE merged forward pass per job over the
  /// misses. responses[i] is byte-identical to handle(requests[i]) —
  /// non-predict items fall back to handle() individually.
  [[nodiscard]] std::vector<std::string> handle_predict_batch(
      const std::vector<Request>& requests);

  [[nodiscard]] const ServiceStats& stats() const { return stats_; }
  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  /// Non-null when predict_cache_capacity > 0.
  [[nodiscard]] const ml::PredictionCache* predict_cache() const {
    return predict_cache_.get();
  }
  /// Request counters plus prediction-cache hit/miss/eviction counters.
  void export_metrics(obs::Registry& registry) const;

 private:
  /// Feature graph + memoized content key, shared via the per-design cache.
  struct CachedSample {
    std::shared_ptr<const ml::GraphSample> sample;
    ml::ContentKey key;  // content_key(*sample), computed once at build
  };
  JsonValue do_characterize(const Request& request);
  JsonValue do_predict(const Request& request);
  JsonValue do_optimize(const Request& request);
  JsonValue do_run_stage(const Request& request);
  JsonValue do_echo(const Request& request);
  JsonValue do_tune(const Request& request);

  [[nodiscard]] nl::Aig make_design(const Request& request) const;
  /// Feature graph for `job` on the request's design, via the per-design
  /// cache (AIG graph for synthesis, synthesized-netlist graph otherwise).
  [[nodiscard]] CachedSample sample_for(const Request& request,
                                        core::JobKind job);
  /// Cache-fronted predicted runtimes (the shared predict/optimize path).
  [[nodiscard]] std::array<double, 4> predict_runtimes(
      core::JobKind job, const CachedSample& cached);
  /// The predict response payload — one builder for both the serial and
  /// the batched path, so their bytes cannot diverge.
  [[nodiscard]] static JsonValue predict_payload(
      const Request& request, const std::array<double, 4>& runtimes);

  ServiceConfig config_;
  nl::CellLibrary library_;
  core::RuntimePredictor predictor_;
  bool trained_ = false;
  ServiceStats stats_;

  /// Serializes instrumented flows: they publish QoR gauges and perf
  /// measurements into the process-global obs::Registry.
  std::mutex instrumented_mutex_;

  /// family:size -> feature graphs (predict/optimize hot path).
  std::mutex cache_mutex_;
  std::map<std::string, CachedSample> aig_samples_;
  std::map<std::string, CachedSample> netlist_samples_;

  /// Content-addressed prediction results (internally locked).
  std::unique_ptr<ml::PredictionCache> predict_cache_;
};

}  // namespace edacloud::svc
