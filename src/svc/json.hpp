#pragma once
// Minimal JSON value tree for the svc wire protocol: a recursive-descent
// parser and a deterministic serializer. Objects preserve insertion (and
// source) order, and numbers serialize through one fixed format, so the
// same value tree always dumps to the same bytes — the property the
// serving determinism checks (same-seed loadgen digests, threads 1 vs 8
// response comparisons) rest on. Not a general-purpose JSON library: no
// \uXXXX escapes beyond pass-through ASCII, no comments, 1 MiB-scale
// payloads only (the wire layer caps frames before text reaches here).

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace edacloud::svc {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  static JsonValue null() { return JsonValue(); }
  static JsonValue of(bool value) {
    JsonValue v;
    v.type_ = Type::kBool;
    v.bool_ = value;
    return v;
  }
  static JsonValue of(double value) {
    JsonValue v;
    v.type_ = Type::kNumber;
    v.number_ = value;
    return v;
  }
  static JsonValue of(int value) { return of(static_cast<double>(value)); }
  static JsonValue of(std::uint64_t value) {
    return of(static_cast<double>(value));
  }
  static JsonValue of(std::string value) {
    JsonValue v;
    v.type_ = Type::kString;
    v.string_ = std::move(value);
    return v;
  }
  static JsonValue of(const char* value) { return of(std::string(value)); }
  static JsonValue array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0.0) const {
    return is_number() ? number_ : fallback;
  }
  [[nodiscard]] const std::string& as_string() const { return string_; }

  // ---- arrays ----
  [[nodiscard]] std::size_t size() const {
    return is_object() ? members_.size() : items_.size();
  }
  [[nodiscard]] const JsonValue& at(std::size_t index) const {
    return items_[index];
  }
  JsonValue& push_back(JsonValue value) {
    items_.push_back(std::move(value));
    return items_.back();
  }

  // ---- objects ----
  /// Member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Insert-or-overwrite, preserving first-insertion order.
  JsonValue& set(std::string_view key, JsonValue value);
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members()
      const {
    return members_;
  }

  // Typed member conveniences (fallback when absent or wrong type).
  [[nodiscard]] double number_or(std::string_view key, double fallback) const;
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string_view fallback) const;
  [[nodiscard]] bool bool_or(std::string_view key, bool fallback) const;

  /// Compact deterministic serialization (no whitespace, fixed number
  /// format, object members in insertion order).
  [[nodiscard]] std::string dump() const;

 private:
  void dump_to(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members_;  // kObject
};

struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;
};

/// Parse one JSON document; trailing non-whitespace is an error.
[[nodiscard]] JsonParseResult parse_json(std::string_view text);

}  // namespace edacloud::svc
