#pragma once
// Sharding substrate for the parallel fleet simulator (DESIGN.md §13): the
// canonical pool enumeration, the pool -> shard ownership map, the
// per-shard event queue ordered by *intrinsic* event keys (never insertion
// order, which would differ across shard counts), and the cross-shard
// job-handoff message delivered at window barriers.
//
// Determinism ground rules baked into these types:
//   * Every (family, vCPU) pool has a fixed canonical index, independent of
//     which pools a run actually touches.
//   * A pool is owned by exactly one shard for the whole run
//     (shard = pool_index % shard_count), so all pool-local state is
//     single-writer inside a synchronization window.
//   * Event ordering is a strict total order over
//     (time, type, pool, job_id, vm_id) — a pure function of simulation
//     content, so a pool's event sequence is identical whether its shard
//     owns 1 pool or all 12.

#include <array>
#include <cstdint>
#include <queue>
#include <vector>

#include "core/flow.hpp"
#include "sched/fleet.hpp"
#include "sched/job.hpp"

namespace edacloud::sched {

/// Event kinds processed by a shard. The enumerator order is the tie-break
/// rank for simultaneous events (earlier enumerators fire first).
enum class ShardEventType : std::uint8_t {
  kJobDeliver,       // a job (admission or stage handoff) reaches its pool
  kVmBootComplete,   // a launched VM becomes schedulable (or fails to boot)
  kTaskComplete,     // the stage running on (pool, vm_id) finishes
  kSpotInterruption, // the spot VM (pool, vm_id) is reclaimed mid-run
  kVmCrash,          // the VM (pool, vm_id) dies mid-run (fault injection)
  kTaskRetry,        // a killed stage's backoff expired; re-enqueue it
  kPoolTick,         // per-pool autoscaler decision
  kMarketTick,       // per-pool re-bid/migrate re-evaluation of the queue
};

/// One pool-local event. All ids are pool-local (each pool owns its own VM
/// id space), so the full key tuple is unique per live event and the
/// comparator below is a strict total order with no hidden state.
struct ShardEvent {
  double time = 0.0;
  ShardEventType type = ShardEventType::kJobDeliver;
  int pool = 0;               // canonical pool index (ShardTopology)
  std::uint64_t job_id = 0;
  int vm_id = -1;
};

/// Min-heap "later than" comparator over the intrinsic event key.
struct ShardEventLater {
  bool operator()(const ShardEvent& a, const ShardEvent& b) const {
    if (a.time != b.time) return a.time > b.time;
    if (a.type != b.type) return a.type > b.type;
    if (a.pool != b.pool) return a.pool > b.pool;
    if (a.job_id != b.job_id) return a.job_id > b.job_id;
    return a.vm_id > b.vm_id;
  }
};

/// One shard's event queue. Unlike sched::EventQueue there is no insertion
/// sequence number: ordering must not depend on *when* an event was pushed,
/// because barrier-delivered handoffs arrive in coordinator order while
/// locally-scheduled events arrive in execution order, and those interleave
/// differently at different shard counts.
class ShardEventQueue {
 public:
  void push(const ShardEvent& event) { heap_.push(event); }
  ShardEvent pop() {
    ShardEvent event = heap_.top();
    heap_.pop();
    return event;
  }
  [[nodiscard]] const ShardEvent& peek() const { return heap_.top(); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

 private:
  std::priority_queue<ShardEvent, std::vector<ShardEvent>, ShardEventLater>
      heap_;
};

/// A job travelling between stages (or from admission to its first pool).
/// Handoffs always pay `handoff_latency_seconds`, intra-shard ones
/// included: the uniform latency is what makes the event stream a pure
/// function of simulation content rather than of the pool -> shard map.
struct JobHandoff {
  double deliver_time = 0.0;
  int dest_pool = 0;  // canonical pool index
  Job job;
  std::array<PoolKey, core::kJobCount> plan{};
};

/// The canonical pool universe and its partition into shards. All three
/// instance families x the four vCPU sizes = 12 pools, indexed
/// family-major in (family, vcpus) order — the same order Fleet::pools()
/// reports — regardless of which pools a run ever launches into.
class ShardTopology {
 public:
  static constexpr int kFamilyCount = 3;
  static constexpr int kPoolCount =
      kFamilyCount * static_cast<int>(perf::kVcpuOptions.size());

  /// `shard_count` in [1, kPoolCount]; wider makes no sense (a shard would
  /// own nothing) and is clamped by the caller-facing simulator config.
  explicit ShardTopology(int shard_count);

  [[nodiscard]] int shard_count() const { return shard_count_; }

  /// Canonical index of `key` in [0, kPoolCount).
  [[nodiscard]] static int pool_index(const PoolKey& key);
  /// The PoolKey at canonical index `index`.
  [[nodiscard]] static PoolKey pool_at(int index);

  /// Owning shard of a pool: pool_index % shard_count. Static round-robin
  /// keeps the map a pure function of (pool, shard_count) and spreads the
  /// families (which differ in load) across shards.
  [[nodiscard]] int shard_of_pool(int pool) const {
    return pool % shard_count_;
  }

  /// Canonical pool indices owned by `shard`, ascending.
  [[nodiscard]] const std::vector<int>& pools_of_shard(int shard) const {
    return pools_of_shard_[static_cast<std::size_t>(shard)];
  }

 private:
  int shard_count_ = 1;
  std::vector<std::vector<int>> pools_of_shard_;
};

}  // namespace edacloud::sched
