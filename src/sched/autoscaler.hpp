#pragma once
// Target-utilization autoscaler. Each (family, vCPU) pool is sized so that
// busy + queued demand sits at `target_utilization` of capacity; scale-ups
// react quickly (short cooldown, bounded step) while scale-downs are slow
// and only ever retire idle machines — the classic asymmetric policy that
// absorbs bursts without flapping.

#include <map>

#include "sched/fleet.hpp"

namespace edacloud::sched {

struct AutoscalerConfig {
  double interval_seconds = 15.0;    // decision cadence
  double target_utilization = 0.70;  // desired (busy+queued)/capacity
  double scale_up_cooldown = 15.0;
  double scale_down_cooldown = 180.0;
  int max_step_up = 8;  // VMs launched per pool per decision
  int min_vms = 0;      // per-pool floor
  int max_vms = 64;     // per-pool ceiling
};

/// Demand snapshot for one pool at decision time.
struct PoolDemand {
  int queued = 0;  // waiting tasks routed to this pool
  int busy = 0;
  int alive = 0;  // booting + idle + busy
};

class Autoscaler {
 public:
  explicit Autoscaler(AutoscalerConfig config) : config_(config) {}

  /// Signed VM delta for `pool`: > 0 launch, < 0 retire idle machines,
  /// 0 hold. Cooldown state advances only when a move is made.
  int decide(const PoolKey& pool, const PoolDemand& demand, double now);

  [[nodiscard]] const AutoscalerConfig& config() const { return config_; }

 private:
  AutoscalerConfig config_;
  struct PoolState {
    double last_up = -1e18;
    double last_down = -1e18;
  };
  std::map<PoolKey, PoolState> state_;
};

}  // namespace edacloud::sched
