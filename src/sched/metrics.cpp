#include "sched/metrics.hpp"

#include <algorithm>

#include "util/histogram.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace edacloud::sched {

namespace {

/// Binned quantile over `values` with linear interpolation (256 bins across
/// the observed range).
struct Quantiles {
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

Quantiles binned_quantiles(const std::vector<double>& values) {
  Quantiles q;
  if (values.empty()) return q;  // summary() stats are NaN when empty
  const double hi = *std::max_element(values.begin(), values.end());
  util::Histogram histogram(0.0, hi > 0.0 ? hi : 1.0, 256);
  histogram.add_all(values);
  const util::Histogram::Summary s = histogram.summary();
  q.p50 = s.p50;
  q.p95 = s.p95;
  q.p99 = s.p99;
  return q;
}

}  // namespace

void MetricsCollector::record_dispatch(double queue_wait_seconds) {
  ++dispatched_;
  queue_wait_sum_ += queue_wait_seconds;
}

void MetricsCollector::record_completion(const Job& job,
                                         double best_case_service_seconds) {
  ++completed_;
  const double latency = job.completion_time - job.arrival_time;
  latencies_.push_back(latency);
  if (best_case_service_seconds > 0.0) {
    slowdowns_.push_back(latency / best_case_service_seconds);
  }
  if (job.completion_time > job.slo_deadline) ++slo_violations_;
}

void MetricsCollector::merge_from(const MetricsCollector& other) {
  submitted_ += other.submitted_;
  completed_ += other.completed_;
  failed_ += other.failed_;
  dispatched_ += other.dispatched_;
  preemptions_ += other.preemptions_;
  crashes_ += other.crashes_;
  boot_failures_ += other.boot_failures_;
  retries_ += other.retries_;
  spot_fallbacks_ += other.spot_fallbacks_;
  market_rebids_ += other.market_rebids_;
  market_fallbacks_ += other.market_fallbacks_;
  market_migrations_ += other.market_migrations_;
  slo_violations_ += other.slo_violations_;
  queue_wait_sum_ += other.queue_wait_sum_;
  wasted_seconds_ += other.wasted_seconds_;
  checkpoint_overhead_seconds_ += other.checkpoint_overhead_seconds_;
  latencies_.insert(latencies_.end(), other.latencies_.begin(),
                    other.latencies_.end());
  slowdowns_.insert(slowdowns_.end(), other.slowdowns_.begin(),
                    other.slowdowns_.end());
}

FleetMetrics MetricsCollector::finalize(double arrival_window_seconds,
                                        double drained_at_seconds,
                                        const FleetStats& fleet) const {
  FleetMetrics m;
  m.jobs_submitted = submitted_;
  m.jobs_completed = completed_;
  m.jobs_failed = failed_;
  m.tasks_dispatched = dispatched_;
  m.preemptions = preemptions_;
  m.crashes = crashes_;
  m.boot_failures = boot_failures_;
  m.retries = retries_;
  m.spot_fallbacks = spot_fallbacks_;
  m.market_rebids = market_rebids_;
  m.market_fallbacks = market_fallbacks_;
  m.market_migrations = market_migrations_;
  m.wasted_seconds = wasted_seconds_;
  m.checkpoint_overhead_seconds = checkpoint_overhead_seconds_;
  if (fleet.busy_seconds > 0.0) {
    m.goodput_fraction =
        std::max(0.0, fleet.busy_seconds - wasted_seconds_ -
                          checkpoint_overhead_seconds_) /
        fleet.busy_seconds;
  }
  m.arrival_window_seconds = arrival_window_seconds;
  m.drained_at_seconds = drained_at_seconds;

  const auto latency = binned_quantiles(latencies_);
  m.latency_p50 = latency.p50;
  m.latency_p95 = latency.p95;
  m.latency_p99 = latency.p99;
  m.slowdown_p99 = binned_quantiles(slowdowns_).p99;
  if (!latencies_.empty()) {
    double sum = 0.0;
    for (const double v : latencies_) sum += v;
    m.mean_latency = sum / static_cast<double>(latencies_.size());
  }
  if (dispatched_ > 0) {
    m.mean_queue_wait = queue_wait_sum_ / static_cast<double>(dispatched_);
  }

  m.slo_violations = slo_violations_;
  if (completed_ > 0) {
    m.slo_violation_rate =
        static_cast<double>(slo_violations_) / static_cast<double>(completed_);
  }

  if (fleet.alive_seconds > 0.0) {
    m.utilization = fleet.busy_seconds / fleet.alive_seconds;
  }
  m.total_cost_usd = fleet.total_cost_usd;
  if (completed_ > 0) {
    m.cost_per_job_usd =
        fleet.total_cost_usd / static_cast<double>(completed_);
  }
  m.peak_vms = fleet.peak_vms;
  m.vms_launched = fleet.vms_launched;
  if (drained_at_seconds > 0.0) {
    m.throughput_per_hour =
        static_cast<double>(completed_) * 3600.0 / drained_at_seconds;
  }
  return m;
}

void FleetMetrics::export_to(obs::Registry& registry,
                             const obs::Labels& labels) const {
  const auto qualified = [](const char* name) {
    std::string full = "fleet.";
    full += name;
    return full;
  };
  const auto count = [&](const char* name, std::uint64_t value) {
    registry.counter(qualified(name), labels).add(value);
  };
  const auto set = [&](const char* name, double value) {
    registry.gauge(qualified(name), labels).set(value);
  };
  count("jobs_submitted", jobs_submitted);
  count("jobs_completed", jobs_completed);
  count("jobs_failed", jobs_failed);
  count("tasks_dispatched", tasks_dispatched);
  count("preemptions", preemptions);
  count("crashes", crashes);
  count("boot_failures", boot_failures);
  count("retries", retries);
  count("spot_fallbacks", spot_fallbacks);
  count("market_rebids", market_rebids);
  count("market_fallbacks", market_fallbacks);
  count("market_migrations", market_migrations);
  count("slo_violations", slo_violations);
  set("wasted_seconds", wasted_seconds);
  set("checkpoint_overhead_seconds", checkpoint_overhead_seconds);
  set("goodput_fraction", goodput_fraction);
  set("arrival_window_seconds", arrival_window_seconds);
  set("drained_at_seconds", drained_at_seconds);
  set("latency_p50_seconds", latency_p50);
  set("latency_p95_seconds", latency_p95);
  set("latency_p99_seconds", latency_p99);
  set("mean_latency_seconds", mean_latency);
  set("mean_queue_wait_seconds", mean_queue_wait);
  set("slowdown_p99", slowdown_p99);
  set("slo_violation_rate", slo_violation_rate);
  set("utilization", utilization);
  set("total_cost_usd", total_cost_usd);
  set("cost_per_job_usd", cost_per_job_usd);
  set("peak_vms", static_cast<double>(peak_vms));
  set("vms_launched", static_cast<double>(vms_launched));
  set("throughput_per_hour", throughput_per_hour);
}

std::string FleetMetrics::render() const {
  util::Table table({"Metric", "Value"});
  table.add_row({"jobs submitted",
                 util::format_count(static_cast<long long>(jobs_submitted))});
  table.add_row({"jobs completed",
                 util::format_count(static_cast<long long>(jobs_completed))});
  table.add_row({"tasks dispatched",
                 util::format_count(static_cast<long long>(tasks_dispatched))});
  table.add_row({"spot preemptions",
                 util::format_count(static_cast<long long>(preemptions))});
  if (crashes > 0 || boot_failures > 0 || retries > 0 || jobs_failed > 0) {
    table.add_row({"VM crashes",
                   util::format_count(static_cast<long long>(crashes))});
    table.add_row({"boot failures",
                   util::format_count(static_cast<long long>(boot_failures))});
    table.add_row({"retries",
                   util::format_count(static_cast<long long>(retries))});
    table.add_row({"jobs failed",
                   util::format_count(static_cast<long long>(jobs_failed))});
    table.add_row({"spot fallbacks",
                   util::format_count(static_cast<long long>(spot_fallbacks))});
    table.add_row({"wasted time", util::format_duration(wasted_seconds)});
    table.add_row({"checkpoint overhead",
                   util::format_duration(checkpoint_overhead_seconds)});
    table.add_row({"goodput", util::format_percent(goodput_fraction, 1)});
  }
  if (market_rebids > 0 || market_fallbacks > 0 || market_migrations > 0) {
    table.add_row({"market re-bids",
                   util::format_count(static_cast<long long>(market_rebids))});
    table.add_row(
        {"market fallbacks",
         util::format_count(static_cast<long long>(market_fallbacks))});
    table.add_row(
        {"market migrations",
         util::format_count(static_cast<long long>(market_migrations))});
  }
  table.add_row({"latency p50", util::format_duration(latency_p50)});
  table.add_row({"latency p95", util::format_duration(latency_p95)});
  table.add_row({"latency p99", util::format_duration(latency_p99)});
  table.add_row({"mean latency", util::format_duration(mean_latency)});
  table.add_row({"mean queue wait", util::format_duration(mean_queue_wait)});
  table.add_row({"slowdown p99", util::format_fixed(slowdown_p99, 2) + "x"});
  table.add_row({"SLO violation rate",
                 util::format_percent(slo_violation_rate, 1)});
  table.add_row({"fleet utilization", util::format_percent(utilization, 1)});
  std::string cost = "$";
  cost += util::format_fixed(total_cost_usd, 2);
  table.add_row({"fleet cost", cost});
  std::string per_job = "$";
  per_job += util::format_fixed(cost_per_job_usd, 4);
  table.add_row({"cost per job", per_job});
  table.add_row({"peak VMs", std::to_string(peak_vms)});
  table.add_row({"VMs launched", std::to_string(vms_launched)});
  table.add_row({"throughput/h", util::format_fixed(throughput_per_hour, 1)});
  table.add_row({"drained at", util::format_duration(drained_at_seconds)});
  return table.render();
}

}  // namespace edacloud::sched
