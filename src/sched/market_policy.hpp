#pragma once
// The re-bid/migrate market policy (DESIGN.md §15): every market tick the
// simulator re-evaluates QUEUED stage tasks against current spot prices and
// either keeps them where they are, degrades them to on-demand capacity
// (the current pool's spot price no longer pays), or migrates them to a
// cheaper (family, vCPU) pool. Evicted attempts additionally re-bid upward
// before retrying. Decisions are pure functions of (market, configs,
// template, job, time) — no RNG — so both engines make identical choices
// and the sharded engine keeps its cross-shard/thread byte-identity.

#include <cstdint>

#include "cloud/market.hpp"
#include "sched/fleet.hpp"
#include "sched/job.hpp"

namespace edacloud::sched {

struct MarketPolicyConfig {
  /// Master switch (fleet-sim --rebid). Off = the simulators never arm
  /// market ticks and never touch bids: pre-market behavior, byte-for-byte.
  bool enabled = false;
  /// Seconds between market re-evaluations of the queue.
  double interval_seconds = 300.0;
  /// An evicted attempt re-bids at old_bid * rebid_multiplier (capped at
  /// max_bid_fraction) before its backoff retry.
  double rebid_multiplier = 1.5;
  double max_bid_fraction = 1.0;
  /// Queued tasks whose pool's spot price is at or above this fraction of
  /// on-demand stop gambling: they degrade to on-demand-only (only when the
  /// fleet launches an on-demand tier at all).
  double fallback_price_fraction = 0.95;
  /// Migrate a queued task only when the candidate pool's estimated stage
  /// cost is below migrate_margin x the current pool's estimate (hysteresis
  /// against churn on small price wiggles).
  double migrate_margin = 0.85;
  /// Candidate pools whose stage runtime exceeds this multiple of the
  /// current pool's runtime are never migration targets (protects SLOs:
  /// cheap-but-slow shapes can't balloon the critical path).
  double migrate_runtime_slack = 2.0;
};

enum class MarketAction : std::uint8_t { kKeep, kFallback, kMigrate };

struct MarketDecision {
  MarketAction action = MarketAction::kKeep;
  PoolKey pool;  // migration target when action == kMigrate
};

/// Expected $ to run `job`'s current stage remainder on `pool` right now:
/// the pool's hourly rate blended across its on-demand/spot split at the
/// current spot price, times the stage's remaining runtime there.
[[nodiscard]] double market_stage_cost_usd(const cloud::Market& market,
                                           const FleetConfig& fleet,
                                           const JobTemplate& tmpl,
                                           const Job& job,
                                           const PoolKey& pool, double now);

/// The per-task tick decision. `preferred` is the pool the task is
/// currently routed to. Deterministic: candidate pools are scanned in
/// canonical (family, vcpus) order with strict-improvement tie-breaks.
[[nodiscard]] MarketDecision market_decide(const cloud::Market& market,
                                           const FleetConfig& fleet,
                                           const MarketPolicyConfig& policy,
                                           const JobTemplate& tmpl,
                                           const Job& job,
                                           const PoolKey& preferred,
                                           double now);

}  // namespace edacloud::sched
