#include "sched/load_gen.hpp"

#include <cmath>
#include <map>
#include <stdexcept>

namespace edacloud::sched {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// The named-mix provider registry, seeded with the builtins on first use.
std::map<std::string, TrafficMixFactory>& mix_registry() {
  static std::map<std::string, TrafficMixFactory> registry = {
      {"uniform", uniform_mix}, {"skewed", skewed_mix},
      {"bursty", bursty_mix},   {"diurnal", diurnal_mix},
      {"flash", flash_mix},
  };
  return registry;
}

}  // namespace

TrafficMix uniform_mix() {
  TrafficMix mix;
  mix.name = "uniform";
  mix.weights = {1.0, 1.0, 1.0};
  return mix;
}

TrafficMix skewed_mix() {
  TrafficMix mix;
  mix.name = "skewed";
  mix.weights = {0.80, 0.15, 0.05};
  return mix;
}

TrafficMix bursty_mix() {
  TrafficMix mix;
  mix.name = "bursty";
  mix.weights = {1.0, 1.0, 1.0};
  mix.burst_factor = 4.0;
  mix.burst_period_seconds = 1800.0;
  mix.burst_duty = 0.25;
  return mix;
}

TrafficMix diurnal_mix() {
  TrafficMix mix;
  mix.name = "diurnal";
  mix.weights = {1.0, 1.0, 1.0};
  mix.sine_amplitude = 0.8;
  mix.sine_period_seconds = 86400.0;
  return mix;
}

TrafficMix flash_mix() {
  TrafficMix mix;
  mix.name = "flash";
  mix.weights = {0.15, 0.35, 0.50};
  mix.burst_factor = 10.0;
  mix.burst_period_seconds = 7200.0;
  mix.burst_duty = 0.05;
  return mix;
}

void register_traffic_mix(const std::string& name, TrafficMixFactory factory) {
  if (name.empty()) throw std::invalid_argument("mix name must not be empty");
  if (factory == nullptr) {
    throw std::invalid_argument("mix factory must not be null");
  }
  mix_registry()[name] = std::move(factory);
}

std::vector<std::string> traffic_mix_names() {
  std::vector<std::string> names;
  for (const auto& [name, factory] : mix_registry()) names.push_back(name);
  return names;  // std::map iterates sorted
}

TrafficMix mix_by_name(const std::string& name) {
  const auto& registry = mix_registry();
  const auto it = registry.find(name);
  if (it == registry.end()) {
    std::string known;
    for (const auto& [mix_name, factory] : registry) {
      if (!known.empty()) known += " | ";
      known += mix_name;
    }
    throw std::invalid_argument("unknown traffic mix '" + name +
                                "' (expected " + known + ")");
  }
  return it->second();
}

LoadGenerator::LoadGenerator(LoadConfig config,
                             const std::vector<JobTemplate>* templates,
                             std::uint64_t seed)
    : config_(std::move(config)), templates_(templates), rng_(seed) {
  if (templates_ == nullptr || templates_->empty()) {
    throw std::invalid_argument("LoadGenerator needs at least one template");
  }
  double cumulative = 0.0;
  for (std::size_t i = 0; i < templates_->size(); ++i) {
    double weight = (*templates_)[i].weight;
    if (i < config_.mix.weights.size()) weight = config_.mix.weights[i];
    cumulative += std::max(0.0, weight);
    cumulative_weights_.push_back(cumulative);
  }
  if (cumulative <= 0.0) {
    throw std::invalid_argument("traffic mix weights sum to zero");
  }
  if (config_.mix.sine_amplitude < 0.0 || config_.mix.sine_amplitude >= 1.0) {
    throw std::invalid_argument(
        "mix sine_amplitude must lie in [0, 1) to keep the rate positive");
  }
}

double LoadGenerator::rate_at(double t) const {
  const double base = config_.arrival_rate_per_hour / 3600.0;
  const TrafficMix& mix = config_.mix;
  double rate = base;
  if (mix.burst_period_seconds > 0.0 && mix.burst_factor != 1.0) {
    const double phase = std::fmod(t, mix.burst_period_seconds);
    const bool bursting = phase < mix.burst_duty * mix.burst_period_seconds;
    if (bursting) rate = base * mix.burst_factor;
  }
  if (mix.sine_period_seconds > 0.0 && mix.sine_amplitude > 0.0) {
    rate *= 1.0 + mix.sine_amplitude *
                      std::sin(kTwoPi * t / mix.sine_period_seconds);
  }
  return rate;
}

double LoadGenerator::next_arrival_after(double now) {
  // Thinning (Lewis & Shedler): draw candidates at the peak rate and accept
  // with probability rate(t)/peak — exact for any bounded rate function.
  const double base = config_.arrival_rate_per_hour / 3600.0;
  double peak = base * std::max(1.0, config_.mix.burst_factor);
  if (config_.mix.sine_period_seconds > 0.0 &&
      config_.mix.sine_amplitude > 0.0) {
    peak *= 1.0 + config_.mix.sine_amplitude;
  }
  if (peak <= 0.0) throw std::invalid_argument("arrival rate must be > 0");
  double t = now;
  while (true) {
    t += -std::log(1.0 - rng_.next_double()) / peak;
    if (rng_.next_double() * peak <= rate_at(t)) return t;
  }
}

Job LoadGenerator::make_job(std::uint64_t id, double time) {
  Job job;
  job.id = id;
  job.arrival_time = time;

  const double draw = rng_.next_double() * cumulative_weights_.back();
  job.template_index = 0;
  for (std::size_t i = 0; i < cumulative_weights_.size(); ++i) {
    if (draw < cumulative_weights_[i]) {
      job.template_index = static_cast<int>(i);
      break;
    }
  }

  // Lognormal size jitter with mean exactly 1 (E[exp(sg - s^2/2)] = 1).
  const double sigma = config_.scale_sigma;
  job.scale =
      sigma > 0.0
          ? std::exp(sigma * rng_.next_gaussian() - 0.5 * sigma * sigma)
          : 1.0;

  const JobTemplate& tmpl = (*templates_)[job.template_index];
  job.slo_deadline = time + config_.slo_multiplier * job.scale *
                                tmpl.best_total_runtime_seconds();
  return job;
}

}  // namespace edacloud::sched
