#include "sched/load_gen.hpp"

#include <cmath>
#include <stdexcept>

namespace edacloud::sched {

TrafficMix uniform_mix() {
  TrafficMix mix;
  mix.name = "uniform";
  mix.weights = {1.0, 1.0, 1.0};
  return mix;
}

TrafficMix skewed_mix() {
  TrafficMix mix;
  mix.name = "skewed";
  mix.weights = {0.80, 0.15, 0.05};
  return mix;
}

TrafficMix bursty_mix() {
  TrafficMix mix;
  mix.name = "bursty";
  mix.weights = {1.0, 1.0, 1.0};
  mix.burst_factor = 4.0;
  mix.burst_period_seconds = 1800.0;
  mix.burst_duty = 0.25;
  return mix;
}

TrafficMix mix_by_name(const std::string& name) {
  if (name == "uniform") return uniform_mix();
  if (name == "skewed") return skewed_mix();
  if (name == "bursty") return bursty_mix();
  throw std::invalid_argument("unknown traffic mix '" + name + "'");
}

LoadGenerator::LoadGenerator(LoadConfig config,
                             const std::vector<JobTemplate>* templates,
                             std::uint64_t seed)
    : config_(std::move(config)), templates_(templates), rng_(seed) {
  if (templates_ == nullptr || templates_->empty()) {
    throw std::invalid_argument("LoadGenerator needs at least one template");
  }
  double cumulative = 0.0;
  for (std::size_t i = 0; i < templates_->size(); ++i) {
    double weight = (*templates_)[i].weight;
    if (i < config_.mix.weights.size()) weight = config_.mix.weights[i];
    cumulative += std::max(0.0, weight);
    cumulative_weights_.push_back(cumulative);
  }
  if (cumulative <= 0.0) {
    throw std::invalid_argument("traffic mix weights sum to zero");
  }
}

double LoadGenerator::rate_at(double t) const {
  const double base = config_.arrival_rate_per_hour / 3600.0;
  const TrafficMix& mix = config_.mix;
  if (mix.burst_period_seconds <= 0.0 || mix.burst_factor == 1.0) return base;
  const double phase = std::fmod(t, mix.burst_period_seconds);
  const bool bursting = phase < mix.burst_duty * mix.burst_period_seconds;
  return bursting ? base * mix.burst_factor : base;
}

double LoadGenerator::next_arrival_after(double now) {
  // Thinning (Lewis & Shedler): draw candidates at the peak rate and accept
  // with probability rate(t)/peak — exact for any bounded rate function.
  const double base = config_.arrival_rate_per_hour / 3600.0;
  const double peak = base * std::max(1.0, config_.mix.burst_factor);
  if (peak <= 0.0) throw std::invalid_argument("arrival rate must be > 0");
  double t = now;
  while (true) {
    t += -std::log(1.0 - rng_.next_double()) / peak;
    if (rng_.next_double() * peak <= rate_at(t)) return t;
  }
}

Job LoadGenerator::make_job(std::uint64_t id, double time) {
  Job job;
  job.id = id;
  job.arrival_time = time;

  const double draw = rng_.next_double() * cumulative_weights_.back();
  job.template_index = 0;
  for (std::size_t i = 0; i < cumulative_weights_.size(); ++i) {
    if (draw < cumulative_weights_[i]) {
      job.template_index = static_cast<int>(i);
      break;
    }
  }

  // Lognormal size jitter with mean exactly 1 (E[exp(sg - s^2/2)] = 1).
  const double sigma = config_.scale_sigma;
  job.scale =
      sigma > 0.0
          ? std::exp(sigma * rng_.next_gaussian() - 0.5 * sigma * sigma)
          : 1.0;

  const JobTemplate& tmpl = (*templates_)[job.template_index];
  job.slo_deadline = time + config_.slo_multiplier * job.scale *
                                tmpl.best_total_runtime_seconds();
  return job;
}

}  // namespace edacloud::sched
