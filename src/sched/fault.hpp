#pragma once
// Fault model for the fleet simulator: what can kill a running task (spot
// reclaims, VM boot failures, mid-task crashes), how much of the work
// survives a kill (restart model / stage-level checkpoints), and when the
// stage runs again (retry with deterministic exponential backoff + jitter,
// graceful degradation to on-demand after repeated spot evictions).
//
// Everything here is a pure function of configuration and a seeded
// util::Rng owned by the simulator, so fault-injected runs stay
// bit-identical across repeats and host thread counts. The checkpoint math
// (and the Daly-style expected-runtime model the cost-aware policy prices
// with) is documented in DESIGN.md §10.

#include <cstdint>

#include "util/rng.hpp"

namespace edacloud::sched {

/// What a killed attempt resumes from.
enum class RestartModel : std::uint8_t {
  /// Legacy model (PR 1): keep (1 - SpotModel::restart_overhead_fraction)
  /// of the fraction of the stage this attempt had covered.
  kFractionCredit,
  /// Naive: the attempt's work is lost entirely; the stage restarts from
  /// where the attempt began.
  kFromZero,
  /// Stage-level checkpoints every `checkpoint_interval_seconds` of work
  /// (paying `checkpoint_overhead_seconds` per snapshot); a kill resumes
  /// from the last completed checkpoint.
  kCheckpoint,
};

/// Deterministic exponential backoff: the delay before retry number k
/// (k = 1 after the first failure) is
///   min(cap, base * multiplier^(k-1)) * jitter,  jitter ~ U[1-j, 1+j]
/// with the jitter factor drawn from the simulator's seeded RNG.
struct BackoffConfig {
  double base_seconds = 30.0;
  double multiplier = 2.0;
  double cap_seconds = 600.0;
  double jitter_fraction = 0.25;  // j in [0, 1); 0 = deterministic delays
};

class BackoffSchedule {
 public:
  explicit BackoffSchedule(BackoffConfig config);

  /// Pre-jitter delay before retry `failures` (>= 1): the capped
  /// exponential. Exposed separately so tests can pin the ladder.
  [[nodiscard]] double base_delay_seconds(int failures) const;

  /// The actual delay: base_delay * U[1 - j, 1 + j] drawn from `rng`.
  /// Always within [base*(1-j), base*(1+j)] — the bound tests assert.
  [[nodiscard]] double delay_seconds(int failures, util::Rng& rng) const;

  [[nodiscard]] const BackoffConfig& config() const { return config_; }

 private:
  BackoffConfig config_;
};

struct FaultConfig {
  RestartModel restart = RestartModel::kFractionCredit;
  /// Checkpoint cadence in *work* seconds on the executing VM (<= 0 with
  /// kCheckpoint behaves like kFromZero) and the per-snapshot overhead
  /// added to the attempt's service time.
  double checkpoint_interval_seconds = 0.0;
  double checkpoint_overhead_seconds = 0.0;
  /// Probability a launched VM fails to come up at boot-complete time; the
  /// machine is retired (its boot seconds still bill) and the autoscaler
  /// replaces it on a later tick.
  double boot_failure_probability = 0.0;
  /// Machine-fatal mid-task crash rate (exponential, applies to every VM,
  /// spot or on-demand). The VM retires; the task retries elsewhere.
  double crash_rate_per_hour = 0.0;
  /// A stage that gets killed this many times fails its job permanently.
  int max_attempts_per_stage = 10;
  /// Graceful degradation: after this many spot evictions of one stage,
  /// its remaining attempts only dispatch to on-demand VMs (0 = never).
  int spot_evictions_before_fallback = 3;
  BackoffConfig backoff;

  [[nodiscard]] bool any_injection() const {
    return boot_failure_probability > 0.0 || crash_rate_per_hour > 0.0;
  }
};

/// Checkpointed-attempt arithmetic. An attempt of `work` seconds with
/// interval tau and overhead delta alternates [tau work, delta snapshot];
/// the final partial segment takes no snapshot, so its effective (billed)
/// duration is work + floor((work - eps)/tau) * delta, and a kill at
/// effective time e has completed floor(e / (tau + delta)) checkpoints.
namespace checkpoint {

/// Snapshots taken during an attempt that runs `work_seconds` to completion.
[[nodiscard]] int snapshots_for(double work_seconds, double interval_seconds);

/// Effective service seconds of the attempt (work + snapshot overhead).
[[nodiscard]] double effective_seconds(double work_seconds,
                                       double interval_seconds,
                                       double overhead_seconds);

/// Checkpoints fully completed by effective time `elapsed_seconds`.
[[nodiscard]] int completed_checkpoints(double elapsed_seconds,
                                        double interval_seconds,
                                        double overhead_seconds);

/// Work seconds that survive a kill at `elapsed_seconds` (never more than
/// `work_cap_seconds`, the attempt's total work).
[[nodiscard]] double credited_work_seconds(double elapsed_seconds,
                                           double interval_seconds,
                                           double overhead_seconds,
                                           double work_cap_seconds);

}  // namespace checkpoint

}  // namespace edacloud::sched
