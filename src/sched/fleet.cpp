#include "sched/fleet.hpp"

#include <cmath>
#include <stdexcept>

namespace edacloud::sched {

std::string to_string(const PoolKey& key) {
  return std::string(perf::to_string(key.family)) + "-" +
         std::to_string(key.vcpus) + "vcpu";
}

Fleet::Fleet(FleetConfig config) : config_(std::move(config)) {
  config_.market = cloud::ensure_market(config_.market, config_.spot);
}

int Fleet::launch(const PoolKey& pool, double now, util::Rng& rng, bool warm) {
  VmInstance vm;
  vm.id = static_cast<int>(vms_.size());
  vm.pool = pool;
  vm.config = perf::make_vm(pool.family, pool.vcpus);
  vm.spot = config_.spot_fraction > 0.0 && rng.next_bool(config_.spot_fraction);
  vm.launch_time = now;
  vm.ready_time = warm ? now : now + config_.boot_seconds;
  vm.state = warm ? VmInstance::State::kIdle : VmInstance::State::kBooting;
  vms_.push_back(vm);
  by_pool_[pool].push_back(vm.id);
  if (warm) idle_by_pool_[pool].insert(vm.id);
  ++counts_[pool].alive;
  ++total_alive_;
  return vm.id;
}

void Fleet::mark_ready(int id) {
  VmInstance& vm = vms_[id];
  if (vm.state == VmInstance::State::kBooting) {
    vm.state = VmInstance::State::kIdle;
    idle_by_pool_[vm.pool].insert(id);
  }
}

void Fleet::assign(int id, std::uint64_t job, double now,
                   double service_seconds, double work_seconds) {
  VmInstance& vm = vms_[id];
  if (vm.state != VmInstance::State::kIdle) {
    throw std::logic_error("assign: VM is not idle");
  }
  vm.state = VmInstance::State::kBusy;
  vm.running_job = job;
  vm.run_start = now;
  vm.run_service = service_seconds;
  vm.run_work = work_seconds < 0.0 ? service_seconds : work_seconds;
  idle_by_pool_[vm.pool].erase(id);
  ++counts_[vm.pool].busy;
}

void Fleet::release(int id, double now) {
  VmInstance& vm = vms_[id];
  if (vm.state != VmInstance::State::kBusy) {
    throw std::logic_error("release: VM is not busy");
  }
  vm.busy_seconds += now - vm.run_start;
  vm.state = VmInstance::State::kIdle;
  vm.running_job = kNoJob;
  vm.run_service = 0.0;
  vm.run_work = 0.0;
  idle_by_pool_[vm.pool].insert(id);
  --counts_[vm.pool].busy;
}

void Fleet::retire(int id, double now) {
  VmInstance& vm = vms_[id];
  if (vm.state == VmInstance::State::kRetired) return;
  if (vm.state == VmInstance::State::kBusy) {
    vm.busy_seconds += now - vm.run_start;
    vm.running_job = kNoJob;
    --counts_[vm.pool].busy;
  } else if (vm.state == VmInstance::State::kIdle) {
    idle_by_pool_[vm.pool].erase(id);
  }
  vm.state = VmInstance::State::kRetired;
  vm.retire_time = now;
  --counts_[vm.pool].alive;
  --total_alive_;
}

std::vector<PoolKey> Fleet::pools() const {
  std::vector<PoolKey> keys;
  keys.reserve(by_pool_.size());
  for (const auto& [key, ids] : by_pool_) keys.push_back(key);
  return keys;
}

std::vector<int> Fleet::idle_in(const PoolKey& pool) const {
  const std::set<int>& idle = idle_set(pool);
  return std::vector<int>(idle.begin(), idle.end());
}

const std::set<int>& Fleet::idle_set(const PoolKey& pool) const {
  static const std::set<int> kEmpty;
  const auto it = idle_by_pool_.find(pool);
  return it == idle_by_pool_.end() ? kEmpty : it->second;
}

int Fleet::alive_count(const PoolKey& pool) const {
  const auto it = counts_.find(pool);
  return it == counts_.end() ? 0 : it->second.alive;
}

int Fleet::busy_count(const PoolKey& pool) const {
  const auto it = counts_.find(pool);
  return it == counts_.end() ? 0 : it->second.busy;
}

int Fleet::idle_count(const PoolKey& pool) const {
  return static_cast<int>(idle_set(pool).size());
}

int Fleet::total_alive() const { return total_alive_; }

double Fleet::hourly_rate_usd(const VmInstance& vm) const {
  double rate = config_.catalog.hourly_usd(vm.pool.family, vm.pool.vcpus);
  if (vm.spot) {
    rate *= config_.market->price_at(vm.pool.family, vm.pool.vcpus,
                                     vm.launch_time);
  }
  return rate;
}

double Fleet::total_cost_usd(double now) const {
  double total = 0.0;
  for (const auto& vm : vms_) {
    const double end = vm.retire_time >= 0.0 ? vm.retire_time : now;
    const double billed = std::ceil(std::max(0.0, end - vm.launch_time));
    // Prevailing-price billing: a spot VM pays the market's time-weighted
    // mean price over its lifetime, not its launch-time multiplier for
    // life. The static market's mean IS the flat multiplier, so the float
    // operations below reproduce the pre-market bill bit-for-bit.
    double rate = config_.catalog.hourly_usd(vm.pool.family, vm.pool.vcpus);
    if (vm.spot) {
      rate *= config_.market->mean_price(vm.pool.family, vm.pool.vcpus,
                                         vm.launch_time, end);
    }
    total += rate * billed / 3600.0;
  }
  return total;
}

double Fleet::busy_seconds_total() const {
  double total = 0.0;
  for (const auto& vm : vms_) total += vm.busy_seconds;
  return total;
}

double Fleet::alive_seconds_total(double now) const {
  double total = 0.0;
  for (const auto& vm : vms_) {
    const double end = vm.retire_time >= 0.0 ? vm.retire_time : now;
    total += std::max(0.0, end - vm.launch_time);
  }
  return total;
}

}  // namespace edacloud::sched
