#include "sched/job.hpp"

#include <algorithm>
#include <stdexcept>

namespace edacloud::sched {

namespace {

int vcpu_index(int vcpus) {
  for (std::size_t i = 0; i < perf::kVcpuOptions.size(); ++i) {
    if (perf::kVcpuOptions[i] == vcpus) return static_cast<int>(i);
  }
  throw std::invalid_argument("vcpus must be one of the ladder sizes");
}

}  // namespace

double JobTemplate::runtime(core::JobKind job, perf::InstanceFamily family,
                            int vcpus) const {
  const auto& per_family = runtime_seconds[static_cast<int>(job)];
  const auto& ladder = per_family[static_cast<int>(family)];
  const int index = vcpu_index(vcpus);
  if (ladder[index] > 0.0) return ladder[index];
  // Unmeasured family: fall back to general purpose.
  return per_family[static_cast<int>(perf::InstanceFamily::kGeneralPurpose)]
                   [index];
}

double JobTemplate::best_total_runtime_seconds() const {
  double total = 0.0;
  for (const auto& per_family : runtime_seconds) {
    double best = 0.0;
    for (const auto& ladder : per_family) {
      for (const double runtime : ladder) {
        if (runtime > 0.0 && (best == 0.0 || runtime < best)) best = runtime;
      }
    }
    total += best;
  }
  return total;
}

core::RuntimeLadders JobTemplate::recommended_ladders() const {
  core::RuntimeLadders ladders{};
  for (core::JobKind job : core::kAllJobs) {
    const auto family = core::recommended_family(job);
    for (std::size_t i = 0; i < perf::kVcpuOptions.size(); ++i) {
      ladders[static_cast<int>(job)][i] =
          runtime(job, family, perf::kVcpuOptions[i]);
    }
  }
  return ladders;
}

JobTemplate JobTemplate::from_report(std::string name,
                                     const core::CharacterizationReport& report,
                                     double weight) {
  JobTemplate tmpl;
  tmpl.name = std::move(name);
  tmpl.weight = weight;
  for (core::JobKind job : core::kAllJobs) {
    for (const auto family : {perf::InstanceFamily::kGeneralPurpose,
                              perf::InstanceFamily::kMemoryOptimized}) {
      const auto* row = report.find(job, family);
      if (row == nullptr) continue;
      tmpl.runtime_seconds[static_cast<int>(job)][static_cast<int>(family)] =
          row->runtime_seconds;
    }
  }
  return tmpl;
}

std::vector<JobTemplate> templates_from_designs(
    const std::vector<workloads::NamedDesign>& designs,
    const nl::CellLibrary& library) {
  core::Characterizer characterizer(library);
  std::vector<JobTemplate> templates;
  templates.reserve(designs.size());
  for (const auto& design : designs) {
    const nl::Aig aig = workloads::generate(design.spec);
    templates.push_back(
        JobTemplate::from_report(design.name, characterizer.characterize(aig)));
  }
  return templates;
}

const std::vector<JobTemplate>& builtin_templates() {
  // Ladders captured from Characterizer runs on dynamic_node-4 (small),
  // alu-32 (medium) and sparc_core-16 (large) with default calibration;
  // family index 0 = general purpose, 1 = memory optimized (2 falls back).
  static const std::vector<JobTemplate> kTemplates = [] {
    std::vector<JobTemplate> templates(3);

    JobTemplate& small = templates[0];
    small.name = "small";
    small.runtime_seconds[0][0] = {128.9, 90.7, 73.2, 62.1};
    small.runtime_seconds[0][1] = {128.9, 90.7, 73.2, 62.1};
    small.runtime_seconds[1][0] = {11.0, 8.6, 7.4, 7.4};
    small.runtime_seconds[1][1] = {11.0, 8.6, 7.4, 7.4};
    small.runtime_seconds[2][0] = {3.1, 1.6, 0.9, 0.9};
    small.runtime_seconds[2][1] = {3.1, 1.6, 0.9, 0.9};
    small.runtime_seconds[3][0] = {5.5, 3.7, 2.6, 2.3};
    small.runtime_seconds[3][1] = {5.5, 3.7, 2.6, 2.3};

    JobTemplate& medium = templates[1];
    medium.name = "medium";
    medium.runtime_seconds[0][0] = {280.9, 241.9, 219.7, 208.6};
    medium.runtime_seconds[0][1] = {280.9, 241.9, 219.7, 208.6};
    medium.runtime_seconds[1][0] = {29.9, 23.1, 19.9, 18.3};
    medium.runtime_seconds[1][1] = {29.6, 23.1, 19.9, 18.3};
    medium.runtime_seconds[2][0] = {20.5, 12.2, 9.8, 9.6};
    medium.runtime_seconds[2][1] = {19.2, 12.0, 9.8, 9.5};
    medium.runtime_seconds[3][0] = {9.8, 7.7, 7.0, 6.4};
    medium.runtime_seconds[3][1] = {9.8, 7.7, 7.0, 6.4};

    JobTemplate& large = templates[2];
    large.name = "large";
    large.runtime_seconds[0][0] = {1538.0, 1064.8, 891.9, 808.9};
    large.runtime_seconds[0][1] = {1537.9, 1064.8, 891.9, 808.9};
    large.runtime_seconds[1][0] = {234.5, 100.1, 81.4, 75.7};
    large.runtime_seconds[1][1] = {119.8, 93.0, 81.4, 75.6};
    large.runtime_seconds[2][0] = {105.4, 49.1, 25.6, 19.9};
    large.runtime_seconds[2][1] = {90.1, 43.3, 23.7, 19.1};
    large.runtime_seconds[3][0] = {27.6, 19.9, 16.4, 15.0};
    large.runtime_seconds[3][1] = {27.6, 19.9, 16.4, 15.0};

    return templates;
  }();
  return kTemplates;
}

}  // namespace edacloud::sched
