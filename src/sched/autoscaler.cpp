#include "sched/autoscaler.hpp"

#include <algorithm>
#include <cmath>

namespace edacloud::sched {

int Autoscaler::decide(const PoolKey& pool, const PoolDemand& demand,
                       double now) {
  PoolState& state = state_[pool];
  const double active = static_cast<double>(demand.busy + demand.queued);
  int desired = static_cast<int>(
      std::ceil(active / std::max(0.05, config_.target_utilization)));
  desired = std::clamp(desired, config_.min_vms, config_.max_vms);

  if (desired > demand.alive) {
    if (now - state.last_up < config_.scale_up_cooldown) return 0;
    state.last_up = now;
    return std::min(desired - demand.alive, config_.max_step_up);
  }
  if (desired < demand.alive) {
    if (now - state.last_down < config_.scale_down_cooldown) return 0;
    state.last_down = now;
    return desired - demand.alive;  // caller retires at most the idle ones
  }
  return 0;
}

}  // namespace edacloud::sched
