#include "sched/sharded_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace edacloud::sched {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t state = seed ^ (salt * 0x9E3779B97F4A7C15ULL);
  return util::splitmix64(state);
}

/// Per-pool RNG stream seeds. Streams are split from the master seed by
/// canonical pool index (never by shard), so a pool draws the same sequence
/// whether it shares a shard with 11 other pools or runs alone.
std::uint64_t pool_stream_seed(std::uint64_t seed, int pool, int stream) {
  return derive_seed(seed, 16 + static_cast<std::uint64_t>(pool) * 8 +
                               static_cast<std::uint64_t>(stream));
}

/// Trace lane of (pool, vm): pools get disjoint 2^20-wide lane bands, VM
/// ids are pool-local. Deterministic across shard and thread counts.
std::uint32_t vm_lane(int pool, int vm_id) {
  constexpr std::uint32_t kBand = 1u << 20;
  return static_cast<std::uint32_t>(pool) * kBand +
         static_cast<std::uint32_t>(vm_id) % kBand;
}

/// Lane band for per-shard window spans (opt-in telemetry), far above any
/// plausible VM lane.
constexpr std::uint32_t kShardLaneBase = 0xFFFE0000u;

}  // namespace

/// All simulation state owned by one (family, vCPU) pool. Everything in
/// here is touched only by the owning shard during a window (and by the
/// single-threaded coordinator between windows), so no locking is needed.
struct ShardedFleetSimulator::PoolRuntime {
  PoolRuntime(int pool_index, const ShardedSimConfig& config,
              std::unique_ptr<SchedulerPolicy> pick_policy)
      : key(ShardTopology::pool_at(pool_index)),
        index(pool_index),
        fleet(config.base.fleet),
        scaler(config.base.autoscaler),
        policy(std::move(pick_policy)),
        fleet_rng(pool_stream_seed(config.base.seed, pool_index, 0)),
        spot_rng(pool_stream_seed(config.base.seed, pool_index, 1)),
        crash_rng(pool_stream_seed(config.base.seed, pool_index, 2)),
        boot_rng(pool_stream_seed(config.base.seed, pool_index, 3)),
        backoff_rng(pool_stream_seed(config.base.seed, pool_index, 4)),
        queue_counter_name("fleet/queue/" + to_string(key)),
        market_counter_name("market/price/" + to_string(key)) {}

  PoolKey key;
  int index;
  Fleet fleet;
  Autoscaler scaler;
  std::unique_ptr<SchedulerPolicy> policy;  // pick() only; plan() is global
  std::vector<TaskRef> queue;
  std::map<std::uint64_t, Job> jobs;
  std::map<std::uint64_t, std::array<PoolKey, core::kJobCount>> plans;
  std::uint64_t next_task_seq = 0;
  util::Rng fleet_rng;    // spot-tier assignment on launch
  util::Rng spot_rng;     // reclaim timing on spot VMs
  util::Rng crash_rng;    // mid-task crash timing
  util::Rng boot_rng;     // boot-failure coin flips
  util::Rng backoff_rng;  // retry jitter
  bool tick_armed = false;
  bool market_tick_armed = false;
  int peak_alive = 0;
  MetricsCollector metrics;
  std::vector<obs::TraceEvent> trace_buffer;
  std::string queue_counter_name;
  std::string market_counter_name;
};

/// One logical process: an event queue over its pools, the outbox of
/// handoffs produced during the current window, and its clock.
struct ShardedFleetSimulator::Shard {
  int index = 0;
  ShardEventQueue events;
  std::vector<JobHandoff> outbox;
  double now = 0.0;  // time of the last processed event
  std::vector<obs::TraceEvent> window_spans;
};

ShardedFleetSimulator::ShardedFleetSimulator(ShardedSimConfig config,
                                             std::vector<JobTemplate> templates,
                                             std::string policy_name)
    : config_(std::move(config)),
      templates_(std::move(templates)),
      topology_(std::clamp(config_.shards, 1, ShardTopology::kPoolCount)),
      generator_(config_.base.load, &templates_,
                 derive_seed(config_.base.seed, 1)),
      backoff_(config_.base.fault.backoff) {
  if (config_.handoff_latency_seconds <= 0.0) {
    throw std::invalid_argument("handoff_latency_seconds must be > 0");
  }
  if (config_.lookahead_seconds < 0.0) {
    throw std::invalid_argument("lookahead_seconds must be >= 0");
  }
  if (config_.base.fault.max_attempts_per_stage < 1) {
    throw std::invalid_argument("max_attempts_per_stage must be >= 1");
  }
  lookahead_ = config_.lookahead_seconds > 0.0 ? config_.lookahead_seconds
                                               : config_.handoff_latency_seconds;
  // Normalize the market seam before any pool copies the fleet config: a
  // null market becomes a StaticMarket over the flat spot model, shared by
  // every pool (markets are immutable, so sharing is thread-safe).
  config_.base.fleet.market = cloud::ensure_market(config_.base.fleet.market,
                                                   config_.base.fleet.spot);

  pools_.reserve(ShardTopology::kPoolCount);
  for (int pool = 0; pool < ShardTopology::kPoolCount; ++pool) {
    auto policy = make_policy(policy_name);
    policy->set_fault_context(config_.base.fleet, config_.base.fault);
    pools_.push_back(
        std::make_unique<PoolRuntime>(pool, config_, std::move(policy)));
  }
  for (int s = 0; s < topology_.shard_count(); ++s) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->index = s;
  }
  shard_stats_.resize(static_cast<std::size_t>(topology_.shard_count()));
  for (int s = 0; s < topology_.shard_count(); ++s) {
    shard_stats_[static_cast<std::size_t>(s)].pools_owned =
        static_cast<int>(topology_.pools_of_shard(s).size());
  }
  const int slots = util::parallel_slot_count(config_.threads);
  for (int slot = 0; slot < slots; ++slot) {
    auto policy = make_policy(policy_name);
    policy->set_fault_context(config_.base.fleet, config_.base.fault);
    plan_policies_.push_back(std::move(policy));
  }
}

ShardedFleetSimulator::~ShardedFleetSimulator() = default;

ShardedFleetSimulator::Shard& ShardedFleetSimulator::shard_of(
    const PoolRuntime& pool) {
  return *shards_[static_cast<std::size_t>(topology_.shard_of_pool(pool.index))];
}

FleetMetrics ShardedFleetSimulator::run() {
  if (ran_) throw std::logic_error("ShardedFleetSimulator::run is single-shot");
  ran_ = true;

  obs::Tracer& tracer = obs::Tracer::global();
  tracing_ = tracer.enabled();

  for (const auto& [key, count] : config_.base.warm_pools) {
    PoolRuntime& pool = *pools_[static_cast<std::size_t>(
        ShardTopology::pool_index(key))];
    for (int i = 0; i < count; ++i) {
      pool.fleet.launch(key, 0.0, pool.fleet_rng, /*warm=*/true);
    }
    pool.peak_alive = pool.fleet.total_alive();
    // Warm pools tick from t = 0 so an unused pre-provisioned pool still
    // scales itself down (matching the unsharded engine's behaviour).
    arm_tick(pool, 0.0);
  }

  next_arrival_ = generator_.next_arrival_after(0.0);
  arrivals_open_ = next_arrival_ <= config_.base.duration_seconds;

  const double hard_stop =
      config_.base.drain_limit_seconds > 0.0
          ? config_.base.duration_seconds + config_.base.drain_limit_seconds
          : 0.0;
  double stop_time = -1.0;

  while (true) {
    double lbts = arrivals_open_ ? next_arrival_ : kInf;
    for (const auto& shard : shards_) {
      if (!shard->events.empty()) {
        lbts = std::min(lbts, shard->events.peek().time);
      }
    }
    if (lbts == kInf) break;
    if (hard_stop > 0.0 && lbts > hard_stop) {
      stop_time = lbts;
      break;
    }
    const double window_end = lbts + lookahead_;
    admit_jobs(window_end);
    execute_window(window_end);
    deliver_handoffs();
    ++windows_;
  }

  double drained = std::max(stop_time, 0.0);
  for (const auto& shard : shards_) drained = std::max(drained, shard->now);

  // Canonical-order merges: metrics samples, fleet money and trace buffers
  // all fold by ascending pool index, so float accumulation order — and the
  // tracer's insertion-order tie-break — are shard-count-independent.
  MetricsCollector::FleetStats stats;
  for (const auto& pool : pools_) {
    admission_metrics_.merge_from(pool->metrics);
    stats.busy_seconds += pool->fleet.busy_seconds_total();
    stats.alive_seconds += pool->fleet.alive_seconds_total(drained);
    stats.total_cost_usd += pool->fleet.total_cost_usd(drained);
    // Global instantaneous peak is not pool-decomposable; the sharded
    // engine reports the sum of per-pool peaks (an upper bound, and a pure
    // function of pool-local trajectories).
    stats.peak_vms += pool->peak_alive;
    stats.vms_launched += static_cast<int>(pool->fleet.instances().size());
  }

  if (tracing_) {
    for (const auto& pool : pools_) {
      tracer.emit_batch(std::move(pool->trace_buffer));
    }
    if (config_.shard_window_spans) {
      for (const auto& shard : shards_) {
        tracer.emit_batch(std::move(shard->window_spans));
      }
    }
    if (tracer.clock_mode() == obs::ClockMode::kVirtual) {
      tracer.set_virtual_time_seconds(drained);
    }
  }

  return admission_metrics_.finalize(config_.base.duration_seconds, drained,
                                     stats);
}

void ShardedFleetSimulator::admit_jobs(double window_end) {
  // Admission is coordinator work: arrivals are drawn from the one global
  // generator stream (alternating make_job / next_arrival_after draws,
  // exactly like the unsharded engine), so the admitted job sequence is
  // identical at every shard count.
  std::vector<Job> jobs;
  while (arrivals_open_ && next_arrival_ < window_end) {
    jobs.push_back(generator_.make_job(next_job_id_++, next_arrival_));
    admission_metrics_.record_submitted();
    next_arrival_ = generator_.next_arrival_after(next_arrival_);
    if (next_arrival_ > config_.base.duration_seconds) arrivals_open_ = false;
  }
  if (jobs.empty()) return;

  // Route plans in parallel. Each worker slot owns a policy instance; plan
  // is a pure function of (job, template, fault context), so which slot
  // computes a plan never changes it.
  std::vector<std::array<PoolKey, core::kJobCount>> plans(jobs.size());
  util::parallel_for(
      config_.threads, 0, jobs.size(), 8,
      [&](std::size_t begin, std::size_t end, std::size_t, unsigned slot) {
        SchedulerPolicy& policy = *plan_policies_[slot];
        for (std::size_t i = begin; i < end; ++i) {
          plans[i] = policy.plan(jobs[i], templates_[jobs[i].template_index]);
        }
      });

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const int dest = ShardTopology::pool_index(plans[i][0]);
    PoolRuntime& pool = *pools_[static_cast<std::size_t>(dest)];
    const std::uint64_t id = jobs[i].id;
    const double arrival = jobs[i].arrival_time;
    pool.plans.emplace(id, plans[i]);
    pool.jobs.emplace(id, std::move(jobs[i]));
    shard_of(pool).events.push(
        {arrival, ShardEventType::kJobDeliver, dest, id, -1});
  }
}

void ShardedFleetSimulator::execute_window(double window_end) {
  const auto shard_count = static_cast<std::size_t>(topology_.shard_count());
  // Grain 1: each chunk is exactly one shard, so a shard's events are
  // processed by one thread per window (single-writer pool state), and the
  // work a chunk does depends only on its index — the thread-pool
  // bit-identity contract.
  util::parallel_for(config_.threads, 0, shard_count, 1,
                     [&](std::size_t begin, std::size_t end, std::size_t,
                         unsigned) {
                       for (std::size_t s = begin; s < end; ++s) {
                         run_shard(*shards_[s], window_end);
                       }
                     });
}

void ShardedFleetSimulator::run_shard(Shard& shard, double window_end) {
  ShardStats& stats = shard_stats_[static_cast<std::size_t>(shard.index)];
  const double window_start =
      shard.events.empty() ? window_end : shard.events.peek().time;
  std::uint64_t processed = 0;
  while (!shard.events.empty() && shard.events.peek().time < window_end) {
    const ShardEvent event = shard.events.pop();
    shard.now = event.time;
    ++processed;
    PoolRuntime& pool = *pools_[static_cast<std::size_t>(event.pool)];
    switch (event.type) {
      case ShardEventType::kJobDeliver:
        handle_deliver(pool, event);
        break;
      case ShardEventType::kVmBootComplete:
        handle_boot(pool, event);
        break;
      case ShardEventType::kTaskComplete:
        handle_task_complete(shard, pool, event);
        break;
      case ShardEventType::kSpotInterruption:
        handle_attempt_killed(pool, event, /*spot_reclaim=*/true);
        break;
      case ShardEventType::kVmCrash:
        handle_attempt_killed(pool, event, /*spot_reclaim=*/false);
        break;
      case ShardEventType::kTaskRetry:
        handle_task_retry(pool, event);
        break;
      case ShardEventType::kPoolTick:
        handle_pool_tick(pool, event);
        break;
      case ShardEventType::kMarketTick:
        handle_market_tick(pool, event);
        break;
    }
    pool.peak_alive = std::max(pool.peak_alive, pool.fleet.total_alive());
  }
  stats.events_processed += processed;
  if (tracing_ && config_.shard_window_spans && processed > 0) {
    obs::TraceEvent span;
    span.name = "shard/window";
    span.category = "sim";
    span.ts_us = window_start * 1e6;
    span.dur_us = std::max(0.0, shard.now - window_start) * 1e6;
    span.tid = kShardLaneBase + static_cast<std::uint32_t>(shard.index);
    span.args = {{"events", static_cast<double>(processed)}};
    shard.window_spans.push_back(std::move(span));
  }
}

void ShardedFleetSimulator::deliver_handoffs() {
  for (const auto& source : shards_) {
    ShardStats& source_stats =
        shard_stats_[static_cast<std::size_t>(source->index)];
    for (JobHandoff& msg : source->outbox) {
      ++source_stats.handoffs_out;
      PoolRuntime& dest = *pools_[static_cast<std::size_t>(msg.dest_pool)];
      Shard& dest_shard = shard_of(dest);
      if (msg.deliver_time < dest_shard.now) {
        throw std::logic_error(
            "lookahead violation: handoff into pool " + to_string(dest.key) +
            " at t=" + std::to_string(msg.deliver_time) +
            "s but its shard already advanced to t=" +
            std::to_string(dest_shard.now) +
            "s; lookahead_seconds must not exceed handoff_latency_seconds");
      }
      const std::uint64_t id = msg.job.id;
      dest.plans.emplace(id, msg.plan);
      dest.jobs.emplace(id, std::move(msg.job));
      dest_shard.events.push(
          {msg.deliver_time, ShardEventType::kJobDeliver, msg.dest_pool, id,
           -1});
      ++shard_stats_[static_cast<std::size_t>(dest_shard.index)].handoffs_in;
    }
    source->outbox.clear();
  }
}

void ShardedFleetSimulator::handle_deliver(PoolRuntime& pool,
                                           const ShardEvent& event) {
  enqueue_stage(pool, event.job_id, event.time);
  arm_tick(pool, event.time);
  arm_market_tick(pool, event.time);
  dispatch(pool, event.time);
}

void ShardedFleetSimulator::handle_boot(PoolRuntime& pool,
                                        const ShardEvent& event) {
  if (config_.base.fault.boot_failure_probability > 0.0 &&
      pool.boot_rng.next_bool(config_.base.fault.boot_failure_probability)) {
    pool.metrics.record_boot_failure();
    pool.fleet.retire(event.vm_id, event.time);
    return;
  }
  pool.fleet.mark_ready(event.vm_id);
  dispatch(pool, event.time);
}

void ShardedFleetSimulator::handle_task_complete(Shard& shard,
                                                 PoolRuntime& pool,
                                                 const ShardEvent& event) {
  VmInstance& vm = pool.fleet.vm(event.vm_id);
  Job& job = pool.jobs.at(event.job_id);
  trace_attempt(pool, job, vm, event.vm_id, event.time, /*killed=*/false);

  const double service = vm.run_service;
  pool.metrics.record_checkpoint_overhead(
      std::max(0.0, vm.run_service - vm.run_work));
  double cost = config_.base.fleet.catalog.job_cost_usd(vm.pool.family,
                                                        vm.pool.vcpus, service);
  if (vm.spot) {
    // Prevailing mean spot price over the run window; the static market's
    // mean is the flat multiplier, bit-for-bit.
    cost *= config_.base.fleet.market->mean_price(
        vm.pool.family, vm.pool.vcpus, vm.run_start, event.time);
  }
  job.cost_usd += cost;

  pool.fleet.release(event.vm_id, event.time);
  job.advance_stage();
  if (job.done()) {
    job.completion_time = event.time;
    const JobTemplate& tmpl = templates_[job.template_index];
    pool.metrics.record_completion(
        job, job.scale * tmpl.best_total_runtime_seconds());
    pool.plans.erase(event.job_id);
    pool.jobs.erase(event.job_id);
  } else {
    // Stage handoff. Every handoff — including to a pool on the same shard,
    // even the same pool — pays the same latency and goes through the
    // outbox, so event times never depend on the pool -> shard map.
    JobHandoff msg;
    msg.deliver_time = event.time + config_.handoff_latency_seconds;
    msg.plan = pool.plans.at(event.job_id);
    msg.dest_pool = ShardTopology::pool_index(msg.plan[job.stage]);
    msg.job = job;
    shard.outbox.push_back(std::move(msg));
    pool.plans.erase(event.job_id);
    pool.jobs.erase(event.job_id);
  }
  dispatch(pool, event.time);
}

void ShardedFleetSimulator::handle_attempt_killed(PoolRuntime& pool,
                                                  const ShardEvent& event,
                                                  bool spot_reclaim) {
  Job& job = pool.jobs.at(event.job_id);
  VmInstance& vm = pool.fleet.vm(event.vm_id);
  trace_attempt(pool, job, vm, event.vm_id, event.time, /*killed=*/true);

  const FaultConfig& fault = config_.base.fault;
  const double elapsed = event.time - vm.run_start;
  const double attempt_share = 1.0 - job.stage_progress;
  const double full_work =
      attempt_share > 0.0 ? vm.run_work / attempt_share : 0.0;

  double credited_work = 0.0;
  double overhead_spent = 0.0;
  switch (fault.restart) {
    case RestartModel::kFractionCredit: {
      const double done =
          vm.run_service > 0.0 ? elapsed / vm.run_service : 1.0;
      credited_work =
          vm.run_work * done *
          (1.0 - config_.base.fleet.spot.restart_overhead_fraction);
      break;
    }
    case RestartModel::kFromZero:
      break;
    case RestartModel::kCheckpoint: {
      credited_work = checkpoint::credited_work_seconds(
          elapsed, fault.checkpoint_interval_seconds,
          fault.checkpoint_overhead_seconds, vm.run_work);
      overhead_spent =
          static_cast<double>(checkpoint::completed_checkpoints(
              elapsed, fault.checkpoint_interval_seconds,
              fault.checkpoint_overhead_seconds)) *
          std::max(0.0, fault.checkpoint_overhead_seconds);
      break;
    }
  }
  if (full_work > 0.0) {
    job.stage_progress = std::clamp(
        job.stage_progress + credited_work / full_work, 0.0, 0.999999);
  }
  pool.metrics.record_checkpoint_overhead(overhead_spent);
  pool.metrics.record_wasted(
      std::max(0.0, elapsed - credited_work - overhead_spent));

  ++job.stage_kills;
  if (spot_reclaim) {
    ++job.preemptions;
    ++job.stage_evictions;
    pool.metrics.record_preemption();
    // Re-bid: same rule as the unsharded engine — an evicted job raises
    // its bid (a pure function of the old bid) for all later attempts.
    if (config_.base.market.enabled) {
      const double current =
          std::max(config_.base.fleet.spot_bid_fraction, job.bid);
      const double raised = std::min(
          config_.base.market.max_bid_fraction,
          current * config_.base.market.rebid_multiplier);
      if (raised > current) {
        job.bid = raised;
        pool.metrics.record_market_rebid();
      }
    }
  } else {
    pool.metrics.record_crash();
  }

  pool.fleet.retire(event.vm_id, event.time);

  if (spot_reclaim && fault.spot_evictions_before_fallback > 0 &&
      config_.base.fleet.spot_fraction < 1.0 &&
      job.stage_evictions >= fault.spot_evictions_before_fallback &&
      !job.require_on_demand) {
    job.require_on_demand = true;
    pool.metrics.record_spot_fallback();
  }

  if (job.stage_kills >= fault.max_attempts_per_stage) {
    pool.metrics.record_failure();
    pool.plans.erase(event.job_id);
    pool.jobs.erase(event.job_id);
    dispatch(pool, event.time);
    return;
  }

  const double delay =
      backoff_.delay_seconds(job.stage_kills, pool.backoff_rng);
  pool.metrics.record_retry();
  shard_of(pool).events.push({event.time + delay, ShardEventType::kTaskRetry,
                              pool.index, job.id, -1});
  dispatch(pool, event.time);
}

void ShardedFleetSimulator::handle_task_retry(PoolRuntime& pool,
                                              const ShardEvent& event) {
  if (pool.jobs.find(event.job_id) == pool.jobs.end()) return;  // defensive
  enqueue_stage(pool, event.job_id, event.time);
  arm_tick(pool, event.time);
  arm_market_tick(pool, event.time);
  dispatch(pool, event.time);
}

void ShardedFleetSimulator::handle_pool_tick(PoolRuntime& pool,
                                             const ShardEvent& event) {
  pool.tick_armed = false;
  PoolDemand demand;
  demand.queued = static_cast<int>(pool.queue.size());
  demand.busy = pool.fleet.busy_count(pool.key);
  demand.alive = pool.fleet.alive_count(pool.key);
  const int delta = pool.scaler.decide(pool.key, demand, event.time);
  if (delta > 0) {
    for (int i = 0; i < delta; ++i) {
      const int id = pool.fleet.launch(pool.key, event.time, pool.fleet_rng);
      shard_of(pool).events.push({event.time + config_.base.fleet.boot_seconds,
                                  ShardEventType::kVmBootComplete, pool.index,
                                  0, id});
    }
  } else if (delta < 0) {
    // Retire newest idle machines first (same rule as the unsharded
    // engine); re-read the set each round since retire() mutates it.
    const std::set<int>& idle = pool.fleet.idle_set(pool.key);
    int retire = std::min(-delta, static_cast<int>(idle.size()));
    while (retire-- > 0) pool.fleet.retire(*idle.rbegin(), event.time);
  }
  dispatch(pool, event.time);

  // Keep ticking while pool-local work can still change the fleet: queued
  // or running tasks, or surplus machines the scaler may yet retire. All
  // pool-local signals, so tick cadence survives resharding.
  if (!pool.queue.empty() || pool.fleet.busy_count(pool.key) > 0 ||
      pool.fleet.alive_count(pool.key) > config_.base.autoscaler.min_vms) {
    shard_of(pool).events.push(
        {event.time + config_.base.autoscaler.interval_seconds,
         ShardEventType::kPoolTick, pool.index, 0, -1});
    pool.tick_armed = true;
  }
}

void ShardedFleetSimulator::handle_market_tick(PoolRuntime& pool,
                                               const ShardEvent& event) {
  pool.market_tick_armed = false;
  const cloud::Market& market = *config_.base.fleet.market;
  Shard& shard = shard_of(pool);

  std::vector<TaskRef> kept;
  kept.reserve(pool.queue.size());
  for (TaskRef& task : pool.queue) {
    Job& job = pool.jobs.at(task.job_id);
    const MarketDecision decision =
        market_decide(market, config_.base.fleet, config_.base.market,
                      templates_[job.template_index], job, pool.key,
                      event.time);
    switch (decision.action) {
      case MarketAction::kKeep:
        break;
      case MarketAction::kFallback:
        job.require_on_demand = true;
        task.require_on_demand = true;
        pool.metrics.record_market_fallback();
        break;
      case MarketAction::kMigrate: {
        // Migration is an ordinary stage handoff to the cheaper pool: it
        // pays the uniform handoff latency through the shard outbox, which
        // both keeps event times independent of the pool -> shard map and
        // guarantees barrier-safe delivery. Checkpoint credit rides along
        // in job.stage_progress.
        JobHandoff msg;
        msg.deliver_time = event.time + config_.handoff_latency_seconds;
        msg.dest_pool = ShardTopology::pool_index(decision.pool);
        msg.plan = pool.plans.at(task.job_id);
        msg.plan[job.stage] = decision.pool;
        msg.job = job;
        shard.outbox.push_back(std::move(msg));
        pool.plans.erase(task.job_id);
        pool.jobs.erase(task.job_id);
        pool.metrics.record_market_migration();
        continue;  // leave the task out of the kept queue
      }
    }
    kept.push_back(task);
  }
  if (kept.size() != pool.queue.size()) {
    pool.queue = std::move(kept);
    note_queue_depth(pool, event.time);
  }
  note_market_price(pool, event.time);

  dispatch(pool, event.time);
  if (!pool.queue.empty()) {
    arm_market_tick(pool, event.time);
  }
}

void ShardedFleetSimulator::enqueue_stage(PoolRuntime& pool,
                                          std::uint64_t job_id, double now) {
  const Job& job = pool.jobs.at(job_id);
  TaskRef task;
  task.job_id = job_id;
  task.stage = job.stage;
  task.enqueue_time = now;
  task.deadline = job.slo_deadline;
  task.preferred = pool.key;
  task.seq = pool.next_task_seq++;
  task.require_on_demand = job.require_on_demand;
  pool.queue.push_back(task);
  note_queue_depth(pool, now);
}

void ShardedFleetSimulator::dispatch(PoolRuntime& pool, double now) {
  if (pool.queue.empty()) return;
  const std::set<int>& idle = pool.fleet.idle_set(pool.key);
  auto it = idle.begin();
  while (it != idle.end() && !pool.queue.empty()) {
    const int vm_id = *it;
    ++it;  // advance first: a successful pick erases vm_id from the set
    const bool spot_vm = pool.fleet.vm(vm_id).spot;
    const std::size_t index = pool.policy->pick(pool.queue, pool.key, spot_vm);
    if (index == kNoTask) continue;
    const TaskRef task = pool.queue[index];
    pool.queue.erase(pool.queue.begin() + static_cast<std::ptrdiff_t>(index));
    start_task(pool, vm_id, task, now);
  }
}

void ShardedFleetSimulator::start_task(PoolRuntime& pool, int vm_id,
                                       const TaskRef& task, double now) {
  Job& job = pool.jobs.at(task.job_id);
  VmInstance& vm = pool.fleet.vm(vm_id);
  const double work = service_seconds(job, vm);
  const double service =
      config_.base.fault.restart == RestartModel::kCheckpoint
          ? checkpoint::effective_seconds(
                work, config_.base.fault.checkpoint_interval_seconds,
                config_.base.fault.checkpoint_overhead_seconds)
          : work;
  pool.fleet.assign(vm_id, job.id, now, service, work);
  ++job.stage_attempts;
  note_queue_depth(pool, now);
  if (job.first_dispatch_time < 0.0) job.first_dispatch_time = now;
  pool.metrics.record_dispatch(now - task.enqueue_time);

  // Same hazard-draw discipline as the unsharded engine: draws happen
  // whenever their hazard is armed, never conditionally on another draw.
  double reclaim_in = kInf;
  if (vm.spot) {
    // The attempt bids the higher of the fleet default and the job's own
    // (re-bid-raised) bid. Static markets draw the classic exponential
    // from the pool's spot stream; trace markets return the first price
    // crossing above the bid and consume no randomness — either way the
    // draw discipline is pool-local and shard-count-independent.
    const double bid = std::max(config_.base.fleet.spot_bid_fraction, job.bid);
    reclaim_in = config_.base.fleet.market->reclaim_draw(
        vm.pool.family, vm.pool.vcpus, now, bid, pool.spot_rng);
  }
  double crash_in = kInf;
  if (config_.base.fault.crash_rate_per_hour > 0.0) {
    cloud::SpotModel crash_hazard;
    crash_hazard.interruptions_per_hour =
        config_.base.fault.crash_rate_per_hour;
    crash_in = crash_hazard.sample_time_to_interruption(pool.crash_rng);
  }
  Shard& shard = shard_of(pool);
  if (reclaim_in < service && reclaim_in <= crash_in) {
    shard.events.push({now + reclaim_in, ShardEventType::kSpotInterruption,
                       pool.index, job.id, vm_id});
    return;
  }
  if (crash_in < service) {
    shard.events.push(
        {now + crash_in, ShardEventType::kVmCrash, pool.index, job.id, vm_id});
    return;
  }
  shard.events.push({now + service, ShardEventType::kTaskComplete, pool.index,
                     job.id, vm_id});
}

void ShardedFleetSimulator::arm_tick(PoolRuntime& pool, double now) {
  if (pool.tick_armed) return;
  const double interval = config_.base.autoscaler.interval_seconds;
  // Ticks land on multiples of the interval, strictly after `now` — a pure
  // function of (now, interval), so per-pool tick trains are identical at
  // every shard count.
  double next = (std::floor(now / interval) + 1.0) * interval;
  if (next <= now) next += interval;
  shard_of(pool).events.push(
      {next, ShardEventType::kPoolTick, pool.index, 0, -1});
  pool.tick_armed = true;
}

void ShardedFleetSimulator::arm_market_tick(PoolRuntime& pool, double now) {
  if (!config_.base.market.enabled || pool.market_tick_armed) return;
  const double interval = config_.base.market.interval_seconds;
  // Like arm_tick: market ticks land on interval multiples strictly after
  // `now` — a pure function of (now, interval), identical at every shard
  // count.
  double next = (std::floor(now / interval) + 1.0) * interval;
  if (next <= now) next += interval;
  shard_of(pool).events.push(
      {next, ShardEventType::kMarketTick, pool.index, 0, -1});
  pool.market_tick_armed = true;
}

void ShardedFleetSimulator::note_market_price(PoolRuntime& pool, double now) {
  if (!tracing_) return;
  obs::TraceEvent event;
  event.name = pool.market_counter_name;
  event.phase = 'C';
  event.ts_us = now * 1e6;
  event.tid = 0;
  event.args.push_back(
      {"value", config_.base.fleet.market->price_at(pool.key.family,
                                                    pool.key.vcpus, now)});
  pool.trace_buffer.push_back(std::move(event));
}

void ShardedFleetSimulator::note_queue_depth(PoolRuntime& pool, double now) {
  if (!tracing_) return;
  obs::TraceEvent event;
  event.name = pool.queue_counter_name;
  event.phase = 'C';
  event.ts_us = now * 1e6;
  event.tid = 0;
  event.args.push_back(
      {"value", static_cast<double>(pool.queue.size())});
  pool.trace_buffer.push_back(std::move(event));
}

void ShardedFleetSimulator::trace_attempt(PoolRuntime& pool, const Job& job,
                                          const VmInstance& vm, int vm_id,
                                          double now, bool killed) {
  if (!tracing_) return;
  obs::TraceEvent event;
  event.name =
      "task/" + core::job_name(static_cast<core::JobKind>(job.stage)) +
      "/attempt-" + std::to_string(job.stage_attempts);
  event.category = "fleet";
  event.phase = 'X';
  event.ts_us = vm.run_start * 1e6;
  event.dur_us = (now - vm.run_start) * 1e6;
  event.tid = vm_lane(pool.index, vm_id);
  event.args = {
      {"job", static_cast<double>(job.id)},
      {"attempt", static_cast<double>(job.stage_attempts)},
      {"preempted", killed ? 1.0 : 0.0},
  };
  pool.trace_buffer.push_back(std::move(event));
}

double ShardedFleetSimulator::service_seconds(const Job& job,
                                              const VmInstance& vm) const {
  const JobTemplate& tmpl = templates_[job.template_index];
  const double full =
      tmpl.runtime(static_cast<core::JobKind>(job.stage), vm.pool.family,
                   vm.pool.vcpus) *
      job.scale;
  return std::max(1e-9, full * (1.0 - job.stage_progress));
}

std::uint64_t ShardedFleetSimulator::total_events() const {
  std::uint64_t total = 0;
  for (const ShardStats& stats : shard_stats_) total += stats.events_processed;
  return total;
}

void ShardedFleetSimulator::export_shard_stats(obs::Registry& registry,
                                               const obs::Labels& labels) const {
  registry.counter("fleet_shard.windows", labels).add(windows_);
  registry.counter("fleet_shard.events_total", labels).add(total_events());
  for (std::size_t s = 0; s < shard_stats_.size(); ++s) {
    obs::Labels shard_labels = labels;
    shard_labels.emplace_back("shard", std::to_string(s));
    const ShardStats& stats = shard_stats_[s];
    registry.counter("fleet_shard.events", shard_labels)
        .add(stats.events_processed);
    registry.counter("fleet_shard.handoffs_out", shard_labels)
        .add(stats.handoffs_out);
    registry.counter("fleet_shard.handoffs_in", shard_labels)
        .add(stats.handoffs_in);
    registry.gauge("fleet_shard.pools_owned", shard_labels)
        .set(static_cast<double>(stats.pools_owned));
  }
}

}  // namespace edacloud::sched
