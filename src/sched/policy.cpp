#include "sched/policy.hpp"

#include <stdexcept>

#include "cloud/heuristics.hpp"

namespace edacloud::sched {

std::array<PoolKey, core::kJobCount> FifoAnyPolicy::plan(
    const Job& job, const JobTemplate& tmpl) {
  (void)job;
  (void)tmpl;
  std::array<PoolKey, core::kJobCount> pools;
  pools.fill(default_pool_);
  return pools;
}

std::size_t FifoAnyPolicy::pick(const std::vector<TaskRef>& queue,
                                const PoolKey& pool, bool spot_vm) const {
  (void)pool;  // any VM takes the oldest task it is allowed to run
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (task_runnable_on(queue[i], spot_vm)) return i;
  }
  return kNoTask;
}

void CostAwarePolicy::set_fault_context(const FleetConfig& fleet,
                                        const FaultConfig& faults) {
  // The rate a dispatched task actually experiences: machine crashes hit
  // every VM; spot reclaims hit the spot_fraction share of capacity. The
  // reclaim rate comes from the market's planning view — a static market's
  // view IS its SpotModel, so flat-spot runs keep their exact numbers.
  const cloud::SpotModel view = fleet.market != nullptr
                                    ? fleet.market->planning_view()
                                    : fleet.spot;
  cloud::FaultModel model;
  model.interruptions_per_hour =
      faults.crash_rate_per_hour +
      fleet.spot_fraction * view.interruptions_per_hour;
  if (faults.restart == RestartModel::kCheckpoint) {
    model.checkpoint_interval_seconds = faults.checkpoint_interval_seconds;
    model.checkpoint_overhead_seconds = faults.checkpoint_overhead_seconds;
  }
  model.restart_delay_seconds = faults.backoff.base_seconds;
  fault_model_ = model;
}

std::array<PoolKey, core::kJobCount> CostAwarePolicy::plan(
    const Job& job, const JobTemplate& tmpl) {
  // Scale the template's recommended-family ladders by the job's size
  // jitter and stretch them to retry-inflated expected runtimes, then ask
  // the MCKP for the cheapest per-stage configuration that fits inside the
  // service share of the SLO budget (the rest is reserved for queueing and
  // boot).
  core::RuntimeLadders ladders = tmpl.recommended_ladders();
  for (auto& ladder : ladders) {
    for (double& runtime : ladder) {
      runtime = fault_model_.expected_runtime_seconds(runtime * job.scale);
    }
  }
  const double slo_budget = job.slo_deadline - job.arrival_time;
  const double service_budget = headroom_ * slo_budget;

  const auto stages = optimizer_.build_stages(ladders);
  const auto selection = cloud::solve_mckp_greedy(stages, service_budget);

  std::array<PoolKey, core::kJobCount> pools;
  for (core::JobKind job_kind : core::kAllJobs) {
    const int stage = static_cast<int>(job_kind);
    // Infeasible budget: run every stage at full width (the fastest item).
    const int choice = selection.feasible
                           ? selection.choice[stage]
                           : static_cast<int>(perf::kVcpuOptions.size()) - 1;
    pools[stage] = PoolKey{core::recommended_family(job_kind),
                           perf::kVcpuOptions[choice]};
  }
  return pools;
}

std::size_t CostAwarePolicy::pick(const std::vector<TaskRef>& queue,
                                  const PoolKey& pool, bool spot_vm) const {
  // Oldest waiting task routed to this pool; strict matching, no stealing.
  for (std::size_t i = 0; i < queue.size(); ++i) {
    if (queue[i].preferred == pool && task_runnable_on(queue[i], spot_vm)) {
      return i;
    }
  }
  return kNoTask;
}

std::size_t EdfBackfillPolicy::pick(const std::vector<TaskRef>& queue,
                                    const PoolKey& pool, bool spot_vm) const {
  std::size_t best_matching = kNoTask;
  std::size_t best_any = kNoTask;
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const TaskRef& task = queue[i];
    if (!task_runnable_on(task, spot_vm)) continue;
    const bool earlier_any =
        best_any == kNoTask || task.deadline < queue[best_any].deadline ||
        (task.deadline == queue[best_any].deadline &&
         task.seq < queue[best_any].seq);
    if (earlier_any) best_any = i;
    if (task.preferred != pool) continue;
    const bool earlier_matching =
        best_matching == kNoTask ||
        task.deadline < queue[best_matching].deadline ||
        (task.deadline == queue[best_matching].deadline &&
         task.seq < queue[best_matching].seq);
    if (earlier_matching) best_matching = i;
  }
  // Matching work drains EDF; otherwise backfill the most urgent task from
  // any pool so the machine never idles while jobs wait.
  return best_matching != kNoTask ? best_matching : best_any;
}

std::unique_ptr<SchedulerPolicy> make_policy(const std::string& name) {
  if (name == "fifo") return std::make_unique<FifoAnyPolicy>();
  if (name == "cost") return std::make_unique<CostAwarePolicy>();
  if (name == "edf") return std::make_unique<EdfBackfillPolicy>();
  throw std::invalid_argument("unknown policy '" + name +
                              "' (expected fifo | cost | edf)");
}

}  // namespace edacloud::sched
