#pragma once
// The simulated VM fleet: pools of identical (family, vCPU) instances with
// boot latency, per-second billing through cloud::PricingCatalog, and an
// optional spot tier (discounted rate, reclaimable mid-run). The fleet only
// tracks machine state and money; *what* runs *where* is the policy's job.

#include <compare>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cloud/market.hpp"
#include "cloud/pricing.hpp"
#include "perf/vm.hpp"
#include "sched/job.hpp"
#include "util/rng.hpp"

namespace edacloud::sched {

struct PoolKey {
  perf::InstanceFamily family = perf::InstanceFamily::kGeneralPurpose;
  int vcpus = 1;
  auto operator<=>(const PoolKey&) const = default;
};

std::string to_string(const PoolKey& key);

struct VmInstance {
  enum class State : std::uint8_t { kBooting, kIdle, kBusy, kRetired };

  int id = -1;
  PoolKey pool;
  perf::VmConfig config;
  bool spot = false;
  State state = State::kBooting;
  double launch_time = 0.0;
  double ready_time = 0.0;
  double retire_time = -1.0;   // < 0 while alive
  double busy_seconds = 0.0;   // accumulated service time
  std::uint64_t running_job = kNoJob;
  double run_start = 0.0;
  double run_service = 0.0;    // scheduled service time of the current run
  double run_work = 0.0;       // work component (service minus snapshots)
};

struct FleetConfig {
  double boot_seconds = 45.0;
  double spot_fraction = 0.0;  // probability a launched VM is a spot instance
  cloud::SpotModel spot;
  cloud::PricingCatalog catalog = cloud::PricingCatalog::aws_like();
  /// The spot market spot VMs bill and get reclaimed against. Null means
  /// "the classic flat model": consumers normalize it to a StaticMarket
  /// wrapping `spot` (cloud::ensure_market), which reproduces pre-market
  /// billing and reclaim draws bit-for-bit.
  std::shared_ptr<const cloud::Market> market;
  /// Default bid, as a fraction of the on-demand rate, a spot attempt
  /// places when its job has not re-bid higher. Price-triggered markets
  /// reclaim the VM the moment the spot price crosses above the bid; the
  /// static market ignores bids entirely.
  double spot_bid_fraction = 0.5;
};

class Fleet {
 public:
  explicit Fleet(FleetConfig config);

  /// Launch a VM into `pool` at `now`. `warm` skips the boot delay (used to
  /// seed a pre-provisioned fleet at t = 0). Spot assignment is drawn from
  /// `rng` at `spot_fraction`. Returns the new VM id.
  int launch(const PoolKey& pool, double now, util::Rng& rng,
             bool warm = false);

  void mark_ready(int id);
  /// Start a run. `work_seconds` is the useful-work component of the
  /// service time (defaults to all of it; less when checkpoint snapshots
  /// pad the schedule).
  void assign(int id, std::uint64_t job, double now, double service_seconds,
              double work_seconds = -1.0);
  /// Finish the current run and return the VM to the idle pool.
  void release(int id, double now);
  /// Retire the VM (scale-down or spot reclaim). Busy VMs are allowed —
  /// the in-flight run's elapsed time is credited as busy time.
  void retire(int id, double now);

  [[nodiscard]] VmInstance& vm(int id) { return vms_[id]; }
  [[nodiscard]] const VmInstance& vm(int id) const { return vms_[id]; }
  [[nodiscard]] const std::vector<VmInstance>& instances() const {
    return vms_;
  }

  /// Pools that ever existed, in deterministic (family, vcpus) order.
  [[nodiscard]] std::vector<PoolKey> pools() const;
  /// Idle VM ids in `pool`, ascending (the dispatch order).
  [[nodiscard]] std::vector<int> idle_in(const PoolKey& pool) const;
  /// The live idle-id set for `pool` (ascending), maintained incrementally —
  /// the O(1)-per-transition view the sharded simulator dispatches from.
  /// Invalidated by assign/retire of a member; advance iterators first.
  [[nodiscard]] const std::set<int>& idle_set(const PoolKey& pool) const;
  [[nodiscard]] int alive_count(const PoolKey& pool) const;
  [[nodiscard]] int busy_count(const PoolKey& pool) const;
  [[nodiscard]] int idle_count(const PoolKey& pool) const;
  [[nodiscard]] int total_alive() const;

  /// Hourly rate of one VM at its launch instant, spot discount included
  /// (the market's launch-time price; constant for the static market).
  [[nodiscard]] double hourly_rate_usd(const VmInstance& vm) const;
  /// Fleet bill at `now`: every VM pays per second (whole seconds, boot and
  /// idle time included) from launch until retirement or `now`. Spot VMs
  /// bill at the market's time-weighted mean price over their lifetime —
  /// the prevailing per-second price, not the launch-time multiplier.
  [[nodiscard]] double total_cost_usd(double now) const;
  [[nodiscard]] double busy_seconds_total() const;
  [[nodiscard]] double alive_seconds_total(double now) const;

  [[nodiscard]] const FleetConfig& config() const { return config_; }

 private:
  // Per-pool incremental tallies so count queries never rescan the VM list
  // (a million-VM fleet would otherwise pay O(pool) per dispatch).
  struct PoolCounts {
    int alive = 0;
    int busy = 0;
  };

  FleetConfig config_;
  std::vector<VmInstance> vms_;
  std::map<PoolKey, std::vector<int>> by_pool_;
  std::map<PoolKey, std::set<int>> idle_by_pool_;
  std::map<PoolKey, PoolCounts> counts_;
  int total_alive_ = 0;
};

}  // namespace edacloud::sched
