#pragma once
// Open-loop load generation, in the style of the mutated load-testing
// client: arrivals form a Poisson process whose rate does not react to
// completions (so queueing delay is measured honestly, not throttled away),
// optionally modulated into bursts by a square-wave rate multiplier.

#include <cstdint>
#include <string>
#include <vector>

#include "sched/job.hpp"
#include "util/rng.hpp"

namespace edacloud::sched {

/// A named arrival pattern: per-template draw weights plus an optional
/// square-wave burst modulation of the arrival rate.
struct TrafficMix {
  std::string name = "uniform";
  std::vector<double> weights;        // per template; empty = template weights
  double burst_factor = 1.0;          // rate multiplier inside a burst
  double burst_period_seconds = 0.0;  // 0 = stationary Poisson
  double burst_duty = 0.25;           // fraction of each period bursting
};

/// Equal draw weights — the balanced design-space-exploration workload.
TrafficMix uniform_mix();
/// 80/15/5 small/medium/large — an interactive, small-job-heavy queue.
TrafficMix skewed_mix();
/// Uniform weights with 4x rate bursts 25% of the time — tapeout crunch.
TrafficMix bursty_mix();
/// Lookup by name ("uniform" | "skewed" | "bursty"); throws on unknown.
TrafficMix mix_by_name(const std::string& name);

struct LoadConfig {
  double arrival_rate_per_hour = 60.0;
  /// Per-job SLO: deadline = multiplier x the job's best-case service time.
  double slo_multiplier = 4.0;
  /// Lognormal sigma of the per-job runtime scale (mean kept at 1).
  double scale_sigma = 0.25;
  TrafficMix mix;
};

class LoadGenerator {
 public:
  LoadGenerator(LoadConfig config, const std::vector<JobTemplate>* templates,
                std::uint64_t seed);

  /// The next Poisson arrival strictly after `now` (piecewise-constant
  /// thinning when the mix bursts).
  [[nodiscard]] double next_arrival_after(double now);

  /// Materialize the job arriving at `time`: template draw, size jitter,
  /// SLO deadline.
  [[nodiscard]] Job make_job(std::uint64_t id, double time);

  /// Instantaneous arrival rate (jobs/second) at sim time `t`.
  [[nodiscard]] double rate_at(double t) const;

  [[nodiscard]] const LoadConfig& config() const { return config_; }

 private:
  LoadConfig config_;
  const std::vector<JobTemplate>* templates_;
  util::Rng rng_;
  std::vector<double> cumulative_weights_;
};

}  // namespace edacloud::sched
