#pragma once
// Open-loop load generation, in the style of the mutated load-testing
// client: arrivals form a Poisson process whose rate does not react to
// completions (so queueing delay is measured honestly, not throttled away),
// optionally modulated into bursts by a square-wave rate multiplier.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sched/job.hpp"
#include "util/rng.hpp"

namespace edacloud::sched {

/// A named arrival pattern: per-template draw weights plus optional
/// square-wave burst and sinusoidal (diurnal) modulations of the arrival
/// rate. Both modulations compose multiplicatively.
struct TrafficMix {
  std::string name = "uniform";
  std::vector<double> weights;        // per template; empty = template weights
  double burst_factor = 1.0;          // rate multiplier inside a burst
  double burst_period_seconds = 0.0;  // 0 = stationary Poisson
  double burst_duty = 0.25;           // fraction of each period bursting
  /// Sinusoidal modulation: rate *= 1 + amplitude * sin(2*pi*t / period).
  /// amplitude must lie in [0, 1) so the rate stays positive; 0 (or a
  /// non-positive period) disables the term entirely.
  double sine_amplitude = 0.0;
  double sine_period_seconds = 0.0;
};

/// Equal draw weights — the balanced design-space-exploration workload.
TrafficMix uniform_mix();
/// 80/15/5 small/medium/large — an interactive, small-job-heavy queue.
TrafficMix skewed_mix();
/// Uniform weights with 4x rate bursts 25% of the time — tapeout crunch.
TrafficMix bursty_mix();
/// Uniform weights under a 24h sine swing (amplitude 0.8) — the classic
/// business-day load curve.
TrafficMix diurnal_mix();
/// Flash crowd: large-job-heavy weights with rare, violent 10x bursts (5%
/// duty over a 2h period) — a release-day regression stampede.
TrafficMix flash_mix();

/// The named-mix provider registry. The five builtin mixes ("uniform",
/// "skewed", "bursty", "diurnal", "flash") are pre-registered; callers may
/// add their own factories (re-registering a name replaces it). Not
/// thread-safe: register before simulations start.
using TrafficMixFactory = std::function<TrafficMix()>;
void register_traffic_mix(const std::string& name, TrafficMixFactory factory);
/// Registered mix names, sorted — the vocabulary CLI errors enumerate.
[[nodiscard]] std::vector<std::string> traffic_mix_names();
/// Lookup by registered name; throws std::invalid_argument on an unknown
/// name with a message enumerating every valid one.
TrafficMix mix_by_name(const std::string& name);

struct LoadConfig {
  double arrival_rate_per_hour = 60.0;
  /// Per-job SLO: deadline = multiplier x the job's best-case service time.
  double slo_multiplier = 4.0;
  /// Lognormal sigma of the per-job runtime scale (mean kept at 1).
  double scale_sigma = 0.25;
  TrafficMix mix;
};

class LoadGenerator {
 public:
  LoadGenerator(LoadConfig config, const std::vector<JobTemplate>* templates,
                std::uint64_t seed);

  /// The next Poisson arrival strictly after `now` (piecewise-constant
  /// thinning when the mix bursts).
  [[nodiscard]] double next_arrival_after(double now);

  /// Materialize the job arriving at `time`: template draw, size jitter,
  /// SLO deadline.
  [[nodiscard]] Job make_job(std::uint64_t id, double time);

  /// Instantaneous arrival rate (jobs/second) at sim time `t`.
  [[nodiscard]] double rate_at(double t) const;

  [[nodiscard]] const LoadConfig& config() const { return config_; }

 private:
  LoadConfig config_;
  const std::vector<JobTemplate>* templates_;
  util::Rng rng_;
  std::vector<double> cumulative_weights_;
};

}  // namespace edacloud::sched
