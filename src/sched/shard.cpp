#include "sched/shard.hpp"

#include <algorithm>
#include <stdexcept>

namespace edacloud::sched {

ShardTopology::ShardTopology(int shard_count) : shard_count_(shard_count) {
  if (shard_count < 1 || shard_count > kPoolCount) {
    throw std::invalid_argument("shard_count must be in [1, " +
                                std::to_string(kPoolCount) + "]");
  }
  pools_of_shard_.resize(static_cast<std::size_t>(shard_count));
  for (int pool = 0; pool < kPoolCount; ++pool) {
    pools_of_shard_[static_cast<std::size_t>(shard_of_pool(pool))].push_back(
        pool);
  }
}

int ShardTopology::pool_index(const PoolKey& key) {
  const auto it = std::find(perf::kVcpuOptions.begin(),
                            perf::kVcpuOptions.end(), key.vcpus);
  if (it == perf::kVcpuOptions.end()) {
    throw std::invalid_argument("pool_index: unknown vCPU size " +
                                std::to_string(key.vcpus));
  }
  const int size_index =
      static_cast<int>(std::distance(perf::kVcpuOptions.begin(), it));
  return static_cast<int>(key.family) *
             static_cast<int>(perf::kVcpuOptions.size()) +
         size_index;
}

PoolKey ShardTopology::pool_at(int index) {
  if (index < 0 || index >= kPoolCount) {
    throw std::invalid_argument("pool_at: index out of range");
  }
  const int sizes = static_cast<int>(perf::kVcpuOptions.size());
  PoolKey key;
  key.family = static_cast<perf::InstanceFamily>(index / sizes);
  key.vcpus = perf::kVcpuOptions[static_cast<std::size_t>(index % sizes)];
  return key;
}

}  // namespace edacloud::sched
