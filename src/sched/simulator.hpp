#pragma once
// The discrete-event cloud fleet simulator (the dynamic half of the paper's
// problem): an open-loop stream of EDA flow jobs arrives at an autoscaled
// fleet of priced VM pools; a pluggable policy routes each flow stage to a
// machine; spot instances get reclaimed mid-run, VMs can fail to boot or
// crash mid-task (FaultConfig), and killed stages retry with deterministic
// exponential backoff, resuming from their last checkpoint. Everything is
// driven by one seeded event queue, so a (config, seed) pair fully
// determines the resulting FleetMetrics.

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "sched/autoscaler.hpp"
#include "sched/event_queue.hpp"
#include "sched/fault.hpp"
#include "sched/fleet.hpp"
#include "sched/job.hpp"
#include "sched/load_gen.hpp"
#include "sched/market_policy.hpp"
#include "sched/metrics.hpp"
#include "sched/policy.hpp"

namespace edacloud::sched {

/// Full parameterization of one simulated run. A (SimConfig, seed) pair —
/// the seed lives inside — determines every event, metric and trace byte;
/// this is also the `base` the sharded engine (sharded_simulator.hpp)
/// builds on.
struct SimConfig {
  /// Arrivals stop after this much sim time; in-flight jobs then drain.
  double duration_seconds = 4 * 3600.0;
  /// Hard stop for the drain phase (0 = drain until every job finishes).
  double drain_limit_seconds = 0.0;
  /// Master seed. Every RNG stream (arrivals, spot assignment, reclaim /
  /// crash / boot hazards, backoff jitter) derives from it via salted
  /// splitmix64, so streams never alias each other.
  std::uint64_t seed = 1;
  LoadConfig load;
  FleetConfig fleet;
  AutoscalerConfig autoscaler;
  FaultConfig fault;
  /// Re-bid/migrate market policy; disabled by default (no market ticks).
  MarketPolicyConfig market;
  /// Pools pre-provisioned (already booted, idle) at t = 0.
  std::vector<std::pair<PoolKey, int>> warm_pools;
};

/// The sequential discrete-event engine: one event queue, one clock, one
/// policy instance. Use ShardedFleetSimulator for very large fleets or
/// when window-parallel execution is wanted; results of the two engines
/// are each internally deterministic but are NOT byte-comparable to each
/// other (the sharded engine models an explicit stage-handoff latency).
class FleetSimulator {
 public:
  /// `templates` are the flow classes jobs are drawn from (see
  /// builtin_templates()); `policy` must be non-null — the simulator
  /// announces the fleet/fault context to it before the run.
  /// Throws std::invalid_argument on a null policy or a non-positive
  /// retry budget.
  FleetSimulator(SimConfig config, std::vector<JobTemplate> templates,
                 std::unique_ptr<SchedulerPolicy> policy);

  /// Run to completion (arrival window + drain) and return the finalized
  /// metrics. Single-shot: a second call throws std::logic_error. If the
  /// global tracer is enabled in kVirtual mode, the virtual clock is
  /// advanced with simulated time and task attempts / queue depths are
  /// emitted as spans and counters.
  FleetMetrics run();

  /// The fleet after (or during) the run — machine states, billing totals.
  [[nodiscard]] const Fleet& fleet() const { return fleet_; }
  /// The routing/dispatch policy the run used.
  [[nodiscard]] const SchedulerPolicy& policy() const { return *policy_; }

 private:
  void handle_arrival(const Event& event);
  void handle_boot(const Event& event);
  void handle_task_complete(const Event& event);
  /// Shared kill path for spot reclaims and injected VM crashes: credit
  /// surviving progress per the restart model, retire the machine, and
  /// either schedule a backoff retry or fail the job.
  void handle_attempt_killed(const Event& event, bool spot_reclaim);
  void handle_task_retry(const Event& event);
  void handle_autoscaler_tick();
  /// Market tick: re-evaluate every queued task against current spot
  /// prices (fall back to on-demand / migrate to a cheaper pool) and emit
  /// market price trace counters. Only scheduled when market.enabled.
  void handle_market_tick();

  void enqueue_stage(const Job& job);
  void dispatch();
  void start_task(int vm_id, const TaskRef& task);
  [[nodiscard]] double service_seconds(const Job& job,
                                       const VmInstance& vm) const;
  [[nodiscard]] std::uint64_t in_flight() const;

  SimConfig config_;
  std::vector<JobTemplate> templates_;
  std::unique_ptr<SchedulerPolicy> policy_;

  EventQueue events_;
  Fleet fleet_;
  Autoscaler autoscaler_;
  LoadGenerator generator_;
  MetricsCollector metrics_;
  BackoffSchedule backoff_;
  util::Rng fleet_rng_;    // spot-tier assignment on launch
  util::Rng spot_rng_;     // reclaim timing on spot VMs
  util::Rng crash_rng_;    // mid-task crash timing
  util::Rng boot_rng_;     // boot-failure coin flips
  util::Rng backoff_rng_;  // retry jitter

  double now_ = 0.0;
  bool arrivals_open_ = true;
  std::uint64_t next_job_id_ = 0;
  std::uint64_t next_task_seq_ = 0;
  std::map<std::uint64_t, Job> jobs_;
  std::map<std::uint64_t, std::array<PoolKey, core::kJobCount>> plans_;
  std::vector<TaskRef> queue_;
  int peak_vms_ = 0;
  bool ran_ = false;
};

}  // namespace edacloud::sched
