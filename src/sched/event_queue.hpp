#pragma once
// Deterministic discrete-event core for the sequential fleet simulator: a
// min-heap over (sim-time, insertion sequence), so simultaneous events
// always fire in the order they were scheduled — identical on every
// platform and run. The sharded engine uses sched::ShardEventQueue instead,
// which deliberately has NO insertion sequence (see shard.hpp for why).

#include <cstdint>
#include <queue>
#include <vector>

namespace edacloud::sched {

/// Event kinds the sequential simulator processes. Values are scheduling
/// payloads, not priorities — ordering is purely (time, seq).
enum class EventType : std::uint8_t {
  kJobArrival,       // LoadGenerator delivers a new flow job
  kVmBootComplete,   // a launched VM becomes schedulable (or fails to boot)
  kTaskComplete,     // the stage running on vm_id finishes
  kSpotInterruption, // the spot VM vm_id is reclaimed mid-run
  kVmCrash,          // the VM vm_id dies mid-run (fault injection)
  kTaskRetry,        // a killed stage's backoff expired; re-enqueue it
  kAutoscalerTick,   // periodic fleet-sizing decision
  kMarketTick,       // periodic re-bid/migrate re-evaluation of the queue
};

/// One scheduled occurrence. `job_id` / `vm_id` are meaningful only for
/// the event kinds that reference a job or machine (see EventType); the
/// defaults mark "not applicable".
struct Event {
  double time = 0.0;      // absolute simulated seconds
  std::uint64_t seq = 0;  // assigned by the queue; breaks time ties FIFO
  EventType type = EventType::kJobArrival;
  std::uint64_t job_id = 0;
  int vm_id = -1;
};

/// FIFO-tie-broken min-heap of Events. Determinism contract: two pushes at
/// the same `time` pop in push order, so a simulator draining this queue is
/// a pure function of its push sequence — no platform-dependent heap
/// behavior ever shows through.
class EventQueue {
 public:
  /// Schedule `type` at absolute sim time `time`. The insertion sequence
  /// number is assigned here — callers never supply one.
  void push(double time, EventType type, std::uint64_t job_id = 0,
            int vm_id = -1) {
    heap_.push(Event{time, next_seq_++, type, job_id, vm_id});
  }

  /// Remove and return the earliest event. Precondition: !empty().
  Event pop() {
    Event event = heap_.top();
    heap_.pop();
    return event;
  }

  /// The earliest event without removing it. Precondition: !empty().
  [[nodiscard]] const Event& peek() const { return heap_.top(); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace edacloud::sched
