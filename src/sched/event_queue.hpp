#pragma once
// Deterministic discrete-event core for the fleet simulator: a min-heap
// over (sim-time, insertion sequence), so simultaneous events always fire
// in the order they were scheduled — identical on every platform and run.

#include <cstdint>
#include <queue>
#include <vector>

namespace edacloud::sched {

enum class EventType : std::uint8_t {
  kJobArrival,       // LoadGenerator delivers a new flow job
  kVmBootComplete,   // a launched VM becomes schedulable (or fails to boot)
  kTaskComplete,     // the stage running on vm_id finishes
  kSpotInterruption, // the spot VM vm_id is reclaimed mid-run
  kVmCrash,          // the VM vm_id dies mid-run (fault injection)
  kTaskRetry,        // a killed stage's backoff expired; re-enqueue it
  kAutoscalerTick,   // periodic fleet-sizing decision
};

struct Event {
  double time = 0.0;
  std::uint64_t seq = 0;  // assigned by the queue; breaks time ties FIFO
  EventType type = EventType::kJobArrival;
  std::uint64_t job_id = 0;
  int vm_id = -1;
};

class EventQueue {
 public:
  void push(double time, EventType type, std::uint64_t job_id = 0,
            int vm_id = -1) {
    heap_.push(Event{time, next_seq_++, type, job_id, vm_id});
  }

  Event pop() {
    Event event = heap_.top();
    heap_.pop();
    return event;
  }

  [[nodiscard]] const Event& peek() const { return heap_.top(); }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace edacloud::sched
