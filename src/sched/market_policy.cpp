#include "sched/market_policy.hpp"

#include <algorithm>
#include <array>

#include "perf/vm.hpp"

namespace edacloud::sched {

namespace {

/// Blended $/hour of one vCPU-shaped pool right now: the on-demand slice
/// pays list price, the spot slice pays the current spot price (capped at
/// on-demand — nobody pays above list for reclaimable capacity).
double blended_hourly_usd(const cloud::Market& market,
                          const FleetConfig& fleet, const PoolKey& pool,
                          double now) {
  const double hourly = fleet.catalog.hourly_usd(pool.family, pool.vcpus);
  const double sf = std::clamp(fleet.spot_fraction, 0.0, 1.0);
  const double price =
      std::min(market.price_at(pool.family, pool.vcpus, now), 1.0);
  return hourly * ((1.0 - sf) + sf * price);
}

double stage_runtime_seconds(const JobTemplate& tmpl, const Job& job,
                             const PoolKey& pool) {
  const double full = tmpl.runtime(static_cast<core::JobKind>(job.stage),
                                   pool.family, pool.vcpus) *
                      job.scale;
  return full * (1.0 - job.stage_progress);
}

}  // namespace

double market_stage_cost_usd(const cloud::Market& market,
                             const FleetConfig& fleet,
                             const JobTemplate& tmpl, const Job& job,
                             const PoolKey& pool, double now) {
  const double runtime = stage_runtime_seconds(tmpl, job, pool);
  return blended_hourly_usd(market, fleet, pool, now) * runtime / 3600.0;
}

MarketDecision market_decide(const cloud::Market& market,
                             const FleetConfig& fleet,
                             const MarketPolicyConfig& policy,
                             const JobTemplate& tmpl, const Job& job,
                             const PoolKey& preferred, double now) {
  MarketDecision decision;
  if (job.done()) return decision;

  const double current_runtime = stage_runtime_seconds(tmpl, job, preferred);
  const double current_cost =
      market_stage_cost_usd(market, fleet, tmpl, job, preferred, now);

  // Scan the 12 canonical pools in (family, vcpus) order; a candidate must
  // beat the incumbent's cost by the hysteresis margin without stretching
  // the stage past the runtime slack. Strict `<` on cost keeps the first
  // (canonical-order) winner on ties — deterministic across engines.
  double best_cost = policy.migrate_margin * current_cost;
  for (const perf::InstanceFamily family :
       {perf::InstanceFamily::kGeneralPurpose,
        perf::InstanceFamily::kMemoryOptimized,
        perf::InstanceFamily::kComputeOptimized}) {
    for (const int vcpus : perf::kVcpuOptions) {
      const PoolKey candidate{family, vcpus};
      if (candidate == preferred) continue;
      const double runtime = stage_runtime_seconds(tmpl, job, candidate);
      if (runtime > policy.migrate_runtime_slack * current_runtime) continue;
      const double cost =
          market_stage_cost_usd(market, fleet, tmpl, job, candidate, now);
      if (cost < best_cost) {
        best_cost = cost;
        decision.action = MarketAction::kMigrate;
        decision.pool = candidate;
      }
    }
  }
  if (decision.action == MarketAction::kMigrate) return decision;

  // No cheaper home: if the incumbent pool's spot price has risen to
  // (nearly) on-demand, stop gambling and pin the task to on-demand
  // capacity — but only when the fleet launches an on-demand tier at all;
  // an all-spot fleet would strand the task forever.
  if (!job.require_on_demand && fleet.spot_fraction < 1.0) {
    const double price = market.price_at(preferred.family, preferred.vcpus, now);
    if (price >= policy.fallback_price_fraction) {
      decision.action = MarketAction::kFallback;
    }
  }
  return decision;
}

}  // namespace edacloud::sched
