#include "sched/simulator.hpp"

#include <algorithm>
#include <limits>
#include <set>
#include <stdexcept>

#include "obs/trace.hpp"

namespace edacloud::sched {

namespace {

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t state = seed ^ (salt * 0x9E3779B97F4A7C15ULL);
  return util::splitmix64(state);
}

/// One finished (or killed) task attempt as a trace span on the VM's lane,
/// named task/<stage>/attempt-N so repeated attempts of the same stage are
/// distinguishable in the viewer. Everything is simulated time, so
/// same-seed runs emit identical spans; lanes are VM ids, which Perfetto
/// renders as one track per VM.
void trace_task_attempt(const Job& job, const VmInstance& vm, int vm_id,
                        double now, bool killed) {
  obs::Tracer& tracer = obs::Tracer::global();
  if (!tracer.enabled()) return;
  std::vector<obs::TraceArg> args = {
      {"job", static_cast<double>(job.id)},
      {"attempt", static_cast<double>(job.stage_attempts)},
      {"preempted", killed ? 1.0 : 0.0},
  };
  tracer.emit_complete(
      "task/" + core::job_name(static_cast<core::JobKind>(job.stage)) +
          "/attempt-" + std::to_string(job.stage_attempts),
      "fleet", vm.run_start * 1e6, (now - vm.run_start) * 1e6,
      static_cast<std::uint32_t>(vm_id), std::move(args));
}

}  // namespace

FleetSimulator::FleetSimulator(SimConfig config,
                               std::vector<JobTemplate> templates,
                               std::unique_ptr<SchedulerPolicy> policy)
    : config_(std::move(config)),
      templates_(std::move(templates)),
      policy_(std::move(policy)),
      fleet_(config_.fleet),
      autoscaler_(config_.autoscaler),
      generator_(config_.load, &templates_, derive_seed(config_.seed, 1)),
      backoff_(config_.fault.backoff),
      fleet_rng_(derive_seed(config_.seed, 2)),
      spot_rng_(derive_seed(config_.seed, 3)),
      crash_rng_(derive_seed(config_.seed, 4)),
      boot_rng_(derive_seed(config_.seed, 5)),
      backoff_rng_(derive_seed(config_.seed, 6)) {
  if (policy_ == nullptr) throw std::invalid_argument("policy is required");
  if (config_.fault.max_attempts_per_stage < 1) {
    throw std::invalid_argument("max_attempts_per_stage must be >= 1");
  }
  // Normalize the market seam once: a null market means "classic flat spot
  // model", realized as a StaticMarket over config_.fleet.spot. fleet_
  // already normalized its own copy in its constructor; this keeps the
  // simulator's reclaim draws and the policy's planning view consistent
  // with it.
  config_.fleet.market =
      cloud::ensure_market(config_.fleet.market, config_.fleet.spot);
  policy_->set_fault_context(config_.fleet, config_.fault);
}

FleetMetrics FleetSimulator::run() {
  if (ran_) throw std::logic_error("FleetSimulator::run is single-shot");
  ran_ = true;

  for (const auto& [pool, count] : config_.warm_pools) {
    for (int i = 0; i < count; ++i) fleet_.launch(pool, 0.0, fleet_rng_, true);
  }
  peak_vms_ = fleet_.total_alive();

  const double first = generator_.next_arrival_after(0.0);
  if (first <= config_.duration_seconds) {
    events_.push(first, EventType::kJobArrival);
  } else {
    arrivals_open_ = false;
  }
  events_.push(config_.autoscaler.interval_seconds,
               EventType::kAutoscalerTick);
  if (config_.market.enabled) {
    events_.push(config_.market.interval_seconds, EventType::kMarketTick);
  }

  const double hard_stop =
      config_.drain_limit_seconds > 0.0
          ? config_.duration_seconds + config_.drain_limit_seconds
          : 0.0;

  obs::Tracer& tracer = obs::Tracer::global();
  const bool virtual_clock =
      tracer.enabled() && tracer.clock_mode() == obs::ClockMode::kVirtual;

  while (!events_.empty()) {
    const Event event = events_.pop();
    now_ = event.time;
    if (virtual_clock) tracer.set_virtual_time_seconds(now_);
    if (hard_stop > 0.0 && now_ > hard_stop) break;
    switch (event.type) {
      case EventType::kJobArrival:
        handle_arrival(event);
        break;
      case EventType::kVmBootComplete:
        handle_boot(event);
        break;
      case EventType::kTaskComplete:
        handle_task_complete(event);
        break;
      case EventType::kSpotInterruption:
        handle_attempt_killed(event, /*spot_reclaim=*/true);
        break;
      case EventType::kVmCrash:
        handle_attempt_killed(event, /*spot_reclaim=*/false);
        break;
      case EventType::kTaskRetry:
        handle_task_retry(event);
        break;
      case EventType::kAutoscalerTick:
        handle_autoscaler_tick();
        break;
      case EventType::kMarketTick:
        handle_market_tick();
        break;
    }
    peak_vms_ = std::max(peak_vms_, fleet_.total_alive());
  }

  MetricsCollector::FleetStats stats;
  stats.busy_seconds = fleet_.busy_seconds_total();
  stats.alive_seconds = fleet_.alive_seconds_total(now_);
  stats.total_cost_usd = fleet_.total_cost_usd(now_);
  stats.peak_vms = peak_vms_;
  stats.vms_launched = static_cast<int>(fleet_.instances().size());
  return metrics_.finalize(config_.duration_seconds, now_, stats);
}

void FleetSimulator::handle_arrival(const Event& event) {
  (void)event;
  const std::uint64_t id = next_job_id_++;
  Job job = generator_.make_job(id, now_);
  metrics_.record_submitted();
  plans_[id] = policy_->plan(job, templates_[job.template_index]);
  jobs_[id] = job;
  enqueue_stage(jobs_[id]);
  dispatch();

  const double next = generator_.next_arrival_after(now_);
  if (next <= config_.duration_seconds) {
    events_.push(next, EventType::kJobArrival);
  } else {
    arrivals_open_ = false;
  }
}

void FleetSimulator::handle_boot(const Event& event) {
  // Boot-failure injection: the machine never becomes schedulable; it
  // retires immediately (the boot window still bills) and the autoscaler
  // replaces it once the demand shows up again at a later tick.
  if (config_.fault.boot_failure_probability > 0.0 &&
      boot_rng_.next_bool(config_.fault.boot_failure_probability)) {
    metrics_.record_boot_failure();
    fleet_.retire(event.vm_id, now_);
    return;
  }
  fleet_.mark_ready(event.vm_id);
  dispatch();
}

void FleetSimulator::handle_task_complete(const Event& event) {
  VmInstance& vm = fleet_.vm(event.vm_id);
  Job& job = jobs_.at(event.job_id);
  trace_task_attempt(job, vm, event.vm_id, now_, /*killed=*/false);

  const double service = vm.run_service;
  // Snapshot padding (service minus work) is paid, not useful progress.
  metrics_.record_checkpoint_overhead(
      std::max(0.0, vm.run_service - vm.run_work));
  double cost = config_.fleet.catalog.job_cost_usd(vm.pool.family,
                                                   vm.pool.vcpus, service);
  if (vm.spot) {
    // The attempt pays the prevailing mean spot price over its run window;
    // the static market's mean is the flat multiplier, bit-for-bit.
    cost *= config_.fleet.market->mean_price(vm.pool.family, vm.pool.vcpus,
                                             vm.run_start, now_);
  }
  job.cost_usd += cost;

  fleet_.release(event.vm_id, now_);
  job.advance_stage();
  if (job.done()) {
    job.completion_time = now_;
    const JobTemplate& tmpl = templates_[job.template_index];
    metrics_.record_completion(
        job, job.scale * tmpl.best_total_runtime_seconds());
  } else {
    enqueue_stage(job);
  }
  dispatch();
}

void FleetSimulator::handle_attempt_killed(const Event& event,
                                           bool spot_reclaim) {
  Job& job = jobs_.at(event.job_id);
  VmInstance& vm = fleet_.vm(event.vm_id);
  trace_task_attempt(job, vm, event.vm_id, now_, /*killed=*/true);

  const FaultConfig& fault = config_.fault;
  const double elapsed = now_ - vm.run_start;
  const double attempt_share = 1.0 - job.stage_progress;
  // Work seconds for the whole stage at this VM's speed (the attempt's
  // run_work covered attempt_share of it).
  const double full_work =
      attempt_share > 0.0 ? vm.run_work / attempt_share : 0.0;

  // How much of the attempt survives the kill, per the restart model.
  double credited_work = 0.0;    // work seconds that persist
  double overhead_spent = 0.0;   // snapshot seconds behind the credit
  switch (fault.restart) {
    case RestartModel::kFractionCredit: {
      const double done = vm.run_service > 0.0 ? elapsed / vm.run_service : 1.0;
      credited_work = vm.run_work * done *
                      (1.0 - config_.fleet.spot.restart_overhead_fraction);
      break;
    }
    case RestartModel::kFromZero:
      break;
    case RestartModel::kCheckpoint: {
      credited_work = checkpoint::credited_work_seconds(
          elapsed, fault.checkpoint_interval_seconds,
          fault.checkpoint_overhead_seconds, vm.run_work);
      overhead_spent =
          static_cast<double>(checkpoint::completed_checkpoints(
              elapsed, fault.checkpoint_interval_seconds,
              fault.checkpoint_overhead_seconds)) *
          std::max(0.0, fault.checkpoint_overhead_seconds);
      break;
    }
  }
  if (full_work > 0.0) {
    job.stage_progress = std::clamp(
        job.stage_progress + credited_work / full_work, 0.0, 0.999999);
  }
  metrics_.record_checkpoint_overhead(overhead_spent);
  metrics_.record_wasted(std::max(0.0, elapsed - credited_work -
                                           overhead_spent));

  ++job.stage_kills;
  if (spot_reclaim) {
    ++job.preemptions;
    ++job.stage_evictions;
    metrics_.record_preemption();
    // Re-bid: an evicted job raises its bid for all later attempts so a
    // brief price spike does not keep knocking it off the market.
    if (config_.market.enabled) {
      const double current =
          std::max(config_.fleet.spot_bid_fraction, job.bid);
      const double raised = std::min(
          config_.market.max_bid_fraction,
          current * config_.market.rebid_multiplier);
      if (raised > current) {
        job.bid = raised;
        metrics_.record_market_rebid();
      }
    }
  } else {
    metrics_.record_crash();
  }

  // The machine is gone either way (reclaimed or crashed); billing stops.
  fleet_.retire(event.vm_id, now_);

  // Graceful degradation: a stage that keeps getting evicted stops
  // gambling on spot capacity. Only meaningful when the fleet launches an
  // on-demand tier at all — an all-spot fleet has nothing to fall back to,
  // and an undispatchable task would stall the drain forever.
  if (spot_reclaim && fault.spot_evictions_before_fallback > 0 &&
      config_.fleet.spot_fraction < 1.0 &&
      job.stage_evictions >= fault.spot_evictions_before_fallback &&
      !job.require_on_demand) {
    job.require_on_demand = true;
    metrics_.record_spot_fallback();
  }

  if (job.stage_kills >= fault.max_attempts_per_stage) {
    job.failed = true;
    metrics_.record_failure();
    dispatch();
    return;
  }

  // Retry after a deterministic exponential backoff with seeded jitter.
  const double delay = backoff_.delay_seconds(job.stage_kills, backoff_rng_);
  metrics_.record_retry();
  events_.push(now_ + delay, EventType::kTaskRetry, job.id);
  dispatch();
}

void FleetSimulator::handle_task_retry(const Event& event) {
  const Job& job = jobs_.at(event.job_id);
  if (job.failed || job.done()) return;  // defensive; not scheduled for these
  enqueue_stage(job);
  dispatch();
}

void FleetSimulator::handle_autoscaler_tick() {
  // Demand per pool: queued tasks by routed pool + current fleet state.
  std::map<PoolKey, PoolDemand> demand;
  for (const TaskRef& task : queue_) ++demand[task.preferred].queued;
  std::set<PoolKey> keys;
  for (const auto& [key, d] : demand) keys.insert(key);
  for (const PoolKey& key : fleet_.pools()) {
    if (fleet_.alive_count(key) > 0) keys.insert(key);
  }
  for (const PoolKey& key : keys) {
    PoolDemand& d = demand[key];
    d.busy = fleet_.busy_count(key);
    d.alive = fleet_.alive_count(key);
    const int delta = autoscaler_.decide(key, d, now_);
    if (delta > 0) {
      for (int i = 0; i < delta; ++i) {
        const int id = fleet_.launch(key, now_, fleet_rng_);
        events_.push(now_ + config_.fleet.boot_seconds,
                     EventType::kVmBootComplete, 0, id);
      }
    } else if (delta < 0) {
      // Retire newest idle machines first (deterministic, keeps the
      // longest-running — soon cheapest-per-billed-second — VMs alive).
      auto idle = fleet_.idle_in(key);
      const int retire =
          std::min<int>(-delta, static_cast<int>(idle.size()));
      for (int i = 0; i < retire; ++i) {
        fleet_.retire(idle[idle.size() - 1 - static_cast<std::size_t>(i)],
                      now_);
      }
    }
  }
  dispatch();

  if (arrivals_open_ || in_flight() > 0) {
    events_.push(now_ + config_.autoscaler.interval_seconds,
                 EventType::kAutoscalerTick);
  }
}

void FleetSimulator::handle_market_tick() {
  const cloud::Market& market = *config_.fleet.market;
  for (TaskRef& task : queue_) {
    Job& job = jobs_.at(task.job_id);
    const MarketDecision decision =
        market_decide(market, config_.fleet, config_.market,
                      templates_[job.template_index], job, task.preferred,
                      now_);
    switch (decision.action) {
      case MarketAction::kKeep:
        break;
      case MarketAction::kFallback:
        job.require_on_demand = true;
        task.require_on_demand = true;
        metrics_.record_market_fallback();
        break;
      case MarketAction::kMigrate:
        task.preferred = decision.pool;
        plans_.at(job.id)[job.stage] = decision.pool;
        metrics_.record_market_migration();
        break;
    }
  }

  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.enabled()) {
    for (const perf::InstanceFamily family :
         {perf::InstanceFamily::kGeneralPurpose,
          perf::InstanceFamily::kMemoryOptimized,
          perf::InstanceFamily::kComputeOptimized}) {
      for (const int vcpus : perf::kVcpuOptions) {
        tracer.emit_counter(
            "market/price/" + to_string(PoolKey{family, vcpus}), now_ * 1e6,
            market.price_at(family, vcpus, now_));
      }
    }
  }

  dispatch();
  if (arrivals_open_ || in_flight() > 0) {
    events_.push(now_ + config_.market.interval_seconds,
                 EventType::kMarketTick);
  }
}

void FleetSimulator::enqueue_stage(const Job& job) {
  TaskRef task;
  task.job_id = job.id;
  task.stage = job.stage;
  task.enqueue_time = now_;
  task.deadline = job.slo_deadline;
  task.preferred = plans_.at(job.id)[job.stage];
  task.seq = next_task_seq_++;
  task.require_on_demand = job.require_on_demand;
  queue_.push_back(task);
  obs::Tracer::global().emit_counter("fleet/queue_depth", now_ * 1e6,
                                     static_cast<double>(queue_.size()));
}

void FleetSimulator::dispatch() {
  for (const PoolKey& pool : fleet_.pools()) {
    for (const int vm_id : fleet_.idle_in(pool)) {
      if (queue_.empty()) return;
      const bool spot_vm = fleet_.vm(vm_id).spot;
      const std::size_t index = policy_->pick(queue_, pool, spot_vm);
      // Nothing this VM may run; another VM in the pool (e.g. an on-demand
      // one, for require_on_demand tasks) could still match.
      if (index == kNoTask) continue;
      const TaskRef task = queue_[index];
      queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
      start_task(vm_id, task);
    }
  }
}

void FleetSimulator::start_task(int vm_id, const TaskRef& task) {
  Job& job = jobs_.at(task.job_id);
  VmInstance& vm = fleet_.vm(vm_id);
  const double work = service_seconds(job, vm);
  // Checkpoint snapshots pad the schedule: the attempt occupies (and
  // bills) work + snapshots, but only `work` advances the stage.
  const double service =
      config_.fault.restart == RestartModel::kCheckpoint
          ? checkpoint::effective_seconds(
                work, config_.fault.checkpoint_interval_seconds,
                config_.fault.checkpoint_overhead_seconds)
          : work;
  fleet_.assign(vm_id, job.id, now_, service, work);
  ++job.stage_attempts;
  obs::Tracer::global().emit_counter("fleet/queue_depth", now_ * 1e6,
                                     static_cast<double>(queue_.size()));
  if (job.first_dispatch_time < 0.0) job.first_dispatch_time = now_;
  metrics_.record_dispatch(now_ - task.enqueue_time);

  // The attempt ends at the earliest of completion, spot reclaim and
  // injected crash. Draws happen whenever their hazard is armed — never
  // conditionally on another draw — so the RNG streams replay identically
  // across configurations that share a hazard.
  double reclaim_in = std::numeric_limits<double>::infinity();
  if (vm.spot) {
    // The attempt bids the higher of the fleet default and the job's own
    // (re-bid-raised) bid. Static markets keep the classic exponential
    // draw; trace markets return the first price crossing above the bid
    // and consume no randomness.
    const double bid = std::max(config_.fleet.spot_bid_fraction, job.bid);
    reclaim_in = config_.fleet.market->reclaim_draw(
        vm.pool.family, vm.pool.vcpus, now_, bid, spot_rng_);
  }
  double crash_in = std::numeric_limits<double>::infinity();
  if (config_.fault.crash_rate_per_hour > 0.0) {
    cloud::SpotModel crash_hazard;
    crash_hazard.interruptions_per_hour = config_.fault.crash_rate_per_hour;
    crash_in = crash_hazard.sample_time_to_interruption(crash_rng_);
  }
  if (reclaim_in < service && reclaim_in <= crash_in) {
    events_.push(now_ + reclaim_in, EventType::kSpotInterruption, job.id,
                 vm_id);
    return;
  }
  if (crash_in < service) {
    events_.push(now_ + crash_in, EventType::kVmCrash, job.id, vm_id);
    return;
  }
  events_.push(now_ + service, EventType::kTaskComplete, job.id, vm_id);
}

double FleetSimulator::service_seconds(const Job& job,
                                       const VmInstance& vm) const {
  const JobTemplate& tmpl = templates_[job.template_index];
  const double full =
      tmpl.runtime(static_cast<core::JobKind>(job.stage), vm.pool.family,
                   vm.pool.vcpus) *
      job.scale;
  return std::max(1e-9, full * (1.0 - job.stage_progress));
}

std::uint64_t FleetSimulator::in_flight() const {
  return metrics_.submitted() - metrics_.completed() - metrics_.failed();
}

}  // namespace edacloud::sched
