#pragma once
// Job model for the fleet simulator. A job is one complete EDA flow
// (synthesis -> placement -> routing -> STA) drawn from a JobTemplate,
// which carries the per-stage runtime ladders the characterizer measured
// on both instance families — the same perf::runtime_model numbers the
// static optimizer consumes, now feeding a dynamic scheduling problem.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/characterize.hpp"
#include "core/optimizer.hpp"
#include "nl/cell_library.hpp"
#include "workloads/registry.hpp"

namespace edacloud::sched {

/// Per-stage, per-(family, vCPU) runtimes of one flow class. Families the
/// characterizer does not measure fall back to the general-purpose ladder.
struct JobTemplate {
  std::string name;
  double weight = 1.0;  // relative draw probability in a traffic mix
  /// runtime_seconds[stage][family][i], i indexing perf::kVcpuOptions.
  std::array<std::array<std::array<double, 4>, 3>, core::kJobCount>
      runtime_seconds{};

  [[nodiscard]] double runtime(core::JobKind job, perf::InstanceFamily family,
                               int vcpus) const;

  /// Sum over stages of the fastest available configuration — the best-case
  /// service time, used as the SLO reference ("slowdown" denominator).
  [[nodiscard]] double best_total_runtime_seconds() const;

  /// Runtime ladders on each job's recommended family, the
  /// core::DeploymentOptimizer input format.
  [[nodiscard]] core::RuntimeLadders recommended_ladders() const;

  static JobTemplate from_report(std::string name,
                                 const core::CharacterizationReport& report,
                                 double weight = 1.0);
};

/// Characterize `designs` (one instrumented flow run each) and convert the
/// reports into templates. ~1 s for three small registry designs.
std::vector<JobTemplate> templates_from_designs(
    const std::vector<workloads::NamedDesign>& designs,
    const nl::CellLibrary& library);

/// Three flow classes — small / medium / large — whose ladders were captured
/// from characterizing dynamic_node-4, alu-32 and sparc_core-16 with the
/// default calibration. Deterministic and free of engine runs, so tests and
/// quick simulations need no synthesis/placement/routing work.
const std::vector<JobTemplate>& builtin_templates();

constexpr std::uint64_t kNoJob = ~std::uint64_t{0};

struct Job {
  std::uint64_t id = 0;
  int template_index = 0;
  double scale = 1.0;           // per-job runtime multiplier (size jitter)
  double arrival_time = 0.0;
  double slo_deadline = 0.0;    // absolute sim time the SLO allows
  int stage = 0;                // current flow stage in [0, kJobCount]
  double stage_progress = 0.0;  // completed fraction of the current stage
  int preemptions = 0;          // spot reclaims suffered across all stages
  int stage_attempts = 0;       // attempts started for the current stage
  int stage_kills = 0;          // attempts of the current stage killed
  int stage_evictions = 0;      // spot reclaims of the current stage
  bool require_on_demand = false;  // K-eviction fallback tripped this stage
  /// Spot bid as a fraction of on-demand; 0 means "use the fleet default".
  /// Raised by the market policy's re-bid step after evictions and kept
  /// across stages (NOT reset by advance_stage — a job that learned the
  /// market is hot stays aggressive for the rest of its flow).
  double bid = 0.0;
  bool failed = false;          // current stage exhausted its retry budget
  double cost_usd = 0.0;        // billing attributed from its own stage runs
  double first_dispatch_time = -1.0;
  double completion_time = -1.0;

  [[nodiscard]] bool done() const { return stage >= core::kJobCount; }

  /// Reset the per-stage fault bookkeeping when a stage completes.
  void advance_stage() {
    stage_progress = 0.0;
    stage_attempts = 0;
    stage_kills = 0;
    stage_evictions = 0;
    require_on_demand = false;
    ++stage;
  }
};

}  // namespace edacloud::sched
