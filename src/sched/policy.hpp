#pragma once
// Pluggable scheduling policies. A policy makes two decisions:
//   plan() — at admission, pick the target (family, vCPU) pool for every
//            stage of the job;
//   pick() — when a VM in some pool goes idle, choose which waiting stage
//            task it should run next (or none).
// Running tasks are never preempted by a policy (spot reclaims are the
// fleet's doing, not the scheduler's).

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/optimizer.hpp"
#include "sched/fault.hpp"
#include "sched/fleet.hpp"
#include "sched/job.hpp"

namespace edacloud::sched {

/// A stage task waiting in the scheduler queue.
struct TaskRef {
  std::uint64_t job_id = 0;
  int stage = 0;
  double enqueue_time = 0.0;
  double deadline = 0.0;  // absolute SLO deadline of the owning job
  PoolKey preferred;      // the pool plan() routed this stage to
  std::uint64_t seq = 0;  // global enqueue order; the deterministic tie-break
  /// Graceful-degradation flag: this stage burned its spot-eviction budget
  /// and may only start on on-demand VMs.
  bool require_on_demand = false;
};

constexpr std::size_t kNoTask = ~std::size_t{0};

/// True when `task` may start on a VM of `pool` whose spot-ness is
/// `spot_vm` — the one dispatch rule every policy must respect.
[[nodiscard]] inline bool task_runnable_on(const TaskRef& task, bool spot_vm) {
  return !(task.require_on_demand && spot_vm);
}

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// The simulator announces the fleet + fault configuration once before
  /// the run, so planning policies can price retry-inflated effective cost
  /// into their routing. Default: ignore it.
  virtual void set_fault_context(const FleetConfig& fleet,
                                 const FaultConfig& faults) {
    (void)fleet;
    (void)faults;
  }

  /// Route every stage of a newly admitted job to a pool.
  [[nodiscard]] virtual std::array<PoolKey, core::kJobCount> plan(
      const Job& job, const JobTemplate& tmpl) = 0;

  /// Index into `queue` of the task an idle VM in `pool` should run next
  /// (kNoTask = leave the VM idle). `queue` is in enqueue order. `spot_vm`
  /// says whether the candidate VM is spot capacity — tasks whose
  /// require_on_demand flag is set must not be picked for a spot VM.
  [[nodiscard]] virtual std::size_t pick(const std::vector<TaskRef>& queue,
                                         const PoolKey& pool,
                                         bool spot_vm = false) const = 0;
};

/// FIFO-any: one global queue, every stage targets a single big default
/// pool, and any idle VM anywhere takes the head task. This is the
/// "just give everyone large machines" baseline the paper's Fig. 6 calls
/// over-provisioning.
class FifoAnyPolicy : public SchedulerPolicy {
 public:
  explicit FifoAnyPolicy(
      PoolKey default_pool = {perf::InstanceFamily::kGeneralPurpose, 8})
      : default_pool_(default_pool) {}

  [[nodiscard]] std::string name() const override { return "fifo"; }
  [[nodiscard]] std::array<PoolKey, core::kJobCount> plan(
      const Job& job, const JobTemplate& tmpl) override;
  [[nodiscard]] std::size_t pick(const std::vector<TaskRef>& queue,
                                 const PoolKey& pool,
                                 bool spot_vm = false) const override;

 private:
  PoolKey default_pool_;
};

/// Cost-aware: at admission, solve the job's MCKP (greedy heuristic over
/// the DeploymentOptimizer's stages) against its SLO budget, then route
/// every stage to the recommended (family, size). Stages wait for their
/// own pool — the autoscaler grows pools that have queued demand. When the
/// simulator announces a fault context, the ladders the MCKP prices are
/// stretched to the retry-inflated *expected* runtimes (cloud::FaultModel),
/// so unreliable capacity is charged what it actually costs.
class CostAwarePolicy : public SchedulerPolicy {
 public:
  explicit CostAwarePolicy(
      cloud::PricingCatalog catalog = cloud::PricingCatalog::aws_like(),
      double queueing_headroom = 0.75)
      : optimizer_(catalog), headroom_(queueing_headroom) {}

  [[nodiscard]] std::string name() const override { return "cost"; }
  void set_fault_context(const FleetConfig& fleet,
                         const FaultConfig& faults) override;
  [[nodiscard]] std::array<PoolKey, core::kJobCount> plan(
      const Job& job, const JobTemplate& tmpl) override;
  [[nodiscard]] std::size_t pick(const std::vector<TaskRef>& queue,
                                 const PoolKey& pool,
                                 bool spot_vm = false) const override;

  /// The effective-runtime model plan() stretches ladders with (identity
  /// until set_fault_context is called with a lossy configuration).
  [[nodiscard]] const cloud::FaultModel& fault_model() const {
    return fault_model_;
  }

 private:
  core::DeploymentOptimizer optimizer_;
  double headroom_;  // fraction of the SLO budget MCKP may spend on service
  cloud::FaultModel fault_model_;  // zero-rate default: no stretch
};

/// Deadline-aware EDF with preemption-free backfill: MCKP routing like the
/// cost-aware policy, but the queue drains in earliest-deadline order, and
/// an idle VM with no matching work backfills the earliest-deadline task
/// from any pool rather than sitting idle.
class EdfBackfillPolicy : public CostAwarePolicy {
 public:
  using CostAwarePolicy::CostAwarePolicy;

  [[nodiscard]] std::string name() const override { return "edf"; }
  [[nodiscard]] std::size_t pick(const std::vector<TaskRef>& queue,
                                 const PoolKey& pool,
                                 bool spot_vm = false) const override;
};

/// Factory for the CLI / bench: "fifo" | "cost" | "edf"; throws on unknown.
std::unique_ptr<SchedulerPolicy> make_policy(const std::string& name);

}  // namespace edacloud::sched
