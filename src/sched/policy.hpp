#pragma once
// Pluggable scheduling policies. A policy makes two decisions:
//   plan() — at admission, pick the target (family, vCPU) pool for every
//            stage of the job;
//   pick() — when a VM in some pool goes idle, choose which waiting stage
//            task it should run next (or none).
// Running tasks are never preempted by a policy (spot reclaims are the
// fleet's doing, not the scheduler's).

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/optimizer.hpp"
#include "sched/fleet.hpp"
#include "sched/job.hpp"

namespace edacloud::sched {

/// A stage task waiting in the scheduler queue.
struct TaskRef {
  std::uint64_t job_id = 0;
  int stage = 0;
  double enqueue_time = 0.0;
  double deadline = 0.0;  // absolute SLO deadline of the owning job
  PoolKey preferred;      // the pool plan() routed this stage to
  std::uint64_t seq = 0;  // global enqueue order; the deterministic tie-break
};

constexpr std::size_t kNoTask = ~std::size_t{0};

class SchedulerPolicy {
 public:
  virtual ~SchedulerPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;

  /// Route every stage of a newly admitted job to a pool.
  [[nodiscard]] virtual std::array<PoolKey, core::kJobCount> plan(
      const Job& job, const JobTemplate& tmpl) = 0;

  /// Index into `queue` of the task an idle VM in `pool` should run next
  /// (kNoTask = leave the VM idle). `queue` is in enqueue order.
  [[nodiscard]] virtual std::size_t pick(const std::vector<TaskRef>& queue,
                                         const PoolKey& pool) const = 0;
};

/// FIFO-any: one global queue, every stage targets a single big default
/// pool, and any idle VM anywhere takes the head task. This is the
/// "just give everyone large machines" baseline the paper's Fig. 6 calls
/// over-provisioning.
class FifoAnyPolicy : public SchedulerPolicy {
 public:
  explicit FifoAnyPolicy(
      PoolKey default_pool = {perf::InstanceFamily::kGeneralPurpose, 8})
      : default_pool_(default_pool) {}

  [[nodiscard]] std::string name() const override { return "fifo"; }
  [[nodiscard]] std::array<PoolKey, core::kJobCount> plan(
      const Job& job, const JobTemplate& tmpl) override;
  [[nodiscard]] std::size_t pick(const std::vector<TaskRef>& queue,
                                 const PoolKey& pool) const override;

 private:
  PoolKey default_pool_;
};

/// Cost-aware: at admission, solve the job's MCKP (greedy heuristic over
/// the DeploymentOptimizer's stages) against its SLO budget, then route
/// every stage to the recommended (family, size). Stages wait for their
/// own pool — the autoscaler grows pools that have queued demand.
class CostAwarePolicy : public SchedulerPolicy {
 public:
  explicit CostAwarePolicy(
      cloud::PricingCatalog catalog = cloud::PricingCatalog::aws_like(),
      double queueing_headroom = 0.75)
      : optimizer_(catalog), headroom_(queueing_headroom) {}

  [[nodiscard]] std::string name() const override { return "cost"; }
  [[nodiscard]] std::array<PoolKey, core::kJobCount> plan(
      const Job& job, const JobTemplate& tmpl) override;
  [[nodiscard]] std::size_t pick(const std::vector<TaskRef>& queue,
                                 const PoolKey& pool) const override;

 private:
  core::DeploymentOptimizer optimizer_;
  double headroom_;  // fraction of the SLO budget MCKP may spend on service
};

/// Deadline-aware EDF with preemption-free backfill: MCKP routing like the
/// cost-aware policy, but the queue drains in earliest-deadline order, and
/// an idle VM with no matching work backfills the earliest-deadline task
/// from any pool rather than sitting idle.
class EdfBackfillPolicy : public CostAwarePolicy {
 public:
  using CostAwarePolicy::CostAwarePolicy;

  [[nodiscard]] std::string name() const override { return "edf"; }
  [[nodiscard]] std::size_t pick(const std::vector<TaskRef>& queue,
                                 const PoolKey& pool) const override;
};

/// Factory for the CLI / bench: "fifo" | "cost" | "edf"; throws on unknown.
std::unique_ptr<SchedulerPolicy> make_policy(const std::string& name);

}  // namespace edacloud::sched
