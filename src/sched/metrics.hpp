#pragma once
// SLO / cost / utilization metrics for one simulated run. Latency and
// slowdown quantiles come from util::Histogram::quantile so a million-job
// run needs bounded memory for the tail statistics; everything is a pure
// function of the (seeded) event stream, so two runs with the same
// configuration produce bit-identical metrics.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sched/job.hpp"

namespace edacloud::sched {

struct FleetMetrics {
  // Population.
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_failed = 0;   // retry budget exhausted; job abandoned
  std::uint64_t tasks_dispatched = 0;
  std::uint64_t preemptions = 0;
  double arrival_window_seconds = 0.0;  // configured load duration
  double drained_at_seconds = 0.0;      // sim time the last event fired

  // Fault tolerance (see DESIGN.md §10).
  std::uint64_t crashes = 0;         // injected mid-task VM deaths
  std::uint64_t boot_failures = 0;   // VMs that never came up
  std::uint64_t retries = 0;         // backoff-delayed re-enqueues
  std::uint64_t spot_fallbacks = 0;  // stages degraded to on-demand-only

  // Market policy (see DESIGN.md §15); all zero when --rebid is off.
  std::uint64_t market_rebids = 0;      // bids raised after an eviction
  std::uint64_t market_fallbacks = 0;   // queued tasks priced off spot
  std::uint64_t market_migrations = 0;  // queued tasks moved to cheaper pools

  double wasted_seconds = 0.0;       // killed-attempt service time lost
  double checkpoint_overhead_seconds = 0.0;  // snapshot time paid
  /// busy seconds that advanced jobs / all busy seconds; 1.0 when nothing
  /// was killed, lower as waste and snapshot overhead accumulate.
  double goodput_fraction = 1.0;

  // Latency (arrival -> flow completion, seconds).
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
  double mean_latency = 0.0;
  double mean_queue_wait = 0.0;  // per stage task
  // Slowdown = latency / the job's best-case service time; p99 <= the SLO
  // multiplier means the p99 job finished within its SLO.
  double slowdown_p99 = 0.0;

  // SLO.
  std::uint64_t slo_violations = 0;
  double slo_violation_rate = 0.0;

  // Fleet.
  double utilization = 0.0;    // busy seconds / alive seconds
  double total_cost_usd = 0.0; // per-second billing, boot + idle included
  double cost_per_job_usd = 0.0;
  int peak_vms = 0;
  int vms_launched = 0;
  double throughput_per_hour = 0.0;

  /// Two-column summary table for the CLI.
  [[nodiscard]] std::string render() const;

  /// Absorb this run into the unified metrics registry as fleet.* counters
  /// and gauges under `labels` (e.g. {{"policy","cost"},{"mix","bursty"}}).
  /// This is the machine-readable path — `fleet-sim --metrics` and the
  /// bench drivers export the registry instead of scraping render().
  void export_to(obs::Registry& registry, const obs::Labels& labels = {}) const;
};

/// Accumulates per-job and per-task samples during a run, then finalizes
/// the fleet-level numbers.
class MetricsCollector {
 public:
  void record_submitted() { ++submitted_; }
  void record_dispatch(double queue_wait_seconds);
  void record_preemption() { ++preemptions_; }
  void record_crash() { ++crashes_; }
  void record_boot_failure() { ++boot_failures_; }
  void record_retry() { ++retries_; }
  void record_spot_fallback() { ++spot_fallbacks_; }
  void record_market_rebid() { ++market_rebids_; }
  void record_market_fallback() { ++market_fallbacks_; }
  void record_market_migration() { ++market_migrations_; }
  void record_failure() { ++failed_; }
  /// Service seconds a killed attempt burned without advancing the job.
  void record_wasted(double seconds) { wasted_seconds_ += seconds; }
  /// Service seconds spent writing checkpoint snapshots.
  void record_checkpoint_overhead(double seconds) {
    checkpoint_overhead_seconds_ += seconds;
  }
  /// `best_case_service_seconds` is the job's scaled best-case service time
  /// (the slowdown denominator).
  void record_completion(const Job& job, double best_case_service_seconds);

  /// Absorb another collector's samples (the sharded simulator keeps one
  /// collector per pool and merges them in canonical pool order, so the
  /// sample vectors — and therefore every float accumulation — end up in a
  /// shard-count-independent order).
  void merge_from(const MetricsCollector& other);

  [[nodiscard]] std::uint64_t completed() const { return completed_; }
  [[nodiscard]] std::uint64_t submitted() const { return submitted_; }
  [[nodiscard]] std::uint64_t failed() const { return failed_; }

  struct FleetStats {
    double busy_seconds = 0.0;
    double alive_seconds = 0.0;
    double total_cost_usd = 0.0;
    int peak_vms = 0;
    int vms_launched = 0;
  };
  [[nodiscard]] FleetMetrics finalize(double arrival_window_seconds,
                                      double drained_at_seconds,
                                      const FleetStats& fleet) const;

 private:
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t preemptions_ = 0;
  std::uint64_t crashes_ = 0;
  std::uint64_t boot_failures_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t spot_fallbacks_ = 0;
  std::uint64_t market_rebids_ = 0;
  std::uint64_t market_fallbacks_ = 0;
  std::uint64_t market_migrations_ = 0;
  std::uint64_t slo_violations_ = 0;
  double queue_wait_sum_ = 0.0;
  double wasted_seconds_ = 0.0;
  double checkpoint_overhead_seconds_ = 0.0;
  std::vector<double> latencies_;
  std::vector<double> slowdowns_;
};

}  // namespace edacloud::sched
