#include "sched/fault.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace edacloud::sched {

BackoffSchedule::BackoffSchedule(BackoffConfig config) : config_(config) {
  if (config_.base_seconds < 0.0 || config_.cap_seconds < 0.0) {
    throw std::invalid_argument("backoff delays must be non-negative");
  }
  if (config_.multiplier < 1.0) {
    throw std::invalid_argument("backoff multiplier must be >= 1");
  }
  if (config_.jitter_fraction < 0.0 || config_.jitter_fraction >= 1.0) {
    throw std::invalid_argument("jitter fraction must be in [0, 1)");
  }
}

double BackoffSchedule::base_delay_seconds(int failures) const {
  if (failures < 1) throw std::invalid_argument("failures must be >= 1");
  double delay = config_.base_seconds;
  for (int i = 1; i < failures; ++i) {
    delay *= config_.multiplier;
    if (delay >= config_.cap_seconds) break;  // saturated; stop multiplying
  }
  return std::min(delay, config_.cap_seconds);
}

double BackoffSchedule::delay_seconds(int failures, util::Rng& rng) const {
  const double base = base_delay_seconds(failures);
  const double j = config_.jitter_fraction;
  // Draw even when j == 0 so the RNG stream shape does not depend on the
  // jitter setting (keeps A/B sweeps over jitter seed-comparable).
  const double u = rng.next_double();
  return base * (1.0 - j + 2.0 * j * u);
}

namespace checkpoint {

int snapshots_for(double work_seconds, double interval_seconds) {
  if (interval_seconds <= 0.0 || work_seconds <= 0.0) return 0;
  // A snapshot after every full interval, but none at the very end of the
  // attempt (completion itself persists the stage output).
  const double full = work_seconds / interval_seconds;
  const auto intervals = static_cast<int>(std::ceil(full - 1e-12)) - 1;
  return std::max(0, intervals);
}

double effective_seconds(double work_seconds, double interval_seconds,
                         double overhead_seconds) {
  return work_seconds +
         static_cast<double>(snapshots_for(work_seconds, interval_seconds)) *
             std::max(0.0, overhead_seconds);
}

int completed_checkpoints(double elapsed_seconds, double interval_seconds,
                          double overhead_seconds) {
  if (interval_seconds <= 0.0 || elapsed_seconds <= 0.0) return 0;
  const double period = interval_seconds + std::max(0.0, overhead_seconds);
  return static_cast<int>(std::floor(elapsed_seconds / period + 1e-12));
}

double credited_work_seconds(double elapsed_seconds, double interval_seconds,
                             double overhead_seconds,
                             double work_cap_seconds) {
  const int done = completed_checkpoints(elapsed_seconds, interval_seconds,
                                         overhead_seconds);
  return std::clamp(static_cast<double>(done) * interval_seconds, 0.0,
                    std::max(0.0, work_cap_seconds));
}

}  // namespace checkpoint

}  // namespace edacloud::sched
