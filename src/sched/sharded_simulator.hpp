#pragma once
// Sharded parallel discrete-event fleet simulator (DESIGN.md §13,
// docs/SIMULATION.md). The fleet is partitioned by (family, vCPU) pool:
// every pool — its VMs, queue, autoscaler, RNG streams and metrics — is
// owned by exactly one shard, and shards execute their event queues
// concurrently on util::thread_pool inside conservative synchronization
// windows:
//
//   LBTS       = min over shards (and the pending arrival) of the next
//                event time — no shard may ever see an event earlier;
//   window     = [LBTS, LBTS + lookahead);
//   guarantee  = a job handed off inside the window is delivered at
//                send_time + handoff_latency >= window end, so delivering
//                all handoffs at the barrier after the window can never
//                create an event in a shard's past (when the configured
//                lookahead <= the real handoff latency; the barrier
//                asserts this and throws on violation).
//
// The hard contract: for a fixed (config, seed), metrics and traces are
// byte-identical at ANY shard count and ANY thread count. What makes this
// hold (and what to preserve when editing):
//   * pool-local determinism — every RNG stream, VM id space, task
//     sequence and autoscaler tick is per-pool, derived only from the
//     master seed and the canonical pool index;
//   * uniform handoff latency — stage handoffs pay handoff_latency even
//     when source and destination pools share a shard, so event times are
//     independent of the pool -> shard map;
//   * intrinsic event ordering — ShardEventLater orders simultaneous
//     events by content, never by insertion order;
//   * canonical merges — per-pool metrics, fleet stats and trace buffers
//     are folded in pool-index order by the coordinator, single-threaded.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/shard.hpp"
#include "sched/simulator.hpp"

namespace edacloud::sched {

struct ShardedSimConfig {
  /// Base simulation parameters (load, fleet, autoscaler, faults, seed).
  SimConfig base;
  /// Logical processes; clamped to [1, ShardTopology::kPoolCount].
  int shards = 1;
  /// Simulated seconds a job spends in transit between stages (result
  /// upload + scheduler round trip). Must be > 0: it is the lookahead the
  /// conservative windows run on.
  double handoff_latency_seconds = 1.0;
  /// Synchronization window width; 0 = handoff_latency_seconds (the
  /// largest safe value). Values above the handoff latency break the
  /// conservative guarantee — the barrier detects that and throws.
  double lookahead_seconds = 0.0;
  /// Worker threads for window execution (0 = the global default).
  int threads = 0;
  /// Emit per-shard window spans on dedicated trace lanes. Off by default:
  /// the lanes depend on the shard count, so runs that must be
  /// byte-comparable across shard counts leave this off.
  bool shard_window_spans = false;
};

/// Per-shard execution accounting (events_processed is also the bench's
/// events/sec numerator when summed over shards).
struct ShardStats {
  std::uint64_t events_processed = 0;
  std::uint64_t handoffs_out = 0;  // messages this shard's pools sent
  std::uint64_t handoffs_in = 0;   // messages delivered to this shard
  int pools_owned = 0;
};

class ShardedFleetSimulator {
 public:
  /// `policy_name` is the make_policy() name ("fifo" | "cost" | "edf");
  /// each shard (and each admission-planning worker slot) gets its own
  /// instance, configured identically. EDF note: backfill degrades to
  /// pool-local EDF under sharding — a pool's queue only ever holds tasks
  /// routed to it, so there is no cross-pool queue to backfill from.
  ShardedFleetSimulator(ShardedSimConfig config,
                        std::vector<JobTemplate> templates,
                        std::string policy_name);
  ~ShardedFleetSimulator();  // out of line: PoolRuntime/Shard are private

  /// Run to completion and return the merged metrics. Single-shot.
  FleetMetrics run();

  [[nodiscard]] const std::vector<ShardStats>& shard_stats() const {
    return shard_stats_;
  }
  [[nodiscard]] std::uint64_t total_events() const;
  /// Synchronization windows executed (== barriers).
  [[nodiscard]] std::uint64_t windows() const { return windows_; }

  /// Export fleet_shard.* counters/gauges per shard plus the window count
  /// (labels get a "shard" key). Shard-count-dependent by construction, so
  /// callers that need cross-shard-count byte-identity skip this.
  void export_shard_stats(obs::Registry& registry,
                          const obs::Labels& labels = {}) const;

 private:
  struct PoolRuntime;
  struct Shard;

  void admit_jobs(double window_end);
  void execute_window(double window_end);
  void deliver_handoffs();
  void run_shard(Shard& shard, double window_end);

  void handle_deliver(PoolRuntime& pool, const ShardEvent& event);
  void handle_boot(PoolRuntime& pool, const ShardEvent& event);
  void handle_task_complete(Shard& shard, PoolRuntime& pool,
                            const ShardEvent& event);
  void handle_attempt_killed(PoolRuntime& pool, const ShardEvent& event,
                             bool spot_reclaim);
  void handle_task_retry(PoolRuntime& pool, const ShardEvent& event);
  void handle_pool_tick(PoolRuntime& pool, const ShardEvent& event);
  /// Pool-local market tick: re-evaluate the pool's queued tasks against
  /// current prices; migrations leave through the shard outbox as ordinary
  /// JobHandoffs (paying the uniform handoff latency), so event times stay
  /// independent of the pool -> shard map.
  void handle_market_tick(PoolRuntime& pool, const ShardEvent& event);

  void enqueue_stage(PoolRuntime& pool, std::uint64_t job_id, double now);
  void dispatch(PoolRuntime& pool, double now);
  void start_task(PoolRuntime& pool, int vm_id, const TaskRef& task,
                  double now);
  void arm_tick(PoolRuntime& pool, double now);
  void arm_market_tick(PoolRuntime& pool, double now);
  void note_queue_depth(PoolRuntime& pool, double now);
  void note_market_price(PoolRuntime& pool, double now);
  void trace_attempt(PoolRuntime& pool, const Job& job, const VmInstance& vm,
                     int vm_id, double now, bool killed);

  [[nodiscard]] Shard& shard_of(const PoolRuntime& pool);
  [[nodiscard]] double service_seconds(const Job& job,
                                       const VmInstance& vm) const;

  ShardedSimConfig config_;
  std::vector<JobTemplate> templates_;
  ShardTopology topology_;
  double lookahead_ = 0.0;

  std::vector<std::unique_ptr<PoolRuntime>> pools_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<SchedulerPolicy>> plan_policies_;  // per slot
  LoadGenerator generator_;
  BackoffSchedule backoff_;
  MetricsCollector admission_metrics_;  // jobs_submitted lives here

  bool arrivals_open_ = true;
  double next_arrival_ = 0.0;
  std::uint64_t next_job_id_ = 0;
  std::uint64_t windows_ = 0;
  std::vector<ShardStats> shard_stats_;
  bool tracing_ = false;
  bool ran_ = false;
};

}  // namespace edacloud::sched
