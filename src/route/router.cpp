#include "route/router.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <queue>

#include "obs/trace.hpp"
#include "perf/event_log.hpp"
#include "perf/instrument.hpp"
#include "util/thread_pool.hpp"

namespace edacloud::route {

using nl::Netlist;
using nl::NodeId;
using perf::Instrument;
using perf::TaskGraph;
using perf::TaskId;

namespace {

constexpr std::uint64_t kGridBase = 0x50ULL << 23;
constexpr std::uint64_t kCostBase = 0x51ULL << 23;
constexpr std::uint64_t kHeapBase = 0x52ULL << 23;

struct Connection {
  std::uint32_t source;  // grid index
  std::uint32_t target;
  std::uint32_t bbox_lo_x, bbox_lo_y, bbox_hi_x, bbox_hi_y;
};

/// 64x64 coarse occupancy signature of a bounding box, for wave grouping.
constexpr int kMaskSide = 64;
constexpr int kMaskWords = kMaskSide * kMaskSide / 64;

struct BboxMask {
  std::uint64_t bits[kMaskWords] = {};

  [[nodiscard]] bool overlaps(const BboxMask& other) const {
    for (int i = 0; i < kMaskWords; ++i) {
      if ((bits[i] & other.bits[i]) != 0) return true;
    }
    return false;
  }
  void merge(const BboxMask& other) {
    for (int i = 0; i < kMaskWords; ++i) bits[i] |= other.bits[i];
  }
};

/// Mask of the coarse cells actually crossed by a routed path — far
/// thinner than the bounding box, so independent nets pack densely.
BboxMask make_path_mask(const std::vector<std::uint32_t>& edges, int grid) {
  BboxMask mask;
  const int h_edges = grid * (grid - 1);
  const auto coarse = [grid](int v) {
    return std::min(kMaskSide - 1, v * kMaskSide / std::max(1, grid));
  };
  auto set_cell = [&mask, &coarse](int x, int y) {
    const std::uint32_t bit =
        static_cast<std::uint32_t>(coarse(y)) * kMaskSide +
        static_cast<std::uint32_t>(coarse(x));
    mask.bits[bit >> 6] |= 1ULL << (bit & 63);
  };
  for (std::uint32_t e : edges) {
    if (static_cast<int>(e) < h_edges) {
      const int y = static_cast<int>(e) / (grid - 1);
      const int x = static_cast<int>(e) % (grid - 1);
      set_cell(x, y);
      set_cell(x + 1, y);
    } else {
      const int v = static_cast<int>(e) - h_edges;
      const int x = v / (grid - 1);
      const int y = v % (grid - 1);
      set_cell(x, y);
      set_cell(x, y + 1);
    }
  }
  return mask;
}

BboxMask make_mask(const Connection& connection, int grid) {
  BboxMask mask;
  const auto coarse = [grid](std::uint32_t v) {
    return std::min<std::uint32_t>(kMaskSide - 1,
                                   v * kMaskSide / std::max(1, grid));
  };
  const std::uint32_t lx = coarse(connection.bbox_lo_x);
  const std::uint32_t hx = coarse(connection.bbox_hi_x);
  const std::uint32_t ly = coarse(connection.bbox_lo_y);
  const std::uint32_t hy = coarse(connection.bbox_hi_y);
  for (std::uint32_t y = ly; y <= hy; ++y) {
    for (std::uint32_t x = lx; x <= hx; ++x) {
      const std::uint32_t bit = y * kMaskSide + x;
      mask.bits[bit >> 6] |= 1ULL << (bit & 63);
    }
  }
  return mask;
}

struct RouteOp {
  std::uint32_t connection;
  double cost;     // expansions
  int iteration;   // rip-up round (0 = initial routing)
};

/// Grid edge indexing: horizontal edge (x,y)->(x+1,y) id = y*(G-1)+x;
/// vertical edges offset by H-block. One capacity/usage/history per edge.
struct GridState {
  int grid = 0;
  std::vector<std::uint16_t> usage;
  std::vector<std::uint16_t> capacity;
  std::vector<float> history;

  [[nodiscard]] std::size_t edge_count() const { return usage.size(); }

  [[nodiscard]] int edge_between(int x0, int y0, int x1, int y1) const {
    if (y0 == y1) {  // horizontal
      const int x = std::min(x0, x1);
      return y0 * (grid - 1) + x;
    }
    const int y = std::min(y0, y1);
    const int h_edges = grid * (grid - 1);
    return h_edges + x0 * (grid - 1) + y;
  }
};

/// L-pattern router: try the two one-bend paths between source and
/// target; accept the first whose edges all sit below the congestion
/// limit. Read-only against the grid (usage is bumped by the caller's
/// commit phase) and therefore safe to share across routing workers;
/// instrumentation events go to the per-attempt log for ordered replay.
class PatternRouter {
 public:
  PatternRouter(const GridState& state, const RouterOptions& options)
      : state_(state), options_(options) {}

  bool route(const Connection& connection,
             std::vector<std::uint32_t>& edges_out,
             perf::EventLog* log) const {
    const int grid = state_.grid;
    const int sx = static_cast<int>(connection.source % grid);
    const int sy = static_cast<int>(connection.source / grid);
    const int tx = static_cast<int>(connection.target % grid);
    const int ty = static_cast<int>(connection.target / grid);
    // Pattern 1: horizontal first; pattern 2: vertical first.
    for (int bend = 0; bend < 2; ++bend) {
      std::vector<std::uint32_t> edges;
      const bool ok = bend == 0 ? trace(sx, sy, tx, sy, edges, log) &&
                                      trace(tx, sy, tx, ty, edges, log)
                                : trace(sx, sy, sx, ty, edges, log) &&
                                      trace(sx, ty, tx, ty, edges, log);
      if (log != nullptr) log->branch(kGridBase ^ 0x8, ok);
      if (ok) {
        if (log != nullptr) {
          for (std::uint32_t edge : edges) {
            log->store(kGridBase + static_cast<std::uint64_t>(edge) * 48);
          }
        }
        edges_out = std::move(edges);
        return true;
      }
    }
    return false;
  }

 private:
  /// Append the straight segment (x0,y0)->(x1,y1); false if any edge is
  /// too congested (axis-aligned segments only).
  bool trace(int x0, int y0, int x1, int y1,
             std::vector<std::uint32_t>& edges, perf::EventLog* log) const {
    const int dx = x1 > x0 ? 1 : (x1 < x0 ? -1 : 0);
    const int dy = y1 > y0 ? 1 : (y1 < y0 ? -1 : 0);
    int x = x0, y = y0;
    while (x != x1 || y != y1) {
      const int nx = x + dx;
      const int ny = y + dy;
      const int edge = state_.edge_between(x, y, nx, ny);
      if (log != nullptr) {
        log->load(kGridBase + static_cast<std::uint64_t>(edge) * 48);
        log->int_ops(4);
      }
      const double limit = options_.pattern_congestion_limit *
                           static_cast<double>(state_.capacity[edge]);
      if (static_cast<double>(state_.usage[edge]) + 1.0 > limit) {
        return false;
      }
      edges.push_back(static_cast<std::uint32_t>(edge));
      x = nx;
      y = ny;
    }
    return true;
  }

  const GridState& state_;
  const RouterOptions& options_;
};

/// Congestion-aware A* over the grid. Read-only against the grid state
/// (commit bumps usage), with per-instance scratch arrays — each worker
/// slot owns one Maze, so searches run concurrently without sharing.
class Maze {
 public:
  Maze(const GridState& state, const RouterOptions& options)
      : state_(state), options_(options) {
    const std::size_t cells =
        static_cast<std::size_t>(state.grid) * state.grid;
    g_cost_.assign(cells, 0.0f);
    epoch_of_.assign(cells, 0);
    parent_.assign(cells, 0);
  }

  /// Route one connection within its (slightly inflated) bbox.
  /// Appends the used edges to `edges_out`; returns expansions (0 = fail).
  std::uint64_t route(const Connection& connection,
                      std::vector<std::uint32_t>& edges_out,
                      std::uint32_t stream, perf::EventLog* log) {
    ++epoch_;
    stream_ = stream;
    const int grid = state_.grid;
    const int sx = static_cast<int>(connection.source % grid);
    const int sy = static_cast<int>(connection.source / grid);
    const int tx = static_cast<int>(connection.target % grid);
    const int ty = static_cast<int>(connection.target / grid);
    // Inflated search window (lets detours route around congestion).
    const int margin = 2 + grid / 32;
    const int lo_x = std::max(0, static_cast<int>(connection.bbox_lo_x) - margin);
    const int lo_y = std::max(0, static_cast<int>(connection.bbox_lo_y) - margin);
    const int hi_x = std::min(grid - 1, static_cast<int>(connection.bbox_hi_x) + margin);
    const int hi_y = std::min(grid - 1, static_cast<int>(connection.bbox_hi_y) + margin);

    auto heuristic = [tx, ty](int x, int y) {
      return static_cast<float>(std::abs(x - tx) + std::abs(y - ty));
    };

    using HeapEntry = std::pair<float, std::uint32_t>;  // (f, cell)
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>>
        open;

    set_cost(connection.source, 0.0f, connection.source);
    open.emplace(heuristic(sx, sy), connection.source);
    std::uint64_t expansions = 0;

    while (!open.empty()) {
      const auto [f, cell] = open.top();
      open.pop();
      ++expansions;
      if (log != nullptr) {
        log->load_private(kHeapBase + (expansions % 1024) * 16, stream_);
        log->int_ops(14);
        // Priority-queue sift comparisons: direction depends on the cost
        // values of near-equal keys — effectively unpredictable,
        // data-dependent branches.
        const std::uint64_t h =
            (static_cast<std::uint64_t>(cell) * 0x9E3779B97F4A7C15ULL) ^
            static_cast<std::uint64_t>(f * 16384.0f);
        log->branch(kHeapBase ^ 0x6, ((h >> 13) & 1) != 0);
        log->branch(kHeapBase ^ 0x7, ((h >> 27) & 1) != 0);
      }
      const int x = static_cast<int>(cell % grid);
      const int y = static_cast<int>(cell / grid);
      const bool reached = cell == connection.target;
      if (log != nullptr) log->branch(kGridBase ^ 0x1, reached);
      if (reached) break;
      // Stale-entry skip (lazy-deletion A*): data-dependent branch.
      const float here = cost_of(cell);
      const bool stale = f - heuristic(x, y) > here + 1e-4f;
      if (log != nullptr) log->branch(kGridBase ^ 0x2, stale);
      if (stale) continue;

      constexpr int kDx[4] = {1, -1, 0, 0};
      constexpr int kDy[4] = {0, 0, 1, -1};
      for (int dir = 0; dir < 4; ++dir) {
        const int nx = x + kDx[dir];
        const int ny = y + kDy[dir];
        if (nx < lo_x || nx > hi_x || ny < lo_y || ny > hi_y) continue;
        const int edge = state_.edge_between(x, y, nx, ny);
        const float congestion =
            static_cast<float>(state_.usage[edge]) /
            static_cast<float>(state_.capacity[edge]);
        const float step =
            1.0f +
            static_cast<float>(options_.congestion_weight) *
                std::max(0.0f, congestion - 0.8f) +
            static_cast<float>(options_.history_weight) *
                state_.history[edge];
        const float candidate = here + step;
        const std::uint32_t neighbor =
            static_cast<std::uint32_t>(ny) * grid + nx;
        const bool improves = candidate < cost_of(neighbor) - 1e-5f;
        if (log != nullptr) {
          // The defining routing signature: per-neighbor grid-state loads
          // and an improvement test whose outcome is data-dependent.
          log->load(kGridBase + static_cast<std::uint64_t>(edge) * 48);
          log->load_private(
              kCostBase + static_cast<std::uint64_t>(neighbor) * 16, stream_);
          log->branch(kGridBase ^ 0x3, improves);
          log->int_ops(8);
          log->fp_ops(3);
        }
        if (improves) {
          set_cost(neighbor, candidate, cell);
          open.emplace(candidate + heuristic(nx, ny), neighbor);
        }
      }
    }

    if (cost_of(connection.target) == kInfinity) return 0;

    // Backtrack parents (usage is bumped when the caller commits the path).
    std::uint32_t cursor = connection.target;
    while (cursor != connection.source) {
      const std::uint32_t prev = parent_[cursor];
      const int edge =
          state_.edge_between(static_cast<int>(prev % grid),
                              static_cast<int>(prev / grid),
                              static_cast<int>(cursor % grid),
                              static_cast<int>(cursor / grid));
      edges_out.push_back(static_cast<std::uint32_t>(edge));
      if (log != nullptr) {
        log->store(kGridBase + static_cast<std::uint64_t>(edge) * 48);
      }
      cursor = prev;
    }
    return expansions;
  }

 private:
  static constexpr float kInfinity = 1e30f;

  [[nodiscard]] float cost_of(std::uint32_t cell) const {
    return epoch_of_[cell] == epoch_ ? g_cost_[cell] : kInfinity;
  }
  void set_cost(std::uint32_t cell, float cost, std::uint32_t parent) {
    g_cost_[cell] = cost;
    parent_[cell] = parent;
    epoch_of_[cell] = epoch_;
  }

  const GridState& state_;
  const RouterOptions& options_;
  std::vector<float> g_cost_;
  std::vector<std::uint32_t> epoch_of_;
  std::vector<std::uint32_t> parent_;
  std::uint32_t epoch_ = 0;
  std::uint32_t stream_ = 0;
};

}  // namespace

RoutingResult GridRouter::run(const Netlist& netlist,
                              const place::Placement& placement,
                              const std::vector<perf::VmConfig>& configs) const {
  Instrument instrument_storage;
  Instrument* ins = nullptr;
  if (!configs.empty()) {
    instrument_storage = Instrument(configs);
    ins = &instrument_storage;
  }

  RoutingResult result;

  // ---- grid sizing -----------------------------------------------------------
  const auto stats = netlist.stats();
  const int grid = std::clamp(
      static_cast<int>(std::ceil(std::sqrt(
          static_cast<double>(std::max<std::size_t>(1, stats.instance_count)) /
          options_.cells_per_gcell))),
      options_.min_grid, options_.max_grid);
  result.grid_size = grid;

  auto gcell_of = [&](NodeId node) {
    const double fx = placement.x[node] / std::max(1e-9, placement.die_width_um);
    const double fy =
        placement.y[node] / std::max(1e-9, placement.die_height_um);
    const int gx = std::clamp(static_cast<int>(fx * grid), 0, grid - 1);
    const int gy = std::clamp(static_cast<int>(fy * grid), 0, grid - 1);
    return static_cast<std::uint32_t>(gy) * grid + gx;
  };

  // ---- net -> two-pin connections (star model) -------------------------------
  const auto fanout = netlist.build_fanout_csr();
  std::vector<Connection> connections;
  for (NodeId driver = 0; driver < netlist.node_count(); ++driver) {
    const auto [begin, end] = fanout.range(driver);
    if (begin == end) continue;
    const std::uint32_t src = gcell_of(driver);
    for (std::uint32_t e = begin; e < end; ++e) {
      const NodeId sink = fanout.targets[e];
      const std::uint32_t dst = gcell_of(sink);
      if (src == dst) continue;  // intra-gcell connection needs no routing
      Connection c;
      c.source = src;
      c.target = dst;
      c.bbox_lo_x = std::min(src % grid, dst % grid);
      c.bbox_hi_x = std::max(src % grid, dst % grid);
      c.bbox_lo_y = std::min(src / grid, dst / grid);
      c.bbox_hi_y = std::max(src / grid, dst / grid);
      connections.push_back(c);
    }
  }
  result.connection_count = connections.size();

  // Route short connections first (classic net ordering).
  std::vector<std::uint32_t> order(connections.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const auto& ca = connections[a];
    const auto& cb = connections[b];
    const auto pa = (ca.bbox_hi_x - ca.bbox_lo_x) + (ca.bbox_hi_y - ca.bbox_lo_y);
    const auto pb = (cb.bbox_hi_x - cb.bbox_lo_x) + (cb.bbox_hi_y - cb.bbox_lo_y);
    return pa < pb;
  });

  // ---- grid state -------------------------------------------------------------
  GridState state;
  state.grid = grid;
  const std::size_t edge_count =
      2 * static_cast<std::size_t>(grid) * (grid - 1);
  state.usage.assign(edge_count, 0);
  state.capacity.assign(edge_count,
                        static_cast<std::uint16_t>(options_.edge_capacity));
  state.history.assign(edge_count, 0.0f);

  const int threads =
      options_.threads > 0 ? options_.threads : util::global_thread_count();
  const int slot_count = util::parallel_slot_count(threads);
  // One maze per worker slot, built lazily (the scratch arrays are
  // grid-sized). A slot is only ever driven by one thread at a time.
  std::vector<std::unique_ptr<Maze>> mazes(
      static_cast<std::size_t>(slot_count));
  auto maze_for = [&](unsigned slot) -> Maze& {
    auto& maze = mazes[slot];
    if (!maze) maze = std::make_unique<Maze>(state, options_);
    return *maze;
  };

  const PatternRouter patterns(state, options_);
  std::vector<std::vector<std::uint32_t>> routed_edges(connections.size());
  std::vector<RouteOp> ops;
  ops.reserve(connections.size());

  // Batched conflict-resolution routing (the TritonRoute/Galois recipe):
  // each round routes every pending connection in parallel against a frozen
  // grid, then commits serially in pending order. A path whose coarse
  // region overlaps an earlier commit from the same round is deferred and
  // rerouted next round against the updated grid — so no thread ever
  // observes a concurrent usage write, and commit order (and with it usage,
  // history, QoR and the replayed instrumentation stream) depends only on
  // the connection order, never the thread count. Every round commits at
  // least the first pending connection; after kMaxBatchRounds the heavily
  // conflicting stragglers are finished serially against live state.
  constexpr int kMaxBatchRounds = 6;
  constexpr std::size_t kBatchGrain = 8;  // fixed: chunking must not depend
                                          // on the thread count
  struct Attempt {
    std::vector<std::uint32_t> edges;
    std::uint64_t expansions = 0;
    bool pattern = false;
    bool routed = false;
  };

  auto commit = [&](std::uint32_t idx, Attempt&& attempt, int op_iteration,
                    bool count_routed) {
    if (count_routed) ++result.routed_count;
    if (attempt.pattern) ++result.pattern_routed;
    // Pattern cost: one pass over the path (cheap vs a maze search).
    ops.push_back({idx,
                   attempt.pattern
                       ? static_cast<double>(attempt.edges.size() + 2)
                       : static_cast<double>(attempt.expansions),
                   op_iteration});
    for (std::uint32_t edge : attempt.edges) ++state.usage[edge];
    routed_edges[idx] = std::move(attempt.edges);
  };

  // Routes `pending` to completion; returns the number of parallel rounds.
  auto route_batch = [&](std::vector<std::uint32_t> pending,
                         bool allow_patterns, int op_iteration,
                         bool count_routed) {
    const bool use_patterns = allow_patterns && options_.pattern_route;
    int rounds = 0;
    while (!pending.empty() && rounds < kMaxBatchRounds) {
      ++rounds;
      const std::size_t n = pending.size();
      std::vector<Attempt> attempts(n);
      std::vector<perf::EventLog> logs(ins != nullptr ? n : 0);
      util::parallel_for(
          threads, 0, n, kBatchGrain,
          [&](std::size_t chunk_begin, std::size_t chunk_end, std::size_t,
              unsigned slot) {
            Maze& maze = maze_for(slot);
            for (std::size_t i = chunk_begin; i < chunk_end; ++i) {
              const std::uint32_t idx = pending[i];
              perf::EventLog* log = ins != nullptr ? &logs[i] : nullptr;
              Attempt& attempt = attempts[i];
              if (use_patterns &&
                  patterns.route(connections[idx], attempt.edges, log)) {
                attempt.pattern = true;
                attempt.routed = true;
                continue;
              }
              attempt.expansions =
                  maze.route(connections[idx], attempt.edges, idx, log);
              attempt.routed = attempt.expansions > 0;
            }
          });

      // Serial deterministic commit.
      std::vector<std::uint32_t> deferred;
      BboxMask committed_mask;
      bool any_committed = false;
      for (std::size_t i = 0; i < n; ++i) {
        Attempt& attempt = attempts[i];
        result.total_expansions += attempt.expansions;
        if (!attempt.routed) continue;  // unroutable: dropped, as in serial
        const BboxMask mask = make_path_mask(attempt.edges, grid);
        if (any_committed && committed_mask.overlaps(mask)) {
          deferred.push_back(pending[i]);
          continue;
        }
        committed_mask.merge(mask);
        any_committed = true;
        if (ins != nullptr) ins->replay(logs[i]);
        commit(pending[i], std::move(attempt), op_iteration, count_routed);
      }
      pending = std::move(deferred);
    }

    // Serial straggler tail against live state (fixed order, deterministic).
    if (!pending.empty()) {
      Maze& maze =
          maze_for(static_cast<unsigned>(util::this_thread_pool_slot()));
      for (std::uint32_t idx : pending) {
        perf::EventLog log;
        perf::EventLog* logp = ins != nullptr ? &log : nullptr;
        Attempt attempt;
        if (use_patterns &&
            patterns.route(connections[idx], attempt.edges, logp)) {
          attempt.pattern = true;
          attempt.routed = true;
        } else {
          attempt.expansions =
              maze.route(connections[idx], attempt.edges, idx, logp);
          attempt.routed = attempt.expansions > 0;
        }
        result.total_expansions += attempt.expansions;
        if (!attempt.routed) continue;
        if (ins != nullptr) ins->replay(log);
        commit(idx, std::move(attempt), op_iteration, count_routed);
      }
    }
    return rounds;
  };

  // ---- initial routing ----------------------------------------------------------
  {
    TRACE_SPAN_VAR(initial_span, "route/initial", "route");
    initial_span.counter("connections",
                         static_cast<double>(connections.size()));
    initial_span.counter("threads", static_cast<double>(threads));
    const int rounds = route_batch(order, /*allow_patterns=*/true,
                                   /*op_iteration=*/0, /*count_routed=*/true);
    initial_span.counter("batch_rounds", static_cast<double>(rounds));
    initial_span.counter("routed", static_cast<double>(result.routed_count));
  }

  // ---- rip-up and reroute ---------------------------------------------------------
  int iteration = 0;
  for (; iteration < options_.max_rrr_iterations; ++iteration) {
    TRACE_SPAN_VAR(ripup_span, "route/ripup", "route");
    ripup_span.counter("iteration", iteration);
    // Find overflowed edges, accumulate history.
    std::vector<bool> overflowed(edge_count, false);
    std::size_t overflow_count = 0;
    for (std::size_t e = 0; e < edge_count; ++e) {
      const bool over = state.usage[e] > state.capacity[e];
      if (over) {
        overflowed[e] = true;
        ++overflow_count;
        state.history[e] += 1.0f;
      }
      if (ins != nullptr && e % 16 == 0) {
        ins->load(kGridBase + e * 48);
        ins->branch(kGridBase ^ 0x4, over);
      }
    }
    result.overflowed_edges = overflow_count;
    ripup_span.counter("overflowed_edges",
                       static_cast<double>(overflow_count));
    if (overflow_count == 0) break;

    // Rip up every connection crossing an overflowed edge, then reroute
    // the ripped set in batched rounds against the relieved grid.
    std::vector<std::uint32_t> ripped;
    for (std::uint32_t idx : order) {
      auto& edges = routed_edges[idx];
      if (edges.empty()) continue;
      bool crosses = false;
      for (std::uint32_t edge : edges) {
        if (overflowed[edge]) {
          crosses = true;
          break;
        }
      }
      if (ins != nullptr) ins->branch(kGridBase ^ 0x5, crosses);
      if (!crosses) continue;
      for (std::uint32_t edge : edges) --state.usage[edge];
      edges.clear();
      ripped.push_back(idx);
    }
    const int rounds =
        route_batch(std::move(ripped), /*allow_patterns=*/false,
                    iteration + 1, /*count_routed=*/false);
    ripup_span.counter("batch_rounds", static_cast<double>(rounds));
  }
  result.rrr_iterations = iteration;

  // Final overflow count (in case the loop exhausted its budget).
  std::size_t final_overflow = 0;
  for (std::size_t e = 0; e < edge_count; ++e) {
    if (state.usage[e] > state.capacity[e]) ++final_overflow;
  }
  result.overflowed_edges = final_overflow;
  for (const auto& edges : routed_edges) {
    result.wirelength_gedges += edges.size();
  }

  // ---- task graph: waves of bbox-disjoint connections -------------------------
  // Within one rip-up iteration, connections are packed into waves whose
  // bounding boxes are pairwise disjoint (first-fit on a coarse occupancy
  // mask); waves execute behind barriers, and the serial overflow analysis
  // separates iterations. Wide waves on large designs yield near-linear
  // scaling; shallow designs cap out (Fig. 3).
  TaskGraph tasks;
  bool has_barrier = false;
  TaskId barrier = 0;
  std::size_t op_cursor = 0;
  std::size_t total_waves = 0;
  int current_iteration = 0;
  while (op_cursor < ops.size()) {
    // Assign this iteration's ops to waves, packing largest boxes first
    // (first-fit-decreasing — the scheduler is free to reorder independent
    // connections).
    std::vector<const RouteOp*> iteration_ops;
    while (op_cursor < ops.size() &&
           ops[op_cursor].iteration == current_iteration) {
      iteration_ops.push_back(&ops[op_cursor++]);
    }
    std::sort(iteration_ops.begin(), iteration_ops.end(),
              [&](const RouteOp* a, const RouteOp* b) {
                auto area = [&](const RouteOp* op) {
                  const Connection& c = connections[op->connection];
                  return (c.bbox_hi_x - c.bbox_lo_x + 1) *
                         (c.bbox_hi_y - c.bbox_lo_y + 1);
                };
                return area(a) > area(b);
              });
    std::vector<BboxMask> wave_masks;
    std::vector<std::vector<double>> wave_costs;
    for (const RouteOp* op_ptr : iteration_ops) {
      const RouteOp& op = *op_ptr;
      const auto& final_edges = routed_edges[op.connection];
      const BboxMask mask =
          final_edges.empty() ? make_mask(connections[op.connection], grid)
                              : make_path_mask(final_edges, grid);
      std::size_t wave = wave_masks.size();
      for (std::size_t w = 0; w < wave_masks.size(); ++w) {
        if (!wave_masks[w].overlaps(mask)) {
          wave = w;
          break;
        }
      }
      if (wave == wave_masks.size()) {
        wave_masks.emplace_back();
        wave_costs.emplace_back();
      }
      wave_masks[wave].merge(mask);
      wave_costs[wave].push_back(op.cost);
    }
    total_waves += wave_masks.size();
    for (const auto& costs : wave_costs) {
      std::vector<TaskId> wave_tasks;
      wave_tasks.reserve(costs.size());
      for (double cost : costs) {
        std::vector<TaskId> deps;
        if (has_barrier) deps.push_back(barrier);
        wave_tasks.push_back(tasks.add_task(cost, deps));
      }
      barrier = tasks.add_task(0.0, wave_tasks);
      has_barrier = true;
    }
    if (has_barrier) {
      // Serial overflow analysis between rip-up iterations.
      barrier = tasks.add_task(static_cast<double>(edge_count) / 64.0,
                               {barrier});
    }
    ++current_iteration;
    if (current_iteration > options_.max_rrr_iterations + 1) break;
  }
  result.wave_count = total_waves;

  result.connection_edges = std::move(routed_edges);

  result.profile.job = "routing";
  result.profile.configs = configs;
  if (ins != nullptr) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      result.profile.counts.push_back(ins->counts(i));
    }
  }
  result.profile.tasks = std::move(tasks);
  return result;
}

}  // namespace edacloud::route
