#pragma once
// Global routing — the paper's best-scaling, most branch-missing job.
// A congestion-aware A* maze router over a 2D grid-cell graph with
// PathFinder-style rip-up-and-reroute: nets are decomposed into star-model
// two-pin connections, routed in bounding-box order, and iteratively
// rerouted with growing history costs until overflow clears (or the
// iteration budget is spent).
//
// Parallelism model (modeled): connections whose bounding boxes do not
// overlap touch disjoint grid state and route concurrently; the engine
// groups them into waves and emits one task per connection with barriers
// between waves and rip-up iterations. Large designs produce wide waves
// (near-linear speedup); small designs cap out — exactly Fig. 3.
//
// Parallelism model (measured): with RouterOptions::threads > 1 the engine
// actually routes in batched conflict-resolution rounds on the shared
// util::ThreadPool — every pending connection is routed in parallel against
// a frozen grid, then committed serially in a fixed order; a path whose
// coarse region overlaps an earlier commit from the same round is deferred
// to the next round against the updated grid. Commit order — and therefore
// usage, history, QoR and the replayed perf-event stream — depends only on
// the connection order, never the thread count, so results are bit-identical
// at any width.

#include <cstdint>
#include <vector>

#include "nl/netlist.hpp"
#include "perf/runtime_model.hpp"
#include "place/placer.hpp"

namespace edacloud::route {

struct RouterOptions {
  int cells_per_gcell = 1;     // grid sizing: ~cells per grid cell
  int min_grid = 8;
  int max_grid = 256;
  int edge_capacity = 32;      // routing tracks per grid-cell edge
  int max_rrr_iterations = 3;  // rip-up-and-reroute rounds
  double congestion_weight = 2.0;
  double history_weight = 1.5;
  /// FastRoute-style fast path: try the two L-shaped patterns before the
  /// maze search; accept one if every edge stays under the congestion
  /// threshold. Rip-up-and-reroute still falls back to the maze. Off by
  /// default: pattern tasks are so small and uniform that they erase the
  /// design-size-dependent speedup capping the paper reports in Fig. 3
  /// (see EXPERIMENTS.md), so the characterization uses the maze router.
  bool pattern_route = false;
  double pattern_congestion_limit = 0.8;  // fraction of edge capacity
  /// Worker threads for the batched parallel maze search (0 = the global
  /// default from util::global_thread_count(); 1 = serial). Any value
  /// produces bit-identical results — see the header comment.
  int threads = 0;
};

struct RoutingResult {
  int grid_size = 0;
  std::size_t connection_count = 0;  // two-pin (driver, sink) pairs
  std::size_t routed_count = 0;
  std::uint64_t wirelength_gedges = 0;  // total grid edges used
  std::size_t overflowed_edges = 0;     // after the final iteration
  int rrr_iterations = 0;
  std::uint64_t total_expansions = 0;   // A* node pops
  std::size_t pattern_routed = 0;       // connections served by L-patterns
  std::size_t wave_count = 0;           // parallel wave depth
  /// Per-connection grid-edge lists (backtrack order); consumed by the
  /// layer-assignment stage.
  std::vector<std::vector<std::uint32_t>> connection_edges;
  perf::JobProfile profile;
};

class GridRouter {
 public:
  explicit GridRouter(RouterOptions options = {}) : options_(options) {}

  /// Route the placed netlist; instrumented when configs is non-empty.
  [[nodiscard]] RoutingResult run(
      const nl::Netlist& netlist, const place::Placement& placement,
      const std::vector<perf::VmConfig>& configs) const;

  [[nodiscard]] const RouterOptions& options() const { return options_; }

 private:
  RouterOptions options_;
};

}  // namespace edacloud::route
