#pragma once
// Post-route layer assignment — the step between global routing and detail
// routing in a real flow. Horizontal segments go on H layers, vertical
// segments on V layers (preferred-direction routing); each maximal straight
// segment picks the least-loaded layer, and a via is paid at every layer
// change along a path (plus pin access at both ends).

#include <cstdint>
#include <vector>

#include "route/router.hpp"

namespace edacloud::route {

struct LayerOptions {
  int horizontal_layers = 2;  // M2, M4, ... (preferred horizontal)
  int vertical_layers = 2;    // M3, M5, ...
  int tracks_per_layer = 16;  // capacity per grid edge per layer
};

struct LayerReport {
  int horizontal_layers = 0;
  int vertical_layers = 0;
  std::uint64_t via_count = 0;
  std::uint64_t segment_count = 0;
  std::size_t overflowed_layer_edges = 0;  // (edge, layer) over capacity
  /// Mean track utilization per layer (H layers first, then V).
  std::vector<double> layer_utilization;
};

/// Assign every routed connection's segments to layers. Requires the
/// routing result to carry per-connection edges
/// (RoutingResult::connection_edges).
LayerReport assign_layers(const RoutingResult& routing,
                          LayerOptions options = {});

}  // namespace edacloud::route
