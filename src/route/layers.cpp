#include "route/layers.hpp"

#include <algorithm>
#include <stdexcept>

namespace edacloud::route {

namespace {

/// Split a path's edge list into maximal same-orientation runs.
/// Edge ids below h_edges are horizontal.
struct Segment {
  std::size_t begin;  // index range into the edge list
  std::size_t end;
  bool horizontal;
};

std::vector<Segment> split_segments(const std::vector<std::uint32_t>& edges,
                                    int h_edges) {
  std::vector<Segment> segments;
  std::size_t start = 0;
  for (std::size_t i = 1; i <= edges.size(); ++i) {
    const bool boundary =
        i == edges.size() ||
        (static_cast<int>(edges[i]) < h_edges) !=
            (static_cast<int>(edges[start]) < h_edges);
    if (boundary) {
      segments.push_back(
          {start, i, static_cast<int>(edges[start]) < h_edges});
      start = i;
    }
  }
  return segments;
}

}  // namespace

LayerReport assign_layers(const RoutingResult& routing,
                          LayerOptions options) {
  if (options.horizontal_layers <= 0 || options.vertical_layers <= 0 ||
      options.tracks_per_layer <= 0) {
    throw std::invalid_argument("layer options must be positive");
  }
  LayerReport report;
  report.horizontal_layers = options.horizontal_layers;
  report.vertical_layers = options.vertical_layers;

  const int grid = routing.grid_size;
  const int h_edges = grid * (grid - 1);
  const std::size_t edge_count =
      2 * static_cast<std::size_t>(grid) * std::max(0, grid - 1);

  // usage[layer][edge]; H layers indexed 0.., V layers appended.
  const int total_layers =
      options.horizontal_layers + options.vertical_layers;
  std::vector<std::vector<std::uint16_t>> usage(
      static_cast<std::size_t>(total_layers),
      std::vector<std::uint16_t>(edge_count, 0));

  auto layer_range = [&](bool horizontal) {
    return horizontal
               ? std::pair<int, int>(0, options.horizontal_layers)
               : std::pair<int, int>(options.horizontal_layers,
                                     total_layers);
  };

  for (const auto& edges : routing.connection_edges) {
    if (edges.empty()) continue;
    const auto segments = split_segments(edges, h_edges);
    report.segment_count += segments.size();
    int previous_layer = -1;
    for (const Segment& segment : segments) {
      // Least-loaded layer: minimize the max usage along the segment.
      const auto [lo, hi] = layer_range(segment.horizontal);
      int best_layer = lo;
      std::uint32_t best_peak = ~0U;
      for (int layer = lo; layer < hi; ++layer) {
        std::uint32_t peak = 0;
        for (std::size_t i = segment.begin; i < segment.end; ++i) {
          peak = std::max<std::uint32_t>(peak, usage[layer][edges[i]]);
        }
        if (peak < best_peak) {
          best_peak = peak;
          best_layer = layer;
        }
      }
      for (std::size_t i = segment.begin; i < segment.end; ++i) {
        ++usage[best_layer][edges[i]];
      }
      if (previous_layer >= 0 && previous_layer != best_layer) {
        ++report.via_count;
      }
      previous_layer = best_layer;
    }
    report.via_count += 2;  // pin access at both path ends
  }

  report.layer_utilization.assign(static_cast<std::size_t>(total_layers),
                                  0.0);
  for (int layer = 0; layer < total_layers; ++layer) {
    const bool horizontal = layer < options.horizontal_layers;
    std::uint64_t used = 0;
    std::size_t relevant = 0;
    for (std::size_t e = 0; e < edge_count; ++e) {
      const bool edge_horizontal = static_cast<int>(e) < h_edges;
      if (edge_horizontal != horizontal) continue;
      ++relevant;
      used += usage[layer][e];
      if (usage[layer][e] >
          static_cast<std::uint16_t>(options.tracks_per_layer)) {
        ++report.overflowed_layer_edges;
      }
    }
    report.layer_utilization[static_cast<std::size_t>(layer)] =
        relevant == 0
            ? 0.0
            : static_cast<double>(used) /
                  (static_cast<double>(relevant) *
                   static_cast<double>(options.tracks_per_layer));
  }
  return report;
}

}  // namespace edacloud::route
