#pragma once
// Analytical placement — the "placement" application of the paper. The
// engine minimizes quadratic star-model wirelength with a Jacobi-
// preconditioned conjugate-gradient solver (the convex-optimization /
// gradient workload the paper fingers for placement's AVX and cache-miss
// signature), spreads cells with bin diffusion, anchors and re-solves, and
// finally legalizes to rows.

#include <cstdint>
#include <vector>

#include "nl/netlist.hpp"
#include "perf/runtime_model.hpp"

namespace edacloud::place {

struct Placement {
  double die_width_um = 0.0;
  double die_height_um = 0.0;
  double row_height_um = 1.0;
  std::vector<double> x;  // per netlist node (pads + cells)
  std::vector<double> y;

  [[nodiscard]] bool valid_for(const nl::Netlist& netlist) const {
    return x.size() == netlist.node_count() && y.size() == x.size();
  }
};

/// Half-perimeter wirelength over all driven nets (star hyperedges), um.
double hpwl_um(const nl::Netlist& netlist, const Placement& placement);

struct PlacerOptions {
  double utilization = 0.60;       // die sizing target
  int global_iterations = 2;       // solve -> spread -> anchored re-solve
  int cg_iterations = 50;          // CG steps per solve per axis
  double anchor_weight = 0.40;     // pull toward spread positions
  /// Serialized share of each CG iteration (reductions/synchronization);
  /// limits parallel speedup per Fig. 2d.
  double serial_fraction = 0.56;
};

struct PlacementResult {
  Placement placement;
  double hpwl_before_legalization_um = 0.0;
  double hpwl_um = 0.0;
  int solver_iterations = 0;
  perf::JobProfile profile;
};

class QuadraticPlacer {
 public:
  explicit QuadraticPlacer(PlacerOptions options = {}) : options_(options) {}

  /// Instrumented run against a VM ladder (pass {} for uninstrumented).
  [[nodiscard]] PlacementResult run(
      const nl::Netlist& netlist,
      const std::vector<perf::VmConfig>& configs) const;

  /// Placement only, no instrumentation.
  [[nodiscard]] Placement place(const nl::Netlist& netlist) const;

  [[nodiscard]] const PlacerOptions& options() const { return options_; }

 private:
  PlacerOptions options_;
};

}  // namespace edacloud::place
