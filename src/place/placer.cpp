#include "place/placer.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/trace.hpp"
#include "perf/instrument.hpp"

namespace edacloud::place {

using nl::Netlist;
using nl::NodeId;
using perf::Instrument;
using perf::TaskGraph;
using perf::TaskId;

namespace {

// Abstract address-space bases for the instrumented arrays.
constexpr std::uint64_t kMatrixBase = 0x40ULL << 23;
constexpr std::uint64_t kVecXBase = 0x41ULL << 23;
constexpr std::uint64_t kVecRBase = 0x42ULL << 23;
constexpr std::uint64_t kVecPBase = 0x43ULL << 23;
constexpr std::uint64_t kVecQBase = 0x44ULL << 23;
constexpr std::uint64_t kBinBase = 0x45ULL << 23;
constexpr std::uint64_t kSortBase = 0x46ULL << 23;

/// Event helper: streams sequential sweeps at cache-line granularity and
/// batches op counts, so instrumentation cost stays proportional to the
/// *memory traffic*, not the flop count.
struct Meter {
  Instrument* ins = nullptr;

  void stream(std::uint64_t base, std::size_t bytes) const {
    if (ins == nullptr) return;
    for (std::size_t off = 0; off < bytes; off += 64) ins->load(base + off);
  }
  void load(std::uint64_t addr) const {
    if (ins != nullptr) ins->load(addr);
  }
  void store(std::uint64_t addr) const {
    if (ins != nullptr) ins->store(addr);
  }
  void avx(std::uint64_t n) const {
    if (ins != nullptr) ins->avx_ops(n);
  }
  void fp(std::uint64_t n) const {
    if (ins != nullptr) ins->fp_ops(n);
  }
  void ints(std::uint64_t n) const {
    if (ins != nullptr) ins->int_ops(n);
  }
  void branch(std::uint64_t site, bool taken) const {
    if (ins != nullptr) ins->branch(site, taken);
  }
  /// Predictable loop-control branches for a loop of `trips` iterations.
  void loop(std::uint64_t site, std::uint64_t trips) const {
    if (ins == nullptr || trips == 0) return;
    // The predictor sees a strongly-taken branch; emit a bounded sample.
    const std::uint64_t sample = std::min<std::uint64_t>(trips, 64);
    for (std::uint64_t i = 0; i + 1 < sample; ++i) ins->branch(site, true);
    ins->branch(site, false);
  }
};

struct StarProblem {
  // Laplacian in CSR over movable nodes; fixed-neighbor terms fold into b.
  std::vector<std::uint32_t> row_offsets;
  std::vector<std::uint32_t> cols;   // movable indices
  std::vector<double> values;        // off-diagonal (negative) weights
  std::vector<double> diagonal;
  std::vector<double> bx, by;
  std::vector<NodeId> movable;             // movable index -> node
  std::vector<std::int32_t> movable_index; // node -> movable index or -1
  std::size_t edge_count = 0;
};

/// Place I/O pads evenly around the die periphery (PIs left+top, POs
/// right+bottom), in interface order.
void place_pads(const Netlist& netlist, double width, double height,
                Placement& placement) {
  const auto& inputs = netlist.inputs();
  const auto& outputs = netlist.outputs();
  const std::size_t half_in = inputs.size() / 2 + inputs.size() % 2;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const NodeId id = inputs[i];
    if (i < half_in) {
      placement.x[id] = 0.0;
      placement.y[id] =
          height * static_cast<double>(i + 1) / (half_in + 1);
    } else {
      placement.x[id] = width * static_cast<double>(i - half_in + 1) /
                        (inputs.size() - half_in + 1);
      placement.y[id] = height;
    }
  }
  const std::size_t half_out = outputs.size() / 2 + outputs.size() % 2;
  for (std::size_t i = 0; i < outputs.size(); ++i) {
    const NodeId id = outputs[i];
    if (i < half_out) {
      placement.x[id] = width;
      placement.y[id] =
          height * static_cast<double>(i + 1) / (half_out + 1);
    } else {
      placement.x[id] = width * static_cast<double>(i - half_out + 1) /
                        (outputs.size() - half_out + 1);
      placement.y[id] = 0.0;
    }
  }
}

StarProblem build_problem(const Netlist& netlist, const Placement& pads,
                          const Meter& meter) {
  StarProblem problem;
  const std::size_t n = netlist.node_count();
  problem.movable_index.assign(n, -1);
  for (NodeId id = 0; id < n; ++id) {
    if (netlist.is_cell(id)) {
      problem.movable_index[id] =
          static_cast<std::int32_t>(problem.movable.size());
      problem.movable.push_back(id);
    }
  }
  const std::size_t m = problem.movable.size();
  const auto fanouts = netlist.fanout_counts();

  // Accumulate weighted star edges into dense-per-row maps.
  std::vector<std::vector<std::pair<std::uint32_t, double>>> rows(m);
  problem.diagonal.assign(m, 0.0);
  problem.bx.assign(m, 0.0);
  problem.by.assign(m, 0.0);

  auto add_edge = [&](NodeId u, NodeId v, double weight) {
    ++problem.edge_count;
    const std::int32_t iu = problem.movable_index[u];
    const std::int32_t iv = problem.movable_index[v];
    meter.ints(6);
    if (iu >= 0) problem.diagonal[iu] += weight;
    if (iv >= 0) problem.diagonal[iv] += weight;
    if (iu >= 0 && iv >= 0) {
      rows[iu].emplace_back(static_cast<std::uint32_t>(iv), -weight);
      rows[iv].emplace_back(static_cast<std::uint32_t>(iu), -weight);
    } else if (iu >= 0) {
      problem.bx[iu] += weight * pads.x[v];
      problem.by[iu] += weight * pads.y[v];
    } else if (iv >= 0) {
      problem.bx[iv] += weight * pads.x[u];
      problem.by[iv] += weight * pads.y[u];
    }
  };

  for (NodeId id = 0; id < n; ++id) {
    const auto& node = netlist.node(id);
    for (NodeId fanin : node.fanins) {
      const double weight =
          1.0 / std::max<std::uint32_t>(1, fanouts[fanin]);
      add_edge(fanin, id, weight);
    }
    meter.load(kMatrixBase + id * 16);
  }

  // Flatten to CSR (duplicates merged).
  problem.row_offsets.assign(m + 1, 0);
  for (std::size_t i = 0; i < m; ++i) {
    auto& row = rows[i];
    std::sort(row.begin(), row.end());
    std::size_t unique = 0;
    for (std::size_t j = 0; j < row.size();) {
      std::size_t k = j;
      double sum = 0.0;
      while (k < row.size() && row[k].first == row[j].first) {
        sum += row[k].second;
        ++k;
      }
      row[unique++] = {row[j].first, sum};
      j = k;
    }
    row.resize(unique);
    problem.row_offsets[i + 1] =
        problem.row_offsets[i] + static_cast<std::uint32_t>(unique);
  }
  problem.cols.reserve(problem.row_offsets[m]);
  problem.values.reserve(problem.row_offsets[m]);
  for (std::size_t i = 0; i < m; ++i) {
    for (const auto& [col, value] : rows[i]) {
      problem.cols.push_back(col);
      problem.values.push_back(value);
    }
  }
  return problem;
}

/// Jacobi-preconditioned CG on (L + anchor*I) x = b + anchor*target.
/// Returns iterations executed.
int cg_solve(const StarProblem& problem, const std::vector<double>& b,
             const std::vector<double>* anchor_target, double anchor_weight,
             std::vector<double>& x, int max_iterations, const Meter& meter) {
  const std::size_t m = problem.diagonal.size();
  if (m == 0) return 0;
  std::vector<double> r(m), p(m), q(m), z(m);
  std::vector<double> diag(m);
  for (std::size_t i = 0; i < m; ++i) {
    diag[i] = problem.diagonal[i] +
              (anchor_target != nullptr ? anchor_weight : 0.0) + 1e-12;
  }

  auto apply = [&](const std::vector<double>& in, std::vector<double>& out) {
    for (std::size_t i = 0; i < m; ++i) {
      double acc = diag[i] * in[i];
      const std::uint32_t begin = problem.row_offsets[i];
      const std::uint32_t end = problem.row_offsets[i + 1];
      for (std::uint32_t e = begin; e < end; ++e) {
        acc += problem.values[e] * in[problem.cols[e]];
        // Scattered gather on the solution vector: the cache-hostile part.
        meter.load(kVecXBase + problem.cols[e] * 8ULL);
      }
      meter.avx(2 * (end - begin) + 2);
      out[i] = acc;
    }
    meter.stream(kMatrixBase, (problem.values.size() * 12));
    meter.stream(kVecQBase, m * 8);
    meter.loop(kMatrixBase ^ 0x7, m);
  };

  auto dot = [&](const std::vector<double>& a2, const std::vector<double>& b2) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) acc += a2[i] * b2[i];
    meter.avx(2 * m);
    meter.stream(kVecRBase, m * 8);
    meter.stream(kVecPBase, m * 8);
    return acc;
  };

  // r = b' - A x, with b' folding anchors in.
  std::vector<double> rhs = b;
  if (anchor_target != nullptr) {
    for (std::size_t i = 0; i < m; ++i) {
      rhs[i] += anchor_weight * (*anchor_target)[i];
    }
  }
  apply(x, q);
  for (std::size_t i = 0; i < m; ++i) r[i] = rhs[i] - q[i];
  for (std::size_t i = 0; i < m; ++i) z[i] = r[i] / diag[i];
  p = z;
  double rho = dot(r, z);
  const double tolerance = 1e-10 * std::max(1.0, dot(rhs, rhs));

  int iteration = 0;
  for (; iteration < max_iterations; ++iteration) {
    meter.branch(kVecXBase ^ 0x9, rho > tolerance);
    if (rho <= tolerance) break;
    apply(p, q);
    const double alpha = rho / std::max(dot(p, q), 1e-30);
    for (std::size_t i = 0; i < m; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * q[i];
      z[i] = r[i] / diag[i];
    }
    meter.avx(6 * m);
    meter.stream(kVecXBase, m * 8);
    const double rho_next = dot(r, z);
    const double beta = rho_next / std::max(rho, 1e-30);
    for (std::size_t i = 0; i < m; ++i) p[i] = z[i] + beta * p[i];
    meter.avx(2 * m);
    rho = rho_next;
  }
  return iteration;
}

/// Recursive-bisection spreading: map the (clumped) quadratic solution onto
/// the die uniformly while preserving relative cell order — the locality-
/// preserving step that keeps downstream routing bounding boxes tight.
void spread(const StarProblem& problem, double width, double height,
            std::vector<double>& x, std::vector<double>& y,
            const Meter& meter) {
  const std::size_t m = problem.movable.size();
  if (m == 0) return;
  std::vector<std::uint32_t> indices(m);
  std::iota(indices.begin(), indices.end(), 0);

  struct Region {
    std::size_t begin, end;
    double x0, y0, x1, y1;
  };
  std::vector<Region> stack{{0, m, 0.0, 0.0, width, height}};
  while (!stack.empty()) {
    const Region region = stack.back();
    stack.pop_back();
    const std::size_t count = region.end - region.begin;
    if (count == 0) continue;
    const double rw = region.x1 - region.x0;
    const double rh = region.y1 - region.y0;
    if (count <= 4 || (rw < 2.0 && rh < 2.0)) {
      // Leaf: jitter-free even scatter inside the region.
      std::size_t i = 0;
      for (std::size_t idx = region.begin; idx < region.end; ++idx, ++i) {
        const std::uint32_t cell = indices[idx];
        x[cell] = region.x0 + rw * (static_cast<double>(i % 2) + 0.5) / 2.0;
        y[cell] = region.y0 + rh * (static_cast<double>(i / 2) + 0.5) /
                                  std::max<double>(1.0, (count + 1) / 2);
        meter.store(kBinBase + cell * 16ULL);
      }
      continue;
    }
    const bool cut_x = rw >= rh;
    auto first = indices.begin() + static_cast<std::ptrdiff_t>(region.begin);
    auto last = indices.begin() + static_cast<std::ptrdiff_t>(region.end);
    auto mid = first + static_cast<std::ptrdiff_t>(count / 2);
    if (cut_x) {
      std::nth_element(first, mid, last, [&x](std::uint32_t a, std::uint32_t b) {
        return x[a] < x[b];
      });
    } else {
      std::nth_element(first, mid, last, [&y](std::uint32_t a, std::uint32_t b) {
        return y[a] < y[b];
      });
    }
    meter.ints(count * 2);
    meter.stream(kBinBase, count * 4);
    const std::size_t half = region.begin + count / 2;
    if (cut_x) {
      const double cut = region.x0 + rw * 0.5;
      stack.push_back({region.begin, half, region.x0, region.y0, cut,
                       region.y1});
      stack.push_back({half, region.end, cut, region.y0, region.x1,
                       region.y1});
    } else {
      const double cut = region.y0 + rh * 0.5;
      stack.push_back({region.begin, half, region.x0, region.y0, region.x1,
                       cut});
      stack.push_back({half, region.end, region.x0, cut, region.x1,
                       region.y1});
    }
  }
}

/// Row legalization (Abacus-lite): assign cells to rows respecting row
/// capacity, then pack each row left-to-right in target-x order, clamping
/// so every remaining cell still fits. Guarantees in-die, non-overlapping
/// placements while staying close to the global-placement positions.
void legalize(const Netlist& netlist, const StarProblem& problem,
              double width, double height, double row_height,
              std::vector<double>& x, std::vector<double>& y,
              const Meter& meter) {
  const std::size_t m = problem.movable.size();
  const int rows = std::max(1, static_cast<int>(height / row_height));
  const auto& library = netlist.library();

  auto width_of = [&](std::uint32_t idx) {
    const NodeId node = problem.movable[idx];
    return library.cell(netlist.node(node).cell).area_um2 / row_height;
  };

  // ---- pass 1: row assignment with capacity bookkeeping --------------------
  std::vector<std::vector<std::uint32_t>> row_members(
      static_cast<std::size_t>(rows));
  std::vector<double> row_fill(static_cast<std::size_t>(rows), 0.0);
  std::vector<std::uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&y](std::uint32_t a, std::uint32_t b) {
    return y[a] < y[b];
  });
  meter.ints(m * 8);  // sort work
  meter.stream(kSortBase, m * 8);

  for (std::uint32_t idx : order) {
    const double cell_width = width_of(idx);
    const int target =
        std::clamp(static_cast<int>(y[idx] / row_height), 0, rows - 1);
    int chosen = -1;
    for (int delta = 0; delta < rows && chosen < 0; ++delta) {
      for (const int candidate : {target + delta, target - delta}) {
        if (candidate < 0 || candidate >= rows) continue;
        const bool fits =
            row_fill[static_cast<std::size_t>(candidate)] + cell_width <=
            width + 1e-9;
        meter.branch(kSortBase ^ 0xD, fits);
        if (fits) {
          chosen = candidate;
          break;
        }
      }
    }
    if (chosen < 0) chosen = target;  // utilization > 1: best effort
    row_members[static_cast<std::size_t>(chosen)].push_back(idx);
    row_fill[static_cast<std::size_t>(chosen)] += cell_width;
    meter.load(kSortBase + static_cast<std::uint64_t>(chosen) * 8);
    meter.ints(12);
  }

  // ---- pass 2: per-row packing with suffix clamping -------------------------
  for (int row = 0; row < rows; ++row) {
    auto& members = row_members[static_cast<std::size_t>(row)];
    std::sort(members.begin(), members.end(),
              [&x](std::uint32_t a, std::uint32_t b) { return x[a] < x[b]; });
    // suffix[i] = total width of members[i..] (room the tail still needs).
    std::vector<double> suffix(members.size() + 1, 0.0);
    for (std::size_t i = members.size(); i-- > 0;) {
      suffix[i] = suffix[i + 1] + width_of(members[i]);
    }
    double cursor = 0.0;
    for (std::size_t i = 0; i < members.size(); ++i) {
      const std::uint32_t idx = members[i];
      const double limit = width - suffix[i];  // leave room for the rest
      x[idx] = std::clamp(std::max(cursor, x[idx]), cursor,
                          std::max(cursor, limit));
      cursor = x[idx] + width_of(idx);
      y[idx] = (row + 0.5) * row_height;
      meter.ints(8);
    }
  }
}

}  // namespace

double hpwl_um(const Netlist& netlist, const Placement& placement) {
  const auto fanout = netlist.build_fanout_csr();
  double total = 0.0;
  for (NodeId driver = 0; driver < netlist.node_count(); ++driver) {
    const auto [begin, end] = fanout.range(driver);
    if (begin == end) continue;
    double min_x = placement.x[driver], max_x = placement.x[driver];
    double min_y = placement.y[driver], max_y = placement.y[driver];
    for (std::uint32_t e = begin; e < end; ++e) {
      const NodeId sink = fanout.targets[e];
      min_x = std::min(min_x, placement.x[sink]);
      max_x = std::max(max_x, placement.x[sink]);
      min_y = std::min(min_y, placement.y[sink]);
      max_y = std::max(max_y, placement.y[sink]);
    }
    total += (max_x - min_x) + (max_y - min_y);
  }
  return total;
}

PlacementResult QuadraticPlacer::run(
    const Netlist& netlist, const std::vector<perf::VmConfig>& configs) const {
  Instrument instrument_storage;
  Instrument* instrument = nullptr;
  if (!configs.empty()) {
    instrument_storage = Instrument(configs);
    instrument = &instrument_storage;
  }
  Meter meter{instrument};

  PlacementResult result;
  Placement& placement = result.placement;

  // Die sizing from total area and target utilization.
  const auto stats = netlist.stats();
  const double die_area =
      std::max(1.0, stats.total_area_um2 / options_.utilization);
  const double side = std::ceil(std::sqrt(die_area));
  placement.die_width_um = side;
  placement.die_height_um = side;
  placement.x.assign(netlist.node_count(), side / 2);
  placement.y.assign(netlist.node_count(), side / 2);

  TRACE_SPAN_VAR(run_span, "place/run", "place");
  place_pads(netlist, side, side, placement);
  StarProblem problem = [&] {
    TRACE_SPAN("place/build_problem", "place");
    return build_problem(netlist, placement, meter);
  }();
  const std::size_t m = problem.movable.size();
  run_span.counter("movable_cells", static_cast<double>(m));

  std::vector<double> x(m, side / 2), y(m, side / 2);
  std::vector<double> anchor_x, anchor_y;

  int iterations = 0;
  {
    TRACE_SPAN_VAR(solve_span, "place/solve", "place");
    for (int global = 0; global < std::max(1, options_.global_iterations);
         ++global) {
      const bool anchored = global > 0;
      iterations += cg_solve(problem, problem.bx,
                             anchored ? &anchor_x : nullptr,
                             options_.anchor_weight, x,
                             options_.cg_iterations, meter);
      iterations += cg_solve(problem, problem.by,
                             anchored ? &anchor_y : nullptr,
                             options_.anchor_weight, y,
                             options_.cg_iterations, meter);
      TRACE_SPAN("place/spread", "place");
      spread(problem, side, side, x, y, meter);
      anchor_x = x;
      anchor_y = y;
    }
    solve_span.counter("cg_iterations", iterations);
  }

  // Write back pre-legalization coordinates for the HPWL snapshot.
  for (std::size_t i = 0; i < m; ++i) {
    placement.x[problem.movable[i]] = x[i];
    placement.y[problem.movable[i]] = y[i];
  }
  result.hpwl_before_legalization_um = hpwl_um(netlist, placement);

  {
    TRACE_SPAN("place/legalize", "place");
    legalize(netlist, problem, side, side, placement.row_height_um, x, y,
             meter);
  }
  for (std::size_t i = 0; i < m; ++i) {
    placement.x[problem.movable[i]] = x[i];
    placement.y[problem.movable[i]] = y[i];
  }
  result.hpwl_um = hpwl_um(netlist, placement);
  result.solver_iterations = iterations;
  run_span.counter("hpwl_um", result.hpwl_um);

  // ---- task graph: CG iteration chain with parallel SpMV chunks ------------
  TaskGraph tasks;
  const double chunk_rows = 128.0;
  const double iteration_work = static_cast<double>(
      std::max<std::size_t>(1, problem.values.size() + 6 * m));
  bool has_prev = false;
  TaskId prev = 0;
  const int total_solves = 2 * std::max(1, options_.global_iterations);
  const int iters_per_solve = std::max(1, iterations / std::max(1, total_solves));
  for (int solve = 0; solve < total_solves; ++solve) {
    for (int it = 0; it < iters_per_solve; ++it) {
      std::vector<TaskId> deps;
      if (has_prev) deps.push_back(prev);
      const TaskId serial = tasks.add_task(
          iteration_work * options_.serial_fraction, deps);
      const int chunks = std::max(
          1, static_cast<int>(std::ceil(static_cast<double>(m) / chunk_rows)));
      std::vector<TaskId> chunk_ids;
      for (int c = 0; c < chunks; ++c) {
        chunk_ids.push_back(tasks.add_task(
            iteration_work * (1.0 - options_.serial_fraction) / chunks,
            {serial}));
      }
      prev = tasks.add_task(0.0, chunk_ids);
      has_prev = true;
    }
  }
  // Legalization: serial sort + sequential packing.
  tasks.add_task(static_cast<double>(m) * 2.0,
                 has_prev ? std::vector<TaskId>{prev} : std::vector<TaskId>{});

  result.profile.job = "placement";
  result.profile.configs = configs;
  if (instrument != nullptr) {
    for (std::size_t i = 0; i < configs.size(); ++i) {
      result.profile.counts.push_back(instrument->counts(i));
    }
  }
  result.profile.tasks = std::move(tasks);
  return result;
}

Placement QuadraticPlacer::place(const Netlist& netlist) const {
  return run(netlist, {}).placement;
}

}  // namespace edacloud::place
