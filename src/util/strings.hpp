#pragma once
// String formatting helpers for table/report output.

#include <string>
#include <vector>

namespace edacloud::util {

/// Format a double with fixed decimal places (no locale surprises).
std::string format_fixed(double value, int decimals);

/// Human-readable seconds, e.g. "2h 13m 05s" or "41.3s".
std::string format_duration(double seconds);

/// Thousands-separated integer, e.g. 1234567 -> "1,234,567".
std::string format_count(long long value);

/// "12.3%" style percent formatting (value given as fraction, 0.123).
std::string format_percent(double fraction, int decimals = 1);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces,
                 const std::string& separator);

/// Left/right padding to a fixed width.
std::string pad_left(const std::string& text, std::size_t width);
std::string pad_right(const std::string& text, std::size_t width);

}  // namespace edacloud::util
